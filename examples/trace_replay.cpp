// Trace workflow: generate a workload trace, save it to disk, reload it,
// and replay the identical stream through all three memory paths (raw,
// MSHR-64B, MAC) — the way the paper replays its Spike traces through
// HMCSim with and without the coalescer.
//
// Usage: trace_replay [workload] [path]
#include <cstdio>
#include <cstdlib>

#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workload.hpp"

using namespace mac3d;

int main(int argc, char** argv) {
  const std::string name = argc > 1 ? argv[1] : "sg";
  const std::string path =
      argc > 2 ? argv[2] : "/tmp/mac3d_" + name + ".trace";

  const Workload* workload = find_workload(name);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'; available:", name.c_str());
    for (const std::string& known : workload_names()) {
      std::fprintf(stderr, " %s", known.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  SimConfig config;
  config.apply_env();
  WorkloadParams params;
  params.threads = config.cores;
  params.config = config;

  print_banner("Trace replay: " + workload->description());
  const MemoryTrace trace = workload->trace(params);
  save_trace(trace, path);
  std::printf("traced %s memory records -> %s\n",
              Table::count(trace.size()).c_str(), path.c_str());

  const MemoryTrace replay = load_trace(path);
  std::printf("reloaded %s records, %u threads\n\n",
              Table::count(replay.size()).c_str(), replay.threads());

  const DriverResult raw = run_raw(replay, config, config.cores);
  const DriverResult mshr = run_mshr(replay, config, config.cores);
  const DriverResult mac = run_mac(replay, config, config.cores);

  Table table({"path", "packets", "avg packet", "bw eff", "bank conflicts",
               "speedup vs raw"});
  for (const DriverResult* result : {&raw, &mshr, &mac}) {
    table.add_row({result->path, Table::count(result->packets),
                   Table::bytes(static_cast<std::uint64_t>(
                       result->avg_packet_bytes)),
                   Table::pct(result->bandwidth_efficiency()),
                   Table::count(result->bank_conflicts),
                   result == &raw ? std::string("-")
                                  : Table::pct(memory_speedup(raw, *result))});
  }
  table.print();
  return 0;
}
