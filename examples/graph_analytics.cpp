// Graph analytics on the cache-less architecture (the paper's motivating
// domain): run the three GAP kernels (BFS, PageRank, connected
// components) through the raw and MAC memory paths and compare every
// headline metric, then profile their access patterns with the trace
// analyzer.
//
// Usage: graph_analytics [scale] [threads]
#include <cstdio>
#include <cstdlib>

#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "trace/analyzer.hpp"
#include "workloads/all.hpp"

using namespace mac3d;

int main(int argc, char** argv) {
  SimConfig config;
  config.apply_env();

  WorkloadParams params;
  params.scale = argc > 1 ? std::atof(argv[1]) : 0.5;
  params.threads = argc > 2
                       ? static_cast<std::uint32_t>(std::atoi(argv[2]))
                       : config.cores;
  params.config = config;

  print_banner("Graph analytics through the MAC");
  std::printf("scale %.2f, %u threads\n\n", params.scale, params.threads);

  Table table({"kernel", "records", "ideal coal.", "MAC coal.", "bw eff",
               "conflicts removed", "speedup"});
  for (const Workload* workload :
       {gap_bfs_workload(), gap_pr_workload(), gap_cc_workload()}) {
    const MemoryTrace trace = workload->trace(params);
    const TraceProfile profile = analyze(trace, config, params.threads);
    const DriverResult raw = run_raw(trace, config, params.threads);
    const DriverResult mac = run_mac(trace, config, params.threads);
    table.add_row({workload->name(), Table::count(trace.size()),
                   Table::pct(profile.ideal_coalescing),
                   Table::pct(mac.coalescing_efficiency()),
                   Table::pct(mac.bandwidth_efficiency()),
                   Table::count(bank_conflict_reduction(raw, mac)),
                   Table::pct(memory_speedup(raw, mac))});
  }
  table.print();
  std::printf(
      "\n'ideal coal.' is the analyzer's upper bound (an unbounded\n"
      "coalescer over the same window); the MAC column is what the real\n"
      "dual-ported, 32-entry pipeline achieves.\n");
  return 0;
}
