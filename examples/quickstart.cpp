// Quickstart: the 60-second tour of the library.
//
// 1. Reproduce the paper's Fig. 2 example by hand: sixteen threads each
//    load one FLIT of the same 256 B DRAM row; with MAC they leave as ONE
//    256 B transaction, without it as sixteen 16 B transactions.
// 2. Run a real workload (Scatter/Gather) through both memory paths and
//    print the headline metrics.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "mac/coalescer.hpp"
#include "mem/hmc_device.hpp"
#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "workloads/all.hpp"

using namespace mac3d;

namespace {

void figure2_example() {
  std::printf("--- Fig. 2: sixteen 16B loads of one 256B HMC row ---\n");
  SimConfig config;  // Table 1 defaults
  // Disable the fill-fast boot transient so this 16-request demo shows
  // steady-state aggregation (a real run amortizes the transient away).
  config.fill_fast_enabled = false;
  HmcDevice device(config);
  MacCoalescer mac(config, device);

  // Sixteen threads simultaneously load FLITs 0..15 of row 0xA.
  Cycle now = 0;
  for (std::uint32_t t = 0; t < 16; ++t) {
    RawRequest request;
    request.addr = 0xA00 + static_cast<Address>(t) * kFlitBytes;
    request.op = MemOp::kLoad;
    request.tid = static_cast<ThreadId>(t);
    request.tag = 1;
    mac.accept(request, now);
    mac.tick(now);
    ++now;
  }
  // Drain the MAC.
  std::uint64_t completions = 0;
  while (!mac.idle()) {
    mac.tick(now);
    completions += mac.drain(now).size();
    const Cycle next = mac.next_event(now);
    now = next <= now ? now + 1 : next;
  }
  std::printf("raw requests in : %llu\n",
              static_cast<unsigned long long>(mac.stats().raw_in));
  std::printf("HMC packets out : %llu",
              static_cast<unsigned long long>(mac.stats().packets_out));
  for (const auto& [size, count] : mac.stats().packets_by_size) {
    std::printf("  (%llux %uB)", static_cast<unsigned long long>(count),
                size);
  }
  std::printf("\ncompletions     : %llu (every thread answered)\n",
              static_cast<unsigned long long>(completions));
  std::printf("bank conflicts  : %llu with MAC vs 15 without\n\n",
              static_cast<unsigned long long>(
                  device.stats().bank_conflicts));
}

void scatter_gather_demo() {
  std::printf("--- Scatter/Gather through both memory paths ---\n");
  SimConfig config;
  WorkloadParams params;
  params.threads = config.cores;
  params.scale = 0.25;  // quick demo
  params.config = config;
  const MemoryTrace trace = sg_workload()->trace(params);

  const DriverResult raw = run_raw(trace, config, params.threads);
  const DriverResult mac = run_mac(trace, config, params.threads);

  std::printf("raw requests        : %llu\n",
              static_cast<unsigned long long>(mac.raw_requests));
  std::printf("packets   raw path  : %llu\n",
              static_cast<unsigned long long>(raw.packets));
  std::printf("packets   MAC path  : %llu\n",
              static_cast<unsigned long long>(mac.packets));
  std::printf("coalescing efficiency      : %.2f%%\n",
              mac.coalescing_efficiency() * 100.0);
  std::printf("bandwidth efficiency (raw) : %.2f%%\n",
              raw.bandwidth_efficiency() * 100.0);
  std::printf("bandwidth efficiency (MAC) : %.2f%%\n",
              mac.bandwidth_efficiency() * 100.0);
  std::printf("bank conflicts removed     : %llu\n",
              static_cast<unsigned long long>(
                  bank_conflict_reduction(raw, mac)));
  std::printf("memory-system speedup      : %.2f%%\n",
              memory_speedup(raw, mac) * 100.0);
}

}  // namespace

int main() {
  std::printf("MAC: Memory Access Coalescer for 3D-Stacked Memory\n");
  std::printf("==================================================\n\n");
  figure2_example();
  scatter_gather_demo();
  return 0;
}
