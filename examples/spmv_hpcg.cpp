// Sparse solver study: how the MAC treats HPCG's three phases (SpMV
// gather, dot products, AXPY streams) and how the builder's packet-size
// mix reacts. Also demonstrates per-component statistics collection into
// a StatSet for external tooling (CSV on stdout with --csv).
//
// Usage: spmv_hpcg [--csv] [scale]
#include <cstdio>
#include <cstring>
#include <iostream>

#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"
#include "workloads/all.hpp"

using namespace mac3d;

int main(int argc, char** argv) {
  bool csv = false;
  double scale = 1.0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else {
      scale = std::atof(argv[i]);
    }
  }

  SimConfig config;
  config.apply_env();
  WorkloadParams params;
  params.scale = scale;
  params.threads = config.cores;
  params.config = config;

  const MemoryTrace trace = hpcg_workload()->trace(params);
  const DriverResult raw = run_raw(trace, config, params.threads);
  const DriverResult mac = run_mac(trace, config, params.threads);

  if (csv) {
    StatSet stats;
    raw.collect(stats, "raw");
    mac.collect(stats, "mac");
    stats.set("speedup", memory_speedup(raw, mac));
    std::cout << stats.to_csv();
    return 0;
  }

  print_banner("HPCG (27-point CG) through the MAC");
  std::printf("%-28s %12s %12s\n", "", "raw", "MAC");
  std::printf("%-28s %12s %12s\n", "packets",
              Table::count(raw.packets).c_str(),
              Table::count(mac.packets).c_str());
  std::printf("%-28s %12s %12s\n", "bank conflicts",
              Table::count(raw.bank_conflicts).c_str(),
              Table::count(mac.bank_conflicts).c_str());
  std::printf("%-28s %12s %12s\n", "link traffic",
              Table::bytes(raw.link_bytes).c_str(),
              Table::bytes(mac.link_bytes).c_str());
  std::printf("%-28s %12s %12s\n", "bandwidth efficiency",
              Table::pct(raw.bandwidth_efficiency()).c_str(),
              Table::pct(mac.bandwidth_efficiency()).c_str());
  std::printf("%-28s %12s %12s\n", "avg request latency (cy)",
              Table::fmt(raw.avg_latency_cycles, 0).c_str(),
              Table::fmt(mac.avg_latency_cycles, 0).c_str());

  std::printf("\nMAC packet-size mix (the Request Builder's choices):\n");
  for (const auto& [size, count] : mac.packets_by_size) {
    std::printf("  %4uB x %-10s %s\n", size, Table::count(count).c_str(),
                std::string(
                    static_cast<std::size_t>(
                        60.0 * static_cast<double>(count) /
                        static_cast<double>(mac.packets)),
                    '#')
                    .c_str());
  }
  std::printf("\nmemory-system speedup: %s\n",
              Table::pct(memory_speedup(raw, mac)).c_str());
  return 0;
}
