// Multi-node NUMA system (paper Fig. 4): execution-driven simulation of
// several nodes — each with in-order cores, SPMs, a unified MAC and a
// directly-attached HMC — joined by the interconnect. Threads gather from
// both local and remote cubes; the request router classifies the traffic
// and remote responses travel back through the fabric.
//
// Usage: numa_multinode [nodes] [elements-per-thread]
#include <cstdio>
#include <cstdlib>

#include "arch/system.hpp"
#include "common/rng.hpp"
#include "sim/report.hpp"

using namespace mac3d;

int main(int argc, char** argv) {
  SimConfig config;
  config.apply_env();
  config.nodes = argc > 1
                     ? static_cast<std::uint32_t>(std::atoi(argv[1]))
                     : 2;
  config.cores = 4;
  config.validate();
  const std::uint64_t per_thread =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2000;

  print_banner("NUMA system: " + std::to_string(config.nodes) +
               " nodes x " + std::to_string(config.cores) + " cores");

  // Each thread interleaves a local stream with gathers striped across
  // every node's cube (a distributed-array access pattern).
  const std::uint32_t threads = config.nodes * config.cores;
  MemoryTrace trace(threads);
  Xoshiro256 rng(1234);
  for (std::uint32_t t = 0; t < threads; ++t) {
    const auto tid = static_cast<ThreadId>(t);
    const NodeId home = static_cast<NodeId>(t % config.nodes);
    const Address local_base =
        static_cast<Address>(home) * config.hmc_capacity + 0x100000;
    for (std::uint64_t i = 0; i < per_thread; ++i) {
      trace.instr(tid, 3);
      trace.load(tid, local_base + i * 8);  // local stream
      if (i % 4 == 0) {
        const NodeId victim = static_cast<NodeId>(rng.below(config.nodes));
        trace.load(tid, static_cast<Address>(victim) * config.hmc_capacity +
                            0x4000000 + rng.below(1 << 20) * 16);
      }
      if (i % 8 == 0) {
        trace.store(tid, local_base + (per_thread + i) * 8);
      }
    }
    trace.fence(tid);
  }

  System system(config);
  system.attach_trace(trace);
  const SystemRunSummary summary = system.run();

  std::printf("completed: %s in %s cycles (%.2f us simulated)\n",
              summary.completed ? "yes" : "NO",
              Table::count(summary.cycles).c_str(),
              config.cycles_to_ns(summary.cycles) / 1000.0);
  std::printf("requests %s, completions %s, avg latency %.0f cycles\n\n",
              Table::count(summary.requests).c_str(),
              Table::count(summary.completions).c_str(),
              summary.avg_latency_cycles);

  Table table({"node", "HMC packets", "coalescing eff", "bw eff",
               "bank conflicts", "remote msgs in"});
  for (std::size_t n = 0; n < system.node_count(); ++n) {
    Node& node = system.node(n);
    table.add_row({std::to_string(n),
                   Table::count(node.device().stats().requests),
                   Table::pct(node.mac().stats().coalescing_efficiency()),
                   Table::pct(
                       node.device().stats().measured_bandwidth_efficiency()),
                   Table::count(node.device().stats().bank_conflicts),
                   Table::count(node.router().remote_in())});
  }
  table.print();
  std::printf("interconnect messages: %s\n",
              Table::count(system.fabric().messages()).c_str());
  return summary.completed ? 0 : 1;
}
