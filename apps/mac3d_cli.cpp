// mac3d — command-line front end to the simulator.
//
// Run any workload (or a saved trace) through any memory path with any
// configuration, and print a table or machine-readable CSV:
//
//   mac3d run  --workload sg --paths raw,mac --threads 8 --scale 1.0
//   mac3d run  --trace /tmp/sg.trace --paths mac --csv
//   mac3d suite --scale 0.5                  # the full 12-workload sweep
//   mac3d trace --workload mg --out mg.trace # dump a trace for replay
//   mac3d list                               # available workloads
//   mac3d config                             # effective Table-1 config
//
// Config overrides compose from MAC3D_CONFIG and repeated --set key=value.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "arch/system.hpp"
#include "check/check.hpp"
#include "lint/lint.hpp"
#include "obs/analysis.hpp"
#include "obs/latency.hpp"
#include "obs/lifecycle.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/report_diff.hpp"
#include "obs/run_report.hpp"
#include "obs/sampler.hpp"
#include "obs/snapshot.hpp"
#include "sim/driver.hpp"
#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/parallel.hpp"
#include "sim/report.hpp"
#include "trace/trace_io.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace mac3d;

struct CliOptions {
  std::string command;
  std::string workload = "sg";
  std::string trace_path;
  std::string out_path;
  std::vector<std::string> paths = {"raw", "mac"};
  std::uint32_t threads = 0;  // 0 = config.cores
  std::uint32_t nodes = 0;    // 0 = config.nodes (system command)
  double scale = 1.0;
  std::uint64_t seed = 42;
  bool csv = false;
  bool closed_loop = false;
  /// streaming | closed-loop | lane-group ("" = streaming, or closed-loop
  /// when --closed-loop was given).
  std::string feed;
  /// raw | mac | mshr | warp ("" = config default). Sets config.policy
  /// (system command) and, unless --paths was given, the run path list.
  std::string policy;
  bool checks = false;
  bool profile = false;  ///< idle-cycle census + latency/host profiling
  /// serial | parallel | event | event-parallel ("" = per-command default:
  /// run/suite use the event fast-forward engine, system the strict serial
  /// reference — docs/PARALLELISM.md §event-driven engine).
  std::string engine;
  std::uint32_t engine_threads = 0;  ///< 0 = hardware concurrency
  std::uint32_t jobs = 0;          ///< parallel paths/workloads (0 = env)
  std::uint32_t tag_pool = 0;      ///< streaming tag pool (0 = full 64 K)
  std::string trace_events;    ///< Chrome trace-event JSON output
  std::uint64_t sample_every = 0;  ///< sampler period (0 = off)
  std::string sample_out;      ///< sampler CSV output
  std::string report_path;     ///< machine-readable run report JSON
  std::uint64_t snapshot_every = 0;  ///< snapshot window (0 = off)
  std::string snapshot_out;    ///< snapshot JSONL output
  bool watchdog = false;       ///< stall watchdog (implies snapshots)
  std::uint64_t watchdog_windows = 3;  ///< stalled windows before firing
  std::uint64_t inject_livelock = 0;   ///< stop draining at cycle N (run)
  /// --node-policy i=p entries, system command (heterogeneous nodes).
  std::vector<std::string> node_policies;
  std::vector<std::string> overrides;
};

void usage() {
  std::fprintf(stderr,
               "usage: mac3d <run|suite|system|trace|list|config> [options]\n"
               "       mac3d report-diff OLD NEW [--tolerance PCT] "
               "[--ignore PATH|SECTION|GLOB] [--allow-missing]\n"
               "       mac3d analyze REPORT --snapshots FILE [--json FILE] "
               "[--tolerance PCT]\n"
               "       mac3d lint [--root DIR] [--baseline FILE] "
               "[--sarif FILE] [--write-baseline FILE] [--list-rules]\n"
               "  --workload NAME   workload to trace (default sg)\n"
               "  --trace FILE      replay a saved trace instead\n"
               "  --out FILE        output trace file (trace command)\n"
               "  --paths a,b,c     raw | mac | mshr | warp (default "
               "raw,mac)\n"
               "  --policy P        coalescer policy raw | mac | mshr | warp\n"
               "                    (sets config.policy; run: implies "
               "--paths P)\n"
               "  --threads N       thread streams (default: cores)\n"
               "  --nodes N         NUMA nodes (system command; default: "
               "config)\n"
               "  --scale X         dataset scale (default 1.0)\n"
               "  --seed N          workload seed (default 42)\n"
               "  --set key=value   config override (repeatable)\n"
               "  --closed-loop     execution-driven feed (default: "
               "streaming)\n"
               "  --feed MODE       streaming | closed-loop | lane-group "
               "(SIMT lockstep\n"
               "                    groups of config.warp_lanes threads)\n"
               "  --engine E        serial | parallel | event | "
               "event-parallel (docs/PARALLELISM.md;\n"
               "                    default: event for run/suite, serial "
               "for system)\n"
               "  --engine-threads N  workers for the parallel engines "
               "(0 = hardware)\n"
               "  --jobs N          run paths (run) / workloads (suite) as "
               "N parallel tasks\n"
               "  --tag-pool N      streaming feeder: outstanding tags per "
               "thread (0 = 64 K)\n"
               "  --checks          run model-invariant checks "
               "(docs/INVARIANTS.md)\n"
               "  --profile         idle-cycle census, per-stage residency "
               "and host wall-clock\n"
               "  --csv             machine-readable output\n"
               "  --trace-events F  write Chrome/Perfetto trace-event JSON "
               "(docs/OBSERVABILITY.md)\n"
               "  --sample-every N  sample occupancy probes every N cycles\n"
               "  --sample-out F    write the sampled time series as CSV\n"
               "  --report F        write a machine-readable run report "
               "(JSON)\n"
               "  --snapshot-every N  stream windowed telemetry snapshots "
               "every N cycles\n"
               "  --snapshot-out F  write the snapshot stream "
               "(mac3d-snapshot/1 JSONL)\n"
               "  --watchdog        abandon the run (exit 1) after N "
               "observed windows\n"
               "                    with zero completions while work is in "
               "flight\n"
               "  --watchdog-windows N  stalled windows before firing "
               "(default 3)\n"
               "  --inject-livelock C  fault injection: stop draining "
               "completions at\n"
               "                    cycle C (run command; requires "
               "--watchdog)\n"
               "  --node-policy I=P heterogeneous nodes: node I runs policy "
               "P (system\n"
               "                    command, repeatable; others use "
               "--policy)\n");
}

std::optional<CliOptions> parse(int argc, char** argv) {
  if (argc < 2) return std::nullopt;
  CliOptions options;
  options.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--workload") {
      options.workload = value();
    } else if (arg == "--trace") {
      options.trace_path = value();
    } else if (arg == "--out") {
      options.out_path = value();
    } else if (arg == "--paths") {
      options.paths.clear();
      std::string list = value();
      std::size_t pos = 0;
      while (pos != std::string::npos) {
        const std::size_t comma = list.find(',', pos);
        options.paths.push_back(list.substr(
            pos, comma == std::string::npos ? comma : comma - pos));
        pos = comma == std::string::npos ? comma : comma + 1;
      }
    } else if (arg == "--threads") {
      options.threads = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--nodes") {
      options.nodes = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--scale") {
      options.scale = std::atof(value());
    } else if (arg == "--seed") {
      options.seed = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--set") {
      options.overrides.push_back(value());
    } else if (arg == "--csv") {
      options.csv = true;
    } else if (arg == "--closed-loop") {
      options.closed_loop = true;
    } else if (arg == "--feed") {
      options.feed = value();
      if (options.feed != "streaming" && options.feed != "closed-loop" &&
          options.feed != "lane-group") {
        std::fprintf(stderr,
                     "unknown feed '%s' "
                     "(streaming|closed-loop|lane-group)\n",
                     options.feed.c_str());
        return std::nullopt;
      }
    } else if (arg == "--policy") {
      options.policy = value();
      CoalescerPolicy parsed;
      if (!parse_policy(options.policy, parsed)) {
        std::fprintf(stderr, "unknown policy '%s' (raw|mac|mshr|warp)\n",
                     options.policy.c_str());
        return std::nullopt;
      }
    } else if (arg == "--checks") {
      options.checks = true;
    } else if (arg == "--profile") {
      options.profile = true;
    } else if (arg == "--engine") {
      options.engine = value();
      // "cycle" aliases make the strict engines addressable by what they
      // are in the 4-way differential matrix.
      if (options.engine == "cycle") options.engine = "serial";
      if (options.engine == "cycle-parallel") options.engine = "parallel";
      if (options.engine != "serial" && options.engine != "parallel" &&
          options.engine != "event" && options.engine != "event-parallel") {
        std::fprintf(stderr,
                     "unknown engine '%s' "
                     "(serial|parallel|event|event-parallel)\n",
                     options.engine.c_str());
        return std::nullopt;
      }
    } else if (arg == "--engine-threads") {
      options.engine_threads =
          static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--jobs") {
      options.jobs = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--tag-pool") {
      options.tag_pool = static_cast<std::uint32_t>(std::atoi(value()));
    } else if (arg == "--trace-events") {
      options.trace_events = value();
    } else if (arg == "--sample-every") {
      options.sample_every = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--sample-out") {
      options.sample_out = value();
    } else if (arg == "--report") {
      options.report_path = value();
    } else if (arg == "--snapshot-every") {
      options.snapshot_every = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--snapshot-out") {
      options.snapshot_out = value();
    } else if (arg == "--watchdog") {
      options.watchdog = true;
    } else if (arg == "--watchdog-windows") {
      options.watchdog_windows = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--inject-livelock") {
      options.inject_livelock = std::strtoull(value(), nullptr, 10);
    } else if (arg == "--node-policy") {
      const std::string entry = value();
      const std::size_t eq = entry.find('=');
      CoalescerPolicy parsed;
      if (eq == std::string::npos || eq == 0 ||
          !parse_policy(entry.substr(eq + 1), parsed)) {
        std::fprintf(stderr,
                     "bad --node-policy '%s' (want I=raw|mac|mshr|warp)\n",
                     entry.c_str());
        return std::nullopt;
      }
      options.node_policies.push_back(entry);
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return std::nullopt;
    }
  }
  return options;
}

SimConfig make_config(const CliOptions& options) {
  SimConfig config;
  config.apply_env();
  for (const std::string& override_text : options.overrides) {
    config.parse_override_string(override_text);
  }
  if (!options.policy.empty()) {
    config.parse_override_string("policy=" + options.policy);
  }
  // --nodes must land before validate(): node_policies indices are
  // checked against the final node count.
  if (options.nodes != 0) config.nodes = options.nodes;
  if (!options.node_policies.empty()) {
    // Canonicalize the repeatable I=P flags into the config's
    // "I:P;I:P" string so the override lands in the report's config
    // snapshot (and round-trips through MAC3D_CONFIG).
    std::string joined;
    for (const std::string& entry : options.node_policies) {
      if (!joined.empty()) joined += ";";
      std::string item = entry;
      item[item.find('=')] = ':';
      joined += item;
    }
    config.parse_overrides({{"node_policies", joined}});
  }
  config.validate();
  return config;
}

/// --feed / --closed-loop -> driver feed mode.
FeedMode drive_feed(const CliOptions& options) {
  if (options.feed == "closed-loop" || options.closed_loop) {
    return FeedMode::kClosedLoop;
  }
  if (options.feed == "lane-group") return FeedMode::kLaneGroup;
  return FeedMode::kStreaming;
}

const char* feed_name(FeedMode mode) {
  switch (mode) {
    case FeedMode::kClosedLoop: return "closed_loop";
    case FeedMode::kLaneGroup: return "lane_group";
    case FeedMode::kStreaming: break;
  }
  return "streaming";
}

MemoryTrace make_trace(const CliOptions& options, const SimConfig& config) {
  if (!options.trace_path.empty()) {
    return load_trace(options.trace_path);
  }
  const Workload* workload = find_workload(options.workload);
  if (workload == nullptr) {
    std::fprintf(stderr, "unknown workload '%s' (try `mac3d list`)\n",
                 options.workload.c_str());
    std::exit(2);
  }
  WorkloadParams params;
  params.threads = options.threads == 0 ? config.cores : options.threads;
  params.scale = options.scale;
  params.seed = options.seed;
  params.config = config;
  return workload->trace(params);
}

/// --engine string -> driver engine for run/suite ("" = the event
/// fast-forward default; all engines are bit-identical, so the default is
/// purely a wall-clock choice).
Engine drive_engine(const std::string& name) {
  if (name == "parallel") return Engine::kParallel;
  if (name == "serial") return Engine::kSerial;
  if (name == "event-parallel") return Engine::kEventParallel;
  return Engine::kEvent;  // "event" and the run/suite default
}

int cmd_run(const CliOptions& cli) {
  const auto wall_start = std::chrono::steady_clock::now();
  // --policy narrows the default path list (an explicit --paths wins).
  CliOptions options = cli;
  if (!options.policy.empty() && cli.paths == CliOptions{}.paths) {
    options.paths = {options.policy};
  }
  if (!options.node_policies.empty()) {
    std::fprintf(stderr,
                 "mac3d: --node-policy applies to the system command "
                 "(run selects front-ends with --paths)\n");
    return 2;
  }
  if (options.inject_livelock != 0 && !options.watchdog) {
    std::fprintf(stderr,
                 "mac3d: --inject-livelock requires --watchdog (the "
                 "faulted run would never terminate)\n");
    return 2;
  }
  const SimConfig config = make_config(options);
  const std::uint32_t threads =
      options.threads == 0 ? config.cores : options.threads;
  const MemoryTrace trace = make_trace(options, config);

  DriveOptions drive;
  drive.mode = drive_feed(options);
  drive.engine = drive_engine(options.engine);
  drive.engine_threads = options.engine_threads;
  drive.tag_pool = options.tag_pool;
  CheckContext checks(CheckContext::FailMode::kCount);
  if (options.checks) {
#if !MAC3D_CHECKS_ENABLED
    std::fprintf(stderr,
                 "mac3d: warning: built with -DMAC3D_CHECKS=OFF; "
                 "--checks will run no checks\n");
#endif
    drive.checks = &checks;
  }

  // Telemetry (docs/OBSERVABILITY.md). The run report needs the per-stage
  // histograms, so --report enables the lifecycle tracer too.
  const bool want_tracer =
      !options.trace_events.empty() || !options.report_path.empty();
  const bool want_sampler =
      options.sample_every > 0 || !options.sample_out.empty();
  const bool want_snapshot = options.snapshot_every > 0 ||
                             !options.snapshot_out.empty() ||
                             options.watchdog;
#if !MAC3D_OBS_ENABLED
  if (options.watchdog || options.inject_livelock != 0) {
    // The drivers compile the snapshot serial points out under OBS=OFF:
    // the watchdog would never observe a window (and an injected
    // livelock would hang forever), so refuse instead of warning.
    std::fprintf(stderr,
                 "mac3d: --watchdog/--inject-livelock need a "
                 "-DMAC3D_OBS=ON build\n");
    return 2;
  }
  if (want_tracer || want_sampler || want_snapshot || options.profile) {
    std::fprintf(stderr,
                 "mac3d: warning: built with -DMAC3D_OBS=OFF; telemetry "
                 "options will record nothing\n");
  }
#endif
  LifecycleTracer tracer;
  if (!options.trace_events.empty() &&
      !tracer.open_trace(options.trace_events)) {
    std::fprintf(stderr, "mac3d: cannot open %s for writing\n",
                 options.trace_events.c_str());
    return 2;
  }
  CycleSampler sampler(options.sample_every == 0 ? 64 : options.sample_every);
  if (want_tracer) drive.sink = &tracer;
  if (want_sampler) drive.sampler = &sampler;

  // Streaming snapshots + stall watchdog (docs/OBSERVABILITY.md
  // §streaming snapshots). --watchdog without --snapshot-every rides
  // the default window.
  SnapshotStreamer snapshot(options.snapshot_every == 0
                                ? 1024
                                : options.snapshot_every);
  StallWatchdog watchdog(options.watchdog_windows);
  if (want_snapshot) {
    drive.snapshot = &snapshot;
    drive.inject_livelock_at = options.inject_livelock;
    if (options.watchdog) snapshot.attach_watchdog(&watchdog);
  }

  // --profile (docs/OBSERVABILITY.md §profiler): one census and one
  // latency decomposer per path (the driver seals each census at the end
  // of its run), one host profiler shared across the whole invocation.
  // The decomposer tees every event into the tracer, so --profile and
  // --trace-events/--report compose.
  std::vector<ActivityCensus> censuses;
  std::vector<std::unique_ptr<LatencyDecomposer>> decomposers;
  HostProfiler profiler;
  if (options.profile) {
    censuses.resize(options.paths.size());
    for (std::size_t i = 0; i < options.paths.size(); ++i) {
      decomposers.push_back(std::make_unique<LatencyDecomposer>(
          want_tracer ? &tracer : nullptr));
      if (!options.trace_events.empty()) {
        decomposers.back()->attach_trace(&tracer);
      }
    }
    drive.profiler = &profiler;
  }

  std::vector<CoalescerPolicy> policies(options.paths.size());
  for (std::size_t i = 0; i < options.paths.size(); ++i) {
    if (!parse_policy(options.paths[i], policies[i])) {
      std::fprintf(stderr, "unknown path '%s' (raw|mac|mshr|warp)\n",
                   options.paths[i].c_str());
      return 2;
    }
  }
  std::vector<DriverResult> results(options.paths.size());
  const auto run_path = [&](std::size_t index) {
    results[index] = run_policy(policies[index], trace, config, threads,
                                drive);
  };
  // Paths are independent runs over the same (immutable) trace, so --jobs
  // shards them across a worker pool — unless shared telemetry/check
  // state forces the one-at-a-time schedule (docs/PARALLELISM.md).
  const std::uint32_t jobs =
      options.jobs == 0 ? ParallelStepper::env_jobs(1) : options.jobs;
  const bool hooks_attached = options.checks || want_tracer ||
                              want_sampler || want_snapshot ||
                              options.profile;
  if (jobs > 1 && !hooks_attached && options.paths.size() > 1) {
    ParallelStepper stepper(jobs);
    stepper.for_shards(options.paths.size(), run_path);
  } else {
    for (std::size_t i = 0; i < options.paths.size(); ++i) {
      if (want_tracer) tracer.begin_path(options.paths[i]);
      if (options.profile) {
        drive.sink = decomposers[i].get();
        drive.census = &censuses[i];
      }
      run_path(i);
    }
  }
  tracer.finish();

  if (!options.sample_out.empty() && !sampler.write_csv(options.sample_out)) {
    std::fprintf(stderr, "mac3d: cannot write %s\n",
                 options.sample_out.c_str());
    return 2;
  }
  if (!options.snapshot_out.empty() &&
      !snapshot.write(options.snapshot_out)) {
    std::fprintf(stderr, "mac3d: cannot write %s\n",
                 options.snapshot_out.c_str());
    return 2;
  }

  if (!options.report_path.empty()) {
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    RunReport report;
    report.set_string("workload", options.trace_path.empty()
                                      ? options.workload
                                      : options.trace_path);
    report.set_string("feed_mode", feed_name(drive.mode));
    report.set_number("threads", static_cast<double>(threads));
    report.set_number("scale", options.scale);
    report.set_number("seed", static_cast<double>(options.seed));
    report.set_number("trace_records", static_cast<double>(trace.size()));
    report.set_number("wall_seconds", wall_seconds);
    report.set_number("telemetry_monotonicity_errors",
                      static_cast<double>(tracer.monotonicity_errors()));
    report.set_number("telemetry_completeness_errors",
                      static_cast<double>(tracer.completeness_errors()));
    report.set_number("telemetry_abandoned_records",
                      static_cast<double>(tracer.abandoned_records()));
    report.set_number("telemetry_in_flight_at_end",
                      static_cast<double>(tracer.in_flight_at_end()));
    if (options.watchdog) {
      report.set_raw("watchdog", watchdog.to_json());
    }
    if (options.checks) {
      StatSet check_stats;
      checks.collect(check_stats, "checks");
      report.set_raw("checks", check_stats.to_json());
    }
    report.set_config(config);
    for (const DriverResult& result : results) {
      StatSet stats;
      result.collect(stats, result.path);
      report.set_path_stats(result.path, stats);
      const LifecycleTracer::PathTelemetry* telemetry =
          tracer.path(result.path);
      if (telemetry == nullptr) continue;
      report.set_path_request_latency(result.path,
                                      telemetry->request_latency);
      for (std::size_t s = 0; s < kStageCount; ++s) {
        if (telemetry->stage_latency[s].count() == 0) continue;
        report.add_path_stage(result.path,
                              to_string(static_cast<Stage>(s)),
                              telemetry->stage_latency[s]);
      }
    }
    if (options.profile) {
      // Keyed per path, like the "paths" section. The census export is
      // printed (and traced) but deliberately not folded into the report:
      // the `node0.*` namespaces from multiple paths would collide.
      std::string latency_json = "{";
      for (std::size_t i = 0; i < options.paths.size(); ++i) {
        if (i != 0) latency_json += ",";
        latency_json += "\"" + options.paths[i] +
                        "\":" + decomposers[i]->to_json();
      }
      latency_json += "}";
      report.set_latency(std::move(latency_json));
      report.set_host(profiler.to_json());
    }
    if (!report.write(options.report_path)) {
      std::fprintf(stderr, "mac3d: cannot write %s\n",
                   options.report_path.c_str());
      return 2;
    }
  }

  const int watchdog_exit = options.watchdog && watchdog.fired() ? 1 : 0;
  if (watchdog_exit != 0) {
    std::fprintf(stderr,
                 "mac3d: watchdog fired at cycle %llu (%llu consecutive "
                 "windows with zero completions, work in flight)\n",
                 static_cast<unsigned long long>(watchdog.fired_at()),
                 static_cast<unsigned long long>(
                     watchdog.stalled_windows()));
  }

  if (options.csv) {
    StatSet stats;
    for (const DriverResult& result : results) {
      result.collect(stats, result.path);
    }
    if (options.checks) checks.collect(stats, "checks");
    std::cout << stats.to_csv();
    return options.checks && checks.violations() != 0 ? 1 : watchdog_exit;
  }

  print_banner("mac3d run: " +
               (options.trace_path.empty() ? options.workload
                                           : options.trace_path));
  std::printf("%s records, %u threads, scale %.2f, %s feed\n\n",
              Table::count(trace.size()).c_str(), threads, options.scale,
              feed_name(drive.mode));
  Table table({"path", "packets", "coal. eff", "bw eff", "avg packet",
               "bank conflicts", "avg latency", "makespan"});
  for (const DriverResult& result : results) {
    table.add_row(
        {result.path, Table::count(result.packets),
         Table::pct(result.coalescing_efficiency()),
         Table::pct(result.bandwidth_efficiency()),
         Table::bytes(static_cast<std::uint64_t>(result.avg_packet_bytes)),
         Table::count(result.bank_conflicts),
         Table::fmt(result.avg_latency_cycles, 0) + " cy",
         Table::count(result.makespan) + " cy"});
  }
  table.print();
  if (options.profile) {
    for (std::size_t i = 0; i < options.paths.size(); ++i) {
      std::printf("\n[%s] idle-cycle census (dead time %.1f%%)\n%s",
                  options.paths[i].c_str(),
                  100.0 * censuses[i].dead_time_fraction(),
                  censuses[i].to_table().c_str());
      std::printf("\n[%s] per-stage residency\n%s", options.paths[i].c_str(),
                  decomposers[i]->to_table().c_str());
    }
    std::printf("\nhost wall-clock attribution\n%s",
                profiler.to_table().c_str());
  }
  if (results.size() >= 2 && results[0].path == "raw") {
    for (std::size_t i = 1; i < results.size(); ++i) {
      std::printf("memory speedup %s vs raw: %s\n",
                  results[i].path.c_str(),
                  Table::pct(memory_speedup(results[0], results[i])).c_str());
    }
  }
  if (options.checks) {
    std::printf("\n%s", checks.report().c_str());
    return checks.violations() == 0 ? watchdog_exit : 1;
  }
  return watchdog_exit;
}

int cmd_suite(const CliOptions& options) {
  SuiteOptions suite;
  suite.config = make_config(options);
  suite.threads = options.threads == 0 ? suite.config.cores : options.threads;
  suite.scale = options.scale;
  suite.seed = options.seed;
  suite.jobs = options.jobs == 0 ? env_jobs(1) : options.jobs;
  suite.drive.engine = drive_engine(options.engine);
  suite.drive.engine_threads = options.engine_threads;
  suite.drive.tag_pool = options.tag_pool;
  const auto runs = run_suite(suite);
  if (options.csv) {
    // Plain numbers (no thousands separators) to keep the CSV parseable.
    std::printf(
        "workload,raw_packets,mac_packets,coalescing_efficiency,"
        "bandwidth_efficiency,speedup\n");
    for (const WorkloadRun& run : runs) {
      std::printf("%s,%llu,%llu,%.6f,%.6f,%.6f\n", run.name.c_str(),
                  static_cast<unsigned long long>(run.raw.packets),
                  static_cast<unsigned long long>(run.mac.packets),
                  run.mac.coalescing_efficiency(),
                  run.mac.bandwidth_efficiency(),
                  memory_speedup(run.raw, run.mac));
    }
    return 0;
  }
  Table table({"workload", "raw packets", "MAC packets", "coal. eff",
               "bw eff", "speedup"});
  for (const WorkloadRun& run : runs) {
    table.add_row({run.name, Table::count(run.raw.packets),
                   Table::count(run.mac.packets),
                   Table::pct(run.mac.coalescing_efficiency()),
                   Table::pct(run.mac.bandwidth_efficiency()),
                   Table::pct(memory_speedup(run.raw, run.mac))});
  }
  print_banner("mac3d suite");
  table.print();
  return 0;
}

// Closed-loop multi-node System run (paper Sec. 3): the command that
// exercises the full distributed observability stack — per-node metric
// namespaces, fabric link counters, cross-node flow arrows and the /2
// report's "metrics" section.
int cmd_system(const CliOptions& options) {
  const auto wall_start = std::chrono::steady_clock::now();
  if (options.inject_livelock != 0) {
    std::fprintf(stderr,
                 "mac3d: --inject-livelock applies to the run command\n");
    return 2;
  }
  SimConfig config = make_config(options);  // applies --nodes pre-validate
  const MemoryTrace trace = make_trace(options, config);

  System system(config);
  system.attach_trace(trace);

  CheckContext checks(CheckContext::FailMode::kCount);
  if (options.checks) system.attach_checks(&checks);

  const bool want_tracer =
      !options.trace_events.empty() || !options.report_path.empty();
  const bool want_sampler =
      options.sample_every > 0 || !options.sample_out.empty();
  const bool want_snapshot = options.snapshot_every > 0 ||
                             !options.snapshot_out.empty() ||
                             options.watchdog;
#if !MAC3D_OBS_ENABLED
  if (options.watchdog) {
    // The engines compile the snapshot serial points out under OBS=OFF:
    // the watchdog would never observe a window, so refuse.
    std::fprintf(stderr,
                 "mac3d: --watchdog needs a -DMAC3D_OBS=ON build\n");
    return 2;
  }
  if (want_tracer || want_sampler || want_snapshot || options.profile ||
      !options.report_path.empty()) {
    std::fprintf(stderr,
                 "mac3d: warning: built with -DMAC3D_OBS=OFF; telemetry "
                 "options will record nothing\n");
  }
#endif
  LifecycleTracer tracer;
  if (!options.trace_events.empty() &&
      !tracer.open_trace(options.trace_events)) {
    std::fprintf(stderr, "mac3d: cannot open %s for writing\n",
                 options.trace_events.c_str());
    return 2;
  }
  CycleSampler sampler(options.sample_every == 0 ? 64 : options.sample_every);
  MetricsRegistry registry;
  ActivityCensus census;
  HostProfiler profiler;
  LatencyDecomposer decomposer(want_tracer ? &tracer : nullptr);
  if (want_tracer) {
    tracer.begin_path("system");
    system.attach_sink(&tracer);
  }
  if (options.profile) {
    // The decomposer tees into the tracer, so it replaces it as the
    // system sink. The census export lands in the metrics registry at
    // end of run (System::finalize_metrics).
    if (!options.trace_events.empty()) decomposer.attach_trace(&tracer);
    system.attach_sink(&decomposer);
    system.attach_census(&census);
    system.attach_profiler(&profiler);
  }
  if (want_sampler) system.attach_sampler(&sampler);
  if (!options.report_path.empty()) system.attach_metrics(&registry);

  SnapshotStreamer snapshot(options.snapshot_every == 0
                                ? 1024
                                : options.snapshot_every);
  StallWatchdog watchdog(options.watchdog_windows);
  if (want_snapshot) {
    if (options.watchdog) snapshot.attach_watchdog(&watchdog);
    system.attach_snapshot(&snapshot);
  }

  // The system command defaults to the strict serial reference engine
  // (its committed baselines predate the event engine; all four engines
  // are bit-identical, so this is a wall-clock choice only).
  const SystemRunSummary summary = [&] {
    if (options.engine == "parallel") {
      return system.run_parallel(options.engine_threads);
    }
    if (options.engine == "event") return system.run_event();
    if (options.engine == "event-parallel") {
      return system.run_event_parallel(options.engine_threads);
    }
    return system.run();
  }();
  census.seal();  // probes reference nodes owned by `system`
  tracer.finish();
  if (options.checks) checks.finalize();

  if (!options.sample_out.empty() && !sampler.write_csv(options.sample_out)) {
    std::fprintf(stderr, "mac3d: cannot write %s\n",
                 options.sample_out.c_str());
    return 2;
  }
  if (!options.snapshot_out.empty() &&
      !snapshot.write(options.snapshot_out)) {
    std::fprintf(stderr, "mac3d: cannot write %s\n",
                 options.snapshot_out.c_str());
    return 2;
  }

  if (!options.report_path.empty()) {
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();
    RunReport report;
    report.set_string("workload", options.trace_path.empty()
                                      ? options.workload
                                      : options.trace_path);
    report.set_string("feed_mode", "closed_loop");
    report.set_number("threads", static_cast<double>(trace.threads()));
    report.set_number("nodes", static_cast<double>(config.nodes));
    report.set_number("scale", options.scale);
    report.set_number("seed", static_cast<double>(options.seed));
    report.set_number("trace_records", static_cast<double>(trace.size()));
    report.set_number("cycles", static_cast<double>(summary.cycles));
    report.set_bool("completed", summary.completed);
    report.set_number("wall_seconds", wall_seconds);
    report.set_number("telemetry_monotonicity_errors",
                      static_cast<double>(tracer.monotonicity_errors()));
    report.set_number("telemetry_completeness_errors",
                      static_cast<double>(tracer.completeness_errors()));
    report.set_number("telemetry_abandoned_records",
                      static_cast<double>(tracer.abandoned_records()));
    report.set_number("telemetry_in_flight_at_end",
                      static_cast<double>(tracer.in_flight_at_end()));
    report.set_number("telemetry_hop_events",
                      static_cast<double>(tracer.hop_events()));
    if (options.watchdog) {
      report.set_raw("watchdog", watchdog.to_json());
    }
    if (options.checks) {
      StatSet check_stats;
      checks.collect(check_stats, "checks");
      report.set_raw("checks", check_stats.to_json());
    }
    report.set_config(config);
    report.set_metrics(registry);
    report.set_path_stats("system", summary.stats);
    const LifecycleTracer::PathTelemetry* telemetry = tracer.path("system");
    if (telemetry != nullptr) {
      report.set_path_request_latency("system", telemetry->request_latency);
      for (std::size_t s = 0; s < kStageCount; ++s) {
        if (telemetry->stage_latency[s].count() == 0) continue;
        report.add_path_stage("system", to_string(static_cast<Stage>(s)),
                              telemetry->stage_latency[s]);
      }
    }
    if (options.profile) {
      report.set_latency("{\"system\":" + decomposer.to_json() + "}");
      report.set_host(profiler.to_json());
    }
    if (!report.write(options.report_path)) {
      std::fprintf(stderr, "mac3d: cannot write %s\n",
                   options.report_path.c_str());
      return 2;
    }
  }

  const int watchdog_exit = options.watchdog && watchdog.fired() ? 1 : 0;
  if (watchdog_exit != 0) {
    std::fprintf(stderr,
                 "mac3d: watchdog fired at cycle %llu (%llu consecutive "
                 "windows with zero completions, work in flight)\n",
                 static_cast<unsigned long long>(watchdog.fired_at()),
                 static_cast<unsigned long long>(
                     watchdog.stalled_windows()));
  }

  if (options.csv) {
    std::cout << summary.stats.to_csv();
    return options.checks && checks.violations() != 0 ? 1 : watchdog_exit;
  }

  print_banner("mac3d system: " +
               (options.trace_path.empty() ? options.workload
                                           : options.trace_path));
  std::printf(
      "%u nodes, %u threads, %s records, %s engine\n"
      "cycles %s%s, requests %s, completions %s, avg latency %.0f cy\n",
      config.nodes, trace.threads(), Table::count(trace.size()).c_str(),
      options.engine.empty() ? "serial" : options.engine.c_str(),
      Table::count(summary.cycles).c_str(),
      summary.completed ? "" : " (cycle limit hit)",
      Table::count(summary.requests).c_str(),
      Table::count(summary.completions).c_str(), summary.avg_latency_cycles);
  if (options.profile) {
    std::printf("\nidle-cycle census (dead time %.1f%%)\n%s",
                100.0 * census.dead_time_fraction(),
                census.to_table().c_str());
    std::printf("\nper-stage residency\n%s", decomposer.to_table().c_str());
    std::printf("\nhost wall-clock attribution\n%s",
                profiler.to_table().c_str());
  }
  if (options.checks) {
    std::printf("\n%s", checks.report().c_str());
    return checks.violations() == 0 ? watchdog_exit : 1;
  }
  return watchdog_exit;
}

/// `mac3d report-diff OLD NEW [--tolerance PCT] [--ignore PATH]
/// [--allow-missing]`: its positional arguments don't fit the common
/// flag-value parser, so it parses argv itself.
int cmd_report_diff(int argc, char** argv) {
  std::vector<std::string> files;
  DiffOptions diff;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--tolerance") {
      diff.tolerance_pct = std::atof(value());
    } else if (arg == "--ignore") {
      diff.ignore.emplace_back(value());
    } else if (arg == "--allow-missing") {
      diff.fail_on_missing = false;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 2) {
    std::fprintf(stderr,
                 "usage: mac3d report-diff OLD NEW [--tolerance PCT] "
                 "[--ignore PATH] [--allow-missing]\n");
    return 2;
  }
  return run_report_diff(files[0], files[1], diff);
}

/// `mac3d analyze REPORT --snapshots FILE [--json FILE]
/// [--tolerance PCT]`: post-run bottleneck diagnosis over a run report
/// plus its snapshot stream (docs/OBSERVABILITY.md §analyze). Positional
/// REPORT, so it parses argv itself. Exit 0 clean, 1 when the watchdog
/// fired or a conservation audit fails, 2 on IO/parse/usage trouble.
int cmd_analyze(int argc, char** argv) {
  std::vector<std::string> files;
  std::string snapshots;
  std::string json_out;
  AnalysisOptions analysis;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--snapshots") {
      snapshots = value();
    } else if (arg == "--json") {
      json_out = value();
    } else if (arg == "--tolerance") {
      analysis.tolerance_pct = std::atof(value());
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return 2;
    } else {
      files.push_back(arg);
    }
  }
  if (files.size() != 1 || snapshots.empty()) {
    std::fprintf(stderr,
                 "usage: mac3d analyze REPORT --snapshots FILE "
                 "[--json FILE] [--tolerance PCT]\n");
    return 2;
  }
  return run_analyze(files[0], snapshots, json_out, analysis);
}

/// `mac3d lint [--root DIR] [--baseline FILE] [--sarif FILE]
/// [--write-baseline FILE] [--list-rules]`: like report-diff, its flags
/// don't fit the common parser, so it parses argv itself
/// (docs/STATIC_ANALYSIS.md).
int cmd_lint(int argc, char** argv) {
  lint::LintCliOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--root") {
      options.root = value();
    } else if (arg == "--baseline") {
      options.baseline = value();
    } else if (arg == "--sarif") {
      options.sarif = value();
    } else if (arg == "--write-baseline") {
      options.write_baseline = value();
    } else if (arg == "--list-rules") {
      options.list_rules = true;
    } else {
      std::fprintf(stderr,
                   "usage: mac3d lint [--root DIR] [--baseline FILE] "
                   "[--sarif FILE] [--write-baseline FILE] [--list-rules]\n");
      return 2;
    }
  }
  return lint::run_lint_cli(options);
}

int cmd_trace(const CliOptions& options) {
  const SimConfig config = make_config(options);
  const MemoryTrace trace = make_trace(options, config);
  const std::string out = options.out_path.empty()
                              ? options.workload + ".trace"
                              : options.out_path;
  save_trace(trace, out);
  std::printf("wrote %s records (%u threads) to %s\n",
              Table::count(trace.size()).c_str(), trace.threads(),
              out.c_str());
  return 0;
}

int cmd_list() {
  for (const Workload* workload : workload_registry()) {
    std::printf("%-10s %s\n", workload->name().c_str(),
                workload->description().c_str());
  }
  return 0;
}

int cmd_config(const CliOptions& options) {
  const SimConfig config = make_config(options);
  std::printf("%s", config.to_table().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "report-diff") == 0) {
    return cmd_report_diff(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "analyze") == 0) {
    return cmd_analyze(argc, argv);
  }
  if (argc >= 2 && std::strcmp(argv[1], "lint") == 0) {
    return cmd_lint(argc, argv);
  }
  const std::optional<CliOptions> options = parse(argc, argv);
  if (!options) {
    usage();
    return 2;
  }
  try {
    if (options->command == "run") return cmd_run(*options);
    if (options->command == "suite") return cmd_suite(*options);
    if (options->command == "system") return cmd_system(*options);
    if (options->command == "trace") return cmd_trace(*options);
    if (options->command == "list") return cmd_list();
    if (options->command == "config") return cmd_config(*options);
  } catch (const std::exception& error) {
    std::fprintf(stderr, "mac3d: %s\n", error.what());
    return 1;
  }
  usage();
  return 2;
}
