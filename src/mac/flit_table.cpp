#include "mac/flit_table.hpp"

#include <stdexcept>

#include "common/bitutil.hpp"

namespace mac3d {

FlitTable::FlitTable(std::uint32_t row_bytes, std::uint32_t min_bytes)
    : row_bytes_(row_bytes), min_bytes_(min_bytes) {
  if (!is_pow2(row_bytes) || !is_pow2(min_bytes) || min_bytes > row_bytes) {
    throw std::invalid_argument("FlitTable: bad geometry");
  }
  groups_ = row_bytes / min_bytes;
  if (groups_ > 16) {
    throw std::invalid_argument(
        "FlitTable: more than 16 groups; enlarge builder_min_bytes");
  }
  table_.resize(std::size_t{1} << groups_);
  for (std::uint32_t pattern = 1; pattern < table_.size(); ++pattern) {
    table_[pattern] = compute(pattern);
  }
}

PacketShape FlitTable::compute(std::uint32_t pattern) const {
  const std::uint32_t first = lowest_bit(pattern);
  const std::uint32_t last = highest_bit(pattern);
  const std::uint32_t span_groups = last - first + 1;

  // Smallest power-of-two group count covering the span.
  std::uint32_t size_groups = 1;
  while (size_groups < span_groups) size_groups <<= 1;

  PacketShape shape;
  shape.size_bytes = size_groups * min_bytes_;
  shape.offset_bytes = first * min_bytes_;
  // Keep the packet inside the row.
  if (shape.offset_bytes + shape.size_bytes > row_bytes_) {
    shape.offset_bytes = row_bytes_ - shape.size_bytes;
  }
  return shape;
}

PacketShape FlitTable::lookup(std::uint32_t pattern) const {
  if (pattern == 0 || pattern >= table_.size()) {
    throw std::out_of_range("FlitTable: pattern out of range");
  }
  return table_[pattern];
}

std::uint32_t FlitTable::storage_bytes() const noexcept {
  // Per entry: a size field (1 + log2(groups) bits, encoding group counts
  // 1..groups) and a start-group field of the same width. For the paper's
  // 16-entry table this gives 16 * 6 bits = 12 B, matching Sec. 4.2.1.
  const std::uint32_t field_bits = log2_exact(groups_) + 1;
  const std::uint32_t total_bits = entries() * 2 * field_bits;
  return (total_bits + 7) / 8;
}

}  // namespace mac3d
