#include "mac/warp_coalescer.hpp"

#include <algorithm>

#include "check/invariants.hpp"

namespace mac3d {

void WarpStats::collect(StatSet& out, const std::string& prefix) const {
  out.set(prefix + ".raw_in", static_cast<double>(raw_in));
  out.set(prefix + ".fences_in", static_cast<double>(fences_in));
  out.set(prefix + ".windows", static_cast<double>(windows));
  out.set(prefix + ".packets_out", static_cast<double>(packets_out));
  out.set(prefix + ".merged_lanes", static_cast<double>(merged_lanes));
  out.set(prefix + ".replays", static_cast<double>(replays));
  out.set(prefix + ".completions", static_cast<double>(completions));
  out.set(prefix + ".coalescing_efficiency", coalescing_efficiency());
  out.set(prefix + ".avg_raw_latency_cycles", raw_latency_cycles.mean());
  for (const auto& [size, count] : packets_by_size) {
    out.set(prefix + ".packets_" + std::to_string(size) + "B",
            static_cast<double>(count));
  }
}

WarpCoalescer::WarpCoalescer(const SimConfig& config, HmcDevice& device)
    : config_(config),
      device_(device),
      queue_capacity_(config.queue_depth),
      lanes_(config.warp_lanes),
      window_cycles_(config.warp_window_cycles) {
  config_.validate();
}

WarpCoalescer::~WarpCoalescer() = default;

bool WarpCoalescer::try_accept(const RawRequest& request, Cycle now) {
  if (pending_.size() >= queue_capacity_) return false;
  if (accepts_at_ == now && accepts_this_cycle_ >= 2) return false;
  if (accepts_at_ != now) {
    accepts_at_ = now;
    accepts_this_cycle_ = 0;
  }
  ++accepts_this_cycle_;
  pending_.push_back(Lane{request, now, false});
  MAC3D_OBS_ACTIVITY(last_work_, now);
  accept_cycle_.put(key(request), now);
  if (request.op == MemOp::kFence) {
    ++stats_.fences_in;
  } else {
    ++stats_.raw_in;
  }
  MAC3D_OBS_STAMP(sink_, Stage::kQueueInsert, request.tid, request.tag, now);
#if MAC3D_CHECKS_ENABLED
  if (conservation_ != nullptr) {
    conservation_->on_accept(request.tid, request.tag, request.op, now);
  }
#endif
  return true;
}

std::size_t WarpCoalescer::head_run(bool& terminated) const noexcept {
  std::size_t run = 0;
  terminated = false;
  while (run < pending_.size() && run < lanes_) {
    if (pending_.at(run).request.op == MemOp::kFence) {
      terminated = true;
      break;
    }
    ++run;
  }
  return run;
}

bool WarpCoalescer::window_ready(Cycle now) const noexcept {
  if (pending_.empty()) return false;
  const Lane& head = pending_.front();
  if (head.request.op == MemOp::kFence) return false;
  bool terminated = false;
  const std::size_t run = head_run(terminated);
  return run >= lanes_ || terminated ||
         now >= head.accepted + window_cycles_;
}

void WarpCoalescer::form_window(Cycle now) {
  bool terminated = false;
  const std::size_t run = head_run(terminated);
  window_.clear();
  window_served_ = 0;
  window_.reserve(run);
  for (std::size_t i = 0; i < run; ++i) {
    window_.push_back(pending_.front());
    pending_.pop_front();
  }
  ++stats_.windows;
  MAC3D_CHECK(checks_, inv::kWarpWindowBound,
              !window_.empty() && window_.size() <= lanes_, now,
              "formed a window of " + std::to_string(window_.size()) +
                  " lanes against a cap of " + std::to_string(lanes_));
  MAC3D_OBS_ACTIVITY(last_work_, now);
}

bool WarpCoalescer::issue_iteration(Cycle now) {
  std::size_t leader = window_.size();
  for (std::size_t i = 0; i < window_.size(); ++i) {
    if (!window_[i].served) {
      leader = i;
      break;
    }
  }
  assert(leader < window_.size());
  const RawRequest lead = window_[leader].request;
  const Address block = align_down(lead.addr, config_.warp_block_bytes);
  const bool lead_store = lead.op == MemOp::kStore;
  const bool lead_atomic = lead.op == MemOp::kAtomic;

  // Lanes riding the leader's packet: same merge block, same operation
  // class. Atomics never merge (they carry read-modify-write semantics).
  std::vector<std::size_t> merged;
  merged.push_back(leader);
  if (!lead_atomic) {
    for (std::size_t i = leader + 1; i < window_.size(); ++i) {
      if (window_[i].served) continue;
      const RawRequest& req = window_[i].request;
      if (req.op == MemOp::kAtomic) continue;
      if ((req.op == MemOp::kStore) != lead_store) continue;
      if (align_down(req.addr, config_.warp_block_bytes) != block) continue;
      merged.push_back(i);
    }
  }

  Address lo = ~Address{0};
  Address hi = 0;
  for (const std::size_t i : merged) {
    const Address flit_addr = align_down(window_[i].request.addr, kFlitBytes);
    lo = std::min(lo, flit_addr);
    hi = std::max(hi, flit_addr);
  }
  HmcRequest request;
  request.addr = lo;
  request.data_bytes = static_cast<std::uint32_t>(hi - lo) + kFlitBytes;
  request.write = lead_store;
  request.atomic = lead_atomic;
  request.home_node = lead.node;
  const AddressMap& map = device_.address_map();
  for (const std::size_t i : merged) {
    const RawRequest& req = window_[i].request;
    const std::uint32_t flit = map.flit_of(map.local_addr(req.addr));
    request.targets.push_back(
        Target{req.tid, req.tag, static_cast<std::uint8_t>(flit)});
  }
  MAC3D_CHECK(checks_, inv::kWarpPacketSpan,
              request.data_bytes <= config_.warp_block_bytes &&
                  align_down(request.addr, config_.warp_block_bytes) ==
                      align_down(request.addr + request.data_bytes - 1,
                                 config_.warp_block_bytes),
              now, "warp packet leaks across its merge block");
  if (!device_.can_accept(request, now)) return false;

  const std::uint32_t packet_bytes = request.data_bytes;
  request.id = next_txn_++;
  device_.submit(std::move(request), now);
  ++outstanding_;
  ++stats_.packets_out;
  stats_.merged_lanes += merged.size() - 1;
  if (window_served_ > 0) ++stats_.replays;
  ++stats_.packets_by_size[packet_bytes];
  MAC3D_OBS_STAMP(sink_, Stage::kBuilderPick, lead.tid, lead.tag, now);
  for (std::size_t m = 1; m < merged.size(); ++m) {
    const RawRequest& req = window_[merged[m]].request;
    MAC3D_OBS_STAMP(sink_, Stage::kMerge, req.tid, req.tag, now);
  }
  for (const std::size_t i : merged) window_[i].served = true;
  window_served_ += merged.size();
  if (window_served_ == window_.size()) {
    window_.clear();
    window_served_ = 0;
  }
  MAC3D_OBS_ACTIVITY(last_work_, now);
  return true;
}

void WarpCoalescer::tick(Cycle now) {
  last_cycle_ = now;
  // 1. Retire a head fence once the window and the device drained.
  if (unserved() == 0 && !pending_.empty() &&
      pending_.front().request.op == MemOp::kFence && outstanding_ == 0) {
    const Lane head = pending_.front();
    CompletedAccess done;
    done.target = Target{head.request.tid, head.request.tag, 0};
    done.fence = true;
    done.accepted = accept_cycle_.take(key(done.target), now);
    done.completed = now;
    ready_.push_back(done);
    pending_.pop_front();
    MAC3D_OBS_ACTIVITY(last_work_, now);
  }
  // 2. Move the head run into a window when full, fence-bounded or timed
  //    out.
  if (unserved() == 0 && window_ready(now)) form_window(now);
  // 3. One coalescing iteration; a device-refused packet retries next
  //    cycle.
  if (unserved() > 0) (void)issue_iteration(now);
}

std::vector<CompletedAccess> WarpCoalescer::drain(Cycle now) {
  std::vector<CompletedAccess> out;
  out.swap(ready_);
  for (const HmcResponse& response : device_.drain(now)) {
    --outstanding_;
    for (const Target& target : response.targets) {
      CompletedAccess done;
      done.target = target;
      done.write = response.write;
      done.completed = response.completed;
      done.accepted = accept_cycle_.take(key(target), response.completed);
      stats_.raw_latency_cycles.add(
          static_cast<double>(done.completed - done.accepted));
      ++stats_.completions;
      out.push_back(done);
    }
  }
  if (!out.empty()) MAC3D_OBS_ACTIVITY(last_work_, now);
#if MAC3D_OBS_ENABLED
  if (sink_ != nullptr) {
    for (const CompletedAccess& done : out) {
      sink_->on_stage(Stage::kResponseMatch, done.target.tid, done.target.tag,
                      done.completed);
    }
  }
#endif
#if MAC3D_CHECKS_ENABLED
  if (conservation_ != nullptr) {
    for (const CompletedAccess& done : out) {
      conservation_->on_complete(done.target.tid, done.target.tag, done.fence,
                                 now);
    }
  }
#endif
  return out;
}

Cycle WarpCoalescer::next_event(Cycle now) const noexcept {
  if (idle()) return 0;
  if (!ready_.empty()) return now;
  if (unserved() > 0) return now + 1;
  if (!pending_.empty()) {
    const Lane& head = pending_.front();
    if (head.request.op != MemOp::kFence) {
      bool terminated = false;
      const std::size_t run = head_run(terminated);
      Cycle wake = (run >= lanes_ || terminated)
                       ? now + 1
                       : std::max(head.accepted + window_cycles_, now + 1);
      if (outstanding_ != 0) {
        const Cycle completion = device_.next_completion();
        wake = std::min(wake, completion > now ? completion : now + 1);
      }
      return wake;
    }
    if (outstanding_ == 0) return now + 1;
  }
  const Cycle completion = device_.next_completion();
  return completion > now ? completion : now + 1;
}

void WarpCoalescer::attach_checks(CheckContext* context,
                                  const std::string& scope) {
  checks_ = context;
  if (context == nullptr) {
    conservation_.reset();
    return;
  }
  conservation_ = std::make_unique<ConservationChecker>(*context, scope);
  context->on_finalize([this](CheckContext&) {
    if (conservation_ != nullptr) conservation_->finalize(last_cycle_);
  });
}

}  // namespace mac3d
