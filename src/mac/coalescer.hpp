// MAC top level: ties the Raw Request Aggregator (ARQ) and the pipelined
// Request Builder together and drives the 3D-stacked memory device
// (paper Fig. 4, right side).
//
// Cycle behaviour (Sec. 4.4):
//  * at most one raw request enters the ARQ per cycle (caller-enforced);
//  * one entry pops from the ARQ every `arq_pop_interval` (2) cycles;
//  * bypass (B-bit), atomic and fence entries skip the Request Builder;
//  * built / bypassed packets issue to the device, at most one per cycle,
//    subject to link back-pressure;
//  * responses are de-coalesced into one completion per merged target.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "common/flat_cycle_map.hpp"
#include "common/ring_queue.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mac/arq.hpp"
#include "mac/request_builder.hpp"
#include "mem/hmc_device.hpp"

namespace mac3d {

class CheckContext;
class ConservationChecker;
class EventSink;

/// One raw request's completion, de-coalesced from a packet response
/// (or a retired fence).
struct CompletedAccess {
  Target target;
  bool write = false;
  bool fence = false;
  bool atomic = false;
  Cycle accepted = 0;   ///< cycle the raw request entered the MAC
  Cycle completed = 0;  ///< cycle its data/ack became available
};

struct MacStats {
  std::uint64_t raw_in = 0;      ///< loads + stores + atomics accepted
  std::uint64_t fences_in = 0;
  std::uint64_t packets_out = 0; ///< total HMC transactions dispatched
  std::uint64_t built_out = 0;   ///< via the Request Builder
  std::uint64_t bypass_out = 0;  ///< B-bit single-FLIT requests
  std::uint64_t atomic_out = 0;
  std::uint64_t completions = 0;
  std::map<std::uint32_t, std::uint64_t> packets_by_size;
  RunningStat raw_latency_cycles;  ///< per raw request, accept -> complete

  /// Request-reduction ratio (paper Eq. 3 as used in Sec. 5.3.1):
  /// 1 - (requests with MAC / raw requests without MAC).
  [[nodiscard]] double coalescing_efficiency() const noexcept {
    return raw_in == 0 ? 0.0
                       : 1.0 - static_cast<double>(packets_out) /
                                   static_cast<double>(raw_in);
  }

  void collect(StatSet& out, const std::string& prefix) const;
};

class MacCoalescer {
 public:
  MacCoalescer(const SimConfig& config, HmcDevice& device);
  ~MacCoalescer();
  MacCoalescer(const MacCoalescer&) = delete;
  MacCoalescer& operator=(const MacCoalescer&) = delete;

  /// Space for one more raw request this cycle? (Conservative: a merge
  /// may still succeed when the queue is full — use try_accept.)
  [[nodiscard]] bool can_accept() const noexcept { return !arq_.full(); }

  /// Present one raw request to the MAC. The ARQ intake is dual-ported:
  /// per cycle it can absorb one *merging* request (updating an existing
  /// entry's FLIT map and target list) and one *allocating* request (a new
  /// entry). Returns false when the required port (or a free entry) is not
  /// available this cycle — the request router must retry next cycle.
  /// The caller keeps (tid, tag) unique among in-flight requests.
  [[nodiscard]] bool try_accept(const RawRequest& request, Cycle now);

  /// try_accept that must succeed (tests, simple feeders).
  void accept(const RawRequest& request, Cycle now);

  /// Advance all MAC stages for cycle `now`. Must be called with
  /// non-decreasing `now`; cycles may be skipped when nothing is pending.
  void tick(Cycle now);

  /// Completions (de-coalesced raw requests and retired fences) available
  /// at or before `now`.
  std::vector<CompletedAccess> drain(Cycle now);

  /// True when no work is buffered anywhere in the MAC or the device.
  [[nodiscard]] bool idle() const noexcept;

  /// Earliest future cycle at which tick/drain could make progress;
  /// returns `now + 1` when work is immediately pending, 0 when idle.
  [[nodiscard]] Cycle next_event(Cycle now) const noexcept;

  [[nodiscard]] const MacStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Arq& arq() const noexcept { return arq_; }
  /// Built/bypassed packets waiting on the link (cycle-sampler probe).
  [[nodiscard]] std::size_t issue_backlog() const noexcept {
    return issue_queue_.size();
  }
  [[nodiscard]] const RequestBuilder& builder() const noexcept {
    return builder_;
  }

  /// Total MAC storage (Sec. 5.3.3): ARQ entries + FLIT map + FLIT table.
  [[nodiscard]] std::uint64_t storage_bytes() const noexcept {
    return arq_.storage_bytes() + builder_.storage_bytes();
  }

  /// Enable model-invariant checking across the whole MAC pipeline (ARQ,
  /// builder, request/response conservation + fence ordering; see
  /// docs/INVARIANTS.md). Registers an end-of-run conservation audit with
  /// the context; run context.finalize() while this object is alive. The
  /// context must outlive the coalescer; pass nullptr to detach.
  /// `scope` names this MAC in failure dumps (e.g. "node0.mac").
  void attach_checks(CheckContext* context, const std::string& scope = "mac");

  /// Deliberate model bug for the invariant test suite: halve the next
  /// built packet's size so it no longer covers every requested FLIT
  /// (builder.flit_coverage must fire).
  void inject_truncate_next_packet() noexcept {
    builder_.inject_truncate_next_packet();
  }

  /// Enable request-lifecycle telemetry (docs/OBSERVABILITY.md): stamps
  /// queue_insert/merge at intake, builder_pick/flit_alloc through the
  /// pipeline and response_match at drain. The sink must outlive the
  /// coalescer; pass nullptr to detach.
  void attach_sink(EventSink* sink) noexcept { sink_ = sink; }

  // ---- Activity oracle (idle-cycle census, docs/OBSERVABILITY.md) --------
  /// Any MAC stage did useful work at `now`: intake accepted, an ARQ
  /// entry popped, the builder produced output, or a packet dispatched.
  [[nodiscard]] bool did_work_this_cycle(Cycle now) const noexcept {
    return last_work_ == now;
  }
  /// Earliest future cycle the MAC could make progress (0 = drained) —
  /// the oracle the planned event-driven engine consumes.
  [[nodiscard]] Cycle next_activity_cycle(Cycle now) const noexcept {
    return next_event(now);
  }
  /// Per-unit activity for the census's finer-grained rows.
  [[nodiscard]] bool arq_did_work(Cycle now) const noexcept {
    return arq_last_work_ == now;
  }
  [[nodiscard]] bool builder_did_work(Cycle now) const noexcept {
    return builder_last_work_ == now;
  }
  [[nodiscard]] bool flit_table_did_work(Cycle now) const noexcept {
    return flit_last_work_ == now;
  }

 private:
  struct IssueItem {
    HmcRequest request;
    Cycle ready_at = 0;
    bool atomic = false;
    bool bypass = false;
  };

  static std::uint64_t key(const Target& target) noexcept {
    return request_key(target.tid, target.tag);
  }

  void pop_stage(Cycle now);
  void issue_stage(Cycle now);

  SimConfig config_;
  HmcDevice& device_;
  Arq arq_;
  RequestBuilder builder_;
  RingQueue<IssueItem> issue_queue_;
  std::vector<CompletedAccess> ready_completions_;
  FlatCycleMap accept_cycle_;
  Cycle next_pop_at_ = 0;
  Cycle last_tick_ = 0;
  Cycle merge_port_used_at_ = ~Cycle{0};  ///< dual-port intake bookkeeping
  Cycle alloc_port_used_at_ = ~Cycle{0};
  Cycle last_work_ = ~Cycle{0};  ///< census slots (MAC3D_OBS_ACTIVITY)
  Cycle arq_last_work_ = ~Cycle{0};
  Cycle builder_last_work_ = ~Cycle{0};
  Cycle flit_last_work_ = ~Cycle{0};
  std::uint64_t outstanding_ = 0;
  TransactionId next_txn_ = 1;
  MacStats stats_;
  CheckContext* checks_ = nullptr;
  EventSink* sink_ = nullptr;
  std::unique_ptr<ConservationChecker> conservation_;
};

}  // namespace mac3d
