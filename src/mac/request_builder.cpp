#include "mac/request_builder.hpp"

#include <cassert>
#include <utility>

namespace mac3d {

RequestBuilder::RequestBuilder(const SimConfig& config, const AddressMap& map)
    : map_(map),
      table_(config),
      groups_(config.builder_groups()),
      flits_per_row_(config.flits_per_row()) {}

void RequestBuilder::accept(ArqEntry entry, Cycle now) {
  assert(can_accept(now));
  assert(!entry.is_fence && !entry.is_atomic);
  assert(!entry.flits.empty());

  const std::uint32_t pattern = entry.flits.group_pattern(groups_);
  const PacketShape shape = table_.lookup(pattern);

  HmcRequest request;
  request.addr = map_.row_base(entry.row) + shape.offset_bytes;
  request.data_bytes = shape.size_bytes;
  request.write = entry.is_store;
  request.home_node = entry.home_node;
  request.targets = std::move(entry.targets);

  Built built;
  built.request = std::move(request);
  built.ready_at = now + kStage1Cycles + kStage2Cycles;
  out_.push_back(std::move(built));

  next_accept_at_ = now + kInitiationInterval;
  ++stats_.accepted;
  ++stats_.built;
  ++stats_.packets_by_size[shape.size_bytes];
}

HmcRequest RequestBuilder::pop_output([[maybe_unused]] Cycle now) {
  assert(has_output(now));
  HmcRequest request = std::move(out_.front().request);
  out_.pop_front();
  return request;
}

}  // namespace mac3d
