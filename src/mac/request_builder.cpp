#include "mac/request_builder.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "check/flit_checks.hpp"

namespace mac3d {

RequestBuilder::RequestBuilder(const SimConfig& config, const AddressMap& map)
    : map_(map),
      table_(config),
      groups_(config.builder_groups()),
      flits_per_row_(config.flits_per_row()) {}

void RequestBuilder::attach_checks(CheckContext* context) {
  checks_ = context;
#if MAC3D_CHECKS_ENABLED
  if (checks_ != nullptr) {
    // The table is immutable; validate its 2^groups capacity and every
    // entry's shape/coverage once at attach time.
    const std::uint32_t row_bytes = flits_per_row_ * kFlitBytes;
    check_flit_table(table_, row_bytes, row_bytes / groups_, *checks_);
  }
#endif
}

void RequestBuilder::accept(ArqEntry entry, Cycle now) {
  assert(can_accept(now));
  assert(!entry.is_fence && !entry.is_atomic);
  assert(!entry.flits.empty());

  const std::uint32_t pattern = entry.flits.group_pattern(groups_);
  PacketShape shape = table_.lookup(pattern);
  if (truncate_next_) {
    // Deliberate conservation bug (invariant test suite only).
    shape.size_bytes = std::max(kFlitBytes, shape.size_bytes / 2);
    truncate_next_ = false;
  }
  const std::size_t entry_targets = entry.targets.size();

  HmcRequest request;
  request.addr = map_.row_base(entry.row) + shape.offset_bytes;
  request.data_bytes = shape.size_bytes;
  request.write = entry.is_store;
  request.home_node = entry.home_node;
  request.targets = std::move(entry.targets);

#if MAC3D_CHECKS_ENABLED
  if (checks_ != nullptr) {
    check_built_packet(entry.flits, entry.row, entry_targets, request,
                       shape.offset_bytes, now, *checks_);
  }
#endif
  (void)entry_targets;

  Built built;
  built.request = std::move(request);
  built.ready_at = now + kStage1Cycles + kStage2Cycles;
  out_.push_back(std::move(built));

  next_accept_at_ = now + kInitiationInterval;
  ++stats_.accepted;
  ++stats_.built;
  ++stats_.packets_by_size[shape.size_bytes];
}

HmcRequest RequestBuilder::pop_output([[maybe_unused]] Cycle now) {
  assert(has_output(now));
  HmcRequest request = std::move(out_.front().request);
  out_.pop_front();
  return request;
}

}  // namespace mac3d
