// Aggregated Request Queue — the Raw Request Aggregator of Sec. 4.1.
//
// A FIFO of entries, each with a hardware comparator on the extended
// address (row number | T-bit, Fig. 5). An incoming raw request is compared
// against every pending entry simultaneously; a hit merges it (setting its
// FLIT-map bit and appending its target), a miss allocates a new entry.
//
// Also implemented here:
//  * memory fences: a fence entry disables the comparators until it is
//    popped (Sec. 4.1);
//  * B (bypass) bit: an entry holding a single request is forwarded
//    directly to the memory, skipping the Request Builder (Sec. 4.1.2);
//  * T (type) bit: loads and stores never merge (Sec. 4.1.2);
//  * fill-fast latency hiding: when more than half of the entries are
//    free, the next N raw requests skip the comparators (Sec. 4.1);
//  * target-capacity limit: an entry stores at most
//    (entry_bytes - addr/map bytes) / 4.5 targets (Sec. 5.3.3).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mac/flit_map.hpp"
#include "mem/address_map.hpp"

namespace mac3d {

class CheckContext;

/// One ARQ entry.
struct ArqEntry {
  std::uint64_t row = 0;       ///< DRAM row number (node-local)
  bool is_store = false;       ///< T bit
  bool is_fence = false;
  bool is_atomic = false;      ///< atomics are never coalesced (Sec. 4.1.2)
  bool bypass = true;          ///< B bit (single request in this row)
  FlitMap flits;               ///< requested FLITs of the row
  std::vector<Target> targets;
  Cycle allocated_at = 0;
  std::uint8_t raw_size = 0;   ///< original access size (bypass path)
  NodeId home_node = 0;

  [[nodiscard]] std::size_t target_count() const noexcept {
    return targets.size();
  }
};

/// ARQ occupancy / merge statistics.
struct ArqStats {
  std::uint64_t inserted = 0;        ///< raw requests accepted
  std::uint64_t merged = 0;          ///< raw requests merged into an entry
  std::uint64_t allocated = 0;       ///< entries newly allocated
  std::uint64_t fences = 0;
  std::uint64_t atomics = 0;
  std::uint64_t popped = 0;          ///< entries popped
  std::uint64_t popped_bypass = 0;   ///< entries popped with B bit set
  std::uint64_t fill_fast_inserts = 0;
  std::uint64_t merge_refused_capacity = 0;  ///< target space exhausted
  RunningStat targets_per_entry;     ///< recorded at pop (Fig. 15)
  RunningStat occupancy;             ///< entries in use, sampled per insert
};

class Arq {
 public:
  Arq(const SimConfig& config, const AddressMap& map);

  [[nodiscard]] bool full() const noexcept {
    return entries_.size() >= capacity_;
  }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Outcome of presenting a raw request to the queue.
  enum class InsertResult {
    kMerged,     ///< absorbed into an existing entry (merge port)
    kAllocated,  ///< new entry allocated (allocation port)
    kRejected,   ///< needs an allocation but no slot / port available
  };

  /// Present one raw request. The ARQ is dual-ported per cycle: the
  /// coalescer passes `allow_merge` / `allow_alloc` according to which
  /// port is still free this cycle. Merging does not need a free slot;
  /// allocation needs one. On kMerged, `*merged_into` (when non-null) is
  /// pointed at the absorbing entry — valid only until the next
  /// insert/pop (telemetry reads the entry's lead target from it).
  [[nodiscard]] InsertResult insert(const RawRequest& request, Cycle now,
                                    bool allow_merge = true,
                                    bool allow_alloc = true,
                                    const ArqEntry** merged_into = nullptr);

  /// Entry at the head, if any.
  [[nodiscard]] const ArqEntry& front() const { return entries_.front(); }

  /// Entry `i` positions behind the head (inspection / tests).
  [[nodiscard]] const ArqEntry& at(std::size_t i) const {
    return entries_.at(i);
  }

  /// Pop the head entry (cadence enforced by the coalescer).
  ArqEntry pop();

  /// True while a fence is pending anywhere in the queue (comparators off).
  [[nodiscard]] bool fence_pending() const noexcept {
    return fence_count_ > 0;
  }

  [[nodiscard]] const ArqStats& stats() const noexcept { return stats_; }

  /// Enable model-invariant checking (docs/INVARIANTS.md §arq). The
  /// context must outlive the queue; pass nullptr to detach.
  void attach_checks(CheckContext* context) noexcept { checks_ = context; }

  /// Hardware storage of the queue in bytes (Fig. 16): entries * entry size.
  [[nodiscard]] std::uint64_t storage_bytes() const noexcept {
    return static_cast<std::uint64_t>(capacity_) * entry_bytes_;
  }
  [[nodiscard]] std::uint32_t comparators() const noexcept {
    return static_cast<std::uint32_t>(capacity_);
  }
  [[nodiscard]] std::uint32_t max_targets_per_entry() const noexcept {
    return max_targets_;
  }

 private:
  void check_popped_entry(const ArqEntry& entry);

  const AddressMap& map_;
  std::size_t capacity_;
  std::uint32_t entry_bytes_;
  std::uint32_t max_targets_;
  std::uint32_t flits_per_row_;
  bool fill_fast_enabled_;
  bool was_above_half_ = false;  ///< edge detector for the fill-fast trigger
  std::uint32_t fill_fast_remaining_ = 0;
  std::uint32_t fence_count_ = 0;
  std::deque<ArqEntry> entries_;
  ArqStats stats_;
  CheckContext* checks_ = nullptr;
};

}  // namespace mac3d
