// FLIT map (paper Sec. 4.1.1, Fig. 6): one bit per FLIT of a DRAM row,
// recording which FLITs have been requested by the raw requests merged
// into an ARQ entry. Generalized to rows of up to 64 FLITs (1 KB, the HBM
// case of Sec. 4.3); the paper's HMC configuration uses 16 bits.
#pragma once

#include <cassert>
#include <cstdint>

#include "common/bitutil.hpp"

namespace mac3d {

class FlitMap {
 public:
  FlitMap() = default;
  explicit FlitMap(std::uint32_t num_flits) : num_flits_(num_flits) {
    assert(num_flits >= 1 && num_flits <= 64);
  }

  void set(std::uint32_t flit) noexcept {
    assert(flit < num_flits_);
    bits_ |= std::uint64_t{1} << flit;
  }

  [[nodiscard]] bool test(std::uint32_t flit) const noexcept {
    assert(flit < num_flits_);
    return (bits_ >> flit) & 1u;
  }

  [[nodiscard]] bool empty() const noexcept { return bits_ == 0; }
  [[nodiscard]] unsigned count() const noexcept { return popcount64(bits_); }
  [[nodiscard]] std::uint64_t raw() const noexcept { return bits_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return num_flits_; }

  [[nodiscard]] std::uint32_t first_set() const noexcept {
    assert(!empty());
    return lowest_bit(bits_);
  }
  [[nodiscard]] std::uint32_t last_set() const noexcept {
    assert(!empty());
    return highest_bit(bits_);
  }

  /// Stage-1 of the Request Builder (Fig. 8): partition the map into
  /// `groups` equal chunks and OR each chunk down to one bit.
  /// Returns the group pattern, bit g set iff group g has any active FLIT.
  [[nodiscard]] std::uint32_t group_pattern(
      std::uint32_t groups) const noexcept {
    assert(groups >= 1 && groups <= num_flits_);
    assert(num_flits_ % groups == 0);
    const std::uint32_t per_group = num_flits_ / groups;
    const std::uint64_t group_mask =
        per_group >= 64 ? ~0ULL : (std::uint64_t{1} << per_group) - 1;
    std::uint32_t pattern = 0;
    for (std::uint32_t g = 0; g < groups; ++g) {
      if ((bits_ >> (g * per_group)) & group_mask) pattern |= 1u << g;
    }
    return pattern;
  }

  void clear() noexcept { bits_ = 0; }

  friend bool operator==(const FlitMap&, const FlitMap&) = default;

 private:
  std::uint64_t bits_ = 0;
  std::uint32_t num_flits_ = 16;
};

}  // namespace mac3d
