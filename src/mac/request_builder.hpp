// Two-stage pipelined Request Builder (paper Sec. 4.2, Fig. 8).
//
// Stage 1 (1 cycle): OR-reduce the entry's FLIT map into the group pattern
// (4 bits for 256 B rows / 64 B granularity).
// Stage 2 (2 cycles): FLIT-table look-up + packet assembly.
//
// The pipeline's initiation interval is 2 cycles, fixing the MAC issue
// rate at 0.5 requests/cycle (Sec. 4.4); total build latency is 3 cycles.
#pragma once

#include <cstdint>
#include <map>

#include "common/config.hpp"
#include "common/ring_queue.hpp"
#include "common/types.hpp"
#include "mac/arq.hpp"
#include "mac/flit_table.hpp"
#include "mem/address_map.hpp"
#include "mem/packet.hpp"

namespace mac3d {

class CheckContext;

struct BuilderStats {
  std::uint64_t accepted = 0;
  std::uint64_t built = 0;
  std::map<std::uint32_t, std::uint64_t> packets_by_size;  ///< size -> count
};

class RequestBuilder {
 public:
  RequestBuilder(const SimConfig& config, const AddressMap& map);

  /// Pipeline initiation: a new entry may enter every 2 cycles.
  [[nodiscard]] bool can_accept(Cycle now) const noexcept {
    return now >= next_accept_at_;
  }

  /// Accept a (non-fence, non-bypass) ARQ entry popped at `now`.
  void accept(ArqEntry entry, Cycle now);

  /// True when a finished packet is available at `now`.
  [[nodiscard]] bool has_output(Cycle now) const noexcept {
    return !out_.empty() && out_.front().ready_at <= now;
  }

  /// Pop the oldest finished packet.
  HmcRequest pop_output(Cycle now);

  [[nodiscard]] bool empty() const noexcept { return out_.empty(); }
  [[nodiscard]] Cycle next_output_at() const noexcept {
    return out_.empty() ? 0 : out_.front().ready_at;
  }

  [[nodiscard]] const FlitTable& table() const noexcept { return table_; }
  [[nodiscard]] const BuilderStats& stats() const noexcept { return stats_; }

  /// Enable model-invariant checking (docs/INVARIANTS.md §builder); also
  /// statically validates the FLIT table once. The context must outlive
  /// the builder; pass nullptr to detach.
  void attach_checks(CheckContext* context);

  /// Fault-injection hook for the invariant test suite: the next built
  /// packet is truncated to half its legal size, deliberately breaking
  /// FLIT-byte conservation so checkers can be shown to fire.
  void inject_truncate_next_packet() noexcept { truncate_next_ = true; }

  /// Combined FLIT map + FLIT table storage (paper: 2 B + 12 B = 14 B).
  [[nodiscard]] std::uint32_t storage_bytes() const noexcept {
    return (flits_per_row_ + 7) / 8 + table_.storage_bytes();
  }

  static constexpr Cycle kStage1Cycles = 1;
  static constexpr Cycle kStage2Cycles = 2;
  static constexpr Cycle kInitiationInterval = 2;

 private:
  struct Built {
    HmcRequest request;
    Cycle ready_at = 0;
  };

  const AddressMap& map_;
  FlitTable table_;
  std::uint32_t groups_;
  std::uint32_t flits_per_row_;
  Cycle next_accept_at_ = 0;
  RingQueue<Built> out_;
  BuilderStats stats_;
  CheckContext* checks_ = nullptr;
  bool truncate_next_ = false;
};

}  // namespace mac3d
