// FLIT table (paper Sec. 4.2.1, Fig. 8): a small look-up table mapping the
// stage-1 group pattern to the size (and start offset) of the coalesced
// request transaction. With 256 B rows and a 64 B minimum granularity the
// table has 16 entries (one per 4-bit pattern) and sizes 64/128/256 B.
//
// Sizing rule (reproduces the paper's example — FLITs {6, 8, 9} => pattern
// 0110 => 128 B): the packet must cover the span from the first to the last
// active group; the size is the smallest allowed power-of-two multiple of
// the 64 B granularity that covers that span, and the offset is the first
// active group's offset (clamped so the packet stays inside the row).
#pragma once

#include <cstdint>
#include <vector>

#include "common/config.hpp"

namespace mac3d {

/// One decoded FLIT-table entry.
struct PacketShape {
  std::uint32_t size_bytes = 0;    ///< coalesced transaction size
  std::uint32_t offset_bytes = 0;  ///< start offset within the DRAM row

  friend bool operator==(const PacketShape&, const PacketShape&) = default;
};

class FlitTable {
 public:
  /// Build the table for a given row size / minimum packet granularity.
  FlitTable(std::uint32_t row_bytes, std::uint32_t min_bytes);

  explicit FlitTable(const SimConfig& config)
      : FlitTable(config.row_bytes, config.builder_min_bytes) {}

  /// Look up a (nonzero) group pattern.
  [[nodiscard]] PacketShape lookup(std::uint32_t pattern) const;

  [[nodiscard]] std::uint32_t groups() const noexcept { return groups_; }
  [[nodiscard]] std::uint32_t entries() const noexcept {
    return static_cast<std::uint32_t>(table_.size());
  }
  /// Hardware storage of the LUT in bytes (paper: 12 B for 16 entries —
  /// 6 bits per entry: 2 size bits + 4 offset bits, rounded up).
  [[nodiscard]] std::uint32_t storage_bytes() const noexcept;

 private:
  [[nodiscard]] PacketShape compute(std::uint32_t pattern) const;

  std::uint32_t row_bytes_;
  std::uint32_t min_bytes_;
  std::uint32_t groups_;
  std::vector<PacketShape> table_;  ///< precomputed for all 2^groups patterns
};

}  // namespace mac3d
