#include "mac/coalescer.hpp"

#include <algorithm>
#include <cassert>

#include "check/check.hpp"
#include "check/conservation.hpp"
#include "obs/obs.hpp"

namespace mac3d {

void MacStats::collect(StatSet& out, const std::string& prefix) const {
  out.set(prefix + ".raw_in", static_cast<double>(raw_in));
  out.set(prefix + ".fences_in", static_cast<double>(fences_in));
  out.set(prefix + ".packets_out", static_cast<double>(packets_out));
  out.set(prefix + ".built_out", static_cast<double>(built_out));
  out.set(prefix + ".bypass_out", static_cast<double>(bypass_out));
  out.set(prefix + ".atomic_out", static_cast<double>(atomic_out));
  out.set(prefix + ".completions", static_cast<double>(completions));
  out.set(prefix + ".coalescing_efficiency", coalescing_efficiency());
  out.set(prefix + ".avg_raw_latency_cycles", raw_latency_cycles.mean());
  for (const auto& [size, count] : packets_by_size) {
    out.set(prefix + ".packets_" + std::to_string(size) + "B",
            static_cast<double>(count));
  }
}

MacCoalescer::MacCoalescer(const SimConfig& config, HmcDevice& device)
    : config_(config),
      device_(device),
      arq_(config, device.address_map()),
      builder_(config, device.address_map()) {
  config_.validate();
}

MacCoalescer::~MacCoalescer() = default;

void MacCoalescer::attach_checks(CheckContext* context,
                                 const std::string& scope) {
  checks_ = context;
  arq_.attach_checks(context);
  builder_.attach_checks(context);
  if (context == nullptr) {
    conservation_.reset();
    return;
  }
  conservation_ = std::make_unique<ConservationChecker>(*context, scope);
  context->on_finalize([this](CheckContext&) {
    if (conservation_ != nullptr) conservation_->finalize(last_tick_);
  });
}

bool MacCoalescer::try_accept(const RawRequest& request, Cycle now) {
  const bool merge_free = merge_port_used_at_ != now;
  const bool alloc_free = alloc_port_used_at_ != now;
  if (!merge_free && !alloc_free) return false;

  const ArqEntry* merged_into = nullptr;
  const Arq::InsertResult result =
      arq_.insert(request, now, merge_free, alloc_free, &merged_into);
  switch (result) {
    case Arq::InsertResult::kMerged:
      merge_port_used_at_ = now;
      MAC3D_OBS_ACTIVITY(arq_last_work_, now);
      MAC3D_OBS_ACTIVITY(last_work_, now);
      MAC3D_OBS_STAMP(sink_, Stage::kQueueInsert, request.tid, request.tag,
                      now);
      MAC3D_OBS_STAMP(sink_, Stage::kMerge, request.tid, request.tag, now);
#if MAC3D_OBS_ENABLED
      if (sink_ != nullptr && merged_into != nullptr &&
          !merged_into->targets.empty()) {
        const Target& leader = merged_into->targets.front();
        sink_->on_merge(request.tid, request.tag, leader.tid, leader.tag, now);
      }
#endif
      break;
    case Arq::InsertResult::kAllocated:
      alloc_port_used_at_ = now;
      MAC3D_OBS_ACTIVITY(arq_last_work_, now);
      MAC3D_OBS_ACTIVITY(last_work_, now);
      MAC3D_OBS_STAMP(sink_, Stage::kQueueInsert, request.tid, request.tag,
                      now);
      break;
    case Arq::InsertResult::kRejected:
      return false;
  }

  if (request.op == MemOp::kFence) {
    ++stats_.fences_in;
  } else {
    ++stats_.raw_in;
  }
  accept_cycle_.put(key(Target{request.tid, request.tag, 0}), now);
#if MAC3D_CHECKS_ENABLED
  if (conservation_ != nullptr) {
    conservation_->on_accept(request.tid, request.tag, request.op, now);
  }
#endif
  return true;
}

void MacCoalescer::accept(const RawRequest& request, Cycle now) {
  const bool accepted = try_accept(request, now);
  assert(accepted && "MacCoalescer::accept: intake rejected the request");
  (void)accepted;
}

void MacCoalescer::pop_stage(Cycle now) {
  if (arq_.empty()) return;

  const ArqEntry& head = arq_.front();
  // Only entries destined for the Request Builder are bound to its 2-cycle
  // initiation interval (Sec. 4.4). B-bit bypass, atomic and fence entries
  // skip the builder ("bypassing other stages of the MAC", Sec. 4.1.2) and
  // may pop every cycle.
  const bool needs_builder = !head.is_fence && !head.is_atomic && !head.bypass;
  if (needs_builder && now < next_pop_at_) return;

  // An entry written this cycle cannot be read out the same cycle.
  if (head.allocated_at >= now && !head.is_fence) return;

  if (head.is_fence) {
    // A fence retires only once every earlier memory operation has fully
    // completed (Sec. 4.1): builder and issue queue drained, nothing in
    // flight in the device.
    if (builder_.empty() && issue_queue_.empty() && outstanding_ == 0) {
      ArqEntry fence = arq_.pop();
      CompletedAccess done;
      done.target = fence.targets.front();
      done.fence = true;
      done.accepted = accept_cycle_.take(key(done.target), now);
      done.completed = now;
      ready_completions_.push_back(done);
      MAC3D_OBS_ACTIVITY(arq_last_work_, now);
      MAC3D_OBS_ACTIVITY(last_work_, now);
    }
    return;
  }

  if (head.bypass || head.is_atomic) {
    // B-bit / atomic entries skip the Request Builder and go straight to
    // the memory as single-FLIT raw transactions (Sec. 4.1.2).
    ArqEntry entry = arq_.pop();
    IssueItem item;
    item.request.addr = device_.address_map().row_base(entry.row) +
                        static_cast<Address>(entry.flits.first_set()) *
                            kFlitBytes;
    item.request.data_bytes = kFlitBytes;
    item.request.write = entry.is_store;
    item.request.atomic = entry.is_atomic;
    item.request.home_node = entry.home_node;
    item.request.targets = std::move(entry.targets);
    item.ready_at = now + 1;
    item.atomic = entry.is_atomic;
    item.bypass = !entry.is_atomic;
    issue_queue_.push_back(std::move(item));
    MAC3D_OBS_ACTIVITY(arq_last_work_, now);
    MAC3D_OBS_ACTIVITY(last_work_, now);
    return;
  }

  if (builder_.can_accept(now)) {
    ArqEntry entry = arq_.pop();
#if MAC3D_OBS_ENABLED
    if (sink_ != nullptr) {
      for (const Target& target : entry.targets) {
        sink_->on_stage(Stage::kBuilderPick, target.tid, target.tag, now);
      }
    }
#endif
    builder_.accept(std::move(entry), now);
    next_pop_at_ = now + config_.arq_pop_interval;
    MAC3D_OBS_ACTIVITY(arq_last_work_, now);
    MAC3D_OBS_ACTIVITY(builder_last_work_, now);
    MAC3D_OBS_ACTIVITY(last_work_, now);
  }
}

void MacCoalescer::issue_stage(Cycle now) {
  // Move finished builder packets into the issue queue in build order.
  while (builder_.has_output(now)) {
    IssueItem item;
    item.request = builder_.pop_output(now);
    item.ready_at = now;
#if MAC3D_OBS_ENABLED
    if (sink_ != nullptr) {
      for (const Target& target : item.request.targets) {
        sink_->on_stage(Stage::kFlitAlloc, target.tid, target.tag, now);
      }
    }
#endif
    issue_queue_.push_back(std::move(item));
    MAC3D_OBS_ACTIVITY(builder_last_work_, now);
    MAC3D_OBS_ACTIVITY(flit_last_work_, now);
    MAC3D_OBS_ACTIVITY(last_work_, now);
  }

  // Dispatch at most one packet per cycle, subject to link back-pressure.
  if (issue_queue_.empty()) return;
  IssueItem& head = issue_queue_.front();
  if (head.ready_at > now || !device_.can_accept(head.request, now)) return;

  head.request.id = next_txn_++;
  const std::uint32_t size = head.request.data_bytes;
  device_.submit(std::move(head.request), now);
  ++outstanding_;
  ++stats_.packets_out;
  ++stats_.packets_by_size[size];
  if (head.atomic) {
    ++stats_.atomic_out;
  } else if (head.bypass) {
    ++stats_.bypass_out;
  } else {
    ++stats_.built_out;
  }
  issue_queue_.pop_front();
  MAC3D_OBS_ACTIVITY(flit_last_work_, now);
  MAC3D_OBS_ACTIVITY(last_work_, now);
}

void MacCoalescer::tick(Cycle now) {
  assert(now >= last_tick_);
  last_tick_ = now;
  pop_stage(now);
  issue_stage(now);
}

std::vector<CompletedAccess> MacCoalescer::drain(Cycle now) {
  std::vector<CompletedAccess> out;
  // Fence retirements (and any buffered completions) first.
  out.swap(ready_completions_);

  for (HmcResponse& response : device_.drain(now)) {
    assert(outstanding_ > 0);
    --outstanding_;
    for (const Target& target : response.targets) {
      CompletedAccess done;
      done.target = target;
      done.write = response.write;
      done.completed = response.completed;
      done.accepted = accept_cycle_.take(key(target), response.completed);
      stats_.raw_latency_cycles.add(
          static_cast<double>(done.completed - done.accepted));
      out.push_back(done);
    }
  }
  stats_.completions += out.size();
  if (!out.empty()) MAC3D_OBS_ACTIVITY(last_work_, now);
#if MAC3D_OBS_ENABLED
  if (sink_ != nullptr) {
    for (const CompletedAccess& done : out) {
      sink_->on_stage(Stage::kResponseMatch, done.target.tid, done.target.tag,
                      done.completed);
    }
  }
#endif
#if MAC3D_CHECKS_ENABLED
  if (conservation_ != nullptr) {
    for (const CompletedAccess& done : out) {
      conservation_->on_complete(done.target.tid, done.target.tag, done.fence,
                                 now);
    }
  }
#endif
  return out;
}

bool MacCoalescer::idle() const noexcept {
  return arq_.empty() && builder_.empty() && issue_queue_.empty() &&
         outstanding_ == 0 && ready_completions_.empty();
}

Cycle MacCoalescer::next_event(Cycle now) const noexcept {
  if (idle()) return 0;
  // Immediate work?
  if (!ready_completions_.empty()) return now;
  Cycle next = ~Cycle{0};
  if (!arq_.empty()) {
    const ArqEntry& head = arq_.front();
    if (head.is_fence && !(builder_.empty() && issue_queue_.empty() &&
                           outstanding_ == 0)) {
      // Fence blocked on the device; wake at the next completion.
      if (device_.next_completion() != 0) {
        next = std::min(next, std::max(now + 1, device_.next_completion()));
      }
    } else if (head.is_fence || head.is_atomic || head.bypass) {
      next = std::min(next, now + 1);  // bypass pops are not builder-gated
    } else {
      next = std::min(next, std::max(now + 1, next_pop_at_));
    }
  }
  if (!builder_.empty()) {
    next = std::min(next, std::max(now + 1, builder_.next_output_at()));
  }
  if (!issue_queue_.empty()) {
    next = std::min(next, std::max(now + 1, issue_queue_.front().ready_at));
  }
  if (outstanding_ > 0 && device_.next_completion() != 0) {
    next = std::min(next, std::max(now + 1, device_.next_completion()));
  }
  return next == ~Cycle{0} ? now + 1 : next;
}

}  // namespace mac3d
