// Warp-iterative coalescing policy (SIMT-style, after SimTight/GPU memory
// coalescers): intake buffers raw requests in arrival order, groups up to
// `warp_lanes` consecutive non-fence requests into a *window*, then serves
// the window one coalescing iteration per cycle — pick the first unserved
// lane as leader, merge every unserved lane that touches the same
// `warp_block_bytes` block with the same operation class into one HMC
// packet, replay the rest next iteration. A partially filled window is
// released after `warp_window_cycles` or when a fence bounds it.
// Mirrors the MacCoalescer cycle interface so drivers are path-generic.
#pragma once

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/conservation.hpp"
#include "common/bitutil.hpp"
#include "common/config.hpp"
#include "common/flat_cycle_map.hpp"
#include "common/ring_queue.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mac/coalescer.hpp"  // CompletedAccess
#include "mem/hmc_device.hpp"
#include "obs/obs.hpp"

namespace mac3d {

struct WarpStats {
  std::uint64_t raw_in = 0;       ///< loads + stores + atomics accepted
  std::uint64_t fences_in = 0;
  std::uint64_t windows = 0;      ///< warp windows formed
  std::uint64_t packets_out = 0;  ///< HMC transactions dispatched
  std::uint64_t merged_lanes = 0; ///< non-leader lanes riding a packet
  std::uint64_t replays = 0;      ///< extra iterations beyond the first
  std::uint64_t completions = 0;  ///< raw completions delivered upstream
  std::map<std::uint32_t, std::uint64_t> packets_by_size;
  RunningStat raw_latency_cycles;  ///< accept -> completion, per raw request

  [[nodiscard]] double coalescing_efficiency() const noexcept {
    return raw_in == 0 ? 0.0
                       : 1.0 - static_cast<double>(packets_out) /
                                   static_cast<double>(raw_in);
  }

  void collect(StatSet& out, const std::string& prefix) const;
};

class WarpCoalescer {
 public:
  WarpCoalescer(const SimConfig& config, HmcDevice& device);
  ~WarpCoalescer();
  WarpCoalescer(const WarpCoalescer&) = delete;
  WarpCoalescer& operator=(const WarpCoalescer&) = delete;

  [[nodiscard]] bool can_accept() const noexcept {
    return pending_.size() < queue_capacity_;
  }

  /// FIFO intake, capped at two accepts per cycle (the same dual-ported
  /// intake budget as the MAC and the raw path).
  [[nodiscard]] bool try_accept(const RawRequest& request, Cycle now);

  void accept(const RawRequest& request, Cycle now) {
    const bool accepted = try_accept(request, now);
    assert(accepted);
    (void)accepted;
  }

  /// One cycle: retire a head fence once the pipeline drained, form a
  /// window when one is ready, then run one coalescing iteration.
  void tick(Cycle now);

  std::vector<CompletedAccess> drain(Cycle now);

  [[nodiscard]] bool idle() const noexcept {
    return pending_.empty() && window_.empty() && outstanding_ == 0 &&
           ready_.empty();
  }

  /// Earliest cycle at which tick()/drain() could do work (0 when idle).
  [[nodiscard]] Cycle next_event(Cycle now) const noexcept;

  [[nodiscard]] const WarpStats& stats() const noexcept { return stats_; }
  /// Raw requests buffered (intake FIFO + unserved window lanes).
  [[nodiscard]] std::size_t occupancy() const noexcept {
    return pending_.size() + unserved();
  }
  [[nodiscard]] std::size_t window_backlog() const noexcept {
    return unserved();
  }
  [[nodiscard]] std::uint64_t outstanding() const noexcept {
    return outstanding_;
  }

  /// Enable invariant checking (docs/INVARIANTS.md): request conservation
  /// plus the warp window/packet invariants. Same contract as
  /// MacCoalescer::attach_checks.
  void attach_checks(CheckContext* context, const std::string& scope = "warp");

  /// Enable request-lifecycle telemetry (docs/OBSERVABILITY.md): stamps
  /// queue_insert at intake, builder_pick for the leader lane, merge for
  /// lanes riding its packet, response_match at drain. The sink must
  /// outlive the path; pass nullptr to detach.
  void attach_sink(EventSink* sink) noexcept { sink_ = sink; }

  // ---- Activity oracle (idle-cycle census, docs/OBSERVABILITY.md) --------
  [[nodiscard]] bool did_work_this_cycle(Cycle now) const noexcept {
    return last_work_ == now;
  }
  [[nodiscard]] Cycle next_activity_cycle(Cycle now) const noexcept {
    return next_event(now);
  }

 private:
  struct Lane {
    RawRequest request;
    Cycle accepted = 0;
    bool served = false;
  };

  [[nodiscard]] std::size_t unserved() const noexcept {
    return window_.size() - window_served_;
  }
  /// Consecutive non-fence lanes at the head of the intake FIFO, capped
  /// at the window size; `terminated` reports whether a fence bounds the
  /// run before the cap.
  [[nodiscard]] std::size_t head_run(bool& terminated) const noexcept;
  /// True once tick(now) may move the head run into a window.
  [[nodiscard]] bool window_ready(Cycle now) const noexcept;
  void form_window(Cycle now);
  /// One leader/merge iteration; returns false when the device refused
  /// the packet (retry next cycle).
  bool issue_iteration(Cycle now);

  static std::uint64_t key(const RawRequest& request) noexcept {
    return request_key(request.tid, request.tag);
  }
  static std::uint64_t key(const Target& target) noexcept {
    return request_key(target.tid, target.tag);
  }

  const SimConfig config_;
  HmcDevice& device_;
  std::size_t queue_capacity_;
  std::size_t lanes_;
  Cycle window_cycles_;
  Cycle accepts_at_ = ~Cycle{0};
  std::uint32_t accepts_this_cycle_ = 0;
  RingQueue<Lane> pending_;
  std::vector<Lane> window_;
  std::size_t window_served_ = 0;
  FlatCycleMap accept_cycle_;
  std::vector<CompletedAccess> ready_;
  std::uint64_t outstanding_ = 0;
  TransactionId next_txn_ = 1;
  Cycle last_cycle_ = 0;
  Cycle last_work_ = ~Cycle{0};  ///< census slot (MAC3D_OBS_ACTIVITY)
  WarpStats stats_;
  CheckContext* checks_ = nullptr;
  std::unique_ptr<ConservationChecker> conservation_;
  EventSink* sink_ = nullptr;
};

}  // namespace mac3d
