#include "mac/arq.hpp"

#include <cassert>
#include <sstream>

#include "check/check.hpp"
#include "check/invariants.hpp"

namespace mac3d {

namespace {

std::string describe_entry(const ArqEntry& entry) {
  std::ostringstream out;
  out << "entry row=" << entry.row << " store=" << entry.is_store
      << " fence=" << entry.is_fence << " atomic=" << entry.is_atomic
      << " bypass=" << entry.bypass << " targets=" << entry.targets.size()
      << " flit_map=0x" << std::hex << entry.flits.raw();
  return out.str();
}

}  // namespace

Arq::Arq(const SimConfig& config, const AddressMap& map)
    : map_(map),
      capacity_(config.arq_entries),
      entry_bytes_(config.arq_entry_bytes),
      max_targets_(config.max_targets_per_entry()),
      flits_per_row_(config.flits_per_row()),
      fill_fast_enabled_(config.fill_fast_enabled) {}

Arq::InsertResult Arq::insert(const RawRequest& request, Cycle now,
                              bool allow_merge, bool allow_alloc,
                              const ArqEntry** merged_into) {
  if (request.op == MemOp::kFence) {
    if (!allow_alloc || full()) return InsertResult::kRejected;
    stats_.occupancy.add(static_cast<double>(entries_.size()));
    ArqEntry fence;
    fence.is_fence = true;
    fence.bypass = true;
    fence.allocated_at = now;
    fence.targets.emplace_back(request.tid, request.tag, 0);
    entries_.push_back(std::move(fence));
    ++fence_count_;
    ++stats_.inserted;
    ++stats_.fences;
    ++stats_.allocated;
    return InsertResult::kAllocated;
  }

  const Address local = map_.local_addr(request.addr);
  const std::uint64_t row = map_.row_of(local);
  const std::uint32_t flit = map_.flit_of(local);
  const bool is_store = request.op == MemOp::kStore;

  if (request.op == MemOp::kAtomic) {
    // Atomics are routed to the memory unmodified to preserve atomicity;
    // they occupy an entry (keeping fence ordering) but never merge.
    if (!allow_alloc || full()) return InsertResult::kRejected;
    stats_.occupancy.add(static_cast<double>(entries_.size()));
    ArqEntry amo;
    amo.row = row;
    amo.is_atomic = true;
    amo.bypass = true;
    amo.flits = FlitMap(flits_per_row_);
    amo.flits.set(flit);
    amo.targets.push_back(
        Target{request.tid, request.tag, static_cast<std::uint8_t>(flit)});
    amo.allocated_at = now;
    amo.raw_size = request.size;
    amo.home_node = map_.node_of(request.addr);
    entries_.push_back(std::move(amo));
    ++stats_.inserted;
    ++stats_.atomics;
    ++stats_.allocated;
    return InsertResult::kAllocated;
  }

  assert(is_coalescable(request.op));

  // Fill-fast latency hiding (Sec. 4.1): when the free-entry counter
  // *rises above* half the ARQ size (edge-triggered — e.g. at boot or
  // after an I/O-bound lull drains the queue), the next N incoming
  // requests skip the comparators and fill the available entries
  // directly, so aggregation restarts from a well-stocked queue.
  const std::size_t free_entries = capacity_ - entries_.size();
  const bool above_half = free_entries > capacity_ / 2;
  if (fill_fast_enabled_ && above_half && !was_above_half_ &&
      fill_fast_remaining_ == 0) {
    fill_fast_remaining_ = static_cast<std::uint32_t>(free_entries);
  }
  was_above_half_ = above_half;

  bool compare = allow_merge && fence_count_ == 0;
  const bool fill_fast_hit = fill_fast_remaining_ > 0;
  if (fill_fast_hit) compare = false;

  if (compare) {
    // All comparators fire simultaneously on (row | T) — a single compare
    // thanks to the T-bit address extension (Sec. 4.1.2).
    for (ArqEntry& entry : entries_) {
      if (entry.is_fence || entry.is_atomic || entry.row != row ||
          entry.is_store != is_store) {
        continue;
      }
      if (entry.targets.size() >= max_targets_) {
        ++stats_.merge_refused_capacity;
        continue;  // entry target storage exhausted; fall through
      }
      stats_.occupancy.add(static_cast<double>(entries_.size()));
      entry.flits.set(flit);
      entry.targets.push_back(
          Target{request.tid, request.tag, static_cast<std::uint8_t>(flit)});
      entry.bypass = false;  // >= 2 requests: B bit cleared
      ++stats_.inserted;
      ++stats_.merged;
      MAC3D_CHECK(checks_, inv::kArqFenceBlocksMerge, fence_count_ == 0, now,
                  "merge happened while " + std::to_string(fence_count_) +
                      " fence(s) pending: " + describe_entry(entry));
      MAC3D_CHECK(checks_, inv::kArqTBit,
                  is_coalescable(request.op) && entry.is_store == is_store,
                  now,
                  std::string("merged ") + std::string(to_string(request.op)) +
                      " into " + describe_entry(entry));
      MAC3D_CHECK(checks_, inv::kArqTargetCap,
                  entry.targets.size() <= max_targets_, now,
                  describe_entry(entry) + " exceeds max_targets=" +
                      std::to_string(max_targets_));
      if (merged_into != nullptr) *merged_into = &entry;
      return InsertResult::kMerged;
    }
  }

  if (!allow_alloc || full()) return InsertResult::kRejected;
  if (fill_fast_hit) {
    --fill_fast_remaining_;
    ++stats_.fill_fast_inserts;
  }
  stats_.occupancy.add(static_cast<double>(entries_.size()));
  ArqEntry entry;
  entry.row = row;
  entry.is_store = is_store;
  entry.bypass = true;  // single request so far
  entry.flits = FlitMap(flits_per_row_);
  entry.flits.set(flit);
  entry.targets.push_back(
      Target{request.tid, request.tag, static_cast<std::uint8_t>(flit)});
  entry.allocated_at = now;
  entry.raw_size = request.size;
  entry.home_node = map_.node_of(request.addr);
  entries_.push_back(std::move(entry));
  ++stats_.inserted;
  ++stats_.allocated;
  MAC3D_CHECK(checks_, inv::kArqOccupancy, entries_.size() <= capacity_, now,
              "occupancy " + std::to_string(entries_.size()) +
                  " exceeds capacity " + std::to_string(capacity_));
  return InsertResult::kAllocated;
}

ArqEntry Arq::pop() {
  assert(!entries_.empty());
  ArqEntry entry = std::move(entries_.front());
  entries_.pop_front();
  if (entry.is_fence) {
    assert(fence_count_ > 0);
    --fence_count_;
  } else {
    stats_.targets_per_entry.add(static_cast<double>(entry.targets.size()));
    stats_.popped_bypass += entry.bypass ? 1 : 0;
#if MAC3D_CHECKS_ENABLED
    if (checks_ != nullptr) check_popped_entry(entry);
#endif
  }
  ++stats_.popped;
  return entry;
}

#if MAC3D_CHECKS_ENABLED
// B-bit and FLIT-map legality of a non-fence entry leaving the queue
// (docs/INVARIANTS.md §arq).
void Arq::check_popped_entry(const ArqEntry& entry) {
  MAC3D_CHECK(checks_, inv::kArqBBit,
              entry.bypass == (entry.targets.size() == 1) &&
                  (!entry.is_atomic || entry.bypass),
              entry.allocated_at, describe_entry(entry));
  bool map_consistent = entry.flits.count() >= 1 &&
                        entry.flits.count() <= entry.targets.size();
  for (const Target& target : entry.targets) {
    if (target.flit >= flits_per_row_ || !entry.flits.test(target.flit)) {
      map_consistent = false;
    }
  }
  MAC3D_CHECK(checks_, inv::kArqFlitMapConsistent, map_consistent,
              entry.allocated_at, describe_entry(entry));
}
#endif

}  // namespace mac3d
