// HMCSim-style timed model of one 3D-stacked memory cube.
//
// The model follows the request path of an HMC 2.1 device as described in
// the paper: packets are serialized over one of `hmc_links` external links
// (selected by vault quadrant), pass through SerDes + vault controller,
// access one closed-page bank inside one of the interleaved vaults, and the
// response is serialized back. Every access pays the 32 B control overhead
// of the packetized protocol; every arrival at a busy bank counts as a bank
// conflict (Sec. 2.2.1).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mem/address_map.hpp"
#include "mem/bank.hpp"
#include "mem/link.hpp"
#include "mem/packet.hpp"

namespace mac3d {

class CheckContext;
class EventSink;
class HmcChecker;

/// Aggregate device counters.
struct HmcStats {
  std::uint64_t requests = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t atomics = 0;
  std::uint64_t bank_conflicts = 0;
  std::uint64_t refresh_stalls = 0;  ///< accesses delayed by a refresh
  std::uint64_t row_hits = 0;        ///< open-page mode row-buffer hits
  std::uint64_t data_bytes = 0;      ///< payload moved
  std::uint64_t link_bytes = 0;      ///< payload + control on the links
  std::uint64_t overhead_bytes = 0;  ///< control only (32 B per access)
  RunningStat latency_cycles;        ///< submit -> response available
  RunningStat packet_data_bytes;     ///< payload size distribution
  Histogram latency_hist{40};

  /// Measured Eq. 1 over the whole run.
  [[nodiscard]] double measured_bandwidth_efficiency() const noexcept {
    return link_bytes == 0
               ? 0.0
               : static_cast<double>(data_bytes) /
                     static_cast<double>(link_bytes);
  }

  void collect(StatSet& out, const std::string& prefix) const;
};

class HmcDevice {
 public:
  explicit HmcDevice(const SimConfig& config, NodeId node = 0);
  ~HmcDevice();
  HmcDevice(const HmcDevice&) = delete;
  HmcDevice& operator=(const HmcDevice&) = delete;

  /// Link-level back-pressure: false when the target link's request
  /// direction is backlogged beyond the injection-queue horizon.
  [[nodiscard]] bool can_accept(const HmcRequest& request,
                                Cycle now) const noexcept;

  /// Schedule a request submitted at `now`. Returns the completion cycle.
  /// The response is retrievable via drain() once `now >= completion`.
  /// In staged mode (docs/PARALLELISM.md) the request is validated and
  /// buffered instead and 0 is returned; timing and accounting happen at
  /// the next step_staged() barrier. All in-tree paths dispatch at most
  /// one packet per cycle and ignore the return value, so the two modes
  /// are observably identical.
  Cycle submit(HmcRequest request, Cycle now);

  // ---- Staged (parallel-engine) stepping — docs/PARALLELISM.md -----------
  /// Enter staged mode: submit() buffers requests into per-link-quadrant
  /// inboxes instead of timing them inline. Each quadrant (one external
  /// link plus the banks of the vaults it serves) has fully disjoint
  /// mutable state, so quadrants are the device's shard unit.
  void begin_staged() noexcept { staged_mode_ = true; }
  [[nodiscard]] bool staged() const noexcept { return staged_mode_; }

  /// Barrier step: phase A times all staged requests, sharded by link
  /// quadrant across `stepper` (each shard mutates only its own Link and
  /// Banks, in staging order); phase B then commits stats, telemetry,
  /// checker hooks and responses serially in global staging order —
  /// reproducing the exact serial interleaving, so results are
  /// bit-identical to unstaged submit() for any thread count.
  ///
  /// Templated on the stepper (normally sim's ParallelStepper — mem cannot
  /// link sim) — anything with for_shards(count, fn) works.
  template <typename Stepper>
  void step_staged(Stepper& stepper) {
    if (staged_.empty()) return;
    std::vector<std::vector<std::size_t>> by_shard(links_.size());
    for (std::size_t i = 0; i < staged_.size(); ++i) {
      by_shard[link_of(staged_[i].vault)].push_back(i);
    }
    std::vector<std::size_t> active;
    for (std::size_t shard = 0; shard < by_shard.size(); ++shard) {
      if (!by_shard[shard].empty()) active.push_back(shard);
    }
    stepper.for_shards(active.size(), [this, &by_shard,
                                      &active](std::size_t index) {
      for (const std::size_t entry : by_shard[active[index]]) {
        time_staged(staged_[entry]);
      }
    });
    for (StagedSubmit& entry : staged_) commit_staged(entry);
    staged_.clear();
  }

  /// Pop all responses completed at or before `now` (completion order).
  std::vector<HmcResponse> drain(Cycle now);

  /// True when no undelivered response remains.
  [[nodiscard]] bool idle() const noexcept { return pending_.empty(); }

  /// Earliest completion among in-flight transactions (0 when idle).
  [[nodiscard]] Cycle next_completion() const noexcept {
    return pending_.empty() ? 0 : pending_.top().completed;
  }

  [[nodiscard]] std::size_t in_flight() const noexcept {
    return pending_.size();
  }

  [[nodiscard]] const HmcStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const AddressMap& address_map() const noexcept { return map_; }

  /// Per-link FLIT totals (request dir, response dir).
  [[nodiscard]] std::pair<std::uint64_t, std::uint64_t> link_flits() const;

  // ---- Cycle-sampler probes (docs/OBSERVABILITY.md) ----------------------
  /// Fraction of all banks busy (activating/moving data/precharging) at
  /// `now`.
  [[nodiscard]] double banks_busy_fraction(Cycle now) const noexcept;
  /// Fraction of one vault's banks busy at `now`.
  [[nodiscard]] double vault_busy_fraction(std::uint32_t vault,
                                           Cycle now) const noexcept;
  [[nodiscard]] std::uint32_t vault_count() const noexcept {
    return config_.vaults;
  }
  [[nodiscard]] std::uint32_t link_count() const noexcept {
    return static_cast<std::uint32_t>(links_.size());
  }
  /// Request-direction serialization backlog of one link, in cycles.
  [[nodiscard]] Cycle link_request_backlog(std::uint32_t link,
                                           Cycle now) const noexcept {
    return links_[link].request_backlog(now);
  }
  /// Cumulative FLITs moved by one link (both directions) — sampled as a
  /// monotone counter; consumers difference adjacent rows for utilization.
  [[nodiscard]] std::uint64_t link_flits_sent(std::uint32_t link) const noexcept {
    return links_[link].request_flits_sent() +
           links_[link].response_flits_sent();
  }

  // ---- Activity oracle (idle-cycle census, docs/OBSERVABILITY.md) --------
  /// Any bank is mid-access at `now` (the device's coarse activity bit;
  /// the per-unit census rows below are the fine-grained view).
  [[nodiscard]] bool did_work_this_cycle(Cycle now) const noexcept {
    return banks_busy_fraction(now) > 0.0;
  }
  /// Earliest in-flight completion (0 = drained) — the event-driven
  /// engine's wake-up oracle for the device.
  [[nodiscard]] Cycle next_activity_cycle(Cycle now) const noexcept {
    (void)now;
    return next_completion();
  }

  // ---- Busy-threshold accessors (census range probes) --------------------
  // Every device activity probe has the form "active iff now < threshold",
  // and the thresholds are frozen while the event engine fast-forwards (no
  // submits happen mid-span), so the active cycles inside a skipped span
  // are exactly countable — that is what keeps the census byte-identical
  // between the cycle and event engines.
  /// Cycle the last busy bank frees (0 = all banks idle).
  [[nodiscard]] Cycle banks_busy_until() const noexcept {
    Cycle until = 0;
    for (const Bank& bank : banks_) {
      if (bank.free_at() > until) until = bank.free_at();
    }
    return until;
  }
  /// Cycle one vault's last busy bank frees.
  [[nodiscard]] Cycle vault_busy_until(std::uint32_t vault) const noexcept {
    const std::size_t base =
        static_cast<std::size_t>(vault) * config_.banks_per_vault;
    Cycle until = 0;
    for (std::size_t i = 0; i < config_.banks_per_vault; ++i) {
      if (banks_[base + i].free_at() > until) until = banks_[base + i].free_at();
    }
    return until;
  }
  /// Cycle one link's request direction drains.
  [[nodiscard]] Cycle link_request_free_at(std::uint32_t link) const noexcept {
    return links_[link].request_free_at();
  }

  /// Register this device's idle-cycle census rows under `prefix`
  /// (e.g. "node0."): `<prefix>banks`, `<prefix>vault<V>` and
  /// `<prefix>link<L>`. Each row carries a range probe built from the
  /// matching busy threshold so skipped spans credit exactly. Templated
  /// on the census (normally obs's ActivityCensus — mem avoids the link
  /// dependency the same way step_staged avoids sim's). The device must
  /// outlive the census's observed run; seal the census before tearing
  /// the device down.
  template <typename Census>
  void register_census(Census& census, const std::string& prefix) const {
    // Active cycles of "busy iff cycle < threshold" over [first, last].
    const auto span_active = [](Cycle threshold, Cycle first,
                                Cycle last) -> std::uint64_t {
      if (threshold <= first) return 0;
      const Cycle end = threshold - 1 < last ? threshold - 1 : last;
      return end - first + 1;
    };
    census.add_component(
        prefix + "banks",
        [this](Cycle now) { return banks_busy_fraction(now) > 0.0; },
        [this, span_active](Cycle first, Cycle last) {
          return span_active(banks_busy_until(), first, last);
        });
    for (std::uint32_t v = 0; v < vault_count(); ++v) {
      census.add_component(
          prefix + "vault" + std::to_string(v),
          [this, v](Cycle now) { return vault_busy_fraction(v, now) > 0.0; },
          [this, v, span_active](Cycle first, Cycle last) {
            return span_active(vault_busy_until(v), first, last);
          });
    }
    for (std::uint32_t l = 0; l < link_count(); ++l) {
      census.add_component(
          prefix + "link" + std::to_string(l),
          [this, l](Cycle now) { return link_request_backlog(l, now) > 0; },
          [this, l, span_active](Cycle first, Cycle last) {
            return span_active(link_request_free_at(l), first, last);
          });
    }
  }

  void reset();

  /// Enable model-invariant checking (docs/INVARIANTS.md §hmc). The
  /// context must outlive the device; pass nullptr to detach.
  void attach_checks(CheckContext* context);

  /// Deliberate model bugs for the invariant test suite.
  enum class Fault {
    kNone,
    kDropTarget,       ///< drop one merged target from the next response
    kInflateOverhead,  ///< charge one extra control FLIT on the next access
  };
  /// Arm a one-shot fault applied to the next submitted request.
  void inject_fault(Fault fault) noexcept { fault_ = fault; }

  /// Enable request-lifecycle telemetry (docs/OBSERVABILITY.md): stamps
  /// link_serialize and bank_access for every merged target of a packet
  /// that carries target identities. The sink must outlive the device;
  /// pass nullptr to detach.
  void attach_sink(EventSink* sink) noexcept { sink_ = sink; }

 private:
  /// One validated submission awaiting the staged barrier. Timing fields
  /// are filled by phase A (parallel, shard-local); phase B reads them.
  struct StagedSubmit {
    HmcRequest request;  ///< after one-shot fault application
    Cycle now = 0;
    std::uint32_t req_flits = 0;
    std::uint32_t vault = 0;
    Address local = 0;
    std::uint64_t row = 0;
    // -- phase A results --
    Bank::Schedule sched;
    Cycle at_bank = 0;
    Cycle completed = 0;
    Cycle bank_free_at = 0;
    std::uint32_t resp_flits = 0;
  };

  /// Time one staged submission against its quadrant's link and bank
  /// (phase A work — touches only shard-local state).
  void time_staged(StagedSubmit& entry);
  /// Commit one timed submission: stats, telemetry, checker hooks,
  /// response enqueue (phase B work — serial, global staging order).
  void commit_staged(StagedSubmit& entry);

  struct PendingGreater {
    bool operator()(const HmcResponse& a, const HmcResponse& b) const {
      return a.completed > b.completed || (a.completed == b.completed &&
                                           a.id > b.id);
    }
  };

  [[nodiscard]] std::uint32_t link_of(std::uint32_t vault) const noexcept {
    return vault / vaults_per_link_;
  }

  SimConfig config_;
  AddressMap map_;
  NodeId node_;
  std::uint32_t vaults_per_link_;
  std::vector<Bank> banks_;  ///< flat [vault][bank]
  std::vector<Link> links_;
  std::priority_queue<HmcResponse, std::vector<HmcResponse>, PendingGreater>
      pending_;
  HmcStats stats_;
  CheckContext* checks_ = nullptr;
  EventSink* sink_ = nullptr;
  std::unique_ptr<HmcChecker> checker_;
  Fault fault_ = Fault::kNone;
  bool staged_mode_ = false;
  std::vector<StagedSubmit> staged_;  ///< global staging order (= seq order)
};

}  // namespace mac3d
