// HMC external link model: serializes packet FLITs in each direction.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mac3d {

/// One full-duplex link. Each direction is a serialization resource:
/// a packet of N FLITs occupies the direction for N * t_link_flit cycles.
class Link {
 public:
  explicit Link(std::uint32_t t_link_flit) : t_flit_(t_link_flit) {}

  /// Serialize a request packet arriving at `now`; returns the cycle the
  /// last FLIT has left the link (downstream arrival time).
  Cycle send_request(Cycle now, std::uint32_t flits) noexcept {
    const Cycle start = now > req_free_ ? now : req_free_;
    req_free_ = start + static_cast<Cycle>(flits) * t_flit_;
    req_flits_ += flits;
    return req_free_;
  }

  /// Serialize a response packet that is ready at `ready`.
  Cycle send_response(Cycle ready, std::uint32_t flits) noexcept {
    const Cycle start = ready > resp_free_ ? ready : resp_free_;
    resp_free_ = start + static_cast<Cycle>(flits) * t_flit_;
    resp_flits_ += flits;
    return resp_free_;
  }

  /// Cycles of request-direction backlog beyond `now` (for back-pressure).
  [[nodiscard]] Cycle request_backlog(Cycle now) const noexcept {
    return req_free_ > now ? req_free_ - now : 0;
  }

  /// Cycle the request direction drains: the backlog probe is "busy iff
  /// now < request_free_at()", which lets the idle-cycle census credit
  /// spans the event engine skips without probing every cycle.
  [[nodiscard]] Cycle request_free_at() const noexcept { return req_free_; }

  [[nodiscard]] std::uint64_t request_flits_sent() const noexcept {
    return req_flits_;
  }
  [[nodiscard]] std::uint64_t response_flits_sent() const noexcept {
    return resp_flits_;
  }

  void reset() noexcept {
    req_free_ = resp_free_ = 0;
    req_flits_ = resp_flits_ = 0;
  }

 private:
  std::uint32_t t_flit_;
  Cycle req_free_ = 0;
  Cycle resp_free_ = 0;
  std::uint64_t req_flits_ = 0;
  std::uint64_t resp_flits_ = 0;
};

}  // namespace mac3d
