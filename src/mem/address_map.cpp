#include "mem/address_map.hpp"

namespace mac3d {

AddressMap::AddressMap(const SimConfig& config)
    : row_shift_(log2_exact(config.row_bytes)),
      vault_bits_(log2_exact(config.vaults)),
      node_shift_(log2_exact(config.hmc_capacity)),
      flits_per_row_(config.flits_per_row()),
      vaults_(config.vaults),
      banks_per_vault_(config.banks_per_vault),
      node_span_(config.hmc_capacity) {}

DecodedAddress AddressMap::decode(Address addr) const noexcept {
  DecodedAddress out;
  out.node = node_of(addr);
  const Address local = local_addr(addr);
  out.row = local >> row_shift_;
  out.flit = flit_of(local);
  out.flit_off = static_cast<std::uint32_t>(bits(addr, 0, kFlitShift));
  out.vault = vault_of(out.row);
  out.bank = bank_of(out.row);
  out.bank_row = out.row >> (vault_bits_ + log2_exact(banks_per_vault_));
  return out;
}

}  // namespace mac3d
