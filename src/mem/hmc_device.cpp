#include "mem/hmc_device.hpp"

#include <cassert>
#include <stdexcept>

#include "check/hmc_checks.hpp"
#include "obs/obs.hpp"

namespace mac3d {

void HmcStats::collect(StatSet& out, const std::string& prefix) const {
  out.set(prefix + ".requests", static_cast<double>(requests));
  out.set(prefix + ".reads", static_cast<double>(reads));
  out.set(prefix + ".writes", static_cast<double>(writes));
  out.set(prefix + ".atomics", static_cast<double>(atomics));
  out.set(prefix + ".bank_conflicts", static_cast<double>(bank_conflicts));
  out.set(prefix + ".refresh_stalls", static_cast<double>(refresh_stalls));
  out.set(prefix + ".data_bytes", static_cast<double>(data_bytes));
  out.set(prefix + ".link_bytes", static_cast<double>(link_bytes));
  out.set(prefix + ".overhead_bytes", static_cast<double>(overhead_bytes));
  out.set(prefix + ".bandwidth_efficiency", measured_bandwidth_efficiency());
  out.set(prefix + ".avg_latency_cycles", latency_cycles.mean());
  out.set(prefix + ".avg_packet_bytes", packet_data_bytes.mean());
}

HmcDevice::HmcDevice(const SimConfig& config, NodeId node)
    : config_(config),
      map_(config),
      node_(node),
      vaults_per_link_(config.vaults / config.hmc_links),
      banks_(config.total_banks()),
      links_(config.hmc_links, Link(config.t_link_flit)) {
  config_.validate();
  if (config_.t_refi != 0) {
    // Stagger refresh windows evenly across the banks of each vault so a
    // vault never loses more than one bank at a time.
    for (std::size_t i = 0; i < banks_.size(); ++i) {
      banks_[i].configure_refresh(
          config_.t_refi, config_.t_rfc,
          (i % config_.banks_per_vault) * config_.t_refi /
              config_.banks_per_vault);
    }
  }
}

HmcDevice::~HmcDevice() = default;

void HmcDevice::attach_checks(CheckContext* context) {
  checks_ = context;
  checker_ = context == nullptr
                 ? nullptr
                 : std::make_unique<HmcChecker>(*context, banks_.size());
}

bool HmcDevice::can_accept(const HmcRequest& request,
                           Cycle now) const noexcept {
  const std::uint64_t row = map_.row_of(map_.local_addr(request.addr));
  const Link& link = links_[link_of(map_.vault_of(row))];
  const Cycle horizon = static_cast<Cycle>(config_.link_queue_depth) *
                        config_.t_link_flit;
  return link.request_backlog(now) <= horizon;
}

Cycle HmcDevice::submit(HmcRequest request, Cycle now) {
  if (request.data_bytes == 0 || request.data_bytes % kFlitBytes != 0 ||
      request.data_bytes > config_.row_bytes) {
    throw std::invalid_argument("HmcDevice: bad packet size " +
                                std::to_string(request.data_bytes));
  }
  const Address local = map_.local_addr(request.addr);
  if (local + request.data_bytes > config_.hmc_capacity) {
    throw std::invalid_argument("HmcDevice: address out of range");
  }
  // A packet must not straddle a DRAM row (the MAC guarantees this; raw
  // trace splitting guarantees it for bypassed requests).
  const std::uint64_t row = map_.row_of(local);
  if (map_.row_of(local + request.data_bytes - 1) != row) {
    throw std::invalid_argument("HmcDevice: packet crosses a row boundary");
  }

  // Deliberate one-shot model bugs for the invariant test suite. Faults
  // are consumed at submit time in both modes, so the armed request is
  // the same one regardless of engine.
  if (fault_ == Fault::kDropTarget && !request.targets.empty()) {
    request.targets.pop_back();
    fault_ = Fault::kNone;
  }
  std::uint32_t req_flits = request_flits(request.data_bytes, request.write);
  if (fault_ == Fault::kInflateOverhead) {
    ++req_flits;
    fault_ = Fault::kNone;
  }

  StagedSubmit entry;
  entry.now = now;
  entry.req_flits = req_flits;
  entry.local = local;
  entry.row = row;
  entry.vault = map_.vault_of(row);
  entry.request = std::move(request);

  if (staged_mode_) {
    // Buffered in submission order; timed and committed at the next
    // step_staged() barrier. Callers ignore the returned cycle.
    staged_.push_back(std::move(entry));
    return 0;
  }

  time_staged(entry);
  const Cycle completed = entry.completed;
  commit_staged(entry);
  return completed;
}

void HmcDevice::time_staged(StagedSubmit& entry) {
  Link& link = links_[link_of(entry.vault)];
  const HmcRequest& request = entry.request;

  // Request path: link serialization -> SerDes -> vault controller.
  const Cycle at_device =
      link.send_request(entry.now, entry.req_flits) + config_.t_serdes;
  entry.at_bank = at_device + config_.t_vault_ctrl;

  // Bank access. Atomics hold the bank slightly longer for the
  // read-modify-write in the logic layer.
  const Cycle data_cycles =
      static_cast<Cycle>(data_flits(request.data_bytes)) *
          config_.t_row_data_flit +
      (request.atomic ? 8 : 0);
  Bank& bank = banks_[map_.global_bank(entry.row)];
  entry.sched =
      config_.open_page
          ? bank.access_open_page(entry.at_bank, entry.row,
                                  config_.t_bank_activate,
                                  config_.t_bank_cas + data_cycles,
                                  config_.t_bank_precharge)
          : bank.access(entry.at_bank, config_.t_bank_access + data_cycles,
                        config_.t_bank_precharge);
  entry.bank_free_at = bank.free_at();

  // Response path: vault controller -> link serialization -> SerDes.
  entry.resp_flits = response_flits(request.data_bytes, request.write);
  const Cycle resp_ready = entry.sched.data_ready + config_.t_vault_ctrl;
  entry.completed =
      link.send_response(resp_ready, entry.resp_flits) + config_.t_serdes;
}

void HmcDevice::commit_staged(StagedSubmit& entry) {
  HmcRequest& request = entry.request;
  const Bank::Schedule& sched = entry.sched;
  stats_.row_hits += sched.row_hit ? 1 : 0;

#if MAC3D_OBS_ENABLED
  if (sink_ != nullptr) {
    // Raw-path and MAC packets carry the merged target identities; stamp
    // each one at link handoff and at the scheduled bank-access start.
    for (const Target& target : request.targets) {
      sink_->on_stage(Stage::kLinkSerialize, target.tid, target.tag,
                      entry.now);
      sink_->on_stage(Stage::kBankAccess, target.tid, target.tag, sched.start);
    }
  }
#endif

#if MAC3D_CHECKS_ENABLED
  if (checker_ != nullptr) {
    checker_->on_bank_access(map_.global_bank(entry.row), entry.at_bank,
                             sched.start, sched.data_ready, entry.bank_free_at,
                             sched.conflict, entry.now);
    checker_->on_packet(request.data_bytes, request.write, entry.req_flits,
                        entry.resp_flits,
                        static_cast<std::uint64_t>(entry.req_flits +
                                                   entry.resp_flits) *
                            kFlitBytes,
                        entry.now, sched.data_ready, entry.completed);
    const auto row_offset =
        static_cast<std::uint32_t>(entry.local - map_.row_base(entry.row));
    for (const Target& target : request.targets) {
      checker_->on_target(target.flit, row_offset, request.data_bytes,
                          entry.now);
    }
  }
#endif

  // Accounting.
  ++stats_.requests;
  stats_.reads += (!request.write && !request.atomic) ? 1 : 0;
  stats_.writes += request.write ? 1 : 0;
  stats_.atomics += request.atomic ? 1 : 0;
  stats_.bank_conflicts += sched.conflict ? 1 : 0;
  stats_.refresh_stalls += sched.refresh_stall ? 1 : 0;
  stats_.data_bytes += request.data_bytes;
  const std::uint64_t wire =
      static_cast<std::uint64_t>(entry.req_flits + entry.resp_flits) *
      kFlitBytes;
  stats_.link_bytes += wire;
  stats_.overhead_bytes += wire - request.data_bytes;
  stats_.latency_cycles.add(static_cast<double>(entry.completed - entry.now));
  stats_.latency_hist.add(entry.completed - entry.now);
  stats_.packet_data_bytes.add(static_cast<double>(request.data_bytes));

  HmcResponse response;
  response.id = request.id;
  response.addr = request.addr;
  response.data_bytes = request.data_bytes;
  response.write = request.write;
  response.completed = entry.completed;
  response.targets = std::move(request.targets);
  pending_.push(std::move(response));
}

std::vector<HmcResponse> HmcDevice::drain(Cycle now) {
  std::vector<HmcResponse> done;
  while (!pending_.empty() && pending_.top().completed <= now) {
    done.push_back(pending_.top());
    pending_.pop();
  }
  return done;
}

double HmcDevice::banks_busy_fraction(Cycle now) const noexcept {
  if (banks_.empty()) return 0.0;
  std::size_t busy = 0;
  for (const Bank& bank : banks_) busy += bank.busy(now) ? 1 : 0;
  return static_cast<double>(busy) / static_cast<double>(banks_.size());
}

double HmcDevice::vault_busy_fraction(std::uint32_t vault,
                                      Cycle now) const noexcept {
  const std::size_t first =
      static_cast<std::size_t>(vault) * config_.banks_per_vault;
  std::size_t busy = 0;
  for (std::size_t i = 0; i < config_.banks_per_vault; ++i) {
    busy += banks_[first + i].busy(now) ? 1 : 0;
  }
  return static_cast<double>(busy) /
         static_cast<double>(config_.banks_per_vault);
}

std::pair<std::uint64_t, std::uint64_t> HmcDevice::link_flits() const {
  std::uint64_t req = 0;
  std::uint64_t resp = 0;
  for (const Link& link : links_) {
    req += link.request_flits_sent();
    resp += link.response_flits_sent();
  }
  return {req, resp};
}

void HmcDevice::reset() {
  for (Bank& bank : banks_) bank.reset();
  for (Link& link : links_) link.reset();
  pending_ = {};
  staged_.clear();
  stats_ = {};
  fault_ = Fault::kNone;
  if (checks_ != nullptr) attach_checks(checks_);  // clear bank history
}

}  // namespace mac3d
