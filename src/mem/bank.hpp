// Closed-page DRAM bank timing model (paper Sec. 2.2.1).
//
// Under the HMC's closed-page policy every access activates its row, moves
// the data, and precharges. A request that arrives while the bank is still
// busy with an earlier access is a *bank conflict* and is serialized.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mac3d {

class Bank {
 public:
  struct Schedule {
    Cycle start = 0;       ///< when the activation begins
    Cycle data_ready = 0;  ///< when the last data FLIT leaves the bank
    bool conflict = false; ///< arrival found the bank busy
    bool refresh_stall = false;  ///< pushed past a refresh window
    bool row_hit = false;  ///< open-page mode: hit in the row buffer
  };

  /// Enable periodic refresh: the bank is unavailable for `duration`
  /// cycles every `interval` cycles, phase-shifted by `phase` (vault
  /// controllers stagger refreshes across banks).
  void configure_refresh(Cycle interval, Cycle duration,
                         Cycle phase) noexcept {
    refresh_interval_ = interval;
    refresh_duration_ = duration;
    refresh_phase_ = interval == 0 ? 0 : phase % interval;
  }

  /// Schedule one closed-page access arriving at `arrival`.
  /// `access_cycles` covers ACT+CAS+data, `precharge_cycles` the PRE after.
  Schedule access(Cycle arrival, Cycle access_cycles,
                  Cycle precharge_cycles) noexcept {
    Schedule sched = begin_access(arrival);
    sched.data_ready = sched.start + access_cycles;
    free_at_ = sched.data_ready + precharge_cycles;
    return sched;
  }

  /// Schedule one access under an (hypothetical for HMC — Sec. 2.2.1
  /// explains why the real device precharges immediately) open-page
  /// policy: a row-buffer hit skips the activation, a miss pays
  /// precharge + activation up front. The row is left open.
  Schedule access_open_page(Cycle arrival, std::uint64_t row,
                            Cycle activate_cycles, Cycle cas_cycles,
                            Cycle precharge_cycles) noexcept {
    Schedule sched = begin_access(arrival);
    if (open_row_valid_ && open_row_ == row) {
      sched.row_hit = true;
      ++row_hits_;
      sched.data_ready = sched.start + cas_cycles;
    } else if (!open_row_valid_) {
      sched.data_ready = sched.start + activate_cycles + cas_cycles;
    } else {
      sched.data_ready =
          sched.start + precharge_cycles + activate_cycles + cas_cycles;
    }
    open_row_ = row;
    open_row_valid_ = true;
    free_at_ = sched.data_ready;  // no precharge: the row stays open
    return sched;
  }

  [[nodiscard]] Cycle free_at() const noexcept { return free_at_; }
  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] std::uint64_t conflicts() const noexcept { return conflicts_; }
  [[nodiscard]] std::uint64_t refresh_stalls() const noexcept {
    return refresh_stalls_;
  }
  [[nodiscard]] std::uint64_t row_hits() const noexcept { return row_hits_; }
  [[nodiscard]] bool busy(Cycle now) const noexcept { return now < free_at_; }

  void reset() noexcept {
    free_at_ = 0;
    accesses_ = 0;
    conflicts_ = 0;
    refresh_stalls_ = 0;
    row_hits_ = 0;
    open_row_valid_ = false;
  }

 private:
  /// Common arbitration: serialize behind the previous access and step
  /// over any refresh window.
  Schedule begin_access(Cycle arrival) noexcept {
    Schedule sched;
    sched.conflict = arrival < free_at_;
    sched.start = sched.conflict ? free_at_ : arrival;
    if (refresh_interval_ != 0) {
      // An access may not begin inside a refresh window.
      const Cycle position =
          (sched.start + refresh_phase_) % refresh_interval_;
      if (position < refresh_duration_) {
        sched.start += refresh_duration_ - position;
        sched.refresh_stall = true;
        ++refresh_stalls_;
      }
    }
    ++accesses_;
    conflicts_ += sched.conflict ? 1 : 0;
    return sched;
  }

  Cycle free_at_ = 0;
  Cycle refresh_interval_ = 0;  ///< 0 = refresh disabled
  Cycle refresh_duration_ = 0;
  Cycle refresh_phase_ = 0;
  std::uint64_t open_row_ = 0;  ///< open-page mode only
  bool open_row_valid_ = false;
  std::uint64_t accesses_ = 0;
  std::uint64_t conflicts_ = 0;
  std::uint64_t refresh_stalls_ = 0;
  std::uint64_t row_hits_ = 0;
};

}  // namespace mac3d
