// HMC packetized protocol accounting (paper Sec. 2.2.2).
//
// Every packet carries one FLIT (16 B) of control information (header +
// tail); a complete access (request + response) therefore pays a fixed
// 32 B of control overhead regardless of payload (Eq. 1).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mac3d {

/// Unique id for an in-flight HMC transaction.
using TransactionId = std::uint64_t;

/// A request packet as dispatched to the 3D-stacked memory. May be a raw
/// (bypassed) single-FLIT request or a coalesced 64/128/256 B packet.
struct HmcRequest {
  TransactionId id = 0;
  Address addr = 0;              ///< start address (FLIT aligned)
  std::uint32_t data_bytes = kFlitBytes;  ///< payload size, multiple of 16 B
  bool write = false;
  bool atomic = false;
  NodeId home_node = 0;          ///< node whose cube services this request
  std::vector<Target> targets;   ///< raw requests merged into this packet
};

/// A response returned by the device.
struct HmcResponse {
  TransactionId id = 0;
  Address addr = 0;
  std::uint32_t data_bytes = 0;
  bool write = false;
  Cycle completed = 0;            ///< cycle at which the response is available
  std::vector<Target> targets;
};

/// Payload FLITs of a packet of `data_bytes`.
[[nodiscard]] constexpr std::uint32_t data_flits(
    std::uint32_t data_bytes) noexcept {
  return (data_bytes + kFlitBytes - 1) / kFlitBytes;
}

/// FLITs on the link for the *request* packet: reads carry control only,
/// writes carry control + data.
[[nodiscard]] constexpr std::uint32_t request_flits(std::uint32_t data_bytes,
                                                    bool write) noexcept {
  return 1 + (write ? data_flits(data_bytes) : 0);
}

/// FLITs on the link for the *response* packet.
[[nodiscard]] constexpr std::uint32_t response_flits(std::uint32_t data_bytes,
                                                     bool write) noexcept {
  return 1 + (write ? 0 : data_flits(data_bytes));
}

/// Total bytes moved on the link for one complete access.
[[nodiscard]] constexpr std::uint64_t access_link_bytes(
    std::uint32_t data_bytes, bool write) noexcept {
  return static_cast<std::uint64_t>(request_flits(data_bytes, write) +
                                    response_flits(data_bytes, write)) *
         kFlitBytes;
}

/// Eq. 1: bandwidth efficiency = data / (data + overhead), with the fixed
/// 32 B per-access control overhead.
[[nodiscard]] constexpr double bandwidth_efficiency(
    std::uint32_t data_bytes) noexcept {
  return static_cast<double>(data_bytes) /
         static_cast<double>(data_bytes + kAccessOverheadBytes);
}

/// Fraction of link bytes that is control overhead (1 - Eq. 1).
[[nodiscard]] constexpr double overhead_fraction(
    std::uint32_t data_bytes) noexcept {
  return 1.0 - bandwidth_efficiency(data_bytes);
}

}  // namespace mac3d
