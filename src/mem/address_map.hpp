// Physical address decomposition for the 3D-stacked memory (paper Fig. 5).
//
// Layout (low to high):
//   bits [0 .. 3]                      FLIT offset (ignored by the MAC)
//   bits [4 .. 4+log2(flits/row)-1]    FLIT id within the DRAM row
//   bits [row_shift ..]                row number = {vault, bank, row index}
//
// Vaults are interleaved at row granularity (consecutive rows map to
// consecutive vaults), matching the HMC's interleaved-vault organization.
#pragma once

#include <cstdint>

#include "common/bitutil.hpp"
#include "common/config.hpp"
#include "common/types.hpp"

namespace mac3d {

/// Fully decoded address.
struct DecodedAddress {
  std::uint64_t row = 0;       ///< global row number (addr >> row_shift)
  std::uint32_t flit = 0;      ///< FLIT index within the row
  std::uint32_t flit_off = 0;  ///< byte offset within the FLIT
  std::uint32_t vault = 0;     ///< vault index
  std::uint32_t bank = 0;      ///< bank index within the vault
  std::uint64_t bank_row = 0;  ///< row index within the bank
  NodeId node = 0;             ///< NUMA node owning the address

  friend bool operator==(const DecodedAddress&,
                         const DecodedAddress&) = default;
};

/// Stateless decoder bound to one SimConfig geometry.
class AddressMap {
 public:
  explicit AddressMap(const SimConfig& config);

  [[nodiscard]] DecodedAddress decode(Address addr) const noexcept;

  /// Row number only (hot path in the ARQ comparators).
  [[nodiscard]] std::uint64_t row_of(Address addr) const noexcept {
    return addr >> row_shift_;
  }
  /// FLIT index within the row.
  [[nodiscard]] std::uint32_t flit_of(Address addr) const noexcept {
    return static_cast<std::uint32_t>(
        bits(addr, kFlitShift, row_shift_ - kFlitShift));
  }
  /// First byte address of a row.
  [[nodiscard]] Address row_base(std::uint64_t row) const noexcept {
    return row << row_shift_;
  }
  [[nodiscard]] std::uint32_t vault_of(std::uint64_t row) const noexcept {
    return static_cast<std::uint32_t>(row & (vaults_ - 1));
  }
  [[nodiscard]] std::uint32_t bank_of(std::uint64_t row) const noexcept {
    return static_cast<std::uint32_t>((row >> vault_bits_) &
                                      (banks_per_vault_ - 1));
  }
  /// Global bank index (vault-major), in [0, vaults * banks_per_vault).
  [[nodiscard]] std::uint32_t global_bank(std::uint64_t row) const noexcept {
    return vault_of(row) * banks_per_vault_ + bank_of(row);
  }
  [[nodiscard]] NodeId node_of(Address addr) const noexcept {
    return static_cast<NodeId>(addr >> node_shift_);
  }
  /// Local (within-node) address: strips the node bits.
  [[nodiscard]] Address local_addr(Address addr) const noexcept {
    return addr & (node_span_ - 1);
  }

  [[nodiscard]] unsigned row_shift() const noexcept { return row_shift_; }
  [[nodiscard]] std::uint32_t flits_per_row() const noexcept {
    return flits_per_row_;
  }
  [[nodiscard]] std::uint64_t node_span() const noexcept { return node_span_; }

  static constexpr unsigned kFlitShift = 4;  ///< log2(kFlitBytes)

 private:
  unsigned row_shift_;
  unsigned vault_bits_;
  unsigned node_shift_;
  std::uint32_t flits_per_row_;
  std::uint32_t vaults_;
  std::uint32_t banks_per_vault_;
  std::uint64_t node_span_;
};

}  // namespace mac3d
