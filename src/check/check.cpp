#include "check/check.hpp"

#include <sstream>
#include <utility>

#include "common/stats.hpp"

namespace mac3d {

std::string Violation::to_string() const {
  std::ostringstream out;
  out << "[" << mac3d::to_string(invariant->severity) << "] "
      << invariant->id << " @ cycle " << cycle << ": " << detail
      << " (invariant: " << invariant->summary << "; paper "
      << invariant->paper_ref << ")";
  return out.str();
}

void CheckContext::fail(const Invariant& invariant, Cycle cycle,
                        std::string detail) {
  violations_.fetch_add(1, std::memory_order_relaxed);
  Violation violation{&invariant, cycle, std::move(detail)};
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++by_id_[std::string(invariant.id)];
    if (mode_ != FailMode::kThrow &&
        first_failures_.size() < kMaxStoredFailures) {
      first_failures_.push_back(violation);
    }
  }
  // Thrown outside the lock: the parallel engine catches breaches from
  // worker shards and rethrows at its barrier.
  if (mode_ == FailMode::kThrow) throw InvariantViolation(violation);
}

void CheckContext::on_finalize(std::function<void(CheckContext&)> hook) {
  const std::lock_guard<std::mutex> lock(mutex_);
  finalizers_.push_back(std::move(hook));
}

void CheckContext::finalize() {
  // Clear first: a finalizer may throw (kThrow mode) and the hooks capture
  // components that will be gone by the time the context is reused.
  std::vector<std::function<void(CheckContext&)>> hooks;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    hooks.swap(finalizers_);
  }
  for (const auto& hook : hooks) hook(*this);
}

std::uint64_t CheckContext::violations(std::string_view id) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = by_id_.find(id);
  return it == by_id_.end() ? 0 : it->second;
}

std::string CheckContext::report() const {
  std::ostringstream out;
  out << "invariant checks: " << checks_run_ << " run, " << violations_
      << " violation" << (violations_ == 1 ? "" : "s") << "\n";
  for (const auto& [id, count] : by_id_) {
    out << "  " << id << ": " << count << "\n";
  }
  if (!first_failures_.empty()) {
    out << "first failures:\n";
    for (const Violation& violation : first_failures_) {
      out << "  " << violation.to_string() << "\n";
    }
  }
  return out.str();
}

void CheckContext::collect(StatSet& out, const std::string& prefix) const {
  out.set(prefix + ".checks_run", static_cast<double>(checks_run_));
  out.set(prefix + ".violations", static_cast<double>(violations_));
  for (const auto& [id, count] : by_id_) {
    out.set(prefix + ".violations." + id, static_cast<double>(count));
  }
}

}  // namespace mac3d
