#include "check/conservation.hpp"

#include <sstream>

#include "check/invariants.hpp"

namespace mac3d {

std::string ConservationChecker::describe(ThreadId tid, Tag tag,
                                          const char* what) const {
  std::ostringstream out;
  out << scope_ << ": " << what << " tid=" << tid << " tag=" << tag
      << " (in flight: " << in_flight_.size() << ")";
  return out.str();
}

void ConservationChecker::on_accept(ThreadId tid, Tag tag, MemOp op,
                                    Cycle now) {
  const auto [it, inserted] =
      in_flight_.try_emplace(key(tid, tag), Pending{next_seq_++, op, now});
  if (!inserted) {
    context_->fail(inv::kDuplicateInFlight, now,
                   describe(tid, tag, "tag reused while still in flight,"));
    it->second = Pending{next_seq_ - 1, op, now};
  }
}

void ConservationChecker::on_complete(ThreadId tid, Tag tag, bool fence,
                                      Cycle now) {
  const auto it = in_flight_.find(key(tid, tag));
  if (it == in_flight_.end()) {
    context_->fail(inv::kOrphanCompletion, now,
                   describe(tid, tag, "completion without in-flight request,"));
    return;
  }
  const std::uint64_t seq = it->second.seq;
  const bool was_fence = it->second.op == MemOp::kFence;
  in_flight_.erase(it);
  if (!fence && !was_fence) return;

  // Fence ordering (Sec. 4.1): when a fence retires, no request accepted
  // before it may still be in flight.
  for (const auto& [other_key, pending] : in_flight_) {
    if (pending.seq < seq) {
      std::ostringstream out;
      out << scope_ << ": fence tid=" << tid << " tag=" << tag
          << " (accept seq " << seq << ") retired while older "
          << to_string(pending.op) << " tid=" << (other_key >> 16)
          << " tag=" << (other_key & 0xffffu) << " (accept seq "
          << pending.seq << ", accepted cycle " << pending.accepted
          << ") is still in flight";
      context_->fail(inv::kFenceOrdering, now, out.str());
      return;  // one dump per fence is enough
    }
  }
}

void ConservationChecker::finalize(Cycle now) {
  for (const auto& [flight_key, pending] : in_flight_) {
    std::ostringstream out;
    out << scope_ << ": " << to_string(pending.op)
        << " tid=" << (flight_key >> 16) << " tag=" << (flight_key & 0xffffu)
        << " accepted at cycle " << pending.accepted
        << " never completed (run ended with " << in_flight_.size()
        << " request(s) in flight)";
    context_->fail(inv::kOneCompletion, now, out.str());
  }
  in_flight_.clear();
}

}  // namespace mac3d
