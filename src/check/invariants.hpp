// Catalog of model invariants (the full prose catalog, with the paper
// sections each law encodes, is docs/INVARIANTS.md — keep the two in sync).
//
// Identity is the constant's address; the dotted id is the stable name
// used in stats output ("checks.violations.<id>") and reports.
#pragma once

#include "check/check.hpp"

namespace mac3d::inv {

// ---- Conservation (request/response matching) ---------------------------

inline constexpr Invariant kOneCompletion{
    "conservation.one_completion",
    "every raw request accepted by a memory path produces exactly one "
    "completion by the end of the run",
    "Sec. 3.2/4.4", Severity::kError};

inline constexpr Invariant kOrphanCompletion{
    "conservation.orphan_completion",
    "a completion's (tid, tag) matches a request that is in flight",
    "Sec. 4.1.1", Severity::kError};

inline constexpr Invariant kDuplicateInFlight{
    "conservation.duplicate_in_flight",
    "(tid, tag) is unique among in-flight raw requests",
    "Sec. 4.1.1", Severity::kError};

inline constexpr Invariant kFenceOrdering{
    "conservation.fence_ordering",
    "a fence retires only after every older request of the path completed",
    "Sec. 4.1", Severity::kFatal};

// ---- ARQ (Raw Request Aggregator) ---------------------------------------

inline constexpr Invariant kArqOccupancy{
    "arq.occupancy_bound",
    "ARQ occupancy never exceeds the configured entry count",
    "Sec. 4.1/Table 1", Severity::kFatal};

inline constexpr Invariant kArqTargetCap{
    "arq.target_capacity",
    "an ARQ entry holds at most (entry_bytes - addr/map bytes)/4.5 targets",
    "Sec. 5.3.3", Severity::kError};

inline constexpr Invariant kArqBBit{
    "arq.b_bit_legality",
    "B (bypass) bit is set iff the entry holds exactly one raw request",
    "Sec. 4.1.2", Severity::kError};

inline constexpr Invariant kArqTBit{
    "arq.t_bit_legality",
    "loads and stores never merge into the same entry (T-bit extension)",
    "Sec. 4.1.2", Severity::kError};

inline constexpr Invariant kArqFenceBlocksMerge{
    "arq.fence_blocks_merge",
    "no merge happens while a fence is pending (comparators disabled)",
    "Sec. 4.1", Severity::kError};

inline constexpr Invariant kArqFlitMapConsistent{
    "arq.flit_map_consistent",
    "every merged target's FLIT id is set in the entry's FLIT map and "
    "within the row",
    "Sec. 4.1.1", Severity::kError};

// ---- Request Builder / FLIT table ---------------------------------------

inline constexpr Invariant kFlitTableCapacity{
    "builder.flit_table_capacity",
    "the FLIT table holds exactly 2^groups entries (16 for 256 B rows)",
    "Sec. 4.2.1/Fig. 8", Severity::kFatal};

inline constexpr Invariant kFlitTableShape{
    "builder.flit_table_shape",
    "every table entry is a legal packet: size a power-of-two multiple of "
    "the 64 B granularity, offset aligned, packet inside the row",
    "Sec. 4.2.1", Severity::kFatal};

inline constexpr Invariant kFlitCoverage{
    "builder.flit_coverage",
    "a built packet's byte range covers every FLIT requested in the "
    "entry's map (byte conservation per entry)",
    "Sec. 4.2.1/Fig. 8", Severity::kFatal};

inline constexpr Invariant kBuilderTargetConservation{
    "builder.target_conservation",
    "packet assembly forwards every merged target (none dropped or added)",
    "Sec. 4.2", Severity::kError};

inline constexpr Invariant kOrphanFlitId{
    "builder.orphan_flit_id",
    "no packet target references a FLIT id outside the packet's range",
    "Sec. 4.1.1", Severity::kError};

// ---- HMC device ----------------------------------------------------------

inline constexpr Invariant kPacketOverhead{
    "hmc.packet_overhead",
    "each access moves payload + exactly one header+tail FLIT per packet "
    "(32 B control per request/response pair, Eq. 1)",
    "Sec. 2.2.2", Severity::kError};

inline constexpr Invariant kBankLegal{
    "hmc.bank_state_machine",
    "closed-page bank accesses serialize: an access starts at or after "
    "its arrival and after the previous access's precharge completed",
    "Sec. 2.2.1", Severity::kFatal};

inline constexpr Invariant kBankConflictFlag{
    "hmc.bank_conflict_flag",
    "the conflict flag is raised iff the arrival found the bank busy",
    "Sec. 2.2.1", Severity::kWarning};

inline constexpr Invariant kResponseCausality{
    "hmc.response_causality",
    "a response completes strictly after its request was submitted and "
    "after its bank access finished",
    "Sec. 2.2", Severity::kFatal};

inline constexpr Invariant kTargetInPacket{
    "hmc.target_in_packet",
    "every target de-coalesced from a packet lies inside the packet's "
    "byte range",
    "Sec. 4.2", Severity::kError};

// ---- Cache hierarchy (motivation study + MSHR baseline) -----------------

inline constexpr Invariant kCacheLruStack{
    "cache.lru_stack",
    "after every access the touched line is its set's unique MRU: its "
    "timestamp is the strict maximum and valid lines' timestamps are "
    "pairwise distinct (the LRU stack property)",
    "Sec. 2.1/Fig. 1", Severity::kError};

inline constexpr Invariant kMshrOccupancy{
    "mshr.occupancy_bound",
    "the MSHR file never holds more entries than its configured capacity",
    "Sec. 2.3", Severity::kFatal};

// ---- Warp-iterative policy (SIMT-style coalescing) ----------------------

inline constexpr Invariant kWarpWindowBound{
    "warp.window_bound",
    "a warp window holds between one and warp_lanes lanes, and every lane "
    "is served exactly once before the window retires",
    "Sec. 2.1 (GPU coalescing)", Severity::kFatal};

inline constexpr Invariant kWarpPacketSpan{
    "warp.packet_span",
    "a warp packet's byte range stays inside one warp_block_bytes merge "
    "block (and therefore inside one DRAM row)",
    "Sec. 2.1 (GPU coalescing)", Severity::kError};

// ---- Routers (node fabric) ----------------------------------------------

inline constexpr Invariant kRouterClassification{
    "router.target_matching",
    "a request is queued locally iff its home node is this node (fences "
    "are always local); remote-in requests are homed here",
    "Sec. 3.1", Severity::kError};

inline constexpr Invariant kRouterConservation{
    "router.no_dropped_tids",
    "every routed request is eventually popped: queues drain by the end "
    "of the run and pushes balance pops",
    "Sec. 3.1", Severity::kError};

inline constexpr Invariant kFabricCredit{
    "fabric.credit_conservation",
    "interconnect credits balance: every message sent is eventually "
    "delivered (sends == deliveries) and all lanes drain by the end of "
    "the run",
    "Sec. 3", Severity::kError};

}  // namespace mac3d::inv
