// Model-invariant checking core (see docs/INVARIANTS.md).
//
// The simulator's credibility rests on conservation laws the paper implies:
// every raw request produces exactly one completion, FLIT-table bytes
// balance against HMC packet payloads, fences order, bank state machines
// stay legal. This subsystem makes those laws first-class: each law is an
// `Invariant` (id + paper reference + severity), components report breaches
// to a shared `CheckContext`, and the context keeps per-invariant counters
// plus the first few failures with full context for debugging.
//
// Cost model: a component holds a `CheckContext*` that is null unless a
// harness attached one, so the hot path pays one predictable branch per
// check site. Configuring CMake with -DMAC3D_CHECKS=OFF compiles every
// check site out entirely (MAC3D_CHECK expands to nothing).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace mac3d {

class StatSet;

/// How bad a breach of the invariant is.
enum class Severity : std::uint8_t {
  kWarning,  ///< model-quality concern; the simulation stays meaningful
  kError,    ///< the run's statistics can no longer be trusted
  kFatal,    ///< internal state is corrupt; continuing is meaningless
};

[[nodiscard]] constexpr std::string_view to_string(Severity severity) noexcept {
  switch (severity) {
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
    case Severity::kFatal: return "fatal";
  }
  return "?";
}

/// One model invariant. Instances are compile-time constants (the catalog
/// lives in check/invariants.hpp); identity is the object's address, `id`
/// is the stable dotted name used in stats and reports.
struct Invariant {
  std::string_view id;         ///< e.g. "mac.conservation.one_completion"
  std::string_view summary;    ///< the law that must hold
  std::string_view paper_ref;  ///< paper section that implies it
  Severity severity = Severity::kError;
};

/// One recorded breach (only the first few per context keep full detail).
struct Violation {
  const Invariant* invariant = nullptr;
  Cycle cycle = 0;
  std::string detail;  ///< first-failure context dump

  [[nodiscard]] std::string to_string() const;
};

/// Thrown by CheckContext in FailMode::kThrow.
class InvariantViolation : public std::runtime_error {
 public:
  explicit InvariantViolation(const Violation& violation)
      : std::runtime_error(violation.to_string()),
        invariant_(violation.invariant) {}

  [[nodiscard]] const Invariant& invariant() const noexcept {
    return *invariant_;
  }

 private:
  const Invariant* invariant_;
};

/// Shared sink for invariant breaches plus end-of-run finalizers.
///
/// A context outlives the components it is attached to only if finalize()
/// runs while they are still alive — the drivers call finalize() before
/// tearing the pipeline down, and finalize() clears the registered hooks
/// so a context can be reused across runs (counters accumulate).
///
/// Thread safety: check sites may fire concurrently from the parallel
/// engine's node shards (docs/PARALLELISM.md), so the hot counter is a
/// relaxed atomic and breach recording takes a mutex. Relaxed ordering is
/// enough — counters are only *read* after the engine's barrier, which
/// orders them. finalize() itself is not concurrent (drivers call it on
/// one thread after the run).
class CheckContext {
 public:
  enum class FailMode {
    kCount,  ///< count and remember; the run continues (CLI default)
    kThrow,  ///< throw InvariantViolation on the first breach (tests)
  };

  explicit CheckContext(FailMode mode = FailMode::kCount) : mode_(mode) {}

  /// Record a breach of `invariant` observed at `cycle`.
  /// In kThrow mode this throws and nothing after the call runs.
  void fail(const Invariant& invariant, Cycle cycle, std::string detail);

  /// Cheap per-site instrumentation (how many checks actually ran).
  void count_check() noexcept {
    checks_run_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Register an end-of-run hook (e.g. "no request is still in flight").
  /// Hooks may capture components by reference; finalize() must run before
  /// those components are destroyed.
  void on_finalize(std::function<void(CheckContext&)> hook);

  /// Run and clear all registered finalizers.
  void finalize();

  [[nodiscard]] std::uint64_t checks_run() const noexcept {
    return checks_run_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t violations() const noexcept {
    return violations_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t violations(std::string_view id) const;
  [[nodiscard]] const std::map<std::string, std::uint64_t, std::less<>>&
  violations_by_id() const noexcept {
    return by_id_;
  }
  /// First breaches with full context (capped at kMaxStoredFailures).
  [[nodiscard]] const std::vector<Violation>& first_failures() const noexcept {
    return first_failures_;
  }

  /// Human-readable report: totals, per-invariant counts, first failures.
  [[nodiscard]] std::string report() const;

  /// Export `prefix.checks_run`, `prefix.violations` and one counter per
  /// breached invariant into a StatSet.
  void collect(StatSet& out, const std::string& prefix) const;

  static constexpr std::size_t kMaxStoredFailures = 8;

 private:
  FailMode mode_;
  std::atomic<std::uint64_t> checks_run_{0};
  std::atomic<std::uint64_t> violations_{0};
  mutable std::mutex mutex_;  ///< guards by_id_, first_failures_, finalizers_
  std::map<std::string, std::uint64_t, std::less<>> by_id_;
  std::vector<Violation> first_failures_;
  std::vector<std::function<void(CheckContext&)>> finalizers_;
};

}  // namespace mac3d

// Check-site macro: no-op unless a context is attached; the condition and
// the detail expression are only evaluated when a context is present (the
// detail only when the condition fails).
#if MAC3D_CHECKS_ENABLED
#define MAC3D_CHECK(ctx, invariant, cond, cycle, detail) \
  do {                                                   \
    if ((ctx) != nullptr) {                              \
      (ctx)->count_check();                              \
      if (!(cond)) (ctx)->fail((invariant), (cycle), (detail)); \
    }                                                    \
  } while (0)
#else
#define MAC3D_CHECK(ctx, invariant, cond, cycle, detail) \
  do {                                                   \
  } while (0)
#endif
