// HMC device checkers: closed-page bank state-machine legality and
// per-packet header+tail accounting (docs/INVARIANTS.md §hmc).
//
// Header-only and expressed over plain integers so mem/ can include it
// without a dependency cycle; HmcDevice calls these from submit() when a
// CheckContext is attached.
#pragma once

#include <cstdint>
#include <sstream>
#include <vector>

#include "check/check.hpp"
#include "check/invariants.hpp"
#include "common/types.hpp"

namespace mac3d {

/// Tracks per-bank scheduling history to verify serialization. One
/// instance per HmcDevice, created by attach_checks().
class HmcChecker {
 public:
  HmcChecker(CheckContext& context, std::size_t banks)
      : context_(&context), bank_free_at_(banks, 0) {}

  /// Verify one bank schedule decision. `free_at_after` is the bank's
  /// free_at() after the access (data_ready + precharge for closed page).
  void on_bank_access(std::size_t bank, Cycle arrival, Cycle start,
                      Cycle data_ready, Cycle free_at_after, bool conflict,
                      Cycle now) {
    context_->count_check();
    const Cycle prev_free_at = bank_free_at_.at(bank);
    if (start < arrival || start < prev_free_at || data_ready <= start ||
        free_at_after < data_ready) {
      std::ostringstream out;
      out << "bank " << bank << ": arrival=" << arrival << " start=" << start
          << " data_ready=" << data_ready << " free_at_after=" << free_at_after
          << " prev_free_at=" << prev_free_at;
      context_->fail(inv::kBankLegal, now, out.str());
    }
    context_->count_check();
    if (conflict != (arrival < prev_free_at)) {
      std::ostringstream out;
      out << "bank " << bank << ": conflict flag " << conflict
          << " but arrival=" << arrival << " vs prev_free_at=" << prev_free_at;
      context_->fail(inv::kBankConflictFlag, now, out.str());
    }
    bank_free_at_.at(bank) = free_at_after;
  }

  /// Verify one packet's link accounting and response causality.
  /// `wire_bytes` is what the device charged to the links for the whole
  /// access; Eq. 1 demands payload + exactly 32 B of header+tail control.
  void on_packet(std::uint32_t data_bytes, bool write,
                 std::uint32_t req_flits, std::uint32_t resp_flits,
                 std::uint64_t wire_bytes, Cycle submitted, Cycle data_ready,
                 Cycle completed) {
    context_->count_check();
    const std::uint32_t payload_flits = (data_bytes + kFlitBytes - 1) / kFlitBytes;
    const std::uint64_t expected_wire =
        static_cast<std::uint64_t>(payload_flits + 2) * kFlitBytes;
    const bool flit_split_ok = write ? (req_flits == 1 + payload_flits &&
                                        resp_flits == 1)
                                     : (req_flits == 1 &&
                                        resp_flits == 1 + payload_flits);
    if (wire_bytes != expected_wire ||
        wire_bytes != data_bytes + kAccessOverheadBytes || !flit_split_ok) {
      std::ostringstream out;
      out << (write ? "write" : "read") << " " << data_bytes
          << " B: req_flits=" << req_flits << " resp_flits=" << resp_flits
          << " wire_bytes=" << wire_bytes << " expected "
          << expected_wire << " (payload + 32 B control)";
      context_->fail(inv::kPacketOverhead, submitted, out.str());
    }
    context_->count_check();
    if (completed <= submitted || completed < data_ready) {
      std::ostringstream out;
      out << "response completed=" << completed << " submitted=" << submitted
          << " bank data_ready=" << data_ready;
      context_->fail(inv::kResponseCausality, submitted, out.str());
    }
  }

  /// Verify a de-coalesced target lies inside the packet's byte range.
  /// `packet_row_offset` is the packet's start offset within its DRAM row.
  void on_target(std::uint8_t flit, std::uint32_t packet_row_offset,
                 std::uint32_t data_bytes, Cycle now) {
    context_->count_check();
    const std::uint32_t byte = static_cast<std::uint32_t>(flit) * kFlitBytes;
    if (byte < packet_row_offset || byte >= packet_row_offset + data_bytes) {
      std::ostringstream out;
      out << "target flit " << static_cast<unsigned>(flit)
          << " (row byte " << byte << ") outside packet [" << packet_row_offset
          << ", " << packet_row_offset + data_bytes << ")";
      context_->fail(inv::kTargetInPacket, now, out.str());
    }
  }

 private:
  CheckContext* context_;
  std::vector<Cycle> bank_free_at_;
};

}  // namespace mac3d
