// Request/response conservation and fence-ordering checker.
//
// Tracks every raw request a memory path accepts by its (tid, tag) identity
// and verifies the laws of docs/INVARIANTS.md §conservation:
//   * one completion per accepted request, none left at end of run;
//   * completions match an in-flight request (no orphans/duplicates);
//   * a fence retires only after every older accepted request completed
//     (Sec. 4.1 — checked against acceptance order, not completion order).
//
// One instance guards one path (MAC, raw, MSHR, or one node's MAC); attach
// via the path's attach_checks(). The O(n) fence scan and the hash map are
// check-build costs only — nothing here runs without an attached context.
#pragma once

#include <cstdint>
#include <string>
#include <map>

#include "check/check.hpp"
#include "common/types.hpp"

namespace mac3d {

class ConservationChecker {
 public:
  /// `scope` names the guarded path in failure dumps, e.g. "mac" or
  /// "node0.mac". The context must outlive the checker.
  ConservationChecker(CheckContext& context, std::string scope)
      : context_(&context), scope_(std::move(scope)) {}

  /// A raw request (or fence) entered the path at `now`.
  void on_accept(ThreadId tid, Tag tag, MemOp op, Cycle now);

  /// A completion (or fence retirement) left the path at `now`.
  void on_complete(ThreadId tid, Tag tag, bool fence, Cycle now);

  /// End of run: everything accepted must have completed.
  void finalize(Cycle now);

  [[nodiscard]] std::uint64_t in_flight() const noexcept {
    return in_flight_.size();
  }

 private:
  struct Pending {
    std::uint64_t seq = 0;  ///< acceptance order (fence-ordering check)
    MemOp op = MemOp::kLoad;
    Cycle accepted = 0;
  };

  static std::uint64_t key(ThreadId tid, Tag tag) noexcept {
    return request_key(tid, tag);
  }

  [[nodiscard]] std::string describe(ThreadId tid, Tag tag,
                                     const char* what) const;

  CheckContext* context_;
  std::string scope_;
  std::uint64_t next_seq_ = 0;
  // std::map, not unordered: the fence-ordering walk and finalize() both
  // iterate this, and the first match chosen (= the failure detail the
  // user sees) must not depend on hash order.
  std::map<std::uint64_t, Pending> in_flight_;
};

}  // namespace mac3d
