// FLIT-table and Request-Builder checkers: byte conservation per entry,
// table capacity, and no orphaned FLIT ids (docs/INVARIANTS.md §builder).
//
// Header-only; included by mac/ sources (the check core deliberately does
// not link against mac/, so these helpers live with the call sites).
#pragma once

#include <cstdint>
#include <sstream>

#include "check/check.hpp"
#include "check/invariants.hpp"
#include "common/bitutil.hpp"
#include "common/types.hpp"
#include "mac/flit_map.hpp"
#include "mac/flit_table.hpp"
#include "mem/packet.hpp"

namespace mac3d {

/// Static validation of a freshly built FLIT table: 2^groups entries, and
/// every entry a legal packet shape that covers its pattern's group span.
/// Run once at attach time (the table is immutable afterwards).
inline void check_flit_table(const FlitTable& table, std::uint32_t row_bytes,
                             std::uint32_t min_bytes, CheckContext& context) {
  context.count_check();
  const std::uint32_t groups = table.groups();
  const auto expected_entries = std::uint32_t{1} << groups;
  if (table.entries() != expected_entries) {
    std::ostringstream out;
    out << "FLIT table has " << table.entries() << " entries, expected 2^"
        << groups << " = " << expected_entries;
    context.fail(inv::kFlitTableCapacity, 0, out.str());
    return;  // per-entry checks below index by pattern
  }
  for (std::uint32_t pattern = 1; pattern < expected_entries; ++pattern) {
    const PacketShape shape = table.lookup(pattern);
    context.count_check();
    const bool size_legal = shape.size_bytes >= min_bytes &&
                            shape.size_bytes <= row_bytes &&
                            shape.size_bytes % min_bytes == 0 &&
                            is_pow2(shape.size_bytes / min_bytes);
    const bool offset_legal = shape.offset_bytes % min_bytes == 0 &&
                              shape.offset_bytes + shape.size_bytes <=
                                  row_bytes;
    if (!size_legal || !offset_legal) {
      std::ostringstream out;
      out << "pattern 0x" << std::hex << pattern << std::dec << " -> size "
          << shape.size_bytes << " B offset " << shape.offset_bytes
          << " B is not a legal packet for " << row_bytes << " B rows / "
          << min_bytes << " B granularity";
      context.fail(inv::kFlitTableShape, 0, out.str());
      continue;
    }
    // Byte conservation at table level: the entry must span every active
    // group of the pattern (first to last set bit).
    context.count_check();
    const std::uint32_t first_byte = lowest_bit(pattern) * min_bytes;
    const std::uint32_t last_byte = (highest_bit(pattern) + 1) * min_bytes;
    if (shape.offset_bytes > first_byte ||
        shape.offset_bytes + shape.size_bytes < last_byte) {
      std::ostringstream out;
      out << "pattern 0x" << std::hex << pattern << std::dec << " spans ["
          << first_byte << ", " << last_byte << ") but entry covers ["
          << shape.offset_bytes << ", "
          << shape.offset_bytes + shape.size_bytes << ")";
      context.fail(inv::kFlitCoverage, 0, out.str());
    }
  }
}

/// Verify one assembled packet against the ARQ entry it was built from:
/// the packet's byte range covers every requested FLIT, no target was
/// dropped or invented, and no target references a FLIT outside the map.
/// `flits` and `row` come from the source entry (still valid after its
/// target list moved into the packet); `entry_target_count` is the entry's
/// target count before the move. `row_offset` is the packet's start offset
/// within the DRAM row.
inline void check_built_packet(const FlitMap& flits, std::uint64_t row,
                               std::size_t entry_target_count,
                               const HmcRequest& packet,
                               std::uint32_t row_offset, Cycle now,
                               CheckContext& context) {
  context.count_check();
  if (packet.targets.size() != entry_target_count) {
    std::ostringstream out;
    out << "row " << row << ": entry held " << entry_target_count
        << " targets, packet carries " << packet.targets.size();
    context.fail(inv::kBuilderTargetConservation, now, out.str());
  }
  const std::uint32_t end_offset = row_offset + packet.data_bytes;
  for (std::uint32_t flit = 0; flit < flits.size(); ++flit) {
    if (!flits.test(flit)) continue;
    context.count_check();
    const std::uint32_t byte = flit * kFlitBytes;
    if (byte < row_offset || byte >= end_offset) {
      std::ostringstream out;
      out << "row " << row << ": requested FLIT " << flit << " (byte "
          << byte << ") not covered by packet [" << row_offset << ", "
          << end_offset << ") of " << packet.data_bytes << " B";
      context.fail(inv::kFlitCoverage, now, out.str());
    }
  }
  for (const Target& target : packet.targets) {
    context.count_check();
    if (target.flit >= flits.size() || !flits.test(target.flit)) {
      std::ostringstream out;
      out << "row " << row << ": target tid=" << target.tid
          << " tag=" << target.tag << " references FLIT "
          << static_cast<unsigned>(target.flit)
          << " which is not set in the entry's FLIT map";
      context.fail(inv::kOrphanFlitId, now, out.str());
    }
  }
}

}  // namespace mac3d
