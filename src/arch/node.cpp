#include "arch/node.hpp"

#include <cassert>

#include "obs/obs.hpp"
#include "obs/profiler.hpp"

namespace mac3d {

Node::Node(const SimConfig& config, NodeId id,
           const std::vector<NodeId>* thread_owner,
           const std::vector<CoreId>* thread_core)
    : config_(config),
      id_(id),
      thread_owner_(thread_owner),
      thread_core_(thread_core) {
  // Heterogeneous systems (config.node_policies): this node's effective
  // policy is pinned into its own config copy before the path is built,
  // so everything downstream — metrics namespaces, census rows, check
  // scopes — sees the per-node choice.
  config_.policy = config.policy_for_node(id);
  device_ = std::make_unique<HmcDevice>(config_, id);
  path_ = make_memory_path(config_, *device_);
  router_ = std::make_unique<RequestRouter>(config_, device_->address_map(),
                                            id);
  cores_.reserve(config.cores);
  for (std::uint32_t c = 0; c < config.cores; ++c) {
    cores_.emplace_back(config, id, static_cast<CoreId>(c));
  }
}

void Node::add_thread(ThreadId tid, const std::vector<MemRecord>* records) {
  cores_.at(thread_core_->at(tid)).add_thread(tid, records);
}

void Node::attach_checks(CheckContext* context) {
  device_->attach_checks(context);
  path_->attach_checks(context, "node" + std::to_string(id_) + ".");
  router_->attach_checks(context);
}

void Node::attach_sink(EventSink* sink) {
  sink_ = sink;
  router_->attach_sink(sink);
  path_->attach_sink(sink);
  device_->attach_sink(sink);
}

void Node::attach_metrics(MetricsRegistry* registry) {
  const std::string prefix = "node" + std::to_string(id_);
  router_->attach_metrics(registry, prefix + ".router");
  m_completions_ =
      registry == nullptr ? nullptr : &registry->counter(prefix +
                                                         ".completions");
}

void Node::attach_census(ActivityCensus& census) {
  const std::string prefix = "node" + std::to_string(id_) + ".";
  census.add_component(prefix + "router", *router_);
  path_->register_census(census, prefix);
  device_->register_census(census, prefix);
}

void Node::tick(Cycle now, Interconnect* fabric) {
  // 1. Interconnect arrivals.
  if (fabric != nullptr) {
    for (const RawRequest& request : fabric->deliver_requests(id_, now)) {
      MAC3D_OBS_HOP(sink_, Hop::kRequestRecv, request.tid, request.tag,
                    thread_owner_->at(request.tid), id_, now);
      pending_remote_.push_back(request);
    }
    // Retry remote requests the queue previously refused.
    std::size_t kept = 0;
    for (std::size_t i = 0; i < pending_remote_.size(); ++i) {
      if (!router_->route_remote(pending_remote_[i])) {
        pending_remote_[kept++] = pending_remote_[i];
      } else {
        router_->note_work(now);  // census: route_remote has no cycle param
      }
    }
    pending_remote_.resize(kept);
    for (const CompletedAccess& completion :
         fabric->deliver_completions(id_, now)) {
      // The fabric lane does not carry the sender; the tracer recovers the
      // true link from the matching response_send.
      MAC3D_OBS_HOP(sink_, Hop::kResponseRecv, completion.target.tid,
                    completion.target.tag, id_, id_, now);
      dispatch_completion(completion, now, nullptr);
    }
  }

  // 2. Cores issue (at most one reference per core per cycle).
  for (CoreModel& core : cores_) core.try_issue(now, *router_);

  // 3. Forward one outbound remote request to the fabric.
  if (fabric != nullptr && !router_->global_queue().empty()) {
    const RawRequest request = router_->global_queue().pop();
    const NodeId home = device_->address_map().node_of(request.addr);
    MAC3D_OBS_HOP(sink_, Hop::kRequestSend, request.tid, request.tag, id_,
                  home, now);
    fabric->send_request(request, home, now, id_);
  }

  // 4. Memory-path intake: one raw request per cycle.
  if (router_->has_mac_request() && path_->can_accept()) {
    path_->accept(router_->pop_mac_request(), now);
    router_->note_work(now);  // census: pop_mac_request has no cycle param
  }

  // 5. Advance the memory path / device.
  path_->tick(now);

  // 6. Response routing (paper Sec. 3.3).
  for (const CompletedAccess& completion : path_->drain(now)) {
    dispatch_completion(completion, now, fabric);
  }
}

void Node::dispatch_completion(const CompletedAccess& completion, Cycle now,
                               Interconnect* fabric) {
  const NodeId owner = thread_owner_->at(completion.target.tid);
  if (owner != id_ && fabric != nullptr) {
    MAC3D_OBS_HOP(sink_, Hop::kResponseSend, completion.target.tid,
                  completion.target.tag, id_, owner, now);
    fabric->send_completion(completion, owner, now, id_);
    return;
  }
  assert(owner == id_ && "completion arrived at a foreign node");
  cores_.at(thread_core_->at(completion.target.tid))
      .on_complete(completion.target.tid, now);
  MAC3D_OBS_STAMP(sink_, Stage::kCoreComplete, completion.target.tid,
                  completion.target.tag, now);
  ++completions_delivered_;
  MAC3D_OBS_COUNT(m_completions_);
  request_latency_.add(static_cast<double>(completion.completed -
                                           completion.accepted));
}

bool Node::finished() const noexcept {
  for (const CoreModel& core : cores_) {
    if (!core.finished()) return false;
  }
  return true;
}

bool Node::drained() const noexcept {
  return finished() && path_->idle() && !router_->has_mac_request() &&
         router_->global_queue().empty() && pending_remote_.empty();
}

bool Node::did_work_this_cycle(Cycle now) const noexcept {
  return router_->did_work_this_cycle(now) ||
         path_->did_work_this_cycle(now);
}

Cycle Node::next_activity_cycle(Cycle now) const noexcept {
  Cycle next = 0;
  const auto merge = [&next, now](Cycle candidate) {
    if (candidate == 0) return;  // that unit is drained
    if (candidate <= now) candidate = now + 1;
    if (next == 0 || candidate < next) next = candidate;
  };
  // Remote requests the router refused retry every cycle until routed.
  if (!pending_remote_.empty()) merge(now + 1);
  // Queued router work (MAC intake, outbound fabric forwarding).
  merge(router_->next_activity_cycle(now));
  // The memory path's own oracle covers the device: its next_event folds
  // in the earliest in-flight device completion.
  merge(path_->next_event(now));
  // Cores that can issue (completion-blocked threads wake at the delivery
  // cycle, which the path/device oracle above already marks).
  for (const CoreModel& core : cores_) merge(core.next_issue_cycle(now));
  return next;
}

void Node::collect(StatSet& out, const std::string& prefix) const {
  device_->stats().collect(out, prefix + ".hmc");
  path_->collect(out, prefix);
  out.set(prefix + ".completions",
          static_cast<double>(completions_delivered_));
  out.set(prefix + ".avg_request_latency_cycles", request_latency_.mean());
  std::uint64_t spm_accesses = 0;
  std::uint64_t issued = 0;
  for (const CoreModel& core : cores_) {
    spm_accesses += core.spm_accesses();
    issued += core.issued();
  }
  out.set(prefix + ".spm_accesses", static_cast<double>(spm_accesses));
  out.set(prefix + ".core_requests", static_cast<double>(issued));
}

}  // namespace mac3d
