// Whole-system closed-loop simulator: `nodes` NUMA nodes (paper Fig. 4),
// each with cores + MAC + 3D-stacked memory, joined by an interconnect.
// Cores replay per-thread traces and stall on outstanding references; this
// is the execution-driven counterpart of the streaming driver in src/sim.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/interconnect.hpp"
#include "arch/node.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "trace/trace.hpp"

namespace mac3d {

class ActivityCensus;
class HostProfiler;
class SnapshotStreamer;

struct SystemRunSummary {
  Cycle cycles = 0;
  bool completed = false;       ///< false when max_cycles was hit
  std::uint64_t requests = 0;   ///< core-issued main-memory references
  std::uint64_t completions = 0;
  double avg_latency_cycles = 0.0;
  /// Cycles the engine actually ticked (== cycles for the strict cycle
  /// engines; the event engines' skip ratio is cycles / visited_cycles).
  /// Deliberately NOT in `stats`, so exports stay engine-invariant.
  std::uint64_t visited_cycles = 0;
  StatSet stats;
};

class System {
 public:
  explicit System(const SimConfig& config);

  /// Distribute the trace's threads across nodes and cores round-robin:
  /// thread t lives on node t % nodes, core (t / nodes) % cores.
  /// The trace must outlive the system.
  void attach_trace(const MemoryTrace& trace);

  /// Run until every thread drains (or `max_cycles`). Multi-node configs
  /// require remote_hop_cycles >= 1 — enforced uniformly across all four
  /// engines (a zero-hop fabric delivers within the sending cycle, which
  /// the staged engines cannot reproduce, so no engine may accept it).
  SystemRunSummary run(Cycle max_cycles = 2'000'000'000ULL);

  /// Node-sharded parallel run (docs/PARALLELISM.md): all nodes advance
  /// concurrently inside each cycle on a ParallelStepper worker pool; the
  /// fabric runs staged (per-source outboxes committed in node order at
  /// the barrier) and telemetry stamps flush through per-node
  /// BufferedSinks in node order. Bit-identical to run() for any
  /// `threads` (0 = hardware concurrency). Requires remote_hop_cycles
  /// >= 1 in multi-node configs: a zero-hop fabric can deliver within
  /// the sending cycle, which no barrier schedule reproduces.
  SystemRunSummary run_parallel(std::uint32_t threads,
                                Cycle max_cycles = 2'000'000'000ULL);

  /// Event-driven fast-forward run (docs/PARALLELISM.md §event-driven
  /// engine): after each visited cycle the clock jumps to the minimum of
  /// every node's next-activity oracle and the fabric's next delivery,
  /// crediting the skipped span to the census/sampler before the landing
  /// tick. Bit-identical to run() — same cycles, stats, metrics, census —
  /// enforced by tests/test_parallel_equivalence.cpp.
  SystemRunSummary run_event(Cycle max_cycles = 2'000'000'000ULL);

  /// Event-driven fast-forward over the node-sharded parallel engine
  /// (staged fabric + worker pool, same jump rule as run_event).
  /// Bit-identical to run() for any `threads`; same zero-hop restriction
  /// as run_parallel.
  SystemRunSummary run_event_parallel(std::uint32_t threads,
                                      Cycle max_cycles = 2'000'000'000ULL);

  [[nodiscard]] Node& node(std::size_t i) { return *nodes_.at(i); }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] Interconnect& fabric() noexcept { return *fabric_; }

  /// Enable model-invariant checking on every node and the fabric
  /// (docs/INVARIANTS.md). The context must outlive the system; run
  /// context.finalize() before destroying the system. Pass nullptr to
  /// detach.
  void attach_checks(CheckContext* context);

  /// Enable request-lifecycle telemetry on every node
  /// (docs/OBSERVABILITY.md). The sink must outlive the system; pass
  /// nullptr to detach. run_parallel() interposes per-node buffers and
  /// flushes them to this sink in canonical node order each cycle, so the
  /// sink itself needs no thread safety.
  void attach_sink(EventSink* sink);

  /// Register per-node ("node<i>.router.*", "node<i>.completions") and
  /// fabric ("fabric.link<S><D>.*") metrics in `registry`
  /// (docs/OBSERVABILITY.md §multi-node). Counter updates are relaxed-
  /// atomic and namespace-confined to one shard, gauges are written only
  /// at end-of-run, so serial and run_parallel exports are byte-identical.
  /// The registry must outlive the system; pass nullptr to detach.
  void attach_metrics(MetricsRegistry* registry);

  /// Attach a periodic sampler: run()/run_parallel() register per-node
  /// router-occupancy and fabric-backlog probes and advance it at serial
  /// points (after every full-system cycle — post-barrier under
  /// run_parallel), so the CSV is engine-invariant. The sampler must
  /// outlive the system; pass nullptr to detach.
  void attach_sampler(CycleSampler* sampler) noexcept { sampler_ = sampler; }

  /// Attach an idle-cycle census (docs/OBSERVABILITY.md §profiler):
  /// registers every node's components plus the fabric, and both engines
  /// observe it once per cycle at the same serial point (post-barrier
  /// under run_parallel), so census exports are engine-invariant. At
  /// end-of-run the counts are exported into the attached metrics
  /// registry. The census must outlive the system (its probes capture
  /// components by reference — seal before teardown); pass nullptr to
  /// detach future runs (registrations are not undone).
  void attach_census(ActivityCensus* census);

  /// Attach a windowed snapshot streamer (docs/OBSERVABILITY.md
  /// §streaming snapshots): every engine opens a "system" run, registers
  /// the reserved injected/completions counters (aggregated over nodes)
  /// plus a router-backlog gauge, advances the streamer at the common
  /// serial point and treats window boundaries as mandatory landing
  /// cycles for the event engines — the JSONL stream is byte-identical
  /// across all four engines. A StallWatchdog attached to the streamer
  /// abandons the run the window it fires (summary.completed == false).
  /// The streamer must outlive the system; pass nullptr to detach.
  void attach_snapshot(SnapshotStreamer* snapshot) noexcept {
    snapshot_ = snapshot;
  }

  /// Attach host wall-clock attribution: run()/run_parallel() time their
  /// tick / commit / telemetry / sampler phases, and run_parallel
  /// additionally records per-worker busy time. Host time never feeds
  /// back into simulated time — simulated results are identical with or
  /// without a profiler. Pass nullptr to detach.
  void attach_profiler(HostProfiler* profiler) noexcept {
    profiler_ = profiler;
  }

 private:
  /// Engine-independent config validation, run at the top of all four
  /// run_* entry points so no engine accepts a config another rejects
  /// (the equivalence grid depends on uniform accept/reject behaviour).
  /// `engine_name` labels the thrown std::invalid_argument.
  void validate_engine_config(const char* engine_name) const;
  /// Shared end-of-run accounting (node order, both engines).
  SystemRunSummary summarize(Cycle cycles, bool completed) const;
  /// Event-engine jump target after ticking `now`: the minimum of every
  /// node's next-activity oracle and the fabric's next delivery, floored
  /// at now + 1 and clamped to `max_cycles`.
  [[nodiscard]] Cycle next_wake(Cycle now, const Interconnect* fabric,
                                Cycle max_cycles) const;
  /// Credit the span (now, next) the event engine is about to skip to the
  /// census and sampler — before the landing tick, while device busy
  /// thresholds are frozen.
  void credit_skip(Cycle now, Cycle next);
  /// begin_run + per-node/fabric probe registration (no-op when detached).
  void register_probes();
  /// End-of-run gauge writes (serial point; see attach_metrics).
  void finalize_metrics(const SystemRunSummary& summary);

  SimConfig config_;
  std::vector<NodeId> thread_owner_;
  std::vector<CoreId> thread_core_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unique_ptr<Interconnect> fabric_;
  EventSink* sink_ = nullptr;
  MetricsRegistry* registry_ = nullptr;
  CycleSampler* sampler_ = nullptr;
  ActivityCensus* census_ = nullptr;
  HostProfiler* profiler_ = nullptr;
  SnapshotStreamer* snapshot_ = nullptr;
};

}  // namespace mac3d
