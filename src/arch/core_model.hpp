// Simple in-order core (paper Sec. 3): issues memory references from its
// hardware-thread streams and stalls each thread until the reference
// completes. Several threads may share a core (the paper's "temporal
// multithreading" extension); the core round-robins among ready threads,
// so some threads progress while others wait on memory.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/request_router.hpp"
#include "arch/spm.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "trace/record.hpp"

namespace mac3d {

class CoreModel {
 public:
  CoreModel(const SimConfig& config, NodeId node, CoreId core)
      : spm_(config, node, core), node_(node), core_(core) {}

  /// Attach a hardware thread replaying `records` (owned by the caller,
  /// must outlive the core).
  void add_thread(ThreadId tid, const std::vector<MemRecord>* records) {
    threads_.push_back(Thread{tid, records, 0, false, 0, 0});
  }

  /// Issue at most one memory reference this cycle. SPM accesses complete
  /// locally after the SPM latency; main-memory references go to the
  /// router (false return from the router stalls the thread in place).
  void try_issue(Cycle now, RequestRouter& router);

  /// A completion for thread `tid` arrived.
  void on_complete(ThreadId tid, Cycle now);

  [[nodiscard]] bool finished() const noexcept {
    for (const Thread& thread : threads_) {
      if (thread.outstanding || thread.cursor < thread.records->size()) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] std::uint64_t issued() const noexcept { return issued_; }

  /// Activity oracle (docs/PARALLELISM.md §event-driven engine): earliest
  /// cycle > `now` at which this core could issue a reference — the
  /// nearest SPM ready time of a time-blocked thread, or now + 1 when a
  /// thread is ready outright. 0 = no thread can issue until a completion
  /// arrives (covered by the MAC/device oracle: the completion's delivery
  /// cycle is an activity cycle, after which this oracle is re-asked).
  [[nodiscard]] Cycle next_issue_cycle(Cycle now) const noexcept {
    Cycle next = 0;
    for (const Thread& thread : threads_) {
      if (thread.outstanding || thread.cursor >= thread.records->size()) {
        continue;
      }
      const Cycle at = thread.spm_ready_at > now ? thread.spm_ready_at
                                                 : now + 1;
      if (next == 0 || at < next) next = at;
    }
    return next;
  }

  [[nodiscard]] std::uint64_t spm_accesses() const noexcept {
    return spm_.accesses();
  }
  [[nodiscard]] std::uint64_t stall_cycles() const noexcept {
    return stall_cycles_;
  }
  [[nodiscard]] const Spm& spm() const noexcept { return spm_; }
  [[nodiscard]] CoreId id() const noexcept { return core_; }

 private:
  struct Thread {
    ThreadId tid = 0;
    const std::vector<MemRecord>* records = nullptr;
    std::size_t cursor = 0;
    bool outstanding = false;
    Tag next_tag = 0;
    Cycle spm_ready_at = 0;  ///< SPM access in flight until this cycle
  };

  Spm spm_;
  NodeId node_;
  CoreId core_;
  std::vector<Thread> threads_;
  std::size_t turn_ = 0;
  std::uint64_t issued_ = 0;
  std::uint64_t stall_cycles_ = 0;
};

inline void CoreModel::try_issue(Cycle now, RequestRouter& router) {
  if (threads_.empty()) return;
  for (std::size_t scan = 0; scan < threads_.size(); ++scan) {
    Thread& thread = threads_[turn_];
    turn_ = (turn_ + 1) % threads_.size();
    if (thread.outstanding || thread.spm_ready_at > now ||
        thread.cursor >= thread.records->size()) {
      continue;
    }
    const MemRecord& record = (*thread.records)[thread.cursor];
    if (record.op != MemOp::kFence && spm_.contains(record.addr)) {
      thread.spm_ready_at = spm_.access(now, record.op == MemOp::kStore);
      ++thread.cursor;
      return;
    }
    RawRequest request;
    request.addr = record.addr;
    request.op = record.op;
    request.size = record.size;
    request.tid = thread.tid;
    request.tag = thread.next_tag;
    request.core = core_;
    request.node = node_;
    if (!router.route_local(request, now)) {
      ++stall_cycles_;  // queue back-pressure; retry next cycle
      return;
    }
    ++thread.next_tag;
    ++thread.cursor;
    thread.outstanding = true;
    ++issued_;
    return;
  }
  ++stall_cycles_;  // every thread blocked on memory
}

inline void CoreModel::on_complete(ThreadId tid, Cycle now) {
  (void)now;
  for (Thread& thread : threads_) {
    if (thread.tid == tid) {
      thread.outstanding = false;
      return;
    }
  }
}

}  // namespace mac3d
