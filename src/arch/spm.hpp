// Per-core scratchpad memory (paper Sec. 3): directly addressable,
// explicitly managed, no tags/TLB/coherence. Modeled as an address window
// per core with a fixed access latency; accesses inside the window never
// reach the MAC.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/types.hpp"

namespace mac3d {

/// SPM address windows live far above any 3D-stacked memory address
/// (node address ranges stack from 0 upward; 2^48 is unreachable by any
/// realistic node count), so scratchpad and main-memory addresses never
/// collide.
inline constexpr Address kSpmRegionBase = Address{1} << 48;

/// First byte of the SPM window of (`node`, `core`).
[[nodiscard]] inline Address spm_window_base(const SimConfig& config,
                                             NodeId node,
                                             CoreId core) noexcept {
  const std::uint64_t index =
      static_cast<std::uint64_t>(node) * config.cores + core;
  return kSpmRegionBase + index * config.spm_bytes;
}

class Spm {
 public:
  Spm(const SimConfig& config, NodeId node, CoreId core)
      : base_(spm_window_base(config, node, core)),
        size_(config.spm_bytes),
        latency_(config.ns_to_cycles(config.spm_latency_ns)) {}

  [[nodiscard]] bool contains(Address addr) const noexcept {
    return addr >= base_ && addr < base_ + size_;
  }
  [[nodiscard]] Address base() const noexcept { return base_; }
  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] Cycle latency() const noexcept { return latency_; }

  /// Record an access; returns the cycle at which it completes.
  Cycle access(Cycle now, bool write) noexcept {
    ++accesses_;
    writes_ += write ? 1 : 0;
    return now + latency_;
  }

  [[nodiscard]] std::uint64_t accesses() const noexcept { return accesses_; }
  [[nodiscard]] std::uint64_t writes() const noexcept { return writes_; }

 private:
  Address base_;
  std::uint64_t size_;
  Cycle latency_;
  std::uint64_t accesses_ = 0;
  std::uint64_t writes_ = 0;
};

}  // namespace mac3d
