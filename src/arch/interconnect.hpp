// Node-to-node interconnect (paper Sec. 3): fixed-latency message channel
// carrying raw requests to remote nodes and completions back. The paper
// leaves the fabric unspecified ("not within the scope of this paper"); we
// model a constant per-hop latency with FIFO delivery per destination.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "mac/coalescer.hpp"

namespace mac3d {

class Interconnect {
 public:
  Interconnect(const SimConfig& config, std::uint32_t nodes)
      : hop_cycles_(config.remote_hop_cycles),
        request_lanes_(nodes),
        completion_lanes_(nodes) {}

  void send_request(const RawRequest& request, NodeId dest, Cycle now) {
    request_lanes_.at(dest).push_back({now + hop_cycles_, request});
    ++messages_;
  }

  void send_completion(const CompletedAccess& completion, NodeId dest,
                       Cycle now) {
    completion_lanes_.at(dest).push_back({now + hop_cycles_, completion});
    ++messages_;
  }

  /// Pop all requests due at or before `now` destined to `dest` (FIFO).
  std::vector<RawRequest> deliver_requests(NodeId dest, Cycle now) {
    return deliver(request_lanes_.at(dest), now);
  }
  std::vector<CompletedAccess> deliver_completions(NodeId dest, Cycle now) {
    return deliver(completion_lanes_.at(dest), now);
  }

  [[nodiscard]] bool idle() const noexcept {
    for (const auto& lane : request_lanes_) {
      if (!lane.empty()) return false;
    }
    for (const auto& lane : completion_lanes_) {
      if (!lane.empty()) return false;
    }
    return true;
  }

  /// Earliest pending delivery time across all lanes (0 when idle).
  [[nodiscard]] Cycle next_delivery() const noexcept {
    Cycle next = 0;
    auto scan = [&next](const auto& lanes) {
      for (const auto& lane : lanes) {
        if (!lane.empty() && (next == 0 || lane.front().due < next)) {
          next = lane.front().due;
        }
      }
    };
    scan(request_lanes_);
    scan(completion_lanes_);
    return next;
  }

  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
  [[nodiscard]] Cycle hop_cycles() const noexcept { return hop_cycles_; }

 private:
  template <typename T>
  struct Message {
    Cycle due = 0;
    T payload;
  };

  template <typename T>
  static std::vector<T> deliver(std::deque<Message<T>>& lane, Cycle now) {
    std::vector<T> out;
    // Constant hop latency => lanes are ordered by due time.
    while (!lane.empty() && lane.front().due <= now) {
      out.push_back(std::move(lane.front().payload));
      lane.pop_front();
    }
    return out;
  }

  Cycle hop_cycles_;
  std::uint64_t messages_ = 0;
  std::vector<std::deque<Message<RawRequest>>> request_lanes_;
  std::vector<std::deque<Message<CompletedAccess>>> completion_lanes_;
};

}  // namespace mac3d
