// Node-to-node interconnect (paper Sec. 3): fixed-latency message channel
// carrying raw requests to remote nodes and completions back. The paper
// leaves the fabric unspecified ("not within the scope of this paper"); we
// model a constant per-hop latency with FIFO delivery per destination.
//
// The fabric is the only state shared between nodes, so it is the seam the
// parallel engine stages (docs/PARALLELISM.md): in staged mode every send
// lands in a per-source outbox (touched only by that node's shard), and
// commit_staged() merges the outboxes into the delivery lanes in source-
// node order at the barrier — exactly the order the serial engine pushes
// in, so lane contents (and therefore every downstream result) are
// bit-identical. Delivery stays safe during the concurrent phase because
// node `n` only ever pops its own lanes.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/invariants.hpp"
#include "common/config.hpp"
#include "common/types.hpp"
#include "mac/coalescer.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"

namespace mac3d {

class Interconnect {
 public:
  Interconnect(const SimConfig& config, std::uint32_t nodes)
      : hop_cycles_(config.remote_hop_cycles),
        request_lanes_(nodes),
        completion_lanes_(nodes),
        outboxes_(nodes) {}

  /// `src` is the sending node — serial delivery order is node-tick order,
  /// and the staged engine reproduces it by committing outboxes in source
  /// order.
  void send_request(const RawRequest& request, NodeId dest, Cycle now,
                    NodeId src = 0) {
    MAC3D_OBS_ACTIVITY(last_work_, now);
    if (staged_) {
      outboxes_.at(src).requests.push_back({dest, now + hop_cycles_, request});
      return;
    }
    if (consume_drop_fault()) return;
    request_lanes_.at(dest).queue.push_back({now + hop_cycles_, request});
    ++messages_;
    ++sends_;
    MAC3D_OBS_COUNT(link_metric(link_requests_, src, dest));
  }

  void send_completion(const CompletedAccess& completion, NodeId dest,
                       Cycle now, NodeId src = 0) {
    MAC3D_OBS_ACTIVITY(last_work_, now);
    if (staged_) {
      outboxes_.at(src).completions.push_back(
          {dest, now + hop_cycles_, completion});
      return;
    }
    if (consume_drop_fault()) return;
    completion_lanes_.at(dest).queue.push_back(
        {now + hop_cycles_, completion});
    ++messages_;
    ++sends_;
    MAC3D_OBS_COUNT(link_metric(link_completions_, src, dest));
  }

  /// Pop all requests due at or before `now` destined to `dest` (FIFO).
  /// During the parallel phase only node `dest`'s shard may call this.
  std::vector<RawRequest> deliver_requests(NodeId dest, Cycle now) {
    std::vector<RawRequest> out = deliver(request_lanes_.at(dest), now);
    if (!out.empty()) MAC3D_OBS_ACTIVITY(last_work_, now);
    return out;
  }
  std::vector<CompletedAccess> deliver_completions(NodeId dest, Cycle now) {
    std::vector<CompletedAccess> out = deliver(completion_lanes_.at(dest), now);
    if (!out.empty()) MAC3D_OBS_ACTIVITY(last_work_, now);
    return out;
  }

  // ---- Activity oracle (idle-cycle census, docs/OBSERVABILITY.md) --------
  /// Stamped at sends and non-empty deliveries. The fabric is the one
  /// component shards share during the parallel phase, so — unlike the
  /// shard-confined slots — this one is atomic; concurrent writers all
  /// store the same `now`, and the census reads only at serial points.
  [[nodiscard]] bool did_work_this_cycle(Cycle now) const noexcept {
    return last_work_.load(std::memory_order_relaxed) == now;
  }
  /// Earliest pending delivery (0 = drained) — the event-driven engine's
  /// wake-up oracle for the fabric.
  [[nodiscard]] Cycle next_activity_cycle(Cycle now) const noexcept {
    (void)now;
    return next_delivery();
  }

  // ---- Staged (parallel-engine) mode — docs/PARALLELISM.md ---------------
  /// Enter staged mode: sends buffer into per-source outboxes. Requires a
  /// hop latency of at least one cycle — with zero-hop delivery a serial
  /// engine can deliver a message to a later-ticking node within the same
  /// cycle, which no barrier schedule can reproduce.
  void begin_staged() noexcept { staged_ = true; }
  [[nodiscard]] bool staged() const noexcept { return staged_; }
  void end_staged() noexcept { staged_ = false; }

  /// Barrier commit: move every outbox entry into its delivery lane in
  /// source-node order, preserving each outbox's push order (= that node's
  /// serial send order). Runs on one thread at the barrier.
  void commit_staged() {
    for (std::size_t src = 0; src < outboxes_.size(); ++src) {
      Outbox& outbox = outboxes_[src];
      for (auto& message : outbox.requests) {
        if (consume_drop_fault()) continue;
        request_lanes_.at(message.dest).queue.push_back(
            {message.due, std::move(message.payload)});
        ++messages_;
        ++sends_;
        MAC3D_OBS_COUNT(link_metric(link_requests_,
                                    static_cast<NodeId>(src), message.dest));
      }
      outbox.requests.clear();
      for (auto& message : outbox.completions) {
        if (consume_drop_fault()) continue;
        completion_lanes_.at(message.dest).queue.push_back(
            {message.due, std::move(message.payload)});
        ++messages_;
        ++sends_;
        MAC3D_OBS_COUNT(link_metric(link_completions_,
                                    static_cast<NodeId>(src), message.dest));
      }
      outbox.completions.clear();
    }
  }

  [[nodiscard]] bool idle() const noexcept {
    for (const auto& lane : request_lanes_) {
      if (!lane.queue.empty()) return false;
    }
    for (const auto& lane : completion_lanes_) {
      if (!lane.queue.empty()) return false;
    }
    return true;
  }

  /// Earliest pending delivery time across all lanes (0 when idle).
  [[nodiscard]] Cycle next_delivery() const noexcept {
    Cycle next = 0;
    auto scan = [&next](const auto& lanes) {
      for (const auto& lane : lanes) {
        if (!lane.queue.empty() &&
            (next == 0 || lane.queue.front().due < next)) {
          next = lane.queue.front().due;
        }
      }
    };
    scan(request_lanes_);
    scan(completion_lanes_);
    return next;
  }

  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }
  [[nodiscard]] Cycle hop_cycles() const noexcept { return hop_cycles_; }

  /// Pending (sent, not yet delivered) messages destined to `dest` —
  /// sampler probe fodder. Safe during the parallel phase only from node
  /// `dest`'s shard; System samples at serial points.
  [[nodiscard]] std::size_t request_backlog(NodeId dest) const {
    return request_lanes_.at(dest).queue.size();
  }
  [[nodiscard]] std::size_t completion_backlog(NodeId dest) const {
    return completion_lanes_.at(dest).queue.size();
  }

  /// Register per-directed-link counters ("<prefix>.link<S><D>.requests" /
  /// ".completions") for every src != dest pair. Increments happen as a
  /// message enters a delivery lane: at send() in serial mode and at
  /// commit_staged() (a serial point) in staged mode, so totals are
  /// engine-invariant. Pass nullptr to detach; the registry must outlive
  /// the interconnect.
  void attach_metrics(MetricsRegistry* registry,
                      const std::string& prefix = "fabric") {
    link_requests_.clear();
    link_completions_.clear();
    if (registry == nullptr) return;
    const std::size_t nodes = request_lanes_.size();
    link_requests_.assign(nodes * nodes, nullptr);
    link_completions_.assign(nodes * nodes, nullptr);
    for (std::size_t src = 0; src < nodes; ++src) {
      for (std::size_t dest = 0; dest < nodes; ++dest) {
        if (src == dest) continue;
        const std::string link = prefix + ".link" + std::to_string(src) +
                                 std::to_string(dest);
        link_requests_[src * nodes + dest] =
            &registry->counter(link + ".requests");
        link_completions_[src * nodes + dest] =
            &registry->counter(link + ".completions");
      }
    }
  }
  [[nodiscard]] std::uint64_t sends() const noexcept { return sends_; }
  [[nodiscard]] std::uint64_t deliveries() const noexcept {
    std::uint64_t total = 0;
    for (const auto& lane : request_lanes_) total += lane.delivered;
    for (const auto& lane : completion_lanes_) total += lane.delivered;
    return total;
  }

  /// Enable fabric checks (docs/INVARIANTS.md §fabric). Registers an
  /// end-of-run credit audit: sends must balance deliveries and every lane
  /// must have drained. The context must outlive the interconnect.
  void attach_checks(CheckContext* context) {
    checks_ = context;
    if (context == nullptr) return;
    context->on_finalize([this](CheckContext&) { check_drained(); });
  }

  /// Credit conservation (docs/INVARIANTS.md §fabric): a fixed-latency
  /// fabric neither drops nor duplicates, so lifetime sends equal lifetime
  /// deliveries once the lanes drain.
  void check_drained() {
    std::uint64_t queued = 0;
    for (const auto& lane : request_lanes_) queued += lane.queue.size();
    for (const auto& lane : completion_lanes_) queued += lane.queue.size();
    const std::uint64_t delivered = deliveries();
    MAC3D_CHECK(checks_, inv::kFabricCredit,
                sends_ == delivered + queued && queued == 0, 0,
                std::to_string(sends_) + " messages sent, " +
                    std::to_string(delivered) + " delivered, " +
                    std::to_string(queued) + " still in flight");
  }

  /// Deliberate model bug for the invariant test suite: silently drop the
  /// next message handed to the fabric (one-shot), breaching credit
  /// conservation.
  void inject_drop_next_message() noexcept { drop_next_ = true; }

 private:
  template <typename T>
  struct Message {
    Cycle due = 0;
    T payload;
  };

  template <typename T>
  struct StagedMessage {
    NodeId dest = 0;
    Cycle due = 0;
    T payload;
  };

  template <typename T>
  struct Lane {
    std::deque<Message<T>> queue;
    std::uint64_t delivered = 0;  ///< lane-local: safe during the phase
  };

  struct Outbox {
    std::vector<StagedMessage<RawRequest>> requests;
    std::vector<StagedMessage<CompletedAccess>> completions;
  };

  template <typename T>
  static std::vector<T> deliver(Lane<T>& lane, Cycle now) {
    std::vector<T> out;
    // Constant hop latency => lanes are ordered by due time.
    while (!lane.queue.empty() && lane.queue.front().due <= now) {
      out.push_back(std::move(lane.queue.front().payload));
      lane.queue.pop_front();
    }
    lane.delivered += out.size();
    return out;
  }

  /// One-shot drop fault; consumed at the point a message would enter a
  /// lane (send in serial mode, commit in staged mode) so both engines
  /// lose the same message.
  [[nodiscard]] bool consume_drop_fault() noexcept {
    if (!drop_next_) return false;
    drop_next_ = false;
    ++sends_;  // the sender spent the credit; the fabric lost the message
    return true;
  }

  [[nodiscard]] MetricCounter* link_metric(
      const std::vector<MetricCounter*>& links, NodeId src,
      NodeId dest) const noexcept {
    const std::size_t index =
        static_cast<std::size_t>(src) * request_lanes_.size() + dest;
    return index < links.size() ? links[index] : nullptr;
  }

  Cycle hop_cycles_;
  std::uint64_t messages_ = 0;
  std::uint64_t sends_ = 0;
  std::vector<Lane<RawRequest>> request_lanes_;
  std::vector<Lane<CompletedAccess>> completion_lanes_;
  std::vector<Outbox> outboxes_;
  bool staged_ = false;
  bool drop_next_ = false;
  std::atomic<Cycle> last_work_{~Cycle{0}};  ///< census slot (see oracle)
  CheckContext* checks_ = nullptr;
  std::vector<MetricCounter*> link_requests_;
  std::vector<MetricCounter*> link_completions_;
};

}  // namespace mac3d
