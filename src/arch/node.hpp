// One node of the NUMA system (paper Fig. 4): in-order cores with SPMs, a
// request router, a coalescer policy front-end (SimConfig::policy — the
// unified MAC by default), and the directly-attached 3D-stacked memory
// device. Remote traffic flows through the system interconnect.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "arch/core_model.hpp"
#include "arch/interconnect.hpp"
#include "arch/request_router.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mac/coalescer.hpp"
#include "mem/hmc_device.hpp"
#include "sim/memory_path.hpp"

namespace mac3d {

class ActivityCensus;

class Node {
 public:
  /// `thread_owner`: system-wide map ThreadId -> owning node (for response
  /// routing); `thread_core`: ThreadId -> core index on its node.
  Node(const SimConfig& config, NodeId id,
       const std::vector<NodeId>* thread_owner,
       const std::vector<CoreId>* thread_core);

  void add_thread(ThreadId tid, const std::vector<MemRecord>* records);

  /// Advance one cycle. `fabric` may be null for single-node systems.
  void tick(Cycle now, Interconnect* fabric);

  [[nodiscard]] bool finished() const noexcept;
  [[nodiscard]] bool drained() const noexcept;

  // ---- Activity oracle (docs/PARALLELISM.md §event-driven engine) --------
  /// Any of this node's units did useful work at `now`.
  [[nodiscard]] bool did_work_this_cycle(Cycle now) const noexcept;
  /// Earliest cycle > `now` at which any unit of this node could do work
  /// (0 = drained forever barring fabric arrivals, which the System-level
  /// jump covers via Interconnect::next_delivery). Ask only after
  /// tick(now) — the answer reflects post-tick state.
  [[nodiscard]] Cycle next_activity_cycle(Cycle now) const noexcept;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] HmcDevice& device() noexcept { return *device_; }
  [[nodiscard]] const HmcDevice& device() const noexcept { return *device_; }
  /// The policy front-end between router and device (config.policy).
  [[nodiscard]] MemoryPath& memory_path() noexcept { return *path_; }
  [[nodiscard]] const MemoryPath& memory_path() const noexcept {
    return *path_;
  }
  /// The MAC coalescer — only valid under the default kMac policy
  /// (asserts otherwise; prefer memory_path() in policy-generic code).
  [[nodiscard]] MacCoalescer& mac() noexcept {
    MacCoalescer* mac = path_->as_mac();
    assert(mac != nullptr && "node.mac() requires policy=mac");
    return *mac;
  }
  [[nodiscard]] RequestRouter& router() noexcept { return *router_; }
  [[nodiscard]] CoreModel& core(std::size_t i) { return cores_.at(i); }
  [[nodiscard]] const CoreModel& core(std::size_t i) const {
    return cores_.at(i);
  }
  [[nodiscard]] std::size_t core_count() const noexcept {
    return cores_.size();
  }
  [[nodiscard]] std::uint64_t completions_delivered() const noexcept {
    return completions_delivered_;
  }
  [[nodiscard]] const RunningStat& request_latency() const noexcept {
    return request_latency_;
  }

  void collect(StatSet& out, const std::string& prefix) const;

  /// Enable model-invariant checking on this node's device, MAC and router
  /// (docs/INVARIANTS.md). The context must outlive the node; pass nullptr
  /// to detach.
  void attach_checks(CheckContext* context);

  /// Enable request-lifecycle telemetry on this node's router, MAC and
  /// device, plus core_complete stamping when completions are delivered to
  /// local cores (docs/OBSERVABILITY.md). The sink must outlive the node;
  /// pass nullptr to detach.
  void attach_sink(EventSink* sink);

  /// Register this node's metrics under the "node<id>." namespace
  /// (router counters plus delivered completions). The registry must
  /// outlive the node; pass nullptr to detach.
  void attach_metrics(MetricsRegistry* registry);

  /// Register this node's idle-cycle census rows under "node<id>."
  /// (router, mac, arq, builder, flit_table, plus the device's banks /
  /// vault<V> / link<L> units — docs/OBSERVABILITY.md §profiler). Probes
  /// capture this node by reference: seal the census before the node is
  /// destroyed.
  void attach_census(ActivityCensus& census);

 private:
  void dispatch_completion(const CompletedAccess& completion, Cycle now,
                           Interconnect* fabric);

  SimConfig config_;
  NodeId id_;
  const std::vector<NodeId>* thread_owner_;
  const std::vector<CoreId>* thread_core_;
  std::unique_ptr<HmcDevice> device_;
  std::unique_ptr<MemoryPath> path_;
  std::unique_ptr<RequestRouter> router_;
  std::vector<CoreModel> cores_;
  std::vector<RawRequest> pending_remote_;  ///< retry buffer (queue full)
  std::uint64_t completions_delivered_ = 0;
  RunningStat request_latency_;
  EventSink* sink_ = nullptr;
  MetricCounter* m_completions_ = nullptr;
};

}  // namespace mac3d
