#include "arch/system.hpp"

#include <stdexcept>

namespace mac3d {

System::System(const SimConfig& config) : config_(config) {
  config_.validate();
  fabric_ = std::make_unique<Interconnect>(config_, config_.nodes);
  nodes_.reserve(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    nodes_.push_back(std::make_unique<Node>(config_, static_cast<NodeId>(n),
                                            &thread_owner_, &thread_core_));
  }
}

void System::attach_checks(CheckContext* context) {
  for (const auto& node : nodes_) node->attach_checks(context);
}

void System::attach_trace(const MemoryTrace& trace) {
  const std::uint32_t threads = trace.threads();
  thread_owner_.resize(threads);
  thread_core_.resize(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    const NodeId node = static_cast<NodeId>(t % config_.nodes);
    const CoreId core =
        static_cast<CoreId>((t / config_.nodes) % config_.cores);
    thread_owner_[t] = node;
    thread_core_[t] = core;
    nodes_[node]->add_thread(static_cast<ThreadId>(t),
                             &trace.thread(static_cast<ThreadId>(t)));
  }
}

SystemRunSummary System::run(Cycle max_cycles) {
  SystemRunSummary summary;
  Interconnect* fabric = nodes_.size() > 1 ? fabric_.get() : nullptr;

  Cycle now = 0;
  for (; now < max_cycles; ++now) {
    for (auto& node : nodes_) node->tick(now, fabric);

    bool drained = fabric == nullptr || fabric->idle();
    if (drained) {
      for (const auto& node : nodes_) {
        if (!node->drained()) {
          drained = false;
          break;
        }
      }
    }
    if (drained) {
      summary.completed = true;
      ++now;
      break;
    }
  }

  summary.cycles = now;
  RunningStat latency;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = *nodes_[i];
    node.collect(summary.stats, "node" + std::to_string(i));
    summary.completions += node.completions_delivered();
    for (std::size_t c = 0; c < node.core_count(); ++c) {
      summary.requests += node.core(c).issued();
    }
    latency.merge(node.request_latency());
  }
  summary.avg_latency_cycles = latency.mean();
  summary.stats.set("system.cycles", static_cast<double>(summary.cycles));
  summary.stats.set("system.completed", summary.completed ? 1.0 : 0.0);
  return summary;
}

}  // namespace mac3d
