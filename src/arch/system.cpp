#include "arch/system.hpp"

#include <stdexcept>
#include <string>

#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/snapshot.hpp"
#include "sim/parallel.hpp"

namespace mac3d {

System::System(const SimConfig& config) : config_(config) {
  config_.validate();
  fabric_ = std::make_unique<Interconnect>(config_, config_.nodes);
  nodes_.reserve(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    nodes_.push_back(std::make_unique<Node>(config_, static_cast<NodeId>(n),
                                            &thread_owner_, &thread_core_));
  }
}

void System::attach_checks(CheckContext* context) {
  for (const auto& node : nodes_) node->attach_checks(context);
  fabric_->attach_checks(context);
}

void System::attach_sink(EventSink* sink) {
  sink_ = sink;
  for (const auto& node : nodes_) node->attach_sink(sink);
}

void System::attach_metrics(MetricsRegistry* registry) {
  registry_ = registry;
  for (const auto& node : nodes_) node->attach_metrics(registry);
  fabric_->attach_metrics(registry);
}

void System::attach_census(ActivityCensus* census) {
  census_ = census;
  if (census == nullptr) return;
  for (const auto& node : nodes_) node->attach_census(*census);
  if (nodes_.size() > 1) census->add_component("fabric", *fabric_);
}

void System::register_probes() {
  if (sampler_ != nullptr) {
    sampler_->begin_run("system");
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      Node* node = nodes_[i].get();
      const std::string prefix = "node" + std::to_string(i);
      sampler_->add_probe(prefix + "_local_queue", [node](Cycle) {
        return static_cast<double>(node->router().local_queue().size());
      });
      sampler_->add_probe(prefix + "_remote_queue", [node](Cycle) {
        return static_cast<double>(node->router().remote_queue().size());
      });
      sampler_->add_probe(prefix + "_global_queue", [node](Cycle) {
        return static_cast<double>(node->router().global_queue().size());
      });
    }
    if (nodes_.size() > 1) {
      Interconnect* fabric = fabric_.get();
      for (std::size_t i = 0; i < nodes_.size(); ++i) {
        const NodeId dest = static_cast<NodeId>(i);
        sampler_->add_probe("fabric_req_backlog_n" + std::to_string(i),
                            [fabric, dest](Cycle) {
                              return static_cast<double>(
                                  fabric->request_backlog(dest));
                            });
        sampler_->add_probe("fabric_cmpl_backlog_n" + std::to_string(i),
                            [fabric, dest](Cycle) {
                              return static_cast<double>(
                                  fabric->completion_backlog(dest));
                            });
      }
    }
  }
  if (snapshot_ != nullptr) {
    snapshot_->begin_run("system");
    snapshot_->add_counter(SnapshotStreamer::kInjectedCounter, [this] {
      std::uint64_t total = 0;
      for (const auto& node : nodes_) {
        for (std::size_t c = 0; c < node->core_count(); ++c) {
          total += node->core(c).issued();
        }
      }
      return total;
    });
    snapshot_->add_counter(SnapshotStreamer::kCompletionsCounter, [this] {
      std::uint64_t total = 0;
      for (const auto& node : nodes_) total += node->completions_delivered();
      return total;
    });
    snapshot_->add_gauge("router_backlog", [this] {
      std::size_t total = 0;
      for (const auto& node : nodes_) {
        total += node->router().local_queue().size() +
                 node->router().remote_queue().size() +
                 node->router().global_queue().size();
      }
      return static_cast<double>(total);
    });
    snapshot_->attach_census(census_);
  }
}

void System::finalize_metrics(const SystemRunSummary& summary) {
  if (registry_ == nullptr) return;
  registry_->gauge("system.cycles").set(static_cast<double>(summary.cycles));
  registry_->gauge("system.avg_request_latency_cycles")
      .set(summary.avg_latency_cycles);
  if (census_ != nullptr) census_->export_metrics(*registry_);
  if (snapshot_ != nullptr) snapshot_->export_metrics(*registry_);
}

void System::attach_trace(const MemoryTrace& trace) {
  const std::uint32_t threads = trace.threads();
  thread_owner_.resize(threads);
  thread_core_.resize(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    const NodeId node = static_cast<NodeId>(t % config_.nodes);
    const CoreId core =
        static_cast<CoreId>((t / config_.nodes) % config_.cores);
    thread_owner_[t] = node;
    thread_core_[t] = core;
    nodes_[node]->add_thread(static_cast<ThreadId>(t),
                             &trace.thread(static_cast<ThreadId>(t)));
  }
}

void System::validate_engine_config(const char* engine_name) const {
  if (nodes_.size() > 1 && config_.remote_hop_cycles == 0) {
    // A zero-hop fabric lets a serial engine deliver a message to a
    // later-ticking node within the sending cycle — unreproducible under
    // any barrier schedule, so every engine refuses it uniformly rather
    // than letting the serial engines silently diverge from the staged
    // ones (the equivalence grid relies on identical accept/reject).
    throw std::invalid_argument(std::string("System::") + engine_name +
                                " requires remote_hop_cycles >= 1 (got 0)");
  }
}

SystemRunSummary System::run(Cycle max_cycles) {
  validate_engine_config("run");
  Interconnect* fabric = nodes_.size() > 1 ? fabric_.get() : nullptr;
  register_probes();

  bool completed = false;
  Cycle now = 0;
  try {
    for (; now < max_cycles; ++now) {
      {
        HostProfiler::Scope scope(profiler_, HostPhase::kTick);
        for (auto& node : nodes_) node->tick(now, fabric);
      }
      if (census_ != nullptr) {
        HostProfiler::Scope scope(profiler_, HostPhase::kTelemetry);
        census_->observe(now);
      }
      if (sampler_ != nullptr) {
        HostProfiler::Scope scope(profiler_, HostPhase::kSampler);
        sampler_->advance_to(now);
      }
      if (snapshot_ != nullptr) {
        HostProfiler::Scope scope(profiler_, HostPhase::kSampler);
        snapshot_->advance_to(now);
        // A fired watchdog abandons the run (summary.completed stays
        // false) — the only exit a stalled system has short of
        // max_cycles.
        if (snapshot_->watchdog_fired()) break;
      }

      bool drained = fabric == nullptr || fabric->idle();
      if (drained) {
        for (const auto& node : nodes_) {
          if (!node->drained()) {
            drained = false;
            break;
          }
        }
      }
      if (drained) {
        completed = true;
        ++now;
        break;
      }
    }
  } catch (...) {
    if (sampler_ != nullptr) sampler_->abort_run();
    if (snapshot_ != nullptr) snapshot_->abort_run();
    throw;
  }
  if (sampler_ != nullptr) sampler_->end_run(now);
  if (snapshot_ != nullptr) snapshot_->end_run(now);
  const SystemRunSummary summary = summarize(now, completed);
  finalize_metrics(summary);
  return summary;
}

Cycle System::next_wake(Cycle now, const Interconnect* fabric,
                        Cycle max_cycles) const {
  Cycle next = 0;
  const auto merge = [&next, now](Cycle candidate) {
    if (candidate == 0) return;
    if (candidate <= now) candidate = now + 1;
    if (next == 0 || candidate < next) next = candidate;
  };
  for (const auto& node : nodes_) merge(node->next_activity_cycle(now));
  if (fabric != nullptr) merge(fabric->next_delivery());
  // No advertised activity but not drained either (the caller already
  // checked): fall back to single-stepping rather than stalling.
  if (next == 0) next = now + 1;
  // Snapshot boundaries are mandatory landing cycles: never skip over
  // one, so every engine samples every window at identical state.
  if (snapshot_ != nullptr && snapshot_->next_boundary(now) < next) {
    next = snapshot_->next_boundary(now);
  }
  return next < max_cycles ? next : max_cycles;
}

void System::credit_skip(Cycle now, Cycle next) {
  if (next <= now + 1) return;
  if (census_ != nullptr) {
    HostProfiler::Scope scope(profiler_, HostPhase::kTelemetry);
    census_->skip_to(next);
  }
  if (sampler_ != nullptr) {
    HostProfiler::Scope scope(profiler_, HostPhase::kSampler);
    sampler_->advance_to(next - 1);
  }
}

SystemRunSummary System::run_event(Cycle max_cycles) {
  validate_engine_config("run_event");
  Interconnect* fabric = nodes_.size() > 1 ? fabric_.get() : nullptr;
  register_probes();

  bool completed = false;
  Cycle now = 0;
  std::uint64_t visited = 0;
  try {
    while (now < max_cycles) {
      ++visited;
      {
        HostProfiler::Scope scope(profiler_, HostPhase::kTick);
        for (auto& node : nodes_) node->tick(now, fabric);
      }
      if (census_ != nullptr) {
        HostProfiler::Scope scope(profiler_, HostPhase::kTelemetry);
        census_->observe(now);
      }
      if (sampler_ != nullptr) {
        HostProfiler::Scope scope(profiler_, HostPhase::kSampler);
        sampler_->advance_to(now);
      }
      if (snapshot_ != nullptr) {
        HostProfiler::Scope scope(profiler_, HostPhase::kSampler);
        snapshot_->advance_to(now);
        // A fired watchdog abandons the run (summary.completed stays
        // false) — the only exit a stalled system has short of
        // max_cycles.
        if (snapshot_->watchdog_fired()) break;
      }

      bool drained = fabric == nullptr || fabric->idle();
      if (drained) {
        for (const auto& node : nodes_) {
          if (!node->drained()) {
            drained = false;
            break;
          }
        }
      }
      if (drained) {
        completed = true;
        ++now;
        break;
      }
      const Cycle next = next_wake(now, fabric, max_cycles);
      credit_skip(now, next);
      now = next;
    }
  } catch (...) {
    if (sampler_ != nullptr) sampler_->abort_run();
    if (snapshot_ != nullptr) snapshot_->abort_run();
    throw;
  }
  if (sampler_ != nullptr) sampler_->end_run(now);
  if (snapshot_ != nullptr) snapshot_->end_run(now);
  SystemRunSummary summary = summarize(now, completed);
  summary.visited_cycles = visited;
  finalize_metrics(summary);
  return summary;
}

SystemRunSummary System::run_parallel(std::uint32_t threads,
                                      Cycle max_cycles) {
  validate_engine_config("run_parallel");
  Interconnect* fabric = nodes_.size() > 1 ? fabric_.get() : nullptr;
  ParallelStepper stepper(threads);
  stepper.attach_profiler(profiler_);
  if (profiler_ != nullptr) profiler_->set_worker_count(stepper.thread_count());

  // Per-node telemetry mailboxes: each shard stamps into its own buffer
  // during the concurrent phase; the buffers flush to the user's sink in
  // node order after the barrier — the serial engine's exact stamp stream.
  std::vector<BufferedSink> buffers(sink_ != nullptr ? nodes_.size() : 0);
  if (sink_ != nullptr) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i]->attach_sink(&buffers[i]);
    }
  }
  if (fabric != nullptr) fabric->begin_staged();
  register_probes();

  bool completed = false;
  Cycle now = 0;
  try {
    for (; now < max_cycles; ++now) {
      {
        HostProfiler::Scope scope(profiler_, HostPhase::kTick);
        stepper.for_shards(nodes_.size(), [this, now, fabric](std::size_t i) {
          nodes_[i]->tick(now, fabric);
        });
      }
      {
        // Barrier: cross-shard effects apply in canonical order.
        HostProfiler::Scope scope(profiler_, HostPhase::kCommit);
        if (fabric != nullptr) fabric->commit_staged();
        if (sink_ != nullptr) {
          for (BufferedSink& buffer : buffers) buffer.flush(*sink_);
        }
      }
      if (census_ != nullptr) {
        // Same serial point as run(): post-barrier, pre-sampler — census
        // exports stay byte-identical across engines.
        HostProfiler::Scope scope(profiler_, HostPhase::kTelemetry);
        census_->observe(now);
      }
      if (sampler_ != nullptr) {
        HostProfiler::Scope scope(profiler_, HostPhase::kSampler);
        sampler_->advance_to(now);
      }
      if (snapshot_ != nullptr) {
        HostProfiler::Scope scope(profiler_, HostPhase::kSampler);
        snapshot_->advance_to(now);
        // A fired watchdog abandons the run (summary.completed stays
        // false) — the only exit a stalled system has short of
        // max_cycles.
        if (snapshot_->watchdog_fired()) break;
      }

      bool drained = fabric == nullptr || fabric->idle();
      if (drained) {
        for (const auto& node : nodes_) {
          if (!node->drained()) {
            drained = false;
            break;
          }
        }
      }
      if (drained) {
        completed = true;
        ++now;
        break;
      }
    }
  } catch (...) {
    // Re-point the nodes at the durable sink before the local buffers die
    // (kThrow-mode breaches unwind through here).
    if (sink_ != nullptr) {
      for (const auto& node : nodes_) node->attach_sink(sink_);
    }
    if (fabric != nullptr) fabric->end_staged();
    if (sampler_ != nullptr) sampler_->abort_run();
    if (snapshot_ != nullptr) snapshot_->abort_run();
    throw;
  }
  if (sink_ != nullptr) {
    for (const auto& node : nodes_) node->attach_sink(sink_);
  }
  if (fabric != nullptr) fabric->end_staged();
  if (sampler_ != nullptr) sampler_->end_run(now);
  if (snapshot_ != nullptr) snapshot_->end_run(now);
  const SystemRunSummary summary = summarize(now, completed);
  finalize_metrics(summary);
  return summary;
}

SystemRunSummary System::run_event_parallel(std::uint32_t threads,
                                            Cycle max_cycles) {
  validate_engine_config("run_event_parallel");
  Interconnect* fabric = nodes_.size() > 1 ? fabric_.get() : nullptr;
  ParallelStepper stepper(threads);
  stepper.attach_profiler(profiler_);
  if (profiler_ != nullptr) profiler_->set_worker_count(stepper.thread_count());

  std::vector<BufferedSink> buffers(sink_ != nullptr ? nodes_.size() : 0);
  if (sink_ != nullptr) {
    for (std::size_t i = 0; i < nodes_.size(); ++i) {
      nodes_[i]->attach_sink(&buffers[i]);
    }
  }
  if (fabric != nullptr) fabric->begin_staged();
  register_probes();

  bool completed = false;
  Cycle now = 0;
  std::uint64_t visited = 0;
  try {
    while (now < max_cycles) {
      ++visited;
      {
        HostProfiler::Scope scope(profiler_, HostPhase::kTick);
        stepper.for_shards(nodes_.size(), [this, now, fabric](std::size_t i) {
          nodes_[i]->tick(now, fabric);
        });
      }
      {
        HostProfiler::Scope scope(profiler_, HostPhase::kCommit);
        if (fabric != nullptr) fabric->commit_staged();
        if (sink_ != nullptr) {
          for (BufferedSink& buffer : buffers) buffer.flush(*sink_);
        }
      }
      if (census_ != nullptr) {
        // Same serial point as every other engine: post-barrier.
        HostProfiler::Scope scope(profiler_, HostPhase::kTelemetry);
        census_->observe(now);
      }
      if (sampler_ != nullptr) {
        HostProfiler::Scope scope(profiler_, HostPhase::kSampler);
        sampler_->advance_to(now);
      }
      if (snapshot_ != nullptr) {
        HostProfiler::Scope scope(profiler_, HostPhase::kSampler);
        snapshot_->advance_to(now);
        // A fired watchdog abandons the run (summary.completed stays
        // false) — the only exit a stalled system has short of
        // max_cycles.
        if (snapshot_->watchdog_fired()) break;
      }

      bool drained = fabric == nullptr || fabric->idle();
      if (drained) {
        for (const auto& node : nodes_) {
          if (!node->drained()) {
            drained = false;
            break;
          }
        }
      }
      if (drained) {
        completed = true;
        ++now;
        break;
      }
      // Post-commit serial point: the staged fabric's lanes are up to
      // date, so the jump target sees the same state the serial engine
      // would.
      const Cycle next = next_wake(now, fabric, max_cycles);
      credit_skip(now, next);
      now = next;
    }
  } catch (...) {
    if (sink_ != nullptr) {
      for (const auto& node : nodes_) node->attach_sink(sink_);
    }
    if (fabric != nullptr) fabric->end_staged();
    if (sampler_ != nullptr) sampler_->abort_run();
    if (snapshot_ != nullptr) snapshot_->abort_run();
    throw;
  }
  if (sink_ != nullptr) {
    for (const auto& node : nodes_) node->attach_sink(sink_);
  }
  if (fabric != nullptr) fabric->end_staged();
  if (sampler_ != nullptr) sampler_->end_run(now);
  if (snapshot_ != nullptr) snapshot_->end_run(now);
  SystemRunSummary summary = summarize(now, completed);
  summary.visited_cycles = visited;
  finalize_metrics(summary);
  return summary;
}

SystemRunSummary System::summarize(Cycle cycles, bool completed) const {
  SystemRunSummary summary;
  summary.cycles = cycles;
  summary.completed = completed;
  summary.visited_cycles = cycles;
  RunningStat latency;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = *nodes_[i];
    node.collect(summary.stats, "node" + std::to_string(i));
    summary.completions += node.completions_delivered();
    for (std::size_t c = 0; c < node.core_count(); ++c) {
      summary.requests += node.core(c).issued();
    }
    latency.merge(node.request_latency());
  }
  summary.avg_latency_cycles = latency.mean();
  summary.stats.set("system.cycles", static_cast<double>(summary.cycles));
  summary.stats.set("system.completed", summary.completed ? 1.0 : 0.0);
  return summary;
}

}  // namespace mac3d
