// CycleSampler: a periodic probe registry. Drivers register named probes
// (ARQ occupancy, queue depths, bank busy fraction, link utilization) at
// the start of a run; the sampler evaluates them once per period boundary
// and accumulates a CSV time series, one row per elapsed window:
// rows == ceil(makespan / period).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace mac3d {

class CycleSampler {
 public:
  /// Probes receive the sampled boundary cycle (so time-dependent gauges
  /// like "is this bank busy at cycle c" can be evaluated exactly).
  using Probe = std::function<double(Cycle)>;

  explicit CycleSampler(Cycle period) : period_(period == 0 ? 1 : period) {}

  /// Open a sampling window for one path run. Clears the probe registry —
  /// probes capture references to path/device objects, so they must not
  /// outlive the run they were registered for.
  void begin_run(std::string path_name);

  /// Register a probe. The first run fixes the column set; later runs must
  /// register the same columns (drivers register a uniform set per path).
  void add_probe(std::string name, Probe probe);

  /// Evaluate all window boundaries <= now (call once per driver loop
  /// iteration; boundaries are sampled lazily, at most once each).
  void advance_to(Cycle now);

  /// Flush the windows the run's tail spans (the last row is sampled at
  /// `makespan` itself) and drop the probes.
  void end_run(Cycle makespan);

  /// Drop the probes without flushing (exception unwind path: the probed
  /// objects are about to die).
  void abort_run() noexcept;

  [[nodiscard]] Cycle period() const noexcept { return period_; }
  [[nodiscard]] const std::vector<std::string>& columns() const noexcept {
    return columns_;
  }
  [[nodiscard]] std::size_t row_count() const noexcept { return rows_.size(); }
  /// Rows belonging to one path's run.
  [[nodiscard]] std::size_t rows_for(std::string_view path) const noexcept;

  /// Render "path,cycle,<columns...>" CSV (header + one line per row).
  [[nodiscard]] std::string to_csv() const;
  bool write_csv(const std::string& file) const;

 private:
  void sample_boundary(Cycle boundary);

  Cycle period_;
  Cycle next_boundary_ = 0;
  bool running_ = false;
  std::string run_name_;
  std::vector<std::pair<std::string, Probe>> probes_;
  std::vector<std::string> columns_;

  struct Row {
    std::string path;
    Cycle cycle = 0;
    std::vector<double> values;
  };
  std::vector<Row> rows_;
};

}  // namespace mac3d
