#include "obs/snapshot.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>

#include "obs/profiler.hpp"
#include "obs/registry.hpp"

namespace mac3d {

namespace {

/// Minimal JSON string escape — labels are path/engine names, but keep
/// the document well-formed for any input.
std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Shortest round-trip-ish float rendering, matching the sampler's CSV.
std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

}  // namespace

void StallWatchdog::observe_window(Cycle boundary,
                                   std::uint64_t completions_delta,
                                   std::uint64_t in_flight) {
  ++windows_observed_;
  if (fired_) return;
  if (completions_delta == 0 && in_flight > 0) {
    if (++stalled_windows_ >= threshold_) {
      fired_ = true;
      fired_at_ = boundary;
    }
  } else {
    stalled_windows_ = 0;
  }
}

std::string StallWatchdog::to_json() const {
  std::string out = "{\"fired\":";
  out += fired_ ? "true" : "false";
  if (fired_) {
    out += ",\"fired_at_cycle\":" + std::to_string(fired_at_);
  }
  out += ",\"stalled_windows\":" + std::to_string(stalled_windows_);
  out += ",\"threshold_windows\":" + std::to_string(threshold_);
  out += ",\"windows_observed\":" + std::to_string(windows_observed_);
  out += "}";
  return out;
}

void SnapshotStreamer::begin_run(std::string label) {
  if (!header_written_) {
    out_ += "{\"schema\":\"mac3d-snapshot/1\",\"period\":" +
            std::to_string(period_) + "}\n";
    header_written_ = true;
  }
  run_label_ = std::move(label);
  out_ += "{\"run\":\"" + escape(run_label_) + "\"}\n";
  counters_.clear();
  gauges_.clear();
  census_ = nullptr;
  census_last_.clear();
  injected_total_ = 0;
  completions_total_ = 0;
  run_windows_ = 0;
  next_boundary_ = period_;
  running_ = true;
}

void SnapshotStreamer::add_counter(std::string name, CounterProbe probe) {
  Counter entry{std::move(name), std::move(probe), 0};
  auto pos = std::lower_bound(
      counters_.begin(), counters_.end(), entry,
      [](const Counter& a, const Counter& b) { return a.name < b.name; });
  counters_.insert(pos, std::move(entry));
}

void SnapshotStreamer::add_gauge(std::string name, GaugeProbe probe) {
  Gauge entry{std::move(name), std::move(probe)};
  auto pos = std::lower_bound(
      gauges_.begin(), gauges_.end(), entry,
      [](const Gauge& a, const Gauge& b) { return a.name < b.name; });
  gauges_.insert(pos, std::move(entry));
}

void SnapshotStreamer::advance_to(Cycle now) {
  if (!running_) return;
  while (next_boundary_ <= now) {
    sample_boundary(next_boundary_);
    next_boundary_ += period_;
  }
}

void SnapshotStreamer::end_run(Cycle makespan) {
  if (!running_) return;
  // The tail: every window the run's span touches gets a row, the last
  // one sampled at the makespan itself (mirrors CycleSampler::end_run).
  while (next_boundary_ - period_ < makespan) {
    sample_boundary(std::min(next_boundary_, makespan));
    next_boundary_ += period_;
  }
  const std::uint64_t in_flight =
      injected_total_ > completions_total_
          ? injected_total_ - completions_total_
          : 0;
  out_ += "{\"end\":\"" + escape(run_label_) +
          "\",\"cycle\":" + std::to_string(makespan) +
          ",\"windows\":" + std::to_string(run_windows_) +
          ",\"injected\":" + std::to_string(injected_total_) +
          ",\"completions\":" + std::to_string(completions_total_) +
          ",\"in_flight_at_end\":" + std::to_string(in_flight) + "}\n";
  abort_run();
}

void SnapshotStreamer::abort_run() noexcept {
  counters_.clear();
  gauges_.clear();
  census_ = nullptr;
  census_last_.clear();
  running_ = false;
}

void SnapshotStreamer::sample_boundary(Cycle boundary) {
  std::string line = "{\"cycle\":" + std::to_string(boundary);

  std::uint64_t completions_delta = 0;
  std::string counters_json;
  for (Counter& counter : counters_) {
    const std::uint64_t value = counter.probe();
    const std::uint64_t delta =
        value > counter.last ? value - counter.last : 0;
    counter.last = value;
    if (counter.name == kInjectedCounter) injected_total_ = value;
    if (counter.name == kCompletionsCounter) {
      completions_total_ = value;
      completions_delta = delta;
    }
    if (delta == 0) continue;  // delta encoding: quiet counters are omitted
    if (!counters_json.empty()) counters_json += ",";
    counters_json +=
        "\"" + escape(counter.name) + "\":" + std::to_string(delta);
  }
  if (!counters_json.empty()) {
    line += ",\"counters\":{" + counters_json + "}";
  }

  const std::uint64_t in_flight =
      injected_total_ > completions_total_
          ? injected_total_ - completions_total_
          : 0;
  line += ",\"in_flight\":" + std::to_string(in_flight);

  if (!gauges_.empty()) {
    line += ",\"gauges\":{";
    bool first = true;
    for (const Gauge& gauge : gauges_) {
      if (!first) line += ",";
      first = false;
      line += "\"" + escape(gauge.name) +
              "\":" + format_double(gauge.probe());
    }
    line += "}";
  }

  if (census_ != nullptr) {
    const auto& rows = census_->rows();
    if (census_last_.size() < rows.size()) {
      census_last_.resize(rows.size(), 0);
    }
    std::string census_json;
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const std::uint64_t active = rows[i].active_cycles;
      const std::uint64_t delta =
          active > census_last_[i] ? active - census_last_[i] : 0;
      census_last_[i] = active;
      if (delta == 0) continue;
      if (!census_json.empty()) census_json += ",";
      census_json +=
          "\"" + escape(rows[i].name) + "\":" + std::to_string(delta);
    }
    if (!census_json.empty()) {
      line += ",\"census\":{" + census_json + "}";
    }
  }

  line += "}\n";
  out_ += line;
  ++windows_;
  ++run_windows_;

  if (watchdog_ != nullptr) {
    const bool was_fired = watchdog_->fired();
    watchdog_->observe_window(boundary, completions_delta, in_flight);
    if (!was_fired && watchdog_->fired()) {
      out_ += "{\"watchdog\":\"fired\",\"cycle\":" + std::to_string(boundary) +
              ",\"stalled_windows\":" +
              std::to_string(watchdog_->stalled_windows()) +
              ",\"threshold_windows\":" +
              std::to_string(watchdog_->threshold()) + "}\n";
    }
  }
}

void SnapshotStreamer::export_metrics(MetricsRegistry& registry) const {
  registry.gauge("window.count").set(static_cast<double>(windows_));
  registry.gauge("window.period_cycles").set(static_cast<double>(period_));
  if (watchdog_ != nullptr) {
    registry.gauge("watchdog.fired").set(watchdog_->fired() ? 1.0 : 0.0);
    registry.gauge("watchdog.stalled_windows")
        .set(static_cast<double>(watchdog_->stalled_windows()));
    registry.gauge("watchdog.threshold_windows")
        .set(static_cast<double>(watchdog_->threshold()));
    registry.gauge("watchdog.windows_observed")
        .set(static_cast<double>(watchdog_->windows_observed()));
  }
}

bool SnapshotStreamer::write(const std::string& file) const {
  std::ofstream out(file, std::ios::binary);
  if (!out) return false;
  out << out_;
  return static_cast<bool>(out);
}

}  // namespace mac3d
