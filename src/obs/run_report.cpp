#include "obs/run_report.hpp"

#include <algorithm>
#include <fstream>

#include "common/json.hpp"
#include "obs/registry.hpp"

namespace mac3d {

RunReport::RunReport() { set_string("schema", kSchema); }

void RunReport::set_string(const std::string& key, std::string_view value) {
  set_raw(key, json_quote(value));
}

void RunReport::set_number(const std::string& key, double value) {
  set_raw(key, json_number(value));
}

void RunReport::set_bool(const std::string& key, bool value) {
  set_raw(key, value ? "true" : "false");
}

void RunReport::set_raw(const std::string& key, std::string json) {
  for (auto& [name, value] : fields_) {
    if (name == key) {
      value = std::move(json);
      return;
    }
  }
  fields_.emplace_back(key, std::move(json));
}

void RunReport::set_config(const SimConfig& config) {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, token] : config.to_kv()) {
    if (!first) out += ',';
    first = false;
    out += json_quote(key);
    out += ':';
    out += token;
  }
  out += '}';
  config_json_ = std::move(out);
}

void RunReport::set_metrics(const MetricsRegistry& registry) {
  metrics_json_ = registry.to_json();
}

RunReport::PathEntry& RunReport::path_entry(const std::string& name) {
  for (auto& entry : paths_) {
    if (entry.name == name) return entry;
  }
  paths_.emplace_back();
  paths_.back().name = name;
  return paths_.back();
}

void RunReport::set_path_stats(const std::string& path, const StatSet& stats) {
  path_entry(path).stats_json = stats.to_json();
}

void RunReport::add_path_stage(const std::string& path, std::string_view stage,
                               const Histogram& hist) {
  path_entry(path).stages.emplace_back(std::string(stage),
                                       histogram_json(hist));
}

void RunReport::set_path_request_latency(const std::string& path,
                                         const Histogram& hist) {
  path_entry(path).request_latency_json = histogram_json(hist);
}

std::string RunReport::histogram_json(const Histogram& hist) {
  std::string out = "{\"count\":" + json_number(hist.count());
  out += ",\"min\":" + json_number(hist.min_value());
  out += ",\"max\":" + json_number(hist.max_value());
  out += ",\"p50\":" + json_number(hist.quantile(0.50));
  out += ",\"p90\":" + json_number(hist.quantile(0.90));
  out += ",\"p99\":" + json_number(hist.quantile(0.99));
  out += ",\"buckets\":[";
  const auto& buckets = hist.buckets();
  std::size_t used = buckets.size();
  while (used > 0 && buckets[used - 1] == 0) --used;
  for (std::size_t i = 0; i < used; ++i) {
    if (i != 0) out += ',';
    out += json_number(buckets[i]);
  }
  out += "]}";
  return out;
}

std::string RunReport::to_json() const {
  std::string out = "{";
  bool first = true;
  for (const auto& [key, json] : fields_) {
    if (!first) out += ',';
    first = false;
    out += "\n  " + json_quote(key) + ": " + json;
  }
  if (!config_json_.empty()) {
    if (!first) out += ',';
    first = false;
    out += "\n  \"config\": " + config_json_;
  }
  if (!metrics_json_.empty()) {
    if (!first) out += ',';
    first = false;
    out += "\n  \"metrics\": " + metrics_json_;
  }
  if (!latency_json_.empty()) {
    if (!first) out += ',';
    first = false;
    out += "\n  \"latency\": " + latency_json_;
  }
  if (!host_json_.empty()) {
    if (!first) out += ',';
    first = false;
    out += "\n  \"host\": " + host_json_;
  }
  if (!paths_.empty()) {
    if (!first) out += ',';
    first = false;
    out += "\n  \"paths\": {";
    std::vector<const PathEntry*> sorted;
    sorted.reserve(paths_.size());
    for (const auto& entry : paths_) sorted.push_back(&entry);
    std::sort(sorted.begin(), sorted.end(),
              [](const PathEntry* a, const PathEntry* b) {
                return a->name < b->name;
              });
    bool first_path = true;
    for (const PathEntry* entry : sorted) {
      if (!first_path) out += ',';
      first_path = false;
      out += "\n    " + json_quote(entry->name) + ": {";
      bool first_section = true;
      if (!entry->stats_json.empty()) {
        out += "\n      \"stats\": " + entry->stats_json;
        first_section = false;
      }
      if (!entry->request_latency_json.empty()) {
        if (!first_section) out += ',';
        first_section = false;
        out += "\n      \"request_latency\": " + entry->request_latency_json;
      }
      if (!entry->stages.empty()) {
        if (!first_section) out += ',';
        first_section = false;
        auto stages = entry->stages;
        std::sort(stages.begin(), stages.end());
        out += "\n      \"stages\": {";
        bool first_stage = true;
        for (const auto& [stage, json] : stages) {
          if (!first_stage) out += ',';
          first_stage = false;
          out += "\n        " + json_quote(stage) + ": " + json;
        }
        out += "\n      }";
      }
      out += "\n    }";
    }
    out += "\n  }";
  }
  out += "\n}\n";
  return out;
}

bool RunReport::write(const std::string& file) const {
  std::ofstream out(file, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return false;
  out << to_json();
  return out.good();
}

}  // namespace mac3d
