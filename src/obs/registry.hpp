// MetricsRegistry: the hierarchical metrics backbone of the multi-node
// observability stack (docs/OBSERVABILITY.md §multi-node).
//
// Components register counters / gauges / histograms under dotted
// namespaces ("node3.router.remote_in", "fabric.link01.flits") at attach
// time; the hot path then updates through stable references with relaxed
// atomics — one null-pointer test plus one relaxed fetch_add per site, and
// nothing at all under -DMAC3D_OBS=OFF (the MAC3D_OBS_COUNT* macros).
//
// Determinism contract (docs/PARALLELISM.md): metric *updates* are
// commutative (counter adds, histogram bucket adds, min/max folds), so the
// exported values are identical whatever order shards ran in. Gauges are
// last-write-wins and must therefore only be set at serial points (the
// per-cycle barrier or end-of-run); System honors this. Export renders in
// sorted-name order, so a serial run and a run_parallel run of the same
// model produce byte-identical JSON — test_parallel_equivalence locks
// this in.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/stats.hpp"

namespace mac3d {

/// Monotonic event counter. add() is safe from any shard thread (relaxed
/// atomic; counts are commutative). Reads are intended for end-of-run
/// export, not cross-thread synchronization.
class MetricCounter {
 public:
  void add(std::uint64_t delta = 1) noexcept {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  /// Merge-from-shard: fold another counter's total in.
  void merge(const MetricCounter& other) noexcept { add(other.get()); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Point-in-time gauge (queue occupancy, busy fraction). Last write wins,
/// so writers must serialize: set it only at serial points (a barrier or
/// end-of-run), never from inside a concurrent shard phase.
class MetricGauge {
 public:
  void set(double value) noexcept {
    value_.store(value, std::memory_order_relaxed);
  }
  [[nodiscard]] double get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// Hierarchical metric registry. Registration (counter()/gauge()/
/// histogram()) happens single-threaded at attach time and returns
/// references that stay valid for the registry's lifetime (deque-backed);
/// the hot path only touches the returned objects. Namespaces are dotted
/// metric names; the registry itself stays flat and sorts on export.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-register under `name`. Re-registering the same name returns
  /// the same object (so re-attaching components accumulates, matching
  /// CheckContext semantics).
  MetricCounter& counter(const std::string& name);
  MetricGauge& gauge(const std::string& name);
  /// Histograms are NOT thread-safe: confine each one to a single shard
  /// (per-node namespaces do this naturally) or update at serial points.
  Histogram& histogram(const std::string& name, std::size_t buckets = 32);

  [[nodiscard]] std::size_t size() const noexcept {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Fold a shard registry in (counters add, histograms merge, gauges
  /// last-write-wins in call order). Call in canonical shard order from a
  /// serial point to preserve the deterministic-parallel commit order for
  /// the order-sensitive gauge values; counter/histogram totals are
  /// order-free either way.
  void merge(const MetricsRegistry& shard);

  /// Flatten every metric into `out` under `prefix` ("metrics" by
  /// convention): counters and gauges as scalars, histograms as
  /// .count/.mean-style derived scalars.
  void collect(StatSet& out, const std::string& prefix) const;

  /// Render as one sorted JSON object: counters/gauges as numbers,
  /// histograms via RunReport::histogram_json-compatible objects.
  /// Deterministic: byte-identical across runs with equal metric values.
  [[nodiscard]] std::string to_json() const;

 private:
  // deque => stable addresses across registration; map => sorted export.
  std::deque<MetricCounter> counters_;
  std::deque<MetricGauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, MetricCounter*> counter_names_;
  std::map<std::string, MetricGauge*> gauge_names_;
  std::map<std::string, Histogram*> histogram_names_;
};

}  // namespace mac3d
