// report-diff: the perf-regression half of the observability stack.
//
// Parses two run-report JSON files (schemas mac3d-run-report/1 and /2),
// flattens every numeric leaf to a dotted path ("paths.mac.stats.bw",
// "metrics.node3.router.remote_in"), and compares them metric-by-metric
// against a relative tolerance. Non-numeric leaves (schema string, config
// tokens) participate as exact-match strings. `wall_seconds` is ignored by
// default — it is the one field two identical runs legitimately disagree
// on. Backs `mac3d report-diff` and bench --baseline (bench_common.hpp).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mac3d {

/// Minimal recursive-descent JSON reader for run reports: objects, arrays,
/// strings (with escapes), numbers, bools, null. No DOM — parse_report
/// flattens directly into path -> leaf maps.
struct FlatReport {
  std::string schema;
  std::map<std::string, double> numbers;  ///< dotted path -> numeric leaf
  std::map<std::string, std::string> strings;
};

/// Parse `json` into a FlatReport. Returns false (with a one-line message
/// in `error`) on malformed JSON or an unrecognized schema; accepts
/// mac3d-run-report/1 and /2 and reports missing "schema" as an error.
bool parse_report(const std::string& json, FlatReport& out,
                  std::string& error);

/// Read + parse a report file (false on IO or parse failure).
bool load_report(const std::string& file, FlatReport& out, std::string& error);

/// One compared metric. `relative` is |new-old| / max(|old|, |new|), or 0
/// when both are 0; infinite when a side is missing.
struct MetricDelta {
  std::string path;
  double old_value = 0.0;
  double new_value = 0.0;
  double relative = 0.0;
  bool only_old = false;   ///< metric disappeared
  bool only_new = false;   ///< metric appeared
  bool out_of_tolerance = false;
};

struct DiffOptions {
  /// Relative tolerance in percent: |delta| <= tolerance_pct% passes.
  double tolerance_pct = 0.0;
  /// Metrics appearing on only one side fail the diff when true.
  bool fail_on_missing = true;
  /// Dotted paths excluded from comparison (exact match).
  std::vector<std::string> ignore = {"wall_seconds"};
};

struct DiffResult {
  std::vector<MetricDelta> deltas;       ///< every differing/missing metric
  std::size_t compared = 0;              ///< numeric metrics on both sides
  std::size_t out_of_tolerance = 0;
  std::vector<std::string> string_mismatches;  ///< non-numeric leaf diffs
  [[nodiscard]] bool ok() const noexcept {
    return out_of_tolerance == 0 && string_mismatches.empty();
  }
};

/// Compare two flattened reports. String leaves are compared exactly but
/// never gate ok() unless they differ (schema difference /1 vs /2 alone is
/// allowed: the /2-only "metrics" leaves then count as only_new, which
/// fail only under fail_on_missing).
DiffResult diff_reports(const FlatReport& old_report,
                        const FlatReport& new_report,
                        const DiffOptions& options);

/// Render the diff as a human table (empty string when nothing differs).
std::string render_diff(const DiffResult& result, const DiffOptions& options);

/// Full CLI entry: load both files, diff, print table to stdout. Exit
/// codes: 0 in-tolerance, 1 out-of-tolerance, 2 usage/IO/parse error.
int run_report_diff(const std::string& old_file, const std::string& new_file,
                    const DiffOptions& options);

}  // namespace mac3d
