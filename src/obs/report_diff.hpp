// report-diff: the perf-regression half of the observability stack.
//
// Parses two run-report JSON files (schemas mac3d-run-report/1 through
// /4), flattens every numeric leaf to a dotted path
// ("paths.mac.stats.bw", "metrics.node3.router.remote_in"), and compares
// them metric-by-metric against a relative tolerance. Non-numeric leaves
// (schema string, config tokens) participate as exact-match strings.
// `wall_seconds` and the /3 `host` section (wall-clock attribution) are
// ignored by construction — they are the only fields two identical runs
// legitimately disagree on. The CLI entry (run_report_diff) fails loudly
// with exit 2 — never a silent pass — when the two reports carry
// different schema versions or when either contains an unknown top-level
// section. Backs `mac3d report-diff` and bench --baseline
// (bench_common.hpp).
#pragma once

#include <map>
#include <string>
#include <vector>

namespace mac3d {

/// Minimal recursive-descent JSON reader for run reports: objects, arrays,
/// strings (with escapes), numbers, bools, null. No DOM — parse_report
/// flattens directly into path -> leaf maps.
struct FlatReport {
  std::string schema;
  std::map<std::string, double> numbers;  ///< dotted path -> numeric leaf
  std::map<std::string, std::string> strings;
  /// Top-level object-valued keys in document order ("config", "paths",
  /// ...) — the section inventory run_report_diff validates.
  std::vector<std::string> sections;
};

/// Parse `json` into a FlatReport. Returns false (with a one-line message
/// in `error`) on malformed JSON or an unrecognized schema; accepts
/// mac3d-run-report/1 through /4 and reports missing "schema" as an
/// error.
bool parse_report(const std::string& json, FlatReport& out,
                  std::string& error);

/// Flatten ANY JSON document (no schema requirement — `out.schema` is
/// whatever "schema" string leaf the document carries, or empty). Same
/// dotted-path leaf maps as parse_report; used by `mac3d analyze` to walk
/// arbitrary report/snapshot-derived structures.
bool flatten_json(const std::string& json, FlatReport& out,
                  std::string& error);

/// Read + parse a report file (false on IO or parse failure).
bool load_report(const std::string& file, FlatReport& out, std::string& error);

/// One compared metric. `relative` is |new-old| / max(|old|, |new|), or 0
/// when both are 0; infinite when a side is missing.
struct MetricDelta {
  std::string path;
  double old_value = 0.0;
  double new_value = 0.0;
  double relative = 0.0;
  bool only_old = false;   ///< metric disappeared
  bool only_new = false;   ///< metric appeared
  bool out_of_tolerance = false;
};

struct DiffOptions {
  /// Relative tolerance in percent: |delta| <= tolerance_pct% passes.
  double tolerance_pct = 0.0;
  /// Metrics appearing on only one side fail the diff when true.
  bool fail_on_missing = true;
  /// Paths excluded from comparison. Three forms per entry:
  ///  - no '*': matches the exact dotted path OR any leaf under it as a
  ///    section prefix ("metrics" skips metrics.* too);
  ///  - with '*': a wildcard glob over the full dotted path, '*' matching
  ///    any run of characters including dots ("metrics.node*.router.*").
  std::vector<std::string> ignore = {"wall_seconds"};
};

struct DiffResult {
  std::vector<MetricDelta> deltas;       ///< every differing/missing metric
  std::size_t compared = 0;              ///< numeric metrics on both sides
  std::size_t out_of_tolerance = 0;
  std::vector<std::string> string_mismatches;  ///< non-numeric leaf diffs
  [[nodiscard]] bool ok() const noexcept {
    return out_of_tolerance == 0 && string_mismatches.empty();
  }
};

/// Compare two flattened reports. String leaves are compared exactly but
/// never gate ok() unless they differ (the "schema" leaf itself is
/// skipped here — bench::Session tolerates an older-schema baseline; the
/// CLI entry below does not). The `host` section is skipped by name:
/// wall-clock attribution never gates a diff.
DiffResult diff_reports(const FlatReport& old_report,
                        const FlatReport& new_report,
                        const DiffOptions& options);

/// Render the diff as a human table (empty string when nothing differs).
std::string render_diff(const DiffResult& result, const DiffOptions& options);

/// Full CLI entry: load both files, validate, diff, print table to
/// stdout. Exit codes: 0 in-tolerance, 1 out-of-tolerance, 2 on
/// usage/IO/parse trouble, mismatched schema versions between the two
/// reports, or an unknown top-level section in either (fail-loud: a
/// half-understood report must never silently pass).
int run_report_diff(const std::string& old_file, const std::string& new_file,
                    const DiffOptions& options);

}  // namespace mac3d
