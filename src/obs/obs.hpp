// Observability core: the request-lifecycle stage taxonomy and the
// EventSink interface components stamp into.
//
// Contract (mirrors src/check/): every instrumented component holds an
// `EventSink* sink_` that is null unless a sink is attached for the run.
// Stamp sites go through MAC3D_OBS_STAMP / MAC3D_OBS_MERGE, which reduce
// to a single null-pointer test when no sink is attached and compile to
// nothing under -DMAC3D_OBS=OFF. See docs/OBSERVABILITY.md.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace mac3d {

/// Pipeline boundaries a raw request crosses between the core issuing it
/// and the core seeing its completion. Enum order is pipeline order: along
/// any concrete path the stages a request visits are strictly increasing
/// (stages may share a cycle, e.g. insert + merge).
enum class Stage : std::uint8_t {
  kCoreIssue = 0,   ///< core presents the request to its memory path
  kRouterEnqueue,   ///< node fabric accepted it (local or remote queue)
  kQueueInsert,     ///< ARQ / raw FIFO / MSHR file accepted it
  kMerge,           ///< coalesced into an existing ARQ/MSHR entry
  kBuilderPick,     ///< ARQ popped the entry into the request builder
  kFlitAlloc,       ///< FLIT-table lookup sized the packet (issue queue)
  kLinkSerialize,   ///< packet started serializing onto an HMC link
  kBankAccess,      ///< DRAM bank access started (ACT+CAS, Sec. 2.2.1)
  kResponseMatch,   ///< response de-coalesced / matched back to the request
  kCoreComplete,    ///< driver/core observed the completion
};

inline constexpr std::size_t kStageCount = 10;

/// Stable global request identity: (tid, tag) is unique system-wide while
/// the request is in flight (thread ids are global — threads never
/// migrate between nodes — and a thread's tag is not reused until its
/// completion returns). The packed form is the key every observability
/// consumer (lifecycle records, cross-node flow ids) indexes by, so a
/// request keeps one identity from core_issue on its origin node through
/// the fabric, the remote MAC, and back.
using RequestGid = std::uint32_t;

[[nodiscard]] constexpr RequestGid request_gid(ThreadId tid,
                                               Tag tag) noexcept {
  // The 16+16 pack is collision-free only while both components are
  // 16-bit; widening either type must widen RequestGid with it.
  static_assert(sizeof(ThreadId) * 8 <= 16 && sizeof(Tag) * 8 <= 16,
                "request_gid packs (tid, tag) into 16-bit lanes");
  return (static_cast<RequestGid>(tid) << 16) | tag;
}

/// Legs of a cross-node fabric traversal (multi-node System runs). A
/// remote request hops origin -> home (request leg) and its completion
/// hops home -> origin (response leg); each leg is observed at both ends
/// so tracers can draw send -> receive flow arrows across node tracks.
enum class Hop : std::uint8_t {
  kRequestSend = 0,  ///< origin node handed the request to the fabric
  kRequestRecv,      ///< home node received it from the fabric
  kResponseSend,     ///< home node handed the completion to the fabric
  kResponseRecv,     ///< origin node received the completion
};

[[nodiscard]] constexpr std::string_view to_string(Hop hop) noexcept {
  switch (hop) {
    case Hop::kRequestSend: return "request_send";
    case Hop::kRequestRecv: return "request_recv";
    case Hop::kResponseSend: return "response_send";
    case Hop::kResponseRecv: return "response_recv";
  }
  return "?";
}

[[nodiscard]] constexpr std::string_view to_string(Stage stage) noexcept {
  switch (stage) {
    case Stage::kCoreIssue: return "core_issue";
    case Stage::kRouterEnqueue: return "router_enqueue";
    case Stage::kQueueInsert: return "queue_insert";
    case Stage::kMerge: return "merge";
    case Stage::kBuilderPick: return "builder_pick";
    case Stage::kFlitAlloc: return "flit_alloc";
    case Stage::kLinkSerialize: return "link_serialize";
    case Stage::kBankAccess: return "bank_access";
    case Stage::kResponseMatch: return "response_match";
    case Stage::kCoreComplete: return "core_complete";
  }
  return "?";
}

/// Receiver for lifecycle stamps. Implementations must tolerate stamps in
/// component-call order: within one cycle a path may stamp kQueueInsert
/// before the driver stamps nothing else — but cycles never run backwards
/// per request.
class EventSink {
 public:
  EventSink() = default;
  EventSink(const EventSink&) = delete;
  EventSink& operator=(const EventSink&) = delete;
  virtual ~EventSink() = default;

  /// A request identified by (tid, tag) crossed `stage` at `cycle`.
  virtual void on_stage(Stage stage, ThreadId tid, Tag tag, Cycle cycle) = 0;

  /// Request (tid, tag) merged into the coalesced entry led by
  /// (leader_tid, leader_tag) at `cycle` (rendered as a flow event).
  virtual void on_merge(ThreadId tid, Tag tag, ThreadId leader_tid,
                        Tag leader_tag, Cycle cycle) {
    (void)tid;
    (void)tag;
    (void)leader_tid;
    (void)leader_tag;
    (void)cycle;
  }

  /// Request (tid, tag) crossed the interconnect: leg `hop` of its
  /// round trip, traveling src -> dest, observed at `cycle` (send legs
  /// stamp at fabric handoff, recv legs at delivery). Not a Stage: a
  /// request's hops interleave with its stages without breaking the
  /// strictly-increasing stage audit.
  virtual void on_hop(Hop hop, ThreadId tid, Tag tag, NodeId src,
                      NodeId dest, Cycle cycle) {
    (void)hop;
    (void)tid;
    (void)tag;
    (void)src;
    (void)dest;
    (void)cycle;
  }
};

/// Per-shard mailbox for the parallel engine (docs/PARALLELISM.md): each
/// shard stamps into its own BufferedSink during the concurrent phase (no
/// cross-thread access), and the engine flushes the buffers to the real
/// sink *after* the barrier, one shard at a time in canonical shard order.
/// Stage/merge interleaving within a shard is preserved verbatim, so
/// downstream consumers (lifecycle tracer, event traces) see exactly the
/// stamp stream the serial engine would have produced.
class BufferedSink final : public EventSink {
 public:
  void on_stage(Stage stage, ThreadId tid, Tag tag, Cycle cycle) override {
    events_.push_back({Event::kStage, stage, Hop{}, tid, tag, 0, 0, cycle});
  }

  void on_merge(ThreadId tid, Tag tag, ThreadId leader_tid, Tag leader_tag,
                Cycle cycle) override {
    events_.push_back({Event::kMerge, Stage::kMerge, Hop{}, tid, tag,
                       leader_tid, leader_tag, cycle});
  }

  void on_hop(Hop hop, ThreadId tid, Tag tag, NodeId src, NodeId dest,
              Cycle cycle) override {
    events_.push_back(
        {Event::kHop, Stage{}, hop, tid, tag, src, dest, cycle});
  }

  /// Replay all buffered events into `downstream` in stamp order, then
  /// clear the buffer. Callers serialize flushes across shards.
  void flush(EventSink& downstream) {
    for (const Event& event : events_) {
      switch (event.kind) {
        case Event::kStage:
          downstream.on_stage(event.stage, event.tid, event.tag, event.cycle);
          break;
        case Event::kMerge:
          downstream.on_merge(event.tid, event.tag,
                              static_cast<ThreadId>(event.a),
                              static_cast<Tag>(event.b), event.cycle);
          break;
        case Event::kHop:
          downstream.on_hop(event.hop, event.tid, event.tag,
                            static_cast<NodeId>(event.a),
                            static_cast<NodeId>(event.b), event.cycle);
          break;
      }
    }
    events_.clear();
  }

  [[nodiscard]] std::size_t buffered() const noexcept {
    return events_.size();
  }

 private:
  struct Event {
    enum Kind : std::uint8_t { kStage, kMerge, kHop };
    Kind kind;
    Stage stage;
    Hop hop;
    ThreadId tid;
    Tag tag;
    std::uint16_t a;  ///< merge: leader tid; hop: src node
    std::uint16_t b;  ///< merge: leader tag; hop: dest node
    Cycle cycle;
  };
  std::vector<Event> events_;
};

}  // namespace mac3d

#if MAC3D_OBS_ENABLED
#define MAC3D_OBS_STAMP(sink, stage, tid, tag, cycle)  \
  do {                                                 \
    if ((sink) != nullptr) {                           \
      (sink)->on_stage((stage), (tid), (tag), (cycle)); \
    }                                                  \
  } while (0)
#define MAC3D_OBS_MERGE(sink, tid, tag, leader_tid, leader_tag, cycle)      \
  do {                                                                      \
    if ((sink) != nullptr) {                                                \
      (sink)->on_merge((tid), (tag), (leader_tid), (leader_tag), (cycle));  \
    }                                                                       \
  } while (0)
#define MAC3D_OBS_HOP(sink, hop, tid, tag, src, dest, cycle)            \
  do {                                                                  \
    if ((sink) != nullptr) {                                            \
      (sink)->on_hop((hop), (tid), (tag), (src), (dest), (cycle));      \
    }                                                                   \
  } while (0)
#define MAC3D_OBS_COUNT(counter)       \
  do {                                 \
    if ((counter) != nullptr) {        \
      (counter)->add();                \
    }                                  \
  } while (0)
#define MAC3D_OBS_COUNT_N(counter, n)  \
  do {                                 \
    if ((counter) != nullptr) {        \
      (counter)->add((n));             \
    }                                  \
  } while (0)
// Activity stamp for the idle-cycle census (src/obs/profiler.hpp): record
// that a component sub-unit did useful work this cycle by storing the
// cycle into its `last_work` slot. One store when ON, nothing when OFF.
#define MAC3D_OBS_ACTIVITY(slot, cycle) \
  do {                                  \
    (slot) = (cycle);                   \
  } while (0)
#else
#define MAC3D_OBS_STAMP(sink, stage, tid, tag, cycle) \
  do {                                                \
  } while (0)
#define MAC3D_OBS_MERGE(sink, tid, tag, leader_tid, leader_tag, cycle) \
  do {                                                                 \
  } while (0)
#define MAC3D_OBS_HOP(sink, hop, tid, tag, src, dest, cycle) \
  do {                                                       \
  } while (0)
#define MAC3D_OBS_COUNT(counter) \
  do {                           \
  } while (0)
#define MAC3D_OBS_COUNT_N(counter, n) \
  do {                                \
  } while (0)
#define MAC3D_OBS_ACTIVITY(slot, cycle) \
  do {                                  \
  } while (0)
#endif
