// mac3d analyze: post-run bottleneck diagnosis over a run report plus its
// windowed snapshot stream (docs/OBSERVABILITY.md §analyze).
//
// Ingests the `mac3d-snapshot/1` JSONL emitted by --snapshot-out together
// with the `--report` JSON of the same run and derives what neither
// artifact shows alone: per-window bandwidth efficiency, queue dwell via
// Little's law (W = L / λ, cross-checked against the report's measured
// latency), two conservation audits (stream-internal: window deltas must
// sum to the footer totals; cross-artifact: footer totals must match the
// report's own completion counts — and injection counts where the report
// carries a fence-inclusive one), and a per-window critical-stage
// ranking from the census activity deltas. The verdict is printed human-
// readable and optionally mirrored to a machine JSON twin (schema
// `mac3d-analysis/1`). Exit contract mirrors report-diff: 0 clean, 1 when
// the watchdog fired or a conservation audit fails, 2 on IO/parse/usage
// trouble. Little's-law mismatch is reported but never gates the exit —
// it is a model sanity signal, not an invariant.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "obs/report_diff.hpp"

namespace mac3d {

/// One window line of a snapshot stream, decoded. Counter/census values
/// are the per-window deltas exactly as emitted (quiet entries absent).
struct SnapshotWindowRow {
  Cycle cycle = 0;
  std::map<std::string, std::uint64_t> counters;
  std::uint64_t in_flight = 0;
  std::map<std::string, double> gauges;
  std::map<std::string, std::uint64_t> census;
};

/// One run's span of a snapshot stream: the windows between its "run"
/// marker and its "end" footer, plus the watchdog line if one fired.
struct SnapshotRun {
  std::string label;
  std::vector<SnapshotWindowRow> windows;
  bool watchdog_fired = false;
  Cycle watchdog_cycle = 0;
  std::uint64_t watchdog_stalled = 0;
  std::uint64_t watchdog_threshold = 0;
  bool has_footer = false;  ///< false: the run was aborted mid-stream
  Cycle end_cycle = 0;
  std::uint64_t footer_windows = 0;
  std::uint64_t injected = 0;
  std::uint64_t completions = 0;
  std::uint64_t in_flight_at_end = 0;
};

/// A parsed `mac3d-snapshot/1` stream: header period + one entry per run.
struct SnapshotStream {
  std::uint64_t period = 0;
  std::vector<SnapshotRun> runs;
};

/// Parse a snapshot JSONL document. Returns false (message in `error`) on
/// malformed lines, a wrong/missing header schema, or window lines
/// outside any run.
bool parse_snapshot_stream(const std::string& text, SnapshotStream& out,
                           std::string& error);

/// Read + parse a snapshot stream file (false on IO or parse failure).
bool load_snapshot_stream(const std::string& file, SnapshotStream& out,
                          std::string& error);

/// Derived per-window diagnosis.
struct WindowDiagnosis {
  Cycle cycle = 0;
  Cycle span = 0;  ///< cycles this window covers (last may be short)
  std::uint64_t injected_delta = 0;
  std::uint64_t completions_delta = 0;
  std::uint64_t in_flight = 0;
  /// data_bytes / link_bytes delta ratio; negative when the stream
  /// carries no device byte counters (e.g. system runs).
  double bandwidth_efficiency = -1.0;
  std::string critical_stage;  ///< argmax census activity; "" if no census
  double critical_utilization = 0.0;  ///< its active delta / span
};

/// Per-run verdict: Little's-law queue dwell, conservation audits and the
/// dominant critical stage across windows.
struct RunAnalysis {
  std::string label;
  std::vector<WindowDiagnosis> windows;
  Cycle end_cycle = 0;
  double throughput = 0.0;       ///< λ: completions per cycle
  double mean_in_flight = 0.0;   ///< L: mean end-of-window in-flight
  double derived_latency = 0.0;  ///< W = L / λ (0 when λ == 0)
  bool has_report_latency = false;
  double report_latency = 0.0;
  /// |W - report| / report in percent; negative when unchecked (no
  /// report latency or zero throughput). Informational only.
  double little_mismatch_pct = -1.0;
  bool little_ok = true;
  bool stream_conserved = true;
  std::string stream_conservation_error;
  bool cross_checked = false;  ///< report carried matching totals
  bool cross_conserved = true;
  std::string cross_conservation_error;
  bool watchdog_fired = false;
  Cycle watchdog_cycle = 0;
  std::string critical_component;  ///< most often argmax across windows
  std::size_t critical_windows = 0;
};

struct AnalysisOptions {
  /// Little's-law agreement tolerance in percent (does not gate exit).
  double tolerance_pct = 10.0;
};

struct AnalysisResult {
  std::vector<RunAnalysis> runs;
  bool watchdog_fired = false;       ///< any run's watchdog fired
  bool conservation_failed = false;  ///< any audit failed
  [[nodiscard]] int exit_code() const noexcept {
    return watchdog_fired || conservation_failed ? 1 : 0;
  }
};

/// Pure analysis over already-parsed artifacts (unit-testable without
/// files). `report` may be empty (default FlatReport): cross-artifact
/// audits are then skipped, everything stream-internal still runs.
AnalysisResult analyze_stream(const FlatReport& report,
                              const SnapshotStream& stream,
                              const AnalysisOptions& options);

/// Human-readable verdict (one block per run).
std::string render_analysis(const AnalysisResult& result,
                            const AnalysisOptions& options);

/// Machine twin of the verdict, schema `mac3d-analysis/1`.
std::string analysis_json(const AnalysisResult& result,
                          const AnalysisOptions& options);

/// Full CLI entry for `mac3d analyze`: load report + stream, analyze,
/// print the verdict, optionally write the JSON twin to `json_out`
/// (empty = skip). Exit codes: 0 clean, 1 watchdog/conservation, 2 on
/// IO/parse trouble.
int run_analyze(const std::string& report_file,
                const std::string& snapshots_file,
                const std::string& json_out, const AnalysisOptions& options);

}  // namespace mac3d
