#include "obs/analysis.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string_view>

namespace mac3d {
namespace {

constexpr std::string_view kStreamSchema = "mac3d-snapshot/1";

[[nodiscard]] std::uint64_t to_u64(double value) {
  return value <= 0.0 ? 0 : static_cast<std::uint64_t>(value + 0.5);
}

/// Report numbers are doubles; snapshot totals are integers. Integral
/// report values round-trip exactly, so half-a-count slack is enough.
[[nodiscard]] bool same_count(double report_value, std::uint64_t total) {
  return std::fabs(report_value - static_cast<double>(total)) < 0.5;
}

[[nodiscard]] std::string format_double(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return buf;
}

std::string escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Pull every `prefix.<rest>` numeric leaf of a flattened line into a
/// name -> value map, stripping the prefix. Census component names keep
/// their internal dots ("census.node0.router" -> "node0.router").
template <typename Value, typename Convert>
void collect_prefixed(const FlatReport& line, const std::string& prefix,
                      std::map<std::string, Value>& out, Convert convert) {
  const std::string start = prefix + ".";
  for (auto it = line.numbers.lower_bound(start);
       it != line.numbers.end() && it->first.compare(0, start.size(),
                                                     start) == 0;
       ++it) {
    out[it->first.substr(start.size())] = convert(it->second);
  }
}

[[nodiscard]] const double* find_number(const FlatReport& report,
                                        const std::string& path) {
  const auto it = report.numbers.find(path);
  return it == report.numbers.end() ? nullptr : &it->second;
}

/// The report's injected/completed totals for run `label`. Two shapes:
/// a driver path carries its own raw_requests/completions stats; a
/// system report aggregates per node (core_requests/completions).
/// Driver raw_requests excludes fences while the stream's injected
/// counter folds them in (they retire like requests), so only the
/// completions total is comparable there (`has_injected` false).
struct ReportTotals {
  bool found = false;
  bool has_injected = false;
  double injected = 0.0;
  double completions = 0.0;
};

[[nodiscard]] ReportTotals report_totals(const FlatReport& report,
                                         const std::string& label) {
  ReportTotals totals;
  const std::string stats = "paths." + label + ".stats.";
  const double* completions = find_number(report, stats + label +
                                          ".completions");
  if (completions != nullptr) {
    totals.found = true;
    totals.completions = *completions;
    return totals;
  }
  for (std::uint64_t i = 0;; ++i) {
    const std::string node = stats + "node" + std::to_string(i);
    const double* requests = find_number(report, node + ".core_requests");
    const double* delivered = find_number(report, node + ".completions");
    if (requests == nullptr || delivered == nullptr) break;
    totals.found = true;
    totals.has_injected = true;
    totals.injected += *requests;
    totals.completions += *delivered;
  }
  return totals;
}

[[nodiscard]] const double* report_latency(const FlatReport& report,
                                           const std::string& label) {
  const double* latency = find_number(
      report, "paths." + label + ".stats." + label + ".avg_latency_cycles");
  if (latency != nullptr) return latency;
  return find_number(report, "metrics.system.avg_request_latency_cycles");
}

}  // namespace

bool parse_snapshot_stream(const std::string& text, SnapshotStream& out,
                           std::string& error) {
  out = SnapshotStream{};
  std::istringstream lines(text);
  std::string line;
  std::size_t line_no = 0;
  bool header_seen = false;
  SnapshotRun* run = nullptr;
  const auto fail = [&](const std::string& what) {
    error = "snapshot line " + std::to_string(line_no) + ": " + what;
    return false;
  };
  while (std::getline(lines, line)) {
    ++line_no;
    if (line.empty()) continue;
    FlatReport flat;
    std::string parse_error;
    if (!flatten_json(line, flat, parse_error)) return fail(parse_error);

    if (const auto schema = flat.strings.find("schema");
        schema != flat.strings.end()) {
      if (schema->second != kStreamSchema) {
        return fail("unsupported stream schema \"" + schema->second + "\"");
      }
      const double* period = find_number(flat, "period");
      if (period == nullptr || to_u64(*period) == 0) {
        return fail("header has no positive \"period\"");
      }
      out.period = to_u64(*period);
      header_seen = true;
      continue;
    }
    if (!header_seen) return fail("expected mac3d-snapshot/1 header first");

    if (const auto marker = flat.strings.find("run");
        marker != flat.strings.end()) {
      out.runs.emplace_back();
      run = &out.runs.back();
      run->label = marker->second;
      continue;
    }
    if (run == nullptr) return fail("line outside any run");

    if (flat.strings.count("watchdog") != 0) {
      run->watchdog_fired = true;
      if (const double* cycle = find_number(flat, "cycle")) {
        run->watchdog_cycle = to_u64(*cycle);
      }
      if (const double* stalled = find_number(flat, "stalled_windows")) {
        run->watchdog_stalled = to_u64(*stalled);
      }
      if (const double* threshold =
              find_number(flat, "threshold_windows")) {
        run->watchdog_threshold = to_u64(*threshold);
      }
      continue;
    }
    if (flat.strings.count("end") != 0) {
      const double* cycle = find_number(flat, "cycle");
      const double* windows = find_number(flat, "windows");
      const double* injected = find_number(flat, "injected");
      const double* completions = find_number(flat, "completions");
      const double* in_flight = find_number(flat, "in_flight_at_end");
      if (cycle == nullptr || windows == nullptr || injected == nullptr ||
          completions == nullptr || in_flight == nullptr) {
        return fail("footer missing a required field");
      }
      run->has_footer = true;
      run->end_cycle = to_u64(*cycle);
      run->footer_windows = to_u64(*windows);
      run->injected = to_u64(*injected);
      run->completions = to_u64(*completions);
      run->in_flight_at_end = to_u64(*in_flight);
      run = nullptr;  // further windows need a fresh "run" marker
      continue;
    }

    const double* cycle = find_number(flat, "cycle");
    const double* in_flight = find_number(flat, "in_flight");
    if (cycle == nullptr || in_flight == nullptr) {
      return fail("unrecognized line");
    }
    SnapshotWindowRow row;
    row.cycle = to_u64(*cycle);
    row.in_flight = to_u64(*in_flight);
    collect_prefixed(flat, "counters", row.counters, to_u64);
    collect_prefixed(flat, "census", row.census, to_u64);
    collect_prefixed(flat, "gauges", row.gauges,
                     [](double v) { return v; });
    run->windows.push_back(std::move(row));
  }
  if (!header_seen) {
    error = "snapshot stream is empty (no header)";
    return false;
  }
  return true;
}

bool load_snapshot_stream(const std::string& file, SnapshotStream& out,
                          std::string& error) {
  std::ifstream in(file, std::ios::binary);
  if (!in.is_open()) {
    error = "cannot open " + file;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (!parse_snapshot_stream(text.str(), out, error)) {
    error = file + ": " + error;
    return false;
  }
  return true;
}

AnalysisResult analyze_stream(const FlatReport& report,
                              const SnapshotStream& stream,
                              const AnalysisOptions& options) {
  AnalysisResult result;
  for (const SnapshotRun& run : stream.runs) {
    RunAnalysis ra;
    ra.label = run.label;
    ra.watchdog_fired = run.watchdog_fired;
    ra.watchdog_cycle = run.watchdog_cycle;
    ra.end_cycle = run.has_footer
                       ? run.end_cycle
                       : (run.windows.empty() ? 0 : run.windows.back().cycle);

    Cycle prev = 0;
    std::uint64_t sum_injected = 0;
    std::uint64_t sum_completions = 0;
    double sum_in_flight = 0.0;
    std::map<std::string, std::size_t> critical_counts;
    for (const SnapshotWindowRow& row : run.windows) {
      WindowDiagnosis w;
      w.cycle = row.cycle;
      w.span = row.cycle > prev ? row.cycle - prev : 0;
      prev = row.cycle;
      if (const auto it = row.counters.find("injected");
          it != row.counters.end()) {
        w.injected_delta = it->second;
      }
      if (const auto it = row.counters.find("completions");
          it != row.counters.end()) {
        w.completions_delta = it->second;
      }
      sum_injected += w.injected_delta;
      sum_completions += w.completions_delta;
      w.in_flight = row.in_flight;
      sum_in_flight += static_cast<double>(row.in_flight);
      const auto data = row.counters.find("data_bytes");
      const auto link = row.counters.find("link_bytes");
      if (data != row.counters.end() && link != row.counters.end() &&
          link->second > 0) {
        w.bandwidth_efficiency = static_cast<double>(data->second) /
                                 static_cast<double>(link->second);
      }
      // Strict '>' keeps ties deterministic: the map walks names in
      // sorted order, so the lexicographically first winner sticks.
      std::uint64_t max_active = 0;
      for (const auto& [name, active] : row.census) {
        if (active > max_active) {
          max_active = active;
          w.critical_stage = name;
        }
      }
      if (max_active > 0 && w.span > 0) {
        w.critical_utilization =
            static_cast<double>(max_active) / static_cast<double>(w.span);
      }
      if (!w.critical_stage.empty()) ++critical_counts[w.critical_stage];
      ra.windows.push_back(std::move(w));
    }
    if (!ra.windows.empty()) {
      ra.mean_in_flight =
          sum_in_flight / static_cast<double>(ra.windows.size());
    }

    const std::uint64_t completions =
        run.has_footer ? run.completions : sum_completions;
    if (ra.end_cycle > 0) {
      ra.throughput = static_cast<double>(completions) /
                      static_cast<double>(ra.end_cycle);
    }
    if (ra.throughput > 0.0) {
      ra.derived_latency = ra.mean_in_flight / ra.throughput;
    }
    if (const double* latency = report_latency(report, run.label);
        latency != nullptr && *latency > 0.0 && ra.throughput > 0.0) {
      ra.has_report_latency = true;
      ra.report_latency = *latency;
      ra.little_mismatch_pct =
          std::fabs(ra.derived_latency - ra.report_latency) /
          ra.report_latency * 100.0;
      ra.little_ok = ra.little_mismatch_pct <= options.tolerance_pct;
    }

    // Stream-internal conservation: the delta encoding must reconstruct
    // the footer's absolute totals exactly.
    if (!run.has_footer) {
      ra.stream_conserved = false;
      ra.stream_conservation_error = "run has no end footer (truncated?)";
    } else if (sum_injected != run.injected) {
      ra.stream_conserved = false;
      ra.stream_conservation_error =
          "window injected deltas sum to " + std::to_string(sum_injected) +
          " but footer says " + std::to_string(run.injected);
    } else if (sum_completions != run.completions) {
      ra.stream_conserved = false;
      ra.stream_conservation_error =
          "window completion deltas sum to " +
          std::to_string(sum_completions) + " but footer says " +
          std::to_string(run.completions);
    } else if (run.footer_windows != run.windows.size()) {
      ra.stream_conserved = false;
      ra.stream_conservation_error =
          "footer counts " + std::to_string(run.footer_windows) +
          " windows, stream carries " + std::to_string(run.windows.size());
    } else if (run.in_flight_at_end !=
               (run.injected > run.completions
                    ? run.injected - run.completions
                    : 0)) {
      ra.stream_conserved = false;
      ra.stream_conservation_error =
          "footer in_flight_at_end breaks injected = completed + in-flight";
    }

    // Cross-artifact conservation: the report's own totals (measured by
    // an independent path) must match the stream footer.
    if (run.has_footer) {
      const ReportTotals totals = report_totals(report, run.label);
      if (totals.found) {
        ra.cross_checked = true;
        if (totals.has_injected &&
            !same_count(totals.injected, run.injected)) {
          ra.cross_conserved = false;
          ra.cross_conservation_error =
              "report injected " + format_double(totals.injected) +
              " != stream " + std::to_string(run.injected);
        } else if (!same_count(totals.completions, run.completions)) {
          ra.cross_conserved = false;
          ra.cross_conservation_error =
              "report completions " + format_double(totals.completions) +
              " != stream " + std::to_string(run.completions);
        }
      }
    }

    for (const auto& [name, count] : critical_counts) {
      if (count > ra.critical_windows) {
        ra.critical_component = name;
        ra.critical_windows = count;
      }
    }

    result.watchdog_fired = result.watchdog_fired || ra.watchdog_fired;
    result.conservation_failed =
        result.conservation_failed || !ra.stream_conserved ||
        (ra.cross_checked && !ra.cross_conserved);
    result.runs.push_back(std::move(ra));
  }
  return result;
}

std::string render_analysis(const AnalysisResult& result,
                            const AnalysisOptions& options) {
  std::ostringstream out;
  for (const RunAnalysis& ra : result.runs) {
    out << "[" << ra.label << "] " << ra.windows.size() << " windows, end cycle "
        << ra.end_cycle << "\n";
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  throughput      %.6g completions/cycle\n",
                  ra.throughput);
    out << line;
    std::snprintf(line, sizeof(line), "  mean in-flight  %.6g\n",
                  ra.mean_in_flight);
    out << line;
    if (ra.has_report_latency) {
      std::snprintf(line, sizeof(line),
                    "  queue dwell     %.6g cy derived (L/lambda) vs %.6g cy "
                    "reported (%.1f%% apart, tol %.0f%%)%s\n",
                    ra.derived_latency, ra.report_latency,
                    ra.little_mismatch_pct, options.tolerance_pct,
                    ra.little_ok ? "" : "  <-- Little's law disagrees");
      out << line;
    } else {
      std::snprintf(line, sizeof(line),
                    "  queue dwell     %.6g cy derived (L/lambda); no report "
                    "latency to cross-check\n",
                    ra.derived_latency);
      out << line;
    }
    out << "  conservation    stream "
        << (ra.stream_conserved ? "OK" : "FAIL: " +
                                         ra.stream_conservation_error)
        << "; report "
        << (!ra.cross_checked
                ? "not checked"
                : (ra.cross_conserved ? "OK" : "FAIL: " +
                                               ra.cross_conservation_error))
        << "\n";
    double bw_sum = 0.0;
    std::size_t bw_windows = 0;
    for (const WindowDiagnosis& w : ra.windows) {
      if (w.bandwidth_efficiency >= 0.0) {
        bw_sum += w.bandwidth_efficiency;
        ++bw_windows;
      }
    }
    if (bw_windows > 0) {
      std::snprintf(line, sizeof(line),
                    "  bandwidth eff   %.1f%% mean across %zu windows\n",
                    bw_sum / static_cast<double>(bw_windows) * 100.0,
                    bw_windows);
      out << line;
    }
    if (!ra.critical_component.empty()) {
      std::snprintf(line, sizeof(line),
                    "  critical stage  %s (critical in %zu/%zu windows)\n",
                    ra.critical_component.c_str(), ra.critical_windows,
                    ra.windows.size());
      out << line;
    }
    if (ra.watchdog_fired) {
      out << "  verdict: STALLED at cycle " << ra.watchdog_cycle
          << " - zero completions with work in flight (watchdog)\n";
    } else if (!ra.stream_conserved ||
               (ra.cross_checked && !ra.cross_conserved)) {
      out << "  verdict: CONSERVATION FAILURE - artifacts disagree, do not "
             "trust this run\n";
    } else if (!ra.critical_component.empty()) {
      out << "  verdict: healthy; bottleneck " << ra.critical_component
          << "\n";
    } else {
      out << "  verdict: healthy; no census in stream to rank a "
             "bottleneck\n";
    }
  }
  if (result.runs.empty()) out << "analyze: stream contains no runs\n";
  return out.str();
}

std::string analysis_json(const AnalysisResult& result,
                          const AnalysisOptions& options) {
  std::string out = "{\"schema\":\"mac3d-analysis/1\"";
  out += ",\"tolerance_pct\":" + format_double(options.tolerance_pct);
  out += ",\"watchdog_fired\":";
  out += result.watchdog_fired ? "true" : "false";
  out += ",\"conservation_failed\":";
  out += result.conservation_failed ? "true" : "false";
  out += ",\"runs\":[";
  for (std::size_t i = 0; i < result.runs.size(); ++i) {
    const RunAnalysis& ra = result.runs[i];
    if (i != 0) out += ",";
    out += "{\"label\":\"" + escape(ra.label) + "\"";
    out += ",\"end_cycle\":" + std::to_string(ra.end_cycle);
    out += ",\"window_count\":" + std::to_string(ra.windows.size());
    out += ",\"throughput_per_cycle\":" + format_double(ra.throughput);
    out += ",\"mean_in_flight\":" + format_double(ra.mean_in_flight);
    out +=
        ",\"derived_latency_cycles\":" + format_double(ra.derived_latency);
    if (ra.has_report_latency) {
      out +=
          ",\"report_latency_cycles\":" + format_double(ra.report_latency);
      out += ",\"little_mismatch_pct\":" +
             format_double(ra.little_mismatch_pct);
      out += ",\"little_within_tolerance\":";
      out += ra.little_ok ? "true" : "false";
    }
    out += ",\"conservation\":{\"stream_ok\":";
    out += ra.stream_conserved ? "true" : "false";
    if (!ra.stream_conserved) {
      out += ",\"stream_error\":\"" + escape(ra.stream_conservation_error) +
             "\"";
    }
    out += ",\"cross_checked\":";
    out += ra.cross_checked ? "true" : "false";
    out += ",\"cross_ok\":";
    out += ra.cross_conserved ? "true" : "false";
    if (!ra.cross_conserved) {
      out += ",\"cross_error\":\"" + escape(ra.cross_conservation_error) +
             "\"";
    }
    out += "}";
    out += ",\"watchdog\":{\"fired\":";
    out += ra.watchdog_fired ? "true" : "false";
    if (ra.watchdog_fired) {
      out += ",\"fired_at_cycle\":" + std::to_string(ra.watchdog_cycle);
    }
    out += "}";
    if (!ra.critical_component.empty()) {
      out += ",\"critical\":{\"component\":\"" +
             escape(ra.critical_component) +
             "\",\"windows\":" + std::to_string(ra.critical_windows) + "}";
    }
    out += ",\"windows\":[";
    for (std::size_t w = 0; w < ra.windows.size(); ++w) {
      const WindowDiagnosis& win = ra.windows[w];
      if (w != 0) out += ",";
      out += "{\"cycle\":" + std::to_string(win.cycle);
      out += ",\"span\":" + std::to_string(win.span);
      out += ",\"injected\":" + std::to_string(win.injected_delta);
      out += ",\"completions\":" + std::to_string(win.completions_delta);
      out += ",\"in_flight\":" + std::to_string(win.in_flight);
      if (win.bandwidth_efficiency >= 0.0) {
        out += ",\"bandwidth_efficiency\":" +
               format_double(win.bandwidth_efficiency);
      }
      if (!win.critical_stage.empty()) {
        out += ",\"critical_stage\":\"" + escape(win.critical_stage) + "\"";
        out += ",\"critical_utilization\":" +
               format_double(win.critical_utilization);
      }
      out += "}";
    }
    out += "]}";
  }
  out += "]}\n";
  return out;
}

int run_analyze(const std::string& report_file,
                const std::string& snapshots_file,
                const std::string& json_out,
                const AnalysisOptions& options) {
  SnapshotStream stream;
  std::string error;
  if (!load_snapshot_stream(snapshots_file, stream, error)) {
    std::fprintf(stderr, "analyze: %s\n", error.c_str());
    return 2;
  }
  FlatReport report;
  if (!report_file.empty() &&
      !load_report(report_file, report, error)) {
    std::fprintf(stderr, "analyze: %s\n", error.c_str());
    return 2;
  }
  const AnalysisResult result = analyze_stream(report, stream, options);
  const std::string text = render_analysis(result, options);
  std::fputs(text.c_str(), stdout);
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary);
    out << analysis_json(result, options);
    if (!out) {
      std::fprintf(stderr, "analyze: cannot write %s\n", json_out.c_str());
      return 2;
    }
  }
  return result.exit_code();
}

}  // namespace mac3d
