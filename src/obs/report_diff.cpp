#include "obs/report_diff.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <limits>
#include <sstream>
#include <string_view>
#include <utility>

namespace mac3d {
namespace {

/// Recursive-descent reader that flattens as it parses; no DOM. Depth is
/// bounded (run reports nest ~4 deep) to keep malformed input from
/// recursing unboundedly.
class FlattenParser {
 public:
  FlattenParser(const std::string& text, FlatReport& out)
      : text_(text), out_(out) {}

  bool parse(std::string& error) {
    skip_ws();
    if (!parse_value("", 0)) {
      if (error_.empty()) fail("invalid JSON");
      error = error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing content after document");
      error = error_;
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 32;

  void fail(const std::string& what) {
    std::ostringstream msg;
    msg << what << " at byte " << pos_;
    error_ = msg.str();
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(const std::string& path, int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return parse_object(path, depth);
    if (c == '[') return parse_array(path, depth);
    if (c == '"') {
      std::string value;
      if (!parse_string(value)) return false;
      out_.strings[path] = std::move(value);
      return true;
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      out_.numbers[path] = 1.0;
      return true;
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      out_.numbers[path] = 0.0;
      return true;
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      out_.strings[path] = "null";
      return true;
    }
    double number = 0.0;
    if (!parse_number(number)) return false;
    out_.numbers[path] = number;
    return true;
  }

  bool parse_object(const std::string& path, int depth) {
    ++pos_;  // '{'
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      if (!consume(':')) {
        fail("expected ':' after object key");
        return false;
      }
      const std::string child = path.empty() ? key : path + "." + key;
      if (path.empty()) {
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '{') {
          out_.sections.push_back(key);
        }
      }
      if (!parse_value(child, depth + 1)) return false;
      if (consume(',')) continue;
      if (consume('}')) return true;
      fail("expected ',' or '}' in object");
      return false;
    }
  }

  bool parse_array(const std::string& path, int depth) {
    ++pos_;  // '['
    if (consume(']')) return true;
    std::size_t index = 0;
    while (true) {
      const std::string child = path + "." + std::to_string(index++);
      if (!parse_value(child, depth + 1)) return false;
      if (consume(',')) continue;
      if (consume(']')) return true;
      fail("expected ',' or ']' in array");
      return false;
    }
  }

  bool parse_string(std::string& out) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      fail("expected string");
      return false;
    }
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // Reports only escape control characters; decode the BMP code
          // point as a raw byte when it fits, '?' otherwise.
          if (pos_ + 4 > text_.size()) {
            fail("truncated \\u escape");
            return false;
          }
          const unsigned long code =
              std::strtoul(text_.substr(pos_, 4).c_str(), nullptr, 16);
          pos_ += 4;
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default:
          fail("unknown escape");
          return false;
      }
    }
    fail("unterminated string");
    return false;
  }

  bool parse_number(double& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("expected value");
      return false;
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("malformed number");
      return false;
    }
    return true;
  }

  const std::string& text_;
  FlatReport& out_;
  std::size_t pos_ = 0;
  std::string error_;
};

[[nodiscard]] std::string format_value(double value) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  return buf;
}

/// Wildcard glob: '*' matches any run of characters (dots included).
/// Iterative backtracking — linear for the short patterns --ignore takes.
[[nodiscard]] bool glob_match(std::string_view pattern,
                              std::string_view text) {
  std::size_t p = 0;
  std::size_t t = 0;
  std::size_t star = std::string_view::npos;
  std::size_t mark = 0;
  while (t < text.size()) {
    if (p < pattern.size() && (pattern[p] == text[t])) {
      ++p;
      ++t;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      mark = t;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

/// One --ignore entry against one dotted path: globs when the entry
/// carries a '*', otherwise exact path or section prefix ("metrics"
/// covers "metrics.foo.bar").
[[nodiscard]] bool ignore_match(const std::string& pattern,
                                const std::string& path) {
  if (pattern.find('*') != std::string::npos) {
    return glob_match(pattern, path);
  }
  if (path == pattern) return true;
  return path.size() > pattern.size() && path[pattern.size()] == '.' &&
         path.compare(0, pattern.size(), pattern) == 0;
}

}  // namespace

bool parse_report(const std::string& json, FlatReport& out,
                  std::string& error) {
  out = FlatReport{};
  FlattenParser parser(json, out);
  if (!parser.parse(error)) return false;
  const auto schema = out.strings.find("schema");
  if (schema == out.strings.end()) {
    error = "report has no \"schema\" field";
    return false;
  }
  out.schema = schema->second;
  if (out.schema != "mac3d-run-report/1" &&
      out.schema != "mac3d-run-report/2" &&
      out.schema != "mac3d-run-report/3" &&
      out.schema != "mac3d-run-report/4") {
    error = "unsupported schema \"" + out.schema + "\"";
    return false;
  }
  return true;
}

bool flatten_json(const std::string& json, FlatReport& out,
                  std::string& error) {
  out = FlatReport{};
  FlattenParser parser(json, out);
  if (!parser.parse(error)) return false;
  const auto schema = out.strings.find("schema");
  if (schema != out.strings.end()) out.schema = schema->second;
  return true;
}

bool load_report(const std::string& file, FlatReport& out,
                 std::string& error) {
  std::ifstream in(file);
  if (!in.is_open()) {
    error = "cannot open " + file;
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  if (!parse_report(text.str(), out, error)) {
    error = file + ": " + error;
    return false;
  }
  return true;
}

DiffResult diff_reports(const FlatReport& old_report,
                        const FlatReport& new_report,
                        const DiffOptions& options) {
  DiffResult result;
  const auto ignored = [&](const std::string& path) {
    // Host wall-clock attribution is nondeterministic by nature: the
    // whole section is exempt from diffing by name (docs/OBSERVABILITY.md).
    if (path == "host" || path.rfind("host.", 0) == 0) return true;
    return std::any_of(options.ignore.begin(), options.ignore.end(),
                       [&path](const std::string& pattern) {
                         return ignore_match(pattern, path);
                       });
  };

  // Union walk of the two sorted numeric maps.
  auto old_it = old_report.numbers.begin();
  auto new_it = new_report.numbers.begin();
  while (old_it != old_report.numbers.end() ||
         new_it != new_report.numbers.end()) {
    MetricDelta delta;
    if (new_it == new_report.numbers.end() ||
        (old_it != old_report.numbers.end() && old_it->first < new_it->first)) {
      delta.path = old_it->first;
      delta.old_value = old_it->second;
      delta.only_old = true;
      ++old_it;
    } else if (old_it == old_report.numbers.end() ||
               new_it->first < old_it->first) {
      delta.path = new_it->first;
      delta.new_value = new_it->second;
      delta.only_new = true;
      ++new_it;
    } else {
      delta.path = old_it->first;
      delta.old_value = old_it->second;
      delta.new_value = new_it->second;
      ++old_it;
      ++new_it;
      if (!ignored(delta.path)) ++result.compared;
    }
    if (ignored(delta.path)) continue;

    if (delta.only_old || delta.only_new) {
      delta.relative = std::numeric_limits<double>::infinity();
      delta.out_of_tolerance = options.fail_on_missing;
    } else {
      const double magnitude =
          std::max(std::fabs(delta.old_value), std::fabs(delta.new_value));
      delta.relative = magnitude == 0.0 ? 0.0
                                        : std::fabs(delta.new_value -
                                                    delta.old_value) /
                                              magnitude;
      delta.out_of_tolerance =
          delta.relative * 100.0 > options.tolerance_pct;
    }
    if (delta.relative == 0.0) continue;  // identical: not worth listing
    if (delta.out_of_tolerance) ++result.out_of_tolerance;
    result.deltas.push_back(std::move(delta));
  }

  // Non-numeric leaves: exact match, except "schema" (a /1 baseline may be
  // compared against a /2 report; parse_report already validated both).
  for (const auto& [path, value] : old_report.strings) {
    if (path == "schema" || ignored(path)) continue;
    const auto other = new_report.strings.find(path);
    if (other == new_report.strings.end()) {
      result.string_mismatches.push_back(path + ": removed (was \"" + value +
                                         "\")");
    } else if (other->second != value) {
      result.string_mismatches.push_back(path + ": \"" + value + "\" -> \"" +
                                         other->second + "\"");
    }
  }
  for (const auto& [path, value] : new_report.strings) {
    if (path == "schema" || ignored(path)) continue;
    if (old_report.strings.find(path) == old_report.strings.end()) {
      result.string_mismatches.push_back(path + ": added (\"" + value +
                                         "\")");
    }
  }
  return result;
}

std::string render_diff(const DiffResult& result, const DiffOptions& options) {
  if (result.deltas.empty() && result.string_mismatches.empty()) return "";
  std::ostringstream out;
  std::size_t width = 6;
  for (const MetricDelta& delta : result.deltas) {
    width = std::max(width, delta.path.size());
  }
  width = std::min<std::size_t>(width, 64);

  char header[192];
  std::snprintf(header, sizeof(header), "  %-*s  %12s  %12s  %9s\n",
                static_cast<int>(width), "metric", "old", "new", "delta");
  out << header;
  out << "  " << std::string(width, '-') << "  ------------  ------------"
      << "  ---------\n";
  for (const MetricDelta& delta : result.deltas) {
    std::string rel;
    if (delta.only_old) {
      rel = "removed";
    } else if (delta.only_new) {
      rel = "added";
    } else {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%+.2f%%",
                    (delta.new_value - delta.old_value) >= 0
                        ? delta.relative * 100.0
                        : -delta.relative * 100.0);
      rel = buf;
    }
    char line[192];
    std::snprintf(line, sizeof(line), "%c %-*s  %12s  %12s  %9s\n",
                  delta.out_of_tolerance ? '!' : ' ',
                  static_cast<int>(width), delta.path.c_str(),
                  delta.only_new ? "-" : format_value(delta.old_value).c_str(),
                  delta.only_old ? "-" : format_value(delta.new_value).c_str(),
                  rel.c_str());
    out << line;
  }
  for (const std::string& mismatch : result.string_mismatches) {
    out << "! " << mismatch << "\n";
  }
  out << "(" << result.compared << " metrics compared, "
      << result.out_of_tolerance + result.string_mismatches.size()
      << " out of tolerance at " << options.tolerance_pct << "%)\n";
  return out.str();
}

namespace {

/// Top-level object sections every supported schema may carry. Anything
/// else means the report came from a newer (or foreign) writer and a
/// diff would silently ignore whatever it contains — fail loudly instead.
[[nodiscard]] bool known_section(const std::string& name) {
  static constexpr std::string_view kKnown[] = {"config",  "metrics",
                                                "paths",   "checks",
                                                "latency", "host",
                                                "watchdog"};
  return std::find(std::begin(kKnown), std::end(kKnown), name) !=
         std::end(kKnown);
}

}  // namespace

int run_report_diff(const std::string& old_file, const std::string& new_file,
                    const DiffOptions& options) {
  FlatReport old_report;
  FlatReport new_report;
  std::string error;
  if (!load_report(old_file, old_report, error) ||
      !load_report(new_file, new_report, error)) {
    std::fprintf(stderr, "report-diff: %s\n", error.c_str());
    return 2;
  }
  if (old_report.schema != new_report.schema) {
    std::fprintf(stderr,
                 "report-diff: schema mismatch: %s is \"%s\" but %s is "
                 "\"%s\" (regenerate the baseline)\n",
                 old_file.c_str(), old_report.schema.c_str(),
                 new_file.c_str(), new_report.schema.c_str());
    return 2;
  }
  const std::pair<const std::string*, const FlatReport*> inputs[] = {
      {&old_file, &old_report}, {&new_file, &new_report}};
  for (const auto& [file, report] : inputs) {
    for (const std::string& section : report->sections) {
      if (!known_section(section)) {
        std::fprintf(stderr,
                     "report-diff: %s: unknown top-level section \"%s\"\n",
                     file->c_str(), section.c_str());
        return 2;
      }
    }
  }
  const DiffResult result = diff_reports(old_report, new_report, options);
  const std::string table = render_diff(result, options);
  if (table.empty()) {
    std::printf("report-diff: %zu metrics compared, no differences\n",
                result.compared);
  } else {
    std::printf("report-diff: %s vs %s\n%s", old_file.c_str(),
                new_file.c_str(), table.c_str());
  }
  return result.ok() ? 0 : 1;
}

}  // namespace mac3d
