#include "obs/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "common/json.hpp"
#include "obs/registry.hpp"

namespace mac3d {

// The one sanctioned host-clock read in src/ (docs/STATIC_ANALYSIS.md:
// det.wall_clock exempts this file). Everything downstream consumes the
// returned seconds, never the clock itself.
double host_now_seconds() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

std::size_t ActivityCensus::add_component(std::string name, Probe probe) {
  return add_component(std::move(name), std::move(probe), RangeProbe{});
}

std::size_t ActivityCensus::add_component(std::string name, Probe probe,
                                          RangeProbe range) {
  const std::size_t index = rows_.size();
  rows_.push_back({std::move(name), 0, 0});
  probes_.push_back(std::move(probe));
  range_probes_.push_back(std::move(range));
  return index;
}

std::size_t ActivityCensus::add_feeder(std::string name) {
  const std::size_t index = add_component(std::move(name), Probe{});
  feeder_index_ = index;
  return index;
}

void ActivityCensus::observe(Cycle now) {
  if (observed_any_ && now <= last_observed_) return;
  // Cycles the engine skipped (or never visited) are idle for everyone:
  // the driver only jumps over cycles where provably nothing happens.
  const std::uint64_t gap = observed_any_ ? now - last_observed_ - 1 : now;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    rows_[i].idle_cycles += gap;
    const bool active = i == feeder_index_
                            ? feeder_marked_at_ == now
                            : probes_[i] && probes_[i](now);
    if (active) {
      ++rows_[i].active_cycles;
    } else {
      ++rows_[i].idle_cycles;
    }
  }
  observed_cycles_ += gap + 1;
  last_observed_ = now;
  observed_any_ = true;
}

void ActivityCensus::skip_to(Cycle next) {
  // Span of cycles the engine is about to jump over, strictly before the
  // landing cycle `next` (which observe(next) will account after its
  // tick). Called before that tick, so range probes see the busy
  // thresholds exactly as they stood throughout the span.
  const Cycle first = observed_any_ ? last_observed_ + 1 : 0;
  if (next <= first) return;
  const Cycle last = next - 1;
  const std::uint64_t span = last - first + 1;
  for (std::size_t i = 0; i < rows_.size(); ++i) {
    std::uint64_t active = 0;
    if (i != feeder_index_ && range_probes_[i]) {
      active = range_probes_[i](first, last);
      if (active > span) active = span;
    }
    rows_[i].active_cycles += active;
    rows_[i].idle_cycles += span - active;
  }
  observed_cycles_ += span;
  last_observed_ = last;
  observed_any_ = true;
}

void ActivityCensus::seal() {
  probes_.clear();
  probes_.resize(rows_.size());
  range_probes_.clear();
  range_probes_.resize(rows_.size());
  feeder_index_ = kNoFeeder;  // the feeder's marker may dangle too
}

void ActivityCensus::export_metrics(MetricsRegistry& registry) const {
  for (const Row& row : rows_) {
    registry.counter(row.name + ".active_cycles").add(row.active_cycles);
    registry.counter(row.name + ".idle_cycles").add(row.idle_cycles);
  }
}

double ActivityCensus::dead_time_fraction() const noexcept {
  std::uint64_t active = 0;
  std::uint64_t idle = 0;
  for (const Row& row : rows_) {
    active += row.active_cycles;
    idle += row.idle_cycles;
  }
  const std::uint64_t total = active + idle;
  return total == 0 ? 0.0
                    : static_cast<double>(idle) / static_cast<double>(total);
}

std::string ActivityCensus::to_table() const {
  std::size_t width = 9;  // "component"
  for (const Row& row : rows_) width = std::max(width, row.name.size());
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-*s %12s %12s %10s\n",
                static_cast<int>(width), "component", "active", "idle",
                "dead-time");
  out += line;
  for (const Row& row : rows_) {
    const std::uint64_t total = row.active_cycles + row.idle_cycles;
    const double dead =
        total == 0 ? 0.0
                   : static_cast<double>(row.idle_cycles) /
                         static_cast<double>(total);
    std::snprintf(line, sizeof(line), "%-*s %12llu %12llu %9.1f%%\n",
                  static_cast<int>(width), row.name.c_str(),
                  static_cast<unsigned long long>(row.active_cycles),
                  static_cast<unsigned long long>(row.idle_cycles),
                  100.0 * dead);
    out += line;
  }
  std::snprintf(line, sizeof(line),
                "%-*s %12llu cycles observed, %9.1f%% dead overall\n",
                static_cast<int>(width), "total",
                static_cast<unsigned long long>(observed_cycles_),
                100.0 * dead_time_fraction());
  out += line;
  return out;
}

std::string ActivityCensus::to_json() const {
  std::string out = "{";
  out += "\"observed_cycles\": " + json_number(observed_cycles_);
  out += ", \"dead_time_fraction\": " + json_number(dead_time_fraction());
  out += ", \"components\": {";
  bool first = true;
  for (const Row& row : rows_) {
    if (!first) out += ", ";
    first = false;
    out += json_quote(row.name) + ": {\"active_cycles\": " +
           json_number(row.active_cycles) +
           ", \"idle_cycles\": " + json_number(row.idle_cycles) + "}";
  }
  out += "}}";
  return out;
}

double HostProfiler::worker_imbalance() const noexcept {
  if (worker_busy_.empty()) return 0.0;
  double sum = 0.0;
  double peak = 0.0;
  for (const double busy : worker_busy_) {
    sum += busy;
    peak = std::max(peak, busy);
  }
  if (sum <= 0.0) return 0.0;
  const double mean = sum / static_cast<double>(worker_busy_.size());
  return peak / mean;
}

std::string HostProfiler::to_json() const {
  std::string out = "{\"phase_seconds\": {";
  for (std::size_t i = 0; i < kHostPhaseCount; ++i) {
    if (i != 0) out += ", ";
    out += json_quote(to_string(static_cast<HostPhase>(i))) + ": " +
           json_number(phase_seconds_[i]);
  }
  out += "}, \"workers\": {\"count\": " +
         json_number(static_cast<std::uint64_t>(worker_busy_.size())) +
         ", \"busy_seconds\": [";
  for (std::size_t i = 0; i < worker_busy_.size(); ++i) {
    if (i != 0) out += ", ";
    out += json_number(worker_busy_[i]);
  }
  out += "], \"imbalance\": " + json_number(worker_imbalance()) + "}}";
  return out;
}

std::string HostProfiler::to_table() const {
  std::string out;
  char line[160];
  double total = 0.0;
  for (const double seconds : phase_seconds_) total += seconds;
  for (std::size_t i = 0; i < kHostPhaseCount; ++i) {
    const double share =
        total <= 0.0 ? 0.0 : 100.0 * phase_seconds_[i] / total;
    std::snprintf(line, sizeof(line), "%-10s %10.6fs %6.1f%%\n",
                  std::string(to_string(static_cast<HostPhase>(i))).c_str(),
                  phase_seconds_[i], share);
    out += line;
  }
  if (!worker_busy_.empty()) {
    std::snprintf(line, sizeof(line),
                  "workers    %10zu   imbalance %.2fx\n", worker_busy_.size(),
                  worker_imbalance());
    out += line;
  }
  return out;
}

}  // namespace mac3d
