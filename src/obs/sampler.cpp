#include "obs/sampler.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mac3d {

void CycleSampler::begin_run(std::string path_name) {
  run_name_ = std::move(path_name);
  probes_.clear();
  next_boundary_ = period_;
  running_ = true;
}

void CycleSampler::add_probe(std::string name, Probe probe) {
  probes_.emplace_back(std::move(name), std::move(probe));
}

void CycleSampler::advance_to(Cycle now) {
  if (!running_) return;
  while (next_boundary_ <= now) {
    sample_boundary(next_boundary_);
    next_boundary_ += period_;
  }
}

void CycleSampler::end_run(Cycle makespan) {
  if (!running_) return;
  // Row k (boundary k*period) covers window ((k-1)*period, k*period]; the
  // run needs every window whose start precedes the makespan:
  // exactly ceil(makespan / period) rows. The tail row is sampled at the
  // makespan itself (the boundary would lie beyond the end of time).
  while (next_boundary_ - period_ < makespan) {
    sample_boundary(std::min(next_boundary_, makespan));
    next_boundary_ += period_;
  }
  abort_run();
}

void CycleSampler::abort_run() noexcept {
  probes_.clear();
  running_ = false;
}

void CycleSampler::sample_boundary(Cycle boundary) {
  if (columns_.empty()) {
    columns_.reserve(probes_.size());
    for (const auto& [name, probe] : probes_) columns_.push_back(name);
  }
  Row row;
  row.path = run_name_;
  row.cycle = boundary;
  row.values.reserve(probes_.size());
  for (const auto& [name, probe] : probes_) row.values.push_back(probe(boundary));
  rows_.push_back(std::move(row));
}

std::size_t CycleSampler::rows_for(std::string_view path) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(rows_.begin(), rows_.end(),
                    [path](const Row& row) { return row.path == path; }));
}

std::string CycleSampler::to_csv() const {
  std::ostringstream out;
  out << "path,cycle";
  for (const auto& column : columns_) out << ',' << column;
  out << '\n';
  char buf[40];
  for (const auto& row : rows_) {
    out << row.path << ',' << row.cycle;
    for (const double value : row.values) {
      std::snprintf(buf, sizeof(buf), "%.10g", value);
      out << ',' << buf;
    }
    out << '\n';
  }
  return out.str();
}

bool CycleSampler::write_csv(const std::string& file) const {
  std::ofstream out(file, std::ios::out | std::ios::trunc);
  if (!out.is_open()) return false;
  out << to_csv();
  return out.good();
}

}  // namespace mac3d
