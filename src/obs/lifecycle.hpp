// LifecycleTracer: the standard EventSink. Collects per-request stage
// stamps, audits them (monotonic, complete), folds them into per-path
// per-stage latency Histograms, and optionally streams the full timeline
// as Chrome/Perfetto trace-event JSON.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <fstream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "obs/obs.hpp"

namespace mac3d {

class LifecycleTracer final : public EventSink {
 public:
  struct Stamp {
    Stage stage;
    Cycle cycle;
  };

  /// One raw request's full stamped lifecycle.
  struct Record {
    ThreadId tid = 0;
    Tag tag = 0;
    std::uint32_t lane = 0;  ///< virtual track within the thread (trace only)
    bool has_lane = false;
    std::vector<Stamp> stamps;
  };

  /// Aggregated telemetry for one memory path (one begin_path window).
  struct PathTelemetry {
    std::string name;
    /// stage_latency[s] = distribution of (cycle at stage s) − (cycle at
    /// the previous stamped stage) — i.e. time *spent reaching* stage s.
    std::array<Histogram, kStageCount> stage_latency;
    /// End-to-end core_issue -> core_complete distribution.
    Histogram request_latency{40};
    std::uint64_t completed = 0;
    std::uint64_t merges = 0;
    /// Full records, retained only under keep_records(true) (tests).
    std::vector<Record> records;
  };

  LifecycleTracer() = default;
  ~LifecycleTracer() override;

  /// Start streaming Chrome trace-event JSON to `file`. Call before the
  /// first begin_path(). Returns false (and stays off) if the file cannot
  /// be opened.
  bool open_trace(const std::string& file);

  /// Retain completed Records in PathTelemetry::records (test hook).
  void keep_records(bool keep) noexcept { keep_records_ = keep; }

  /// Open a telemetry window for the named path; requests still open from
  /// the previous window are audited as in_flight_at_end (healthy partial
  /// lifecycle) or abandoned (broken one).
  void begin_path(std::string name);

  /// Close the current window and finish the trace file (emits the JSON
  /// footer). Idempotent; the destructor calls it as a safety net.
  void finish();

  // EventSink
  void on_stage(Stage stage, ThreadId tid, Tag tag, Cycle cycle) override;
  void on_merge(ThreadId tid, Tag tag, ThreadId leader_tid, Tag leader_tag,
                Cycle cycle) override;
  void on_hop(Hop hop, ThreadId tid, Tag tag, NodeId src, NodeId dest,
              Cycle cycle) override;

  /// Emit one Chrome counter-track sample (`"ph":"C"`): counter `name`,
  /// series `series`, value at simulated time `ts`. No-op unless a trace
  /// file is open. LatencyDecomposer renders per-stage residency with it.
  void emit_counter(std::string_view name, std::string_view series, Cycle ts,
                    std::uint64_t value);

  [[nodiscard]] const std::deque<PathTelemetry>& paths() const noexcept {
    return paths_;
  }
  /// Telemetry window for `name` (latest if repeated); null when absent.
  [[nodiscard]] const PathTelemetry* path(std::string_view name) const;

  // ---- Audit counters (all zero on a healthy run) ------------------------
  /// Stamps that ran backwards in cycle or stage order within a request.
  [[nodiscard]] std::uint64_t monotonicity_errors() const noexcept {
    return monotonicity_errors_;
  }
  /// Completed requests missing an entry stamp, queue_insert or
  /// response_match.
  [[nodiscard]] std::uint64_t completeness_errors() const noexcept {
    return completeness_errors_;
  }
  /// Requests whose window closed with a *broken* partial lifecycle (no
  /// entry stamp, or stamps out of order) — real errors, unlike
  /// in_flight_at_end().
  [[nodiscard]] std::uint64_t abandoned_records() const noexcept {
    return abandoned_records_;
  }
  /// Requests that were still legitimately in flight (healthy monotone
  /// prefix starting at an entry stage) when their window closed — normal
  /// for truncated/drain-cutoff runs, so not an audit failure.
  [[nodiscard]] std::uint64_t in_flight_at_end() const noexcept {
    return in_flight_at_end_;
  }
  /// Fabric hop events observed (4 per completed remote round trip).
  [[nodiscard]] std::uint64_t hop_events() const noexcept {
    return hop_events_;
  }

  [[nodiscard]] std::uint64_t completed_records() const noexcept {
    return completed_total_;
  }
  [[nodiscard]] std::size_t open_records() const noexcept {
    return open_.size();
  }
  [[nodiscard]] std::uint64_t trace_events_written() const noexcept {
    return events_written_;
  }

 private:
  struct LaneAlloc {
    std::vector<std::uint32_t> free;
    std::uint32_t next = 0;
  };

  void ensure_path();
  void close_window();
  void finalize_record(Record&& record);
  void audit(const Record& record);
  void emit_record(const Record& record);
  void emit_event(const std::string& json);
  void assign_lane(Record& record);
  void release_lane(const Record& record);
  [[nodiscard]] std::uint64_t node_track(unsigned node);
  [[nodiscard]] std::uint64_t chrome_tid(const Record& record) const;

  std::deque<PathTelemetry> paths_;
  PathTelemetry* current_ = nullptr;
  std::unordered_map<std::uint32_t, Record> open_;
  std::unordered_map<ThreadId, LaneAlloc> lanes_;
  /// Flow ids for in-flight fabric legs, keyed by (gid << 1) | leg so a
  /// send and its matching recv share one arrow even across tag reuse.
  struct PendingHop {
    std::uint64_t id;
    NodeId src;
    NodeId dest;
  };
  std::unordered_map<std::uint64_t, std::vector<PendingHop>> pending_hops_;
  std::vector<bool> node_tracks_named_;

  std::ofstream trace_out_;
  bool trace_open_ = false;
  bool finished_ = false;
  bool keep_records_ = false;
  std::uint64_t events_written_ = 0;
  std::uint64_t flow_ids_ = 0;

  std::uint64_t monotonicity_errors_ = 0;
  std::uint64_t completeness_errors_ = 0;
  std::uint64_t abandoned_records_ = 0;
  std::uint64_t in_flight_at_end_ = 0;
  std::uint64_t hop_events_ = 0;
  std::uint64_t completed_total_ = 0;
};

}  // namespace mac3d
