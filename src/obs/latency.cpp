#include "obs/latency.hpp"

#include <cstdio>

#include "common/json.hpp"
#include "obs/lifecycle.hpp"

namespace mac3d {

void LatencyDecomposer::on_stage(Stage stage, ThreadId tid, Tag tag,
                                 Cycle cycle) {
  OpenRequest& request = open_[request_gid(tid, tag)];
  const auto index = static_cast<std::size_t>(stage);
  if (!request.seen[index]) {
    request.seen[index] = true;
    request.stamp[index] = cycle;
  }
  if (tracer_ != nullptr) {
    if (request.any && resident_now_[request.latest] > 0) {
      --resident_now_[request.latest];
      emit_residency(request.latest, cycle);
    }
    if (stage != Stage::kCoreComplete) {
      ++resident_now_[index];
      emit_residency(index, cycle);
    }
  }
  request.latest = static_cast<std::uint8_t>(index);
  request.any = true;
  if (stage == Stage::kCoreComplete) {
    finalize(request);
    open_.erase(request_gid(tid, tag));
  }
  if (downstream_ != nullptr) downstream_->on_stage(stage, tid, tag, cycle);
}

void LatencyDecomposer::on_merge(ThreadId tid, Tag tag, ThreadId leader_tid,
                                 Tag leader_tag, Cycle cycle) {
  if (downstream_ != nullptr) {
    downstream_->on_merge(tid, tag, leader_tid, leader_tag, cycle);
  }
}

void LatencyDecomposer::on_hop(Hop hop, ThreadId tid, Tag tag, NodeId src,
                               NodeId dest, Cycle cycle) {
  if (downstream_ != nullptr) {
    downstream_->on_hop(hop, tid, tag, src, dest, cycle);
  }
}

void LatencyDecomposer::finalize(const OpenRequest& request) {
  ++completed_;
  std::size_t prev = kStageCount;
  std::size_t critical_stage = kStageCount;
  Cycle critical_delta = 0;
  bool any_segment = false;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    if (!request.seen[i]) continue;
    if (prev != kStageCount) {
      // Malformed (non-monotone) histories contribute a 0-cycle segment
      // rather than wrapping; the tracer's audit flags them separately.
      const Cycle delta = request.stamp[i] >= request.stamp[prev]
                              ? request.stamp[i] - request.stamp[prev]
                              : 0;
      residency_[prev].add(delta);
      if (!any_segment || delta > critical_delta) {
        critical_delta = delta;
        critical_stage = prev;
      }
      any_segment = true;
    }
    prev = i;
  }
  if (any_segment) ++critical_[critical_stage];
}

void LatencyDecomposer::emit_residency(std::size_t stage_index, Cycle cycle) {
  tracer_->emit_counter("stage_residency",
                        to_string(static_cast<Stage>(stage_index)), cycle,
                        resident_now_[stage_index]);
}

std::string LatencyDecomposer::to_json() const {
  std::string out = "{";
  out += "\"requests\": " + json_number(completed_);
  out += ", \"in_flight\": " +
         json_number(static_cast<std::uint64_t>(open_.size()));
  out += ", \"stages\": {";
  bool first = true;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const Histogram& hist = residency_[i];
    if (hist.count() == 0 && critical_[i] == 0) continue;
    if (!first) out += ", ";
    first = false;
    out += json_quote(to_string(static_cast<Stage>(i))) + ": {";
    out += "\"count\": " + json_number(hist.count());
    out += ", \"min\": " + json_number(hist.min_value());
    out += ", \"max\": " + json_number(hist.max_value());
    out += ", \"p50\": " + json_number(hist.quantile(0.50));
    out += ", \"p95\": " + json_number(hist.quantile(0.95));
    out += ", \"p99\": " + json_number(hist.quantile(0.99));
    out += ", \"critical\": " + json_number(critical_[i]);
    out += "}";
  }
  out += "}}";
  return out;
}

std::string LatencyDecomposer::to_table() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-16s %10s %8s %8s %8s %10s\n", "stage",
                "count", "p50", "p95", "p99", "critical");
  out += line;
  for (std::size_t i = 0; i < kStageCount; ++i) {
    const Histogram& hist = residency_[i];
    if (hist.count() == 0 && critical_[i] == 0) continue;
    const double share =
        completed_ == 0 ? 0.0
                        : 100.0 * static_cast<double>(critical_[i]) /
                              static_cast<double>(completed_);
    const std::string name{to_string(static_cast<Stage>(i))};
    std::snprintf(line, sizeof(line),
                  "%-16s %10llu %8llu %8llu %8llu %9.1f%%\n", name.c_str(),
                  static_cast<unsigned long long>(hist.count()),
                  static_cast<unsigned long long>(hist.quantile(0.50)),
                  static_cast<unsigned long long>(hist.quantile(0.95)),
                  static_cast<unsigned long long>(hist.quantile(0.99)),
                  share);
    out += line;
  }
  std::snprintf(line, sizeof(line), "%-16s %10llu completed requests\n",
                "total", static_cast<unsigned long long>(completed_));
  out += line;
  return out;
}

}  // namespace mac3d
