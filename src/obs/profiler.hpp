// Simulator self-profiling (docs/OBSERVABILITY.md §profiler): the
// idle-cycle census over every tickable component and the host-side
// wall-clock attribution for engine phases and parallel workers.
//
// The census is the measurement arm of the ROADMAP's event-driven
// fast-forward engine: it forces each component to expose the Activity
// oracle (`did_work_this_cycle` / `next_activity_cycle`) that engine will
// consume, and turns "most cycles are dead time" into per-component
// numbers. Census probes are evaluated only at serial points (the census
// owner observes once per simulated cycle), so serial and parallel
// engines produce byte-identical census exports.
//
// Host-time measurements (HostProfiler) are wall-clock and therefore
// nondeterministic by nature; they are quarantined in the report's
// `host` section, which report-diff skips by name.
#pragma once

#include <concepts>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace mac3d {

class MetricsRegistry;

/// Monotonic host wall clock in seconds. This is the only sanctioned
/// clock read in src/ (defined in profiler.cpp; det.wall_clock exempts
/// that one file) — everything else must consume its result so host time
/// stays quarantined from simulated time.
[[nodiscard]] double host_now_seconds();

/// The Activity concept every tickable component grows in this PR and the
/// event-driven engine will later consume: "did you do useful work at
/// cycle `now`?" plus "when is your next possible activity?" (0 = idle
/// forever, i.e. the component is drained).
template <typename T>
concept ActivityComponent = requires(const T& t, Cycle now) {
  { t.did_work_this_cycle(now) } -> std::convertible_to<bool>;
  { t.next_activity_cycle(now) } -> std::convertible_to<Cycle>;
};

/// Idle-cycle census: accumulates per-component active/idle cycle counts.
///
/// Components register a probe (or satisfy ActivityComponent); the run
/// owner calls observe(now) once per simulated cycle at a serial point.
/// Cycles the engine never visited (time skips) count as idle for every
/// component — the driver only skips cycles where provably no component
/// does work — unless the component registered a range probe: device
/// state like "bank busy until cycle c" is active during skipped spans
/// even though nothing ticks, and the range probe credits those cycles
/// exactly, so the event engine's census stays byte-identical to the
/// cycle engine's. The engine must call skip_to(next) BEFORE ticking the
/// landing cycle: the landing tick can raise busy thresholds, which
/// would falsely mark the skipped span active.
class ActivityCensus {
 public:
  using Probe = std::function<bool(Cycle)>;
  /// Active-cycle count over the inclusive span [first, last], evaluated
  /// against the component's current (frozen, mid-skip) state.
  using RangeProbe = std::function<std::uint64_t(Cycle, Cycle)>;

  struct Row {
    std::string name;
    std::uint64_t active_cycles = 0;
    std::uint64_t idle_cycles = 0;
  };

  /// Register a component under `name` with an explicit activity probe.
  /// Returns the component's census index.
  std::size_t add_component(std::string name, Probe probe);

  /// Register a component whose activity persists across skipped spans
  /// (threshold-form device state): `probe` answers visited cycles,
  /// `range` answers "how many cycles in [first, last] were active"
  /// for spans the event engine fast-forwards over.
  std::size_t add_component(std::string name, Probe probe, RangeProbe range);

  /// Register any ActivityComponent; the probe delegates to its
  /// did_work_this_cycle. The component must outlive the observed run
  /// (call seal() before it dies).
  template <ActivityComponent T>
  std::size_t add_component(std::string name, const T& component) {
    return add_component(std::move(name), [&component](Cycle now) {
      return component.did_work_this_cycle(now);
    });
  }

  /// Register a manually-marked component (the trace feeder has no tick
  /// of its own): mark_feeder(now) flags the current cycle as active.
  std::size_t add_feeder(std::string name);
  void mark_feeder(Cycle now) noexcept { feeder_marked_at_ = now; }

  /// Account one simulated cycle. Idempotent per cycle; a forward jump
  /// from the last observed cycle books the skipped cycles as idle for
  /// every component. Call only from serial points.
  void observe(Cycle now);

  /// Account the skipped span strictly before `next` (the event engine's
  /// landing cycle): every cycle after the last observed one and before
  /// `next` books via the component's range probe (all-idle without one).
  /// Must run before the landing cycle is ticked — range probes read the
  /// busy thresholds as frozen during the skip. The landing cycle itself
  /// is then accounted by the usual observe(next).
  void skip_to(Cycle next);

  /// Drop every probe, keeping the accumulated counts. Call before the
  /// probed components are destroyed (mirrors the SamplerWindow hazard:
  /// probes capture components by reference).
  void seal();

  /// Export `<name>.active_cycles` / `<name>.idle_cycles` counters.
  void export_metrics(MetricsRegistry& registry) const;

  [[nodiscard]] const std::vector<Row>& rows() const noexcept {
    return rows_;
  }
  [[nodiscard]] std::uint64_t observed_cycles() const noexcept {
    return observed_cycles_;
  }
  /// Idle fraction across all components (1.0 = everything always idle;
  /// 0 observed cycles reports 0.0).
  [[nodiscard]] double dead_time_fraction() const noexcept;

  /// Aligned text table: component, active, idle, dead-time fraction.
  [[nodiscard]] std::string to_table() const;
  /// Deterministic JSON object {"<name>":{"active_cycles":..,
  /// "idle_cycles":..},...} in registration order plus a summary.
  [[nodiscard]] std::string to_json() const;

 private:
  static constexpr std::size_t kNoFeeder = static_cast<std::size_t>(-1);

  std::vector<Row> rows_;
  std::vector<Probe> probes_;             // parallel to rows_ until seal()
  std::vector<RangeProbe> range_probes_;  // parallel to rows_ until seal()
  std::size_t feeder_index_ = kNoFeeder;
  Cycle feeder_marked_at_ = ~Cycle{0};
  bool observed_any_ = false;
  Cycle last_observed_ = 0;
  std::uint64_t observed_cycles_ = 0;
};

/// Engine phases the host profiler attributes wall-clock to.
enum class HostPhase : std::uint8_t {
  kTick = 0,    ///< component tick / shard execution
  kCommit,      ///< staged-state commit + telemetry mailbox flush
  kTelemetry,   ///< census observe + lifecycle/trace bookkeeping
  kSampler,     ///< cycle-sampler probe evaluation
};

inline constexpr std::size_t kHostPhaseCount = 4;

[[nodiscard]] constexpr std::string_view to_string(HostPhase phase) noexcept {
  switch (phase) {
    case HostPhase::kTick: return "tick";
    case HostPhase::kCommit: return "commit";
    case HostPhase::kTelemetry: return "telemetry";
    case HostPhase::kSampler: return "sampler";
  }
  return "?";
}

/// Wall-clock attribution for a run: per-phase totals plus per-worker
/// busy time under the parallel engine. All values are host seconds and
/// live only in the non-diffed `host` report section.
class HostProfiler {
 public:
  /// RAII phase timer. Null profiler => no clock read at all, so an
  /// unprofiled run never touches the host clock on the hot path.
  class Scope {
   public:
    Scope(HostProfiler* profiler, HostPhase phase)
        : profiler_(profiler),
          phase_(phase),
          start_(profiler == nullptr ? 0.0 : host_now_seconds()) {}
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (profiler_ != nullptr) {
        profiler_->add_phase_seconds(phase_, host_now_seconds() - start_);
      }
    }

   private:
    HostProfiler* profiler_;
    HostPhase phase_;
    double start_;
  };

  void add_phase_seconds(HostPhase phase, double seconds) noexcept {
    phase_seconds_[static_cast<std::size_t>(phase)] += seconds;
  }
  [[nodiscard]] double phase_seconds(HostPhase phase) const noexcept {
    return phase_seconds_[static_cast<std::size_t>(phase)];
  }

  /// Size the per-worker busy array. Call before the parallel phase
  /// starts; each index is then written by exactly one worker thread.
  void set_worker_count(std::size_t count) { worker_busy_.assign(count, 0.0); }
  void add_worker_busy(std::size_t index, double seconds) noexcept {
    if (index < worker_busy_.size()) worker_busy_[index] += seconds;
  }
  [[nodiscard]] const std::vector<double>& worker_busy() const noexcept {
    return worker_busy_;
  }
  /// max(busy) / mean(busy): 1.0 = perfectly balanced shards. 0 workers
  /// or an all-idle pool reports 0.0.
  [[nodiscard]] double worker_imbalance() const noexcept;

  /// JSON object for the report's `host` section:
  /// {"phase_seconds":{...},"workers":{"count":N,"busy_seconds":[...],
  /// "imbalance":X}}.
  [[nodiscard]] std::string to_json() const;
  /// Aligned text table of the same numbers.
  [[nodiscard]] std::string to_table() const;

 private:
  double phase_seconds_[kHostPhaseCount] = {};
  std::vector<double> worker_busy_;
};

}  // namespace mac3d
