#include "obs/registry.hpp"

#include "common/json.hpp"
#include "obs/run_report.hpp"

namespace mac3d {

MetricCounter& MetricsRegistry::counter(const std::string& name) {
  const auto it = counter_names_.find(name);
  if (it != counter_names_.end()) return *it->second;
  counters_.emplace_back();
  counter_names_.emplace(name, &counters_.back());
  return counters_.back();
}

MetricGauge& MetricsRegistry::gauge(const std::string& name) {
  const auto it = gauge_names_.find(name);
  if (it != gauge_names_.end()) return *it->second;
  gauges_.emplace_back();
  gauge_names_.emplace(name, &gauges_.back());
  return gauges_.back();
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::size_t buckets) {
  const auto it = histogram_names_.find(name);
  if (it != histogram_names_.end()) return *it->second;
  histograms_.emplace_back(buckets);
  histogram_names_.emplace(name, &histograms_.back());
  return histograms_.back();
}

void MetricsRegistry::merge(const MetricsRegistry& shard) {
  for (const auto& [name, metric] : shard.counter_names_) {
    counter(name).merge(*metric);
  }
  for (const auto& [name, metric] : shard.gauge_names_) {
    gauge(name).set(metric->get());
  }
  for (const auto& [name, metric] : shard.histogram_names_) {
    histogram(name, metric->buckets().size()).merge(*metric);
  }
}

void MetricsRegistry::collect(StatSet& out, const std::string& prefix) const {
  const std::string dot = prefix.empty() ? "" : prefix + ".";
  for (const auto& [name, metric] : counter_names_) {
    out.set(dot + name, static_cast<double>(metric->get()));
  }
  for (const auto& [name, metric] : gauge_names_) {
    out.set(dot + name, metric->get());
  }
  for (const auto& [name, metric] : histogram_names_) {
    out.set(dot + name + ".count", static_cast<double>(metric->count()));
    out.set(dot + name + ".p50", static_cast<double>(metric->quantile(0.5)));
    out.set(dot + name + ".max", static_cast<double>(metric->max_value()));
  }
}

std::string MetricsRegistry::to_json() const {
  // One pass over the union of the three sorted name maps keeps the output
  // globally name-sorted whatever order metrics were registered in.
  std::map<std::string, std::string> rendered;
  for (const auto& [name, metric] : counter_names_) {
    rendered.emplace(name, json_number(metric->get()));
  }
  for (const auto& [name, metric] : gauge_names_) {
    rendered.emplace(name, json_number(metric->get()));
  }
  for (const auto& [name, metric] : histogram_names_) {
    rendered.emplace(name, RunReport::histogram_json(*metric));
  }
  std::string out = "{";
  bool first = true;
  for (const auto& [name, json] : rendered) {
    if (!first) out += ',';
    first = false;
    out += "\n    " + json_quote(name) + ": " + json;
  }
  out += first ? "}" : "\n  }";
  return out;
}

}  // namespace mac3d
