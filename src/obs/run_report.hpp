// RunReport: assembles the machine-readable end-of-run artifact
// (`--report out.json`): config snapshot, seed/workload identity, per-path
// StatSets, per-stage latency histograms with quantiles, check-violation
// counts and wall-clock. Stable JSON: object keys appear in insertion
// order, path/stage sections sorted by name, numbers at full precision.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"

namespace mac3d {

class MetricsRegistry;

class RunReport {
 public:
  /// Schema identity stamped into every report. /2 added the optional
  /// "metrics" section (MetricsRegistry export); /3 added the optional
  /// "latency" (per-stage residency decomposition) and "host" (wall-clock
  /// attribution, exempt from diffing) sections; /4 added the optional
  /// "watchdog" section (stall-watchdog verdict) and the node_policies
  /// config key. Readers (report-diff) still accept /1 through /3.
  static constexpr std::string_view kSchema = "mac3d-run-report/4";
  static constexpr std::string_view kSchemaV3 = "mac3d-run-report/3";
  static constexpr std::string_view kSchemaV2 = "mac3d-run-report/2";
  static constexpr std::string_view kSchemaV1 = "mac3d-run-report/1";

  RunReport();

  // ---- Top-level fields (insertion order preserved) ----------------------
  void set_string(const std::string& key, std::string_view value);
  void set_number(const std::string& key, double value);
  void set_bool(const std::string& key, bool value);
  /// Set a pre-rendered JSON value (object/array/number) for `key`.
  void set_raw(const std::string& key, std::string json);

  /// Full config snapshot under "config" (SimConfig::to_kv round-trip).
  void set_config(const SimConfig& config);

  /// Snapshot a MetricsRegistry under "metrics" (sorted, deterministic —
  /// the /2 schema addition).
  void set_metrics(const MetricsRegistry& registry);

  /// Pre-rendered JSON object for the "latency" section (the /3 addition:
  /// LatencyDecomposer::to_json, or a {"<path>": {...}} wrapper of them).
  void set_latency(std::string json) { latency_json_ = std::move(json); }

  /// Pre-rendered JSON object for the "host" section (the /3 addition:
  /// HostProfiler::to_json). Wall-clock numbers only — report-diff skips
  /// this section by name, so it never gates a baseline.
  void set_host(std::string json) { host_json_ = std::move(json); }

  // ---- Per-path sections (rendered under "paths") ------------------------
  void set_path_stats(const std::string& path, const StatSet& stats);
  /// Attach one stage-latency histogram, e.g. stage "bank_access".
  void add_path_stage(const std::string& path, std::string_view stage,
                      const Histogram& hist);
  void set_path_request_latency(const std::string& path,
                                const Histogram& hist);

  /// Histogram -> JSON with count/min/max, p50/p90/p99 quantiles and the
  /// trimmed power-of-two bucket counts.
  [[nodiscard]] static std::string histogram_json(const Histogram& hist);

  [[nodiscard]] std::string to_json() const;
  bool write(const std::string& file) const;

 private:
  struct PathEntry {
    std::string name;
    std::string stats_json;
    std::string request_latency_json;
    std::vector<std::pair<std::string, std::string>> stages;
  };

  PathEntry& path_entry(const std::string& name);

  std::vector<std::pair<std::string, std::string>> fields_;
  std::string config_json_;
  std::string metrics_json_;
  std::string latency_json_;
  std::string host_json_;
  std::vector<PathEntry> paths_;
};

}  // namespace mac3d
