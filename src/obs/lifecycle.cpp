#include "obs/lifecycle.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/json.hpp"

namespace mac3d {
namespace {

constexpr std::uint32_t kMaxLanesPerThread = 256;

[[nodiscard]] std::uint32_t record_key(ThreadId tid, Tag tag) noexcept {
  return (static_cast<std::uint32_t>(tid) << 16) | tag;
}

[[nodiscard]] bool is_entry_stage(Stage stage) noexcept {
  return stage == Stage::kCoreIssue || stage == Stage::kRouterEnqueue;
}

}  // namespace

LifecycleTracer::~LifecycleTracer() { finish(); }

bool LifecycleTracer::open_trace(const std::string& file) {
  trace_out_.open(file, std::ios::out | std::ios::trunc);
  if (!trace_out_.is_open()) return false;
  trace_out_ << "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  trace_open_ = true;
  return true;
}

void LifecycleTracer::ensure_path() {
  if (current_ == nullptr) begin_path("default");
}

void LifecycleTracer::begin_path(std::string name) {
  // Requests the previous window never completed are audit failures, not
  // state to carry over.
  abandoned_records_ += open_.size();
  for (auto& [key, record] : open_) release_lane(record);
  open_.clear();
  lanes_.clear();

  paths_.emplace_back();
  current_ = &paths_.back();
  current_->name = std::move(name);

  if (trace_open_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%zu,\"name\":\"process_name\","
                  "\"args\":{\"name\":\"%s\"}}",
                  paths_.size(), json_escape(current_->name).c_str());
    emit_event(buf);
  }
}

void LifecycleTracer::finish() {
  if (finished_) return;
  abandoned_records_ += open_.size();
  open_.clear();
  lanes_.clear();
  if (trace_open_) {
    trace_out_ << "\n]}\n";
    trace_out_.close();
    trace_open_ = false;
  }
  finished_ = true;
}

void LifecycleTracer::on_stage(Stage stage, ThreadId tid, Tag tag,
                               Cycle cycle) {
  ensure_path();
  const std::uint32_t key = record_key(tid, tag);
  auto it = open_.find(key);
  if (it == open_.end()) {
    Record record;
    record.tid = tid;
    record.tag = tag;
    record.stamps.push_back({stage, cycle});
    assign_lane(record);
    it = open_.emplace(key, std::move(record)).first;
  } else {
    it->second.stamps.push_back({stage, cycle});
  }
  if (stage == Stage::kCoreComplete) {
    Record record = std::move(it->second);
    open_.erase(it);
    finalize_record(std::move(record));
  }
}

void LifecycleTracer::on_merge(ThreadId tid, Tag tag, ThreadId leader_tid,
                               Tag leader_tag, Cycle cycle) {
  ensure_path();
  ++current_->merges;
  if (!trace_open_) return;
  const auto merged = open_.find(record_key(tid, tag));
  const auto leader = open_.find(record_key(leader_tid, leader_tag));
  if (merged == open_.end() || leader == open_.end()) return;
  if (!merged->second.has_lane || !leader->second.has_lane) return;
  const std::uint64_t id = ++flow_ids_;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"s\",\"cat\":\"merge\",\"name\":\"merge\","
                "\"id\":%" PRIu64 ",\"pid\":%zu,\"tid\":%" PRIu64
                ",\"ts\":%" PRIu64 "}",
                id, paths_.size(), chrome_tid(merged->second), cycle);
  emit_event(buf);
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"merge\",\"name\":"
                "\"merge\",\"id\":%" PRIu64 ",\"pid\":%zu,\"tid\":%" PRIu64
                ",\"ts\":%" PRIu64 "}",
                id, paths_.size(), chrome_tid(leader->second), cycle);
  emit_event(buf);
}

void LifecycleTracer::finalize_record(Record&& record) {
  audit(record);

  auto& path = *current_;
  const auto& stamps = record.stamps;
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    if (stamps[i].cycle >= stamps[i - 1].cycle) {
      path.stage_latency[static_cast<std::size_t>(stamps[i].stage)].add(
          stamps[i].cycle - stamps[i - 1].cycle);
    }
  }
  if (stamps.back().cycle >= stamps.front().cycle) {
    path.request_latency.add(stamps.back().cycle - stamps.front().cycle);
  }
  ++path.completed;
  ++completed_total_;

  if (trace_open_) emit_record(record);
  release_lane(record);
  if (keep_records_) path.records.push_back(std::move(record));
}

void LifecycleTracer::audit(const Record& record) {
  const auto& stamps = record.stamps;
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    if (stamps[i].cycle < stamps[i - 1].cycle ||
        static_cast<int>(stamps[i].stage) <=
            static_cast<int>(stamps[i - 1].stage)) {
      ++monotonicity_errors_;
    }
  }
  const bool has_insert =
      std::any_of(stamps.begin(), stamps.end(), [](const Stamp& s) {
        return s.stage == Stage::kQueueInsert;
      });
  const bool has_match =
      std::any_of(stamps.begin(), stamps.end(), [](const Stamp& s) {
        return s.stage == Stage::kResponseMatch;
      });
  if (!is_entry_stage(stamps.front().stage) || !has_insert || !has_match ||
      stamps.back().stage != Stage::kCoreComplete) {
    ++completeness_errors_;
  }
}

void LifecycleTracer::assign_lane(Record& record) {
  if (!trace_open_) return;
  auto& lanes = lanes_[record.tid];
  if (!lanes.free.empty()) {
    record.lane = lanes.free.back();
    lanes.free.pop_back();
  } else {
    record.lane = lanes.next++;
    if (record.lane < kMaxLanesPerThread) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"M\",\"pid\":%zu,\"tid\":%" PRIu64
                    ",\"name\":\"thread_name\",\"args\":{\"name\":\"t%u.%u\"}}",
                    paths_.size(),
                    (static_cast<std::uint64_t>(record.tid) << 8) | record.lane,
                    static_cast<unsigned>(record.tid),
                    static_cast<unsigned>(record.lane));
      emit_event(buf);
    }
  }
  record.has_lane = true;
}

void LifecycleTracer::release_lane(const Record& record) {
  if (!record.has_lane) return;
  lanes_[record.tid].free.push_back(record.lane);
}

std::uint64_t LifecycleTracer::chrome_tid(const Record& record) const {
  // Per-thread virtual lanes: one Perfetto track per concurrently open
  // request of a thread. Lanes past kMaxLanesPerThread share the last
  // track (cosmetic only; B/E events still balance).
  const std::uint32_t lane = std::min(record.lane, kMaxLanesPerThread - 1);
  return (static_cast<std::uint64_t>(record.tid) << 8) | lane;
}

void LifecycleTracer::emit_record(const Record& record) {
  const auto& stamps = record.stamps;
  const std::uint64_t tid = chrome_tid(record);
  const std::size_t pid = paths_.size();
  char buf[224];
  // Enclosing request slice spanning the whole lifecycle.
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"B\",\"cat\":\"request\",\"name\":\"t%u#%u\","
                "\"pid\":%zu,\"tid\":%" PRIu64 ",\"ts\":%" PRIu64
                ",\"args\":{\"tid\":%u,\"tag\":%u}}",
                static_cast<unsigned>(record.tid),
                static_cast<unsigned>(record.tag), pid, tid,
                stamps.front().cycle, static_cast<unsigned>(record.tid),
                static_cast<unsigned>(record.tag));
  emit_event(buf);
  // One nested slice per inter-stage segment (zero-length segments are
  // elided: at this resolution they carry no information).
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    if (stamps[i].cycle <= stamps[i - 1].cycle) continue;
    const std::string_view name = to_string(stamps[i].stage);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"B\",\"cat\":\"stage\",\"name\":\"%.*s\","
                  "\"pid\":%zu,\"tid\":%" PRIu64 ",\"ts\":%" PRIu64 "}",
                  static_cast<int>(name.size()), name.data(), pid, tid,
                  stamps[i - 1].cycle);
    emit_event(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"E\",\"pid\":%zu,\"tid\":%" PRIu64
                  ",\"ts\":%" PRIu64 "}",
                  pid, tid, stamps[i].cycle);
    emit_event(buf);
  }
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"E\",\"pid\":%zu,\"tid\":%" PRIu64 ",\"ts\":%" PRIu64
                "}",
                pid, tid, stamps.back().cycle);
  emit_event(buf);
}

void LifecycleTracer::emit_event(const std::string& json) {
  if (events_written_ != 0) trace_out_ << ",\n";
  trace_out_ << json;
  ++events_written_;
}

const LifecycleTracer::PathTelemetry* LifecycleTracer::path(
    std::string_view name) const {
  for (auto it = paths_.rbegin(); it != paths_.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

}  // namespace mac3d
