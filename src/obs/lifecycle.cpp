#include "obs/lifecycle.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/json.hpp"

namespace mac3d {
namespace {

constexpr std::uint32_t kMaxLanesPerThread = 256;

[[nodiscard]] std::uint32_t record_key(ThreadId tid, Tag tag) noexcept {
  static_assert(sizeof(ThreadId) * 8 <= 16 && sizeof(Tag) * 8 <= 16,
                "record_key packs (tid, tag) into 16-bit lanes");
  return (static_cast<std::uint32_t>(tid) << 16) | tag;
}

[[nodiscard]] bool is_entry_stage(Stage stage) noexcept {
  return stage == Stage::kCoreIssue || stage == Stage::kRouterEnqueue;
}

}  // namespace

LifecycleTracer::~LifecycleTracer() { finish(); }

bool LifecycleTracer::open_trace(const std::string& file) {
  trace_out_.open(file, std::ios::out | std::ios::trunc);
  if (!trace_out_.is_open()) return false;
  trace_out_ << "{\"displayTimeUnit\":\"ms\",\n\"traceEvents\":[\n";
  trace_open_ = true;
  return true;
}

void LifecycleTracer::ensure_path() {
  if (current_ == nullptr) begin_path("default");
}

void LifecycleTracer::close_window() {
  // Requests still open when a window closes fall into two buckets: a
  // healthy monotone prefix that simply had not completed by the drain
  // cutoff (normal for truncated runs — in_flight_at_end), versus a
  // genuinely broken partial lifecycle (abandoned — an audit failure).
  for (auto& [key, record] : open_) {
    const auto& stamps = record.stamps;
    bool healthy = !stamps.empty() && is_entry_stage(stamps.front().stage);
    for (std::size_t i = 1; healthy && i < stamps.size(); ++i) {
      if (stamps[i].cycle < stamps[i - 1].cycle ||
          static_cast<int>(stamps[i].stage) <=
              static_cast<int>(stamps[i - 1].stage)) {
        healthy = false;
      }
    }
    if (healthy) {
      ++in_flight_at_end_;
    } else {
      ++abandoned_records_;
    }
    release_lane(record);
  }
  open_.clear();
  lanes_.clear();
  pending_hops_.clear();
  node_tracks_named_.clear();  // track-name metadata is per-window pid
}

void LifecycleTracer::begin_path(std::string name) {
  close_window();

  paths_.emplace_back();
  current_ = &paths_.back();
  current_->name = std::move(name);

  if (trace_open_) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%zu,\"name\":\"process_name\","
                  "\"args\":{\"name\":\"%s\"}}",
                  paths_.size(), json_escape(current_->name).c_str());
    emit_event(buf);
  }
}

void LifecycleTracer::finish() {
  if (finished_) return;
  close_window();
  if (trace_open_) {
    trace_out_ << "\n]}\n";
    trace_out_.close();
    trace_open_ = false;
  }
  finished_ = true;
}

void LifecycleTracer::on_stage(Stage stage, ThreadId tid, Tag tag,
                               Cycle cycle) {
  ensure_path();
  const std::uint32_t key = record_key(tid, tag);
  auto it = open_.find(key);
  if (it == open_.end()) {
    Record record;
    record.tid = tid;
    record.tag = tag;
    record.stamps.push_back({stage, cycle});
    assign_lane(record);
    it = open_.emplace(key, std::move(record)).first;
  } else {
    it->second.stamps.push_back({stage, cycle});
  }
  if (stage == Stage::kCoreComplete) {
    Record record = std::move(it->second);
    open_.erase(it);
    finalize_record(std::move(record));
  }
}

void LifecycleTracer::on_merge(ThreadId tid, Tag tag, ThreadId leader_tid,
                               Tag leader_tag, Cycle cycle) {
  ensure_path();
  ++current_->merges;
  if (!trace_open_) return;
  const auto merged = open_.find(record_key(tid, tag));
  const auto leader = open_.find(record_key(leader_tid, leader_tag));
  if (merged == open_.end() || leader == open_.end()) return;
  if (!merged->second.has_lane || !leader->second.has_lane) return;
  const std::uint64_t id = ++flow_ids_;
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"s\",\"cat\":\"merge\",\"name\":\"merge\","
                "\"id\":%" PRIu64 ",\"pid\":%zu,\"tid\":%" PRIu64
                ",\"ts\":%" PRIu64 "}",
                id, paths_.size(), chrome_tid(merged->second), cycle);
  emit_event(buf);
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"f\",\"bp\":\"e\",\"cat\":\"merge\",\"name\":"
                "\"merge\",\"id\":%" PRIu64 ",\"pid\":%zu,\"tid\":%" PRIu64
                ",\"ts\":%" PRIu64 "}",
                id, paths_.size(), chrome_tid(leader->second), cycle);
  emit_event(buf);
}

void LifecycleTracer::on_hop(Hop hop, ThreadId tid, Tag tag, NodeId src,
                             NodeId dest, Cycle cycle) {
  ensure_path();
  ++hop_events_;
  if (!trace_open_) return;

  // Pair each send with its matching recv through a per-(gid, leg) queue:
  // the send mints a flow id, the recv consumes it, and the two events
  // render as one s -> f arrow between the two node tracks.
  const bool is_send = hop == Hop::kRequestSend || hop == Hop::kResponseSend;
  const std::uint64_t leg =
      (hop == Hop::kRequestSend || hop == Hop::kRequestRecv) ? 0 : 1;
  const std::uint64_t flow_key =
      (static_cast<std::uint64_t>(request_gid(tid, tag)) << 1) | leg;
  std::uint64_t id = 0;
  if (is_send) {
    id = ++flow_ids_;
    pending_hops_[flow_key].push_back({id, src, dest});
  } else {
    auto pending = pending_hops_.find(flow_key);
    if (pending == pending_hops_.end() || pending->second.empty()) return;
    const PendingHop& sent = pending->second.front();
    id = sent.id;
    // The send endpoint knows the true link; recv stampers may only know
    // the node they observed at (src == dest there).
    src = sent.src;
    dest = sent.dest;
    pending->second.erase(pending->second.begin());
    if (pending->second.empty()) pending_hops_.erase(pending);
  }

  // Anchor each flow endpoint in a one-cycle slice on the observing node's
  // fabric track — Perfetto binds s/f events to an enclosing slice, so the
  // anchors are what make the arrow render (across node tracks, since the
  // send anchors on `src` and the recv on `dest`).
  const unsigned node = static_cast<unsigned>(is_send ? src : dest);
  const std::uint64_t track = node_track(node);
  const std::size_t pid = paths_.size();
  const std::string_view hop_name = to_string(hop);
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"X\",\"cat\":\"hop\",\"name\":\"%.*s n%u-n%u\","
                "\"pid\":%zu,\"tid\":%" PRIu64 ",\"ts\":%" PRIu64
                ",\"dur\":1,\"args\":{\"tid\":%u,\"tag\":%u}}",
                static_cast<int>(hop_name.size()), hop_name.data(),
                static_cast<unsigned>(src), static_cast<unsigned>(dest), pid,
                track, cycle, static_cast<unsigned>(tid),
                static_cast<unsigned>(tag));
  emit_event(buf);
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"%c\",%s\"cat\":\"hop\",\"name\":\"n%u-n%u\","
                "\"id\":%" PRIu64 ",\"pid\":%zu,\"tid\":%" PRIu64
                ",\"ts\":%" PRIu64 "}",
                is_send ? 's' : 'f', is_send ? "" : "\"bp\":\"e\",",
                static_cast<unsigned>(src), static_cast<unsigned>(dest), id,
                pid, track, cycle);
  emit_event(buf);
}

void LifecycleTracer::finalize_record(Record&& record) {
  audit(record);

  auto& path = *current_;
  const auto& stamps = record.stamps;
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    if (stamps[i].cycle >= stamps[i - 1].cycle) {
      path.stage_latency[static_cast<std::size_t>(stamps[i].stage)].add(
          stamps[i].cycle - stamps[i - 1].cycle);
    }
  }
  if (stamps.back().cycle >= stamps.front().cycle) {
    path.request_latency.add(stamps.back().cycle - stamps.front().cycle);
  }
  ++path.completed;
  ++completed_total_;

  if (trace_open_) emit_record(record);
  release_lane(record);
  if (keep_records_) path.records.push_back(std::move(record));
}

void LifecycleTracer::audit(const Record& record) {
  const auto& stamps = record.stamps;
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    if (stamps[i].cycle < stamps[i - 1].cycle ||
        static_cast<int>(stamps[i].stage) <=
            static_cast<int>(stamps[i - 1].stage)) {
      ++monotonicity_errors_;
    }
  }
  const bool has_insert =
      std::any_of(stamps.begin(), stamps.end(), [](const Stamp& s) {
        return s.stage == Stage::kQueueInsert;
      });
  const bool has_match =
      std::any_of(stamps.begin(), stamps.end(), [](const Stamp& s) {
        return s.stage == Stage::kResponseMatch;
      });
  if (!is_entry_stage(stamps.front().stage) || !has_insert || !has_match ||
      stamps.back().stage != Stage::kCoreComplete) {
    ++completeness_errors_;
  }
}

void LifecycleTracer::assign_lane(Record& record) {
  if (!trace_open_) return;
  auto& lanes = lanes_[record.tid];
  if (!lanes.free.empty()) {
    record.lane = lanes.free.back();
    lanes.free.pop_back();
  } else {
    record.lane = lanes.next++;
    if (record.lane < kMaxLanesPerThread) {
      char buf[160];
      std::snprintf(buf, sizeof(buf),
                    "{\"ph\":\"M\",\"pid\":%zu,\"tid\":%" PRIu64
                    ",\"name\":\"thread_name\",\"args\":{\"name\":\"t%u.%u\"}}",
                    paths_.size(),
                    (static_cast<std::uint64_t>(record.tid) << 8) | record.lane,
                    static_cast<unsigned>(record.tid),
                    static_cast<unsigned>(record.lane));
      emit_event(buf);
    }
  }
  record.has_lane = true;
}

void LifecycleTracer::release_lane(const Record& record) {
  if (!record.has_lane) return;
  lanes_[record.tid].free.push_back(record.lane);
}

std::uint64_t LifecycleTracer::node_track(unsigned node) {
  // Per-node fabric tracks live above every per-thread lane track:
  // chrome_tid() maxes out at (2^16 - 1) << 8 | 255 < 2^24.
  constexpr std::uint64_t kNodeTrackBase = 1ull << 24;
  if (node_tracks_named_.size() <= node) node_tracks_named_.resize(node + 1);
  if (!node_tracks_named_[node]) {
    node_tracks_named_[node] = true;
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"M\",\"pid\":%zu,\"tid\":%" PRIu64
                  ",\"name\":\"thread_name\",\"args\":{\"name\":"
                  "\"node%u.fabric\"}}",
                  paths_.size(), kNodeTrackBase + node, node);
    emit_event(buf);
  }
  return kNodeTrackBase + node;
}

std::uint64_t LifecycleTracer::chrome_tid(const Record& record) const {
  // Per-thread virtual lanes: one Perfetto track per concurrently open
  // request of a thread. Lanes past kMaxLanesPerThread share the last
  // track (cosmetic only; B/E events still balance).
  const std::uint32_t lane = std::min(record.lane, kMaxLanesPerThread - 1);
  return (static_cast<std::uint64_t>(record.tid) << 8) | lane;
}

void LifecycleTracer::emit_record(const Record& record) {
  const auto& stamps = record.stamps;
  const std::uint64_t tid = chrome_tid(record);
  const std::size_t pid = paths_.size();
  char buf[224];
  // Enclosing request slice spanning the whole lifecycle.
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"B\",\"cat\":\"request\",\"name\":\"t%u#%u\","
                "\"pid\":%zu,\"tid\":%" PRIu64 ",\"ts\":%" PRIu64
                ",\"args\":{\"tid\":%u,\"tag\":%u}}",
                static_cast<unsigned>(record.tid),
                static_cast<unsigned>(record.tag), pid, tid,
                stamps.front().cycle, static_cast<unsigned>(record.tid),
                static_cast<unsigned>(record.tag));
  emit_event(buf);
  // One nested slice per inter-stage segment (zero-length segments are
  // elided: at this resolution they carry no information).
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    if (stamps[i].cycle <= stamps[i - 1].cycle) continue;
    const std::string_view name = to_string(stamps[i].stage);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"B\",\"cat\":\"stage\",\"name\":\"%.*s\","
                  "\"pid\":%zu,\"tid\":%" PRIu64 ",\"ts\":%" PRIu64 "}",
                  static_cast<int>(name.size()), name.data(), pid, tid,
                  stamps[i - 1].cycle);
    emit_event(buf);
    std::snprintf(buf, sizeof(buf),
                  "{\"ph\":\"E\",\"pid\":%zu,\"tid\":%" PRIu64
                  ",\"ts\":%" PRIu64 "}",
                  pid, tid, stamps[i].cycle);
    emit_event(buf);
  }
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"E\",\"pid\":%zu,\"tid\":%" PRIu64 ",\"ts\":%" PRIu64
                "}",
                pid, tid, stamps.back().cycle);
  emit_event(buf);
}

void LifecycleTracer::emit_counter(std::string_view name,
                                   std::string_view series, Cycle ts,
                                   std::uint64_t value) {
  if (!trace_open_) return;
  ensure_path();
  char buf[224];
  std::snprintf(buf, sizeof(buf),
                "{\"ph\":\"C\",\"cat\":\"latency\",\"name\":\"%.*s\","
                "\"pid\":%zu,\"ts\":%" PRIu64 ",\"args\":{\"%.*s\":%" PRIu64
                "}}",
                static_cast<int>(name.size()), name.data(), paths_.size(), ts,
                static_cast<int>(series.size()), series.data(), value);
  emit_event(buf);
}

void LifecycleTracer::emit_event(const std::string& json) {
  if (events_written_ != 0) trace_out_ << ",\n";
  trace_out_ << json;
  ++events_written_;
}

const LifecycleTracer::PathTelemetry* LifecycleTracer::path(
    std::string_view name) const {
  for (auto it = paths_.rbegin(); it != paths_.rend(); ++it) {
    if (it->name == name) return &*it;
  }
  return nullptr;
}

}  // namespace mac3d
