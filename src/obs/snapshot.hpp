// Streaming telemetry (docs/OBSERVABILITY.md §streaming snapshots): the
// SnapshotStreamer samples registered counter/gauge probes and the
// activity census at fixed cycle boundaries during a run and accumulates
// a delta-encoded JSONL document (`mac3d-snapshot/1`), one line per
// elapsed window — the in-run view the end-of-run exports cannot give.
//
// Determinism contract: snapshot boundaries are mandatory landing cycles
// for the event engines. Engines clamp their fast-forward target with
// next_boundary(now) so no boundary ever falls inside a skipped span,
// then credit the skip to the census/samplers as usual; the streamer is
// advanced at the same serial point as the CycleSampler. Because every
// engine therefore evaluates every probe at exactly the same cycles with
// exactly the same component state, the JSONL stream is byte-identical
// across serial/parallel/event/event-parallel — tests/test_snapshot.cpp
// enforces the 4-way equality.
//
// The StallWatchdog rides the same windows: it watches the reserved
// `completions` counter and the derived in-flight count, and fires after
// N consecutive observed windows with zero completions while work is in
// flight — the structured no-progress detector for livelocked runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/types.hpp"

namespace mac3d {

class ActivityCensus;
class MetricsRegistry;

/// No-progress detector over snapshot windows: a streak of `threshold`
/// consecutive observed windows with zero completions while requests are
/// in flight latches the fired state (and the cycle it fired at). Any
/// window with progress — or with nothing in flight — resets the streak.
class StallWatchdog {
 public:
  explicit StallWatchdog(std::uint64_t threshold_windows)
      : threshold_(threshold_windows == 0 ? 1 : threshold_windows) {}

  /// Account one sampled window. Idempotent latch: once fired, later
  /// windows are still counted but cannot un-fire it.
  void observe_window(Cycle boundary, std::uint64_t completions_delta,
                      std::uint64_t in_flight);

  [[nodiscard]] bool fired() const noexcept { return fired_; }
  [[nodiscard]] Cycle fired_at() const noexcept { return fired_at_; }
  /// Current zero-progress streak (latched at its firing value once the
  /// watchdog trips).
  [[nodiscard]] std::uint64_t stalled_windows() const noexcept {
    return stalled_windows_;
  }
  [[nodiscard]] std::uint64_t windows_observed() const noexcept {
    return windows_observed_;
  }
  [[nodiscard]] std::uint64_t threshold() const noexcept { return threshold_; }

  /// JSON object for the run report's `watchdog` section:
  /// {"fired":true,"fired_at_cycle":..,"stalled_windows":..,
  ///  "threshold_windows":..,"windows_observed":..}.
  [[nodiscard]] std::string to_json() const;

 private:
  std::uint64_t threshold_;
  std::uint64_t stalled_windows_ = 0;
  std::uint64_t windows_observed_ = 0;
  bool fired_ = false;
  Cycle fired_at_ = 0;
};

/// Windowed snapshot streamer. Lifecycle mirrors CycleSampler: the run
/// owner begins a run, registers probes (which capture references into
/// the live pipeline and are dropped at end_run/abort_run), advances the
/// streamer once per serial point, and ends the run at the makespan —
/// rows == ceil(makespan / period), the tail window sampled at the
/// makespan itself.
class SnapshotStreamer {
 public:
  /// Monotonic cumulative counter (requests injected, bytes moved);
  /// windows emit the per-window delta, zero deltas omitted.
  using CounterProbe = std::function<std::uint64_t()>;
  /// Point-in-time gauge (queue occupancy); windows emit the absolute
  /// value at the boundary cycle.
  using GaugeProbe = std::function<double()>;

  /// Counter names with schema-level meaning: `injected` and
  /// `completions` feed the derived in-flight count and the watchdog.
  static constexpr const char* kInjectedCounter = "injected";
  static constexpr const char* kCompletionsCounter = "completions";

  explicit SnapshotStreamer(Cycle period)
      : period_(period == 0 ? 1 : period) {}

  /// Open a run. Emits the stream header (first run only) and the run
  /// marker line; clears the probe registry.
  void begin_run(std::string label);

  /// Register probes for the current run. Registration order is
  /// irrelevant: windows emit name-sorted objects.
  void add_counter(std::string name, CounterProbe probe);
  void add_gauge(std::string name, GaugeProbe probe);

  /// Attach the run's census: windows then carry each component's
  /// active-cycle delta (zero deltas omitted). The census must outlive
  /// the run (the same object the engine observes at serial points).
  void attach_census(const ActivityCensus* census) { census_ = census; }

  /// Attach a watchdog fed from every sampled window. The streamer emits
  /// a `watchdog` line the window it fires; the engine polls
  /// watchdog_fired() at serial points to abandon the run.
  void attach_watchdog(StallWatchdog* watchdog) { watchdog_ = watchdog; }

  /// First unsampled boundary strictly after `now` — the event engines'
  /// mandatory landing cycle (clamp the fast-forward target to this so a
  /// boundary never falls inside a skipped span).
  [[nodiscard]] Cycle next_boundary(Cycle now) const noexcept {
    return next_boundary_ > now ? next_boundary_ : now + 1;
  }

  /// Emit every window boundary <= now (call once per serial point,
  /// after the census observes the cycle).
  void advance_to(Cycle now);

  /// Flush the tail windows through `makespan` (last row sampled at the
  /// makespan itself), emit the run footer, drop the probes.
  void end_run(Cycle makespan);

  /// Drop the probes without flushing (exception unwind: the probed
  /// objects are about to die).
  void abort_run() noexcept;

  [[nodiscard]] bool watchdog_fired() const noexcept {
    return watchdog_ != nullptr && watchdog_->fired();
  }

  [[nodiscard]] Cycle period() const noexcept { return period_; }
  /// Windows emitted across all runs.
  [[nodiscard]] std::uint64_t window_count() const noexcept {
    return windows_;
  }

  /// Export `window.*` / `watchdog.*` metric families (counts only —
  /// the time series itself lives in the JSONL document).
  void export_metrics(MetricsRegistry& registry) const;

  /// The accumulated JSONL document (schema `mac3d-snapshot/1`).
  [[nodiscard]] const std::string& str() const noexcept { return out_; }
  bool write(const std::string& file) const;

 private:
  void sample_boundary(Cycle boundary);

  Cycle period_;
  Cycle next_boundary_ = 0;
  bool running_ = false;
  bool header_written_ = false;
  std::string run_label_;
  std::uint64_t windows_ = 0;
  std::uint64_t run_windows_ = 0;

  struct Counter {
    std::string name;
    CounterProbe probe;
    std::uint64_t last = 0;
  };
  struct Gauge {
    std::string name;
    GaugeProbe probe;
  };
  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  const ActivityCensus* census_ = nullptr;
  std::vector<std::uint64_t> census_last_;
  StallWatchdog* watchdog_ = nullptr;
  std::uint64_t injected_total_ = 0;
  std::uint64_t completions_total_ = 0;

  std::string out_;
};

}  // namespace mac3d
