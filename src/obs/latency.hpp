// LatencyDecomposer: per-stage latency decomposition over the lifecycle
// event stream (docs/OBSERVABILITY.md §latency decomposition).
//
// Sits in front of any EventSink (usually the LifecycleTracer) as a
// transparent tee: it records per-request stage stamps, and on completion
// attributes the delta between consecutive stamped stages to the earlier
// stage's *residency* histogram — i.e. time spent *in* a stage, the dual
// of LifecycleTracer's "time spent reaching" view — plus a per-request
// critical-stage attribution (the stage the request spent longest in;
// earliest stage wins ties). With a tracer attached it also streams
// per-stage resident-request counts as Perfetto counter tracks.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/stats.hpp"
#include "obs/obs.hpp"

namespace mac3d {

class LifecycleTracer;

class LatencyDecomposer final : public EventSink {
 public:
  /// Every event is recorded, then forwarded verbatim to `downstream`
  /// (nullable): chain the decomposer in front of the tracer.
  explicit LatencyDecomposer(EventSink* downstream = nullptr)
      : downstream_(downstream) {}

  /// Stream per-stage resident-request counts into `tracer`'s trace file
  /// as Chrome counter events. Attach before the run; pass nullptr to
  /// detach.
  void attach_trace(LifecycleTracer* tracer) noexcept { tracer_ = tracer; }

  // EventSink
  void on_stage(Stage stage, ThreadId tid, Tag tag, Cycle cycle) override;
  void on_merge(ThreadId tid, Tag tag, ThreadId leader_tid, Tag leader_tag,
                Cycle cycle) override;
  void on_hop(Hop hop, ThreadId tid, Tag tag, NodeId src, NodeId dest,
              Cycle cycle) override;

  [[nodiscard]] std::uint64_t completed_requests() const noexcept {
    return completed_;
  }
  [[nodiscard]] std::uint64_t open_requests() const noexcept {
    return open_.size();
  }
  /// Residency distribution for `stage`: cycles between this stage's
  /// stamp and the next stamped stage, over completed requests.
  [[nodiscard]] const Histogram& stage_residency(Stage stage) const noexcept {
    return residency_[static_cast<std::size_t>(stage)];
  }
  /// Completed requests whose longest residency was in `stage`.
  [[nodiscard]] std::uint64_t critical_count(Stage stage) const noexcept {
    return critical_[static_cast<std::size_t>(stage)];
  }

  /// Deterministic JSON object for the report's `latency` section:
  /// {"requests":N,"in_flight":M,"stages":{"<stage>":{"count","min",
  /// "max","p50","p95","p99","critical"},...}} in enum (pipeline) order,
  /// stages with no samples elided.
  [[nodiscard]] std::string to_json() const;
  /// Aligned text table: stage, count, p50/p95/p99, critical share.
  [[nodiscard]] std::string to_table() const;

 private:
  struct OpenRequest {
    std::array<Cycle, kStageCount> stamp{};
    std::array<bool, kStageCount> seen{};
    std::uint8_t latest = 0;
    bool any = false;
  };

  void finalize(const OpenRequest& request);
  void emit_residency(std::size_t stage_index, Cycle cycle);

  EventSink* downstream_ = nullptr;
  LifecycleTracer* tracer_ = nullptr;
  std::unordered_map<RequestGid, OpenRequest> open_;  // find/erase only
  std::array<Histogram, kStageCount> residency_;
  std::array<std::uint64_t, kStageCount> critical_{};
  std::array<std::uint64_t, kStageCount> resident_now_{};
  std::uint64_t completed_ = 0;
};

}  // namespace mac3d
