#include "sim/driver.hpp"

#include <algorithm>
#include <limits>
#include <vector>

#include <memory>

#include "cache/mshr.hpp"
#include "check/check.hpp"
#include "mac/coalescer.hpp"
#include "mac/warp_coalescer.hpp"
#include "mem/hmc_device.hpp"
#include "obs/obs.hpp"
#include "obs/profiler.hpp"
#include "obs/sampler.hpp"
#include "obs/snapshot.hpp"
#include "sim/parallel.hpp"
#include "sim/raw_path.hpp"
#include "sim/tag_allocator.hpp"

namespace mac3d {

void DriverResult::collect(StatSet& out, const std::string& prefix) const {
  out.set(prefix + ".makespan_cycles", static_cast<double>(makespan));
  out.set(prefix + ".raw_requests", static_cast<double>(raw_requests));
  out.set(prefix + ".packets", static_cast<double>(packets));
  out.set(prefix + ".completions", static_cast<double>(completions));
  out.set(prefix + ".bank_conflicts", static_cast<double>(bank_conflicts));
  out.set(prefix + ".data_bytes", static_cast<double>(data_bytes));
  out.set(prefix + ".link_bytes", static_cast<double>(link_bytes));
  out.set(prefix + ".overhead_bytes", static_cast<double>(overhead_bytes));
  out.set(prefix + ".coalescing_efficiency", coalescing_efficiency());
  out.set(prefix + ".bandwidth_efficiency", bandwidth_efficiency());
  out.set(prefix + ".avg_latency_cycles", avg_latency_cycles);
  out.set(prefix + ".avg_packet_bytes", avg_packet_bytes);
  if (checks_run > 0) {
    out.set(prefix + ".checks_run", static_cast<double>(checks_run));
    out.set(prefix + ".check_violations",
            static_cast<double>(check_violations));
  }
}

namespace {

constexpr Cycle kNever = std::numeric_limits<Cycle>::max();

struct LoopResult {
  Cycle makespan = 0;       ///< cycle of the last completion
  std::uint64_t completions = 0;  ///< data records + retired fences
};

/// Trace streaming (paper Sec. 5.1): every thread's memory instruction
/// stream arrives open-loop, paced only by its recorded compute gaps (the
/// instruction stream the RISC-V tracer produced); the interleaved
/// arrivals are presented round-robin and the path absorbs as many as its
/// intake ports allow per cycle (the MAC: one merge + one allocation).
/// Back-pressure queues arrivals; it never slows the cores down.
/// A thread's (tid, tag) pair is its request identity on the response path
/// (the paper's 2 B tag field, Sec. 4.1.1). The open-loop feeder must not
/// reissue a tag while its predecessor is still in flight, or response
/// matching becomes ambiguous — and since completions are out of order
/// (bank scheduling), one long-lived request can outlive 65 K newer ones,
/// so each thread draws from a finite MSHR-style TagAllocator pool and
/// stalls only on pool exhaustion (the invariant fuzz suite caught the
/// ambiguity on bank-conflict-heavy traces back when tags were a bare
/// wrapping cursor). `barrier` runs once per cycle right after the path
/// ticks — the parallel engine commits its staged device work there; the
/// serial engine passes a no-op.
template <typename Path, typename Barrier>
LoopResult run_streaming(Path& path, const MemoryTrace& trace,
                         const SimConfig& config, std::uint32_t threads,
                         const DriveOptions& options, Barrier&& barrier) {
  struct ThreadCursor {
    std::size_t next = 0;
    Cycle arrive_at = 0;  ///< when the current record reaches the queue
    bool stamped = false;  ///< core_issue emitted for the current record
  };
  const bool charge_gaps = options.charge_gaps;

  threads = std::min(threads, trace.threads());
  std::vector<ThreadCursor> cursors(threads);
  std::vector<TagAllocator> tags(threads, TagAllocator(options.tag_pool));
  std::uint64_t records_left = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    const auto& records = trace.thread(static_cast<ThreadId>(t));
    records_left += records.size();
    if (!records.empty() && charge_gaps) {
      cursors[t].arrive_at = records.front().gap;
    }
  }

  Cycle now = 0;
  LoopResult result;
  std::uint32_t turn = 0;
  const bool event_engine = engine_is_event(options.engine);
#if MAC3D_OBS_ENABLED
  ActivityCensus* const census = options.census;
  HostProfiler* const profiler = options.profiler;
  SnapshotStreamer* const snapshot = options.snapshot;
#else
  ActivityCensus* const census = nullptr;
  HostProfiler* const profiler = nullptr;
  SnapshotStreamer* const snapshot = nullptr;
#endif
  if (snapshot != nullptr) {
    // The loop owns the completion count, so the reserved completions
    // counter registers here; the run_* wrappers register the rest.
    snapshot->add_counter(SnapshotStreamer::kCompletionsCounter,
                          [&result] { return result.completions; });
  }
  const Cycle livelock_at = options.inject_livelock_at;

  while (records_left > 0 || !path.idle()) {
    // Intake: present arrived records round-robin until the path's intake
    // ports reject one (or no arrival is pending).
    bool intake_open = records_left > 0;
    while (intake_open) {
      bool found = false;
      for (std::uint32_t scan = 0; scan < threads; ++scan) {
        const std::uint32_t t = (turn + scan) % threads;
        const auto tid = static_cast<ThreadId>(t);
        ThreadCursor& cursor = cursors[t];
        const auto& records = trace.thread(tid);
        if (cursor.next >= records.size() || cursor.arrive_at > now ||
            !tags[t].available()) {
          continue;
        }
        const MemRecord& record = records[cursor.next];
        RawRequest request;
        request.addr = record.addr;
        request.op = record.op;
        request.size = record.size;
        request.tid = tid;
        request.tag = tags[t].peek();
        request.core = static_cast<CoreId>(t % config.cores);
#if MAC3D_OBS_ENABLED
        // core_issue marks the first presentation attempt; the delta to the
        // path's queue_insert measures intake back-pressure. peek() is
        // stable across rejected attempts, so the stamp matches the tag
        // eventually allocated.
        if (options.sink != nullptr && !cursor.stamped) {
          options.sink->on_stage(Stage::kCoreIssue, tid, request.tag, now);
          cursor.stamped = true;
        }
#endif
        if (!path.try_accept(request, now)) {
          intake_open = false;
          break;
        }
        tags[t].allocate();
        if (census != nullptr) census->mark_feeder(now);
        ++cursor.next;
        cursor.stamped = false;
        --records_left;
        // Open-loop pacing: the next record arrives `gap` core cycles
        // after this one *was generated* (arrivals can back up).
        if (cursor.next < records.size()) {
          cursor.arrive_at += charge_gaps ? records[cursor.next].gap : 0;
        }
        turn = (t + 1) % threads;
        found = true;
        break;
      }
      if (!found) break;
    }

    {
      HostProfiler::Scope scope(profiler, HostPhase::kTick);
      path.tick(now);
    }
    {
      HostProfiler::Scope scope(profiler, HostPhase::kCommit);
      barrier();
    }
    {
      HostProfiler::Scope scope(profiler, HostPhase::kTelemetry);
      // Livelock fault injection (watchdog testing): past the trigger
      // cycle completions are left undelivered in the path.
      const bool drain_open = livelock_at == 0 || now < livelock_at;
      for (const CompletedAccess& done :
           drain_open ? path.drain(now) : std::vector<CompletedAccess>{}) {
        result.makespan = std::max(result.makespan, done.completed);
        ++result.completions;
        MAC3D_OBS_STAMP(options.sink, Stage::kCoreComplete, done.target.tid,
                        done.target.tag, done.completed);
        if (done.target.tid < threads) {
          tags[done.target.tid].release(done.target.tag);
        }
      }
      // Serial point: the cycle's work (tick, barrier, drain) is done.
      if (census != nullptr) census->observe(now);
    }
#if MAC3D_OBS_ENABLED
    if (options.sampler != nullptr) {
      HostProfiler::Scope scope(profiler, HostPhase::kSampler);
      options.sampler->advance_to(now);
    }
#endif
    if (snapshot != nullptr) {
      HostProfiler::Scope scope(profiler, HostPhase::kSampler);
      snapshot->advance_to(now);
    }
    // A fired watchdog abandons the run at this serial point — the only
    // exit a livelocked pipeline has.
    if (snapshot != nullptr && snapshot->watchdog_fired()) break;

    // Advance time. The strict cycle engines always step one cycle (the
    // reference semantics); the event engines jump to the minimum
    // next-activity cycle — the feeder's earliest arrival and the path's
    // next_event oracle — crediting the skipped span to the census and
    // sampler BEFORE the landing tick (which can raise device busy
    // thresholds and would falsely mark the span active).
    if (!event_engine) {
      ++now;
      continue;
    }
    Cycle next = kNever;
    if (records_left > 0) {
      Cycle earliest = kNever;
      bool pending_now = false;
      for (std::uint32_t t = 0; t < threads; ++t) {
        const ThreadCursor& cursor = cursors[t];
        if (cursor.next >= trace.thread(static_cast<ThreadId>(t)).size()) {
          continue;
        }
        // A thread stalled on tag-pool exhaustion wakes on a completion
        // (path event), not on an arrival time.
        if (!tags[t].available()) continue;
        if (cursor.arrive_at <= now) {
          pending_now = true;
          break;
        }
        earliest = std::min(earliest, cursor.arrive_at);
      }
      if (pending_now) {
        next = now + 1;
      } else {
        next = earliest;
      }
    }
    const Cycle path_next = path.next_event(now);
    if (path_next > now) next = std::min(next, path_next);
    next = (next == kNever || next <= now) ? now + 1 : next;
    // Snapshot boundaries are mandatory landing cycles: never skip over
    // one, so every engine samples every window at identical state.
    if (snapshot != nullptr) {
      next = std::min(next, snapshot->next_boundary(now));
    }
    if (next > now + 1) {
      if (census != nullptr) census->skip_to(next);
#if MAC3D_OBS_ENABLED
      if (options.sampler != nullptr) {
        HostProfiler::Scope scope(profiler, HostPhase::kSampler);
        options.sampler->advance_to(next - 1);
      }
#endif
    }
    now = next;
  }
  return result;
}

/// Closed-loop feed (paper Sec. 3): each hardware thread may have a small
/// number of loads outstanding (hit-under-miss) and posts stores through a
/// finite store buffer; it stalls otherwise, and pays its recorded compute
/// gap between references. Up to `intake_ports` requests (one per core
/// port) enter the path per cycle.
template <typename Path, typename Barrier>
LoopResult run_closed_loop(Path& path, const MemoryTrace& trace,
                           const SimConfig& config, std::uint32_t threads,
                           const DriveOptions& options, Barrier&& barrier) {
  struct ThreadCursor {
    std::size_t next = 0;
    std::uint32_t loads = 0;   ///< outstanding loads + atomics
    std::uint32_t stores = 0;  ///< store-buffer occupancy
    Cycle ready_at = 0;
    Tag tag = 0;
    bool stamped = false;  ///< core_issue emitted for the current record
  };

  threads = std::min(threads, trace.threads());
  const std::uint32_t ports =
      options.intake_ports == 0 ? config.cores : options.intake_ports;
  std::vector<ThreadCursor> cursors(threads);
  std::uint64_t records_left = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    const auto& records = trace.thread(static_cast<ThreadId>(t));
    records_left += records.size();
    if (!records.empty() && options.charge_gaps) {
      cursors[t].ready_at = records.front().gap;
    }
  }

  Cycle now = 0;
  LoopResult result;
  std::uint32_t turn = 0;
  std::uint64_t outstanding_total = 0;
  const bool event_engine = engine_is_event(options.engine);
#if MAC3D_OBS_ENABLED
  ActivityCensus* const census = options.census;
  HostProfiler* const profiler = options.profiler;
  SnapshotStreamer* const snapshot = options.snapshot;
#else
  ActivityCensus* const census = nullptr;
  HostProfiler* const profiler = nullptr;
  SnapshotStreamer* const snapshot = nullptr;
#endif
  if (snapshot != nullptr) {
    // The loop owns the completion count, so the reserved completions
    // counter registers here; the run_* wrappers register the rest.
    snapshot->add_counter(SnapshotStreamer::kCompletionsCounter,
                          [&result] { return result.completions; });
  }
  const Cycle livelock_at = options.inject_livelock_at;

  auto thread_issuable = [&](const ThreadCursor& cursor,
                             ThreadId tid) -> bool {
    const auto& records = trace.thread(tid);
    if (cursor.next >= records.size() || cursor.ready_at > now) return false;
    switch (records[cursor.next].op) {
      case MemOp::kFence:  // a fence waits for all of the thread's ops
        return cursor.loads == 0 && cursor.stores == 0;
      case MemOp::kStore:
        return cursor.stores < options.max_stores_per_thread;
      case MemOp::kLoad:
      case MemOp::kAtomic:
        return cursor.loads < options.max_loads_per_thread;
    }
    return false;
  };

  while (records_left > 0 || outstanding_total > 0 || !path.idle()) {
    // Intake: scan the threads round-robin, presenting issuable requests
    // until the path's intake ports reject one (or every thread is busy).
    std::uint32_t accepted = 0;
    bool intake_open = true;
    while (records_left > 0 && accepted < ports && intake_open) {
      bool found = false;
      for (std::uint32_t scan = 0; scan < threads; ++scan) {
        const std::uint32_t t = (turn + scan) % threads;
        const auto tid = static_cast<ThreadId>(t);
        ThreadCursor& cursor = cursors[t];
        if (!thread_issuable(cursor, tid)) continue;
        const MemRecord& record = trace.thread(tid)[cursor.next];
        RawRequest request;
        request.addr = record.addr;
        request.op = record.op;
        request.size = record.size;
        request.tid = tid;
        request.tag = cursor.tag;
        request.core = static_cast<CoreId>(t % config.cores);
#if MAC3D_OBS_ENABLED
        if (options.sink != nullptr && !cursor.stamped) {
          options.sink->on_stage(Stage::kCoreIssue, tid, cursor.tag, now);
          cursor.stamped = true;
        }
#endif
        if (!path.try_accept(request, now)) {
          intake_open = false;  // ports exhausted for this cycle
          break;
        }
        ++cursor.tag;
        if (census != nullptr) census->mark_feeder(now);
        ++cursor.next;
        cursor.stamped = false;
        if (record.op == MemOp::kStore) {
          ++cursor.stores;
        } else {
          ++cursor.loads;  // loads, atomics and fences all complete back
        }
        ++outstanding_total;
        --records_left;
        turn = (t + 1) % threads;
        found = true;
        ++accepted;
        break;
      }
      if (!found) break;
    }

    {
      HostProfiler::Scope scope(profiler, HostPhase::kTick);
      path.tick(now);
    }
    {
      HostProfiler::Scope scope(profiler, HostPhase::kCommit);
      barrier();
    }
    {
      HostProfiler::Scope scope(profiler, HostPhase::kTelemetry);
      // Livelock fault injection (watchdog testing): past the trigger
      // cycle completions are left undelivered in the path.
      const bool drain_open = livelock_at == 0 || now < livelock_at;
      for (const CompletedAccess& done :
           drain_open ? path.drain(now) : std::vector<CompletedAccess>{}) {
        result.makespan = std::max(result.makespan, done.completed);
        ++result.completions;
        MAC3D_OBS_STAMP(options.sink, Stage::kCoreComplete, done.target.tid,
                        done.target.tag, done.completed);
        const std::uint32_t t = done.target.tid;
        if (t >= threads) continue;  // foreign node traffic (not used here)
        ThreadCursor& cursor = cursors[t];
        if (done.write && !done.atomic && !done.fence) {
          --cursor.stores;
        } else {
          --cursor.loads;  // loads, atomics and fences
        }
        --outstanding_total;
        const auto& records = trace.thread(static_cast<ThreadId>(t));
        Cycle ready = done.completed;
        if (options.charge_gaps && cursor.next < records.size()) {
          ready += records[cursor.next].gap;
        }
        cursor.ready_at = std::max(cursor.ready_at, ready);
      }
      // Serial point: the cycle's work (tick, barrier, drain) is done.
      if (census != nullptr) census->observe(now);
    }
#if MAC3D_OBS_ENABLED
    if (options.sampler != nullptr) {
      HostProfiler::Scope scope(profiler, HostPhase::kSampler);
      options.sampler->advance_to(now);
    }
#endif
    if (snapshot != nullptr) {
      HostProfiler::Scope scope(profiler, HostPhase::kSampler);
      snapshot->advance_to(now);
    }
    // A fired watchdog abandons the run at this serial point — the only
    // exit a livelocked pipeline has.
    if (snapshot != nullptr && snapshot->watchdog_fired()) break;

    // Advance time. Strict cycle engines step one cycle; event engines
    // jump to the earliest of (path event, thread ready time), crediting
    // the skipped span before the landing tick (see run_streaming).
    if (!event_engine) {
      ++now;
      continue;
    }
    Cycle next = kNever;
    if (records_left > 0) {
      bool now_issuable = false;
      Cycle earliest_ready = kNever;
      for (std::uint32_t t = 0; t < threads; ++t) {
        const auto tid = static_cast<ThreadId>(t);
        const ThreadCursor& cursor = cursors[t];
        const auto& records = trace.thread(tid);
        if (cursor.next >= records.size()) continue;
        if (thread_issuable(cursor, tid)) {
          now_issuable = true;
          break;
        }
        // Blocked only on time (not on an occupancy window)?
        const MemRecord& record = records[cursor.next];
        bool window_ok = false;
        switch (record.op) {
          case MemOp::kFence:
            window_ok = cursor.loads == 0 && cursor.stores == 0;
            break;
          case MemOp::kStore:
            window_ok = cursor.stores < options.max_stores_per_thread;
            break;
          default:
            window_ok = cursor.loads < options.max_loads_per_thread;
        }
        if (window_ok && cursor.ready_at > now) {
          earliest_ready = std::min(earliest_ready, cursor.ready_at);
        }
      }
      if (now_issuable) {
        next = now + 1;
      } else if (earliest_ready != kNever) {
        next = earliest_ready;
      }
    }
    const Cycle path_next = path.next_event(now);
    if (path_next > now) next = std::min(next, path_next);
    next = (next == kNever || next <= now) ? now + 1 : next;
    // Snapshot boundaries are mandatory landing cycles: never skip over
    // one, so every engine samples every window at identical state.
    if (snapshot != nullptr) {
      next = std::min(next, snapshot->next_boundary(now));
    }
    if (next > now + 1) {
      if (census != nullptr) census->skip_to(next);
#if MAC3D_OBS_ENABLED
      if (options.sampler != nullptr) {
        HostProfiler::Scope scope(profiler, HostPhase::kSampler);
        options.sampler->advance_to(next - 1);
      }
#endif
    }
    now = next;
  }
  return result;
}

/// SIMT lane-group feed (FeedMode::kLaneGroup): threads form consecutive
/// groups of config.warp_lanes lanes. A group presents record step `s` of
/// every lane in lane order — gated on all lanes having paid their compute
/// gaps — and advances to step `s+1` only once every lane's step-`s`
/// request completed, reproducing a warp scheduler's lockstep issue. Lanes
/// with shorter streams simply drop out of later steps. Each lane has at
/// most one request in flight, so a per-lane tag cursor never reissues a
/// live (tid, tag).
template <typename Path, typename Barrier>
LoopResult run_lane_group(Path& path, const MemoryTrace& trace,
                          const SimConfig& config, std::uint32_t threads,
                          const DriveOptions& options, Barrier&& barrier) {
  struct LaneState {
    bool issued = false;       ///< current step's request accepted
    bool outstanding = false;  ///< awaiting its completion
    Cycle ready_at = 0;        ///< gap pacing for the current step
    Cycle completed_at = 0;    ///< last completion (next step's gap base)
    Tag tag = 0;
    bool stamped = false;  ///< core_issue emitted for the current step
  };
  struct Group {
    std::uint32_t first = 0;
    std::uint32_t count = 0;
    std::size_t step = 0;
    std::size_t steps = 0;  ///< longest lane stream in the group
  };

  threads = std::min(threads, trace.threads());
  const std::uint32_t lanes = std::max<std::uint32_t>(1, config.warp_lanes);
  std::vector<LaneState> lane_state(threads);
  std::vector<Group> groups;
  std::uint64_t records_left = 0;
  for (std::uint32_t t = 0; t < threads; ++t) {
    const auto& records = trace.thread(static_cast<ThreadId>(t));
    records_left += records.size();
    if (!records.empty() && options.charge_gaps) {
      lane_state[t].ready_at = records.front().gap;
    }
  }
  for (std::uint32_t first = 0; first < threads; first += lanes) {
    Group group;
    group.first = first;
    group.count = std::min(lanes, threads - first);
    for (std::uint32_t l = 0; l < group.count; ++l) {
      group.steps = std::max(
          group.steps, trace.thread(static_cast<ThreadId>(first + l)).size());
    }
    groups.push_back(group);
  }

  Cycle now = 0;
  LoopResult result;
  std::uint64_t outstanding_total = 0;
  const bool event_engine = engine_is_event(options.engine);
#if MAC3D_OBS_ENABLED
  ActivityCensus* const census = options.census;
  HostProfiler* const profiler = options.profiler;
  SnapshotStreamer* const snapshot = options.snapshot;
#else
  ActivityCensus* const census = nullptr;
  HostProfiler* const profiler = nullptr;
  SnapshotStreamer* const snapshot = nullptr;
#endif
  if (snapshot != nullptr) {
    // The loop owns the completion count, so the reserved completions
    // counter registers here; the run_* wrappers register the rest.
    snapshot->add_counter(SnapshotStreamer::kCompletionsCounter,
                          [&result] { return result.completions; });
  }
  const Cycle livelock_at = options.inject_livelock_at;

  const auto participates = [&trace](const Group& group, std::uint32_t t) {
    return trace.thread(static_cast<ThreadId>(t)).size() > group.step;
  };
  // Lockstep gate: the step may start only once every participating lane
  // has paid its gap.
  const auto group_gate = [&](const Group& group) -> Cycle {
    Cycle gate = 0;
    for (std::uint32_t l = 0; l < group.count; ++l) {
      const std::uint32_t t = group.first + l;
      if (!participates(group, t)) continue;
      gate = std::max(gate, lane_state[t].ready_at);
    }
    return gate;
  };

  while (records_left > 0 || outstanding_total > 0 || !path.idle()) {
    // Intake: groups in index order, lanes in lane order, until the
    // path's intake ports reject one.
    bool intake_open = records_left > 0;
    for (Group& group : groups) {
      if (!intake_open) break;
      if (group.step >= group.steps) continue;
      if (group_gate(group) > now) continue;
      for (std::uint32_t l = 0; l < group.count && intake_open; ++l) {
        const std::uint32_t t = group.first + l;
        if (!participates(group, t)) continue;
        LaneState& lane = lane_state[t];
        if (lane.issued) continue;
        const auto tid = static_cast<ThreadId>(t);
        const MemRecord& record = trace.thread(tid)[group.step];
        RawRequest request;
        request.addr = record.addr;
        request.op = record.op;
        request.size = record.size;
        request.tid = tid;
        request.tag = lane.tag;
        request.core = static_cast<CoreId>(t % config.cores);
#if MAC3D_OBS_ENABLED
        if (options.sink != nullptr && !lane.stamped) {
          options.sink->on_stage(Stage::kCoreIssue, tid, lane.tag, now);
          lane.stamped = true;
        }
#endif
        if (!path.try_accept(request, now)) {
          intake_open = false;
          break;
        }
        lane.issued = true;
        lane.outstanding = true;
        if (census != nullptr) census->mark_feeder(now);
        ++outstanding_total;
        --records_left;
      }
    }

    {
      HostProfiler::Scope scope(profiler, HostPhase::kTick);
      path.tick(now);
    }
    {
      HostProfiler::Scope scope(profiler, HostPhase::kCommit);
      barrier();
    }
    {
      HostProfiler::Scope scope(profiler, HostPhase::kTelemetry);
      // Livelock fault injection (watchdog testing): past the trigger
      // cycle completions are left undelivered in the path.
      const bool drain_open = livelock_at == 0 || now < livelock_at;
      for (const CompletedAccess& done :
           drain_open ? path.drain(now) : std::vector<CompletedAccess>{}) {
        result.makespan = std::max(result.makespan, done.completed);
        ++result.completions;
        MAC3D_OBS_STAMP(options.sink, Stage::kCoreComplete, done.target.tid,
                        done.target.tag, done.completed);
        const std::uint32_t t = done.target.tid;
        if (t >= threads) continue;
        LaneState& lane = lane_state[t];
        lane.outstanding = false;
        lane.completed_at = std::max(lane.completed_at, done.completed);
        --outstanding_total;
      }
      // Advance every group whose step fully completed.
      for (Group& group : groups) {
        if (group.step >= group.steps) continue;
        bool done_step = true;
        for (std::uint32_t l = 0; l < group.count; ++l) {
          const std::uint32_t t = group.first + l;
          if (!participates(group, t)) continue;
          const LaneState& lane = lane_state[t];
          if (!lane.issued || lane.outstanding) {
            done_step = false;
            break;
          }
        }
        if (!done_step) continue;
        ++group.step;
        for (std::uint32_t l = 0; l < group.count; ++l) {
          const std::uint32_t t = group.first + l;
          LaneState& lane = lane_state[t];
          lane.issued = false;
          lane.stamped = false;
          ++lane.tag;
          const auto& records = trace.thread(static_cast<ThreadId>(t));
          if (options.charge_gaps && group.step < records.size()) {
            lane.ready_at = std::max(
                lane.ready_at, lane.completed_at + records[group.step].gap);
          }
        }
      }
      // Serial point: the cycle's work (tick, barrier, drain) is done.
      if (census != nullptr) census->observe(now);
    }
#if MAC3D_OBS_ENABLED
    if (options.sampler != nullptr) {
      HostProfiler::Scope scope(profiler, HostPhase::kSampler);
      options.sampler->advance_to(now);
    }
#endif
    if (snapshot != nullptr) {
      HostProfiler::Scope scope(profiler, HostPhase::kSampler);
      snapshot->advance_to(now);
    }
    // A fired watchdog abandons the run at this serial point — the only
    // exit a livelocked pipeline has.
    if (snapshot != nullptr && snapshot->watchdog_fired()) break;

    // Advance time (see run_streaming): event engines jump to the
    // earliest of (path event, earliest group gate).
    if (!event_engine) {
      ++now;
      continue;
    }
    Cycle next = kNever;
    if (records_left > 0) {
      bool pending_now = false;
      Cycle earliest = kNever;
      for (const Group& group : groups) {
        if (group.step >= group.steps) continue;
        bool any_unissued = false;
        for (std::uint32_t l = 0; l < group.count; ++l) {
          const std::uint32_t t = group.first + l;
          if (participates(group, t) && !lane_state[t].issued) {
            any_unissued = true;
            break;
          }
        }
        // A fully issued group wakes on a completion (a path event).
        if (!any_unissued) continue;
        const Cycle gate = group_gate(group);
        if (gate <= now) {
          pending_now = true;
          break;
        }
        earliest = std::min(earliest, gate);
      }
      if (pending_now) {
        next = now + 1;
      } else {
        next = earliest;
      }
    }
    const Cycle path_next = path.next_event(now);
    if (path_next > now) next = std::min(next, path_next);
    next = (next == kNever || next <= now) ? now + 1 : next;
    // Snapshot boundaries are mandatory landing cycles: never skip over
    // one, so every engine samples every window at identical state.
    if (snapshot != nullptr) {
      next = std::min(next, snapshot->next_boundary(now));
    }
    if (next > now + 1) {
      if (census != nullptr) census->skip_to(next);
#if MAC3D_OBS_ENABLED
      if (options.sampler != nullptr) {
        HostProfiler::Scope scope(profiler, HostPhase::kSampler);
        options.sampler->advance_to(next - 1);
      }
#endif
    }
    now = next;
  }
  return result;
}

template <typename Path>
DriverResult finish(Path& path, const HmcDevice& device,
                    const LoopResult& loop, const char* name) {
  DriverResult result;
  result.path = name;
  result.makespan = loop.makespan;
  result.completions = loop.completions;
  const HmcStats& hmc = device.stats();
  result.packets = hmc.requests;
  result.bank_conflicts = hmc.bank_conflicts;
  result.refresh_stalls = hmc.refresh_stalls;
  result.row_hit_rate =
      hmc.requests == 0 ? 0.0
                        : static_cast<double>(hmc.row_hits) /
                              static_cast<double>(hmc.requests);
  result.data_bytes = hmc.data_bytes;
  result.link_bytes = hmc.link_bytes;
  result.overhead_bytes = hmc.overhead_bytes;
  result.avg_packet_bytes = hmc.packet_data_bytes.mean();
  result.device_latency_sum = hmc.latency_cycles.sum();
  result.device_latency_avg = hmc.latency_cycles.mean();
  (void)path;
  return result;
}

/// Per-run engine state: under the parallel engines the device runs
/// staged and a ParallelStepper commits its per-cycle work at the loop
/// barrier; under the serial engines the barrier is a no-op and no pool
/// is spawned.
class EngineWindow {
 public:
  EngineWindow(const DriveOptions& options, HmcDevice& device)
      : device_(device) {
    if (engine_is_parallel(options.engine)) {
      stepper_ = std::make_unique<ParallelStepper>(options.engine_threads);
      device.begin_staged();
    }
  }

  void barrier() {
    if (stepper_ != nullptr) device_.step_staged(*stepper_);
  }

 private:
  HmcDevice& device_;
  std::unique_ptr<ParallelStepper> stepper_;
};

template <typename Path>
LoopResult dispatch(Path& path, const MemoryTrace& trace,
                    const SimConfig& config, std::uint32_t threads,
                    const DriveOptions& options, EngineWindow& engine) {
  const auto barrier = [&engine] { engine.barrier(); };
  switch (options.mode) {
    case FeedMode::kClosedLoop:
      return run_closed_loop(path, trace, config, threads, options, barrier);
    case FeedMode::kLaneGroup:
      return run_lane_group(path, trace, config, threads, options, barrier);
    case FeedMode::kStreaming:
      break;
  }
  return run_streaming(path, trace, config, threads, options, barrier);
}

/// Scopes one run's slice of a (possibly shared) CheckContext: snapshots
/// the counters, and guarantees finalize() runs while the pipeline is still
/// alive — including when a kThrow-mode breach unwinds out of the run loop
/// (declare the window *after* the device and the path).
class CheckWindow {
 public:
  explicit CheckWindow(CheckContext* context) : context_(context) {
    if (context_ != nullptr) {
      checks_before_ = context_->checks_run();
      violations_before_ = context_->violations();
    }
  }

  CheckWindow(const CheckWindow&) = delete;
  CheckWindow& operator=(const CheckWindow&) = delete;

  ~CheckWindow() {
    if (context_ == nullptr || closed_) return;
    // Unwinding (kThrow): run the end-of-run audits anyway so the hooks
    // release their captured components; secondary breaches stay counted
    // but must not escape a destructor.
    try {
      context_->finalize();
    } catch (const InvariantViolation&) {  // NOLINT(bugprone-empty-catch)
    }
  }

  /// Normal completion: finalize and report this run's deltas.
  void close(DriverResult& result) {
    closed_ = true;
    if (context_ == nullptr) return;
    context_->finalize();
    result.checks_run = context_->checks_run() - checks_before_;
    result.check_violations = context_->violations() - violations_before_;
  }

 private:
  CheckContext* context_;
  std::uint64_t checks_before_ = 0;
  std::uint64_t violations_before_ = 0;
  bool closed_ = false;
};

/// Scopes one run's slice of a (possibly shared) CycleSampler: opens the
/// sampling window, and guarantees the probes — which capture the run's
/// path and device by reference — are dropped before those objects die,
/// including on exception unwind (declare after the device and the path).
class SamplerWindow {
 public:
  SamplerWindow(CycleSampler* sampler, const char* path_name)
      : sampler_(sampler) {
    if (sampler_ != nullptr) sampler_->begin_run(path_name);
  }

  SamplerWindow(const SamplerWindow&) = delete;
  SamplerWindow& operator=(const SamplerWindow&) = delete;

  ~SamplerWindow() {
    if (sampler_ != nullptr && !closed_) sampler_->abort_run();
  }

  /// Normal completion: flush the tail windows up to the makespan.
  void close(Cycle makespan) {
    closed_ = true;
    if (sampler_ != nullptr) sampler_->end_run(makespan);
  }

 private:
  CycleSampler* sampler_;
  bool closed_ = false;
};

/// Scopes one run's slice of a (possibly shared) SnapshotStreamer: opens
/// the snapshot run, and guarantees the probes — which capture the run's
/// path and device by reference — are dropped before those objects die,
/// including on exception unwind (same hazard as SamplerWindow).
class SnapshotWindow {
 public:
  SnapshotWindow(SnapshotStreamer* snapshot, const char* path_name)
      : snapshot_(snapshot) {
    if (snapshot_ != nullptr) snapshot_->begin_run(path_name);
  }

  SnapshotWindow(const SnapshotWindow&) = delete;
  SnapshotWindow& operator=(const SnapshotWindow&) = delete;

  ~SnapshotWindow() {
    if (snapshot_ != nullptr && !closed_) snapshot_->abort_run();
  }

  /// Normal completion: flush the tail windows and the run footer.
  void close(Cycle makespan) {
    closed_ = true;
    if (snapshot_ != nullptr) snapshot_->end_run(makespan);
  }

 private:
  SnapshotStreamer* snapshot_;
  bool closed_ = false;
};

/// Scopes one run's slice of a (possibly shared) ActivityCensus: its
/// probes capture the run's path and device by reference, so seal() must
/// run before those objects die — including on exception unwind (declare
/// after the device and the path, like SamplerWindow). Counts survive the
/// seal; a shared census accumulates across runs.
class CensusWindow {
 public:
  explicit CensusWindow(ActivityCensus* census) : census_(census) {}
  CensusWindow(const CensusWindow&) = delete;
  CensusWindow& operator=(const CensusWindow&) = delete;
  ~CensusWindow() {
    if (census_ != nullptr) census_->seal();
  }

 private:
  ActivityCensus* census_;
};

#if MAC3D_OBS_ENABLED
/// Device-side probes shared by every path (registered after the path's
/// own probes so the CSV column set is uniform: queue_occupancy,
/// issue_backlog, then the device series).
void register_device_probes(CycleSampler& sampler, const HmcDevice& device) {
  sampler.add_probe("device_in_flight", [&device](Cycle) {
    return static_cast<double>(device.in_flight());
  });
  sampler.add_probe("banks_busy", [&device](Cycle cycle) {
    return device.banks_busy_fraction(cycle);
  });
  for (std::uint32_t v = 0; v < device.vault_count(); ++v) {
    sampler.add_probe("vault" + std::to_string(v) + "_busy",
                      [&device, v](Cycle cycle) {
                        return device.vault_busy_fraction(v, cycle);
                      });
  }
  for (std::uint32_t l = 0; l < device.link_count(); ++l) {
    sampler.add_probe("link" + std::to_string(l) + "_backlog",
                      [&device, l](Cycle cycle) {
                        return static_cast<double>(
                            device.link_request_backlog(l, cycle));
                      });
    sampler.add_probe("link" + std::to_string(l) + "_flits",
                      [&device, l](Cycle) {
                        return static_cast<double>(device.link_flits_sent(l));
                      });
  }
}

/// Device-side snapshot counters/gauges shared by every path (the path
/// adapter registers the reserved injected counter and its own occupancy
/// gauge; the loop registers the reserved completions counter).
void register_device_snapshot(SnapshotStreamer& snapshot,
                              const HmcDevice& device) {
  const HmcStats& stats = device.stats();
  snapshot.add_counter("packets", [&stats] { return stats.requests; });
  snapshot.add_counter("data_bytes", [&stats] { return stats.data_bytes; });
  snapshot.add_counter("link_bytes", [&stats] { return stats.link_bytes; });
  snapshot.add_gauge("device_in_flight", [&device] {
    return static_cast<double>(device.in_flight());
  });
}
#endif  // MAC3D_OBS_ENABLED

}  // namespace

DriverResult run_mac(const MemoryTrace& trace, const SimConfig& config,
                     std::uint32_t threads, const DriveOptions& options) {
  HmcDevice device(config);
  MacCoalescer mac(config, device);
  CheckWindow window(options.checks);
  if (options.checks != nullptr) {
    device.attach_checks(options.checks);
    mac.attach_checks(options.checks);
  }
#if MAC3D_OBS_ENABLED
  if (options.sink != nullptr) {
    mac.attach_sink(options.sink);
    device.attach_sink(options.sink);
  }
#endif
#if MAC3D_OBS_ENABLED
  CycleSampler* const sampler = options.sampler;
  ActivityCensus* const census = options.census;
  SnapshotStreamer* const snapshot = options.snapshot;
#else
  CycleSampler* const sampler = nullptr;
  ActivityCensus* const census = nullptr;
  SnapshotStreamer* const snapshot = nullptr;
#endif
  SamplerWindow swindow(sampler, "mac");
  CensusWindow cwindow(census);
  SnapshotWindow snwindow(snapshot, "mac");
#if MAC3D_OBS_ENABLED
  if (sampler != nullptr) {
    sampler->add_probe("queue_occupancy", [&mac](Cycle) {
      return static_cast<double>(mac.arq().size());
    });
    sampler->add_probe("issue_backlog", [&mac](Cycle) {
      return static_cast<double>(mac.issue_backlog());
    });
    register_device_probes(*sampler, device);
  }
  if (census != nullptr) {
    census->add_feeder("node0.feeder");
    census->add_component("node0.mac", mac);
    census->add_component("node0.arq", [&mac](Cycle now) {
      return mac.arq_did_work(now);
    });
    census->add_component("node0.builder", [&mac](Cycle now) {
      return mac.builder_did_work(now);
    });
    census->add_component("node0.flit_table", [&mac](Cycle now) {
      return mac.flit_table_did_work(now);
    });
    device.register_census(*census, "node0.");
  }
  if (snapshot != nullptr) {
    // "injected" counts everything that will eventually complete —
    // fences retire like requests, so they are folded in.
    snapshot->add_counter(SnapshotStreamer::kInjectedCounter, [&mac] {
      return mac.stats().raw_in + mac.stats().fences_in;
    });
    snapshot->add_gauge("queue_occupancy", [&mac] {
      return static_cast<double>(mac.arq().size());
    });
    register_device_snapshot(*snapshot, device);
    snapshot->attach_census(census);
  }
#endif
  EngineWindow engine(options, device);
  const LoopResult loop = dispatch(mac, trace, config, threads, options,
                                   engine);
  DriverResult result = finish(mac, device, loop, "mac");
  snwindow.close(loop.makespan);
  swindow.close(loop.makespan);
  window.close(result);
  result.raw_requests = mac.stats().raw_in;
  result.avg_latency_cycles = mac.stats().raw_latency_cycles.mean();
  result.avg_targets_per_entry = mac.arq().stats().targets_per_entry.mean();
  result.max_targets_per_entry = mac.arq().stats().targets_per_entry.max();
  result.packets_by_size = mac.stats().packets_by_size;
  return result;
}

DriverResult run_raw(const MemoryTrace& trace, const SimConfig& config,
                     std::uint32_t threads, const DriveOptions& options) {
  HmcDevice device(config);
  RawPath raw(config, device);
  CheckWindow window(options.checks);
  if (options.checks != nullptr) {
    device.attach_checks(options.checks);
    raw.attach_checks(options.checks);
  }
#if MAC3D_OBS_ENABLED
  if (options.sink != nullptr) {
    raw.attach_sink(options.sink);
    device.attach_sink(options.sink);
  }
#endif
#if MAC3D_OBS_ENABLED
  CycleSampler* const sampler = options.sampler;
  ActivityCensus* const census = options.census;
  SnapshotStreamer* const snapshot = options.snapshot;
#else
  CycleSampler* const sampler = nullptr;
  ActivityCensus* const census = nullptr;
  SnapshotStreamer* const snapshot = nullptr;
#endif
  SamplerWindow swindow(sampler, "raw");
  CensusWindow cwindow(census);
  SnapshotWindow snwindow(snapshot, "raw");
#if MAC3D_OBS_ENABLED
  if (sampler != nullptr) {
    sampler->add_probe("queue_occupancy", [&raw](Cycle) {
      return static_cast<double>(raw.queue_depth());
    });
    sampler->add_probe("issue_backlog", [](Cycle) { return 0.0; });
    register_device_probes(*sampler, device);
  }
  if (census != nullptr) {
    census->add_feeder("node0.feeder");
    census->add_component("node0.queue", raw);
    device.register_census(*census, "node0.");
  }
  if (snapshot != nullptr) {
    snapshot->add_counter(SnapshotStreamer::kInjectedCounter, [&raw] {
      return raw.raw_in() + raw.fences_in();
    });
    snapshot->add_gauge("queue_occupancy", [&raw] {
      return static_cast<double>(raw.queue_depth());
    });
    register_device_snapshot(*snapshot, device);
    snapshot->attach_census(census);
  }
#endif
  EngineWindow engine(options, device);
  const LoopResult loop = dispatch(raw, trace, config, threads, options,
                                   engine);
  DriverResult result = finish(raw, device, loop, "raw");
  snwindow.close(loop.makespan);
  swindow.close(loop.makespan);
  window.close(result);
  result.raw_requests = raw.raw_in();
  result.avg_latency_cycles = raw.latency().mean();
  result.packets_by_size[kFlitBytes] = raw.packets_out();
  return result;
}

DriverResult run_mshr(const MemoryTrace& trace, const SimConfig& config,
                      std::uint32_t threads, std::uint32_t mshr_entries,
                      std::uint32_t block_bytes, const DriveOptions& options) {
  HmcDevice device(config);
  MshrCoalescer mshr(config, device, mshr_entries, block_bytes);
  CheckWindow window(options.checks);
  if (options.checks != nullptr) {
    device.attach_checks(options.checks);
    mshr.attach_checks(options.checks);
  }
#if MAC3D_OBS_ENABLED
  if (options.sink != nullptr) {
    mshr.attach_sink(options.sink);
    device.attach_sink(options.sink);
  }
#endif
#if MAC3D_OBS_ENABLED
  CycleSampler* const sampler = options.sampler;
  ActivityCensus* const census = options.census;
  SnapshotStreamer* const snapshot = options.snapshot;
#else
  CycleSampler* const sampler = nullptr;
  ActivityCensus* const census = nullptr;
  SnapshotStreamer* const snapshot = nullptr;
#endif
  SamplerWindow swindow(sampler, "mshr");
  CensusWindow cwindow(census);
  SnapshotWindow snwindow(snapshot, "mshr");
#if MAC3D_OBS_ENABLED
  if (sampler != nullptr) {
    sampler->add_probe("queue_occupancy", [&mshr](Cycle) {
      return static_cast<double>(mshr.occupancy());
    });
    sampler->add_probe("issue_backlog", [&mshr](Cycle) {
      return static_cast<double>(mshr.dispatch_backlog());
    });
    register_device_probes(*sampler, device);
  }
  if (census != nullptr) {
    census->add_feeder("node0.feeder");
    census->add_component("node0.mshr", mshr);
    device.register_census(*census, "node0.");
  }
  if (snapshot != nullptr) {
    snapshot->add_counter(SnapshotStreamer::kInjectedCounter, [&mshr] {
      return mshr.stats().raw_in + mshr.stats().fences_in;
    });
    snapshot->add_gauge("queue_occupancy", [&mshr] {
      return static_cast<double>(mshr.occupancy());
    });
    register_device_snapshot(*snapshot, device);
    snapshot->attach_census(census);
  }
#endif
  EngineWindow engine(options, device);
  const LoopResult loop = dispatch(mshr, trace, config, threads, options,
                                   engine);
  DriverResult result = finish(mshr, device, loop, "mshr");
  snwindow.close(loop.makespan);
  swindow.close(loop.makespan);
  window.close(result);
  result.raw_requests = mshr.stats().raw_in;
  result.avg_latency_cycles = mshr.stats().raw_latency_cycles.mean();
  result.packets_by_size[block_bytes] = mshr.stats().packets_out;
  return result;
}

DriverResult run_warp(const MemoryTrace& trace, const SimConfig& config,
                      std::uint32_t threads, const DriveOptions& options) {
  HmcDevice device(config);
  WarpCoalescer warp(config, device);
  CheckWindow window(options.checks);
  if (options.checks != nullptr) {
    device.attach_checks(options.checks);
    warp.attach_checks(options.checks);
  }
#if MAC3D_OBS_ENABLED
  if (options.sink != nullptr) {
    warp.attach_sink(options.sink);
    device.attach_sink(options.sink);
  }
#endif
#if MAC3D_OBS_ENABLED
  CycleSampler* const sampler = options.sampler;
  ActivityCensus* const census = options.census;
  SnapshotStreamer* const snapshot = options.snapshot;
#else
  CycleSampler* const sampler = nullptr;
  ActivityCensus* const census = nullptr;
  SnapshotStreamer* const snapshot = nullptr;
#endif
  SamplerWindow swindow(sampler, "warp");
  CensusWindow cwindow(census);
  SnapshotWindow snwindow(snapshot, "warp");
#if MAC3D_OBS_ENABLED
  if (sampler != nullptr) {
    sampler->add_probe("queue_occupancy", [&warp](Cycle) {
      return static_cast<double>(warp.occupancy());
    });
    sampler->add_probe("issue_backlog", [&warp](Cycle) {
      return static_cast<double>(warp.window_backlog());
    });
    register_device_probes(*sampler, device);
  }
  if (census != nullptr) {
    census->add_feeder("node0.feeder");
    census->add_component("node0.warp", warp);
    device.register_census(*census, "node0.");
  }
  if (snapshot != nullptr) {
    snapshot->add_counter(SnapshotStreamer::kInjectedCounter, [&warp] {
      return warp.stats().raw_in + warp.stats().fences_in;
    });
    snapshot->add_gauge("queue_occupancy", [&warp] {
      return static_cast<double>(warp.occupancy());
    });
    register_device_snapshot(*snapshot, device);
    snapshot->attach_census(census);
  }
#endif
  EngineWindow engine(options, device);
  const LoopResult loop = dispatch(warp, trace, config, threads, options,
                                   engine);
  DriverResult result = finish(warp, device, loop, "warp");
  snwindow.close(loop.makespan);
  swindow.close(loop.makespan);
  window.close(result);
  result.raw_requests = warp.stats().raw_in;
  result.avg_latency_cycles = warp.stats().raw_latency_cycles.mean();
  result.packets_by_size = warp.stats().packets_by_size;
  return result;
}

DriverResult run_policy(CoalescerPolicy policy, const MemoryTrace& trace,
                        const SimConfig& config, std::uint32_t threads,
                        const DriveOptions& options) {
  switch (policy) {
    case CoalescerPolicy::kRaw:
      return run_raw(trace, config, threads, options);
    case CoalescerPolicy::kMshr:
      return run_mshr(trace, config, threads, config.mshr_entries,
                      config.mshr_block_bytes, options);
    case CoalescerPolicy::kWarp:
      return run_warp(trace, config, threads, options);
    case CoalescerPolicy::kMac:
      break;
  }
  return run_mac(trace, config, threads, options);
}

}  // namespace mac3d
