// Streaming simulation drivers (the paper's methodology, Sec. 5.1): the
// interleaved multi-thread trace is fed into a memory path at its intake
// rate (one raw request per cycle, with back-pressure), the path drives
// the HMC device model, and every paper metric is collected.
//
// Four coalescer policies are available over identical traces
// (DESIGN.md §policy):
//   * MAC   — the paper's coalescer (MacCoalescer)
//   * raw   — one 16 B transaction per raw request ("without MAC")
//   * MSHR  — conventional fixed-64 B DMC baseline (Sec. 2.3)
//   * warp  — SIMT-style warp-iterative coalescer (WarpCoalescer)
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "trace/trace.hpp"

namespace mac3d {

class ActivityCensus;
class CheckContext;
class CycleSampler;
class EventSink;
class HostProfiler;
class SnapshotStreamer;

/// How the trace is fed into the memory path.
enum class FeedMode {
  /// Trace streaming — the paper's methodology (Sec. 5.1): the interleaved
  /// multi-thread memory instruction stream is presented to the memory
  /// interface at its intake rate, with back-pressure. This is the
  /// default for all figure benches.
  kStreaming,
  /// Execution-driven: threads stall on outstanding references
  /// (paper Sec. 3) with a small load window and posted stores, paying
  /// their recorded compute gaps. Used by the feed-mode ablation and the
  /// full-system (arch/) examples.
  kClosedLoop,
  /// SIMT lane groups: threads are partitioned into consecutive groups of
  /// config.warp_lanes lanes; a group presents record `s` of all its
  /// lanes back-to-back (lane order) and advances to record `s+1` only
  /// when every lane's request completed — the lockstep issue pattern a
  /// warp scheduler produces, and the natural feed for the warp policy
  /// (any path accepts it).
  kLaneGroup,
};

/// Which execution engine steps the memory pipeline (docs/PARALLELISM.md).
/// All four produce bit-identical results — the cycle engines are the
/// reference semantics, the event engines are the fast path, and
/// tests/test_parallel_equivalence.cpp enforces the 4-way equality.
enum class Engine {
  /// Strict cycle loop, single-threaded: ticks every component every
  /// cycle. The reference scheduler the differential suite compares
  /// everything else against.
  kSerial,
  /// Strict cycle loop, deterministic parallel: the device runs in staged
  /// mode and a ParallelStepper times link-quadrant shards concurrently
  /// between per-cycle barriers. Bit-identical to kSerial for any thread
  /// count.
  kParallel,
  /// Event-driven fast-forward, single-threaded (the default): the
  /// Activity oracle (`next_activity_cycle`, src/obs/profiler.hpp) is the
  /// scheduling contract — the driver jumps the clock to the minimum
  /// next-activity cycle instead of ticking dead cycles, crediting the
  /// skipped span to the census/sampler before the landing tick so every
  /// export stays byte-identical to kSerial.
  kEvent,
  /// Event-driven fast-forward over the staged parallel engine.
  kEventParallel,
};

/// True for the engines that fast-forward over provably-dead cycles.
[[nodiscard]] constexpr bool engine_is_event(Engine engine) noexcept {
  return engine == Engine::kEvent || engine == Engine::kEventParallel;
}

/// True for the engines that run the staged parallel pipeline.
[[nodiscard]] constexpr bool engine_is_parallel(Engine engine) noexcept {
  return engine == Engine::kParallel || engine == Engine::kEventParallel;
}

struct DriveOptions {
  FeedMode mode = FeedMode::kStreaming;
  /// Execution engine for the run. All engines produce bit-identical
  /// results (tests/test_parallel_equivalence.cpp enforces the 4-way
  /// matrix); kEvent is the fast default.
  Engine engine = Engine::kEvent;
  /// Worker threads for the parallel engines (0 = hardware concurrency,
  /// 1 = the parallel code path with inline execution). Ignored by the
  /// serial engines. The thread count never changes results, only
  /// wall-clock.
  std::uint32_t engine_threads = 0;
  /// Streaming feeder: per-thread MSHR-style tag pool size (simultaneously
  /// outstanding requests per thread). 0 = the full 2 B tag space, which
  /// reproduces the historical stall-on-busy-tag behavior; small pools
  /// model finite transaction-ID files (EXPERIMENTS.md measures the
  /// open-loop throughput effect). Ignored in closed-loop mode, whose
  /// load/store windows already bound outstanding tags.
  std::uint32_t tag_pool = 0;
  /// Loads (and atomics) a thread may have outstanding before it stalls.
  /// 2 models the classic "hit under miss" (Kroft) a simple in-order core
  /// affords; 1 is the strict stall-on-every-reference of paper Sec. 3.
  std::uint32_t max_loads_per_thread = 2;
  /// Posted stores: the store-buffer depth per thread (stores retire
  /// without stalling the core until the buffer fills).
  std::uint32_t max_stores_per_thread = 4;
  /// Requests entering the MAC per cycle (one per core port; 0 = cores).
  /// The comparators check all ARQ entries simultaneously, so the ARQ can
  /// absorb one request per core port each cycle (cf. Fig. 9: up to 9.32
  /// raw requests per cycle are ready to enter the ARQ).
  std::uint32_t intake_ports = 0;
  bool charge_gaps = true;  ///< pay per-record compute gaps (closed loop)
  /// Model-invariant checking (docs/INVARIANTS.md): when non-null, the
  /// driver attaches the context to the device and the path, finalizes it
  /// after the run (while the pipeline is still alive) and reports the
  /// run's check/violation counts in the DriverResult. The context may be
  /// shared across runs; counters accumulate. In FailMode::kThrow the
  /// first breach raises InvariantViolation out of the run_* call.
  CheckContext* checks = nullptr;
  /// Request-lifecycle telemetry (docs/OBSERVABILITY.md): when non-null,
  /// the driver attaches the sink to the path and stamps core_issue (at a
  /// record's first presentation attempt) and core_complete (at delivery)
  /// itself. Ignored when the build disables MAC3D_OBS.
  EventSink* sink = nullptr;
  /// Periodic occupancy/utilization sampling: when non-null, the driver
  /// registers the path's probe set, samples every window boundary during
  /// the run and flushes the tail at the makespan. The sampler may be
  /// shared across runs (rows are labeled with the path name). Ignored
  /// when the build disables MAC3D_OBS.
  CycleSampler* sampler = nullptr;
  /// Idle-cycle census (docs/OBSERVABILITY.md §profiler): when non-null,
  /// the driver registers the run's components (node0.feeder, the path's
  /// units, the device's banks/vaults/links), marks the feeder on every
  /// accepted request and observes the census once per simulated cycle at
  /// a serial point. The census may be shared across runs (counts
  /// accumulate); its probes are sealed before the pipeline dies. Ignored
  /// when the build disables MAC3D_OBS.
  ActivityCensus* census = nullptr;
  /// Host wall-clock attribution: when non-null, the driver times its
  /// tick / commit / telemetry / sampler phases. Host time never feeds
  /// back into simulated results. Ignored when the build disables
  /// MAC3D_OBS.
  HostProfiler* profiler = nullptr;
  /// Windowed snapshot streaming (docs/OBSERVABILITY.md §streaming
  /// snapshots): when non-null, the driver opens a snapshot run named
  /// after the path, registers the reserved injected/completions counters
  /// plus byte counters and occupancy gauges, advances the streamer at
  /// every serial point, and makes every window boundary a mandatory
  /// landing cycle for the event engines (so the JSONL stream is
  /// byte-identical across all four engines). If the streamer carries a
  /// StallWatchdog, the driver abandons the run the window it fires.
  /// Ignored when the build disables MAC3D_OBS.
  SnapshotStreamer* snapshot = nullptr;
  /// Livelock fault injection (watchdog testing only): from this cycle on
  /// the driver stops draining completions, so accepted work stays in
  /// flight forever and the run can only end through a fired watchdog.
  /// 0 = disabled. Requires an attached snapshot streamer + watchdog.
  Cycle inject_livelock_at = 0;
};

struct DriverResult {
  std::string path;                ///< "mac", "raw", "mshr" or "warp"
  Cycle makespan = 0;              ///< cycle the last completion arrived
  std::uint64_t raw_requests = 0;  ///< loads + stores + atomics fed in
  std::uint64_t packets = 0;       ///< HMC transactions dispatched
  std::uint64_t completions = 0;   ///< de-coalesced completions (+ fences)
  std::uint64_t bank_conflicts = 0;
  std::uint64_t refresh_stalls = 0;
  double row_hit_rate = 0.0;  ///< open-page mode only (page-policy ablation)
  std::uint64_t data_bytes = 0;    ///< payload moved on the links
  std::uint64_t link_bytes = 0;    ///< payload + control
  std::uint64_t overhead_bytes = 0;
  double avg_latency_cycles = 0.0;   ///< per raw request, accept -> complete
  double avg_packet_bytes = 0.0;
  /// Σ over HMC transactions of (response − submit) as measured inside
  /// the device model — the paper's Fig. 17 quantity.
  double device_latency_sum = 0.0;
  double device_latency_avg = 0.0;
  double avg_targets_per_entry = 0.0;  ///< MAC only (Fig. 15)
  double max_targets_per_entry = 0.0;  ///< MAC only
  std::map<std::uint32_t, std::uint64_t> packets_by_size;
  std::uint64_t checks_run = 0;        ///< invariant checks this run
  std::uint64_t check_violations = 0;  ///< breaches this run (0 = clean)

  /// Paper Sec. 5.3.1 (Eq. 3 as used in the text): request reduction.
  [[nodiscard]] double coalescing_efficiency() const noexcept {
    return raw_requests == 0 ? 0.0
                             : 1.0 - static_cast<double>(packets) /
                                         static_cast<double>(raw_requests);
  }
  /// Paper Eq. 1, measured over the whole run.
  [[nodiscard]] double bandwidth_efficiency() const noexcept {
    return link_bytes == 0 ? 0.0
                           : static_cast<double>(data_bytes) /
                                 static_cast<double>(link_bytes);
  }

  void collect(StatSet& out, const std::string& prefix) const;
};

/// Run the trace (first `threads` streams) through the MAC.
[[nodiscard]] DriverResult run_mac(const MemoryTrace& trace,
                                   const SimConfig& config,
                                   std::uint32_t threads,
                                   const DriveOptions& options = {});

/// Same trace, raw 16 B requests (the "without MAC" baseline).
[[nodiscard]] DriverResult run_raw(const MemoryTrace& trace,
                                   const SimConfig& config,
                                   std::uint32_t threads,
                                   const DriveOptions& options = {});

/// Same trace through the fixed-granularity MSHR coalescer baseline.
[[nodiscard]] DriverResult run_mshr(const MemoryTrace& trace,
                                    const SimConfig& config,
                                    std::uint32_t threads,
                                    std::uint32_t mshr_entries = 32,
                                    std::uint32_t block_bytes = 64,
                                    const DriveOptions& options = {});

/// Same trace through the SIMT-style warp-iterative coalescer
/// (config.warp_lanes / warp_block_bytes / warp_window_cycles).
[[nodiscard]] DriverResult run_warp(const MemoryTrace& trace,
                                    const SimConfig& config,
                                    std::uint32_t threads,
                                    const DriveOptions& options = {});

/// Dispatch on the policy enum (the MSHR path takes its geometry from
/// config.mshr_entries / config.mshr_block_bytes). This is the single
/// entry point the CLI's --policy flag and the policy benches go through.
[[nodiscard]] DriverResult run_policy(CoalescerPolicy policy,
                                      const MemoryTrace& trace,
                                      const SimConfig& config,
                                      std::uint32_t threads,
                                      const DriveOptions& options = {});

}  // namespace mac3d
