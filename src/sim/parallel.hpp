// Deterministic parallel execution engine (docs/PARALLELISM.md).
//
// A ParallelStepper owns a fixed pool of worker threads and executes
// *shards* of one cycle's work concurrently between barriers. The engine
// guarantees bit-identical results to serial execution for any thread
// count, provided callers follow the two rules the rest of the simulator
// is built around:
//
//   1. a shard's phase function touches only shard-local state (vaults and
//      the link that serves them, one NUMA node, one independent run), and
//   2. every cross-shard effect is staged into a per-shard mailbox during
//      the phase and applied *after* the barrier, serially, in a fixed
//      canonical order (shard index, then intra-shard staging order).
//
// Which worker executes which shard is unspecified and may vary run to
// run — rule 1 makes that invisible, rule 2 makes the merge order (the
// only place concurrency could leak into results) a deterministic
// function of the shard indices alone.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mac3d {

class HostProfiler;

class ParallelStepper {
 public:
  /// `threads` is the total worker count including the calling thread
  /// (so `threads - 1` pool threads are spawned). 0 picks the hardware
  /// concurrency; 1 degrades to inline serial execution with no pool.
  explicit ParallelStepper(std::uint32_t threads = 0);
  ~ParallelStepper();

  ParallelStepper(const ParallelStepper&) = delete;
  ParallelStepper& operator=(const ParallelStepper&) = delete;

  /// Total worker count (pool threads + the calling thread).
  [[nodiscard]] std::uint32_t thread_count() const noexcept {
    return static_cast<std::uint32_t>(workers_.size()) + 1;
  }

  /// Execute fn(0) .. fn(count - 1) across the pool and barrier until all
  /// complete. Shards must touch pairwise-disjoint state. The first
  /// exception thrown by any shard is rethrown here after the barrier
  /// (which exception is first is unspecified when several shards throw
  /// concurrently — breaches under FailMode::kThrow are already a
  /// diagnostic path, not a measured one).
  void for_shards(std::size_t count,
                  const std::function<void(std::size_t)>& fn);

  /// Run-level sharding: execute independent whole tasks (one driver run,
  /// one workload trace) across the pool. Equivalent to for_shards over
  /// the task list.
  void run_tasks(const std::vector<std::function<void()>>& tasks);

  /// Worker count the environment asks for (MAC3D_JOBS, else `fallback`).
  [[nodiscard]] static std::uint32_t env_jobs(std::uint32_t fallback = 1);

  /// Attach host wall-clock attribution (docs/OBSERVABILITY.md §profiler):
  /// each shard execution adds to its worker's busy time (calling thread
  /// = worker 0, pool thread i = worker i + 1; each slot has exactly one
  /// writer). Size the profiler with set_worker_count(thread_count())
  /// first. Per-shard clock reads only happen while attached, so an
  /// unprofiled stepper never touches the host clock. Pass nullptr to
  /// detach; attach only between for_shards calls.
  void attach_profiler(HostProfiler* profiler) noexcept {
    profiler_ = profiler;
  }

 private:
  void work(std::size_t worker_index);
  void worker_loop(std::size_t worker_index);

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::vector<std::thread> workers_;
  const std::function<void(std::size_t)>* job_ = nullptr;  // guarded
  std::size_t job_count_ = 0;                              // guarded
  std::size_t next_ = 0;                                   // guarded
  std::size_t pending_ = 0;                                // guarded
  std::uint64_t generation_ = 0;                           // guarded
  std::exception_ptr error_;                               // guarded
  bool stop_ = false;                                      // guarded
  HostProfiler* profiler_ = nullptr;  ///< set between barriers only
};

}  // namespace mac3d
