#include "sim/report.hpp"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace mac3d {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string Table::pct(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string Table::count(std::uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  int run = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (run != 0 && run % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++run;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::string Table::bytes(std::uint64_t value) {
  constexpr const char* kUnits[] = {"B", "KB", "MB", "GB", "TB"};
  double scaled = static_cast<double>(value);
  std::size_t unit = 0;
  while (scaled >= 1024.0 && unit + 1 < std::size(kUnits)) {
    scaled /= 1024.0;
    ++unit;
  }
  return fmt(scaled, unit == 0 ? 0 : 2) + " " + kUnits[unit];
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << std::setw(static_cast<int>(widths[c]))
          << (c == 0 ? std::left : std::right) << cells[c];
      out << (c == 0 ? "" : "");
      out.setf(std::ios::right, std::ios::adjustfield);
    }
    out << " |\n";
  };
  auto emit_sep = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << (c == 0 ? "+" : "+") << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };
  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return out.str();
}

std::string Table::to_csv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      out << (c ? "," : "") << cells[c];
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print() const { std::cout << to_string() << std::flush; }

void print_banner(const std::string& title) {
  std::cout << "\n=== " << title << " ===\n";
}

void print_reference(const std::string& what, const std::string& paper,
                     const std::string& measured) {
  std::cout << "  " << what << ": paper " << paper << " | measured "
            << measured << "\n";
}

}  // namespace mac3d
