// The "without MAC" baseline memory path: every raw request goes to the
// 3D-stacked memory as its own single-FLIT (16 B) transaction — exactly
// the behaviour the paper's Fig. 2 (right) and Sec. 5.3 evaluate against.
// Mirrors the MacCoalescer cycle interface so drivers are path-generic.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/check.hpp"
#include "check/conservation.hpp"
#include "common/bitutil.hpp"
#include "common/config.hpp"
#include "common/flat_cycle_map.hpp"
#include "common/ring_queue.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mac/coalescer.hpp"  // CompletedAccess
#include "mem/hmc_device.hpp"
#include "obs/obs.hpp"

namespace mac3d {

class RawPath {
 public:
  RawPath(const SimConfig& config, HmcDevice& device)
      : device_(device), queue_capacity_(config.queue_depth) {}

  [[nodiscard]] bool can_accept() const noexcept {
    return queue_.size() < queue_capacity_;
  }

  /// The raw path is a plain FIFO: intake succeeds while there is space
  /// (capped at two per cycle, matching the MAC's dual-ported intake).
  [[nodiscard]] bool try_accept(const RawRequest& request, Cycle now) {
    if (queue_.size() >= queue_capacity_) return false;
    if (accepts_at_ == now && accepts_this_cycle_ >= 2) return false;
    if (accepts_at_ != now) {
      accepts_at_ = now;
      accepts_this_cycle_ = 0;
    }
    ++accepts_this_cycle_;
    queue_.push_back(request);
    MAC3D_OBS_ACTIVITY(last_work_, now);
    accept_cycle_.put(key(request), now);
    raw_in_ += request.op != MemOp::kFence ? 1 : 0;
    fences_in_ += request.op == MemOp::kFence ? 1 : 0;
    MAC3D_OBS_STAMP(sink_, Stage::kQueueInsert, request.tid, request.tag, now);
#if MAC3D_CHECKS_ENABLED
    if (conservation_ != nullptr) {
      conservation_->on_accept(request.tid, request.tag, request.op, now);
    }
#endif
    return true;
  }

  void accept(const RawRequest& request, Cycle now) {
    const bool accepted = try_accept(request, now);
    assert(accepted);
    (void)accepted;
  }

  void tick(Cycle now) {
    last_cycle_ = now;
    if (queue_.empty()) return;
    const RawRequest& head = queue_.front();
    if (head.op == MemOp::kFence) {
      if (outstanding_ == 0) {
        CompletedAccess done;
        done.target = Target{head.tid, head.tag, 0};
        done.fence = true;
        done.accepted = take_accept(done.target, now);
        done.completed = now;
        ready_.push_back(done);
        queue_.pop_front();
        MAC3D_OBS_ACTIVITY(last_work_, now);
      }
      return;
    }
    HmcRequest request;
    request.addr = align_down(head.addr, kFlitBytes);
    request.data_bytes = kFlitBytes;
    request.write = head.op == MemOp::kStore;
    request.atomic = head.op == MemOp::kAtomic;
    request.home_node = head.node;
    const std::uint32_t flit = device_.address_map().flit_of(
        device_.address_map().local_addr(head.addr));
    request.targets.push_back(
        Target{head.tid, head.tag, static_cast<std::uint8_t>(flit)});
    if (!device_.can_accept(request, now)) return;
    request.id = next_txn_++;
    device_.submit(std::move(request), now);
    ++outstanding_;
    ++packets_out_;
    queue_.pop_front();
    MAC3D_OBS_ACTIVITY(last_work_, now);
  }

  std::vector<CompletedAccess> drain(Cycle now) {
    std::vector<CompletedAccess> out;
    out.swap(ready_);
    for (const HmcResponse& response : device_.drain(now)) {
      --outstanding_;
      for (const Target& target : response.targets) {
        CompletedAccess done;
        done.target = target;
        done.write = response.write;
        done.completed = response.completed;
        done.accepted = take_accept(target, response.completed);
        latency_.add(static_cast<double>(done.completed - done.accepted));
        out.push_back(done);
      }
    }
    if (!out.empty()) MAC3D_OBS_ACTIVITY(last_work_, now);
#if MAC3D_OBS_ENABLED
    if (sink_ != nullptr) {
      for (const CompletedAccess& done : out) {
        sink_->on_stage(Stage::kResponseMatch, done.target.tid,
                        done.target.tag, done.completed);
      }
    }
#endif
#if MAC3D_CHECKS_ENABLED
    if (conservation_ != nullptr) {
      for (const CompletedAccess& done : out) {
        conservation_->on_complete(done.target.tid, done.target.tag,
                                   done.fence, now);
      }
    }
#endif
    return out;
  }

  [[nodiscard]] bool idle() const noexcept {
    return queue_.empty() && outstanding_ == 0 && ready_.empty();
  }

  [[nodiscard]] Cycle next_event(Cycle now) const noexcept {
    if (idle()) return 0;
    if (!ready_.empty()) return now;
    if (!queue_.empty() && queue_.front().op != MemOp::kFence) return now + 1;
    const Cycle completion = device_.next_completion();
    return completion > now ? completion : now + 1;
  }

  [[nodiscard]] std::uint64_t raw_in() const noexcept { return raw_in_; }
  [[nodiscard]] std::uint64_t fences_in() const noexcept {
    return fences_in_;
  }
  [[nodiscard]] std::uint64_t packets_out() const noexcept {
    return packets_out_;
  }
  [[nodiscard]] std::size_t queue_depth() const noexcept {
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t outstanding() const noexcept {
    return outstanding_;
  }
  [[nodiscard]] const RunningStat& latency() const noexcept {
    return latency_;
  }

  /// Enable request/response conservation checking (docs/INVARIANTS.md
  /// §conservation). Same contract as MacCoalescer::attach_checks.
  void attach_checks(CheckContext* context, const std::string& scope = "raw") {
    if (context == nullptr) {
      conservation_.reset();
      return;
    }
    conservation_ = std::make_unique<ConservationChecker>(*context, scope);
    context->on_finalize([this](CheckContext&) {
      if (conservation_ != nullptr) conservation_->finalize(last_cycle_);
    });
  }

  /// Enable request-lifecycle telemetry (docs/OBSERVABILITY.md): stamps
  /// queue_insert at intake and response_match at drain. The sink must
  /// outlive the path; pass nullptr to detach.
  void attach_sink(EventSink* sink) noexcept { sink_ = sink; }

  // ---- Activity oracle (idle-cycle census, docs/OBSERVABILITY.md) --------
  [[nodiscard]] bool did_work_this_cycle(Cycle now) const noexcept {
    return last_work_ == now;
  }
  [[nodiscard]] Cycle next_activity_cycle(Cycle now) const noexcept {
    return next_event(now);
  }

 private:
  static std::uint64_t key(const RawRequest& request) noexcept {
    return request_key(request.tid, request.tag);
  }
  static std::uint64_t key(const Target& target) noexcept {
    return request_key(target.tid, target.tag);
  }

  Cycle take_accept(const Target& target, Cycle fallback) {
    return accept_cycle_.take(key(target), fallback);
  }

  HmcDevice& device_;
  std::size_t queue_capacity_;
  Cycle accepts_at_ = ~Cycle{0};
  std::uint32_t accepts_this_cycle_ = 0;
  RingQueue<RawRequest> queue_;
  FlatCycleMap accept_cycle_;
  std::vector<CompletedAccess> ready_;
  std::uint64_t outstanding_ = 0;
  std::uint64_t raw_in_ = 0;
  std::uint64_t fences_in_ = 0;
  std::uint64_t packets_out_ = 0;
  TransactionId next_txn_ = 1;
  Cycle last_cycle_ = 0;
  Cycle last_work_ = ~Cycle{0};  ///< census slot (MAC3D_OBS_ACTIVITY)
  RunningStat latency_;
  std::unique_ptr<ConservationChecker> conservation_;
  EventSink* sink_ = nullptr;
};

}  // namespace mac3d
