// Runtime-polymorphic front-end between a Node's router and its HMC
// device (DESIGN.md §policy). The streaming drivers stay templated
// on the concrete path types (zero-cost); the full-system Node selects
// its path once at construction from SimConfig::policy, so one virtual
// hop per call is paid only where the policy is a run-time knob.
//
// Adapters exist for all four policies — mac, raw, mshr, warp — and keep
// each path's established metric / census / check-scope namespaces, so a
// default (mac) system run is byte-identical to the pre-interface output.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mac/coalescer.hpp"  // CompletedAccess

namespace mac3d {

class ActivityCensus;
class CheckContext;
class EventSink;
class HmcDevice;
class MacCoalescer;

class MemoryPath {
 public:
  virtual ~MemoryPath();

  [[nodiscard]] virtual CoalescerPolicy policy() const noexcept = 0;
  /// The namespace leaf ("mac", "raw", "mshr", "warp") used for metric
  /// prefixes, census rows and check scopes.
  [[nodiscard]] virtual const char* name() const noexcept = 0;

  [[nodiscard]] virtual bool can_accept() const = 0;
  virtual bool try_accept(const RawRequest& request, Cycle now) = 0;
  virtual void accept(const RawRequest& request, Cycle now) = 0;
  virtual void tick(Cycle now) = 0;
  virtual std::vector<CompletedAccess> drain(Cycle now) = 0;
  [[nodiscard]] virtual bool idle() const = 0;
  [[nodiscard]] virtual Cycle next_event(Cycle now) const = 0;

  // ---- Activity oracle (docs/PARALLELISM.md §event-driven engine) --------
  [[nodiscard]] virtual bool did_work_this_cycle(Cycle now) const = 0;
  [[nodiscard]] virtual Cycle next_activity_cycle(Cycle now) const = 0;

  /// Attach invariant checking; `scope_prefix` is the owner's namespace
  /// ("node0."), to which the path appends its name().
  virtual void attach_checks(CheckContext* context,
                             const std::string& scope_prefix) = 0;
  virtual void attach_sink(EventSink* sink) = 0;
  /// Register this path's census rows under `prefix` + its unit names
  /// (the MAC contributes mac/arq/builder/flit_table, the others one row).
  virtual void register_census(ActivityCensus& census,
                               const std::string& prefix) = 0;
  /// Emit the path's stats under `prefix` + "." + name() + ".*".
  virtual void collect(StatSet& out, const std::string& prefix) const = 0;

  /// Non-null only for the MAC adapter (paper-specific accessors).
  [[nodiscard]] virtual MacCoalescer* as_mac() noexcept { return nullptr; }
};

/// Build the path selected by config.policy over `device`.
[[nodiscard]] std::unique_ptr<MemoryPath> make_memory_path(
    const SimConfig& config, HmcDevice& device);

}  // namespace mac3d
