// Experiment harness shared by the per-figure benchmark binaries: runs the
// twelve-workload suite through the requested memory paths and gathers
// every metric the paper's figures report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "sim/driver.hpp"
#include "workloads/workload.hpp"

namespace mac3d {

struct SuiteOptions {
  SimConfig config;
  std::uint32_t threads = 8;   ///< interleaved thread streams fed to the MAC
  double scale = 1.0;          ///< workload dataset scale
  std::uint64_t seed = 42;
  bool run_raw = true;
  bool run_mac = true;
  bool run_mshr = false;
  bool run_warp = false;
  std::uint32_t mshr_entries = 32;
  std::uint32_t mshr_block_bytes = 64;
  std::vector<std::string> only;  ///< restrict to these workloads if set
  /// Worker threads for the suite (docs/PARALLELISM.md): workloads are
  /// independent runs, so they execute as parallel tasks with results
  /// committed into registry-order slots — output is identical for any
  /// jobs value. 0 = hardware concurrency; 1 = serial. Falls back to
  /// serial when `drive` carries shared telemetry/check hooks (those
  /// capture per-run state and must observe runs one at a time).
  std::uint32_t jobs = 1;
  /// Per-run driver options (engine, feed mode, tag pool, hooks). The
  /// suite forwards it to every run_raw/run_mac/run_mshr/run_warp call.
  DriveOptions drive;
};

/// Trace-level characteristics kept per run (Fig. 9 ingredients).
struct TraceSummary {
  std::uint64_t records = 0;
  std::uint64_t instructions = 0;
  std::uint64_t memory_refs = 0;
  std::uint64_t main_memory_refs = 0;
  std::uint64_t spm_refs = 0;
  double requests_per_instruction = 0.0;
  double mem_access_rate = 0.0;
};

struct WorkloadRun {
  std::string name;
  TraceSummary trace;
  DriverResult raw;   ///< valid if options.run_raw
  DriverResult mac;   ///< valid if options.run_mac
  DriverResult mshr;  ///< valid if options.run_mshr
  DriverResult warp;  ///< valid if options.run_warp

  /// The run for `policy` (valid only if the matching run_* flag was set).
  [[nodiscard]] const DriverResult& result(CoalescerPolicy policy) const {
    switch (policy) {
      case CoalescerPolicy::kRaw: return raw;
      case CoalescerPolicy::kMshr: return mshr;
      case CoalescerPolicy::kWarp: return warp;
      case CoalescerPolicy::kMac: break;
    }
    return mac;
  }
};

/// Generate each workload's trace once and run it through the requested
/// paths. Workloads run in registry (figure) order.
[[nodiscard]] std::vector<WorkloadRun> run_suite(const SuiteOptions& options);

/// Workload scale from MAC3D_SCALE (default 1.0; the benches honour it so
/// users can approach paper-sized runs).
[[nodiscard]] double env_scale();

/// Thread count from MAC3D_THREADS (default = `fallback`).
[[nodiscard]] std::uint32_t env_threads(std::uint32_t fallback = 8);

/// Suite worker count from MAC3D_JOBS (default = `fallback`).
[[nodiscard]] std::uint32_t env_jobs(std::uint32_t fallback = 1);

/// Default suite options: Table 1 config + env overrides applied.
[[nodiscard]] SuiteOptions default_suite_options();

}  // namespace mac3d
