// Finite MSHR-style tag allocator for the open-loop feeder.
//
// A thread's (tid, tag) pair is its request identity on the response path
// (the paper's 2 B tag field, Sec. 4.1.1), so a tag must not be reissued
// while its predecessor is in flight. The feeder originally modeled this
// as a sequential cursor that stalled whenever the *next* tag was still
// busy; real hardware holds a finite pool of transaction IDs (like MSHR
// entries) and hands out any free one. This allocator models that pool:
// a FIFO free list of `capacity` tags — allocation order is 0,1,2,... on
// a fresh pool, then recycled tags in completion order, so with the full
// 64 K pool it reproduces the sequential cursor exactly until a trace
// wraps the tag space (2^16 requests per thread).
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <deque>

#include "common/types.hpp"

namespace mac3d {

class TagAllocator {
 public:
  static constexpr std::size_t kTagSpace = std::size_t{1}
                                           << (8 * sizeof(Tag));

  /// `capacity` = number of simultaneously outstanding tags (MSHR-style
  /// pool size), clamped to the 2 B tag space. 0 selects the full space.
  explicit TagAllocator(std::uint32_t capacity = 0) {
    std::size_t size = capacity == 0 ? kTagSpace
                                     : static_cast<std::size_t>(capacity);
    if (size > kTagSpace) size = kTagSpace;
    for (std::size_t tag = 0; tag < size; ++tag) {
      free_.push_back(static_cast<Tag>(tag));
    }
  }

  /// A tag is available (the thread is not stalled on pool exhaustion).
  [[nodiscard]] bool available() const noexcept { return !free_.empty(); }

  /// The tag the next allocate() will return. The feeder stamps telemetry
  /// against the peeked tag before the path accepts the request, so peek
  /// must be stable across rejected presentation attempts.
  [[nodiscard]] Tag peek() const noexcept {
    assert(!free_.empty());
    return free_.front();
  }

  Tag allocate() {
    assert(!free_.empty());
    const Tag tag = free_.front();
    free_.pop_front();
    ++allocated_;
    const std::size_t outstanding = allocated_ - released_;
    if (outstanding > high_water_) high_water_ = outstanding;
    return tag;
  }

  /// Return a completed request's tag to the pool (FIFO recycle).
  void release(Tag tag) {
    free_.push_back(tag);
    ++released_;
  }

  [[nodiscard]] std::uint64_t allocated() const noexcept { return allocated_; }
  [[nodiscard]] std::uint64_t released() const noexcept { return released_; }
  [[nodiscard]] std::size_t outstanding() const noexcept {
    return allocated_ - released_;
  }
  /// Peak simultaneously outstanding tags — how big the pool *needed* to
  /// be; compare against capacity to size real MSHR files.
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

 private:
  std::deque<Tag> free_;
  std::uint64_t allocated_ = 0;
  std::uint64_t released_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace mac3d
