#include "sim/memory_path.hpp"

#include "cache/mshr.hpp"
#include "mac/coalescer.hpp"
#include "mac/warp_coalescer.hpp"
#include "mem/hmc_device.hpp"
#include "obs/profiler.hpp"
#include "sim/raw_path.hpp"

namespace mac3d {

MemoryPath::~MemoryPath() = default;

namespace {

/// Shared plumbing: everything except the per-path stat/census specifics.
template <typename Path, CoalescerPolicy kPolicy>
class PathAdapter : public MemoryPath {
 public:
  template <typename... Args>
  explicit PathAdapter(Args&&... args)
      : path_(std::forward<Args>(args)...) {}

  [[nodiscard]] CoalescerPolicy policy() const noexcept final {
    return kPolicy;
  }
  [[nodiscard]] const char* name() const noexcept final {
    return to_string(kPolicy).data();  // enum names are NUL-terminated
  }

  [[nodiscard]] bool can_accept() const final { return path_.can_accept(); }
  bool try_accept(const RawRequest& request, Cycle now) final {
    return path_.try_accept(request, now);
  }
  void accept(const RawRequest& request, Cycle now) final {
    path_.accept(request, now);
  }
  void tick(Cycle now) final { path_.tick(now); }
  std::vector<CompletedAccess> drain(Cycle now) final {
    return path_.drain(now);
  }
  [[nodiscard]] bool idle() const final { return path_.idle(); }
  [[nodiscard]] Cycle next_event(Cycle now) const final {
    return path_.next_event(now);
  }
  [[nodiscard]] bool did_work_this_cycle(Cycle now) const final {
    return path_.did_work_this_cycle(now);
  }
  [[nodiscard]] Cycle next_activity_cycle(Cycle now) const final {
    return path_.next_activity_cycle(now);
  }
  void attach_checks(CheckContext* context,
                     const std::string& scope_prefix) final {
    path_.attach_checks(context, scope_prefix + name());
  }
  void attach_sink(EventSink* sink) final { path_.attach_sink(sink); }

 protected:
  Path path_;
};

class MacAdapter final
    : public PathAdapter<MacCoalescer, CoalescerPolicy::kMac> {
 public:
  using PathAdapter::PathAdapter;

  void register_census(ActivityCensus& census,
                       const std::string& prefix) override {
    census.add_component(prefix + "mac", path_);
    census.add_component(prefix + "arq", [this](Cycle now) {
      return path_.arq_did_work(now);
    });
    census.add_component(prefix + "builder", [this](Cycle now) {
      return path_.builder_did_work(now);
    });
    census.add_component(prefix + "flit_table", [this](Cycle now) {
      return path_.flit_table_did_work(now);
    });
  }
  void collect(StatSet& out, const std::string& prefix) const override {
    path_.stats().collect(out, prefix + ".mac");
  }
  [[nodiscard]] MacCoalescer* as_mac() noexcept override { return &path_; }
};

class RawAdapter final : public PathAdapter<RawPath, CoalescerPolicy::kRaw> {
 public:
  using PathAdapter::PathAdapter;

  void register_census(ActivityCensus& census,
                       const std::string& prefix) override {
    census.add_component(prefix + "queue", path_);
  }
  void collect(StatSet& out, const std::string& prefix) const override {
    const std::string base = prefix + ".raw";
    out.set(base + ".raw_in", static_cast<double>(path_.raw_in()));
    out.set(base + ".packets_out", static_cast<double>(path_.packets_out()));
    out.set(base + ".avg_raw_latency_cycles", path_.latency().mean());
  }
};

class MshrAdapter final
    : public PathAdapter<MshrCoalescer, CoalescerPolicy::kMshr> {
 public:
  using PathAdapter::PathAdapter;

  void register_census(ActivityCensus& census,
                       const std::string& prefix) override {
    census.add_component(prefix + "mshr", path_);
  }
  void collect(StatSet& out, const std::string& prefix) const override {
    const std::string base = prefix + ".mshr";
    const MshrStats& stats = path_.stats();
    out.set(base + ".raw_in", static_cast<double>(stats.raw_in));
    out.set(base + ".merged", static_cast<double>(stats.merged));
    out.set(base + ".packets_out", static_cast<double>(stats.packets_out));
    out.set(base + ".stalls_full", static_cast<double>(stats.stalls_full));
    out.set(base + ".coalescing_efficiency", stats.coalescing_efficiency());
    out.set(base + ".avg_raw_latency_cycles",
            stats.raw_latency_cycles.mean());
  }
};

class WarpAdapter final
    : public PathAdapter<WarpCoalescer, CoalescerPolicy::kWarp> {
 public:
  using PathAdapter::PathAdapter;

  void register_census(ActivityCensus& census,
                       const std::string& prefix) override {
    census.add_component(prefix + "warp", path_);
  }
  void collect(StatSet& out, const std::string& prefix) const override {
    path_.stats().collect(out, prefix + ".warp");
  }
};

}  // namespace

std::unique_ptr<MemoryPath> make_memory_path(const SimConfig& config,
                                             HmcDevice& device) {
  switch (config.policy) {
    case CoalescerPolicy::kRaw:
      return std::make_unique<RawAdapter>(config, device);
    case CoalescerPolicy::kMshr:
      return std::make_unique<MshrAdapter>(config, device,
                                           config.mshr_entries,
                                           config.mshr_block_bytes);
    case CoalescerPolicy::kWarp:
      return std::make_unique<WarpAdapter>(config, device);
    case CoalescerPolicy::kMac:
      break;
  }
  return std::make_unique<MacAdapter>(config, device);
}

}  // namespace mac3d
