// ASCII/CSV table rendering for the benchmark harness (one table per
// paper figure).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mac3d {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Formatting helpers.
  static std::string fmt(double value, int precision = 2);
  static std::string pct(double fraction, int precision = 2);  ///< 0.5 -> "50.00%"
  static std::string count(std::uint64_t value);  ///< 1234567 -> "1,234,567"
  static std::string bytes(std::uint64_t value);  ///< human-readable units

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::string to_csv() const;
  void print() const;  ///< to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Print a "=== Figure N: title ===" banner.
void print_banner(const std::string& title);

/// Print a paper-vs-measured comparison line.
void print_reference(const std::string& what, const std::string& paper,
                     const std::string& measured);

}  // namespace mac3d
