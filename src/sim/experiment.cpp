#include "sim/experiment.hpp"

#include <algorithm>
#include <cstdlib>

#include "sim/parallel.hpp"

namespace mac3d {

std::vector<WorkloadRun> run_suite(const SuiteOptions& options) {
  std::vector<const Workload*> selected;
  for (const Workload* workload : workload_registry()) {
    if (!options.only.empty() &&
        std::find(options.only.begin(), options.only.end(),
                  workload->name()) == options.only.end()) {
      continue;
    }
    selected.push_back(workload);
  }

  // Workloads are independent runs: each task builds its own trace,
  // device and path, and commits into its registry-order slot — so the
  // result vector is identical for any jobs value (docs/PARALLELISM.md).
  std::vector<WorkloadRun> runs(selected.size());
  const auto run_one = [&options, &selected, &runs](std::size_t index) {
    const Workload* workload = selected[index];
    WorkloadParams params;
    params.threads = options.threads;
    params.scale = options.scale;
    params.seed = options.seed;
    params.config = options.config;
    const MemoryTrace trace = workload->trace(params);

    WorkloadRun& run = runs[index];
    run.name = workload->name();
    run.trace.records = trace.size();
    run.trace.instructions = trace.instructions();
    run.trace.memory_refs = trace.memory_refs();
    run.trace.main_memory_refs = trace.main_memory_refs();
    run.trace.spm_refs = trace.spm_refs();
    run.trace.requests_per_instruction = trace.requests_per_instruction();
    run.trace.mem_access_rate = trace.mem_access_rate();

    if (options.run_raw) {
      run.raw = run_raw(trace, options.config, options.threads,
                        options.drive);
    }
    if (options.run_mac) {
      run.mac = run_mac(trace, options.config, options.threads,
                        options.drive);
    }
    if (options.run_mshr) {
      run.mshr = run_mshr(trace, options.config, options.threads,
                          options.mshr_entries, options.mshr_block_bytes,
                          options.drive);
    }
    if (options.run_warp) {
      run.warp = run_warp(trace, options.config, options.threads,
                          options.drive);
    }
  };

  // Shared telemetry/check hooks capture per-run state (probe windows,
  // stamp streams), so they force the one-run-at-a-time schedule.
  const bool hooks_attached = options.drive.checks != nullptr ||
                              options.drive.sink != nullptr ||
                              options.drive.sampler != nullptr;
  if (options.jobs == 1 || hooks_attached || selected.size() <= 1) {
    for (std::size_t i = 0; i < selected.size(); ++i) run_one(i);
  } else {
    ParallelStepper stepper(options.jobs);
    stepper.for_shards(selected.size(), run_one);
  }
  return runs;
}

double env_scale() {
  if (const char* raw = std::getenv("MAC3D_SCALE")) {
    const double scale = std::atof(raw);
    if (scale > 0.0) return scale;
  }
  return 1.0;
}

std::uint32_t env_threads(std::uint32_t fallback) {
  if (const char* raw = std::getenv("MAC3D_THREADS")) {
    const int threads = std::atoi(raw);
    if (threads > 0) return static_cast<std::uint32_t>(threads);
  }
  return fallback;
}

std::uint32_t env_jobs(std::uint32_t fallback) {
  return ParallelStepper::env_jobs(fallback);
}

SuiteOptions default_suite_options() {
  SuiteOptions options;
  options.config.apply_env();
  options.config.validate();
  options.scale = env_scale();
  options.threads = env_threads(options.config.cores);
  options.jobs = env_jobs(1);
  return options;
}

}  // namespace mac3d
