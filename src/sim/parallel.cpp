#include "sim/parallel.hpp"

#include <cstdlib>
#include <string>

#include "obs/profiler.hpp"

namespace mac3d {

ParallelStepper::ParallelStepper(std::uint32_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  workers_.reserve(threads - 1);
  for (std::uint32_t i = 1; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ParallelStepper::~ParallelStepper() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ParallelStepper::for_shards(std::size_t count,
                                 const std::function<void(std::size_t)>& fn) {
  if (count == 0) return;
  if (count == 1 || workers_.empty()) {
    const double start = profiler_ != nullptr ? host_now_seconds() : 0.0;
    for (std::size_t i = 0; i < count; ++i) fn(i);
    if (profiler_ != nullptr) {
      profiler_->add_worker_busy(0, host_now_seconds() - start);
    }
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    job_ = &fn;
    job_count_ = count;
    next_ = 0;
    pending_ = count;
    error_ = nullptr;
    ++generation_;
  }
  work_cv_.notify_all();

  // The calling thread participates: claim and run shards until the pool
  // drains the index space, then barrier on the last shard retiring.
  work(0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  job_ = nullptr;
  if (error_ != nullptr) {
    std::exception_ptr error = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void ParallelStepper::run_tasks(const std::vector<std::function<void()>>& tasks) {
  for_shards(tasks.size(), [&tasks](std::size_t index) { tasks[index](); });
}

std::uint32_t ParallelStepper::env_jobs(std::uint32_t fallback) {
  const char* raw = std::getenv("MAC3D_JOBS");
  if (raw == nullptr || *raw == '\0') return fallback;
  const long parsed = std::strtol(raw, nullptr, 10);
  if (parsed <= 0) return fallback;
  return static_cast<std::uint32_t>(parsed);
}

void ParallelStepper::work(std::size_t worker_index) {
  std::unique_lock<std::mutex> lock(mutex_);
  while (job_ != nullptr && next_ < job_count_) {
    const std::size_t shard = next_++;
    const std::function<void(std::size_t)>* fn = job_;
    // The profiler pointer is stable for the whole barrier interval
    // (attach_profiler only runs between for_shards calls), so reading it
    // under the lock here is safe; worker_index's busy slot has this
    // thread as its only writer.
    HostProfiler* profiler = profiler_;
    lock.unlock();
    const double start = profiler != nullptr ? host_now_seconds() : 0.0;
    std::exception_ptr caught;
    try {
      (*fn)(shard);
    } catch (...) {
      caught = std::current_exception();
    }
    if (profiler != nullptr) {
      profiler->add_worker_busy(worker_index, host_now_seconds() - start);
    }
    lock.lock();
    if (caught != nullptr && error_ == nullptr) error_ = caught;
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ParallelStepper::worker_loop(std::size_t worker_index) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this, seen] {
        return stop_ || (job_ != nullptr && generation_ != seen &&
                         next_ < job_count_);
      });
      if (stop_) return;
      seen = generation_;
    }
    work(worker_index);
  }
}

}  // namespace mac3d
