// Comparison metrics between memory paths (the quantities the paper's
// evaluation figures report).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/driver.hpp"

namespace mac3d {

/// Fig. 17: memory-system performance gain from coalescing — the paper
/// measures "the difference in execution latency of HMC memory
/// transactions ... as measured by HMCSIM with and without MAC", i.e. the
/// reduction of the summed device-level transaction latency:
/// 1 - Σlat(MAC transactions) / Σlat(raw transactions).
[[nodiscard]] inline double memory_speedup(const DriverResult& raw,
                                           const DriverResult& mac) noexcept {
  return raw.device_latency_sum <= 0.0
             ? 0.0
             : 1.0 - mac.device_latency_sum / raw.device_latency_sum;
}

/// Makespan view of the same comparison (drain time of the whole trace).
[[nodiscard]] inline double makespan_speedup(const DriverResult& raw,
                                             const DriverResult& mac) noexcept {
  return raw.makespan == 0
             ? 0.0
             : 1.0 - static_cast<double>(mac.makespan) /
                         static_cast<double>(raw.makespan);
}

/// Fig. 12: bank conflicts eliminated by the coalescer.
[[nodiscard]] inline std::uint64_t bank_conflict_reduction(
    const DriverResult& raw, const DriverResult& mac) noexcept {
  return raw.bank_conflicts >= mac.bank_conflicts
             ? raw.bank_conflicts - mac.bank_conflicts
             : 0;
}

/// Fig. 14: link bytes saved (control overhead no longer transferred).
[[nodiscard]] inline std::uint64_t bandwidth_saving_bytes(
    const DriverResult& raw, const DriverResult& mac) noexcept {
  return raw.link_bytes >= mac.link_bytes ? raw.link_bytes - mac.link_bytes
                                          : 0;
}

/// Geometric mean (used for cross-workload summaries).
[[nodiscard]] inline double geomean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double log_sum = 0.0;
  for (double v : values) log_sum += std::log(v <= 0.0 ? 1e-12 : v);
  return std::exp(log_sum / static_cast<double>(values.size()));
}

/// Arithmetic mean.
[[nodiscard]] inline double mean(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

}  // namespace mac3d
