// Deterministic, seedable PRNGs for workload generation.
//
// Workloads must be bit-reproducible across runs and platforms (DESIGN.md
// invariant 9), so we use fixed-algorithm generators instead of <random>
// distributions whose implementations vary between standard libraries.
#pragma once

#include <cstdint>

namespace mac3d {

/// SplitMix64: used to expand a single seed into generator state.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** — fast, high-quality, deterministic 64-bit generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit constexpr Xoshiro256(std::uint64_t seed = 0x1234567ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& word : state_) word = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  constexpr result_type operator()() noexcept { return next(); }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias worth caring about
  /// for simulation purposes (Lemire-style multiply-shift reduction).
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace mac3d
