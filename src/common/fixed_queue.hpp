// Bounded ring-buffer FIFO used for all hardware queues in the model
// (local/remote/global access queues, vault queues, response buffers).
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace mac3d {

/// Fixed-capacity FIFO. Capacity is set at construction; push on a full
/// queue is a programming error (callers must check full() — hardware
/// queues exert back-pressure instead of dropping).
template <typename T>
class FixedQueue {
 public:
  explicit FixedQueue(std::size_t capacity)
      : buffer_(capacity == 0 ? 1 : capacity), capacity_(capacity) {}

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] bool full() const noexcept { return size_ == capacity_; }
  [[nodiscard]] std::size_t free_slots() const noexcept {
    return capacity_ - size_;
  }

  void push(T value) {
    assert(!full());
    buffer_[tail_] = std::move(value);
    tail_ = advance(tail_);
    ++size_;
  }

  /// Push if space is available; returns false (and drops nothing from the
  /// caller's hands — value is untouched on failure) when full.
  [[nodiscard]] bool try_push(const T& value) {
    if (full()) return false;
    push(value);
    return true;
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return buffer_[head_];
  }

  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buffer_[head_];
  }

  T pop() {
    assert(!empty());
    T value = std::move(buffer_[head_]);
    head_ = advance(head_);
    --size_;
    return value;
  }

  void clear() noexcept {
    head_ = tail_ = 0;
    size_ = 0;
  }

  /// Element i positions from the head (0 == front). For comparator scans.
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    std::size_t idx = head_ + i;
    if (idx >= buffer_.size()) idx -= buffer_.size();
    return buffer_[idx];
  }

  [[nodiscard]] T& at(std::size_t i) {
    assert(i < size_);
    std::size_t idx = head_ + i;
    if (idx >= buffer_.size()) idx -= buffer_.size();
    return buffer_[idx];
  }

 private:
  [[nodiscard]] std::size_t advance(std::size_t idx) const noexcept {
    ++idx;
    return idx == buffer_.size() ? 0 : idx;
  }

  std::vector<T> buffer_;
  std::size_t capacity_;
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mac3d
