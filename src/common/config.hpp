// Simulation configuration: every parameter of Table 1 plus the detailed
// timing/structure knobs of the HMC device, MAC and node models.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

#include "common/types.hpp"

namespace mac3d {

/// Error thrown on invalid configuration values or parse failures.
class ConfigError : public std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// All tunables of the simulated system. Defaults reproduce Table 1 of the
/// paper. Use parse_overrides()/from_env() to adjust, then validate().
struct SimConfig {
  // ---- Node / cores (Table 1) -------------------------------------------
  std::uint32_t cores = 8;             ///< in-order cores per node
  double cpu_ghz = 3.3;                ///< CPU clock frequency
  std::uint64_t spm_bytes = 1u << 20;  ///< scratchpad per core (1 MB)
  double spm_latency_ns = 1.0;         ///< avg SPM access latency
  std::uint32_t nodes = 1;             ///< NUMA nodes in the system

  // ---- HMC device (Table 1 + Sec. 2.2) ----------------------------------
  std::uint32_t hmc_links = 4;                 ///< external links
  std::uint64_t hmc_capacity = 8ull << 30;     ///< 8 GB cube
  std::uint32_t row_bytes = 256;               ///< DRAM row (block) size
  std::uint32_t vaults = 32;                   ///< interleaved vaults
  std::uint32_t banks_per_vault = 16;          ///< 512 banks in an 8 GB cube
  std::uint32_t vault_queue_depth = 32;        ///< per-vault request queue
  std::uint32_t link_queue_depth = 32;         ///< per-link injection queue

  // HMC timing (in CPU cycles). Calibrated so an isolated 16 B read takes
  // ~93 ns at 3.3 GHz (Table 1 average HMC access latency); a unit test
  // asserts the calibration.
  std::uint32_t t_link_flit = 1;       ///< cycles/FLIT (HMC 2.1, 30 Gbps lanes)
  std::uint32_t t_serdes = 55;         ///< SerDes + controller, each way
  std::uint32_t t_vault_ctrl = 8;      ///< vault controller decode/schedule
  std::uint32_t t_bank_access = 180;   ///< ACT + CAS + data for closed page
  std::uint32_t t_bank_precharge = 46; ///< PRE before the bank is reusable
  std::uint32_t t_row_data_flit = 1;   ///< extra bank cycles per data FLIT
  // Per-bank refresh (staggered by the vault controllers): the bank is
  // unavailable for t_rfc every t_refi. Off by default (t_refi = 0) so
  // the Table-1 93 ns calibration is deterministic; enable with e.g.
  // t_refi=12870,t_rfc=528 (DRAM tREFI 3.9 us / tRFC 160 ns at 3.3 GHz).
  std::uint32_t t_refi = 0;
  std::uint32_t t_rfc = 528;
  /// Hypothetical open-page policy (the real HMC closes the row after
  /// every access — Sec. 2.2.1; this knob exists for the page-policy
  /// ablation that reproduces that argument).
  bool open_page = false;
  std::uint32_t t_bank_activate = 90;  ///< ACT (open-page mode)
  std::uint32_t t_bank_cas = 90;       ///< CAS + first data (open-page mode)

  // ---- MAC (Table 1 + Sec. 4) -------------------------------------------
  std::uint32_t arq_entries = 32;      ///< Aggregated Request Queue depth
  std::uint32_t arq_entry_bytes = 64;  ///< bytes of storage per ARQ entry
  std::uint32_t arq_pop_interval = 2;  ///< pop one entry every N cycles
  std::uint32_t builder_min_bytes = 64;   ///< smallest coalesced packet
  std::uint32_t builder_max_bytes = 256;  ///< largest coalesced packet
  /// Sec. 4.1 latency-hiding bypass ("fill-fast"): when the free-entry
  /// counter rises above half the ARQ size, the next N requests skip the
  /// comparators. The paper pitches it for I/O-bound phases and program
  /// start-up; with stall-on-reference cores the ARQ runs far below half
  /// occupancy and the mechanism would suppress aggregation entirely, so
  /// it defaults to off here (see the fill-fast ablation bench).
  bool fill_fast_enabled = false;
  bool mac_enabled = true;        ///< false => raw 16 B requests pass through

  // ---- Coalescer policy (DESIGN.md §policy) ------------------------
  /// Which front-end a Node places between router and HMC device. The
  /// streaming drivers take the policy as an argument instead; the CLI's
  /// --policy flag sets both.
  CoalescerPolicy policy = CoalescerPolicy::kMac;
  /// Heterogeneous per-node policy overrides for the full system:
  /// "<i>:<raw|mac|mshr|warp>" entries joined by ';' (e.g. "0:raw;2:warp").
  /// Listed nodes use their entry, unlisted nodes fall back to `policy`.
  /// Empty = homogeneous. The CLI's repeatable --node-policy flag builds
  /// this; the streaming drivers ignore it (they take a single policy).
  std::string node_policies;
  std::uint32_t mshr_entries = 32;      ///< MSHR file size (mshr policy)
  std::uint32_t mshr_block_bytes = 64;  ///< MSHR merge block (mshr policy)
  std::uint32_t warp_lanes = 8;         ///< lanes per warp window (warp policy)
  std::uint32_t warp_block_bytes = 64;  ///< same-block merge granule (warp)
  /// Max cycles a partially filled warp window waits for more lanes
  /// before it is released anyway (warp policy).
  std::uint32_t warp_window_cycles = 8;

  // ---- Interconnect (Sec. 3, NUMA) --------------------------------------
  std::uint32_t remote_hop_cycles = 120;   ///< node-to-node one-way latency
  std::uint32_t queue_depth = 64;          ///< local/remote/global queues

  // ---- Derived quantities ------------------------------------------------
  [[nodiscard]] std::uint32_t flits_per_row() const noexcept {
    return row_bytes / kFlitBytes;
  }
  [[nodiscard]] std::uint32_t builder_groups() const noexcept {
    return row_bytes / builder_min_bytes;
  }
  [[nodiscard]] std::uint32_t flits_per_group() const noexcept {
    return builder_min_bytes / kFlitBytes;
  }
  [[nodiscard]] std::uint32_t total_banks() const noexcept {
    return vaults * banks_per_vault;
  }
  /// Max merged targets per ARQ entry (Sec. 5.3.3: (64 − 10) / 4.5 = 12).
  [[nodiscard]] std::uint32_t max_targets_per_entry() const noexcept;
  /// The policy node `node` runs: its node_policies entry if present,
  /// otherwise `policy`. Throws ConfigError on a malformed node_policies
  /// string (validate() rejects it up front).
  [[nodiscard]] CoalescerPolicy policy_for_node(std::uint32_t node) const;
  /// Convert nanoseconds to CPU cycles (rounding to nearest).
  [[nodiscard]] Cycle ns_to_cycles(double ns) const noexcept;
  /// Convert CPU cycles to nanoseconds.
  [[nodiscard]] double cycles_to_ns(Cycle cycles) const noexcept;

  /// Throws ConfigError when any parameter combination is inconsistent.
  void validate() const;

  /// Apply "key=value" overrides, e.g. {"arq_entries=64", "cores=4"}.
  /// Unknown keys throw ConfigError.
  void parse_overrides(const std::map<std::string, std::string>& kv);

  /// Parse a comma/space separated "k=v,k=v" override string.
  void parse_override_string(const std::string& text);

  /// Read MAC3D_* environment overrides (e.g. MAC3D_ARQ_ENTRIES=64).
  void apply_env();

  /// Human-readable dump in Table 1 style.
  [[nodiscard]] std::string to_table() const;

  /// Machine-readable snapshot: key -> JSON value token, one entry per
  /// parse_overrides() key (a round-trip through parse_overrides()
  /// reproduces this config). Used by the run report.
  [[nodiscard]] std::map<std::string, std::string> to_kv() const;
};

}  // namespace mac3d
