// Minimal JSON emission helpers shared by StatSet::to_json, the
// observability layer (src/obs/) and the bench report emitter. Writing
// only — the simulator never parses JSON.
#pragma once

#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace mac3d {

/// Escape a string for inclusion inside JSON double quotes.
inline std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Quote + escape in one step.
inline std::string json_quote(std::string_view text) {
  return '"' + json_escape(text) + '"';
}

/// Format a double as a JSON number token at full round-trip precision.
/// Integral values print without an exponent/fraction; non-finite values
/// (illegal in JSON) degrade to null.
inline std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  // Integers up to 2^53 round-trip exactly and read better than 1e+06.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRId64,
                  static_cast<std::int64_t>(value));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// Format an unsigned 64-bit counter as a JSON number token.
inline std::string json_number(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
  return buf;
}

}  // namespace mac3d
