// Core value types shared by every module of the MAC reproduction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mac3d {

/// Physical byte address into the 3D-stacked memory space.
using Address = std::uint64_t;

/// Simulation time in CPU cycles (3.3 GHz by default, see SimConfig).
using Cycle = std::uint64_t;

/// Hardware thread identifier (paper: 2 B => up to 64 K threads).
using ThreadId = std::uint16_t;

/// Per-thread transaction tag (paper: 2 B => up to 64 K transactions/thread).
using Tag = std::uint16_t;

/// Core index within a node.
using CoreId = std::uint8_t;

/// Node index within the NUMA system.
using NodeId = std::uint16_t;

/// Kind of a raw memory operation entering the MAC.
enum class MemOp : std::uint8_t {
  kLoad,    ///< read; coalescable (T bit = 0)
  kStore,   ///< write; coalescable (T bit = 1)
  kFence,   ///< memory fence; disables ARQ comparators until drained
  kAtomic,  ///< atomic RMW; bypasses coalescing entirely
};

[[nodiscard]] constexpr std::string_view to_string(MemOp op) noexcept {
  switch (op) {
    case MemOp::kLoad: return "load";
    case MemOp::kStore: return "store";
    case MemOp::kFence: return "fence";
    case MemOp::kAtomic: return "atomic";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_coalescable(MemOp op) noexcept {
  return op == MemOp::kLoad || op == MemOp::kStore;
}

/// HMC protocol FLIT (FLow control unIT) size in bytes.
inline constexpr std::uint32_t kFlitBytes = 16;

/// Header + tail control overhead per *access* (request + response), bytes.
/// One FLIT of control on the request packet and one on the response.
inline constexpr std::uint32_t kAccessOverheadBytes = 32;

/// Largest request packet the HMC 2.1 protocol supports.
inline constexpr std::uint32_t kMaxPacketDataBytes = 256;

/// A raw, uncoalesced memory request as produced by a core / trace.
///
/// Raw requests are FLIT-granular: the trace layer splits any access that
/// straddles a FLIT boundary before it reaches the MAC (Sec. 4.1: the FLIT
/// offset in bits 0..3 is ignored by the aggregator).
struct RawRequest {
  Address addr = 0;          ///< physical byte address
  MemOp op = MemOp::kLoad;   ///< operation kind
  std::uint8_t size = 8;     ///< access size in bytes (<= kFlitBytes)
  ThreadId tid = 0;          ///< originating hardware thread
  Tag tag = 0;               ///< per-thread transaction tag
  CoreId core = 0;           ///< originating core
  NodeId node = 0;           ///< originating node (NUMA)

  friend bool operator==(const RawRequest&, const RawRequest&) = default;
};

/// Identity of one merged raw request inside a coalesced packet
/// (paper Sec. 4.1.1: "target" = TID + tag + FLIT id, 4.5 B each).
struct Target {
  ThreadId tid = 0;
  Tag tag = 0;
  std::uint8_t flit = 0;  ///< FLIT index within the DRAM row

  friend bool operator==(const Target&, const Target&) = default;
};

/// Paper Sec. 4.1.1: each target occupies 4.5 B of ARQ entry storage.
inline constexpr double kTargetBytes = 4.5;

/// Collision-free packed (tid, tag) key for the per-request cycle maps.
/// Each component gets a full 32-bit lane, so the pack cannot alias even
/// if ThreadId/Tag are ever widened up to 32 bits; the static_asserts
/// turn any widening beyond that into a compile error instead of a
/// silent key collision (the 16-bit-shift pack this replaces aliased as
/// soon as a tag crossed 16 bits).
static_assert(sizeof(ThreadId) <= sizeof(std::uint32_t),
              "request_key packs ThreadId into a 32-bit lane");
static_assert(sizeof(Tag) <= sizeof(std::uint32_t),
              "request_key packs Tag into a 32-bit lane");

[[nodiscard]] constexpr std::uint64_t request_key(ThreadId tid,
                                                  Tag tag) noexcept {
  return (static_cast<std::uint64_t>(tid) << 32) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(tag));
}

/// Which front-end turns raw requests into HMC packets (DESIGN.md
/// §policy). One enum consumed by SimConfig, Driver, Node and the CLI so
/// every layer names policies identically.
enum class CoalescerPolicy : std::uint8_t {
  kRaw,   ///< no coalescing: one 16 B transaction per raw request
  kMac,   ///< the paper's ARQ + request builder + FLIT table
  kMshr,  ///< cache-style MSHR file merging to fixed-size blocks
  kWarp,  ///< SIMT-style iterative leader/same-block lane merging
};

[[nodiscard]] constexpr std::string_view to_string(
    CoalescerPolicy policy) noexcept {
  switch (policy) {
    case CoalescerPolicy::kRaw: return "raw";
    case CoalescerPolicy::kMac: return "mac";
    case CoalescerPolicy::kMshr: return "mshr";
    case CoalescerPolicy::kWarp: return "warp";
  }
  return "?";
}

/// Parse a policy name ("raw"/"mac"/"mshr"/"warp"). Returns false and
/// leaves `out` untouched on an unknown name.
[[nodiscard]] constexpr bool parse_policy(std::string_view name,
                                          CoalescerPolicy& out) noexcept {
  if (name == "raw") {
    out = CoalescerPolicy::kRaw;
  } else if (name == "mac") {
    out = CoalescerPolicy::kMac;
  } else if (name == "mshr") {
    out = CoalescerPolicy::kMshr;
  } else if (name == "warp") {
    out = CoalescerPolicy::kWarp;
  } else {
    return false;
  }
  return true;
}

}  // namespace mac3d
