// Core value types shared by every module of the MAC reproduction.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace mac3d {

/// Physical byte address into the 3D-stacked memory space.
using Address = std::uint64_t;

/// Simulation time in CPU cycles (3.3 GHz by default, see SimConfig).
using Cycle = std::uint64_t;

/// Hardware thread identifier (paper: 2 B => up to 64 K threads).
using ThreadId = std::uint16_t;

/// Per-thread transaction tag (paper: 2 B => up to 64 K transactions/thread).
using Tag = std::uint16_t;

/// Core index within a node.
using CoreId = std::uint8_t;

/// Node index within the NUMA system.
using NodeId = std::uint16_t;

/// Kind of a raw memory operation entering the MAC.
enum class MemOp : std::uint8_t {
  kLoad,    ///< read; coalescable (T bit = 0)
  kStore,   ///< write; coalescable (T bit = 1)
  kFence,   ///< memory fence; disables ARQ comparators until drained
  kAtomic,  ///< atomic RMW; bypasses coalescing entirely
};

[[nodiscard]] constexpr std::string_view to_string(MemOp op) noexcept {
  switch (op) {
    case MemOp::kLoad: return "load";
    case MemOp::kStore: return "store";
    case MemOp::kFence: return "fence";
    case MemOp::kAtomic: return "atomic";
  }
  return "?";
}

[[nodiscard]] constexpr bool is_coalescable(MemOp op) noexcept {
  return op == MemOp::kLoad || op == MemOp::kStore;
}

/// HMC protocol FLIT (FLow control unIT) size in bytes.
inline constexpr std::uint32_t kFlitBytes = 16;

/// Header + tail control overhead per *access* (request + response), bytes.
/// One FLIT of control on the request packet and one on the response.
inline constexpr std::uint32_t kAccessOverheadBytes = 32;

/// Largest request packet the HMC 2.1 protocol supports.
inline constexpr std::uint32_t kMaxPacketDataBytes = 256;

/// A raw, uncoalesced memory request as produced by a core / trace.
///
/// Raw requests are FLIT-granular: the trace layer splits any access that
/// straddles a FLIT boundary before it reaches the MAC (Sec. 4.1: the FLIT
/// offset in bits 0..3 is ignored by the aggregator).
struct RawRequest {
  Address addr = 0;          ///< physical byte address
  MemOp op = MemOp::kLoad;   ///< operation kind
  std::uint8_t size = 8;     ///< access size in bytes (<= kFlitBytes)
  ThreadId tid = 0;          ///< originating hardware thread
  Tag tag = 0;               ///< per-thread transaction tag
  CoreId core = 0;           ///< originating core
  NodeId node = 0;           ///< originating node (NUMA)

  friend bool operator==(const RawRequest&, const RawRequest&) = default;
};

/// Identity of one merged raw request inside a coalesced packet
/// (paper Sec. 4.1.1: "target" = TID + tag + FLIT id, 4.5 B each).
struct Target {
  ThreadId tid = 0;
  Tag tag = 0;
  std::uint8_t flit = 0;  ///< FLIT index within the DRAM row

  friend bool operator==(const Target&, const Target&) = default;
};

/// Paper Sec. 4.1.1: each target occupies 4.5 B of ARQ entry storage.
inline constexpr double kTargetBytes = 4.5;

}  // namespace mac3d
