// Lightweight statistics: named scalar counters, running means and
// histograms, plus a flat StatSet used for reporting and CSV export.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mac3d {

/// Running mean/min/max accumulator (no storage of samples).
class RunningStat {
 public:
  void add(double sample) noexcept;
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Power-of-two bucketed histogram for latency / size distributions.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets = 32) : buckets_(buckets, 0) {}

  void add(std::uint64_t value) noexcept;
  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  /// Approximate p-quantile (q in [0,1]) from bucket boundaries.
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
};

/// Flat name -> value map every component dumps its counters into.
class StatSet {
 public:
  void set(const std::string& name, double value) { values_[name] = value; }
  void add(const std::string& name, double delta) { values_[name] += delta; }

  [[nodiscard]] bool contains(const std::string& name) const {
    return values_.count(name) != 0;
  }
  /// Returns 0.0 for missing stats (reporting convenience).
  [[nodiscard]] double get(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, double>& values() const noexcept {
    return values_;
  }

  /// Render as an aligned two-column text table.
  [[nodiscard]] std::string to_string() const;
  /// Render as "name,value" CSV lines.
  [[nodiscard]] std::string to_csv() const;

 private:
  std::map<std::string, double> values_;
};

}  // namespace mac3d
