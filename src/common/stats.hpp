// Lightweight statistics: named scalar counters, running means and
// histograms, plus a flat StatSet used for reporting and CSV export.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mac3d {

/// Running mean/min/max accumulator (no storage of samples).
class RunningStat {
 public:
  void add(double sample) noexcept;
  void merge(const RunningStat& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Power-of-two bucketed histogram for latency / size distributions.
class Histogram {
 public:
  explicit Histogram(std::size_t buckets = 32) : buckets_(buckets, 0) {}

  void add(std::uint64_t value) noexcept;
  /// Fold another histogram in. A shorter histogram widens; counts from a
  /// longer one land in this histogram's saturating last bucket, exactly
  /// as add() would have placed the underlying values.
  void merge(const Histogram& other) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& buckets() const noexcept {
    return buckets_;
  }
  /// Smallest / largest value ever added (0 when empty).
  [[nodiscard]] std::uint64_t min_value() const noexcept {
    return total_ == 0 ? 0 : min_value_;
  }
  [[nodiscard]] std::uint64_t max_value() const noexcept { return max_value_; }
  /// Inclusive lower edge of bucket i: 0, 1, 2, 4, 8, ...
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t i) noexcept;
  /// Approximate p-quantile (q in [0,1]). q=0 returns the exact minimum,
  /// q=1 the exact maximum; interior ranks resolve to their bucket's upper
  /// edge clamped into [min, max].
  [[nodiscard]] std::uint64_t quantile(double q) const noexcept;

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t total_ = 0;
  std::uint64_t min_value_ = 0;
  std::uint64_t max_value_ = 0;
};

/// Flat name -> value map every component dumps its counters into.
class StatSet {
 public:
  void set(const std::string& name, double value) { values_[name] = value; }
  void add(const std::string& name, double delta) { values_[name] += delta; }

  [[nodiscard]] bool contains(const std::string& name) const {
    return values_.count(name) != 0;
  }
  /// Returns 0.0 for missing stats (reporting convenience).
  [[nodiscard]] double get(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, double>& values() const noexcept {
    return values_;
  }

  /// Render as an aligned two-column text table.
  [[nodiscard]] std::string to_string() const;
  /// Render as "name,value" CSV lines.
  [[nodiscard]] std::string to_csv() const;
  /// Render as a JSON object — keys sorted, numbers at full round-trip
  /// precision (a parse of the output reproduces every double bit-exactly).
  [[nodiscard]] std::string to_json() const;

 private:
  std::map<std::string, double> values_;
};

}  // namespace mac3d
