// Open-addressed flat map keyed by a packed 64-bit (tid, tag) used to
// remember per-request accept cycles on the MAC / raw-path hot loops.
// Replaces std::unordered_map there: one contiguous allocation, linear
// probing, backward-shift deletion (no tombstones), and no iteration API
// at all — so it cannot introduce unordered-iteration nondeterminism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mac3d {

/// uint64 -> Cycle map supporting exactly the hot-path operations the
/// accept-cycle tables need: put (insert-or-assign) and take (find +
/// erase, returning a fallback when absent). Keys are 64-bit so the
/// request_key() pack (tid and tag each in their own 32-bit lane) can
/// never alias. Deterministic by construction: probe order depends only
/// on the key sequence.
class FlatCycleMap {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  /// Current slot-array size (power of two). Exposed so tests can assert
  /// that in-place updates never trigger a rehash.
  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }

  void put(std::uint64_t key, Cycle value) {
    // Probe for the key first: updating an existing entry must never
    // rehash (the load factor only counts distinct keys, and a grow()
    // here would invalidate the probe we are standing on).
    if (!slots_.empty()) {
      std::size_t i = home(key);
      while (slots_[i].used) {
        if (slots_[i].key == key) {
          slots_[i].value = value;
          return;
        }
        i = next(i);
      }
    }
    // Genuine insert: keep load factor under 3/4 counting this key,
    // then re-probe (grow() moved every slot).
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    std::size_t i = home(key);
    while (slots_[i].used) i = next(i);
    slots_[i] = Slot{key, value, true};
    ++size_;
  }

  /// Remove `key` and return its value, or `fallback` when absent.
  [[nodiscard]] Cycle take(std::uint64_t key, Cycle fallback) noexcept {
    if (slots_.empty()) return fallback;
    std::size_t i = home(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        const Cycle value = slots_[i].value;
        erase_slot(i);
        return value;
      }
      i = next(i);
    }
    return fallback;
  }

  void clear() noexcept {
    for (Slot& slot : slots_) slot.used = false;
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint64_t key = 0;
    Cycle value = 0;
    bool used = false;
  };

  [[nodiscard]] std::size_t home(std::uint64_t key) const noexcept {
    // 64-bit Fibonacci multiplicative hash; the shift keeps the
    // well-mixed high bits before masking to the power-of-two capacity.
    return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
           (slots_.size() - 1);
  }

  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) & (slots_.size() - 1);
  }

  void erase_slot(std::size_t i) noexcept {
    // Backward-shift deletion keeps probe chains gap-free, so lookups
    // never need tombstone checks. An element at j may fill the hole at
    // i only if its home does not lie cyclically in (i, j] — moving it
    // in front of its own home would break its probe chain. Elements at
    // their home stay put, but the scan must continue past them: the
    // cluster can still hold later elements homed at or before i.
    std::size_t j = next(i);
    while (slots_[j].used) {
      const std::size_t h = home(slots_[j].key);
      const bool home_in_gap = (j >= i) ? (h > i && h <= j) : (h > i || h <= j);
      if (!home_in_gap) {
        slots_[i] = slots_[j];
        i = j;
      }
      j = next(j);
    }
    slots_[i].used = false;
    --size_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.used) put(slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace mac3d
