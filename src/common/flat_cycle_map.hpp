// Open-addressed flat map keyed by a packed 32-bit (tid, tag) used to
// remember per-request accept cycles on the MAC / raw-path hot loops.
// Replaces std::unordered_map there: one contiguous allocation, linear
// probing, backward-shift deletion (no tombstones), and no iteration API
// at all — so it cannot introduce unordered-iteration nondeterminism.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mac3d {

/// uint32 -> Cycle map supporting exactly the hot-path operations the
/// accept-cycle tables need: put (insert-or-assign) and take (find +
/// erase, returning a fallback when absent). Deterministic by
/// construction: probe order depends only on the key sequence.
class FlatCycleMap {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void put(std::uint32_t key, Cycle value) {
    // Keep load factor under 3/4 (counting the incoming insert).
    if (slots_.empty() || (size_ + 1) * 4 > slots_.size() * 3) grow();
    std::size_t i = home(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        slots_[i].value = value;
        return;
      }
      i = next(i);
    }
    slots_[i] = Slot{key, value, true};
    ++size_;
  }

  /// Remove `key` and return its value, or `fallback` when absent.
  [[nodiscard]] Cycle take(std::uint32_t key, Cycle fallback) noexcept {
    if (slots_.empty()) return fallback;
    std::size_t i = home(key);
    while (slots_[i].used) {
      if (slots_[i].key == key) {
        const Cycle value = slots_[i].value;
        erase_slot(i);
        return value;
      }
      i = next(i);
    }
    return fallback;
  }

  void clear() noexcept {
    for (Slot& slot : slots_) slot.used = false;
    size_ = 0;
  }

 private:
  struct Slot {
    std::uint32_t key = 0;
    Cycle value = 0;
    bool used = false;
  };

  [[nodiscard]] std::size_t home(std::uint32_t key) const noexcept {
    // Fibonacci multiplicative hash; capacity is a power of two.
    return static_cast<std::size_t>(key * 0x9E3779B9u) & (slots_.size() - 1);
  }

  [[nodiscard]] std::size_t next(std::size_t i) const noexcept {
    return (i + 1) & (slots_.size() - 1);
  }

  void erase_slot(std::size_t i) noexcept {
    // Backward-shift deletion keeps probe chains gap-free, so lookups
    // never need tombstone checks.
    std::size_t j = next(i);
    while (slots_[j].used && home(slots_[j].key) != j) {
      slots_[i] = slots_[j];
      i = j;
      j = next(j);
    }
    slots_[i].used = false;
    --size_;
  }

  void grow() {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(old.empty() ? 16 : old.size() * 2, Slot{});
    size_ = 0;
    for (const Slot& slot : old) {
      if (slot.used) put(slot.key, slot.value);
    }
  }

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
};

}  // namespace mac3d
