// Small branch-free bit helpers used by address decoding and the FLIT map.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>

namespace mac3d {

/// Extract `count` bits of `value` starting at bit `lsb` (lsb-first).
[[nodiscard]] constexpr std::uint64_t bits(std::uint64_t value, unsigned lsb,
                                           unsigned count) noexcept {
  assert(count >= 1 && count <= 64);
  assert(lsb < 64);
  const std::uint64_t mask =
      count >= 64 ? ~0ULL : ((std::uint64_t{1} << count) - 1);
  return (value >> lsb) & mask;
}

/// True iff `value` is a power of two (and nonzero).
[[nodiscard]] constexpr bool is_pow2(std::uint64_t value) noexcept {
  return value != 0 && std::has_single_bit(value);
}

/// log2 of a power of two.
[[nodiscard]] constexpr unsigned log2_exact(std::uint64_t value) noexcept {
  assert(is_pow2(value));
  return static_cast<unsigned>(std::countr_zero(value));
}

/// Number of set bits.
[[nodiscard]] constexpr unsigned popcount64(std::uint64_t value) noexcept {
  return static_cast<unsigned>(std::popcount(value));
}

/// Index of lowest set bit; undefined for 0.
[[nodiscard]] constexpr unsigned lowest_bit(std::uint64_t value) noexcept {
  assert(value != 0);
  return static_cast<unsigned>(std::countr_zero(value));
}

/// Index of highest set bit; undefined for 0.
[[nodiscard]] constexpr unsigned highest_bit(std::uint64_t value) noexcept {
  assert(value != 0);
  return 63u - static_cast<unsigned>(std::countl_zero(value));
}

/// Round `value` up to the next multiple of power-of-two `align`.
[[nodiscard]] constexpr std::uint64_t align_up(std::uint64_t value,
                                               std::uint64_t align) noexcept {
  assert(is_pow2(align));
  return (value + align - 1) & ~(align - 1);
}

/// Round `value` down to a multiple of power-of-two `align`.
[[nodiscard]] constexpr std::uint64_t align_down(std::uint64_t value,
                                                 std::uint64_t align) noexcept {
  assert(is_pow2(align));
  return value & ~(align - 1);
}

}  // namespace mac3d
