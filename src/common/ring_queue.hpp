// Growable ring-buffer FIFO for unbounded hot-path queues (MAC issue
// queue, raw-path access queue, builder output). Unlike FixedQueue this
// has no capacity ceiling — it doubles in place — but keeps the same
// cache-friendly contiguous storage instead of std::deque's paged nodes.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace mac3d {

/// Unbounded FIFO over a contiguous power-of-two ring. push_back is
/// amortized O(1); iteration order is insertion order (deterministic).
template <typename T>
class RingQueue {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  void push_back(T value) {
    if (size_ == buffer_.size()) grow();
    buffer_[wrap(head_ + size_)] = std::move(value);
    ++size_;
  }

  [[nodiscard]] T& front() {
    assert(!empty());
    return buffer_[head_];
  }

  [[nodiscard]] const T& front() const {
    assert(!empty());
    return buffer_[head_];
  }

  void pop_front() {
    assert(!empty());
    buffer_[head_] = T{};  // release held resources eagerly
    head_ = wrap(head_ + 1);
    --size_;
  }

  /// Element i positions from the head (0 == front).
  [[nodiscard]] const T& at(std::size_t i) const {
    assert(i < size_);
    return buffer_[wrap(head_ + i)];
  }

  void clear() noexcept {
    for (std::size_t i = 0; i < size_; ++i) buffer_[wrap(head_ + i)] = T{};
    head_ = 0;
    size_ = 0;
  }

 private:
  [[nodiscard]] std::size_t wrap(std::size_t idx) const noexcept {
    return idx & (buffer_.size() - 1);  // capacity is a power of two
  }

  void grow() {
    std::vector<T> bigger(buffer_.empty() ? 8 : buffer_.size() * 2);
    for (std::size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(buffer_[wrap(head_ + i)]);
    }
    buffer_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> buffer_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace mac3d
