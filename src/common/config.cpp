#include "common/config.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <sstream>
#include <utility>
#include <vector>

#include "common/bitutil.hpp"

namespace mac3d {
namespace {

std::uint64_t parse_u64(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const std::uint64_t parsed = std::stoull(value, &pos, 0);
    if (pos != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw ConfigError("invalid integer for " + key + ": '" + value + "'");
  }
}

double parse_f64(const std::string& key, const std::string& value) {
  try {
    std::size_t pos = 0;
    const double parsed = std::stod(value, &pos);
    if (pos != value.size()) throw std::invalid_argument(value);
    return parsed;
  } catch (const std::exception&) {
    throw ConfigError("invalid number for " + key + ": '" + value + "'");
  }
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "1" || value == "true" || value == "on") return true;
  if (value == "0" || value == "false" || value == "off") return false;
  throw ConfigError("invalid bool for " + key + ": '" + value + "'");
}

CoalescerPolicy parse_policy_value(const std::string& key,
                                   const std::string& value) {
  // to_kv() emits the policy as a quoted JSON string token; accept that
  // form back so the documented kv round-trip holds.
  std::string name = value;
  if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
    name = name.substr(1, name.size() - 2);
  }
  CoalescerPolicy policy = CoalescerPolicy::kMac;
  if (!parse_policy(name, policy)) {
    throw ConfigError("invalid policy for " + key + ": '" + value +
                      "' (want raw|mac|mshr|warp)");
  }
  return policy;
}

/// Parse a "<i>:<policy>[;<i>:<policy>...]" node_policies string (the
/// quoted to_kv form is accepted back, like parse_policy_value).
std::vector<std::pair<std::uint32_t, CoalescerPolicy>> parse_node_policies(
    const std::string& value) {
  std::string text = value;
  if (text.size() >= 2 && text.front() == '"' && text.back() == '"') {
    text = text.substr(1, text.size() - 2);
  }
  std::vector<std::pair<std::uint32_t, CoalescerPolicy>> entries;
  if (text.empty()) return entries;
  std::istringstream stream(text);
  std::string entry;
  while (std::getline(stream, entry, ';')) {
    const auto colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      throw ConfigError("invalid node_policies entry '" + entry +
                        "' (want <node>:<raw|mac|mshr|warp>)");
    }
    const std::uint32_t node = static_cast<std::uint32_t>(
        parse_u64("node_policies", entry.substr(0, colon)));
    CoalescerPolicy policy = CoalescerPolicy::kMac;
    if (!parse_policy(entry.substr(colon + 1), policy)) {
      throw ConfigError("invalid policy in node_policies entry '" + entry +
                        "' (want raw|mac|mshr|warp)");
    }
    entries.emplace_back(node, policy);
  }
  return entries;
}

}  // namespace

CoalescerPolicy SimConfig::policy_for_node(std::uint32_t node) const {
  CoalescerPolicy result = policy;
  // Later entries win, so a CLI can append overrides.
  for (const auto& [index, entry] : parse_node_policies(node_policies)) {
    if (index == node) result = entry;
  }
  return result;
}

std::uint32_t SimConfig::max_targets_per_entry() const noexcept {
  // Entry layout (Sec. 5.3.3): 64-bit extended address + FLIT map occupy
  // 8 B + flit-map bytes; the remainder buffers 4.5 B targets.
  const double map_bytes = flits_per_row() / 8.0;
  const double avail = static_cast<double>(arq_entry_bytes) - 8.0 - map_bytes;
  if (avail <= 0) return 1;
  return static_cast<std::uint32_t>(std::floor(avail / kTargetBytes));
}

Cycle SimConfig::ns_to_cycles(double ns) const noexcept {
  return static_cast<Cycle>(std::llround(ns * cpu_ghz));
}

double SimConfig::cycles_to_ns(Cycle cycles) const noexcept {
  return static_cast<double>(cycles) / cpu_ghz;
}

void SimConfig::validate() const {
  auto require = [](bool ok, const std::string& message) {
    if (!ok) throw ConfigError(message);
  };
  require(cores >= 1 && cores <= 1024, "cores must be in [1, 1024]");
  require(cpu_ghz > 0, "cpu_ghz must be positive");
  require(nodes >= 1, "nodes must be >= 1");
  require(is_pow2(row_bytes) && row_bytes >= 2 * kFlitBytes,
          "row_bytes must be a power of two >= 32");
  require(row_bytes <= 4096, "row_bytes must be <= 4096");
  require(is_pow2(vaults), "vaults must be a power of two");
  require(is_pow2(banks_per_vault), "banks_per_vault must be a power of two");
  require(is_pow2(hmc_capacity), "hmc_capacity must be a power of two");
  require(hmc_capacity >= static_cast<std::uint64_t>(row_bytes) * total_banks(),
          "hmc_capacity too small for vault/bank/row geometry");
  require(hmc_links >= 1 && is_pow2(hmc_links),
          "hmc_links must be a power of two >= 1");
  require(hmc_links <= vaults, "hmc_links must not exceed vaults");
  require(arq_entries >= 2, "arq_entries must be >= 2");
  require(arq_entry_bytes >= 16, "arq_entry_bytes must be >= 16");
  require(arq_pop_interval >= 1, "arq_pop_interval must be >= 1");
  require(is_pow2(builder_min_bytes) && builder_min_bytes >= kFlitBytes,
          "builder_min_bytes must be a power of two >= 16");
  require(builder_max_bytes == row_bytes,
          "builder_max_bytes must equal row_bytes (one row per packet)");
  require(builder_min_bytes <= builder_max_bytes,
          "builder_min_bytes must be <= builder_max_bytes");
  require(vault_queue_depth >= 1, "vault_queue_depth must be >= 1");
  require(link_queue_depth >= 1, "link_queue_depth must be >= 1");
  require(queue_depth >= 1, "queue_depth must be >= 1");
  require(t_link_flit >= 1, "t_link_flit must be >= 1");
  require(t_refi == 0 || t_rfc < t_refi,
          "t_rfc must be smaller than t_refi (or t_refi 0 to disable)");
  require(mshr_entries >= 1, "mshr_entries must be >= 1");
  require(is_pow2(mshr_block_bytes) && mshr_block_bytes >= kFlitBytes &&
              mshr_block_bytes <= kMaxPacketDataBytes,
          "mshr_block_bytes must be a power of two in [16, 256]");
  require(warp_lanes >= 1 && warp_lanes <= 64,
          "warp_lanes must be in [1, 64]");
  require(is_pow2(warp_block_bytes) && warp_block_bytes >= kFlitBytes &&
              warp_block_bytes <= kMaxPacketDataBytes,
          "warp_block_bytes must be a power of two in [16, 256]");
  // Warp merges must stay inside one DRAM row (one packet == one row
  // visit, same contract the builder obeys), so blocks must nest in rows.
  require(warp_block_bytes <= row_bytes &&
              row_bytes % warp_block_bytes == 0,
          "warp_block_bytes must divide row_bytes");
  require(warp_window_cycles >= 1, "warp_window_cycles must be >= 1");
  // Parses or throws; every listed node must exist in this system.
  for (const auto& [index, entry] : parse_node_policies(node_policies)) {
    (void)entry;
    require(index < nodes, "node_policies references node " +
                               std::to_string(index) + " but nodes = " +
                               std::to_string(nodes));
  }
}

void SimConfig::parse_overrides(
    const std::map<std::string, std::string>& kv) {
  const std::map<std::string, std::function<void(const std::string&)>>
      setters = {
          {"cores", [&](const std::string& v) {
             cores = static_cast<std::uint32_t>(parse_u64("cores", v));
           }},
          {"cpu_ghz", [&](const std::string& v) {
             cpu_ghz = parse_f64("cpu_ghz", v);
           }},
          {"spm_bytes", [&](const std::string& v) {
             spm_bytes = parse_u64("spm_bytes", v);
           }},
          {"spm_latency_ns", [&](const std::string& v) {
             spm_latency_ns = parse_f64("spm_latency_ns", v);
           }},
          {"nodes", [&](const std::string& v) {
             nodes = static_cast<std::uint32_t>(parse_u64("nodes", v));
           }},
          {"hmc_links", [&](const std::string& v) {
             hmc_links = static_cast<std::uint32_t>(parse_u64("hmc_links", v));
           }},
          {"hmc_capacity", [&](const std::string& v) {
             hmc_capacity = parse_u64("hmc_capacity", v);
           }},
          {"row_bytes", [&](const std::string& v) {
             row_bytes = static_cast<std::uint32_t>(parse_u64("row_bytes", v));
             builder_max_bytes = row_bytes;
           }},
          {"vaults", [&](const std::string& v) {
             vaults = static_cast<std::uint32_t>(parse_u64("vaults", v));
           }},
          {"banks_per_vault", [&](const std::string& v) {
             banks_per_vault =
                 static_cast<std::uint32_t>(parse_u64("banks_per_vault", v));
           }},
          {"vault_queue_depth", [&](const std::string& v) {
             vault_queue_depth =
                 static_cast<std::uint32_t>(parse_u64("vault_queue_depth", v));
           }},
          {"link_queue_depth", [&](const std::string& v) {
             link_queue_depth =
                 static_cast<std::uint32_t>(parse_u64("link_queue_depth", v));
           }},
          {"t_link_flit", [&](const std::string& v) {
             t_link_flit =
                 static_cast<std::uint32_t>(parse_u64("t_link_flit", v));
           }},
          {"t_serdes", [&](const std::string& v) {
             t_serdes = static_cast<std::uint32_t>(parse_u64("t_serdes", v));
           }},
          {"t_vault_ctrl", [&](const std::string& v) {
             t_vault_ctrl =
                 static_cast<std::uint32_t>(parse_u64("t_vault_ctrl", v));
           }},
          {"t_bank_access", [&](const std::string& v) {
             t_bank_access =
                 static_cast<std::uint32_t>(parse_u64("t_bank_access", v));
           }},
          {"t_bank_precharge", [&](const std::string& v) {
             t_bank_precharge =
                 static_cast<std::uint32_t>(parse_u64("t_bank_precharge", v));
           }},
          {"t_row_data_flit", [&](const std::string& v) {
             t_row_data_flit =
                 static_cast<std::uint32_t>(parse_u64("t_row_data_flit", v));
           }},
          {"t_refi", [&](const std::string& v) {
             t_refi = static_cast<std::uint32_t>(parse_u64("t_refi", v));
           }},
          {"t_rfc", [&](const std::string& v) {
             t_rfc = static_cast<std::uint32_t>(parse_u64("t_rfc", v));
           }},
          {"open_page", [&](const std::string& v) {
             open_page = parse_bool("open_page", v);
           }},
          {"t_bank_activate", [&](const std::string& v) {
             t_bank_activate =
                 static_cast<std::uint32_t>(parse_u64("t_bank_activate", v));
           }},
          {"t_bank_cas", [&](const std::string& v) {
             t_bank_cas =
                 static_cast<std::uint32_t>(parse_u64("t_bank_cas", v));
           }},
          {"arq_entries", [&](const std::string& v) {
             arq_entries =
                 static_cast<std::uint32_t>(parse_u64("arq_entries", v));
           }},
          {"arq_entry_bytes", [&](const std::string& v) {
             arq_entry_bytes =
                 static_cast<std::uint32_t>(parse_u64("arq_entry_bytes", v));
           }},
          {"arq_pop_interval", [&](const std::string& v) {
             arq_pop_interval =
                 static_cast<std::uint32_t>(parse_u64("arq_pop_interval", v));
           }},
          {"builder_min_bytes", [&](const std::string& v) {
             builder_min_bytes =
                 static_cast<std::uint32_t>(parse_u64("builder_min_bytes", v));
           }},
          {"fill_fast_enabled", [&](const std::string& v) {
             fill_fast_enabled = parse_bool("fill_fast_enabled", v);
           }},
          {"mac_enabled", [&](const std::string& v) {
             mac_enabled = parse_bool("mac_enabled", v);
           }},
          {"policy", [&](const std::string& v) {
             policy = parse_policy_value("policy", v);
           }},
          {"node_policies", [&](const std::string& v) {
             // Parse eagerly so malformed strings fail at the override
             // site; quotes are stripped like parse_policy_value.
             std::string text = v;
             if (text.size() >= 2 && text.front() == '"' &&
                 text.back() == '"') {
               text = text.substr(1, text.size() - 2);
             }
             (void)parse_node_policies(text);
             node_policies = text;
           }},
          {"mshr_entries", [&](const std::string& v) {
             mshr_entries =
                 static_cast<std::uint32_t>(parse_u64("mshr_entries", v));
           }},
          {"mshr_block_bytes", [&](const std::string& v) {
             mshr_block_bytes =
                 static_cast<std::uint32_t>(parse_u64("mshr_block_bytes", v));
           }},
          {"warp_lanes", [&](const std::string& v) {
             warp_lanes =
                 static_cast<std::uint32_t>(parse_u64("warp_lanes", v));
           }},
          {"warp_block_bytes", [&](const std::string& v) {
             warp_block_bytes =
                 static_cast<std::uint32_t>(parse_u64("warp_block_bytes", v));
           }},
          {"warp_window_cycles", [&](const std::string& v) {
             warp_window_cycles = static_cast<std::uint32_t>(
                 parse_u64("warp_window_cycles", v));
           }},
          {"remote_hop_cycles", [&](const std::string& v) {
             remote_hop_cycles =
                 static_cast<std::uint32_t>(parse_u64("remote_hop_cycles", v));
           }},
          {"queue_depth", [&](const std::string& v) {
             queue_depth =
                 static_cast<std::uint32_t>(parse_u64("queue_depth", v));
           }},
      };

  for (const auto& [key, value] : kv) {
    const auto it = setters.find(key);
    if (it == setters.end()) throw ConfigError("unknown config key: " + key);
    it->second(value);
  }
}

void SimConfig::parse_override_string(const std::string& text) {
  std::map<std::string, std::string> kv;
  std::string token;
  std::istringstream stream(text);
  while (std::getline(stream, token, ',')) {
    // Also allow whitespace-separated pairs inside a comma token.
    std::istringstream inner(token);
    std::string pair;
    while (inner >> pair) {
      const auto eq = pair.find('=');
      if (eq == std::string::npos || eq == 0) {
        throw ConfigError("expected key=value, got '" + pair + "'");
      }
      kv[pair.substr(0, eq)] = pair.substr(eq + 1);
    }
  }
  parse_overrides(kv);
}

void SimConfig::apply_env() {
  if (const char* overrides = std::getenv("MAC3D_CONFIG")) {
    parse_override_string(overrides);
  }
}

std::map<std::string, std::string> SimConfig::to_kv() const {
  auto u = [](std::uint64_t value) { return std::to_string(value); };
  auto f = [](double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return std::string(buf);
  };
  auto b = [](bool value) { return std::string(value ? "true" : "false"); };
  // Keep this list in lock-step with the parse_overrides() setters map.
  return {
      {"cores", u(cores)},
      {"cpu_ghz", f(cpu_ghz)},
      {"spm_bytes", u(spm_bytes)},
      {"spm_latency_ns", f(spm_latency_ns)},
      {"nodes", u(nodes)},
      {"hmc_links", u(hmc_links)},
      {"hmc_capacity", u(hmc_capacity)},
      {"row_bytes", u(row_bytes)},
      {"vaults", u(vaults)},
      {"banks_per_vault", u(banks_per_vault)},
      {"vault_queue_depth", u(vault_queue_depth)},
      {"link_queue_depth", u(link_queue_depth)},
      {"t_link_flit", u(t_link_flit)},
      {"t_serdes", u(t_serdes)},
      {"t_vault_ctrl", u(t_vault_ctrl)},
      {"t_bank_access", u(t_bank_access)},
      {"t_bank_precharge", u(t_bank_precharge)},
      {"t_row_data_flit", u(t_row_data_flit)},
      {"t_refi", u(t_refi)},
      {"t_rfc", u(t_rfc)},
      {"open_page", b(open_page)},
      {"t_bank_activate", u(t_bank_activate)},
      {"t_bank_cas", u(t_bank_cas)},
      {"arq_entries", u(arq_entries)},
      {"arq_entry_bytes", u(arq_entry_bytes)},
      {"arq_pop_interval", u(arq_pop_interval)},
      {"builder_min_bytes", u(builder_min_bytes)},
      {"fill_fast_enabled", b(fill_fast_enabled)},
      {"mac_enabled", b(mac_enabled)},
      // Quoted: to_kv() values are JSON value tokens (see RunReport).
      {"policy", '"' + std::string(to_string(policy)) + '"'},
      {"node_policies", '"' + node_policies + '"'},
      {"mshr_entries", u(mshr_entries)},
      {"mshr_block_bytes", u(mshr_block_bytes)},
      {"warp_lanes", u(warp_lanes)},
      {"warp_block_bytes", u(warp_block_bytes)},
      {"warp_window_cycles", u(warp_window_cycles)},
      {"remote_hop_cycles", u(remote_hop_cycles)},
      {"queue_depth", u(queue_depth)},
  };
}

std::string SimConfig::to_table() const {
  std::ostringstream out;
  out << "Parameter                | Value\n"
      << "-------------------------+---------------------------\n"
      << "ISA (traced)             | RV64-equivalent native kernels\n"
      << "Core #                   | " << cores << "\n"
      << "CPU Frequency            | " << cpu_ghz << " GHz\n"
      << "SPM                      | " << (spm_bytes >> 20)
      << " MB per core\n"
      << "Avg. SPM Access Latency  | " << spm_latency_ns << " ns\n"
      << "HMC                      | " << hmc_links << " Links, "
      << (hmc_capacity >> 30) << " GB, " << row_bytes << "B-block\n"
      << "Vaults x Banks           | " << vaults << " x " << banks_per_vault
      << " (" << total_banks() << " banks)\n"
      << "ARQ                      | " << arq_entries << " entries, "
      << arq_entry_bytes << "B per entry\n"
      << "Builder packet sizes     | " << builder_min_bytes << "B - "
      << builder_max_bytes << "B\n";
  return out.str();
}

}  // namespace mac3d
