#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <sstream>

#include "common/json.hpp"

namespace mac3d {

void RunningStat::add(double sample) noexcept {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  sum_ += sample;
  ++count_;
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::add(std::uint64_t value) noexcept {
  const std::size_t bucket =
      value == 0 ? 0
                 : std::min<std::size_t>(buckets_.size() - 1,
                                         64 - std::countl_zero(value));
  ++buckets_[bucket];
  if (total_ == 0) {
    min_value_ = max_value_ = value;
  } else {
    min_value_ = std::min(min_value_, value);
    max_value_ = std::max(max_value_, value);
  }
  ++total_;
}

void Histogram::merge(const Histogram& other) noexcept {
  if (other.total_ == 0) return;
  for (std::size_t i = 0; i < other.buckets_.size(); ++i) {
    // Counts beyond this histogram's width fold into the saturating last
    // bucket — the same bucket add() would have chosen for those values.
    const std::size_t bucket = std::min(i, buckets_.size() - 1);
    buckets_[bucket] += other.buckets_[i];
  }
  if (total_ == 0) {
    min_value_ = other.min_value_;
    max_value_ = other.max_value_;
  } else {
    min_value_ = std::min(min_value_, other.min_value_);
    max_value_ = std::max(max_value_, other.max_value_);
  }
  total_ += other.total_;
}

std::uint64_t Histogram::bucket_lower(std::size_t i) noexcept {
  if (i == 0) return 0;
  if (i >= 64) return ~0ULL;
  return std::uint64_t{1} << (i - 1);
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  if (q <= 0.0) return min_value_;
  if (q >= 1.0) return max_value_;
  // Rank statistics: the k-th smallest sample with k = ceil(q * total),
  // clamped to [1, total]. The old threshold formulation returned bucket
  // 0's edge for any q with q * total < 1 — q=0.01 on a histogram whose
  // smallest sample is 10^6 reported 0.
  const double exact = q * static_cast<double>(total_);
  std::uint64_t rank = static_cast<std::uint64_t>(exact);
  if (static_cast<double>(rank) < exact) ++rank;
  rank = std::clamp<std::uint64_t>(rank, 1, total_);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Upper edge of bucket i covers values < 2^i; clamping into
      // [min, max] keeps single-bucket and saturated-last-bucket
      // histograms from reporting edges no sample ever reached.
      const std::uint64_t edge =
          i == 0 ? 0
                 : (i >= 64 ? ~0ULL : (std::uint64_t{1} << i) - 1);
      return std::clamp(edge, min_value_, max_value_);
    }
  }
  return max_value_;
}

double StatSet::get(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

std::string StatSet::to_string() const {
  std::size_t width = 0;
  for (const auto& [name, value] : values_) {
    width = std::max(width, name.size());
  }
  std::ostringstream out;
  for (const auto& [name, value] : values_) {
    out << std::left << std::setw(static_cast<int>(width) + 2) << name
        << std::right << std::fixed << std::setprecision(4) << value << '\n';
  }
  return out.str();
}

std::string StatSet::to_csv() const {
  std::ostringstream out;
  out << std::setprecision(10);
  for (const auto& [name, value] : values_) {
    out << name << ',' << value << '\n';
  }
  return out.str();
}

std::string StatSet::to_json() const {
  // values_ is a std::map, so iteration order is already sorted by key.
  std::string out = "{";
  bool first = true;
  for (const auto& [name, value] : values_) {
    if (!first) out += ',';
    first = false;
    out += json_quote(name);
    out += ':';
    out += json_number(value);
  }
  out += '}';
  return out;
}

}  // namespace mac3d
