#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <iomanip>
#include <sstream>

namespace mac3d {

void RunningStat::add(double sample) noexcept {
  if (count_ == 0) {
    min_ = max_ = sample;
  } else {
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
  }
  sum_ += sample;
  ++count_;
}

void RunningStat::merge(const RunningStat& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  sum_ += other.sum_;
  count_ += other.count_;
}

void Histogram::add(std::uint64_t value) noexcept {
  const std::size_t bucket =
      value == 0 ? 0
                 : std::min<std::size_t>(buckets_.size() - 1,
                                         64 - std::countl_zero(value));
  ++buckets_[bucket];
  ++total_;
}

std::uint64_t Histogram::quantile(double q) const noexcept {
  if (total_ == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const auto threshold =
      static_cast<std::uint64_t>(q * static_cast<double>(total_));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen >= threshold) {
      // Upper edge of bucket i covers values < 2^i.
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
    }
  }
  return ~0ULL;
}

double StatSet::get(const std::string& name) const {
  const auto it = values_.find(name);
  return it == values_.end() ? 0.0 : it->second;
}

std::string StatSet::to_string() const {
  std::size_t width = 0;
  for (const auto& [name, value] : values_) {
    width = std::max(width, name.size());
  }
  std::ostringstream out;
  for (const auto& [name, value] : values_) {
    out << std::left << std::setw(static_cast<int>(width) + 2) << name
        << std::right << std::fixed << std::setprecision(4) << value << '\n';
  }
  return out.str();
}

std::string StatSet::to_csv() const {
  std::ostringstream out;
  out << std::setprecision(10);
  for (const auto& [name, value] : values_) {
    out << name << ',' << value << '\n';
  }
  return out.str();
}

}  // namespace mac3d
