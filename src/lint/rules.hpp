// Internal interface between the lint engine (lint.cpp) and the rule
// catalog (rules.cpp). Modeled on the src/check/ invariant-catalog split:
// lint.hpp is the public surface, this header carries the repo model the
// rules consume.
#pragma once

#include <string>
#include <vector>

#include "lint/lexer.hpp"
#include "lint/lint.hpp"

namespace mac3d::lint {

/// One lexed translation unit (root-relative path, '/' separators).
struct FileTokens {
  std::string path;
  std::vector<Token> tokens;
};

/// Machine-readable metric-name grammar (docs/metrics_schema.json).
/// Placeholders in angle brackets (`<i>`, `<S>`, `<D>`) match one or more
/// decimal digits when a concrete name is tested against a pattern.
struct MetricsSchema {
  struct Family {
    std::string doc;     ///< namespace text as documented, e.g. "system.*"
    std::string prefix;  ///< dotted prefix, e.g. "node<i>.router"
    std::vector<std::string> names;  ///< leaf names ([] = prefix is a leaf)
  };

  bool present = false;  ///< docs/metrics_schema.json exists
  bool valid = false;    ///< parsed and structurally sound
  std::string error;     ///< why valid is false
  std::vector<Family> families;

  /// Every concrete metric pattern ("node<i>.router.routed", ...).
  [[nodiscard]] std::vector<std::string> patterns() const;
};

/// Everything the rules need to see: the lexed source tree plus the
/// cross-file artifacts the SYNC/OBS rules reconcile.
struct RepoModel {
  std::string root;
  std::vector<FileTokens> files;  ///< src/** + apps/**, sorted by path

  std::vector<std::string> stage_names;  ///< from src/obs/obs.hpp
  long stage_count = -1;                 ///< kStageCount value (-1 unknown)

  MetricsSchema schema;

  bool obs_doc_present = false;
  std::string obs_doc;  ///< docs/OBSERVABILITY.md text
  bool inv_doc_present = false;
  std::string inv_doc;  ///< docs/INVARIANTS.md text
  bool inv_header_present = false;
  std::vector<Token> inv_header;  ///< src/check/invariants.hpp tokens
};

/// Match a concrete dotted name against a schema pattern (placeholders in
/// angle brackets consume one-or-more digits).
[[nodiscard]] bool pattern_match(std::string_view pattern,
                                 std::string_view name);

/// Parse the canonical stage-name list out of the lexed obs header (the
/// string literals of `to_string(Stage)`'s case arms).
[[nodiscard]] std::vector<std::string> taxonomy_from_obs_header(
    const std::vector<Token>& tokens);

/// Parse the `kStageCount = N` constant (-1 when absent).
[[nodiscard]] long count_from_obs_header(const std::vector<Token>& tokens);

/// Build a MetricsSchema from the JSON text (present=false when the file
/// was missing, in which case `text` is ignored).
[[nodiscard]] MetricsSchema parse_metrics_schema(const std::string& text,
                                                 bool present);

/// Run the per-file rules (DET + path-scoped OBS rules) over one file.
void run_file_rules(const RepoModel& model, const FileTokens& file,
                    std::vector<Finding>& out);

/// Run the repo-level rules (SYNC family).
void run_repo_rules(const RepoModel& model, std::vector<Finding>& out);

}  // namespace mac3d::lint
