// The lint rule catalog (docs/STATIC_ANALYSIS.md). Each rule is a small
// token-stream scanner; the catalog mirrors the src/check/invariants.hpp
// style: a stable dotted id, a family, and a one-line summary that doubles
// as the SARIF rule description.
#include "lint/rules.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>

#include "lint/json_doc.hpp"

namespace mac3d::lint {
namespace {

// ---- Catalog -------------------------------------------------------------

const std::vector<RuleInfo> kCatalog = {
    {"det.activity_oracle", "DET",
     "a header-declared tickable component (void tick(Cycle ...)) must "
     "also advertise the activity-oracle pair did_work_this_cycle / "
     "next_activity_cycle that the event-driven fast-forward engine and "
     "the idle census consume (docs/PARALLELISM.md)"},
    {"det.env_access", "DET",
     "environment reads outside the config layer make runs depend on "
     "ambient state; route configuration through SimConfig"},
    {"det.rand_source", "DET",
     "nondeterministic or implementation-defined random sources are "
     "banned in simulation code; use common/rng.hpp (DESIGN.md inv. 9)"},
    {"det.static_mutable_local", "DET",
     "mutable function-local statics carry hidden cross-run state that "
     "survives between simulations sharing a process"},
    {"det.unordered_iteration", "DET",
     "iterating a std::unordered_{map,set} visits hash order, which "
     "breaks the serial/parallel bit-identity contract "
     "(docs/PARALLELISM.md); iterate a sorted view or use std::map"},
    {"det.wall_clock", "DET",
     "wall-clock time sources in simulation code leak host timing into "
     "results; simulated time comes from the cycle counter"},
    {"obs.metric_name_grammar", "OBS",
     "metric-name string literals at registry call sites must parse "
     "against the namespace grammar in docs/metrics_schema.json"},
    {"obs.naked_check_site", "OBS",
     "CheckContext calls outside #if MAC3D_CHECKS_ENABLED regions defeat "
     "the zero-cost contract; use MAC3D_CHECK (docs/INVARIANTS.md)"},
    {"obs.raw_stamp_call", "OBS",
     "EventSink calls outside #if MAC3D_OBS_ENABLED regions defeat the "
     "zero-cost contract; use MAC3D_OBS_STAMP/MERGE/HOP "
     "(docs/OBSERVABILITY.md)"},
    {"obs.stage_taxonomy", "OBS",
     "lifecycle stage-name literals must be members of the 10-stage "
     "taxonomy in src/obs/obs.hpp"},
    {"sync.invariant_ids", "SYNC",
     "every invariant id registered in src/check/invariants.hpp must "
     "appear in docs/INVARIANTS.md and vice versa"},
    {"sync.metrics_schema", "SYNC",
     "docs/metrics_schema.json must exist, parse, and agree with the "
     "metric-namespace table in docs/OBSERVABILITY.md"},
    {"sync.stage_docs", "SYNC",
     "the stage taxonomy in src/obs/obs.hpp and the stage table in "
     "docs/OBSERVABILITY.md must list exactly the same stages"},
};

// ---- Small token helpers -------------------------------------------------

[[nodiscard]] bool is_punct(const Token& token, std::string_view text) {
  return token.kind == Tok::kPunct && token.text == text;
}

[[nodiscard]] bool is_ident(const Token& token, std::string_view text) {
  return token.kind == Tok::kIdent && token.text == text;
}

[[nodiscard]] const Token* at(const std::vector<Token>& tokens,
                              std::size_t i) {
  return i < tokens.size() ? &tokens[i] : nullptr;
}

[[nodiscard]] bool next_is_call(const std::vector<Token>& tokens,
                                std::size_t i) {
  const Token* next = at(tokens, i + 1);
  return next != nullptr && is_punct(*next, "(");
}

[[nodiscard]] bool prev_is_member_access(const std::vector<Token>& tokens,
                                         std::size_t i) {
  if (i == 0) return false;
  const Token& prev = tokens[i - 1];
  return is_punct(prev, ".") || is_punct(prev, "->");
}

/// Index just past the ')' matching the '(' at `open` (or tokens.size()).
[[nodiscard]] std::size_t skip_parens(const std::vector<Token>& tokens,
                                      std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < tokens.size(); ++i) {
    if (is_punct(tokens[i], "(")) ++depth;
    if (is_punct(tokens[i], ")") && --depth == 0) return i + 1;
  }
  return tokens.size();
}

[[nodiscard]] bool path_starts_with(std::string_view path,
                                    std::string_view prefix) {
  return path.substr(0, prefix.size()) == prefix;
}

[[nodiscard]] std::string lower(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

void add_finding(std::vector<Finding>& out, std::string_view rule,
                 std::string file, std::uint32_t line, std::uint32_t col,
                 std::string message) {
  out.push_back({std::string(rule), std::move(file), line, col,
                 std::move(message), false});
}

// ---- DET: det.rand_source / det.wall_clock / det.env_access --------------

// Identifier call sites banned outright (libc/std random and wall-clock
// entry points) and type names whose mere mention is a violation.
const std::set<std::string, std::less<>> kRandCalls = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48", "random"};
const std::set<std::string, std::less<>> kRandTypes = {
    "random_device",       "mt19937",
    "mt19937_64",          "minstd_rand",
    "minstd_rand0",        "default_random_engine",
    "knuth_b",             "uniform_int_distribution",
    "uniform_real_distribution", "normal_distribution",
    "bernoulli_distribution",    "poisson_distribution",
    "exponential_distribution",  "discrete_distribution"};
const std::set<std::string, std::less<>> kClockCalls = {"time", "clock"};
const std::set<std::string, std::less<>> kClockNames = {
    "system_clock",  "steady_clock", "high_resolution_clock",
    "gettimeofday",  "clock_gettime", "timespec_get"};
const std::set<std::string, std::less<>> kEnvCalls = {
    "getenv", "secure_getenv", "setenv", "putenv", "unsetenv"};

void det_banned_idents(const FileTokens& file, std::vector<Finding>& out) {
  const bool rng_impl = file.path == "src/common/rng.hpp";
  const bool config_layer = path_starts_with(file.path, "src/common/config.");
  // host_now_seconds() (docs/OBSERVABILITY.md §profiler) is the one
  // sanctioned wall-clock read: host-time attribution lives in the
  // non-diffed `host` report section and never feeds simulated time.
  const bool host_profiler = file.path == "src/obs/profiler.cpp";
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Tok::kIdent) continue;
    if (prev_is_member_access(tokens, i)) continue;  // member of another type
    const bool call = next_is_call(tokens, i);
    if (!rng_impl) {
      if ((call && kRandCalls.count(token.text) != 0) ||
          kRandTypes.count(token.text) != 0) {
        add_finding(out, "det.rand_source", file.path, token.line, token.col,
                    "banned nondeterministic random source '" + token.text +
                        "'; use the fixed-algorithm generators in "
                        "common/rng.hpp");
        continue;
      }
    }
    if (!host_profiler &&
        ((call && kClockCalls.count(token.text) != 0) ||
         kClockNames.count(token.text) != 0)) {
      add_finding(out, "det.wall_clock", file.path, token.line, token.col,
                  "wall-clock time source '" + token.text +
                      "' in simulation code; simulated time must come from "
                      "the cycle counter");
      continue;
    }
    if (!config_layer && call && kEnvCalls.count(token.text) != 0) {
      add_finding(out, "det.env_access", file.path, token.line, token.col,
                  "environment read '" + token.text +
                      "' outside the config layer; route run configuration "
                      "through SimConfig (src/common/config.*)");
    }
  }
}

// ---- DET: det.unordered_iteration ----------------------------------------

/// Names declared in this file with an unordered container type
/// (declarations and parameters both count).
[[nodiscard]] std::set<std::string, std::less<>> unordered_names(
    const std::vector<Token>& tokens) {
  const std::set<std::string, std::less<>> kContainers = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  std::set<std::string, std::less<>> names;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (tokens[i].kind != Tok::kIdent ||
        kContainers.count(tokens[i].text) == 0) {
      continue;
    }
    std::size_t j = i + 1;
    const Token* open = at(tokens, j);
    if (open == nullptr || !is_punct(*open, "<")) continue;
    int depth = 0;
    for (; j < tokens.size(); ++j) {
      if (is_punct(tokens[j], "<")) ++depth;
      if (is_punct(tokens[j], ">")) --depth;
      if (is_punct(tokens[j], ">>")) depth -= 2;
      if (depth <= 0) break;
    }
    ++j;  // past the closing angle
    while (j < tokens.size() &&
           (is_punct(tokens[j], "&") || is_punct(tokens[j], "*") ||
            is_ident(tokens[j], "const"))) {
      ++j;
    }
    const Token* name = at(tokens, j);
    if (name != nullptr && name->kind == Tok::kIdent) {
      names.insert(name->text);
    }
  }
  return names;
}

void det_unordered_iteration(const FileTokens& file,
                             std::vector<Finding>& out) {
  const auto names = unordered_names(file.tokens);
  if (names.empty()) return;
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    // Range-for whose sequence expression mentions an unordered name.
    if (is_ident(tokens[i], "for") && next_is_call(tokens, i)) {
      const std::size_t close = skip_parens(tokens, i + 1);
      std::size_t colon = 0;
      int depth = 0;
      for (std::size_t j = i + 1; j < close; ++j) {
        if (is_punct(tokens[j], "(")) ++depth;
        if (is_punct(tokens[j], ")")) --depth;
        if (depth == 1 && is_punct(tokens[j], ":")) {
          colon = j;
          break;
        }
      }
      if (colon != 0) {
        for (std::size_t j = colon + 1; j + 1 < close; ++j) {
          if (tokens[j].kind == Tok::kIdent &&
              names.count(tokens[j].text) != 0) {
            add_finding(
                out, "det.unordered_iteration", file.path, tokens[i].line,
                tokens[i].col,
                "range-for over unordered container '" + tokens[j].text +
                    "' visits hash order; iterate a sorted view or use "
                    "std::map (serial/parallel bit-identity contract)");
            break;
          }
        }
      }
    }
    // Explicit iterator walk: name.begin() / name->begin() / cbegin().
    if (tokens[i].kind == Tok::kIdent && names.count(tokens[i].text) != 0 &&
        i + 2 < tokens.size() &&
        (is_punct(tokens[i + 1], ".") || is_punct(tokens[i + 1], "->")) &&
        (is_ident(tokens[i + 2], "begin") ||
         is_ident(tokens[i + 2], "cbegin")) &&
        next_is_call(tokens, i + 2)) {
      add_finding(out, "det.unordered_iteration", file.path, tokens[i].line,
                  tokens[i].col,
                  "iterator walk over unordered container '" +
                      tokens[i].text +
                      "' visits hash order; iterate a sorted view or use "
                      "std::map (serial/parallel bit-identity contract)");
    }
  }
}

// ---- DET: det.activity_oracle --------------------------------------------

void det_activity_oracle(const FileTokens& file, std::vector<Finding>& out) {
  // Headers only: the contract is about the component's public interface,
  // and implementation files repeat the method names anyway.
  if (file.path.size() < 4 ||
      file.path.compare(file.path.size() - 4, 4, ".hpp") != 0) {
    return;
  }
  const auto& tokens = file.tokens;
  bool has_did_work = false;
  bool has_next_activity = false;
  for (const Token& token : tokens) {
    if (token.kind != Tok::kIdent) continue;
    if (token.text == "did_work_this_cycle") has_did_work = true;
    if (token.text == "next_activity_cycle") has_next_activity = true;
  }
  if (has_did_work && has_next_activity) return;
  std::string missing;
  if (!has_did_work) missing = "did_work_this_cycle";
  if (!has_next_activity) {
    if (!missing.empty()) missing += " and ";
    missing += "next_activity_cycle";
  }
  for (std::size_t i = 0; i + 3 < tokens.size(); ++i) {
    if (is_ident(tokens[i], "void") && is_ident(tokens[i + 1], "tick") &&
        is_punct(tokens[i + 2], "(") && is_ident(tokens[i + 3], "Cycle")) {
      add_finding(out, "det.activity_oracle", file.path, tokens[i + 1].line,
                  tokens[i + 1].col,
                  "tickable component declares tick(Cycle) but not " +
                      missing +
                      "; the event-driven engine and idle census need the "
                      "activity-oracle pair (docs/PARALLELISM.md)");
    }
  }
}

// ---- DET: det.static_mutable_local ---------------------------------------

enum class ScopeKind : std::uint8_t { kNamespace, kClass, kFunction, kBlock };

void det_static_mutable_local(const FileTokens& file,
                              std::vector<Finding>& out) {
  const auto& tokens = file.tokens;
  std::vector<ScopeKind> scopes;
  std::vector<std::string> recent;  // idents since the last boundary
  const Token* prev = nullptr;

  const auto in_function = [&]() {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (*it == ScopeKind::kFunction) return true;
      if (*it == ScopeKind::kClass || *it == ScopeKind::kNamespace) {
        return false;
      }
    }
    return false;
  };

  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (is_punct(token, "{")) {
      ScopeKind kind = ScopeKind::kBlock;
      const bool header_class =
          std::find_if(recent.begin(), recent.end(), [](const auto& t) {
            return t == "class" || t == "struct" || t == "union" ||
                   t == "enum";
          }) != recent.end();
      const bool header_ns =
          std::find(recent.begin(), recent.end(), "namespace") !=
          recent.end();
      if (header_ns) {
        kind = ScopeKind::kNamespace;
      } else if (header_class) {
        kind = ScopeKind::kClass;
      } else if (prev != nullptr &&
                 (is_punct(*prev, ")") || is_punct(*prev, "]") ||
                  is_ident(*prev, "else") || is_ident(*prev, "do") ||
                  is_ident(*prev, "try") || is_ident(*prev, "const") ||
                  is_ident(*prev, "noexcept") ||
                  is_ident(*prev, "override") || is_ident(*prev, "final") ||
                  is_ident(*prev, "mutable"))) {
        kind = ScopeKind::kFunction;
      }
      scopes.push_back(kind);
      recent.clear();
    } else if (is_punct(token, "}")) {
      if (!scopes.empty()) scopes.pop_back();
      recent.clear();
    } else if (is_punct(token, ";")) {
      recent.clear();
    } else if (token.kind == Tok::kIdent) {
      recent.push_back(token.text);
    }

    if (is_ident(token, "static") && in_function()) {
      bool immutable = false;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (is_punct(tokens[j], ";") || is_punct(tokens[j], "=") ||
            is_punct(tokens[j], "{") || is_punct(tokens[j], "(")) {
          break;
        }
        if (is_ident(tokens[j], "const") ||
            is_ident(tokens[j], "constexpr")) {
          immutable = true;
          break;
        }
      }
      if (!immutable) {
        add_finding(out, "det.static_mutable_local", file.path, token.line,
                    token.col,
                    "mutable function-local static carries hidden "
                    "cross-run state; hoist it into the component or make "
                    "it constexpr");
      }
    }
    prev = &token;
  }
}

// ---- OBS: obs.raw_stamp_call / obs.naked_check_site ----------------------

void obs_zero_cost_sites(const FileTokens& file, std::vector<Finding>& out) {
  const bool in_obs = path_starts_with(file.path, "src/obs/");
  const bool in_check = path_starts_with(file.path, "src/check/");
  const auto& tokens = file.tokens;
  const std::set<std::string, std::less<>> kStamps = {"on_stage", "on_merge",
                                                      "on_hop"};
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Tok::kIdent || !prev_is_member_access(tokens, i) ||
        !next_is_call(tokens, i)) {
      continue;
    }
    if (!in_obs && kStamps.count(token.text) != 0 && !token.obs_guarded) {
      add_finding(out, "obs.raw_stamp_call", file.path, token.line,
                  token.col,
                  "direct EventSink call '" + token.text +
                      "' outside an #if MAC3D_OBS_ENABLED region; use "
                      "MAC3D_OBS_STAMP/MERGE/HOP so the site compiles out");
      continue;
    }
    if (in_check || token.checks_guarded) continue;
    if (token.text == "count_check") {
      add_finding(out, "obs.naked_check_site", file.path, token.line,
                  token.col,
                  "direct CheckContext call 'count_check' outside an #if "
                  "MAC3D_CHECKS_ENABLED region; use MAC3D_CHECK so the "
                  "site compiles out");
      continue;
    }
    if (token.text == "fail") {
      // CheckContext::fail takes (invariant, cycle, detail); stream
      // .fail() takes none — use the arity to tell them apart.
      int depth = 0;
      std::size_t commas = 0;
      for (std::size_t j = i + 1; j < tokens.size(); ++j) {
        if (is_punct(tokens[j], "(")) ++depth;
        if (is_punct(tokens[j], ")") && --depth == 0) break;
        if (depth == 1 && is_punct(tokens[j], ",")) ++commas;
      }
      if (commas >= 2) {
        add_finding(out, "obs.naked_check_site", file.path, token.line,
                    token.col,
                    "direct CheckContext call 'fail' outside an #if "
                    "MAC3D_CHECKS_ENABLED region; use MAC3D_CHECK so the "
                    "site compiles out");
      }
    }
  }
}

// ---- OBS: obs.metric_name_grammar ----------------------------------------

void obs_metric_name_grammar(const RepoModel& model, const FileTokens& file,
                             std::vector<Finding>& out) {
  if (!model.schema.valid) return;  // sync.metrics_schema reports instead
  const std::vector<std::string> patterns = model.schema.patterns();
  const std::set<std::string, std::less<>> kRegistrars = {
      "counter", "gauge", "histogram"};
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Tok::kIdent || kRegistrars.count(token.text) == 0 ||
        !prev_is_member_access(tokens, i) || !next_is_call(tokens, i)) {
      continue;
    }
    const std::size_t close = skip_parens(tokens, i + 1);
    for (std::size_t j = i + 2; j + 1 < close + 1 && j < close; ++j) {
      if (tokens[j].kind != Tok::kString || tokens[j].text.empty()) {
        continue;
      }
      const std::string& literal = tokens[j].text;
      bool ok = false;
      if (literal.front() == '.') {
        // Concatenation tail: `prefix + ".routed"` — some concrete
        // pattern must end with exactly this suffix.
        for (const std::string& pattern : patterns) {
          if (pattern.size() >= literal.size() &&
              pattern.compare(pattern.size() - literal.size(),
                              literal.size(), literal) == 0) {
            ok = true;
            break;
          }
        }
      } else {
        for (const std::string& pattern : patterns) {
          if (pattern_match(pattern, literal)) {
            ok = true;
            break;
          }
        }
      }
      if (!ok) {
        add_finding(out, "obs.metric_name_grammar", file.path,
                    tokens[j].line, tokens[j].col,
                    "metric name '" + literal +
                        "' does not parse against the namespace grammar in "
                        "docs/metrics_schema.json");
      }
    }
  }
}

// ---- OBS: obs.stage_taxonomy ---------------------------------------------

void obs_stage_taxonomy(const RepoModel& model, const FileTokens& file,
                        std::vector<Finding>& out) {
  if (model.stage_names.empty()) return;  // sync.stage_docs reports instead
  const std::set<std::string, std::less<>> canonical(
      model.stage_names.begin(), model.stage_names.end());
  const auto& tokens = file.tokens;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != Tok::kIdent || !next_is_call(tokens, i)) continue;
    if (lower(token.text).find("stage") == std::string::npos) continue;
    const std::size_t close = skip_parens(tokens, i + 1);
    for (std::size_t j = i + 2; j < close; ++j) {
      if (tokens[j].kind != Tok::kString) continue;
      if (canonical.count(tokens[j].text) == 0) {
        add_finding(out, "obs.stage_taxonomy", file.path, tokens[j].line,
                    tokens[j].col,
                    "stage name '" + tokens[j].text +
                        "' is not a member of the 10-stage lifecycle "
                        "taxonomy (src/obs/obs.hpp)");
      }
    }
  }
}

// ---- Markdown helpers (SYNC rules) ---------------------------------------

struct DocLine {
  std::size_t number = 0;  ///< 1-based
  std::string text;
};

[[nodiscard]] std::vector<DocLine> doc_lines(const std::string& text) {
  std::vector<DocLine> lines;
  std::size_t number = 1;
  std::string current;
  for (const char c : text) {
    if (c == '\n') {
      lines.push_back({number++, current});
      current.clear();
    } else {
      current += c;
    }
  }
  if (!current.empty()) lines.push_back({number, current});
  return lines;
}

/// First backticked span of a markdown table row ("" when not a row).
[[nodiscard]] std::string table_row_first_cell(const std::string& line) {
  std::size_t i = line.find_first_not_of(" \t");
  if (i == std::string::npos || line[i] != '|') return "";
  const std::size_t tick = line.find('`', i);
  if (tick == std::string::npos) return "";
  const std::size_t end = line.find('`', tick + 1);
  if (end == std::string::npos) return "";
  return line.substr(tick + 1, end - tick - 1);
}

/// Lines of the section whose heading contains `keyword` (case-fold),
/// up to the next heading of the same-or-higher level.
[[nodiscard]] std::vector<DocLine> doc_section(
    const std::vector<DocLine>& lines, std::string_view keyword) {
  const std::string needle = lower(keyword);
  std::size_t level = 0;
  std::vector<DocLine> section;
  bool active = false;
  for (const DocLine& line : lines) {
    std::size_t hashes = 0;
    while (hashes < line.text.size() && line.text[hashes] == '#') ++hashes;
    const bool heading = hashes > 0 && hashes < line.text.size() &&
                         line.text[hashes] == ' ';
    if (heading && active && hashes <= level) break;
    if (heading && lower(line.text).find(needle) != std::string::npos) {
      active = true;
      level = hashes;
      continue;
    }
    if (active) section.push_back(line);
  }
  return section;
}

[[nodiscard]] bool looks_like_invariant_id(const std::string& text) {
  if (text.find('.') == std::string::npos) return false;
  return std::all_of(text.begin(), text.end(), [](unsigned char c) {
    return std::islower(c) != 0 || std::isdigit(c) != 0 || c == '_' ||
           c == '.';
  });
}

// ---- SYNC: sync.invariant_ids --------------------------------------------

void sync_invariant_ids(const RepoModel& model, std::vector<Finding>& out) {
  const std::string header_path = "src/check/invariants.hpp";
  const std::string doc_path = "docs/INVARIANTS.md";
  if (!model.inv_header_present) {
    add_finding(out, "sync.invariant_ids", header_path, 0, 0,
                "src/check/invariants.hpp not found; the invariant catalog "
                "cannot be reconciled with docs/INVARIANTS.md");
    return;
  }
  if (!model.inv_doc_present) {
    add_finding(out, "sync.invariant_ids", doc_path, 0, 0,
                "docs/INVARIANTS.md not found; the invariant catalog "
                "cannot be reconciled with src/check/invariants.hpp");
    return;
  }

  // Registered ids: `Invariant kName{ "dotted.id", ... }`.
  std::map<std::string, std::uint32_t> registered;  // id -> line
  const auto& tokens = model.inv_header;
  for (std::size_t i = 0; i < tokens.size(); ++i) {
    if (!is_ident(tokens[i], "Invariant")) continue;
    for (std::size_t j = i + 1; j < tokens.size() && j < i + 4; ++j) {
      if (is_punct(tokens[j], "{")) {
        const Token* id = at(tokens, j + 1);
        if (id != nullptr && id->kind == Tok::kString) {
          registered.emplace(id->text, id->line);
        }
        break;
      }
    }
  }

  // Documented ids: table rows whose first cell is a backticked dotted id.
  std::map<std::string, std::size_t> documented;  // id -> doc line
  for (const DocLine& line : doc_lines(model.inv_doc)) {
    const std::string cell = table_row_first_cell(line.text);
    if (looks_like_invariant_id(cell)) {
      documented.emplace(cell, line.number);
    }
  }

  for (const auto& [id, line] : registered) {
    if (documented.count(id) == 0) {
      add_finding(out, "sync.invariant_ids", header_path, line, 0,
                  "invariant id '" + id +
                      "' is registered in src/check/invariants.hpp but has "
                      "no row in docs/INVARIANTS.md");
    }
  }
  for (const auto& [id, line] : documented) {
    if (registered.count(id) == 0) {
      add_finding(out, "sync.invariant_ids", doc_path,
                  static_cast<std::uint32_t>(line), 0,
                  "invariant id '" + id +
                      "' is documented in docs/INVARIANTS.md but not "
                      "registered in src/check/invariants.hpp");
    }
  }
}

// ---- SYNC: sync.stage_docs -----------------------------------------------

void sync_stage_docs(const RepoModel& model, std::vector<Finding>& out) {
  const std::string header_path = "src/obs/obs.hpp";
  const std::string doc_path = "docs/OBSERVABILITY.md";
  if (model.stage_names.empty()) {
    add_finding(out, "sync.stage_docs", header_path, 0, 0,
                "could not parse the stage taxonomy out of "
                "src/obs/obs.hpp (to_string(Stage) case arms)");
    return;
  }
  if (model.stage_count >= 0 &&
      model.stage_count != static_cast<long>(model.stage_names.size())) {
    std::ostringstream message;
    message << "kStageCount is " << model.stage_count << " but "
            << model.stage_names.size()
            << " stage names are defined in to_string(Stage)";
    add_finding(out, "sync.stage_docs", header_path, 0, 0, message.str());
  }
  if (!model.obs_doc_present) {
    add_finding(out, "sync.stage_docs", doc_path, 0, 0,
                "docs/OBSERVABILITY.md not found; the stage taxonomy "
                "cannot be reconciled");
    return;
  }

  const std::set<std::string, std::less<>> code(model.stage_names.begin(),
                                                model.stage_names.end());
  std::map<std::string, std::size_t> documented;
  const auto lines = doc_lines(model.obs_doc);
  for (const DocLine& line : doc_section(lines, "stage taxonomy")) {
    const std::string cell = table_row_first_cell(line.text);
    if (cell.empty() || cell.find('.') != std::string::npos) continue;
    if (std::all_of(cell.begin(), cell.end(), [](unsigned char c) {
          return std::islower(c) != 0 || c == '_';
        })) {
      documented.emplace(cell, line.number);
    }
  }

  for (const std::string& name : model.stage_names) {
    if (documented.count(name) == 0) {
      add_finding(out, "sync.stage_docs", doc_path, 0, 0,
                  "stage '" + name +
                      "' exists in src/obs/obs.hpp but has no row in the "
                      "docs/OBSERVABILITY.md stage-taxonomy table");
    }
  }
  for (const auto& [name, line] : documented) {
    if (code.count(name) == 0) {
      add_finding(out, "sync.stage_docs", doc_path,
                  static_cast<std::uint32_t>(line), 0,
                  "stage '" + name +
                      "' is documented in docs/OBSERVABILITY.md but is not "
                      "a member of the taxonomy in src/obs/obs.hpp");
    }
  }
}

// ---- SYNC: sync.metrics_schema -------------------------------------------

void sync_metrics_schema(const RepoModel& model, std::vector<Finding>& out) {
  const std::string schema_path = "docs/metrics_schema.json";
  if (!model.schema.present) {
    add_finding(out, "sync.metrics_schema", schema_path, 0, 0,
                "docs/metrics_schema.json not found; the metric-name "
                "grammar cannot be enforced");
    return;
  }
  if (!model.schema.valid) {
    add_finding(out, "sync.metrics_schema", schema_path, 0, 0,
                "docs/metrics_schema.json is invalid: " +
                    model.schema.error);
    return;
  }
  if (!model.obs_doc_present) {
    add_finding(out, "sync.metrics_schema", "docs/OBSERVABILITY.md", 0, 0,
                "docs/OBSERVABILITY.md not found; the metric namespaces "
                "cannot be reconciled with docs/metrics_schema.json");
    return;
  }

  const auto lines = doc_lines(model.obs_doc);
  std::map<std::string, std::size_t> doc_namespaces;
  for (const DocLine& line : doc_section(lines, "metric namespaces")) {
    const std::string cell = table_row_first_cell(line.text);
    if (!cell.empty()) doc_namespaces.emplace(cell, line.number);
  }

  std::set<std::string, std::less<>> schema_docs;
  for (const MetricsSchema::Family& family : model.schema.families) {
    schema_docs.insert(family.doc);
    if (doc_namespaces.count(family.doc) == 0) {
      add_finding(out, "sync.metrics_schema", schema_path, 0, 0,
                  "schema family '" + family.doc +
                      "' has no row in the docs/OBSERVABILITY.md "
                      "metric-namespaces table");
    }
  }
  for (const auto& [doc, line] : doc_namespaces) {
    if (schema_docs.count(doc) == 0) {
      add_finding(out, "sync.metrics_schema", "docs/OBSERVABILITY.md",
                  static_cast<std::uint32_t>(line), 0,
                  "metric namespace '" + doc +
                      "' is documented but has no family in "
                      "docs/metrics_schema.json");
    }
  }
}

}  // namespace

// ---- Public helpers ------------------------------------------------------

const std::vector<RuleInfo>& rule_catalog() { return kCatalog; }

const RuleInfo* find_rule(std::string_view id) {
  for (const RuleInfo& rule : kCatalog) {
    if (rule.id == id) return &rule;
  }
  return nullptr;
}

bool pattern_match(std::string_view pattern, std::string_view name) {
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < pattern.size()) {
    if (pattern[i] == '<') {
      // A run of adjacent placeholders (`link<S><D>`) shares one greedy
      // digit span; each placeholder still demands at least one digit.
      std::size_t needed = 0;
      while (i < pattern.size() && pattern[i] == '<') {
        while (i < pattern.size() && pattern[i] != '>') ++i;
        if (i < pattern.size()) ++i;  // past '>'
        ++needed;
      }
      std::size_t digits = 0;
      while (j < name.size() &&
             std::isdigit(static_cast<unsigned char>(name[j])) != 0) {
        ++j;
        ++digits;
      }
      if (digits < needed) return false;
      continue;
    }
    if (j >= name.size() || pattern[i] != name[j]) return false;
    ++i;
    ++j;
  }
  return j == name.size();
}

std::vector<std::string> MetricsSchema::patterns() const {
  std::vector<std::string> out;
  for (const Family& family : families) {
    if (family.names.empty()) {
      out.push_back(family.prefix);
      continue;
    }
    for (const std::string& name : family.names) {
      out.push_back(family.prefix + "." + name);
    }
  }
  return out;
}

std::vector<std::string> taxonomy_from_obs_header(
    const std::vector<Token>& tokens) {
  // `case Stage::kX: return "name";` — collect the literals in order.
  std::vector<std::string> names;
  for (std::size_t i = 0; i + 5 < tokens.size(); ++i) {
    if (is_ident(tokens[i], "Stage") && is_punct(tokens[i + 1], "::") &&
        tokens[i + 2].kind == Tok::kIdent &&
        is_punct(tokens[i + 3], ":") && is_ident(tokens[i + 4], "return") &&
        tokens[i + 5].kind == Tok::kString) {
      names.push_back(tokens[i + 5].text);
    }
  }
  return names;
}

long count_from_obs_header(const std::vector<Token>& tokens) {
  for (std::size_t i = 0; i + 2 < tokens.size(); ++i) {
    if (is_ident(tokens[i], "kStageCount") && is_punct(tokens[i + 1], "=") &&
        tokens[i + 2].kind == Tok::kNumber) {
      return std::strtol(tokens[i + 2].text.c_str(), nullptr, 10);
    }
  }
  return -1;
}

MetricsSchema parse_metrics_schema(const std::string& text, bool present) {
  MetricsSchema schema;
  schema.present = present;
  if (!present) return schema;
  JsonValue doc;
  std::string error;
  if (!parse_json(text, doc, error)) {
    schema.error = error;
    return schema;
  }
  if (doc.string_or("schema") != "mac3d-metrics-schema/1") {
    schema.error = "unrecognized schema tag '" + doc.string_or("schema") +
                   "' (want mac3d-metrics-schema/1)";
    return schema;
  }
  const JsonValue* families = doc.find("families");
  if (families == nullptr ||
      families->kind != JsonValue::Kind::kArray ||
      families->items.empty()) {
    schema.error = "missing or empty 'families' array";
    return schema;
  }
  for (const JsonValue& entry : families->items) {
    MetricsSchema::Family family;
    family.doc = entry.string_or("doc");
    family.prefix = entry.string_or("prefix");
    if (family.doc.empty() || family.prefix.empty()) {
      schema.error = "family entries need nonempty 'doc' and 'prefix'";
      return schema;
    }
    const JsonValue* names = entry.find("names");
    if (names != nullptr && names->kind == JsonValue::Kind::kArray) {
      for (const JsonValue& name : names->items) {
        if (name.kind == JsonValue::Kind::kString) {
          family.names.push_back(name.string);
        }
      }
    }
    schema.families.push_back(std::move(family));
  }
  schema.valid = true;
  return schema;
}

void run_file_rules(const RepoModel& model, const FileTokens& file,
                    std::vector<Finding>& out) {
  const bool sim_code = path_starts_with(file.path, "src/");
  if (sim_code) {
    det_banned_idents(file, out);
    det_unordered_iteration(file, out);
    det_static_mutable_local(file, out);
    det_activity_oracle(file, out);
    obs_zero_cost_sites(file, out);
  }
  // Grammar/taxonomy rules also cover the CLI, which registers metrics
  // and renders stage names; the obs subsystem itself is exempt (it
  // defines both vocabularies).
  if (!path_starts_with(file.path, "src/obs/")) {
    obs_metric_name_grammar(model, file, out);
    obs_stage_taxonomy(model, file, out);
  }
}

void run_repo_rules(const RepoModel& model, std::vector<Finding>& out) {
  sync_invariant_ids(model, out);
  sync_stage_docs(model, out);
  sync_metrics_schema(model, out);
}

}  // namespace mac3d::lint
