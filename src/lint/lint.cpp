// Lint engine: file discovery, repo-model construction, baseline gating
// and the text/SARIF emitters behind `mac3d lint`.
#include "lint/lint.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <tuple>
#include <utility>

#include "lint/json_doc.hpp"
#include "lint/lexer.hpp"
#include "lint/rules.hpp"

namespace mac3d::lint {
namespace {

namespace fs = std::filesystem;

[[nodiscard]] bool read_file(const fs::path& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  out = buffer.str();
  return true;
}

[[nodiscard]] bool is_cpp_source(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

/// src/** and apps/** C++ sources beneath `root`, as sorted root-relative
/// generic paths. Sorting makes the scan (and therefore every emitted
/// artifact) independent of directory-entry order.
[[nodiscard]] std::vector<std::string> discover_sources(
    const fs::path& root, std::vector<std::string>& errors) {
  std::vector<std::string> paths;
  bool any_tree = false;
  for (const char* subtree : {"src", "apps"}) {
    const fs::path base = root / subtree;
    std::error_code ec;
    if (!fs::is_directory(base, ec)) continue;
    any_tree = true;
    for (fs::recursive_directory_iterator it(base, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file(ec) && is_cpp_source(it->path())) {
        paths.push_back(
            fs::relative(it->path(), root, ec).generic_string());
      }
    }
    if (ec) {
      errors.push_back("error walking " + base.generic_string() + ": " +
                       ec.message());
    }
  }
  if (!any_tree) {
    errors.push_back("no src/ or apps/ directory under lint root '" +
                     root.generic_string() + "'");
  }
  std::sort(paths.begin(), paths.end());
  return paths;
}

[[nodiscard]] RepoModel build_model(const std::string& root,
                                    std::vector<std::string>& errors) {
  RepoModel model;
  model.root = root;
  const fs::path base(root);

  for (const std::string& rel : discover_sources(base, errors)) {
    std::string text;
    if (!read_file(base / rel, text)) {
      errors.push_back("cannot read " + rel);
      continue;
    }
    model.files.push_back({rel, lex_cpp(text)});
  }

  for (const FileTokens& file : model.files) {
    if (file.path == "src/obs/obs.hpp") {
      model.stage_names = taxonomy_from_obs_header(file.tokens);
      model.stage_count = count_from_obs_header(file.tokens);
    } else if (file.path == "src/check/invariants.hpp") {
      model.inv_header_present = true;
      model.inv_header = file.tokens;
    }
  }

  model.obs_doc_present =
      read_file(base / "docs/OBSERVABILITY.md", model.obs_doc);
  model.inv_doc_present =
      read_file(base / "docs/INVARIANTS.md", model.inv_doc);

  std::string schema_text;
  const bool schema_present =
      read_file(base / "docs/metrics_schema.json", schema_text);
  model.schema = parse_metrics_schema(schema_text, schema_present);
  return model;
}

[[nodiscard]] std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(static_cast<unsigned char>(c) >> 4) & 0xf];
          out += kHex[static_cast<unsigned char>(c) & 0xf];
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Findings grouped per (rule, file) in sorted order, with counts.
[[nodiscard]] std::map<std::pair<std::string, std::string>, std::uint64_t>
group_findings(const LintReport& report) {
  std::map<std::pair<std::string, std::string>, std::uint64_t> groups;
  for (const Finding& finding : report.findings) {
    ++groups[{finding.rule, finding.file}];
  }
  return groups;
}

}  // namespace

LintReport run_rules(const std::string& root) {
  LintReport report;
  RepoModel model = build_model(root, report.errors);
  report.files_scanned = model.files.size();
  for (const FileTokens& file : model.files) {
    run_file_rules(model, file, report.findings);
  }
  run_repo_rules(model, report.findings);
  std::sort(report.findings.begin(), report.findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.col, a.message) <
                     std::tie(b.file, b.line, b.rule, b.col, b.message);
            });
  report.new_findings = report.findings.size();
  return report;
}

bool load_baseline(const std::string& file, Baseline& out,
                   std::string& error) {
  std::string text;
  if (!read_file(file, text)) {
    error = "cannot read baseline '" + file + "'";
    return false;
  }
  JsonValue doc;
  if (!parse_json(text, doc, error)) {
    error = "baseline '" + file + "': " + error;
    return false;
  }
  if (doc.string_or("schema") != "mac3d-lint-baseline/1") {
    error = "baseline '" + file + "': unrecognized schema tag '" +
            doc.string_or("schema") + "' (want mac3d-lint-baseline/1)";
    return false;
  }
  const JsonValue* entries = doc.find("entries");
  if (entries == nullptr || entries->kind != JsonValue::Kind::kArray) {
    error = "baseline '" + file + "': missing 'entries' array";
    return false;
  }
  for (const JsonValue& item : entries->items) {
    BaselineEntry entry;
    entry.rule = item.string_or("rule");
    entry.file = item.string_or("file");
    entry.count = static_cast<std::uint64_t>(item.number_or("count", 1.0));
    entry.justification = item.string_or("justification");
    if (entry.rule.empty() || entry.file.empty() || entry.count == 0) {
      error = "baseline '" + file +
              "': entries need nonempty 'rule', 'file' and a positive "
              "'count'";
      return false;
    }
    if (find_rule(entry.rule) == nullptr) {
      error = "baseline '" + file + "': unknown rule id '" + entry.rule +
              "'";
      return false;
    }
    out.entries.push_back(std::move(entry));
  }
  return true;
}

void apply_baseline(const Baseline& baseline, LintReport& report) {
  std::map<std::pair<std::string, std::string>, std::uint64_t> allowance;
  for (const BaselineEntry& entry : baseline.entries) {
    allowance[{entry.rule, entry.file}] += entry.count;
  }
  std::map<std::pair<std::string, std::string>, std::uint64_t> used;
  report.new_findings = 0;
  for (Finding& finding : report.findings) {
    const std::pair<std::string, std::string> key{finding.rule,
                                                  finding.file};
    const auto it = allowance.find(key);
    if (it != allowance.end() && used[key] < it->second) {
      ++used[key];
      finding.suppressed = true;
    } else {
      finding.suppressed = false;
      ++report.new_findings;
    }
  }
  report.stale_baseline.clear();
  for (const auto& [key, allowed] : allowance) {
    const std::uint64_t matched = used.count(key) != 0 ? used.at(key) : 0;
    if (matched < allowed) {
      std::ostringstream note;
      note << key.first << " in " << key.second << " (allows " << allowed
           << ", found " << matched << ")";
      report.stale_baseline.push_back(note.str());
    }
  }
}

std::string baseline_json(const LintReport& report) {
  std::ostringstream out;
  out << "{\n  \"schema\": \"mac3d-lint-baseline/1\",\n  \"entries\": [";
  bool first = true;
  for (const auto& [key, count] : group_findings(report)) {
    out << (first ? "" : ",") << "\n    {\"rule\": \""
        << json_escape(key.first) << "\", \"file\": \""
        << json_escape(key.second) << "\", \"count\": " << count
        << ", \"justification\": \"unreviewed\"}";
    first = false;
  }
  out << (first ? "" : "\n  ") << "]\n}\n";
  return out.str();
}

std::string sarif_json(const LintReport& report) {
  std::ostringstream out;
  out << "{\n"
      << "  \"$schema\": "
         "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      << "  \"version\": \"2.1.0\",\n"
      << "  \"runs\": [\n"
      << "    {\n"
      << "      \"tool\": {\n"
      << "        \"driver\": {\n"
      << "          \"name\": \"mac3d-lint\",\n"
      << "          \"informationUri\": \"docs/STATIC_ANALYSIS.md\",\n"
      << "          \"rules\": [";
  bool first = true;
  for (const RuleInfo& rule : rule_catalog()) {
    out << (first ? "" : ",") << "\n            {\"id\": \""
        << json_escape(rule.id) << "\", \"shortDescription\": {\"text\": \""
        << json_escape(rule.summary)
        << "\"}, \"properties\": {\"family\": \"" << json_escape(rule.family)
        << "\"}}";
    first = false;
  }
  out << "\n          ]\n"
      << "        }\n"
      << "      },\n"
      << "      \"results\": [";
  first = true;
  for (const Finding& finding : report.findings) {
    // SARIF regions are 1-based; whole-file findings pin to line 1.
    const std::uint32_t line = finding.line == 0 ? 1 : finding.line;
    const std::uint32_t col = finding.col == 0 ? 1 : finding.col;
    out << (first ? "" : ",") << "\n        {\"ruleId\": \""
        << json_escape(finding.rule) << "\", \"level\": \"error\", "
        << "\"message\": {\"text\": \"" << json_escape(finding.message)
        << "\"}, \"locations\": [{\"physicalLocation\": "
        << "{\"artifactLocation\": {\"uri\": \"" << json_escape(finding.file)
        << "\"}, \"region\": {\"startLine\": " << line
        << ", \"startColumn\": " << col << "}}}]";
    if (finding.suppressed) {
      out << ", \"suppressions\": [{\"kind\": \"external\"}]";
    }
    out << "}";
    first = false;
  }
  out << (first ? "" : "\n      ") << "]\n"
      << "    }\n"
      << "  ]\n"
      << "}\n";
  return out.str();
}

std::string render_text(const LintReport& report) {
  std::ostringstream out;
  std::size_t suppressed = 0;
  for (const Finding& finding : report.findings) {
    out << finding.file << ":" << finding.line << ":" << finding.col << ": "
        << finding.rule << ": " << finding.message;
    if (finding.suppressed) {
      out << " [baselined]";
      ++suppressed;
    }
    out << "\n";
  }
  out << "mac3d lint: " << report.findings.size() << " finding"
      << (report.findings.size() == 1 ? "" : "s") << " ("
      << report.new_findings << " new, " << suppressed
      << " baselined) across " << report.files_scanned
      << " files scanned\n";
  for (const std::string& note : report.stale_baseline) {
    out << "note: stale baseline entry: " << note << "\n";
  }
  return out.str();
}

int run_lint_cli(const LintCliOptions& options) {
  if (options.list_rules) {
    for (const RuleInfo& rule : rule_catalog()) {
      std::cout << rule.id << "  [" << rule.family << "]  " << rule.summary
                << "\n";
    }
    return 0;
  }

  LintReport report = run_rules(options.root);
  if (!report.errors.empty()) {
    for (const std::string& error : report.errors) {
      std::cerr << "mac3d lint: " << error << "\n";
    }
    return 2;
  }

  if (!options.baseline.empty()) {
    Baseline baseline;
    std::string error;
    if (!load_baseline(options.baseline, baseline, error)) {
      std::cerr << "mac3d lint: " << error << "\n";
      return 2;
    }
    apply_baseline(baseline, report);
  }

  if (!options.write_baseline.empty()) {
    std::ofstream out(options.write_baseline, std::ios::binary);
    if (!out) {
      std::cerr << "mac3d lint: cannot write baseline '"
                << options.write_baseline << "'\n";
      return 2;
    }
    out << baseline_json(report);
    std::cout << "mac3d lint: wrote baseline for " << report.findings.size()
              << " findings to " << options.write_baseline << "\n";
    return 0;
  }

  if (!options.sarif.empty()) {
    std::ofstream out(options.sarif, std::ios::binary);
    if (!out) {
      std::cerr << "mac3d lint: cannot write SARIF '" << options.sarif
                << "'\n";
      return 2;
    }
    out << sarif_json(report);
  }

  std::cout << render_text(report);
  return report.new_findings > 0 ? 1 : 0;
}

}  // namespace mac3d::lint
