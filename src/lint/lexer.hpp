// Lightweight C++ lexer for the repo-specific static analyzer
// (docs/STATIC_ANALYSIS.md). Not a compiler front end: it produces a flat
// token stream good enough for the lint rule catalog — identifiers,
// literals and punctuation with source positions, comments stripped, and
// every token annotated with whether it sits inside an
// `#if MAC3D_OBS_ENABLED` / `#if MAC3D_CHECKS_ENABLED` preprocessor
// region (the zero-cost-discipline rules key off those flags).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mac3d::lint {

enum class Tok : std::uint8_t {
  kIdent,   ///< identifier or keyword
  kNumber,  ///< numeric literal (integer/float, any base)
  kString,  ///< string literal; `text` holds the *inner* characters
  kChar,    ///< character literal; `text` holds the inner characters
  kPunct,   ///< operator / punctuation (multi-character ops kept whole)
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  std::uint32_t line = 0;  ///< 1-based
  std::uint32_t col = 0;   ///< 1-based
  /// Token is compiled only when the observability stamp sites are
  /// compiled in (inside an `#if MAC3D_OBS_ENABLED` region, outside its
  /// `#else`). Direct EventSink calls are legal only here.
  bool obs_guarded = false;
  /// Same, for `#if MAC3D_CHECKS_ENABLED` regions.
  bool checks_guarded = false;
};

/// Tokenize a C++ translation unit. Comments and preprocessor directives
/// produce no tokens (directives only update the guard flags); string and
/// character literals keep escape sequences verbatim in `text`. The lexer
/// never fails — unexpected bytes lex as single-character punctuation.
[[nodiscard]] std::vector<Token> lex_cpp(std::string_view source);

}  // namespace mac3d::lint
