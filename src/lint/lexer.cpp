#include "lint/lexer.hpp"

#include <array>
#include <cctype>

namespace mac3d::lint {
namespace {

[[nodiscard]] bool is_ident_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

[[nodiscard]] bool is_ident_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// One `#if`-family frame. `mentions` records that the condition names the
/// macro at all; `active` tracks whether the *current* branch is the one
/// the macro enables (the `#else` of `#if MAC3D_OBS_ENABLED` compiles only
/// when telemetry is off, so it is not a guarded region).
struct GuardFrame {
  bool obs_mentions = false;
  bool obs_initial = false;
  bool obs_active = false;
  bool checks_mentions = false;
  bool checks_initial = false;
  bool checks_active = false;
};

/// Does `condition` enable code when `macro` is nonzero? Detects the
/// macro's presence and a leading `!` (or an `#ifndef` directive, handled
/// by the caller flipping `positive`).
void classify(std::string_view condition, std::string_view macro,
              bool ifndef, bool& mentions, bool& positive) {
  const std::size_t at = condition.find(macro);
  if (at == std::string_view::npos) {
    mentions = false;
    positive = false;
    return;
  }
  mentions = true;
  positive = !ifndef;
  // Scan backwards over whitespace/parens for a negation.
  std::size_t i = at;
  while (i > 0) {
    const char c = condition[i - 1];
    if (c == ' ' || c == '\t' || c == '(') {
      --i;
      continue;
    }
    if (c == '!') positive = !positive;
    break;
  }
}

class Lexer {
 public:
  explicit Lexer(std::string_view source) : src_(source) {}

  std::vector<Token> run() {
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\n') {
        advance();
        at_line_start_ = true;
        continue;
      }
      if (c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f') {
        advance();
        continue;
      }
      if (c == '#' && at_line_start_) {
        directive();
        continue;
      }
      at_line_start_ = false;
      if (c == '/' && peek(1) == '/') {
        while (pos_ < src_.size() && src_[pos_] != '\n') advance();
        continue;
      }
      if (c == '/' && peek(1) == '*') {
        advance();
        advance();
        while (pos_ < src_.size() &&
               !(src_[pos_] == '*' && peek(1) == '/')) {
          advance();
        }
        advance();
        advance();
        continue;
      }
      if (c == '"' || (c == 'R' && peek(1) == '"')) {
        string_literal();
        continue;
      }
      // Encoding-prefixed literals: L"", u"", U"", u8"", and char forms.
      if ((c == 'L' || c == 'u' || c == 'U') &&
          (peek(1) == '"' || peek(1) == '\'' ||
           (c == 'u' && peek(1) == '8' &&
            (peek(2) == '"' || peek(2) == '\'')))) {
        advance();
        if (src_[pos_] == '8') advance();
        if (src_[pos_] == '"') {
          string_literal();
        } else {
          char_literal();
        }
        continue;
      }
      if (c == '\'') {
        char_literal();
        continue;
      }
      if (is_ident_start(c)) {
        identifier();
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 ||
          (c == '.' && std::isdigit(static_cast<unsigned char>(peek(1))) !=
                           0)) {
        number();
        continue;
      }
      punct();
    }
    return std::move(tokens_);
  }

 private:
  [[nodiscard]] char peek(std::size_t ahead) const noexcept {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }

  void advance() {
    if (src_[pos_] == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    ++pos_;
  }

  void emit(Tok kind, std::string text, std::uint32_t line,
            std::uint32_t col) {
    bool obs = false;
    bool checks = false;
    for (const GuardFrame& frame : guards_) {
      obs = obs || (frame.obs_mentions && frame.obs_active);
      checks = checks || (frame.checks_mentions && frame.checks_active);
    }
    tokens_.push_back({kind, std::move(text), line, col, obs, checks});
  }

  /// Consume a full logical preprocessor line (joining `\`-continuations)
  /// and update the guard stack. Directives emit no tokens.
  void directive() {
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      if (c == '\\' && peek(1) == '\n') {
        advance();
        advance();
        text += ' ';
        continue;
      }
      if (c == '\n') break;
      text += c;
      advance();
    }
    at_line_start_ = true;

    // Normalize "#  ifdef" -> directive word + condition remainder.
    std::size_t i = 1;
    while (i < text.size() &&
           (text[i] == ' ' || text[i] == '\t')) {
      ++i;
    }
    std::size_t end = i;
    while (end < text.size() && is_ident_char(text[end])) ++end;
    const std::string_view word = std::string_view(text).substr(i, end - i);
    const std::string_view rest = std::string_view(text).substr(end);

    if (word == "if" || word == "ifdef" || word == "ifndef") {
      GuardFrame frame;
      const bool ifndef = word == "ifndef";
      classify(rest, "MAC3D_OBS_ENABLED", ifndef, frame.obs_mentions,
               frame.obs_initial);
      classify(rest, "MAC3D_CHECKS_ENABLED", ifndef, frame.checks_mentions,
               frame.checks_initial);
      frame.obs_active = frame.obs_initial;
      frame.checks_active = frame.checks_initial;
      guards_.push_back(frame);
    } else if (word == "elif") {
      if (!guards_.empty()) {
        GuardFrame& frame = guards_.back();
        classify(rest, "MAC3D_OBS_ENABLED", false, frame.obs_mentions,
                 frame.obs_active);
        classify(rest, "MAC3D_CHECKS_ENABLED", false, frame.checks_mentions,
                 frame.checks_active);
      }
    } else if (word == "else") {
      if (!guards_.empty()) {
        GuardFrame& frame = guards_.back();
        frame.obs_active = frame.obs_mentions && !frame.obs_initial;
        frame.checks_active = frame.checks_mentions && !frame.checks_initial;
      }
    } else if (word == "endif") {
      if (!guards_.empty()) guards_.pop_back();
    }
  }

  void identifier() {
    const std::uint32_t line = line_;
    const std::uint32_t col = col_;
    std::string text;
    while (pos_ < src_.size() && is_ident_char(src_[pos_])) {
      text += src_[pos_];
      advance();
    }
    emit(Tok::kIdent, std::move(text), line, col);
  }

  void number() {
    const std::uint32_t line = line_;
    const std::uint32_t col = col_;
    std::string text;
    while (pos_ < src_.size()) {
      const char c = src_[pos_];
      const bool sign_after_exponent =
          (c == '+' || c == '-') && !text.empty() &&
          (text.back() == 'e' || text.back() == 'E' || text.back() == 'p' ||
           text.back() == 'P');
      if (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '.' ||
          c == '\'' || sign_after_exponent) {
        text += c;
        advance();
        continue;
      }
      break;
    }
    emit(Tok::kNumber, std::move(text), line, col);
  }

  void string_literal() {
    const std::uint32_t line = line_;
    const std::uint32_t col = col_;
    std::string text;
    if (src_[pos_] == 'R') {
      // Raw string: R"delim( ... )delim".
      advance();  // R
      advance();  // "
      std::string delim;
      while (pos_ < src_.size() && src_[pos_] != '(') {
        delim += src_[pos_];
        advance();
      }
      advance();  // (
      const std::string closer = ")" + delim + "\"";
      while (pos_ < src_.size() &&
             src_.substr(pos_, closer.size()) != closer) {
        text += src_[pos_];
        advance();
      }
      for (std::size_t i = 0; i < closer.size() && pos_ < src_.size(); ++i) {
        advance();
      }
    } else {
      advance();  // opening quote
      while (pos_ < src_.size() && src_[pos_] != '"') {
        if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
          text += src_[pos_];
          advance();
        }
        if (src_[pos_] == '\n') break;  // unterminated; recover at EOL
        text += src_[pos_];
        advance();
      }
      if (pos_ < src_.size() && src_[pos_] == '"') advance();
    }
    emit(Tok::kString, std::move(text), line, col);
  }

  void char_literal() {
    const std::uint32_t line = line_;
    const std::uint32_t col = col_;
    std::string text;
    advance();  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '\'') {
      if (src_[pos_] == '\\' && pos_ + 1 < src_.size()) {
        text += src_[pos_];
        advance();
      }
      if (src_[pos_] == '\n') break;
      text += src_[pos_];
      advance();
    }
    if (pos_ < src_.size() && src_[pos_] == '\'') advance();
    emit(Tok::kChar, std::move(text), line, col);
  }

  void punct() {
    const std::uint32_t line = line_;
    const std::uint32_t col = col_;
    static constexpr std::array<std::string_view, 9> kThree = {
        "<<=", ">>=", "...", "->*", "<=>", "##=", "&&=", "||=", "::*"};
    static constexpr std::array<std::string_view, 19> kTwo = {
        "::", "->", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
        "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##"};
    const std::string_view rest = src_.substr(pos_);
    for (const std::string_view op : kThree) {
      if (rest.substr(0, 3) == op) {
        emit(Tok::kPunct, std::string(op), line, col);
        advance();
        advance();
        advance();
        return;
      }
    }
    for (const std::string_view op : kTwo) {
      if (rest.substr(0, 2) == op) {
        emit(Tok::kPunct, std::string(op), line, col);
        advance();
        advance();
        return;
      }
    }
    emit(Tok::kPunct, std::string(1, src_[pos_]), line, col);
    advance();
  }

  std::string_view src_;
  std::size_t pos_ = 0;
  std::uint32_t line_ = 1;
  std::uint32_t col_ = 1;
  bool at_line_start_ = true;
  std::vector<GuardFrame> guards_;
  std::vector<Token> tokens_;
};

}  // namespace

std::vector<Token> lex_cpp(std::string_view source) {
  return Lexer(source).run();
}

}  // namespace mac3d::lint
