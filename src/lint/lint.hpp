// mac3d lint — repo-specific static analysis (docs/STATIC_ANALYSIS.md).
//
// The repo's two hardest-won guarantees — bit-identical serial/parallel
// execution (docs/PARALLELISM.md) and zero-cost observability under
// MAC3D_OBS=OFF (docs/OBSERVABILITY.md) — are enforced dynamically by the
// equivalence suite and byte-diff tests, which catch a violation long
// after the offending line lands. This subsystem makes the contracts
// machine-checkable at review time: a lightweight tokenizer
// (lint/lexer.hpp) feeds a rule catalog in three families —
//
//   DET   determinism: no ambient randomness, wall clocks, hash-order
//         iteration or hidden static state in simulation code;
//   OBS   zero-cost discipline: telemetry/check sites compile out, metric
//         names parse against docs/metrics_schema.json, stage names are
//         members of the 10-stage taxonomy;
//   SYNC  docs/code coherence: the invariant catalog, stage taxonomy and
//         metric grammar each live in two places that must agree.
//
// Findings emit as text and SARIF and are gated by a committed baseline
// (tools/lint_baseline.json) with the same 0/1/2 exit contract as
// `mac3d report-diff`: pre-existing triaged findings pass, new ones fail.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mac3d::lint {

// ---- Rule catalog --------------------------------------------------------

struct RuleInfo {
  std::string_view id;       ///< stable dotted id, e.g. "det.rand_source"
  std::string_view family;   ///< "DET" | "OBS" | "SYNC"
  std::string_view summary;  ///< one-line description for --list-rules/SARIF
};

/// The full rule catalog, in stable id order.
[[nodiscard]] const std::vector<RuleInfo>& rule_catalog();

/// Catalog lookup (nullptr for an unknown id).
[[nodiscard]] const RuleInfo* find_rule(std::string_view id);

// ---- Findings ------------------------------------------------------------

struct Finding {
  std::string rule;         ///< rule id from the catalog
  std::string file;         ///< root-relative path, '/' separators
  std::uint32_t line = 0;   ///< 1-based (0 for whole-file findings)
  std::uint32_t col = 0;
  std::string message;
  bool suppressed = false;  ///< matched by a baseline entry
};

struct LintReport {
  std::vector<Finding> findings;      ///< sorted by (file, line, rule)
  std::vector<std::string> errors;    ///< IO trouble; nonempty => exit 2
  std::size_t files_scanned = 0;
  std::size_t new_findings = 0;       ///< findings not covered by baseline
  /// Baseline entries whose findings no longer occur (candidates for
  /// removal; reported as notes, never failures).
  std::vector<std::string> stale_baseline;
};

/// Run every rule over the repo rooted at `root` (expects `src/`, `apps/`
/// and `docs/` beneath it). Scans deterministically (sorted paths) so two
/// runs over the same tree emit byte-identical output.
[[nodiscard]] LintReport run_rules(const std::string& root);

// ---- Baseline ------------------------------------------------------------

/// One triaged allowance: up to `count` findings of `rule` in `file` are
/// expected and pass. `justification` documents why they are acceptable.
struct BaselineEntry {
  std::string rule;
  std::string file;
  std::uint64_t count = 0;
  std::string justification;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Load a committed baseline (schema mac3d-lint-baseline/1). Returns
/// false with a one-line `error` on IO/parse/schema trouble.
[[nodiscard]] bool load_baseline(const std::string& file, Baseline& out,
                                 std::string& error);

/// Mark up to `count` findings per (rule, file) entry as suppressed, set
/// `new_findings` to the remainder, and record stale entries.
void apply_baseline(const Baseline& baseline, LintReport& report);

/// Serialize the report's current findings as a baseline document (used
/// by --write-baseline; justifications default to "unreviewed").
[[nodiscard]] std::string baseline_json(const LintReport& report);

// ---- Output --------------------------------------------------------------

/// SARIF 2.1.0 document: every finding as a result (suppressed ones carry
/// a `suppressions` entry), the full rule catalog as tool.driver.rules.
[[nodiscard]] std::string sarif_json(const LintReport& report);

/// Human-readable rendering: one line per finding plus a summary.
[[nodiscard]] std::string render_text(const LintReport& report);

// ---- CLI -----------------------------------------------------------------

struct LintCliOptions {
  std::string root = ".";
  std::string baseline;        ///< --baseline FILE (optional gate)
  std::string sarif;           ///< --sarif FILE (optional artifact)
  std::string write_baseline;  ///< --write-baseline FILE (regenerate)
  bool list_rules = false;
};

/// Full `mac3d lint` entry point. Exit codes mirror `mac3d report-diff`:
/// 0 clean (no new findings), 1 new findings, 2 usage/IO/parse trouble.
[[nodiscard]] int run_lint_cli(const LintCliOptions& options);

}  // namespace mac3d::lint
