// Small DOM-style JSON reader for the lint subsystem.
//
// The observability layer's FlattenParser (src/obs/report_diff.*) parses
// straight into flat path->leaf maps, which is right for report diffing
// but loses the structure the linter needs: baseline entry objects,
// metric-schema family arrays, and (in tests) the SARIF document the
// emitter produced. This reader builds the tree; it is small, strict
// (no comments, no trailing commas) and depth-bounded.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mac3d::lint {

struct JsonValue {
  enum class Kind : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;  ///< kArray elements
  std::vector<std::pair<std::string, JsonValue>> members;  ///< kObject

  /// Object member lookup (nullptr when absent or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept {
    if (kind != Kind::kObject) return nullptr;
    for (const auto& [name, value] : members) {
      if (name == key) return &value;
    }
    return nullptr;
  }

  /// Convenience accessors that tolerate absent/mistyped members.
  [[nodiscard]] std::string string_or(std::string_view key,
                                      std::string fallback = "") const {
    const JsonValue* value = find(key);
    return value != nullptr && value->kind == Kind::kString ? value->string
                                                            : fallback;
  }
  [[nodiscard]] double number_or(std::string_view key,
                                 double fallback = 0.0) const noexcept {
    const JsonValue* value = find(key);
    return value != nullptr && value->kind == Kind::kNumber ? value->number
                                                            : fallback;
  }
};

/// Parse `text` into `out`. Returns false with a one-line `error`
/// (including a byte offset) on malformed input.
[[nodiscard]] bool parse_json(std::string_view text, JsonValue& out,
                              std::string& error);

}  // namespace mac3d::lint
