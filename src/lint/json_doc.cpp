#include "lint/json_doc.hpp"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace mac3d::lint {
namespace {

class Parser {
 public:
  Parser(std::string_view text, JsonValue& out) : text_(text), out_(out) {}

  bool run(std::string& error) {
    if (!value(out_, 0)) {
      error = error_.empty() ? message("invalid JSON") : error_;
      return false;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      error = message("trailing content after document");
      return false;
    }
    return true;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[nodiscard]] std::string message(const std::string& what) const {
    std::ostringstream out;
    out << what << " at byte " << pos_;
    return out.str();
  }

  void fail(const std::string& what) {
    if (error_.empty()) error_ = message(what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  bool value(JsonValue& out, int depth) {
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return false;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return false;
    }
    const char c = text_[pos_];
    if (c == '{') return object(out, depth);
    if (c == '[') return array(out, depth);
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return string(out.string);
    }
    if (literal("true")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return true;
    }
    if (literal("false")) {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return true;
    }
    if (literal("null")) {
      out.kind = JsonValue::Kind::kNull;
      return true;
    }
    return number(out);
  }

  bool object(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kObject;
    ++pos_;  // {
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"' || !string(key)) {
        fail("expected object key");
        return false;
      }
      if (!consume(':')) {
        fail("expected ':'");
        return false;
      }
      JsonValue member;
      if (!value(member, depth + 1)) return false;
      out.members.emplace_back(std::move(key), std::move(member));
      if (consume(',')) continue;
      if (consume('}')) return true;
      fail("expected ',' or '}'");
      return false;
    }
  }

  bool array(JsonValue& out, int depth) {
    out.kind = JsonValue::Kind::kArray;
    ++pos_;  // [
    if (consume(']')) return true;
    while (true) {
      JsonValue item;
      if (!value(item, depth + 1)) return false;
      out.items.push_back(std::move(item));
      if (consume(',')) continue;
      if (consume(']')) return true;
      fail("expected ',' or ']'");
      return false;
    }
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) break;
        const char esc = text_[pos_ + 1];
        pos_ += 2;
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              fail("truncated \\u escape");
              return false;
            }
            const std::string hex(text_.substr(pos_, 4));
            pos_ += 4;
            const long code = std::strtol(hex.c_str(), nullptr, 16);
            // Lint inputs are ASCII; fold non-ASCII escapes to '?'.
            out += code >= 0x20 && code < 0x7f ? static_cast<char>(code)
                                               : '?';
            break;
          }
          default:
            fail("unknown escape");
            return false;
        }
        continue;
      }
      out += c;
      ++pos_;
    }
    fail("unterminated string");
    return false;
  }

  bool number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) {
      fail("invalid value");
      return false;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double parsed = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      fail("invalid number");
      return false;
    }
    out.kind = JsonValue::Kind::kNumber;
    out.number = parsed;
    return true;
  }

  std::string_view text_;
  JsonValue& out_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string& error) {
  return Parser(text, out).run(error);
}

}  // namespace mac3d::lint
