// Set-associative LRU cache model — the substrate for the paper's
// motivation study (Sec. 2.1, Fig. 1). Tag-only (no data storage): it
// processes address streams and counts hits/misses/evictions, which is all
// the miss-rate analysis needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitutil.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace mac3d {

class CheckContext;

struct CacheConfig {
  std::string name = "L1";
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t ways = 8;
  bool write_allocate = true;

  [[nodiscard]] std::uint64_t sets() const noexcept {
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) * ways);
  }
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  [[nodiscard]] double miss_rate() const noexcept {
    return accesses == 0
               ? 0.0
               : static_cast<double>(misses) / static_cast<double>(accesses);
  }
  void collect(StatSet& out, const std::string& prefix) const;
};

/// One cache level. access() returns true on hit.
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Returns true on hit. On a miss the line is filled (with LRU eviction);
  /// write misses follow the write-allocate policy.
  bool access(Address addr, bool write);

  /// Probe without modifying state.
  [[nodiscard]] bool contains(Address addr) const noexcept;

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset();

  /// Enable the LRU stack-property invariant (docs/INVARIANTS.md §cache):
  /// after every access the touched line must be its set's unique MRU.
  /// The context must outlive the cache; pass nullptr to detach.
  void attach_checks(CheckContext* context) noexcept { checks_ = context; }

  /// Deliberate model bug for the invariant test suite: the next `n`
  /// accesses record a zeroed recency timestamp instead of the access
  /// tick, corrupting the LRU stack (cache.lru_stack must fire once the
  /// set holds another, younger line).
  void inject_lru_corruption(std::uint32_t n) noexcept { inject_lru_ = n; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  ///< larger == more recently used
    bool valid = false;
    bool dirty = false;
  };

  [[nodiscard]] std::uint64_t set_of(Address addr) const noexcept {
    return (addr >> line_shift_) & (sets_ - 1);
  }
  [[nodiscard]] std::uint64_t tag_of(Address addr) const noexcept {
    return addr >> (line_shift_ + set_bits_);
  }

  [[nodiscard]] std::uint64_t touch_stamp() noexcept {
    if (inject_lru_ > 0) {
      --inject_lru_;
      return 0;
    }
    return tick_;
  }
  void check_lru_stack(std::uint64_t set, const Line* touched);

  CacheConfig config_;
  unsigned line_shift_;
  unsigned set_bits_;
  std::uint64_t sets_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  ///< sets_ * ways, set-major
  CacheStats stats_;
  CheckContext* checks_ = nullptr;
  std::uint32_t inject_lru_ = 0;
};

/// Inclusive multi-level hierarchy: access L1, on miss go to L2, etc.
/// Reports per-level stats; overall miss rate = LLC misses / L1 accesses.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(std::vector<CacheConfig> levels);

  /// Returns the level that hit (0-based), or levels() for memory.
  std::uint32_t access(Address addr, bool write);

  [[nodiscard]] std::size_t levels() const noexcept { return caches_.size(); }
  [[nodiscard]] const Cache& level(std::size_t i) const {
    return caches_.at(i);
  }
  /// Misses that reached main memory / total L1 accesses.
  [[nodiscard]] double overall_miss_rate() const noexcept;
  void reset();

  /// Enable the LRU stack-property invariant on every level.
  void attach_checks(CheckContext* context) noexcept {
    for (Cache& cache : caches_) cache.attach_checks(context);
  }

 private:
  std::vector<Cache> caches_;
  std::uint64_t memory_accesses_ = 0;
  std::uint64_t total_accesses_ = 0;
};

}  // namespace mac3d
