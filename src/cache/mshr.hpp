// MSHR-based fixed-granularity coalescer — the conventional Dynamic Memory
// Coalescing baseline of paper Sec. 2.3: a miss-handling architecture that
// merges outstanding requests to the same cache-line-sized block, always
// dispatching fixed 64 B transactions regardless of how many requests merge.
//
// Exposes the same cycle-level interface as MacCoalescer so the simulation
// driver can run either path over identical traces (ablation benches).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "mac/coalescer.hpp"  // CompletedAccess
#include "mem/hmc_device.hpp"

namespace mac3d {

class CheckContext;
class ConservationChecker;
class EventSink;

struct MshrStats {
  std::uint64_t raw_in = 0;
  std::uint64_t fences_in = 0;     ///< fences accepted (complete like requests)
  std::uint64_t merged = 0;        ///< requests merged into an existing entry
  std::uint64_t packets_out = 0;   ///< fixed-size transactions dispatched
  std::uint64_t stalls_full = 0;   ///< cycles an allocation failed
  RunningStat raw_latency_cycles;

  [[nodiscard]] double coalescing_efficiency() const noexcept {
    return raw_in == 0 ? 0.0
                       : 1.0 - static_cast<double>(packets_out) /
                                   static_cast<double>(raw_in);
  }
};

class MshrCoalescer {
 public:
  /// `entries`: MSHR file size; `block_bytes`: fixed transaction size.
  MshrCoalescer(const SimConfig& config, HmcDevice& device,
                std::uint32_t entries = 32, std::uint32_t block_bytes = 64);
  ~MshrCoalescer();
  MshrCoalescer(const MshrCoalescer&) = delete;
  MshrCoalescer& operator=(const MshrCoalescer&) = delete;

  [[nodiscard]] bool can_accept() const noexcept;
  /// Dual-ported intake symmetric with MacCoalescer: one merge and one
  /// allocation per cycle. Returns false when rejected (retry next cycle).
  [[nodiscard]] bool try_accept(const RawRequest& request, Cycle now);
  void accept(const RawRequest& request, Cycle now);
  void tick(Cycle now);
  std::vector<CompletedAccess> drain(Cycle now);
  [[nodiscard]] bool idle() const noexcept;
  [[nodiscard]] Cycle next_event(Cycle now) const noexcept;

  [[nodiscard]] const MshrStats& stats() const noexcept { return stats_; }
  /// Live MSHR file entries (cycle-sampler probe).
  [[nodiscard]] std::size_t occupancy() const noexcept { return file_.size(); }
  /// Entries waiting to dispatch a transaction (cycle-sampler probe).
  [[nodiscard]] std::size_t dispatch_backlog() const noexcept {
    return dispatch_queue_.size();
  }

  /// Enable request/response conservation checking plus the MSHR
  /// occupancy-bound invariant (docs/INVARIANTS.md §cache). Same contract
  /// as MacCoalescer::attach_checks.
  void attach_checks(CheckContext* context, const std::string& scope = "mshr");

  /// Enable request-lifecycle telemetry (docs/OBSERVABILITY.md). The sink
  /// must outlive the coalescer; pass nullptr to detach.
  void attach_sink(EventSink* sink) noexcept { sink_ = sink; }

  // ---- Activity oracle (idle-cycle census, docs/OBSERVABILITY.md) --------
  [[nodiscard]] bool did_work_this_cycle(Cycle now) const noexcept {
    return last_work_ == now;
  }
  [[nodiscard]] Cycle next_activity_cycle(Cycle now) const noexcept {
    return next_event(now);
  }

  /// Deliberate model bug for the invariant test suite: let the next
  /// `n` allocations ignore the entry-count capacity test, overfilling
  /// the file (mshr.occupancy_bound must fire).
  void inject_capacity_overrun(std::uint32_t n) noexcept {
    inject_overrun_ = n;
  }

 private:
  struct Entry {
    Address block = 0;
    bool write = false;
    bool dispatched = false;
    std::vector<Target> targets;
    std::vector<Cycle> accept_cycles;
  };

  static std::uint64_t entry_key(Address block, bool write) noexcept {
    return block | (write ? 1ull : 0ull);
  }

  [[nodiscard]] bool intake(const RawRequest& request, Cycle now);

  SimConfig config_;
  HmcDevice& device_;
  std::uint32_t entries_;
  std::uint32_t block_bytes_;
  std::unordered_map<std::uint64_t, Entry> file_;  ///< key -> live entry
  std::deque<std::uint64_t> dispatch_queue_;       ///< keys awaiting dispatch
  std::unordered_map<TransactionId, std::uint64_t> in_flight_;
  std::unordered_set<std::uint64_t> atomic_keys_;
  std::deque<std::pair<Target, Cycle>> fences_;
  std::uint32_t barrier_pending_ = 0;
  std::uint64_t next_unique_ = 0;
  Cycle merge_port_used_at_ = ~Cycle{0};
  Cycle alloc_port_used_at_ = ~Cycle{0};
  std::vector<CompletedAccess> ready_completions_;
  TransactionId next_txn_ = 1;
  Cycle last_cycle_ = 0;
  Cycle last_work_ = ~Cycle{0};  ///< census slot (MAC3D_OBS_ACTIVITY)
  MshrStats stats_;
  std::uint32_t inject_overrun_ = 0;
  CheckContext* checks_ = nullptr;
  EventSink* sink_ = nullptr;
  std::unique_ptr<ConservationChecker> conservation_;
};

}  // namespace mac3d
