#include "cache/mshr.hpp"

#include <algorithm>
#include <cassert>

#include "check/check.hpp"
#include "check/conservation.hpp"
#include "check/invariants.hpp"
#include "common/bitutil.hpp"
#include "obs/obs.hpp"

namespace mac3d {

MshrCoalescer::MshrCoalescer(const SimConfig& config, HmcDevice& device,
                             std::uint32_t entries, std::uint32_t block_bytes)
    : config_(config),
      device_(device),
      entries_(entries),
      block_bytes_(block_bytes) {
  assert(is_pow2(block_bytes));
  assert(block_bytes >= kFlitBytes && block_bytes <= config.row_bytes);
}

MshrCoalescer::~MshrCoalescer() = default;

void MshrCoalescer::attach_checks(CheckContext* context,
                                  const std::string& scope) {
  checks_ = context;
  if (context == nullptr) {
    conservation_.reset();
    return;
  }
  conservation_ = std::make_unique<ConservationChecker>(*context, scope);
  context->on_finalize([this](CheckContext&) {
    if (conservation_ != nullptr) conservation_->finalize(last_cycle_);
  });
}

bool MshrCoalescer::can_accept() const noexcept {
  // Conservative: require a free entry (a merging request would not need
  // one, but the allocation decision must be guaranteed up front), and no
  // pending barrier.
  return barrier_pending_ == 0 && file_.size() < entries_;
}

bool MshrCoalescer::try_accept(const RawRequest& request, Cycle now) {
  const bool accepted = intake(request, now);
#if MAC3D_CHECKS_ENABLED
  if (accepted && conservation_ != nullptr) {
    conservation_->on_accept(request.tid, request.tag, request.op, now);
  }
#endif
  return accepted;
}

bool MshrCoalescer::intake(const RawRequest& request, Cycle now) {
  const bool merge_free = merge_port_used_at_ != now;
  const bool alloc_free = alloc_port_used_at_ != now;

  if (request.op == MemOp::kFence) {
    if (!alloc_free) return false;
    fences_.push_back({Target{request.tid, request.tag, 0}, now});
    ++stats_.fences_in;
    ++barrier_pending_;
    alloc_port_used_at_ = now;
    MAC3D_OBS_ACTIVITY(last_work_, now);
    MAC3D_OBS_STAMP(sink_, Stage::kQueueInsert, request.tid, request.tag, now);
    return true;
  }
  if (barrier_pending_ > 0) return false;  // strict barrier

  const std::uint32_t flit = device_.address_map().flit_of(
      device_.address_map().local_addr(request.addr));
  const Target target{request.tid, request.tag,
                      static_cast<std::uint8_t>(flit)};

  if (request.op == MemOp::kAtomic) {
    // Atomics bypass the MSHR file's merging entirely.
    if (!alloc_free || file_.size() >= entries_) return false;
    Entry entry;
    entry.block = align_down(request.addr, kFlitBytes);
    entry.write = true;
    entry.dispatched = false;
    entry.targets.push_back(target);
    entry.accept_cycles.push_back(now);
    const std::uint64_t key = (1ull << 63) | next_unique_++;
    file_.emplace(key, std::move(entry));
    dispatch_queue_.push_back(key);
    atomic_keys_.insert(key);
    alloc_port_used_at_ = now;
    MAC3D_OBS_ACTIVITY(last_work_, now);
    ++stats_.raw_in;
    MAC3D_OBS_STAMP(sink_, Stage::kQueueInsert, request.tid, request.tag, now);
    return true;
  }

  const Address block = align_down(request.addr, block_bytes_);
  const std::uint64_t key = entry_key(block, request.op == MemOp::kStore);
  const auto it = file_.find(key);
  if (it != file_.end()) {
    if (!merge_free) return false;
    it->second.targets.push_back(target);
    it->second.accept_cycles.push_back(now);
    merge_port_used_at_ = now;
    MAC3D_OBS_ACTIVITY(last_work_, now);
    ++stats_.merged;
    ++stats_.raw_in;
    MAC3D_OBS_STAMP(sink_, Stage::kQueueInsert, request.tid, request.tag, now);
    MAC3D_OBS_STAMP(sink_, Stage::kMerge, request.tid, request.tag, now);
#if MAC3D_OBS_ENABLED
    if (sink_ != nullptr && !it->second.targets.empty()) {
      const Target& leader = it->second.targets.front();
      sink_->on_merge(request.tid, request.tag, leader.tid, leader.tag, now);
    }
#endif
    return true;
  }

  const bool over_capacity = file_.size() >= entries_;
  if (!alloc_free || (over_capacity && inject_overrun_ == 0)) {
    ++stats_.stalls_full;
    return false;
  }
  if (over_capacity) --inject_overrun_;
  Entry entry;
  entry.block = block;
  entry.write = request.op == MemOp::kStore;
  entry.targets.push_back(target);
  entry.accept_cycles.push_back(now);
  file_.emplace(key, std::move(entry));
  dispatch_queue_.push_back(key);
  alloc_port_used_at_ = now;
  MAC3D_OBS_ACTIVITY(last_work_, now);
  ++stats_.raw_in;
  MAC3D_CHECK(checks_, inv::kMshrOccupancy, file_.size() <= entries_, now,
              "MSHR file occupancy " + std::to_string(file_.size()) +
                  " exceeds " + std::to_string(entries_) + " entries");
  MAC3D_OBS_STAMP(sink_, Stage::kQueueInsert, request.tid, request.tag, now);
  return true;
}

void MshrCoalescer::accept(const RawRequest& request, Cycle now) {
  const bool accepted = try_accept(request, now);
  assert(accepted && "MshrCoalescer::accept rejected");
  (void)accepted;
}

void MshrCoalescer::tick(Cycle now) {
  last_cycle_ = now;
  // Retire a pending barrier once everything older has drained.
  if (barrier_pending_ > 0 && file_.empty() && dispatch_queue_.empty() &&
      in_flight_.empty()) {
    const auto [target, accepted] = fences_.front();
    fences_.pop_front();
    --barrier_pending_;
    CompletedAccess done;
    done.target = target;
    done.fence = true;
    done.accepted = accepted;
    done.completed = now;
    ready_completions_.push_back(done);
    MAC3D_OBS_ACTIVITY(last_work_, now);
  }

  // Dispatch one transaction per cycle.
  if (dispatch_queue_.empty()) return;
  const std::uint64_t key = dispatch_queue_.front();
  auto it = file_.find(key);
  assert(it != file_.end());
  Entry& entry = it->second;

  HmcRequest request;
  request.addr = entry.block;
  const bool is_atomic = atomic_keys_.count(key) != 0;
  request.data_bytes = is_atomic ? kFlitBytes : block_bytes_;
  request.write = entry.write;
  request.atomic = is_atomic;
  if (!device_.can_accept(request, now)) return;
  request.id = next_txn_++;
  in_flight_.emplace(request.id, key);
  device_.submit(std::move(request), now);
  entry.dispatched = true;
  dispatch_queue_.pop_front();
  MAC3D_OBS_ACTIVITY(last_work_, now);
  ++stats_.packets_out;
}

std::vector<CompletedAccess> MshrCoalescer::drain(Cycle now) {
  std::vector<CompletedAccess> out;
  out.swap(ready_completions_);

  for (const HmcResponse& response : device_.drain(now)) {
    const auto flight = in_flight_.find(response.id);
    assert(flight != in_flight_.end());
    const std::uint64_t key = flight->second;
    in_flight_.erase(flight);
    const auto it = file_.find(key);
    assert(it != file_.end());
    Entry& entry = it->second;
    for (std::size_t i = 0; i < entry.targets.size(); ++i) {
      CompletedAccess done;
      done.target = entry.targets[i];
      done.write = entry.write;
      done.atomic = atomic_keys_.count(key) != 0;
      done.accepted = entry.accept_cycles[i];
      done.completed = response.completed;
      stats_.raw_latency_cycles.add(
          static_cast<double>(done.completed - done.accepted));
      out.push_back(done);
    }
    atomic_keys_.erase(key);
    file_.erase(it);
  }
  if (!out.empty()) MAC3D_OBS_ACTIVITY(last_work_, now);
#if MAC3D_OBS_ENABLED
  if (sink_ != nullptr) {
    for (const CompletedAccess& done : out) {
      sink_->on_stage(Stage::kResponseMatch, done.target.tid, done.target.tag,
                      done.completed);
    }
  }
#endif
#if MAC3D_CHECKS_ENABLED
  if (conservation_ != nullptr) {
    for (const CompletedAccess& done : out) {
      conservation_->on_complete(done.target.tid, done.target.tag, done.fence,
                                 now);
    }
  }
#endif
  return out;
}

bool MshrCoalescer::idle() const noexcept {
  return file_.empty() && dispatch_queue_.empty() && in_flight_.empty() &&
         ready_completions_.empty() && barrier_pending_ == 0;
}

Cycle MshrCoalescer::next_event(Cycle now) const noexcept {
  if (idle()) return 0;
  if (!ready_completions_.empty() || !dispatch_queue_.empty() ||
      barrier_pending_ > 0) {
    return now + 1;
  }
  const Cycle completion = device_.next_completion();
  return completion > now ? completion : now + 1;
}

}  // namespace mac3d
