#include "cache/cache.hpp"

#include <stdexcept>

#include "check/check.hpp"
#include "check/invariants.hpp"

namespace mac3d {

void CacheStats::collect(StatSet& out, const std::string& prefix) const {
  out.set(prefix + ".accesses", static_cast<double>(accesses));
  out.set(prefix + ".hits", static_cast<double>(hits));
  out.set(prefix + ".misses", static_cast<double>(misses));
  out.set(prefix + ".evictions", static_cast<double>(evictions));
  out.set(prefix + ".writebacks", static_cast<double>(writebacks));
  out.set(prefix + ".miss_rate", miss_rate());
}

Cache::Cache(const CacheConfig& config) : config_(config) {
  if (!is_pow2(config.line_bytes) || config.ways == 0 ||
      config.size_bytes %
              (static_cast<std::uint64_t>(config.line_bytes) * config.ways) !=
          0) {
    throw std::invalid_argument("Cache: bad geometry for " + config.name);
  }
  sets_ = config.sets();
  if (!is_pow2(sets_)) {
    throw std::invalid_argument("Cache: set count must be a power of two");
  }
  line_shift_ = log2_exact(config.line_bytes);
  set_bits_ = log2_exact(sets_);
  lines_.resize(sets_ * config.ways);
}

bool Cache::access(Address addr, bool write) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  Line* base = &lines_[set * config_.ways];

  Line* victim = base;
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    Line& line = base[way];
    if (line.valid && line.tag == tag) {
      line.lru = touch_stamp();
      line.dirty = line.dirty || write;
      ++stats_.hits;
#if MAC3D_CHECKS_ENABLED
      if (checks_ != nullptr) check_lru_stack(set, &line);
#endif
      return true;
    }
    if (!line.valid) {
      victim = &line;
    } else if (victim->valid && line.lru < victim->lru) {
      victim = &line;
    }
  }

  ++stats_.misses;
  if (write && !config_.write_allocate) {
    return false;  // write-around: no fill
  }
  if (victim->valid) {
    ++stats_.evictions;
    stats_.writebacks += victim->dirty ? 1 : 0;
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = touch_stamp();
  victim->dirty = write;
#if MAC3D_CHECKS_ENABLED
  if (checks_ != nullptr) check_lru_stack(set, victim);
#endif
  return false;
}

void Cache::check_lru_stack(std::uint64_t set, const Line* touched) {
#if !MAC3D_CHECKS_ENABLED
  (void)set;
  (void)touched;
#else
  const Line* base = &lines_[set * config_.ways];
  bool mru_unique = true;
  bool stamps_distinct = true;
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    const Line& line = base[way];
    if (!line.valid || &line == touched) continue;
    mru_unique = mru_unique && line.lru < touched->lru;
    for (std::uint32_t other = way + 1; other < config_.ways; ++other) {
      if (base[other].valid && &base[other] != touched) {
        stamps_distinct = stamps_distinct && base[other].lru != line.lru;
      }
    }
  }
  MAC3D_CHECK(checks_, inv::kCacheLruStack, mru_unique && stamps_distinct,
              tick_,
              config_.name + " set " + std::to_string(set) +
                  ": touched line (stamp " + std::to_string(touched->lru) +
                  ") is not the unique MRU after access " +
                  std::to_string(tick_));
#endif
}

bool Cache::contains(Address addr) const noexcept {
  const std::uint64_t set = set_of(addr);
  const std::uint64_t tag = tag_of(addr);
  const Line* base = &lines_[set * config_.ways];
  for (std::uint32_t way = 0; way < config_.ways; ++way) {
    if (base[way].valid && base[way].tag == tag) return true;
  }
  return false;
}

void Cache::reset() {
  for (Line& line : lines_) line = Line{};
  tick_ = 0;
  stats_ = CacheStats{};
  inject_lru_ = 0;
}

CacheHierarchy::CacheHierarchy(std::vector<CacheConfig> levels) {
  if (levels.empty()) {
    throw std::invalid_argument("CacheHierarchy: need at least one level");
  }
  caches_.reserve(levels.size());
  for (const CacheConfig& config : levels) caches_.emplace_back(config);
}

std::uint32_t CacheHierarchy::access(Address addr, bool write) {
  ++total_accesses_;
  for (std::uint32_t i = 0; i < caches_.size(); ++i) {
    if (caches_[i].access(addr, write)) return i;
  }
  ++memory_accesses_;
  return static_cast<std::uint32_t>(caches_.size());
}

double CacheHierarchy::overall_miss_rate() const noexcept {
  return total_accesses_ == 0 ? 0.0
                              : static_cast<double>(memory_accesses_) /
                                    static_cast<double>(total_accesses_);
}

void CacheHierarchy::reset() {
  for (Cache& cache : caches_) cache.reset();
  memory_accesses_ = 0;
  total_accesses_ = 0;
}

}  // namespace mac3d
