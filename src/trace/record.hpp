// A single traced memory instruction (the unit produced by workloads and
// consumed by the simulation drivers).
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mac3d {

/// Core cycles charged per SPM access in record gaps (~1 ns at 3.3 GHz,
/// Table 1's average SPM access latency).
inline constexpr std::uint32_t kSpmGapCycles = 3;

struct MemRecord {
  Address addr = 0;
  MemOp op = MemOp::kLoad;
  std::uint8_t size = 8;  ///< bytes; records never straddle a FLIT
  /// Core cycles of non-memory work (compute instructions at IPC 1, SPM
  /// accesses at SPM latency) between the previous memory operation of
  /// this thread and this one — what the closed-loop driver charges
  /// before the core may issue this record.
  std::uint16_t gap = 0;

  friend bool operator==(const MemRecord&, const MemRecord&) = default;
};

static_assert(sizeof(MemRecord) <= 16, "MemRecord should stay compact");

}  // namespace mac3d
