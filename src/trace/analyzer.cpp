#include "trace/analyzer.hpp"

#include <map>
#include <unordered_set>

#include "mem/address_map.hpp"

namespace mac3d {

void TraceProfile::collect(StatSet& out, const std::string& prefix) const {
  out.set(prefix + ".records", static_cast<double>(records));
  out.set(prefix + ".loads", static_cast<double>(loads));
  out.set(prefix + ".stores", static_cast<double>(stores));
  out.set(prefix + ".atomics", static_cast<double>(atomics));
  out.set(prefix + ".fences", static_cast<double>(fences));
  out.set(prefix + ".distinct_rows", static_cast<double>(distinct_rows));
  out.set(prefix + ".ideal_coalescing", ideal_coalescing);
  out.set(prefix + ".mean_flits_per_group", mean_flits_per_group);
  out.set(prefix + ".read_fraction", read_fraction);
}

TraceProfile analyze(const MemoryTrace& trace, const SimConfig& config,
                     std::uint32_t threads, std::uint32_t window) {
  if (window == 0) window = config.arq_entries;
  const AddressMap map(config);
  TraceProfile profile;

  std::unordered_set<std::uint64_t> global_rows;
  InterleavedStream stream(trace, threads, config.cores);

  // Per-window bookkeeping: row|type -> distinct FLIT set size.
  // std::map, not unordered: flush_window iterates it, and hash order
  // would make the per-window accumulation order host-dependent
  // (det.unordered_iteration).
  std::map<std::uint64_t, std::uint64_t> groups;  // key -> flitmask
  std::uint64_t window_fill = 0;
  std::uint64_t total_groups = 0;
  std::uint64_t total_flits_in_groups = 0;
  std::uint64_t coalescable = 0;

  auto flush_window = [&] {
    if (groups.empty()) return;
    profile.footprint_rows.add(static_cast<double>(groups.size()));
    for (const auto& [key, mask] : groups) {
      (void)key;
      ++total_groups;
      total_flits_in_groups += popcount64(mask);
    }
    groups.clear();
    window_fill = 0;
  };

  while (!stream.done()) {
    const RawRequest request = stream.next();
    ++profile.records;
    switch (request.op) {
      case MemOp::kLoad: ++profile.loads; break;
      case MemOp::kStore: ++profile.stores; break;
      case MemOp::kAtomic: ++profile.atomics; break;
      case MemOp::kFence: ++profile.fences; break;
    }
    if (!is_coalescable(request.op)) {
      if (request.op == MemOp::kFence) flush_window();  // fences split windows
      continue;
    }
    ++coalescable;
    const Address local = map.local_addr(request.addr);
    const std::uint64_t row = map.row_of(local);
    global_rows.insert(row);
    const std::uint64_t key =
        (row << 1) | (request.op == MemOp::kStore ? 1u : 0u);
    groups[key] |= std::uint64_t{1} << map.flit_of(local);
    if (++window_fill >= window) flush_window();
  }
  flush_window();

  profile.distinct_rows = global_rows.size();
  if (coalescable > 0 && total_groups > 0) {
    profile.ideal_coalescing =
        1.0 - static_cast<double>(total_groups) /
                  static_cast<double>(coalescable);
    profile.mean_flits_per_group =
        static_cast<double>(total_flits_in_groups) /
        static_cast<double>(total_groups);
  }
  const std::uint64_t rw = profile.loads + profile.stores;
  profile.read_fraction =
      rw == 0 ? 0.0
              : static_cast<double>(profile.loads) / static_cast<double>(rw);
  return profile;
}

}  // namespace mac3d
