// Binary trace file format (save once, replay through multiple memory
// paths — see examples/trace_replay).
//
// Layout (little endian):
//   magic   "MAC3DTRC"            8 B
//   version u32                   (currently 1)
//   threads u32
//   per thread: count u64, then count * {addr u64, op u8, size u8, pad u16,
//                                        pad u32}
#pragma once

#include <string>

#include "trace/trace.hpp"

namespace mac3d {

/// Throws std::runtime_error on IO failure.
void save_trace(const MemoryTrace& trace, const std::string& path);

/// Throws std::runtime_error on IO failure or format mismatch.
[[nodiscard]] MemoryTrace load_trace(const std::string& path);

}  // namespace mac3d
