#include "trace/trace_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace mac3d {
namespace {

constexpr std::array<char, 8> kMagic = {'M', 'A', 'C', '3',
                                        'D', 'T', 'R', 'C'};
constexpr std::uint32_t kVersion = 2;  // v2 added the gap field

struct DiskRecord {
  std::uint64_t addr;
  std::uint8_t op;
  std::uint8_t size;
  std::uint16_t gap;
  std::uint32_t pad32;
};
static_assert(sizeof(DiskRecord) == 16);

template <typename T>
void write_pod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in) throw std::runtime_error("trace file truncated");
}

}  // namespace

void save_trace(const MemoryTrace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kVersion);
  write_pod(out, trace.threads());
  for (std::uint32_t t = 0; t < trace.threads(); ++t) {
    const auto& records = trace.thread(static_cast<ThreadId>(t));
    write_pod(out, static_cast<std::uint64_t>(records.size()));
    for (const MemRecord& record : records) {
      DiskRecord disk{record.addr, static_cast<std::uint8_t>(record.op),
                      record.size, record.gap, 0};
      write_pod(out, disk);
    }
  }
  if (!out) throw std::runtime_error("write failed: " + path);
}

MemoryTrace load_trace(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic) {
    throw std::runtime_error("not a MAC3D trace file: " + path);
  }
  std::uint32_t version = 0;
  read_pod(in, version);
  if (version != kVersion) {
    throw std::runtime_error("unsupported trace version " +
                             std::to_string(version));
  }
  std::uint32_t threads = 0;
  read_pod(in, threads);
  if (threads == 0 || threads > 65536) {
    throw std::runtime_error("implausible thread count in trace");
  }
  MemoryTrace trace(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    std::uint64_t count = 0;
    read_pod(in, count);
    for (std::uint64_t i = 0; i < count; ++i) {
      DiskRecord disk{};
      read_pod(in, disk);
      if (disk.op > static_cast<std::uint8_t>(MemOp::kAtomic)) {
        throw std::runtime_error("corrupt record op in trace");
      }
      trace.append(static_cast<ThreadId>(t),
                   MemRecord{disk.addr, static_cast<MemOp>(disk.op),
                             disk.size, disk.gap});
    }
  }
  return trace;
}

}  // namespace mac3d
