// Bump allocator for laying out workload data structures in the physical
// address space of the 3D-stacked memory (one per node). Replaces the
// paper's use of the Spike simulator's physical memory map.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "common/bitutil.hpp"
#include "common/types.hpp"

namespace mac3d {

class AddressSpace {
 public:
  /// `capacity`: bytes available; `base`: first usable address
  /// (node_id * node_span for NUMA layouts).
  explicit AddressSpace(std::uint64_t capacity, Address base = 0)
      : base_(base), capacity_(capacity), next_(base) {}

  /// Allocate `bytes` aligned to `align` (power of two). Throws when the
  /// workload footprint would exceed the device capacity.
  Address alloc(std::uint64_t bytes, std::uint64_t align = 64) {
    next_ = align_up(next_, align);
    if (next_ + bytes > base_ + capacity_) {
      throw std::runtime_error(
          "AddressSpace: workload footprint exceeds memory capacity (" +
          std::to_string(bytes) + " B requested)");
    }
    const Address out = next_;
    next_ += bytes;
    return out;
  }

  [[nodiscard]] std::uint64_t used() const noexcept { return next_ - base_; }
  [[nodiscard]] std::uint64_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] Address base() const noexcept { return base_; }

 private:
  Address base_;
  std::uint64_t capacity_;
  Address next_;
};

}  // namespace mac3d
