// Trace analyzer (paper Sec. 5.1): inspects a memory instruction stream and
// derives the HMC-level characteristics that drive coalescing — row
// locality within an ARQ-sized window, FLIT distribution, read/write mix.
#pragma once

#include <cstdint>
#include <map>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "trace/trace.hpp"

namespace mac3d {

struct TraceProfile {
  std::uint64_t records = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t atomics = 0;
  std::uint64_t fences = 0;
  std::uint64_t distinct_rows = 0;
  /// Upper bound on coalescing: 1 - (row-groups / requests) computed over
  /// sliding windows of `window` interleaved requests (an ideal coalescer
  /// with `window` entries).
  double ideal_coalescing = 0.0;
  /// Mean distinct FLITs per row-group within the window.
  double mean_flits_per_group = 0.0;
  double read_fraction = 0.0;
  RunningStat footprint_rows;  ///< distinct rows per window

  void collect(StatSet& out, const std::string& prefix) const;
};

/// Analyze the stream as the MAC would see it (threads interleaved
/// round-robin). `window` models the ARQ reach (default: arq_entries).
[[nodiscard]] TraceProfile analyze(const MemoryTrace& trace,
                                   const SimConfig& config,
                                   std::uint32_t threads,
                                   std::uint32_t window = 0);

}  // namespace mac3d
