#include "trace/trace.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <stdexcept>

namespace mac3d {

MemoryTrace::MemoryTrace(std::uint32_t threads)
    : per_thread_(threads),
      instr_count_(threads, 0),
      spm_count_(threads, 0),
      pending_gap_(threads, 0) {
  if (threads == 0) throw std::invalid_argument("MemoryTrace: 0 threads");
}

std::uint16_t MemoryTrace::take_gap(ThreadId tid) {
  const std::uint64_t gap = pending_gap_.at(tid);
  pending_gap_[tid] = 0;
  return static_cast<std::uint16_t>(gap > 0xFFFF ? 0xFFFF : gap);
}

void MemoryTrace::push(ThreadId tid, MemRecord record) {
  record.gap = take_gap(tid);
  // Records must be FLIT-granular for the MAC (Sec. 4.1). Split any access
  // that straddles a FLIT boundary, as a hardware load/store unit would
  // split an unaligned access across bus beats.
  const Address first_flit = record.addr / kFlitBytes;
  const Address last_flit = (record.addr + record.size - 1) / kFlitBytes;
  if (first_flit == last_flit) {
    per_thread_.at(tid).push_back(record);
    instr_count_.at(tid) += 1;
    return;
  }
  const Address boundary = (first_flit + 1) * kFlitBytes;
  MemRecord lo = record;
  lo.size = static_cast<std::uint8_t>(boundary - record.addr);
  MemRecord hi = record;
  hi.addr = boundary;
  hi.size = static_cast<std::uint8_t>(record.addr + record.size - boundary);
  hi.gap = 0;  // back-to-back bus beats of one instruction
  per_thread_.at(tid).push_back(lo);
  per_thread_.at(tid).push_back(hi);
  instr_count_.at(tid) += 1;  // one instruction, two bus-level records
}

void MemoryTrace::instr(ThreadId tid, std::uint64_t count) {
  instr_count_.at(tid) += count;
  pending_gap_.at(tid) += count;  // IPC 1 in-order cores
}

void MemoryTrace::load(ThreadId tid, Address addr, std::uint8_t size) {
  push(tid, MemRecord{addr, MemOp::kLoad, size});
}

void MemoryTrace::store(ThreadId tid, Address addr, std::uint8_t size) {
  push(tid, MemRecord{addr, MemOp::kStore, size});
}

void MemoryTrace::atomic(ThreadId tid, Address addr, std::uint8_t size) {
  assert(addr % size == 0 && "atomics must be naturally aligned");
  per_thread_.at(tid).push_back(
      MemRecord{addr, MemOp::kAtomic, size, take_gap(tid)});
  instr_count_.at(tid) += 1;
}

void MemoryTrace::fence(ThreadId tid) {
  per_thread_.at(tid).push_back(MemRecord{0, MemOp::kFence, 0, take_gap(tid)});
  instr_count_.at(tid) += 1;
}

void MemoryTrace::spm_load(ThreadId tid, std::uint64_t count) {
  spm_count_.at(tid) += count;
  instr_count_.at(tid) += count;
  pending_gap_.at(tid) += count * kSpmGapCycles;
}

void MemoryTrace::spm_store(ThreadId tid, std::uint64_t count) {
  spm_count_.at(tid) += count;
  instr_count_.at(tid) += count;
  pending_gap_.at(tid) += count * kSpmGapCycles;
}

std::uint64_t MemoryTrace::size() const noexcept {
  std::uint64_t total = 0;
  for (const auto& thread : per_thread_) total += thread.size();
  return total;
}

std::uint64_t MemoryTrace::instructions() const noexcept {
  return std::accumulate(instr_count_.begin(), instr_count_.end(),
                         std::uint64_t{0});
}

std::uint64_t MemoryTrace::memory_refs() const noexcept {
  return main_memory_refs() + spm_refs();
}

std::uint64_t MemoryTrace::main_memory_refs() const noexcept {
  std::uint64_t total = 0;
  for (const auto& thread : per_thread_) {
    for (const MemRecord& record : thread) {
      total += record.op != MemOp::kFence ? 1 : 0;
    }
  }
  return total;
}

std::uint64_t MemoryTrace::spm_refs() const noexcept {
  return std::accumulate(spm_count_.begin(), spm_count_.end(),
                         std::uint64_t{0});
}

double MemoryTrace::requests_per_instruction() const noexcept {
  const std::uint64_t instrs = instructions();
  return instrs == 0 ? 0.0
                     : static_cast<double>(memory_refs()) /
                           static_cast<double>(instrs);
}

double MemoryTrace::mem_access_rate() const noexcept {
  const std::uint64_t refs = memory_refs();
  return refs == 0 ? 0.0
                   : static_cast<double>(main_memory_refs()) /
                         static_cast<double>(refs);
}

void MemoryTrace::clear() {
  for (auto& thread : per_thread_) thread.clear();
  std::fill(instr_count_.begin(), instr_count_.end(), 0);
  std::fill(spm_count_.begin(), spm_count_.end(), 0);
  std::fill(pending_gap_.begin(), pending_gap_.end(), 0);
}

void MemoryTrace::append(ThreadId tid, const MemRecord& record) {
  per_thread_.at(tid).push_back(record);
  instr_count_.at(tid) += 1;
}

InterleavedStream::InterleavedStream(const MemoryTrace& trace,
                                     std::uint32_t threads,
                                     std::uint32_t cores, NodeId node)
    : trace_(trace),
      threads_(std::min(threads, trace.threads())),
      cores_(cores),
      node_(node),
      cursor_(threads_, 0),
      next_tag_(threads_, 0) {
  if (threads_ == 0 || cores_ == 0) {
    throw std::invalid_argument("InterleavedStream: 0 threads or cores");
  }
  for (std::uint32_t t = 0; t < threads_; ++t) {
    remaining_ += trace_.thread(static_cast<ThreadId>(t)).size();
  }
}

RawRequest InterleavedStream::next() {
  assert(!done());
  // Round-robin: advance to the next thread with records left.
  while (cursor_[turn_] >= trace_.thread(static_cast<ThreadId>(turn_)).size()) {
    turn_ = (turn_ + 1) % threads_;
  }
  const ThreadId tid = static_cast<ThreadId>(turn_);
  const MemRecord& record = trace_.thread(tid)[cursor_[turn_]++];
  turn_ = (turn_ + 1) % threads_;
  --remaining_;

  RawRequest request;
  request.addr = record.addr;
  request.op = record.op;
  request.size = record.size;
  request.tid = tid;
  request.tag = next_tag_[tid]++;
  request.core = static_cast<CoreId>(tid % cores_);
  request.node = node_;
  return request;
}

void InterleavedStream::reset() {
  std::fill(cursor_.begin(), cursor_.end(), 0);
  std::fill(next_tag_.begin(), next_tag_.end(), Tag{0});
  turn_ = 0;
  remaining_ = 0;
  for (std::uint32_t t = 0; t < threads_; ++t) {
    remaining_ += trace_.thread(static_cast<ThreadId>(t)).size();
  }
}

}  // namespace mac3d
