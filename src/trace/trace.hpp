// Per-thread memory instruction trace plus the instruction/SPM counters
// needed for the paper's Eq. 2 (requests per cycle).
//
// This is the reproduction's substitute for the paper's modified RISC-V
// Spike tracer: workloads execute natively and record the memory
// operations that would reach the MAC, tagging each with its thread.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "trace/record.hpp"

namespace mac3d {

/// Sink interface workloads emit into.
class TraceSink {
 public:
  virtual ~TraceSink() = default;

  /// `count` non-memory instructions retired by thread `tid`.
  virtual void instr(ThreadId tid, std::uint64_t count = 1) = 0;
  /// Main-memory operations (these reach the MAC).
  virtual void load(ThreadId tid, Address addr, std::uint8_t size = 8) = 0;
  virtual void store(ThreadId tid, Address addr, std::uint8_t size = 8) = 0;
  virtual void atomic(ThreadId tid, Address addr, std::uint8_t size = 8) = 0;
  virtual void fence(ThreadId tid) = 0;
  /// Memory operations satisfied by the core's scratchpad (SPM); they are
  /// counted (for Eq. 2's mem_access_rate) but never reach the MAC.
  virtual void spm_load(ThreadId tid, std::uint64_t count = 1) = 0;
  virtual void spm_store(ThreadId tid, std::uint64_t count = 1) = 0;
};

/// Materialized trace: per-thread record vectors + counters.
class MemoryTrace final : public TraceSink {
 public:
  explicit MemoryTrace(std::uint32_t threads);

  void instr(ThreadId tid, std::uint64_t count = 1) override;
  void load(ThreadId tid, Address addr, std::uint8_t size = 8) override;
  void store(ThreadId tid, Address addr, std::uint8_t size = 8) override;
  void atomic(ThreadId tid, Address addr, std::uint8_t size = 8) override;
  void fence(ThreadId tid) override;
  void spm_load(ThreadId tid, std::uint64_t count = 1) override;
  void spm_store(ThreadId tid, std::uint64_t count = 1) override;

  [[nodiscard]] std::uint32_t threads() const noexcept {
    return static_cast<std::uint32_t>(per_thread_.size());
  }
  [[nodiscard]] const std::vector<MemRecord>& thread(ThreadId tid) const {
    return per_thread_.at(tid);
  }
  /// Total traced main-memory records across all threads.
  [[nodiscard]] std::uint64_t size() const noexcept;
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  /// Total instructions (compute + memory) across threads.
  [[nodiscard]] std::uint64_t instructions() const noexcept;
  /// Memory references of any kind (main memory + SPM).
  [[nodiscard]] std::uint64_t memory_refs() const noexcept;
  /// Main-memory references only (what reaches the MAC).
  [[nodiscard]] std::uint64_t main_memory_refs() const noexcept;
  [[nodiscard]] std::uint64_t spm_refs() const noexcept;

  /// Eq. 2 ingredients.
  [[nodiscard]] double requests_per_instruction() const noexcept;
  [[nodiscard]] double mem_access_rate() const noexcept;  ///< main / all refs

  void clear();

  /// Direct append (trace replay / IO path).
  void append(ThreadId tid, const MemRecord& record);

 private:
  void push(ThreadId tid, MemRecord record);
  /// Consume the accumulated compute/SPM gap for `tid` (saturating u16).
  [[nodiscard]] std::uint16_t take_gap(ThreadId tid);

  std::vector<std::vector<MemRecord>> per_thread_;
  std::vector<std::uint64_t> instr_count_;
  std::vector<std::uint64_t> spm_count_;
  std::vector<std::uint64_t> pending_gap_;  ///< cycles since last mem op
};

/// Round-robin interleave of a trace's threads into the single raw-request
/// stream a node's cores would present to the MAC. Assigns per-thread tags
/// (wrapping at 16 bits as in the paper's 2 B tag field) and maps threads
/// onto cores.
class InterleavedStream {
 public:
  /// Use `threads` <= trace.threads() streams; `cores` for the core field.
  InterleavedStream(const MemoryTrace& trace, std::uint32_t threads,
                    std::uint32_t cores, NodeId node = 0);

  [[nodiscard]] bool done() const noexcept { return remaining_ == 0; }
  [[nodiscard]] std::uint64_t remaining() const noexcept { return remaining_; }
  RawRequest next();

  void reset();

 private:
  const MemoryTrace& trace_;
  std::uint32_t threads_;
  std::uint32_t cores_;
  NodeId node_;
  std::vector<std::size_t> cursor_;
  std::vector<Tag> next_tag_;
  std::uint32_t turn_ = 0;
  std::uint64_t remaining_ = 0;
};

}  // namespace mac3d
