// SSCA#2 — HPCS Scalable Synthetic Compact Application graph analysis
// (Sec. 5.2). R-MAT graph; we reproduce the memory behaviour of its two
// dominant kernels:
//   kernel 1: classify edges by weight (sequential scan of the CSR arrays)
//   kernel 3/4: extract subgraphs by bounded breadth-first expansion from
//               sampled roots (sequential adjacency reads + random visits)
#include "workloads/all.hpp"
#include "workloads/detail.hpp"
#include "workloads/graph_gen.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class Ssca2Workload final : public Workload {
 public:
  std::string name() const override { return "ssca2"; }
  std::string description() const override {
    return "SSCA#2: R-MAT edge classification + bounded BFS extraction";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const auto scale_log2 = static_cast<std::uint32_t>(
        13 + (params.scale >= 4.0 ? 2 : params.scale >= 2.0 ? 1 : 0));
    const CsrGraph graph = make_rmat_graph(scale_log2, 8, params.seed);
    const std::uint64_t vertices = graph.num_vertices;
    const std::uint64_t edges = graph.num_edges();

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef offsets{space.alloc((vertices + 1) * 8), 8};
    const ArrayRef targets{space.alloc(edges * 4), 4};
    const ArrayRef weights{space.alloc(edges * 4), 4};
    const ArrayRef visited{space.alloc(vertices * 8), 8};
    const ArrayRef out{space.alloc(edges * 8), 8};

    for (std::uint32_t t = 0; t < params.threads; ++t) {
      const auto tid = static_cast<ThreadId>(t);
      Xoshiro256 rng(params.seed * 104729 + t);

      // Kernel 1: scan classifying edges by weight (cyclic distribution).
      std::uint64_t heavy = 0;
      const std::uint64_t out_base = t * (edges / params.threads);
      for (std::uint64_t e = t; e < edges; e += params.threads) {
        detail::emit_load(sink, tid, weights, e);
        detail::emit_load(sink, tid, targets, e);
        sink.instr(tid, 5);  // compare + branch
        if ((rng.next() & 7u) == 0) {
          detail::emit_store(sink, tid, out, out_base + heavy);  // record edge
          ++heavy;
        }
      }
      sink.fence(tid);

      // Kernel 3: bounded BFS expansion from sampled roots.
      const std::uint64_t roots = params.scaled(4, 1);
      const std::uint64_t edge_budget = params.scaled(8000, 256);
      for (std::uint64_t r = 0; r < roots; ++r) {
        std::uint64_t frontier = rng.below(vertices);
        std::uint64_t expanded = 0;
        while (expanded < edge_budget) {
          detail::emit_load(sink, tid, offsets, frontier);      // degree
          detail::emit_load(sink, tid, offsets, frontier + 1);
          const std::uint64_t deg = graph.degree(frontier);
          if (deg == 0) {
            frontier = rng.below(vertices);
            continue;
          }
          const std::uint64_t base = graph.offsets[frontier];
          std::uint64_t next = frontier;
          for (std::uint64_t d = 0; d < deg && expanded < edge_budget; ++d) {
            detail::emit_load(sink, tid, targets, base + d);     // neighbor
            const std::uint32_t v = graph.targets[base + d];
            detail::emit_load(sink, tid, visited, v);            // probe
            sink.instr(tid, 5);
            if ((rng.next() & 3u) == 0) {
              detail::emit_store(sink, tid, visited, v);         // mark
              next = v;
            }
            ++expanded;
          }
          frontier = next == frontier ? rng.below(vertices) : next;
        }
        sink.fence(tid);
      }
    }
  }
};

}  // namespace

const Workload* ssca2_workload() {
  static const Ssca2Workload instance;
  return &instance;
}

}  // namespace mac3d
