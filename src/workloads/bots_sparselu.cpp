// BOTS SparseLU — LU factorization of a sparse blocked matrix (Sec. 5.2).
// The matrix is a grid of dense tiles, a random subset of which is
// populated; lu0/fwd/bdiv run on single tiles and bmod combines three.
// Tile traffic is long unit-stride streams, which is why SparseLU sits
// near the top of the paper's coalescing-efficiency and speedup figures.
#include <vector>

#include "workloads/all.hpp"
#include "workloads/detail.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class SparseLuWorkload final : public Workload {
 public:
  std::string name() const override { return "sparselu"; }
  std::string description() const override {
    return "BOTS SparseLU: blocked sparse LU, streaming dense tiles";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const std::uint32_t grid = 10;        // grid x grid tiles
    const std::uint32_t tile = 12 * 12;   // doubles per tile
    const double density = 0.45;
    const std::uint64_t sweep_budget = params.scaled(1, 1);

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef tiles{
        space.alloc(std::uint64_t{grid} * grid * tile * 8), 8};

    // Deterministic sparsity pattern (diagonal always present).
    Xoshiro256 pattern(params.seed + 5);
    std::vector<bool> present(static_cast<std::size_t>(grid) * grid, false);
    for (std::uint32_t i = 0; i < grid; ++i) {
      for (std::uint32_t j = 0; j < grid; ++j) {
        present[i * grid + j] = i == j || pattern.uniform() < density;
      }
    }
    auto tile_base = [&](std::uint32_t i, std::uint32_t j) {
      return (static_cast<std::uint64_t>(i) * grid + j) * tile;
    };

    // Emit one tile's worth of loads (+ optional store-back), streamed.
    auto stream_tile = [&](ThreadId tid, std::uint32_t i, std::uint32_t j,
                           bool write_back) {
      const std::uint64_t base = tile_base(i, j);
      for (std::uint32_t e = 0; e < tile; ++e) {
        detail::emit_load(sink, tid, tiles, base + e);
        if (write_back) detail::emit_store(sink, tid, tiles, base + e);
        sink.instr(tid, 4);
      }
    };

    for (std::uint64_t sweep = 0; sweep < sweep_budget; ++sweep) {
      for (std::uint32_t k = 0; k < grid; ++k) {
        // lu0(diag) on thread k%T, then fwd/bdiv row+column panels, then
        // the bmod trailing updates distributed round-robin — the BOTS
        // task graph flattened into per-thread work lists.
        const auto diag_tid = static_cast<ThreadId>(k % params.threads);
        stream_tile(diag_tid, k, k, /*write_back=*/true);  // lu0

        std::uint32_t task = 0;
        for (std::uint32_t j = k + 1; j < grid; ++j) {
          if (present[k * grid + j]) {
            stream_tile(static_cast<ThreadId>(task++ % params.threads), k, j,
                        true);  // fwd
          }
          if (present[j * grid + k]) {
            stream_tile(static_cast<ThreadId>(task++ % params.threads), j, k,
                        true);  // bdiv
          }
        }
        for (std::uint32_t i = k + 1; i < grid; ++i) {
          if (!present[i * grid + k]) continue;
          for (std::uint32_t j = k + 1; j < grid; ++j) {
            if (!present[k * grid + j]) continue;
            const auto tid = static_cast<ThreadId>(task++ % params.threads);
            // bmod(i,j) reads tiles (i,k) and (k,j), updates (i,j).
            stream_tile(tid, i, k, false);
            stream_tile(tid, k, j, false);
            stream_tile(tid, i, j, true);
            present[i * grid + j] = true;  // fill-in
          }
        }
        for (std::uint32_t t = 0; t < params.threads; ++t) {
          sink.fence(static_cast<ThreadId>(t));  // panel barrier
        }
      }
    }
  }
};

}  // namespace

const Workload* sparselu_workload() {
  static const SparseLuWorkload instance;
  return &instance;
}

}  // namespace mac3d
