// Scatter/Gather (SG) — the paper's canonical irregular kernel (Sec. 2.1),
// after the SG benchmark's full pattern set: sequential copy, strided
// sweep, random gather (A[i] = B[C[i]]) and random scatter
// (B[C[i]] = A[i]). Iterations are distributed cyclically (OpenMP
// schedule(static,1) — the decomposition the paper's Fig. 2 scenario
// assumes): at any instant the eight threads touch neighbouring elements
// of the A/C streams, which coalesce across threads, while the random
// B accesses are single words with essentially no row reuse.
#include "workloads/all.hpp"
#include "workloads/detail.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class SgWorkload final : public Workload {
 public:
  std::string name() const override { return "sg"; }
  std::string description() const override {
    return "Scatter/Gather: copy, strided, random gather and scatter";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const std::uint64_t n = params.scaled(6144, 64) * params.threads;
    // B is sized well beyond any cache/SPM (the Fig. 1 sweep varies this).
    const std::uint64_t b_elems = params.scaled(4u << 20, 1u << 16);

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef a{space.alloc(n * 8), 8};
    const ArrayRef b{space.alloc(b_elems * 8), 8};
    const ArrayRef c{space.alloc(n * 8), 8};
    const ArrayRef d{space.alloc(4 * n * 8), 8};  // strided sweep target

    // C's content is a pure function of (seed, i) so the gather and
    // scatter phases replay identical indices.
    auto index_of = [&](std::uint64_t i) {
      SplitMix64 h(params.seed ^ (i * 0x9E3779B97F4A7C15ULL));
      return h.next() % b_elems;
    };

    for (std::uint32_t t = 0; t < params.threads; ++t) {
      const auto tid = static_cast<ThreadId>(t);

      // Kernel 1 — sequential copy: A[i] = D[i].
      for (std::uint64_t i = t; i < n; i += params.threads) {
        detail::emit_load(sink, tid, d, i);
        detail::emit_store(sink, tid, a, i);
        sink.instr(tid, 4);
      }
      sink.fence(tid);

      // Kernel 2 — strided sweep: A[i] = D[4*i].
      for (std::uint64_t i = t; i < n; i += params.threads) {
        detail::emit_load(sink, tid, d, 4 * i);
        detail::emit_store(sink, tid, a, i);
        sink.instr(tid, 6);
      }
      sink.fence(tid);

      // Kernel 3 — gather: A[i] = B[C[i]].
      for (std::uint64_t i = t; i < n; i += params.threads) {
        detail::emit_load(sink, tid, c, i);             // C[i]
        detail::emit_load(sink, tid, b, index_of(i));   // B[C[i]]
        detail::emit_store(sink, tid, a, i);            // A[i] =
        sink.instr(tid, 6);
      }
      sink.fence(tid);

      // Kernel 4 — scatter: B[C[i]] = A[i].
      for (std::uint64_t i = t; i < n; i += params.threads) {
        detail::emit_load(sink, tid, c, i);
        detail::emit_load(sink, tid, a, i);
        detail::emit_store(sink, tid, b, index_of(i));
        sink.instr(tid, 6);
      }
      sink.fence(tid);
    }
  }
};

}  // namespace

const Workload* sg_workload() {
  static const SgWorkload instance;
  return &instance;
}

}  // namespace mac3d
