// GAP Connected Components — Shiloach-Vishkin label propagation
// (Sec. 5.2): repeated sweeps over the undirected edge list (sequential
// 8 B reads) hooking labels (random reads + compare-and-swap atomics on
// the component array) until no label changes.
#include <vector>

#include "workloads/all.hpp"
#include "workloads/detail.hpp"
#include "workloads/graph_gen.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class GapCcWorkload final : public Workload {
 public:
  std::string name() const override { return "cc"; }
  std::string description() const override {
    return "GAP CC: Shiloach-Vishkin hooking over an edge list";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const auto scale_log2 = static_cast<std::uint32_t>(
        13 + (params.scale >= 4.0 ? 2 : params.scale >= 2.0 ? 1 : 0));
    const CsrGraph graph = make_uniform_graph(std::uint64_t{1} << scale_log2,
                                              4, params.seed + 4);
    const auto edges = edge_list_of(graph);
    const std::uint64_t vertices = graph.num_vertices;

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef edge_u{space.alloc(edges.size() * 8), 8};
    const ArrayRef edge_v{space.alloc(edges.size() * 8), 8};
    const ArrayRef comp{space.alloc(vertices * 8), 8};

    // Execute SV to know which hooks actually fire each round.
    std::vector<std::uint32_t> label(vertices);
    for (std::uint64_t v = 0; v < vertices; ++v) {
      label[v] = static_cast<std::uint32_t>(v);
    }

    const std::uint64_t max_rounds = params.scaled(2, 1);
    for (std::uint64_t round = 0; round < max_rounds; ++round) {
      bool changed = false;
      for (std::uint32_t t = 0; t < params.threads; ++t) {
        const auto tid = static_cast<ThreadId>(t);
        // Edges are distributed cyclically: the edge-array streams are
        // shared across threads within the ARQ window.
        for (std::uint64_t e = t; e < edges.size(); e += params.threads) {
          const auto [u, v] = edges[e];
          detail::emit_load(sink, tid, edge_u, e);   // edge endpoints:
          detail::emit_load(sink, tid, edge_v, e);   // sequential stream
          detail::emit_load(sink, tid, comp, u);     // random label reads
          detail::emit_load(sink, tid, comp, v);
          sink.instr(tid, 6);
          const std::uint32_t lu = label[u];
          const std::uint32_t lv = label[v];
          if (lu != lv) {
            const std::uint32_t lo = lu < lv ? lu : lv;
            const std::uint32_t hi = lu < lv ? v : u;
            label[hi] = lo;
            sink.atomic(tid, comp.at(hi), 8);  // CAS hook
            changed = true;
          }
        }
        sink.fence(tid);
      }
      // Pointer-jumping compression sweep (sequential read-modify-write).
      for (std::uint32_t t = 0; t < params.threads; ++t) {
        const auto tid = static_cast<ThreadId>(t);
        for (std::uint64_t v = t; v < vertices; v += params.threads) {
          detail::emit_load(sink, tid, comp, v);
          const std::uint32_t l = label[v];
          detail::emit_load(sink, tid, comp, l);  // grandparent chase
          if (label[l] != l) {
            label[v] = label[l];
            detail::emit_store(sink, tid, comp, v);
          }
          sink.instr(tid, 5);
        }
        sink.fence(tid);
      }
      if (!changed) break;
    }
  }
};

}  // namespace

const Workload* gap_cc_workload() {
  static const GapCcWorkload instance;
  return &instance;
}

}  // namespace mac3d
