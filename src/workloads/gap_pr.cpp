// GAP PageRank — pull-style PR (Sec. 5.2): for every vertex, gather the
// scaled ranks of its in-neighbours (random single-word reads into the
// rank array, skew-clustered by R-MAT hubs) while streaming the CSR
// arrays, then store the new rank sequentially.
#include "workloads/all.hpp"
#include "workloads/detail.hpp"
#include "workloads/graph_gen.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class GapPrWorkload final : public Workload {
 public:
  std::string name() const override { return "pr"; }
  std::string description() const override {
    return "GAP PageRank: pull iteration over an R-MAT graph";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const auto scale_log2 = static_cast<std::uint32_t>(
        13 + (params.scale >= 4.0 ? 2 : params.scale >= 2.0 ? 1 : 0));
    const CsrGraph graph = make_rmat_graph(scale_log2, 6, params.seed + 3);
    const std::uint64_t vertices = graph.num_vertices;
    const std::uint64_t edges = graph.num_edges();

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef offsets{space.alloc((vertices + 1) * 8), 8};
    const ArrayRef targets{space.alloc(edges * 4), 4};
    const ArrayRef rank{space.alloc(vertices * 8), 8};
    const ArrayRef rank_next{space.alloc(vertices * 8), 8};
    const ArrayRef out_degree{space.alloc(vertices * 4), 4};

    const std::uint64_t iterations = params.scaled(1, 1);
    for (std::uint32_t t = 0; t < params.threads; ++t) {
      const auto tid = static_cast<ThreadId>(t);
      for (std::uint64_t it = 0; it < iterations; ++it) {
        // Cyclic vertex distribution (GAP uses OpenMP dynamic scheduling):
        // the CSR streams of adjacent vertices share DRAM rows.
        for (std::uint64_t v = t; v < vertices; v += params.threads) {
          detail::emit_load(sink, tid, offsets, v);
          detail::emit_load(sink, tid, offsets, v + 1);
          const std::uint64_t base = graph.offsets[v];
          const std::uint64_t deg = graph.degree(v);
          for (std::uint64_t d = 0; d < deg; ++d) {
            detail::emit_load(sink, tid, targets, base + d);
            const std::uint32_t u = graph.targets[base + d];
            detail::emit_load(sink, tid, rank, u);        // gather rank
            detail::emit_load(sink, tid, out_degree, u);  // normalize
            sink.instr(tid, 4);  // fused divide-accumulate
          }
          detail::emit_store(sink, tid, rank_next, v);
          sink.instr(tid, 6);  // damping, convergence accumulation
        }
        sink.fence(tid);
        // Error-reduction pass: |rank_next - rank| streamed.
        for (std::uint64_t v = t; v < vertices; v += params.threads) {
          detail::emit_load(sink, tid, rank, v);
          detail::emit_load(sink, tid, rank_next, v);
          detail::emit_store(sink, tid, rank, v);  // swap-in
          sink.instr(tid, 5);
        }
        sink.fence(tid);
      }
    }
  }
};

}  // namespace

const Workload* gap_pr_workload() {
  static const GapPrWorkload instance;
  return &instance;
}

}  // namespace mac3d
