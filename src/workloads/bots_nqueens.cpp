// BOTS NQueens — task-parallel backtracking search (Sec. 5.2). The board
// and recursion stack are thread-private and live in the SPM; main memory
// sees the task deque (work stealing), periodic partial-board spills, and
// sequential solution stores. NQueens is compute-bound: its
// mem_access_rate is the lowest of the suite (cf. Fig. 9), but the traffic
// it does generate is store-heavy and streams well.
#include "workloads/all.hpp"
#include "workloads/detail.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class NQueensWorkload final : public Workload {
 public:
  std::string name() const override { return "nqueens"; }
  std::string description() const override {
    return "BOTS NQueens: backtracking search, SPM board, spilled tasks";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const std::uint32_t n = 10;  // board size: fixed problem, scaled budget
    const std::uint64_t node_budget =
        params.scaled(60000, 1024);  // search nodes per thread

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef task_deque{space.alloc((1u << 20) * 8), 8};
    const ArrayRef solutions{space.alloc((1u << 22) * 8), 8};

    for (std::uint32_t t = 0; t < params.threads; ++t) {
      const auto tid = static_cast<ThreadId>(t);
      Xoshiro256 rng(params.seed * 31 + t);
      std::uint64_t solution_slot = t * (1u << 18);
      std::uint64_t deque_slot = t * (1u << 16);

      // Each thread explores a distinct first-row subtree.
      std::uint64_t explored = 0;
      std::uint32_t depth = 1;
      while (explored < node_budget) {
        ++explored;
        // Board update + conflict checks against all placed queens:
        // SPM reads of the column/diagonal masks, plus ALU work.
        sink.spm_load(tid, depth);
        sink.instr(tid, 3 * depth);

        const bool feasible = rng.uniform() < 0.55;
        if (feasible && depth < n) {
          ++depth;
          sink.spm_store(tid, 1);  // push placement
          // Deep tasks get spilled to the shared deque occasionally.
          if ((explored & 63u) == 0) {
            detail::emit_store(sink, tid, task_deque, deque_slot++);
            detail::emit_store(sink, tid, task_deque, deque_slot++);
          }
        } else if (feasible && depth == n) {
          // Complete placement: append the solution vector (sequential).
          for (std::uint32_t q = 0; q < n; ++q) {
            detail::emit_store(sink, tid, solutions, solution_slot++);
          }
          sink.spm_store(tid, 1);
          depth = depth > 2
                      ? depth - static_cast<std::uint32_t>(rng.below(2)) - 1
                      : 1;
        } else {
          // Backtrack; occasionally steal a spilled task.
          sink.spm_store(tid, 1);
          depth = depth > 2 ? depth - 1 : 1;
          if ((explored & 255u) == 0 && deque_slot > 2) {
            detail::emit_load(sink, tid, task_deque, deque_slot - 1);
            detail::emit_load(sink, tid, task_deque, deque_slot - 2);
          }
        }
      }
      sink.fence(tid);
    }
  }
};

}  // namespace

const Workload* nqueens_workload() {
  static const NQueensWorkload instance;
  return &instance;
}

}  // namespace mac3d
