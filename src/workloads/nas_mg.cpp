// NAS MG — multigrid V-cycle (Sec. 5.2). One V-cycle over a 3D grid:
// 7-point smoothing and residual sweeps at each level, restriction down
// and prolongation back up. Sweeps are plane-ordered unit-stride streams
// with ±1/±n/±n^2 neighbours, so consecutive points hammer the same DRAM
// rows — MG is the paper's best coalescer (> 60% efficiency, > 70%
// memory-system speedup).
#include <cmath>
#include <vector>

#include "workloads/all.hpp"
#include "workloads/detail.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class MgWorkload final : public Workload {
 public:
  std::string name() const override { return "mg"; }
  std::string description() const override {
    return "NAS MG: one multigrid V-cycle, 7-pt sweeps on 3D grids";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const auto base_edge = static_cast<std::uint64_t>(
        24.0 * std::cbrt(params.scale));
    const std::uint64_t edge = base_edge < 8 ? 8 : base_edge;
    const std::uint32_t levels = 3;

    AddressSpace space(params.config.hmc_capacity);
    std::vector<ArrayRef> u(levels);  // solution per level
    std::vector<ArrayRef> r(levels);  // residual per level
    for (std::uint32_t l = 0; l < levels; ++l) {
      const std::uint64_t e = edge >> l;
      u[l] = ArrayRef{space.alloc(e * e * e * 8), 8};
      r[l] = ArrayRef{space.alloc(e * e * e * 8), 8};
    }

    // One 7-point sweep reading `in`, writing `out`, at level edge `e`.
    auto sweep = [&](const ArrayRef& in, const ArrayRef& out,
                     std::uint64_t e) {
      const std::uint64_t points = e * e * e;
      for (std::uint32_t t = 0; t < params.threads; ++t) {
        const auto tid = static_cast<ThreadId>(t);
        // Cyclic point distribution: all threads sweep the same plane
        // region together, sharing DRAM rows (schedule(static,1)).
        for (std::uint64_t p = t; p < points; p += params.threads) {
          const std::uint64_t k = p % e;
          const std::uint64_t j = (p / e) % e;
          const std::uint64_t i = p / (e * e);
          detail::emit_load(sink, tid, in, p);
          if (k > 0) detail::emit_load(sink, tid, in, p - 1);
          if (k + 1 < e) detail::emit_load(sink, tid, in, p + 1);
          if (j > 0) detail::emit_load(sink, tid, in, p - e);
          if (j + 1 < e) detail::emit_load(sink, tid, in, p + e);
          if (i > 0) detail::emit_load(sink, tid, in, p - e * e);
          if (i + 1 < e) detail::emit_load(sink, tid, in, p + e * e);
          detail::emit_store(sink, tid, out, p);
          sink.instr(tid, 14);
        }
        sink.fence(tid);
      }
    };

    // Restriction: each coarse point averages 8 fine points (strided
    // reads of the fine grid, sequential coarse store).
    auto restrict_level = [&](const ArrayRef& fine, const ArrayRef& coarse,
                              std::uint64_t fine_edge) {
      const std::uint64_t ce = fine_edge / 2;
      const std::uint64_t points = ce * ce * ce;
      for (std::uint32_t t = 0; t < params.threads; ++t) {
        const auto tid = static_cast<ThreadId>(t);
        for (std::uint64_t p = t; p < points; p += params.threads) {
          const std::uint64_t k = (p % ce) * 2;
          const std::uint64_t j = ((p / ce) % ce) * 2;
          const std::uint64_t i = (p / (ce * ce)) * 2;
          for (std::uint64_t d = 0; d < 8; ++d) {
            const std::uint64_t fp =
                (i + (d >> 2)) * fine_edge * fine_edge +
                (j + ((d >> 1) & 1)) * fine_edge + (k + (d & 1));
            detail::emit_load(sink, tid, fine, fp);
          }
          detail::emit_store(sink, tid, coarse, p);
          sink.instr(tid, 15);
        }
        sink.fence(tid);
      }
    };

    // Descend: smooth + residual + restrict at each level.
    for (std::uint32_t l = 0; l + 1 < levels; ++l) {
      const std::uint64_t e = edge >> l;
      sweep(u[l], r[l], e);                 // smooth into residual buffer
      restrict_level(r[l], r[l + 1], e);    // restrict residual
    }
    // Coarsest solve: a few smoothing sweeps.
    sweep(u[levels - 1], r[levels - 1], edge >> (levels - 1));
    // Ascend: prolongate (coarse loads, fine stores) + post-smooth.
    for (std::uint32_t l = levels - 1; l > 0; --l) {
      restrict_level(u[l - 1], u[l], edge >> (l - 1));  // symmetric traffic
      sweep(u[l - 1], u[l - 1], edge >> (l - 1));
    }
  }
};

}  // namespace

const Workload* mg_workload() {
  static const MgWorkload instance;
  return &instance;
}

}  // namespace mac3d
