#include "workloads/all.hpp"
#include "workloads/workload.hpp"

namespace mac3d {

const std::vector<const Workload*>& workload_registry() {
  static const std::vector<const Workload*> registry = {
      mg_workload(),       grappolo_workload(), sg_workload(),
      sp_workload(),       sparselu_workload(), hpcg_workload(),
      ssca2_workload(),    gap_bfs_workload(),  gap_pr_workload(),
      gap_cc_workload(),   nqueens_workload(),  sort_workload(),
  };
  return registry;
}

const Workload* find_workload(const std::string& name) {
  for (const Workload* workload : workload_registry()) {
    if (workload->name() == name) return workload;
  }
  return nullptr;
}

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  names.reserve(workload_registry().size());
  for (const Workload* workload : workload_registry()) {
    names.push_back(workload->name());
  }
  return names;
}

}  // namespace mac3d
