// Workload framework: each of the paper's twelve benchmarks (Sec. 5.2) is
// implemented as a native kernel that executes its real algorithm on
// synthetic data and records the memory operations that would reach the
// MAC — the reproduction's substitute for the paper's RISC-V Spike tracer
// (see DESIGN.md §4).
//
// Conventions shared by all workloads:
//  * work is partitioned over `params.threads` logical threads; thread t's
//    operations are emitted in program order into the TraceSink;
//  * data structures live in the node's 3D-stacked memory address space
//    (AddressSpace bump allocator); small thread-private structures live
//    in the per-core SPM and are only counted (spm_load/spm_store);
//  * `params.scale` scales dataset sizes; seeds make runs bit-identical.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/rng.hpp"
#include "trace/address_space.hpp"
#include "trace/trace.hpp"

namespace mac3d {

struct WorkloadParams {
  std::uint32_t threads = 8;
  double scale = 1.0;        ///< dataset scale factor
  std::uint64_t seed = 42;
  SimConfig config;          ///< geometry (capacity, SPM, nodes)

  /// Scaled element count helper (at least `min_value`).
  [[nodiscard]] std::uint64_t scaled(std::uint64_t base,
                                     std::uint64_t min_value = 1) const {
    const auto value =
        static_cast<std::uint64_t>(static_cast<double>(base) * scale);
    return value < min_value ? min_value : value;
  }
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Short lowercase identifier, e.g. "sg", "mg".
  [[nodiscard]] virtual std::string name() const = 0;
  /// One-line description (suite + kernel).
  [[nodiscard]] virtual std::string description() const = 0;
  /// Emit the full trace for `params` into `sink`.
  virtual void generate(TraceSink& sink, const WorkloadParams& params) const = 0;

  /// Convenience: generate into a fresh MemoryTrace.
  [[nodiscard]] MemoryTrace trace(const WorkloadParams& params) const {
    MemoryTrace out(params.threads);
    generate(out, params);
    return out;
  }
};

/// The twelve benchmarks of the paper's evaluation, in figure order.
[[nodiscard]] const std::vector<const Workload*>& workload_registry();

/// Look up by name(); returns nullptr when unknown.
[[nodiscard]] const Workload* find_workload(const std::string& name);

/// Names in registry order (for harness/report headers).
[[nodiscard]] std::vector<std::string> workload_names();

}  // namespace mac3d
