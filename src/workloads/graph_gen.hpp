// Deterministic synthetic graph generation (R-MAT and uniform) plus a CSR
// representation — the substrate for the SSCA2, Grappolo and GAP workloads.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace mac3d {

/// Compressed sparse row graph over vertices [0, n).
struct CsrGraph {
  std::uint64_t num_vertices = 0;
  std::vector<std::uint64_t> offsets;   ///< size n+1
  std::vector<std::uint32_t> targets;   ///< size num_edges

  [[nodiscard]] std::uint64_t num_edges() const noexcept {
    return targets.size();
  }
  [[nodiscard]] std::uint64_t degree(std::uint64_t v) const noexcept {
    return offsets[v + 1] - offsets[v];
  }
};

/// Kronecker/R-MAT edges (a=0.57, b=0.19, c=0.19, d=0.05 — the Graph500 /
/// SSCA2 parameterization), deduplicated per source by construction order.
[[nodiscard]] CsrGraph make_rmat_graph(std::uint32_t scale_log2,
                                       std::uint32_t avg_degree,
                                       std::uint64_t seed);

/// Erdos-Renyi-style uniform random graph.
[[nodiscard]] CsrGraph make_uniform_graph(std::uint64_t vertices,
                                          std::uint32_t avg_degree,
                                          std::uint64_t seed);

/// Undirected edge list view (u < v) for label-propagation kernels.
[[nodiscard]] std::vector<std::pair<std::uint32_t, std::uint32_t>>
edge_list_of(const CsrGraph& graph);

}  // namespace mac3d
