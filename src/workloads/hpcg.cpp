// HPCG — High Performance Conjugate Gradient (Sec. 5.2). One CG iteration
// on the 27-point stencil matrix of an n^3 grid in CSR-like layout:
//   SpMV y = A*p   (sequential index/value streams + near-diagonal gathers)
//   two dot products and three AXPY updates (pure streaming)
// The gather pattern touches up to nine distinct DRAM rows per matrix row
// (three consecutive points per stencil line), giving the moderate
// coalescing the paper reports for HPCG.
#include <array>
#include <cmath>

#include "workloads/all.hpp"
#include "workloads/detail.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class HpcgWorkload final : public Workload {
 public:
  std::string name() const override { return "hpcg"; }
  std::string description() const override {
    return "HPCG: one CG iteration, 27-pt stencil SpMV + BLAS1 kernels";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    // Grid edge scales with cbrt(scale) so the row count scales linearly.
    const auto n = static_cast<std::uint64_t>(
        std::cbrt(params.scale) * 16.0);
    const std::uint64_t edge = n < 8 ? 8 : n;
    const std::uint64_t rows = edge * edge * edge;
    const std::uint64_t nnz_per_row = 27;

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef col_idx{space.alloc(rows * nnz_per_row * 4), 4};
    const ArrayRef values{space.alloc(rows * nnz_per_row * 8), 8};
    const ArrayRef x{space.alloc(rows * 8), 8};   // p vector
    const ArrayRef y{space.alloc(rows * 8), 8};   // Ap
    const ArrayRef r{space.alloc(rows * 8), 8};   // residual
    const ArrayRef z{space.alloc(rows * 8), 8};   // solution

    for (std::uint32_t t = 0; t < params.threads; ++t) {
      const auto tid = static_cast<ThreadId>(t);
      // Rows are distributed cyclically (schedule(static,1)): neighbouring
      // threads work on neighbouring grid points, sharing DRAM rows.
      // --- SpMV: y = A * x ------------------------------------------------
      for (std::uint64_t row = t; row < rows; row += params.threads) {
        const std::uint64_t i = row / (edge * edge);
        const std::uint64_t j = (row / edge) % edge;
        const std::uint64_t k = row % edge;
        std::uint64_t nz = 0;
        for (int di = -1; di <= 1; ++di) {
          for (int dj = -1; dj <= 1; ++dj) {
            // One stencil line: three consecutive grid points (dk -1..1)
            // share a DRAM row in x with high probability.
            for (int dk = -1; dk <= 1; ++dk) {
              const std::int64_t ii = static_cast<std::int64_t>(i) + di;
              const std::int64_t jj = static_cast<std::int64_t>(j) + dj;
              const std::int64_t kk = static_cast<std::int64_t>(k) + dk;
              if (ii < 0 || jj < 0 || kk < 0 ||
                  ii >= static_cast<std::int64_t>(edge) ||
                  jj >= static_cast<std::int64_t>(edge) ||
                  kk >= static_cast<std::int64_t>(edge)) {
                continue;
              }
              const std::uint64_t col =
                  (static_cast<std::uint64_t>(ii) * edge +
                   static_cast<std::uint64_t>(jj)) *
                      edge +
                  static_cast<std::uint64_t>(kk);
              detail::emit_load(sink, tid, col_idx,
                                row * nnz_per_row + nz);  // column index
              detail::emit_load(sink, tid, values,
                                row * nnz_per_row + nz);  // matrix value
              detail::emit_load(sink, tid, x, col);       // gather x[col]
              sink.instr(tid, 3);                         // fma + loop
              ++nz;
            }
          }
        }
        detail::emit_store(sink, tid, y, row);
      }
      sink.fence(tid);

      // --- dot products: (r, r) and (x, y) --------------------------------
      for (std::uint64_t row = t; row < rows; row += params.threads) {
        detail::emit_load(sink, tid, r, row);
        detail::emit_load(sink, tid, x, row);
        detail::emit_load(sink, tid, y, row);
        sink.instr(tid, 6);
      }
      sink.fence(tid);

      // --- AXPYs: z += a*x; r -= a*y; x = r + b*x --------------------------
      for (std::uint64_t row = t; row < rows; row += params.threads) {
        detail::emit_load(sink, tid, z, row);
        detail::emit_store(sink, tid, z, row);
        detail::emit_load(sink, tid, r, row);
        detail::emit_store(sink, tid, r, row);
        detail::emit_store(sink, tid, x, row);
        sink.instr(tid, 9);
      }
      sink.fence(tid);
    }
  }
};

}  // namespace

const Workload* hpcg_workload() {
  static const HpcgWorkload instance;
  return &instance;
}

}  // namespace mac3d
