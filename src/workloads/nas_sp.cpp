// NAS SP — scalar pentadiagonal solver (Sec. 5.2). Each iteration runs
// ADI line solves along the three axes of an n^3 grid: the x-sweep is
// unit-stride (coalesces fully), the y-sweep strides by n and the z-sweep
// by n^2 (each point of those sweeps touching a different DRAM row until
// the next line wraps around). The axis mix puts SP in the upper-middle
// of the paper's coalescing range (> 60% at 8 threads).
#include <cmath>

#include "workloads/all.hpp"
#include "workloads/detail.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class SpWorkload final : public Workload {
 public:
  std::string name() const override { return "sp"; }
  std::string description() const override {
    return "NAS SP: ADI pentadiagonal line solves along x, y, z";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const auto base_edge =
        static_cast<std::uint64_t>(20.0 * std::cbrt(params.scale));
    const std::uint64_t e = base_edge < 8 ? 8 : base_edge;
    const std::uint64_t points = e * e * e;

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef rhs{space.alloc(points * 8), 8};
    const ArrayRef lhs{space.alloc(points * 5 * 8), 8};  // 5 diagonals
    const ArrayRef u{space.alloc(points * 8), 8};

    // Thomas-style forward elimination + back substitution along one line
    // of `len` points with stride `stride`, starting at `base`.
    auto line_solve = [&](ThreadId tid, std::uint64_t base,
                          std::uint64_t stride, std::uint64_t len) {
      for (std::uint64_t s = 0; s < len; ++s) {
        const std::uint64_t p = base + s * stride;
        detail::emit_load(sink, tid, lhs, p * 5);      // five coefficients:
        detail::emit_load(sink, tid, lhs, p * 5 + 2);  // (two representative
        detail::emit_load(sink, tid, lhs, p * 5 + 4);  //  reads per band)
        detail::emit_load(sink, tid, rhs, p);
        detail::emit_store(sink, tid, rhs, p);         // eliminate
        sink.instr(tid, 10);
      }
      for (std::uint64_t s = len; s-- > 0;) {
        const std::uint64_t p = base + s * stride;
        detail::emit_load(sink, tid, rhs, p);
        detail::emit_store(sink, tid, u, p);           // back-substitute
        sink.instr(tid, 7);
      }
    };

    const std::uint64_t iterations = params.scaled(1, 1);
    for (std::uint64_t it = 0; it < iterations; ++it) {
      // x-solve: lines are contiguous runs of e points.
      for (std::uint32_t t = 0; t < params.threads; ++t) {
        const auto tid = static_cast<ThreadId>(t);
        for (std::uint64_t line = t; line < e * e; line += params.threads) {
          line_solve(tid, line * e, 1, e);
        }
        sink.fence(tid);
      }
      // y-solve: stride e.
      for (std::uint32_t t = 0; t < params.threads; ++t) {
        const auto tid = static_cast<ThreadId>(t);
        for (std::uint64_t line = t; line < e * e; line += params.threads) {
          const std::uint64_t plane = line / e;
          const std::uint64_t col = line % e;
          line_solve(tid, plane * e * e + col, e, e);
        }
        sink.fence(tid);
      }
      // z-solve: stride e^2.
      for (std::uint32_t t = 0; t < params.threads; ++t) {
        const auto tid = static_cast<ThreadId>(t);
        for (std::uint64_t line = t; line < e * e; line += params.threads) {
          line_solve(tid, line, e * e, e);
        }
        sink.fence(tid);
      }
    }
  }
};

}  // namespace

const Workload* sp_workload() {
  static const SpWorkload instance;
  return &instance;
}

}  // namespace mac3d
