#include "workloads/graph_gen.hpp"

#include <algorithm>
#include <stdexcept>

namespace mac3d {
namespace {

CsrGraph build_csr(std::uint64_t vertices,
                   std::vector<std::pair<std::uint32_t, std::uint32_t>>&
                       edges) {
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());

  CsrGraph graph;
  graph.num_vertices = vertices;
  graph.offsets.assign(vertices + 1, 0);
  for (const auto& [u, v] : edges) {
    (void)v;
    ++graph.offsets[u + 1];
  }
  for (std::uint64_t i = 0; i < vertices; ++i) {
    graph.offsets[i + 1] += graph.offsets[i];
  }
  graph.targets.reserve(edges.size());
  for (const auto& [u, v] : edges) {
    (void)u;
    graph.targets.push_back(v);
  }
  return graph;
}

}  // namespace

CsrGraph make_rmat_graph(std::uint32_t scale_log2, std::uint32_t avg_degree,
                         std::uint64_t seed) {
  if (scale_log2 == 0 || scale_log2 > 30) {
    throw std::invalid_argument("make_rmat_graph: scale out of range");
  }
  const std::uint64_t vertices = std::uint64_t{1} << scale_log2;
  const std::uint64_t edges = vertices * avg_degree;
  constexpr double kA = 0.57, kB = 0.19, kC = 0.19;  // d = 0.05

  Xoshiro256 rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> list;
  list.reserve(edges);
  for (std::uint64_t e = 0; e < edges; ++e) {
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    for (std::uint32_t bit = 0; bit < scale_log2; ++bit) {
      const double r = rng.uniform();
      u <<= 1;
      v <<= 1;
      if (r < kA) {
        // upper-left quadrant: no bits set
      } else if (r < kA + kB) {
        v |= 1;
      } else if (r < kA + kB + kC) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u == v) continue;  // drop self loops
    list.emplace_back(static_cast<std::uint32_t>(u),
                      static_cast<std::uint32_t>(v));
    list.emplace_back(static_cast<std::uint32_t>(v),
                      static_cast<std::uint32_t>(u));
  }
  return build_csr(vertices, list);
}

CsrGraph make_uniform_graph(std::uint64_t vertices, std::uint32_t avg_degree,
                            std::uint64_t seed) {
  if (vertices < 2) {
    throw std::invalid_argument("make_uniform_graph: need >= 2 vertices");
  }
  Xoshiro256 rng(seed);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> list;
  const std::uint64_t edges = vertices * avg_degree;
  list.reserve(edges * 2);
  for (std::uint64_t e = 0; e < edges; ++e) {
    const auto u = static_cast<std::uint32_t>(rng.below(vertices));
    const auto v = static_cast<std::uint32_t>(rng.below(vertices));
    if (u == v) continue;
    list.emplace_back(u, v);
    list.emplace_back(v, u);
  }
  return build_csr(vertices, list);
}

std::vector<std::pair<std::uint32_t, std::uint32_t>> edge_list_of(
    const CsrGraph& graph) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> edges;
  edges.reserve(graph.num_edges() / 2);
  for (std::uint64_t u = 0; u < graph.num_vertices; ++u) {
    for (std::uint64_t i = graph.offsets[u]; i < graph.offsets[u + 1]; ++i) {
      const std::uint32_t v = graph.targets[i];
      if (u < v) edges.emplace_back(static_cast<std::uint32_t>(u), v);
    }
  }
  return edges;
}

}  // namespace mac3d
