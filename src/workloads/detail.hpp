// Shared helpers for workload kernels.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "trace/trace.hpp"

namespace mac3d::detail {

/// Typed view of an array laid out in the simulated address space.
struct ArrayRef {
  Address base = 0;
  std::uint32_t elem_bytes = 8;

  [[nodiscard]] Address at(std::uint64_t i) const noexcept {
    return base + i * elem_bytes;
  }
  [[nodiscard]] std::uint8_t size() const noexcept {
    return static_cast<std::uint8_t>(elem_bytes);
  }
};

/// Contiguous [begin, end) share of `total` items for thread `tid` of `nt`.
struct Share {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;

  [[nodiscard]] std::uint64_t count() const noexcept { return end - begin; }
};

[[nodiscard]] inline Share share_of(std::uint64_t total, std::uint32_t tid,
                                    std::uint32_t threads) noexcept {
  const std::uint64_t chunk = total / threads;
  const std::uint64_t extra = total % threads;
  Share s;
  s.begin = tid * chunk + (tid < extra ? tid : extra);
  s.end = s.begin + chunk + (tid < extra ? 1 : 0);
  return s;
}

inline void emit_load(TraceSink& sink, ThreadId tid, const ArrayRef& array,
                      std::uint64_t i) {
  sink.load(tid, array.at(i), array.size());
}

inline void emit_store(TraceSink& sink, ThreadId tid, const ArrayRef& array,
                       std::uint64_t i) {
  sink.store(tid, array.at(i), array.size());
}

}  // namespace mac3d::detail
