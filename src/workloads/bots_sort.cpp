// BOTS Sort — task-parallel mergesort (Sec. 5.2). Each thread first sorts
// its chunk in the scratchpad (cache-oblivious base case: pure SPM + ALU
// work), then the chunks are merged in two parallel passes over main
// memory: long unit-stride reads of two runs and a unit-stride store of
// the merged run. Almost every access is sequential, so Sort coalesces
// close to the FLIT-map limit.
#include "workloads/all.hpp"
#include "workloads/detail.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class SortWorkload final : public Workload {
 public:
  std::string name() const override { return "sort"; }
  std::string description() const override {
    return "BOTS Sort: parallel mergesort, SPM base case + merge passes";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const std::uint64_t per_thread = params.scaled(20000, 512);
    const std::uint64_t n = per_thread * params.threads;

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef data{space.alloc(n * 8), 8};
    const ArrayRef scratch{space.alloc(n * 8), 8};

    for (std::uint32_t t = 0; t < params.threads; ++t) {
      const auto tid = static_cast<ThreadId>(t);
      Xoshiro256 rng(params.seed * 131 + t);
      const std::uint64_t begin = t * per_thread;

      // Base case: load the chunk, sort it in the SPM, store it back.
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        detail::emit_load(sink, tid, data, begin + i);
      }
      // ~n log n comparisons entirely inside the scratchpad.
      const auto log_n = static_cast<std::uint64_t>(15);
      sink.spm_load(tid, per_thread * log_n / 4);
      sink.spm_store(tid, per_thread * log_n / 4);
      sink.instr(tid, per_thread * log_n / 2);
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        detail::emit_store(sink, tid, data, begin + i);
      }
      sink.fence(tid);

      // Merge pass 1: merge this chunk with its partner's into scratch.
      const std::uint64_t partner =
          (t ^ 1u) < params.threads ? (t ^ 1u) : t;
      std::uint64_t left = begin;
      std::uint64_t right = partner * per_thread;
      std::uint64_t out = begin;
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        // Data-dependent advance, but both runs stream sequentially.
        if (rng.uniform() < 0.5) {
          detail::emit_load(sink, tid, data, left++);
        } else {
          detail::emit_load(sink, tid, data, right++);
        }
        detail::emit_store(sink, tid, scratch, out++);
        sink.instr(tid, 6);  // compare + select + bounds
      }
      sink.fence(tid);

      // Merge pass 2: copy back with a strided partner (tree level 2).
      const std::uint64_t partner2 =
          (t ^ 2u) < params.threads ? (t ^ 2u) : t;
      left = begin;
      right = partner2 * per_thread;
      out = begin;
      for (std::uint64_t i = 0; i < per_thread; ++i) {
        if (rng.uniform() < 0.5) {
          detail::emit_load(sink, tid, scratch, left++);
        } else {
          detail::emit_load(sink, tid, scratch, right++);
        }
        detail::emit_store(sink, tid, data, out++);
        sink.instr(tid, 6);
      }
      sink.fence(tid);
    }
  }
};

}  // namespace

const Workload* sort_workload() {
  static const SortWorkload instance;
  return &instance;
}

}  // namespace mac3d
