// Grappolo — parallel Louvain community detection (Sec. 5.2, PNNL's graph
// clustering code). One Louvain sweep: for every vertex, read its
// adjacency (sequential CSR), gather the neighbours' community labels
// (random), then publish the best community with an atomic update. The mix
// of long sequential runs (CSR arrays) and clustered label gathers gives
// Grappolo the high coalescing efficiency the paper reports (> 60%).
#include "workloads/all.hpp"
#include "workloads/detail.hpp"
#include "workloads/graph_gen.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class GrappoloWorkload final : public Workload {
 public:
  std::string name() const override { return "grappolo"; }
  std::string description() const override {
    return "Grappolo: one Louvain sweep (gather labels, atomic updates)";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const auto scale_log2 = static_cast<std::uint32_t>(
        13 + (params.scale >= 4.0 ? 2 : params.scale >= 2.0 ? 1 : 0));
    // Louvain inputs are clustered: R-MAT's skew concentrates neighbours,
    // so the label gathers revisit hot DRAM rows.
    const CsrGraph graph = make_rmat_graph(scale_log2, 8, params.seed + 1);
    const std::uint64_t vertices = graph.num_vertices;
    const std::uint64_t edges = graph.num_edges();

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef offsets{space.alloc((vertices + 1) * 8), 8};
    const ArrayRef targets{space.alloc(edges * 4), 4};
    const ArrayRef community{space.alloc(vertices * 8), 8};
    const ArrayRef comm_weight{space.alloc(vertices * 8), 8};

    const std::uint64_t sweeps = params.scaled(1, 1);
    for (std::uint32_t t = 0; t < params.threads; ++t) {
      const auto tid = static_cast<ThreadId>(t);
      Xoshiro256 rng(params.seed * 6151 + t);
      for (std::uint64_t sweep = 0; sweep < sweeps; ++sweep) {
        // Grappolo colours vertices and processes them with dynamic
        // scheduling; cyclic distribution reproduces the interleaving.
        for (std::uint64_t v = t; v < vertices; v += params.threads) {
          detail::emit_load(sink, tid, offsets, v);
          detail::emit_load(sink, tid, offsets, v + 1);
          const std::uint64_t base = graph.offsets[v];
          const std::uint64_t deg = graph.degree(v);
          // The per-vertex community map is thread-private and small: it
          // lives in the SPM (one lookup+insert per neighbour).
          sink.spm_load(tid, deg);
          for (std::uint64_t d = 0; d < deg; ++d) {
            detail::emit_load(sink, tid, targets, base + d);
            const std::uint32_t u = graph.targets[base + d];
            detail::emit_load(sink, tid, community, u);  // gather label
            sink.instr(tid, 6);                          // modularity gain
          }
          // Publish: atomically move v's weight between communities.
          if (deg > 0 && (rng.next() & 1u) == 0) {
            const std::uint32_t u = graph.targets[base + rng.below(deg)];
            sink.atomic(tid, comm_weight.at(u), 8);
            sink.atomic(tid, comm_weight.at(v), 8);
            sink.store(tid, community.at(v), 8);
          }
          sink.instr(tid, 8);
        }
        sink.fence(tid);  // sweep barrier
      }
    }
  }
};

}  // namespace

const Workload* grappolo_workload() {
  static const GrappoloWorkload instance;
  return &instance;
}

}  // namespace mac3d
