// GAP BFS — top-down breadth-first search with a shared frontier queue
// (Beamer's GAP benchmark suite, Sec. 5.2). Per frontier vertex: read its
// CSR adjacency run (sequential), probe parent[] for each neighbour
// (random), claim unvisited neighbours and append them to the next
// frontier (sequential stores).
#include <vector>

#include "workloads/all.hpp"
#include "workloads/detail.hpp"
#include "workloads/graph_gen.hpp"

namespace mac3d {
namespace {

using detail::ArrayRef;

class GapBfsWorkload final : public Workload {
 public:
  std::string name() const override { return "bfs"; }
  std::string description() const override {
    return "GAP BFS: top-down frontier traversal of an R-MAT graph";
  }

  void generate(TraceSink& sink, const WorkloadParams& params) const override {
    const auto scale_log2 = static_cast<std::uint32_t>(
        13 + (params.scale >= 4.0 ? 2 : params.scale >= 2.0 ? 1 : 0));
    const CsrGraph graph = make_rmat_graph(scale_log2, 6, params.seed + 2);
    const std::uint64_t vertices = graph.num_vertices;
    const std::uint64_t edges = graph.num_edges();

    AddressSpace space(params.config.hmc_capacity);
    const ArrayRef offsets{space.alloc((vertices + 1) * 8), 8};
    const ArrayRef targets{space.alloc(edges * 4), 4};
    const ArrayRef parent{space.alloc(vertices * 8), 8};
    const ArrayRef frontier{space.alloc(vertices * 8), 8};

    // Run the actual BFS to know who claims whom; emit the trace as the
    // parallel sweep over each level's frontier would execute it.
    std::vector<std::int64_t> par(vertices, -1);
    std::vector<std::uint32_t> current;
    std::vector<std::uint32_t> next;
    const std::uint32_t root = 1;  // deterministic, R-MAT hubs are low ids
    par[root] = root;
    current.push_back(root);

    std::vector<std::uint64_t> next_slot(params.threads, 0);
    while (!current.empty()) {
      next.clear();
      for (std::size_t f = 0; f < current.size(); ++f) {
        // The frontier is processed in parallel, chunked round-robin.
        const auto tid =
            static_cast<ThreadId>(f % params.threads);
        const std::uint32_t v = current[f];
        detail::emit_load(sink, tid, frontier, f);      // dequeue
        detail::emit_load(sink, tid, offsets, v);
        detail::emit_load(sink, tid, offsets, v + 1);
        const std::uint64_t base = graph.offsets[v];
        const std::uint64_t deg = graph.degree(v);
        for (std::uint64_t d = 0; d < deg; ++d) {
          detail::emit_load(sink, tid, targets, base + d);
          const std::uint32_t u = graph.targets[base + d];
          detail::emit_load(sink, tid, parent, u);       // visited probe
          sink.instr(tid, 5);
          if (par[u] == -1) {
            par[u] = v;
            detail::emit_store(sink, tid, parent, u);    // claim
            detail::emit_store(sink, tid, frontier,
                               next_slot[tid]++ % vertices);  // enqueue
            next.push_back(u);
          }
        }
      }
      for (std::uint32_t t = 0; t < params.threads; ++t) {
        sink.fence(static_cast<ThreadId>(t));  // level barrier
      }
      current.swap(next);
    }
  }
};

}  // namespace

const Workload* gap_bfs_workload() {
  static const GapBfsWorkload instance;
  return &instance;
}

}  // namespace mac3d
