// Factory declarations for the twelve evaluation workloads (paper Sec. 5.2,
// in the order the figures list them). Each returns a process-lifetime
// singleton.
#pragma once

#include "workloads/workload.hpp"

namespace mac3d {

const Workload* sg_workload();         // Scatter/Gather
const Workload* hpcg_workload();       // High Performance Conjugate Gradient
const Workload* ssca2_workload();      // HPCS SSCA#2 graph analysis
const Workload* grappolo_workload();   // Louvain community detection
const Workload* gap_bfs_workload();    // GAP breadth-first search
const Workload* gap_pr_workload();     // GAP PageRank
const Workload* gap_cc_workload();     // GAP connected components
const Workload* nqueens_workload();    // BOTS NQueens
const Workload* sparselu_workload();   // BOTS SparseLU
const Workload* sort_workload();       // BOTS mergesort
const Workload* mg_workload();         // NAS MG (multigrid)
const Workload* sp_workload();         // NAS SP (scalar pentadiagonal)

}  // namespace mac3d
