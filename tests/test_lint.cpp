// The lint subsystem (src/lint/, docs/STATIC_ANALYSIS.md):
//  * every catalog rule fires on its violating fixture and stays quiet
//    on the conforming counterpart (tests/lint_fixtures/);
//  * the baseline round-trips: a full baseline suppresses everything, a
//    one-short baseline leaves exactly one new finding, stale entries
//    surface as notes;
//  * the SARIF emitter produces a well-formed 2.1.0 document whose rule
//    and result counts match the catalog and report;
//  * the CLI entry point returns the documented exit codes (0 clean,
//    1 new findings, 2 usage/IO/parse trouble);
//  * the metric-pattern matcher and guard-aware lexer behave at the
//    edges the rules rely on.
#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <set>
#include <string>

#include "lint/json_doc.hpp"
#include "lint/lexer.hpp"
#include "lint/lint.hpp"
#include "lint/rules.hpp"

namespace mac3d::lint {
namespace {

const std::string kViolating =
    std::string(MAC3D_LINT_FIXTURES_DIR) + "/violating";
const std::string kConforming =
    std::string(MAC3D_LINT_FIXTURES_DIR) + "/conforming";

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << body;
  return path;
}

/// A baseline covering every finding in `report`, built via the
/// regenerate path (baseline_json -> load_baseline round trip).
Baseline full_baseline(const LintReport& report, const std::string& name) {
  const std::string path = write_temp(name, baseline_json(report));
  Baseline baseline;
  std::string error;
  EXPECT_TRUE(load_baseline(path, baseline, error)) << error;
  return baseline;
}

TEST(LintCatalog, HasAllThreeFamiliesInStableOrder) {
  const auto& catalog = rule_catalog();
  ASSERT_GE(catalog.size(), 10u);
  std::map<std::string, int> families;
  for (std::size_t i = 0; i < catalog.size(); ++i) {
    if (i > 0) {
      EXPECT_LT(catalog[i - 1].id, catalog[i].id);
    }
    ++families[std::string(catalog[i].family)];
    EXPECT_EQ(find_rule(catalog[i].id), &catalog[i]);
  }
  EXPECT_EQ(families.size(), 3u);
  EXPECT_GE(families["DET"], 5);
  EXPECT_GE(families["OBS"], 4);
  EXPECT_GE(families["SYNC"], 3);
  EXPECT_EQ(find_rule("no.such_rule"), nullptr);
}

TEST(LintRules, EveryRuleFiresOnTheViolatingTree) {
  const LintReport report = run_rules(kViolating);
  EXPECT_TRUE(report.errors.empty());
  std::set<std::string> fired;
  for (const Finding& finding : report.findings) {
    EXPECT_NE(find_rule(finding.rule), nullptr) << finding.rule;
    fired.insert(finding.rule);
  }
  for (const RuleInfo& rule : rule_catalog()) {
    EXPECT_EQ(fired.count(std::string(rule.id)), 1u)
        << "rule never fired: " << rule.id;
  }
}

TEST(LintRules, ConformingTreeIsCompletelyClean) {
  const LintReport report = run_rules(kConforming);
  EXPECT_TRUE(report.errors.empty());
  EXPECT_EQ(report.findings.size(), 0u);
  EXPECT_EQ(report.new_findings, 0u);
  EXPECT_GT(report.files_scanned, 0u);
}

TEST(LintRules, FindingsAreSortedAndDeterministic) {
  const LintReport first = run_rules(kViolating);
  const LintReport second = run_rules(kViolating);
  ASSERT_EQ(first.findings.size(), second.findings.size());
  for (std::size_t i = 0; i < first.findings.size(); ++i) {
    EXPECT_EQ(first.findings[i].file, second.findings[i].file);
    EXPECT_EQ(first.findings[i].line, second.findings[i].line);
    EXPECT_EQ(first.findings[i].message, second.findings[i].message);
    if (i > 0) {
      EXPECT_LE(first.findings[i - 1].file, first.findings[i].file);
    }
  }
}

TEST(LintBaseline, FullBaselineSuppressesEverything) {
  LintReport report = run_rules(kViolating);
  const Baseline baseline = full_baseline(report, "lint_full_baseline.json");
  apply_baseline(baseline, report);
  EXPECT_EQ(report.new_findings, 0u);
  EXPECT_TRUE(report.stale_baseline.empty());
  for (const Finding& finding : report.findings) {
    EXPECT_TRUE(finding.suppressed) << finding.message;
  }
}

TEST(LintBaseline, OneShortBaselineLeavesOneNewFinding) {
  LintReport report = run_rules(kViolating);
  Baseline baseline = full_baseline(report, "lint_short_baseline.json");
  ASSERT_FALSE(baseline.entries.empty());
  if (baseline.entries.front().count > 1) {
    --baseline.entries.front().count;
  } else {
    baseline.entries.erase(baseline.entries.begin());
  }
  apply_baseline(baseline, report);
  EXPECT_EQ(report.new_findings, 1u);
}

TEST(LintBaseline, StaleEntriesAreNotedNotFatal) {
  LintReport report = run_rules(kConforming);
  Baseline baseline;
  baseline.entries.push_back(
      {"det.rand_source", "src/sim/gone.cpp", 3, "file was deleted"});
  apply_baseline(baseline, report);
  EXPECT_EQ(report.new_findings, 0u);
  ASSERT_EQ(report.stale_baseline.size(), 1u);
  EXPECT_NE(report.stale_baseline[0].find("det.rand_source"),
            std::string::npos);
}

TEST(LintBaseline, LoaderRejectsBadDocuments) {
  Baseline baseline;
  std::string error;
  EXPECT_FALSE(load_baseline("/no/such/baseline.json", baseline, error));
  const std::string bad_schema = write_temp(
      "lint_bad_schema.json", R"({"schema": "wrong/9", "entries": []})");
  EXPECT_FALSE(load_baseline(bad_schema, baseline, error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  const std::string bad_rule = write_temp(
      "lint_bad_rule.json",
      R"({"schema": "mac3d-lint-baseline/1", "entries": [
           {"rule": "no.such_rule", "file": "a.cpp", "count": 1}]})");
  EXPECT_FALSE(load_baseline(bad_rule, baseline, error));
  EXPECT_NE(error.find("no.such_rule"), std::string::npos);
}

TEST(LintSarif, DocumentIsWellFormedAndComplete) {
  LintReport report = run_rules(kViolating);
  const Baseline baseline =
      full_baseline(report, "lint_sarif_baseline.json");
  apply_baseline(baseline, report);

  JsonValue doc;
  std::string error;
  ASSERT_TRUE(parse_json(sarif_json(report), doc, error)) << error;
  EXPECT_EQ(doc.string_or("version"), "2.1.0");
  const JsonValue* runs = doc.find("runs");
  ASSERT_NE(runs, nullptr);
  ASSERT_EQ(runs->items.size(), 1u);
  const JsonValue& run = runs->items[0];
  const JsonValue* driver = run.find("tool")->find("driver");
  ASSERT_NE(driver, nullptr);
  EXPECT_EQ(driver->string_or("name"), "mac3d-lint");
  EXPECT_EQ(driver->find("rules")->items.size(), rule_catalog().size());
  const JsonValue* results = run.find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->items.size(), report.findings.size());
  for (std::size_t i = 0; i < results->items.size(); ++i) {
    const JsonValue& result = results->items[i];
    EXPECT_EQ(result.string_or("ruleId"), report.findings[i].rule);
    // Baselined findings carry a suppressions entry; live ones none.
    EXPECT_EQ(result.find("suppressions") != nullptr,
              report.findings[i].suppressed);
    const JsonValue& region = *result.find("locations")
                                   ->items[0]
                                   .find("physicalLocation")
                                   ->find("region");
    EXPECT_GE(region.number_or("startLine"), 1.0);  // SARIF is 1-based
  }
}

TEST(LintCli, ExitCodesMirrorReportDiff) {
  LintCliOptions missing;
  missing.root = "/no/such/tree";
  EXPECT_EQ(run_lint_cli(missing), 2);

  LintCliOptions violating;
  violating.root = kViolating;
  EXPECT_EQ(run_lint_cli(violating), 1);

  LintCliOptions conforming;
  conforming.root = kConforming;
  EXPECT_EQ(run_lint_cli(conforming), 0);

  LintCliOptions bad_baseline;
  bad_baseline.root = kConforming;
  bad_baseline.baseline = "/no/such/baseline.json";
  EXPECT_EQ(run_lint_cli(bad_baseline), 2);
}

TEST(LintCli, WriteBaselineThenGateIsClean) {
  const std::string path = ::testing::TempDir() + "lint_regen_baseline.json";
  LintCliOptions regenerate;
  regenerate.root = kViolating;
  regenerate.write_baseline = path;
  EXPECT_EQ(run_lint_cli(regenerate), 0);

  LintCliOptions gated;
  gated.root = kViolating;
  gated.baseline = path;
  gated.sarif = ::testing::TempDir() + "lint_regen.sarif";
  EXPECT_EQ(run_lint_cli(gated), 0);

  // The SARIF artifact written on the gated run parses.
  std::ifstream in(gated.sarif, std::ios::binary);
  ASSERT_TRUE(in.good());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  JsonValue doc;
  std::string error;
  EXPECT_TRUE(parse_json(text, doc, error)) << error;
}

TEST(LintLexer, TracksCompileOutGuards) {
  const std::string source = R"(
    void f(Sink& sink) {
      sink.on_stage(1, 2);
    #if MAC3D_OBS_ENABLED
      sink.on_merge(1, 3);
    #endif
    #ifndef MAC3D_OBS_ENABLED
      sink.on_hop(1, 4);
    #endif
    }
  )";
  bool merge_guarded = false;
  bool stage_guarded = true;
  bool hop_guarded = true;
  for (const Token& token : lex_cpp(source)) {
    if (token.kind != Tok::kIdent) continue;
    if (token.text == "on_merge") merge_guarded = token.obs_guarded;
    if (token.text == "on_stage") stage_guarded = token.obs_guarded;
    if (token.text == "on_hop") hop_guarded = token.obs_guarded;
  }
  EXPECT_TRUE(merge_guarded);
  EXPECT_FALSE(stage_guarded);  // outside any guard
  EXPECT_FALSE(hop_guarded);    // #ifndef arm is the compiled-OUT branch
}

TEST(LintLexer, StringsCommentsAndRawStringsLexCleanly) {
  const std::string source = R"src(
    // comment with rand() inside
    /* block with getenv("X") */
    const char* a = "literal with rand() text";
    const char* b = R"(raw with "quotes" and rand())";
    int c = 42;
  )src";
  std::size_t rand_idents = 0;
  std::size_t strings = 0;
  for (const Token& token : lex_cpp(source)) {
    if (token.kind == Tok::kIdent && token.text == "rand") ++rand_idents;
    if (token.kind == Tok::kString) ++strings;
  }
  EXPECT_EQ(rand_idents, 0u);  // comments/strings never produce idents
  EXPECT_EQ(strings, 2u);
}

TEST(LintPatterns, PlaceholdersMatchOneOrMoreDigits) {
  EXPECT_TRUE(pattern_match("node<i>.router.routed", "node3.router.routed"));
  EXPECT_TRUE(
      pattern_match("node<i>.router.routed", "node128.router.routed"));
  EXPECT_TRUE(pattern_match("fabric.link<S><D>.requests",
                            "fabric.link07.requests"));
  EXPECT_TRUE(pattern_match("system.cycles", "system.cycles"));
  EXPECT_FALSE(pattern_match("node<i>.router.routed", "node.router.routed"));
  EXPECT_FALSE(pattern_match("node<i>.router.routed", "nodeX.router.routed"));
  EXPECT_FALSE(pattern_match("system.cycles", "system.cycle"));
  EXPECT_FALSE(pattern_match("system.cycles", "system.cycles.extra"));
}

TEST(LintRealTree, CommittedBaselineKeepsTheRepoClean) {
  // The in-repo run that CI performs: the committed baseline must cover
  // every finding in the tree as committed. Locate the repo root from
  // the fixtures dir (tests/lint_fixtures -> repo root).
  const std::string root = std::string(MAC3D_LINT_FIXTURES_DIR) + "/../..";
  LintReport report = run_rules(root);
  ASSERT_TRUE(report.errors.empty());
  Baseline baseline;
  std::string error;
  ASSERT_TRUE(
      load_baseline(root + "/tools/lint_baseline.json", baseline, error))
      << error;
  apply_baseline(baseline, report);
  EXPECT_EQ(report.new_findings, 0u) << render_text(report);
  EXPECT_TRUE(report.stale_baseline.empty()) << render_text(report);
}

}  // namespace
}  // namespace mac3d::lint
