// Unit tests: the MAC top level — intake ports, pop cadence, bypass path,
// fences, response de-coalescing, latency bookkeeping.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mac/coalescer.hpp"
#include "mem/hmc_device.hpp"

namespace mac3d {
namespace {

RawRequest make(Address addr, MemOp op = MemOp::kLoad, ThreadId tid = 0,
                Tag tag = 0) {
  RawRequest request;
  request.addr = addr;
  request.op = op;
  request.tid = tid;
  request.tag = tag;
  return request;
}

class CoalescerTest : public ::testing::Test {
 protected:
  std::vector<CompletedAccess> settle(Cycle& now) {
    std::vector<CompletedAccess> all;
    while (!mac_.idle()) {
      mac_.tick(now);
      for (auto& done : mac_.drain(now)) all.push_back(done);
      const Cycle next = mac_.next_event(now);
      now = next <= now ? now + 1 : next;
    }
    return all;
  }

  SimConfig config_;
  HmcDevice device_{config_};
  MacCoalescer mac_{config_, device_};
};

TEST_F(CoalescerTest, PairMergesIntoOnePacketServingBothThreads) {
  Cycle now = 0;
  ASSERT_TRUE(mac_.try_accept(make(0xA00, MemOp::kLoad, 0, 1), now));
  ASSERT_TRUE(mac_.try_accept(make(0xA10, MemOp::kLoad, 1, 1), now));
  const auto done = settle(now);
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(mac_.stats().packets_out, 1u);
  EXPECT_EQ(mac_.stats().built_out, 1u);
  EXPECT_EQ(mac_.stats().packets_by_size.at(64), 1u);
  // Both threads answered at the same cycle by the same packet.
  EXPECT_EQ(done[0].completed, done[1].completed);
}

TEST_F(CoalescerTest, RowBurstCoalescesAcrossThreads) {
  // Fig. 2 scenario: sixteen threads load the sixteen FLITs of one row
  // (fed at the dual-ported intake rate). Far fewer than 16 transactions
  // leave the MAC, and every thread gets its answer.
  Cycle now = 0;
  std::vector<CompletedAccess> done;
  for (std::uint32_t t = 0; t < 16; ++t) {
    while (!mac_.try_accept(
        make(0xA00 + t * 16, MemOp::kLoad, static_cast<ThreadId>(t), 1),
        now)) {
      mac_.tick(now);
      for (auto& c : mac_.drain(now)) done.push_back(c);
      ++now;
    }
  }
  for (auto& c : settle(now)) done.push_back(c);
  EXPECT_EQ(done.size(), 16u);
  EXPECT_LT(mac_.stats().packets_out, 16u);
  EXPECT_GT(mac_.stats().coalescing_efficiency(), 0.4);
}

TEST_F(CoalescerTest, DualPortAcceptsOneMergeOneAllocPerCycle) {
  Cycle now = 0;
  ASSERT_TRUE(mac_.try_accept(make(0xA00, MemOp::kLoad, 0, 1), now));  // alloc
  ASSERT_TRUE(mac_.try_accept(make(0xA10, MemOp::kLoad, 1, 1), now));  // merge
  // Third same-cycle request needs a port that is already used.
  EXPECT_FALSE(mac_.try_accept(make(0xB00, MemOp::kLoad, 2, 1), now));
  EXPECT_FALSE(mac_.try_accept(make(0xA20, MemOp::kLoad, 3, 1), now));
  // Next cycle both ports are free again.
  ++now;
  EXPECT_TRUE(mac_.try_accept(make(0xB00, MemOp::kLoad, 2, 1), now));
  EXPECT_TRUE(mac_.try_accept(make(0xA20, MemOp::kLoad, 3, 1), now));
}

TEST_F(CoalescerTest, SingleRequestBypassesAs16B) {
  Cycle now = 0;
  mac_.accept(make(0xABC0, MemOp::kLoad, 0, 7), now);
  const auto done = settle(now);
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(mac_.stats().bypass_out, 1u);
  EXPECT_EQ(mac_.stats().built_out, 0u);
  EXPECT_EQ(mac_.stats().packets_by_size.at(16), 1u);
  EXPECT_EQ(done[0].target.tag, 7u);
}

TEST_F(CoalescerTest, EveryRawRequestGetsExactlyOneCompletion) {
  Cycle now = 0;
  std::map<std::uint32_t, int> seen;
  for (std::uint32_t i = 0; i < 200; ++i) {
    while (!mac_.try_accept(make((i % 40) * 256 + (i % 16) * 16,
                                 i % 3 == 0 ? MemOp::kStore : MemOp::kLoad,
                                 static_cast<ThreadId>(i % 8),
                                 static_cast<Tag>(i)),
                            now)) {
      mac_.tick(now);
      for (auto& done : mac_.drain(now)) {
        ++seen[(done.target.tid << 16) | done.target.tag];
      }
      ++now;
    }
    mac_.tick(now);
    for (auto& done : mac_.drain(now)) {
      ++seen[(done.target.tid << 16) | done.target.tag];
    }
    ++now;
  }
  for (auto& done : settle(now)) {
    ++seen[(done.target.tid << 16) | done.target.tag];
  }
  EXPECT_EQ(seen.size(), 200u);
  for (const auto& [key, count] : seen) {
    EXPECT_EQ(count, 1) << "key " << key;
  }
  EXPECT_EQ(mac_.stats().completions, 200u);
}

TEST_F(CoalescerTest, FenceWaitsForAllPriorRequests) {
  Cycle now = 0;
  mac_.accept(make(0xA00, MemOp::kLoad, 0, 1), now);
  ++now;
  mac_.accept(make(0, MemOp::kFence, 0, 2), now);
  ++now;
  mac_.accept(make(0xB00, MemOp::kLoad, 0, 3), now);

  Cycle load_done = 0;
  Cycle fence_done = 0;
  Cycle second_load_done = 0;
  for (const auto& done : settle(now)) {
    if (done.fence) {
      fence_done = done.completed;
    } else if (done.target.tag == 1) {
      load_done = done.completed;
    } else {
      second_load_done = done.completed;
    }
  }
  EXPECT_GT(fence_done, 0u);
  EXPECT_GE(fence_done, load_done);        // fence after the prior load
  EXPECT_GT(second_load_done, fence_done); // later op after the fence
  EXPECT_EQ(mac_.stats().fences_in, 1u);
}

TEST_F(CoalescerTest, AtomicGoesStraightThroughUncoalesced) {
  Cycle now = 0;
  mac_.accept(make(0xC40, MemOp::kAtomic, 0, 1), now);
  ++now;
  mac_.accept(make(0xC50, MemOp::kAtomic, 1, 1), now);
  settle(now);
  EXPECT_EQ(mac_.stats().atomic_out, 2u);
  EXPECT_EQ(device_.stats().atomics, 2u);
  EXPECT_EQ(mac_.stats().packets_out, 2u);
}

TEST_F(CoalescerTest, BuilderPopCadenceIsTwoCycles) {
  // Two coalesced entries in the queue leave >= 2 cycles apart.
  Cycle now = 0;
  mac_.accept(make(0xA00, MemOp::kLoad, 0, 1), now);
  mac_.accept(make(0xA10, MemOp::kLoad, 1, 1), now);
  ++now;
  mac_.accept(make(0xB00, MemOp::kLoad, 2, 1), now);
  mac_.accept(make(0xB10, MemOp::kLoad, 3, 1), now);
  std::map<Cycle, int> by_completion;
  for (const auto& done : settle(now)) ++by_completion[done.completed];
  ASSERT_EQ(by_completion.size(), 2u);  // two packets
  const Cycle first = by_completion.begin()->first;
  const Cycle second = std::next(by_completion.begin())->first;
  EXPECT_GE(second - first, 2u);
}

TEST_F(CoalescerTest, LatencyIsMeasuredPerRawRequest) {
  Cycle now = 0;
  mac_.accept(make(0xA00, MemOp::kLoad, 0, 1), now);
  settle(now);
  const double latency = mac_.stats().raw_latency_cycles.mean();
  // Bypass path: ~93 ns device latency plus a few MAC cycles.
  EXPECT_GT(latency, 250.0);
  EXPECT_LT(latency, 400.0);
}

TEST_F(CoalescerTest, StorageMatchesPaperTotal) {
  // Sec. 5.3.3: 2048 B ARQ + 14 B builder = 2062 B at 32 entries.
  EXPECT_EQ(mac_.storage_bytes(), 2062u);
}

TEST_F(CoalescerTest, IdleAndNextEventBehave) {
  EXPECT_TRUE(mac_.idle());
  EXPECT_EQ(mac_.next_event(5), 0u);
  Cycle now = 0;
  mac_.accept(make(0xA00), now);
  EXPECT_FALSE(mac_.idle());
  EXPECT_GT(mac_.next_event(now), now);
  settle(now);
  EXPECT_TRUE(mac_.idle());
}

TEST_F(CoalescerTest, CoalescingEfficiencyMatchesDefinition) {
  // Two raw requests merged into one packet: efficiency = 1 - 1/2.
  Cycle now = 0;
  ASSERT_TRUE(mac_.try_accept(make(0xA00, MemOp::kLoad, 0, 1), now));
  ASSERT_TRUE(mac_.try_accept(make(0xA40, MemOp::kLoad, 1, 1), now));
  settle(now);
  EXPECT_EQ(mac_.stats().raw_in, 2u);
  EXPECT_EQ(mac_.stats().packets_out, 1u);
  EXPECT_DOUBLE_EQ(mac_.stats().coalescing_efficiency(), 0.5);
}

}  // namespace
}  // namespace mac3d
