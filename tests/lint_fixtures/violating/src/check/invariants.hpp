// Fixture invariant catalog: registers an id the doc does not mention
// (sync.invariant_ids must flag both directions).
#pragma once

namespace mini {

struct Invariant {
  const char* id;
  const char* summary;
};

inline constexpr Invariant kOnlyInCode{"demo.only_in_code",
                                       "registered but undocumented"};

}  // namespace mini
