// Fixture taxonomy header: three stages defined, but kStageCount says 4
// (sync.stage_docs must flag the mismatch).
#pragma once

namespace mini {

enum class Stage { kCoreIssue, kMerge, kBankAccess };

inline constexpr int kStageCount = 4;

inline const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kCoreIssue: return "core_issue";
    case Stage::kMerge: return "merge";
    case Stage::kBankAccess: return "bank_access";
  }
  return "?";
}

}  // namespace mini
