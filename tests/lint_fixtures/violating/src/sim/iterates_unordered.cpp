// det.unordered_iteration: range-for and an explicit iterator walk over
// hash-ordered containers.
#include <unordered_map>

namespace mini {

int sum_values(const std::unordered_map<int, int>& table) {
  int total = 0;
  for (const auto& [key, value] : table) {
    total += key + value;
  }
  auto it = table.begin();
  if (it != table.end()) total += it->second;
  return total;
}

}  // namespace mini
