// det.activity_oracle: a tickable component that never advertises the
// did_work_this_cycle / next_activity_cycle pair the event-driven engine
// and the idle census consume.
#pragma once

namespace mini {

using Cycle = unsigned long long;

class Widget {
 public:
  void tick(Cycle now) { last_ = now; }
  bool idle() const { return true; }

 private:
  Cycle last_ = 0;
};

}  // namespace mini
