// obs.naked_check_site: CheckContext calls outside an
// #if MAC3D_CHECKS_ENABLED region.
namespace mini {

struct Context {
  void count_check();
  void fail(int invariant, long cycle, const char* detail);
};

void audit(Context& context) {
  context.count_check();
  context.fail(1, 99, "broken");
}

}  // namespace mini
