// det.static_mutable_local: hidden cross-run state in a function.
namespace mini {

int bump() {
  static int calls = 0;
  return ++calls;
}

}  // namespace mini
