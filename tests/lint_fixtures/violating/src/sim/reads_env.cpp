// det.env_access: environment read outside the config layer.
#include <cstdlib>

namespace mini {

bool verbose() { return std::getenv("MINI_VERBOSE") != nullptr; }

}  // namespace mini
