// det.rand_source: libc rand() and a std engine type in simulation code.
#include <cstdlib>
#include <random>

namespace mini {

int noise() { return std::rand() % 7; }

std::mt19937 make_engine() { return std::mt19937{12345}; }

}  // namespace mini
