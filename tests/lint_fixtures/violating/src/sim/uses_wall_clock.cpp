// det.wall_clock: host time sources in simulation code.
#include <chrono>
#include <ctime>

namespace mini {

long long stamp() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

long epoch() { return static_cast<long>(std::time(nullptr)); }

}  // namespace mini
