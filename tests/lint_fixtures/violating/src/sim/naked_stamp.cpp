// obs.raw_stamp_call: EventSink stamps outside an #if MAC3D_OBS_ENABLED
// region.
namespace mini {

struct Sink {
  void on_stage(int request, int cycle);
  void on_merge(int request, int cycle);
};

void trace(Sink& sink) {
  sink.on_stage(1, 2);
  sink.on_merge(1, 3);
}

}  // namespace mini
