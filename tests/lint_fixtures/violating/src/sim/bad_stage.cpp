// obs.stage_taxonomy: a stage-name literal that is not a taxonomy member.
namespace mini {

struct Tracer {
  void add_stage(const char* stage);
};

void record(Tracer& tracer) { tracer.add_stage("not_a_stage"); }

}  // namespace mini
