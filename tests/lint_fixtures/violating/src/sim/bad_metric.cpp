// obs.metric_name_grammar: literals that do not parse against the
// fixture's docs/metrics_schema.json.
#include <string>

namespace mini {

struct Registry {
  long& counter(const std::string& name);
  long& gauge(const std::string& name);
};

void meter(Registry& registry, const std::string& prefix) {
  registry.counter("system.unknown_counter") += 1;
  registry.gauge(prefix + ".bogus") += 1;
}

}  // namespace mini
