// Conforming counterpart to tickable_no_oracle.hpp: the tickable widget
// advertises the full activity-oracle pair.
#pragma once

namespace mini {

using Cycle = unsigned long long;

class Widget {
 public:
  void tick(Cycle now) { last_ = now; }
  bool did_work_this_cycle(Cycle now) const { return last_ == now; }
  Cycle next_activity_cycle(Cycle) const { return 0; }

 private:
  Cycle last_ = 0;
};

}  // namespace mini
