// Conforming counterpart to bad_stage: the literal is a taxonomy member.
namespace mini {

struct Tracer {
  void add_stage(const char* stage);
};

void record(Tracer& tracer) { tracer.add_stage("merge"); }

}  // namespace mini
