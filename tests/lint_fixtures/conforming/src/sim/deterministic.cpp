// Conforming counterpart to uses_rand/uses_wall_clock/static_local: a
// seeded house generator, cycle-derived time, and hoisted state.
namespace mini {

struct Rng {
  unsigned long long state;
  unsigned long long next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state;
  }
};

struct Component {
  int calls = 0;
  long long now_cycles = 0;
  int bump() { return ++calls; }
  long long stamp() const { return now_cycles; }
};

}  // namespace mini
