// Conforming counterpart to iterates_unordered: ordered containers and
// point lookups into unordered ones are both fine.
#include <map>
#include <unordered_map>

namespace mini {

int sum_values(const std::map<int, int>& table,
               const std::unordered_map<int, int>& index) {
  int total = 0;
  for (const auto& [key, value] : table) {
    total += key + value;
  }
  const auto it = index.find(3);
  if (it != index.end()) total += it->second;
  return total;
}

}  // namespace mini
