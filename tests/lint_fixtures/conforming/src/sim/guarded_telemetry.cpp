// Conforming counterpart to naked_stamp/naked_check: the same call
// shapes are legal inside compile-out regions.
#define MAC3D_OBS_ENABLED 1
#define MAC3D_CHECKS_ENABLED 1

namespace mini {

struct Sink {
  void on_stage(int request, int cycle);
  void on_merge(int request, int cycle);
};

struct Context {
  void count_check();
  void fail(int invariant, long cycle, const char* detail);
};

void trace(Sink& sink, Context& context, bool broken) {
#if MAC3D_OBS_ENABLED
  sink.on_stage(1, 2);
  sink.on_merge(1, 3);
#endif
#if MAC3D_CHECKS_ENABLED
  context.count_check();
  if (broken) context.fail(1, 99, "broken");
#endif
}

}  // namespace mini
