// Conforming counterpart to bad_metric: full names and concatenation
// fragments that parse against docs/metrics_schema.json.
#include <string>

namespace mini {

struct Registry {
  long& counter(const std::string& name);
};

void meter(Registry& registry, const std::string& prefix) {
  registry.counter("system.cycles") += 1;
  registry.counter(prefix + ".cycles") += 1;
}

}  // namespace mini
