// Fixture invariant catalog: the one registered id is documented.
#pragma once

namespace mini {

struct Invariant {
  const char* id;
  const char* summary;
};

inline constexpr Invariant kMatched{"demo.matched",
                                    "registered and documented"};

}  // namespace mini
