// Conforming counterpart to reads_env: the config layer is the one
// place allowed to read the environment.
#include <cstdlib>

namespace mini {

const char* config_override(const char* name) { return std::getenv(name); }

}  // namespace mini
