// Fixture taxonomy header: three stages, count and docs both agree.
#pragma once

namespace mini {

enum class Stage { kCoreIssue, kMerge, kBankAccess };

inline constexpr int kStageCount = 3;

inline const char* to_string(Stage stage) {
  switch (stage) {
    case Stage::kCoreIssue: return "core_issue";
    case Stage::kMerge: return "merge";
    case Stage::kBankAccess: return "bank_access";
  }
  return "?";
}

}  // namespace mini
