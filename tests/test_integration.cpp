// Integration tests: whole-pipeline invariants over real workload traces
// (DESIGN.md §6) — completion conservation, payload coverage, fence
// ordering, cross-path consistency, calibration.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "mac/coalescer.hpp"
#include "mem/hmc_device.hpp"
#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "trace/trace.hpp"
#include "workloads/all.hpp"

namespace mac3d {
namespace {

WorkloadParams small_params(std::uint32_t threads = 8) {
  WorkloadParams params;
  params.threads = threads;
  params.scale = 0.05;
  return params;
}

TEST(Integration, EveryRawRequestOfEveryWorkloadCompletesOnce) {
  SimConfig config;
  for (const Workload* workload :
       {sg_workload(), grappolo_workload(), nqueens_workload()}) {
    const MemoryTrace trace = workload->trace(small_params(4));
    std::uint64_t data_records = 0;
    std::uint64_t fences = 0;
    for (std::uint32_t t = 0; t < trace.threads(); ++t) {
      for (const MemRecord& record : trace.thread(static_cast<ThreadId>(t))) {
        (record.op == MemOp::kFence ? fences : data_records) += 1;
      }
    }
    const DriverResult mac = run_mac(trace, config, 4);
    EXPECT_EQ(mac.raw_requests, data_records) << workload->name();
    // Completions cover both data records and retired fences.
    EXPECT_EQ(mac.completions, data_records + fences) << workload->name();
  }
}

TEST(Integration, CoalescedPacketCoversEveryRequestedFlit) {
  // Drive the MAC manually and check each issued packet against the FLITs
  // its merged targets asked for.
  SimConfig config;
  HmcDevice device(config);
  MacCoalescer mac(config, device);

  std::map<std::uint32_t, Address> requested;  // key -> raw address
  Cycle now = 0;
  Xoshiro256 rng(99);
  std::uint32_t tag = 0;
  for (int i = 0; i < 500; ++i) {
    RawRequest request;
    request.addr = (rng.below(64) * 256 + rng.below(16) * 16);
    request.tid = static_cast<ThreadId>(rng.below(8));
    request.tag = static_cast<Tag>(tag++);
    request.op = rng.below(2) ? MemOp::kLoad : MemOp::kStore;
    std::uint64_t verified = 0;
    (void)verified;
    while (!mac.try_accept(request, now)) {
      mac.tick(now);
      for (const CompletedAccess& done : mac.drain(now)) {
        requested.erase((static_cast<std::uint32_t>(done.target.tid) << 16) |
                        done.target.tag);
      }
      ++now;
    }
    requested[(static_cast<std::uint32_t>(request.tid) << 16) | request.tag] =
        request.addr;
    mac.tick(now);
    for (const CompletedAccess& done : mac.drain(now)) {
      requested.erase((static_cast<std::uint32_t>(done.target.tid) << 16) |
                      done.target.tag);
    }
    ++now;
  }
  // Drain: every outstanding raw request must complete exactly once.
  while (!mac.idle()) {
    mac.tick(now);
    for (const CompletedAccess& done : mac.drain(now)) {
      const std::uint32_t key =
          (static_cast<std::uint32_t>(done.target.tid) << 16) |
          done.target.tag;
      EXPECT_EQ(requested.count(key), 1u) << "duplicate or spurious " << key;
      requested.erase(key);
    }
    const Cycle next = mac.next_event(now);
    now = next <= now ? now + 1 : next;
  }
  EXPECT_TRUE(requested.empty()) << requested.size() << " never completed";
}

TEST(Integration, DeviceSpanAlwaysContainsTargets) {
  // Submit coalesced-style packets and confirm target FLITs lie inside.
  SimConfig config;
  HmcDevice device(config);
  MacCoalescer mac(config, device);
  Cycle now = 0;
  for (std::uint32_t t = 0; t < 12; ++t) {
    RawRequest request;
    request.addr = 0xF00 + (t % 16) * 16;
    request.tid = static_cast<ThreadId>(t);
    request.tag = 1;
    while (!mac.try_accept(request, now)) {
      mac.tick(now);
      mac.drain(now);
      ++now;
    }
  }
  bool checked = false;
  while (!mac.idle()) {
    mac.tick(now);
    mac.drain(now);
    const Cycle next = mac.next_event(now);
    now = next <= now ? now + 1 : next;
  }
  for (const auto& [size, count] : mac.stats().packets_by_size) {
    EXPECT_LE(size, 256u);
    EXPECT_GE(size, 16u);
    checked = checked || count > 0;
  }
  EXPECT_TRUE(checked);
}

TEST(Integration, FenceOrderingHoldsInFullRuns) {
  // Within each thread, every pre-fence op completes no later than the
  // fence, and every post-fence op starts after it.
  SimConfig config;
  MemoryTrace trace(2);
  for (std::uint32_t t = 0; t < 2; ++t) {
    for (int i = 0; i < 20; ++i) {
      trace.load(static_cast<ThreadId>(t),
                 static_cast<Address>(i) * 256 + t * 16);
    }
    trace.fence(static_cast<ThreadId>(t));
    for (int i = 0; i < 20; ++i) {
      trace.store(static_cast<ThreadId>(t),
                  0x100000 + static_cast<Address>(i) * 256 + t * 16);
    }
  }

  HmcDevice device(config);
  MacCoalescer mac(config, device);
  InterleavedStream stream(trace, 2, 8);
  Cycle now = 0;
  std::map<std::uint16_t, Cycle> fence_time;
  std::vector<CompletedAccess> completions;
  while (!stream.done() || !mac.idle()) {
    if (!stream.done()) {
      RawRequest next_request = stream.next();
      while (!mac.try_accept(next_request, now)) {
        mac.tick(now);
        for (auto& done : mac.drain(now)) completions.push_back(done);
        ++now;
      }
    }
    mac.tick(now);
    for (auto& done : mac.drain(now)) completions.push_back(done);
    const Cycle next = mac.next_event(now);
    now = next <= now ? now + 1 : next;
  }
  for (const CompletedAccess& done : completions) {
    if (done.fence) fence_time[done.target.tid] = done.completed;
  }
  ASSERT_EQ(fence_time.size(), 2u);
  for (const CompletedAccess& done : completions) {
    if (done.fence) continue;
    if (!done.write) {
      EXPECT_LE(done.completed, fence_time[done.target.tid]);
    } else {
      EXPECT_GT(done.accepted, 0u);
    }
  }
}

TEST(Integration, OverheadEquals32BytesPerPacket) {
  SimConfig config;
  const MemoryTrace trace = sg_workload()->trace(small_params(4));
  for (const DriverResult& result :
       {run_raw(trace, config, 4), run_mac(trace, config, 4)}) {
    EXPECT_EQ(result.overhead_bytes,
              result.packets * kAccessOverheadBytes)
        << result.path;
    EXPECT_EQ(result.link_bytes, result.data_bytes + result.overhead_bytes)
        << result.path;
  }
}

TEST(Integration, BandwidthEfficiencyWithinProtocolBounds) {
  SimConfig config;
  for (const Workload* workload : workload_registry()) {
    WorkloadParams params = small_params(4);
    params.config = config;
    const MemoryTrace trace = workload->trace(params);
    const DriverResult mac = run_mac(trace, config, 4);
    EXPECT_GE(mac.bandwidth_efficiency(), 1.0 / 3.0 - 1e-9)
        << workload->name();
    EXPECT_LE(mac.bandwidth_efficiency(), 8.0 / 9.0 + 1e-9)
        << workload->name();
  }
}

TEST(Integration, TargetsPerEntryNeverExceedCapacity) {
  SimConfig config;
  for (const Workload* workload : {mg_workload(), sort_workload()}) {
    WorkloadParams params = small_params(8);
    params.config = config;
    const MemoryTrace trace = workload->trace(params);
    const DriverResult mac = run_mac(trace, config, 8);
    EXPECT_LE(mac.max_targets_per_entry,
              static_cast<double>(config.max_targets_per_entry()))
        << workload->name();
  }
}

TEST(Integration, MemorySpeedupPositiveAcrossSuite) {
  // At the tiny test scale individual workloads can be noisy, so require
  // the suite average to show a solid gain and no workload to regress
  // badly (the full-scale comparison lives in bench/fig17_speedup).
  SimConfig config;
  double sum = 0.0;
  int count = 0;
  for (const Workload* workload : workload_registry()) {
    WorkloadParams params = small_params(8);
    params.scale = 0.2;
    params.config = config;
    const MemoryTrace trace = workload->trace(params);
    const DriverResult raw = run_raw(trace, config, 8);
    const DriverResult mac = run_mac(trace, config, 8);
    const double speedup = memory_speedup(raw, mac);
    EXPECT_GT(speedup, -0.25) << workload->name();
    sum += speedup;
    ++count;
  }
  EXPECT_GT(sum / count, 0.3);
}

}  // namespace
}  // namespace mac3d
