// Unit tests: the two-stage pipelined Request Builder (paper Sec. 4.2,
// Fig. 8) — timing (1-cycle OR stage, 2-cycle lookup+build, 0.5 req/cycle
// issue rate) and packet construction.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "mac/request_builder.hpp"
#include "mem/address_map.hpp"

namespace mac3d {
namespace {

class BuilderTest : public ::testing::Test {
 protected:
  ArqEntry entry_for(std::uint64_t row, std::initializer_list<int> flits,
                     bool store = false) {
    ArqEntry entry;
    entry.row = row;
    entry.is_store = store;
    entry.flits = FlitMap(16);
    Tag tag = 0;
    for (int flit : flits) {
      entry.flits.set(static_cast<std::uint32_t>(flit));
      entry.targets.push_back(
          Target{0, tag++, static_cast<std::uint8_t>(flit)});
    }
    entry.bypass = entry.targets.size() < 2;
    return entry;
  }

  SimConfig config_;
  AddressMap map_{config_};
  RequestBuilder builder_{config_, map_};
};

TEST_F(BuilderTest, PaperExampleBuilds128BPacket) {
  // Fig. 7/8: FLITs {6, 8, 9} of row 0xA -> pattern 0110 -> 128 B at
  // offset 64 within the row.
  builder_.accept(entry_for(0xA, {6, 8, 9}), 0);
  EXPECT_FALSE(builder_.has_output(2));  // 3-cycle build latency
  ASSERT_TRUE(builder_.has_output(3));
  const HmcRequest request = builder_.pop_output(3);
  EXPECT_EQ(request.data_bytes, 128u);
  EXPECT_EQ(request.addr, 0xA00u + 64u);
  EXPECT_EQ(request.targets.size(), 3u);
  EXPECT_FALSE(request.write);
}

TEST_F(BuilderTest, InitiationIntervalIsTwoCycles) {
  // Sec. 4.4: the MAC issues at a fixed 0.5 requests/cycle.
  EXPECT_TRUE(builder_.can_accept(0));
  builder_.accept(entry_for(1, {0, 1}), 0);
  EXPECT_FALSE(builder_.can_accept(1));
  EXPECT_TRUE(builder_.can_accept(2));
  builder_.accept(entry_for(2, {0, 1}), 2);
  EXPECT_EQ(builder_.stats().built, 2u);
}

TEST_F(BuilderTest, OutputsEmergeInOrder) {
  builder_.accept(entry_for(1, {0}), 0);
  builder_.accept(entry_for(2, {15}), 2);
  ASSERT_TRUE(builder_.has_output(3));
  EXPECT_EQ(builder_.pop_output(3).addr, 0x100u);
  EXPECT_FALSE(builder_.has_output(4));
  ASSERT_TRUE(builder_.has_output(5));
  EXPECT_EQ(builder_.pop_output(5).addr, 0x200u + 192u);
}

TEST_F(BuilderTest, StoreEntriesBuildWritePackets) {
  builder_.accept(entry_for(3, {0, 4, 8, 12}, /*store=*/true), 0);
  const HmcRequest request = builder_.pop_output(3);
  EXPECT_TRUE(request.write);
  EXPECT_EQ(request.data_bytes, 256u);
  EXPECT_EQ(request.addr, 0x300u);
}

TEST_F(BuilderTest, SizeHistogramTracksPackets) {
  builder_.accept(entry_for(1, {0}), 0);        // 64 B
  builder_.accept(entry_for(2, {0, 7}), 2);     // 128 B
  builder_.accept(entry_for(3, {0, 15}), 4);    // 256 B
  const auto& sizes = builder_.stats().packets_by_size;
  EXPECT_EQ(sizes.at(64), 1u);
  EXPECT_EQ(sizes.at(128), 1u);
  EXPECT_EQ(sizes.at(256), 1u);
}

TEST_F(BuilderTest, StorageIsFourteenBytes) {
  // Sec. 5.3.3: FLIT map (2 B) + FLIT table (12 B).
  EXPECT_EQ(builder_.storage_bytes(), 14u);
}

TEST_F(BuilderTest, NextOutputAtReportsReadyCycle) {
  EXPECT_TRUE(builder_.empty());
  builder_.accept(entry_for(1, {2, 3}), 10);
  EXPECT_EQ(builder_.next_output_at(), 13u);
}

}  // namespace
}  // namespace mac3d
