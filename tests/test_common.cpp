// Unit tests: common utilities (bit helpers, RNG, bounded FIFO, stats,
// configuration).
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>

#include "common/bitutil.hpp"
#include "common/config.hpp"
#include "common/fixed_queue.hpp"
#include "common/flat_cycle_map.hpp"
#include "common/ring_queue.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"

namespace mac3d {
namespace {

// ---------------------------------------------------------------- bitutil
TEST(BitUtil, BitsExtractsRanges) {
  EXPECT_EQ(bits(0xABCD, 0, 4), 0xDu);
  EXPECT_EQ(bits(0xABCD, 4, 4), 0xCu);
  EXPECT_EQ(bits(0xABCD, 8, 8), 0xABu);
  EXPECT_EQ(bits(~0ULL, 0, 64), ~0ULL);
}

TEST(BitUtil, IsPow2) {
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(256));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_FALSE(is_pow2(257));
}

TEST(BitUtil, Log2Exact) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(16), 4u);
  EXPECT_EQ(log2_exact(1ULL << 33), 33u);
}

TEST(BitUtil, LowestHighestBit) {
  EXPECT_EQ(lowest_bit(0b1010), 1u);
  EXPECT_EQ(highest_bit(0b1010), 3u);
  EXPECT_EQ(lowest_bit(1ULL << 63), 63u);
  EXPECT_EQ(highest_bit(1), 0u);
}

TEST(BitUtil, AlignUpDown) {
  EXPECT_EQ(align_up(0, 64), 0u);
  EXPECT_EQ(align_up(1, 64), 64u);
  EXPECT_EQ(align_up(64, 64), 64u);
  EXPECT_EQ(align_down(63, 64), 0u);
  EXPECT_EQ(align_down(130, 64), 128u);
}

TEST(BitUtil, Popcount) {
  EXPECT_EQ(popcount64(0), 0u);
  EXPECT_EQ(popcount64(0xFFFF), 16u);
  EXPECT_EQ(popcount64(~0ULL), 64u);
}

// -------------------------------------------------------------------- rng
TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42);
  Xoshiro256 b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Xoshiro256 a(1);
  Xoshiro256 b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next() ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowIsBounded) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
  EXPECT_EQ(rng.below(0), 0u);
  EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowCoversRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitMixExpandsSeeds) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);
}

// ------------------------------------------------------------ fixed_queue
TEST(FixedQueue, PushPopFifoOrder) {
  FixedQueue<int> queue(4);
  for (int i = 0; i < 4; ++i) queue.push(i);
  EXPECT_TRUE(queue.full());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(queue.pop(), i);
  EXPECT_TRUE(queue.empty());
}

TEST(FixedQueue, TryPushRespectsCapacity) {
  FixedQueue<int> queue(2);
  EXPECT_TRUE(queue.try_push(1));
  EXPECT_TRUE(queue.try_push(2));
  EXPECT_FALSE(queue.try_push(3));
  EXPECT_EQ(queue.size(), 2u);
}

TEST(FixedQueue, WrapsAround) {
  FixedQueue<int> queue(3);
  queue.push(1);
  queue.push(2);
  EXPECT_EQ(queue.pop(), 1);
  queue.push(3);
  queue.push(4);
  EXPECT_TRUE(queue.full());
  EXPECT_EQ(queue.pop(), 2);
  EXPECT_EQ(queue.pop(), 3);
  EXPECT_EQ(queue.pop(), 4);
}

TEST(FixedQueue, RandomAccessFromHead) {
  FixedQueue<int> queue(4);
  queue.push(10);
  queue.push(20);
  queue.push(30);
  (void)queue.pop();
  queue.push(40);
  EXPECT_EQ(queue.at(0), 20);
  EXPECT_EQ(queue.at(1), 30);
  EXPECT_EQ(queue.at(2), 40);
}

TEST(FixedQueue, ClearResets) {
  FixedQueue<int> queue(2);
  queue.push(1);
  queue.clear();
  EXPECT_TRUE(queue.empty());
  EXPECT_EQ(queue.free_slots(), 2u);
}

// ------------------------------------------------------------------ stats
TEST(RunningStat, TracksMoments) {
  RunningStat stat;
  stat.add(1.0);
  stat.add(2.0);
  stat.add(3.0);
  EXPECT_EQ(stat.count(), 3u);
  EXPECT_DOUBLE_EQ(stat.mean(), 2.0);
  EXPECT_DOUBLE_EQ(stat.min(), 1.0);
  EXPECT_DOUBLE_EQ(stat.max(), 3.0);
}

TEST(RunningStat, EmptyIsZero) {
  RunningStat stat;
  EXPECT_EQ(stat.count(), 0u);
  EXPECT_EQ(stat.mean(), 0.0);
  EXPECT_EQ(stat.min(), 0.0);
}

TEST(RunningStat, MergeCombines) {
  RunningStat a;
  RunningStat b;
  a.add(1.0);
  a.add(5.0);
  b.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(Histogram, BucketsByMagnitude) {
  Histogram hist;
  hist.add(0);
  hist.add(1);
  hist.add(1000);
  EXPECT_EQ(hist.count(), 3u);
  EXPECT_EQ(hist.buckets()[0], 1u);  // zero
  EXPECT_EQ(hist.buckets()[1], 1u);  // 1
  EXPECT_EQ(hist.buckets()[10], 1u);  // 512..1023
}

TEST(Histogram, MergeCombinesCountsAndExtremes) {
  Histogram a;
  Histogram b;
  a.add(4);
  a.add(9);
  b.add(1);
  b.add(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min_value(), 1u);
  EXPECT_EQ(a.max_value(), 100u);
  EXPECT_EQ(a.quantile(0.0), 1u);
  EXPECT_EQ(a.quantile(1.0), 100u);
}

TEST(Histogram, MergeIntoEmptyCopiesAndMergingEmptyIsANoOp) {
  Histogram a;
  Histogram b;
  Histogram empty;
  b.add(7);
  a.merge(b);  // empty.merge(non-empty) adopts the extremes
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min_value(), 7u);
  EXPECT_EQ(a.max_value(), 7u);
  a.merge(empty);  // non-empty.merge(empty) changes nothing
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.min_value(), 7u);
  EXPECT_EQ(a.max_value(), 7u);
}

TEST(Histogram, MergeFromWiderHistogramSaturatesTheLastBucket) {
  Histogram narrow(4);  // last bucket saturates at values >= 4
  Histogram wide(32);
  wide.add(1000);  // bucket 10 in the wide histogram
  narrow.merge(wide);
  EXPECT_EQ(narrow.count(), 1u);
  EXPECT_EQ(narrow.buckets().back(), 1u);  // folded where add() would land
  EXPECT_EQ(narrow.quantile(0.5), 1000u);  // edge clamped into [min, max]
}

TEST(Histogram, QuantileEdgeCases) {
  Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0u);

  Histogram one;  // a single sample answers every quantile exactly
  one.add(42);
  for (const double q : {0.0, 0.01, 0.5, 0.99, 1.0}) {
    EXPECT_EQ(one.quantile(q), 42u) << q;
  }

  Histogram hist;
  hist.add(2);
  hist.add(2);
  hist.add(2);
  hist.add(1'000'000);
  // Tiny q resolves to the first sample's bucket edge, never bucket 0
  // (the regression the rank-based formulation fixed).
  EXPECT_EQ(hist.quantile(0.01), 3u);  // bucket [2,3] upper edge
  EXPECT_EQ(hist.quantile(0.5), 3u);
  EXPECT_EQ(hist.quantile(1.0), 1'000'000u);
}

TEST(StatSet, SetGetAdd) {
  StatSet stats;
  stats.set("a", 1.0);
  stats.add("a", 2.0);
  EXPECT_DOUBLE_EQ(stats.get("a"), 3.0);
  EXPECT_DOUBLE_EQ(stats.get("missing"), 0.0);
  EXPECT_TRUE(stats.contains("a"));
  EXPECT_FALSE(stats.contains("missing"));
}

TEST(StatSet, RendersCsv) {
  StatSet stats;
  stats.set("x", 2.0);
  EXPECT_NE(stats.to_csv().find("x,2"), std::string::npos);
  EXPECT_NE(stats.to_string().find("x"), std::string::npos);
}

TEST(StatSet, JsonRoundTripsEveryValue) {
  StatSet stats;
  stats.set("alpha", 1.5);
  stats.set("big", 1234567890.0);
  stats.set("neg", -0.25);
  stats.set("zero", 0.0);
  const std::string json = stats.to_json();
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  for (const char* key : {"alpha", "big", "neg", "zero"}) {
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = json.find(needle);
    ASSERT_NE(at, std::string::npos) << key << " in " << json;
    const double parsed =
        std::strtod(json.c_str() + at + needle.size(), nullptr);
    EXPECT_DOUBLE_EQ(parsed, stats.get(key)) << key;
  }
}

// ----------------------------------------------------------------- config
TEST(Config, DefaultsMatchTable1) {
  SimConfig config;
  EXPECT_EQ(config.cores, 8u);
  EXPECT_DOUBLE_EQ(config.cpu_ghz, 3.3);
  EXPECT_EQ(config.spm_bytes, 1u << 20);
  EXPECT_EQ(config.hmc_links, 4u);
  EXPECT_EQ(config.hmc_capacity, 8ull << 30);
  EXPECT_EQ(config.row_bytes, 256u);
  EXPECT_EQ(config.arq_entries, 32u);
  EXPECT_EQ(config.arq_entry_bytes, 64u);
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, DerivedQuantities) {
  SimConfig config;
  EXPECT_EQ(config.flits_per_row(), 16u);
  EXPECT_EQ(config.builder_groups(), 4u);
  EXPECT_EQ(config.flits_per_group(), 4u);
  EXPECT_EQ(config.total_banks(), 512u);
  // Sec. 5.3.3: (64 - 8 - 2) / 4.5 = 12 targets per 64 B entry.
  EXPECT_EQ(config.max_targets_per_entry(), 12u);
}

TEST(Config, NsCycleConversion) {
  SimConfig config;
  EXPECT_EQ(config.ns_to_cycles(93.0), 307u);  // Table 1 HMC latency
  EXPECT_NEAR(config.cycles_to_ns(307), 93.0, 0.1);
}

TEST(Config, ParseOverrides) {
  SimConfig config;
  config.parse_override_string("arq_entries=64,cores=4 cpu_ghz=2.0");
  EXPECT_EQ(config.arq_entries, 64u);
  EXPECT_EQ(config.cores, 4u);
  EXPECT_DOUBLE_EQ(config.cpu_ghz, 2.0);
}

TEST(Config, RowBytesOverrideAdjustsBuilderMax) {
  SimConfig config;
  config.parse_override_string("row_bytes=1024");
  EXPECT_EQ(config.builder_max_bytes, 1024u);
  EXPECT_NO_THROW(config.validate());
}

TEST(Config, RejectsUnknownKey) {
  SimConfig config;
  EXPECT_THROW(config.parse_override_string("bogus=1"), ConfigError);
}

TEST(Config, RejectsMalformedPair) {
  SimConfig config;
  EXPECT_THROW(config.parse_override_string("oops"), ConfigError);
  EXPECT_THROW(config.parse_override_string("=3"), ConfigError);
  EXPECT_THROW(config.parse_override_string("cores=abc"), ConfigError);
}

TEST(Config, ValidateCatchesBadGeometry) {
  SimConfig config;
  config.row_bytes = 100;  // not a power of two
  EXPECT_THROW(config.validate(), ConfigError);

  config = SimConfig{};
  config.vaults = 3;
  EXPECT_THROW(config.validate(), ConfigError);

  config = SimConfig{};
  config.hmc_links = 64;  // more links than vaults
  EXPECT_THROW(config.validate(), ConfigError);

  config = SimConfig{};
  config.builder_min_bytes = 24;
  EXPECT_THROW(config.validate(), ConfigError);

  config = SimConfig{};
  config.arq_entries = 1;
  EXPECT_THROW(config.validate(), ConfigError);
}

TEST(Config, TableRenderMentionsKeyParameters) {
  SimConfig config;
  const std::string table = config.to_table();
  EXPECT_NE(table.find("3.3 GHz"), std::string::npos);
  EXPECT_NE(table.find("32 entries"), std::string::npos);
  EXPECT_NE(table.find("256B-block"), std::string::npos);
}

// ---------------------------------------------------------- flat_cycle_map
TEST(FlatCycleMap, PutTakeRoundTrip) {
  FlatCycleMap map;
  EXPECT_TRUE(map.empty());
  map.put(request_key(3, 7), 100);
  map.put(request_key(3, 8), 200);
  EXPECT_EQ(map.size(), 2u);
  EXPECT_EQ(map.take(request_key(3, 7), 0), 100u);
  EXPECT_EQ(map.take(request_key(3, 7), 55), 55u);  // already removed
  EXPECT_EQ(map.take(request_key(9, 9), 55), 55u);  // never inserted
  EXPECT_EQ(map.size(), 1u);
}

// Regression: put() must probe for the key before the load-factor check.
// The original order grew the table on every update once the map sat at
// the load-factor boundary — a spurious rehash per update, and the probe
// slot the update was standing on became stale.
TEST(FlatCycleMap, UpdateAtLoadFactorBoundaryDoesNotGrow) {
  FlatCycleMap map;
  // 12 distinct keys fill a 16-slot table right up to the 3/4 boundary:
  // one more *distinct* key must grow, but updates never may.
  for (std::uint64_t k = 0; k < 12; ++k) map.put(request_key(1, Tag(k)), k);
  ASSERT_EQ(map.capacity(), 16u);
  ASSERT_EQ(map.size(), 12u);
  for (std::uint64_t k = 0; k < 12; ++k) {
    map.put(request_key(1, Tag(k)), 1000 + k);  // in-place update
    EXPECT_EQ(map.capacity(), 16u) << "update of key " << k << " rehashed";
  }
  EXPECT_EQ(map.size(), 12u);
  for (std::uint64_t k = 0; k < 12; ++k) {
    EXPECT_EQ(map.take(request_key(1, Tag(k)), 0), 1000 + k);
  }
  // The 13th distinct key is the one that grows.
  for (std::uint64_t k = 0; k < 12; ++k) map.put(request_key(1, Tag(k)), k);
  map.put(request_key(2, 0), 99);
  EXPECT_EQ(map.capacity(), 32u);
  EXPECT_EQ(map.size(), 13u);
}

// ---------------------------------------------------------------- ring_queue
TEST(RingQueue, FifoOrderAcrossGrowth) {
  RingQueue<int> queue;
  for (int i = 0; i < 100; ++i) queue.push_back(i);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(queue.front(), i);
    EXPECT_EQ(queue.at(0), i);
    queue.pop_front();
  }
  EXPECT_TRUE(queue.empty());
}

TEST(RingQueue, GrowWithWrappedContentsKeepsOrder) {
  // Drive head_ past the middle of the ring, then force a grow() while
  // the live span wraps around the buffer end (head > tail internally).
  RingQueue<int> queue;
  for (int i = 0; i < 16; ++i) queue.push_back(i);     // fill to capacity
  for (int i = 0; i < 12; ++i) queue.pop_front();      // head_ = 12
  for (int i = 16; i < 28; ++i) queue.push_back(i);    // wraps, full again
  queue.push_back(28);                                 // grow() with wrap
  ASSERT_EQ(queue.size(), 17u);
  for (int i = 12; i <= 28; ++i) {
    EXPECT_EQ(queue.front(), i);
    queue.pop_front();
  }
}

// ------------------------------------------------------------- request_key
TEST(RequestKey, LanesNeverAlias) {
  // Each component owns a full 32-bit lane; the packed key must
  // round-trip both halves even at the extremes of their types. (The
  // 16-bit-shift pack this replaced aliased (tid, tag) pairs as soon as
  // a tag outgrew 16 bits.)
  const ThreadId tids[] = {0, 1, 0x7FFF, 0xFFFF};
  const Tag tags[] = {0, 1, 0x7FFF, 0xFFFF};
  std::set<std::uint64_t> seen;
  for (const ThreadId tid : tids) {
    for (const Tag tag : tags) {
      const std::uint64_t key = request_key(tid, tag);
      EXPECT_EQ(key >> 32, static_cast<std::uint64_t>(tid));
      EXPECT_EQ(key & 0xFFFFFFFFull, static_cast<std::uint64_t>(tag));
      EXPECT_TRUE(seen.insert(key).second)
          << "alias at tid=" << tid << " tag=" << tag;
    }
  }
  // Compile-time: the widest tag cannot spill into the tid lane.
  static_assert(request_key(0, 0xFFFF) != request_key(1, 0));
  static_assert(request_key(0xFFFF, 0xFFFF) == 0xFFFF0000FFFFull);
}

// --------------------------------------------------------- coalescer policy
TEST(CoalescerPolicyNames, RoundTripAndRejectUnknown) {
  for (const CoalescerPolicy policy :
       {CoalescerPolicy::kRaw, CoalescerPolicy::kMac, CoalescerPolicy::kMshr,
        CoalescerPolicy::kWarp}) {
    CoalescerPolicy parsed = CoalescerPolicy::kMac;
    EXPECT_TRUE(parse_policy(to_string(policy), parsed));
    EXPECT_EQ(parsed, policy);
  }
  CoalescerPolicy parsed = CoalescerPolicy::kMshr;
  EXPECT_FALSE(parse_policy("simd", parsed));
  EXPECT_EQ(parsed, CoalescerPolicy::kMshr);  // untouched on failure
}

TEST(Config, PolicyOverrideRoundTrip) {
  SimConfig config;
  EXPECT_EQ(config.policy, CoalescerPolicy::kMac);
  config.parse_override_string("policy=warp");
  EXPECT_EQ(config.policy, CoalescerPolicy::kWarp);
  // to_kv emits the policy as a quoted JSON string token (run reports
  // embed config values raw); parsing must accept its own output.
  EXPECT_EQ(config.to_kv().at("policy"), "\"warp\"");
  config.parse_override_string("policy=\"mshr\"");
  EXPECT_EQ(config.policy, CoalescerPolicy::kMshr);
  EXPECT_THROW(config.parse_override_string("policy=simd"), ConfigError);
  EXPECT_EQ(config.policy, CoalescerPolicy::kMshr);
}

TEST(Config, WarpKnobsValidate) {
  SimConfig config;
  config.policy = CoalescerPolicy::kWarp;
  config.validate();  // defaults are legal
  config.warp_lanes = 0;
  EXPECT_THROW(config.validate(), ConfigError);
  config.warp_lanes = 8;
  config.warp_block_bytes = 48;  // not a power of two
  EXPECT_THROW(config.validate(), ConfigError);
  config.warp_block_bytes = 512;  // beyond the 256 B packet ceiling
  EXPECT_THROW(config.validate(), ConfigError);
  config.warp_block_bytes = 64;
  config.warp_window_cycles = 0;
  EXPECT_THROW(config.validate(), ConfigError);
}

}  // namespace
}  // namespace mac3d
