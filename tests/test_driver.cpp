// Unit tests: the streaming / closed-loop drivers and the cross-path
// comparison metrics over identical traces.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/driver.hpp"
#include "sim/metrics.hpp"
#include "sim/tag_allocator.hpp"
#include "workloads/all.hpp"

namespace mac3d {
namespace {

MemoryTrace shared_row_trace(std::uint32_t threads, std::uint32_t rows) {
  MemoryTrace trace(threads);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      trace.instr(static_cast<ThreadId>(t), 2);
      trace.load(static_cast<ThreadId>(t),
                 static_cast<Address>(r) * 256 + (t % 16) * 16);
    }
  }
  return trace;
}

MemoryTrace random_trace(std::uint32_t threads, std::uint32_t per_thread) {
  MemoryTrace trace(threads);
  Xoshiro256 rng(123);
  for (std::uint32_t i = 0; i < per_thread; ++i) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      trace.instr(static_cast<ThreadId>(t), 2);
      trace.load(static_cast<ThreadId>(t), rng.below(1ull << 30) & ~0xFULL);
    }
  }
  return trace;
}

TEST(Driver, RawPathIssuesOnePacketPerRequest) {
  SimConfig config;
  const MemoryTrace trace = shared_row_trace(4, 50);
  const DriverResult raw = run_raw(trace, config, 4);
  EXPECT_EQ(raw.raw_requests, 200u);
  EXPECT_EQ(raw.packets, 200u);
  EXPECT_EQ(raw.completions, 200u);
  EXPECT_DOUBLE_EQ(raw.coalescing_efficiency(), 0.0);
  EXPECT_NEAR(raw.bandwidth_efficiency(), 1.0 / 3.0, 1e-9);
}

TEST(Driver, MacPathCoalescesSharedRows) {
  SimConfig config;
  const MemoryTrace trace = shared_row_trace(8, 200);
  const DriverResult mac = run_mac(trace, config, 8);
  EXPECT_EQ(mac.raw_requests, 1600u);
  EXPECT_EQ(mac.completions, 1600u);
  EXPECT_LT(mac.packets, 1600u);
  EXPECT_GT(mac.coalescing_efficiency(), 0.4);
  EXPECT_GT(mac.avg_targets_per_entry, 1.5);
  EXPECT_GT(mac.bandwidth_efficiency(), 1.0 / 3.0);
}

TEST(Driver, RandomTraceBarelyCoalesces) {
  SimConfig config;
  const MemoryTrace trace = random_trace(8, 200);
  const DriverResult mac = run_mac(trace, config, 8);
  EXPECT_LT(mac.coalescing_efficiency(), 0.1);
  // Everything bypasses as single-FLIT requests.
  EXPECT_NEAR(mac.bandwidth_efficiency(), 1.0 / 3.0, 0.05);
}

TEST(Driver, MacNeverIncreasesPacketsOrConflicts) {
  SimConfig config;
  for (const Workload* workload :
       {sg_workload(), mg_workload(), gap_bfs_workload()}) {
    WorkloadParams params;
    params.threads = 4;
    params.scale = 0.05;
    params.config = config;
    const MemoryTrace trace = workload->trace(params);
    const DriverResult raw = run_raw(trace, config, 4);
    const DriverResult mac = run_mac(trace, config, 4);
    EXPECT_LE(mac.packets, raw.packets) << workload->name();
    EXPECT_LE(mac.bank_conflicts, raw.bank_conflicts) << workload->name();
    // Note: link *bytes* may grow — a sparse span pads unrequested FLITs
    // into the packet (the Sec. 4.2 trade-off) — but control overhead
    // always shrinks with the packet count.
    EXPECT_LE(mac.overhead_bytes, raw.overhead_bytes) << workload->name();
    EXPECT_EQ(mac.completions, raw.completions) << workload->name();
  }
}

TEST(Driver, MshrPathDispatchesFixedBlocks) {
  SimConfig config;
  const MemoryTrace trace = shared_row_trace(8, 100);
  const DriverResult mshr = run_mshr(trace, config, 8, 32, 64);
  EXPECT_EQ(mshr.completions, 800u);
  EXPECT_GT(mshr.coalescing_efficiency(), 0.0);
  // All packets are 64 B.
  ASSERT_EQ(mshr.packets_by_size.size(), 1u);
  EXPECT_EQ(mshr.packets_by_size.begin()->first, 64u);
}

TEST(Driver, WarpPathCoalescesAdjacentLanes) {
  // Warp-adjacent accesses: lane t of each step touches consecutive
  // FLITs of one block, the canonical fully-coalescable SIMT pattern.
  SimConfig config;
  MemoryTrace trace(8);
  for (std::uint32_t step = 0; step < 200; ++step) {
    for (std::uint32_t t = 0; t < 8; ++t) {
      trace.instr(static_cast<ThreadId>(t), 2);
      trace.load(static_cast<ThreadId>(t),
                 static_cast<Address>(step) * 128 + t * 16);
    }
  }
  const DriverResult warp = run_warp(trace, config, 8);
  EXPECT_EQ(warp.raw_requests, 1600u);
  EXPECT_EQ(warp.completions, 1600u);
  // Eight same-block lanes per window merge into few iterations.
  EXPECT_LT(warp.packets, warp.raw_requests / 2);
  EXPECT_GT(warp.coalescing_efficiency(), 0.5);
}

TEST(Driver, WarpPathDivergedLanesBarelyCoalesce) {
  SimConfig config;
  const MemoryTrace trace = random_trace(8, 300);
  const DriverResult warp = run_warp(trace, config, 8);
  EXPECT_EQ(warp.completions, warp.raw_requests);
  // Random addresses diverge: nearly one packet per lane.
  EXPECT_GT(warp.packets, warp.raw_requests * 9 / 10);
}

TEST(Driver, RunPolicyDispatchesToTheMatchingPath) {
  SimConfig config;
  const MemoryTrace trace = shared_row_trace(8, 100);
  const auto json = [&](const DriverResult& result) {
    StatSet stats;
    result.collect(stats, "path");
    return stats.to_json();
  };
  EXPECT_EQ(json(run_policy(CoalescerPolicy::kRaw, trace, config, 8)),
            json(run_raw(trace, config, 8)));
  EXPECT_EQ(json(run_policy(CoalescerPolicy::kMac, trace, config, 8)),
            json(run_mac(trace, config, 8)));
  EXPECT_EQ(json(run_policy(CoalescerPolicy::kMshr, trace, config, 8)),
            json(run_mshr(trace, config, 8, config.mshr_entries,
                          config.mshr_block_bytes)));
  EXPECT_EQ(json(run_policy(CoalescerPolicy::kWarp, trace, config, 8)),
            json(run_warp(trace, config, 8)));
}

TEST(Driver, LaneGroupFeedCompletesEverythingOnEveryPath) {
  SimConfig config;
  config.warp_lanes = 4;
  const MemoryTrace trace = shared_row_trace(8, 60);
  DriveOptions options;
  options.mode = FeedMode::kLaneGroup;
  for (const CoalescerPolicy policy :
       {CoalescerPolicy::kRaw, CoalescerPolicy::kMac, CoalescerPolicy::kMshr,
        CoalescerPolicy::kWarp}) {
    const DriverResult result = run_policy(policy, trace, config, 8, options);
    EXPECT_EQ(result.raw_requests, 480u) << to_string(policy);
    EXPECT_EQ(result.completions, 480u) << to_string(policy);
    EXPECT_GT(result.makespan, 0u) << to_string(policy);
  }
}

TEST(Driver, LaneGroupFeedKeepsLanesInLockstep) {
  // In lockstep the warp policy sees all of a group's same-step requests
  // back-to-back, so the canonical SIMT pattern coalesces at least as
  // well as under free streaming.
  SimConfig config;
  MemoryTrace trace(8);
  for (std::uint32_t step = 0; step < 150; ++step) {
    for (std::uint32_t t = 0; t < 8; ++t) {
      trace.instr(static_cast<ThreadId>(t), 2);
      trace.load(static_cast<ThreadId>(t),
                 static_cast<Address>(step) * 128 + t * 16);
    }
  }
  DriveOptions lockstep;
  lockstep.mode = FeedMode::kLaneGroup;
  const DriverResult grouped = run_warp(trace, config, 8, lockstep);
  const DriverResult streamed = run_warp(trace, config, 8);
  EXPECT_EQ(grouped.completions, grouped.raw_requests);
  EXPECT_GE(grouped.coalescing_efficiency(),
            streamed.coalescing_efficiency());
}

TEST(Driver, MacAdaptsPacketSizesBeyondTheMshrCap) {
  // Sec. 2.3: the MSHR baseline is capped at fixed 64 B packets; the MAC
  // adapts the transaction size up to the full row. (The whole-suite
  // comparison lives in bench/ablation_mshr_vs_mac.)
  SimConfig config;
  const MemoryTrace trace = shared_row_trace(16, 300);
  const DriverResult mac = run_mac(trace, config, 16);
  const DriverResult mshr = run_mshr(trace, config, 16, 32, 64);
  std::uint64_t mac_large = 0;
  for (const auto& [size, count] : mac.packets_by_size) {
    if (size > 64) mac_large += count;
  }
  EXPECT_GT(mac_large, 0u);
  ASSERT_EQ(mshr.packets_by_size.size(), 1u);
  EXPECT_EQ(mshr.packets_by_size.begin()->first, 64u);
  EXPECT_EQ(mac.completions, mshr.completions);
}

TEST(Driver, ClosedLoopModeCompletesEverything) {
  SimConfig config;
  const MemoryTrace trace = shared_row_trace(4, 50);
  DriveOptions options;
  options.mode = FeedMode::kClosedLoop;
  const DriverResult mac = run_mac(trace, config, 4, options);
  EXPECT_EQ(mac.completions, 200u);
  EXPECT_GT(mac.makespan, 0u);
}

TEST(Driver, GapChargingSlowsArrivalButChangesNoCounts) {
  SimConfig config;
  MemoryTrace trace(2);
  for (int i = 0; i < 50; ++i) {
    trace.instr(0, 200);
    trace.load(0, static_cast<Address>(i) * 256);
    trace.instr(1, 200);
    trace.load(1, static_cast<Address>(i) * 256 + 16);
  }
  DriveOptions paced;
  DriveOptions unpaced;
  unpaced.charge_gaps = false;
  const DriverResult slow = run_mac(trace, config, 2, paced);
  const DriverResult fast = run_mac(trace, config, 2, unpaced);
  EXPECT_EQ(slow.completions, fast.completions);
  EXPECT_GT(slow.makespan, fast.makespan);
}

TEST(Driver, SpeedupMetricsAreConsistent) {
  SimConfig config;
  const MemoryTrace trace = shared_row_trace(8, 300);
  const DriverResult raw = run_raw(trace, config, 8);
  const DriverResult mac = run_mac(trace, config, 8);
  const double speedup = memory_speedup(raw, mac);
  EXPECT_GT(speedup, 0.0);
  EXPECT_LT(speedup, 1.0);
  EXPECT_GT(bank_conflict_reduction(raw, mac), 0u);
  EXPECT_GT(bandwidth_saving_bytes(raw, mac), 0u);
}

TEST(Driver, DeterministicAcrossRuns) {
  SimConfig config;
  const MemoryTrace trace = random_trace(4, 100);
  const DriverResult a = run_mac(trace, config, 4);
  const DriverResult b = run_mac(trace, config, 4);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.bank_conflicts, b.bank_conflicts);
  EXPECT_EQ(a.link_bytes, b.link_bytes);
}

TEST(Metrics, GeomeanAndMean) {
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-9);
  EXPECT_EQ(geomean({}), 0.0);
}

// ------------------------------------------- streaming-feeder tag pools

TEST(TagAllocator, FullSpaceHandsOutSequentialTagsLikeTheOldCursor) {
  TagAllocator tags(0);  // full 2 B tag space
  EXPECT_EQ(tags.available(), true);
  for (std::uint32_t i = 0; i < 100; ++i) {
    EXPECT_EQ(tags.peek(), static_cast<Tag>(i));
    EXPECT_EQ(tags.allocate(), static_cast<Tag>(i));
  }
  EXPECT_EQ(tags.outstanding(), 100u);
  EXPECT_EQ(tags.high_water(), 100u);
}

TEST(TagAllocator, ExhaustionBlocksUntilATagIsReleased) {
  TagAllocator tags(4);
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(tags.available());
    (void)tags.allocate();
  }
  EXPECT_FALSE(tags.available());  // the feeder stalls this thread here
  tags.release(2);
  ASSERT_TRUE(tags.available());
  EXPECT_EQ(tags.peek(), static_cast<Tag>(2));  // recycled, FIFO
  EXPECT_EQ(tags.allocate(), static_cast<Tag>(2));
  EXPECT_FALSE(tags.available());
  EXPECT_EQ(tags.high_water(), 4u);
}

TEST(TagAllocator, RecycleOrderIsFifo) {
  TagAllocator tags(3);
  (void)tags.allocate();  // 0
  (void)tags.allocate();  // 1
  (void)tags.allocate();  // 2
  tags.release(1);
  tags.release(0);
  EXPECT_EQ(tags.allocate(), static_cast<Tag>(1));  // released first
  EXPECT_EQ(tags.allocate(), static_cast<Tag>(0));
  EXPECT_EQ(tags.allocated(), 5u);
  EXPECT_EQ(tags.released(), 2u);
  EXPECT_EQ(tags.outstanding(), 3u);
}

TEST(TagAllocator, PeekIsStableAcrossRejectedAttempts) {
  // The feeder peeks a tag, stamps the request, and only allocates on
  // accept — a path rejection must not burn the tag.
  TagAllocator tags(8);
  EXPECT_EQ(tags.peek(), static_cast<Tag>(0));
  EXPECT_EQ(tags.peek(), static_cast<Tag>(0));
  EXPECT_EQ(tags.allocate(), static_cast<Tag>(0));
  EXPECT_EQ(tags.peek(), static_cast<Tag>(1));
}

TEST(TagPool, TinyPoolStillCompletesEveryRequest) {
  SimConfig config;
  const MemoryTrace trace = random_trace(4, 300);
  DriveOptions options;
  options.tag_pool = 2;  // two outstanding requests per thread
  const DriverResult mac = run_mac(trace, config, 4, options);
  const DriverResult raw = run_raw(trace, config, 4, options);
  EXPECT_EQ(mac.completions, trace.size());
  EXPECT_EQ(raw.completions, trace.size());
}

TEST(TagPool, SmallerPoolsNeverFinishEarlier) {
  SimConfig config;
  const MemoryTrace trace = random_trace(4, 300);
  Cycle previous = 0;
  for (const std::uint32_t pool : {0u, 16u, 4u, 1u}) {  // descending depth
    DriveOptions options;
    options.tag_pool = pool;
    const DriverResult mac = run_mac(trace, config, 4, options);
    EXPECT_EQ(mac.completions, trace.size()) << "pool " << pool;
    EXPECT_GE(mac.makespan, previous) << "pool " << pool;
    previous = mac.makespan;
  }
}

TEST(TagPool, FullSpacePoolMatchesHistoricalDefaultBitForBit) {
  // tag_pool = 0 must reproduce the pre-allocator behavior (sequential
  // tags, stall only when a tag is still in flight 2^16 requests later).
  SimConfig config;
  const MemoryTrace trace = random_trace(8, 200);
  DriveOptions defaults;
  DriveOptions full;
  full.tag_pool = 0;
  const DriverResult a = run_mac(trace, config, 8, defaults);
  const DriverResult b = run_mac(trace, config, 8, full);
  StatSet sa;
  StatSet sb;
  a.collect(sa, "mac");
  b.collect(sb, "mac");
  EXPECT_EQ(sa.to_json(), sb.to_json());
}

}  // namespace
}  // namespace mac3d
