// Self-profiling subsystem (docs/OBSERVABILITY.md §profiler):
//  * ActivityCensus accounting on hand-built activity patterns — gap
//    cycles book as idle, observe() is idempotent per cycle, the feeder
//    row follows mark_feeder, seal() keeps counts, and the export lands
//    in the metrics registry under <name>.{active,idle}_cycles;
//  * LatencyDecomposer residency histograms against analytic values,
//    the critical-stage attribution (argmax residency, earliest stage
//    wins ties) and the transparent downstream tee;
//  * empty-stream / zero-request edge cases;
//  * census exports are byte-identical between System::run and
//    System::run_parallel;
//  * attaching census/decomposer/profiler never perturbs simulated
//    results (and the subsystem is inert under -DMAC3D_OBS=OFF).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "arch/system.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "obs/latency.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "sim/driver.hpp"
#include "trace/trace.hpp"

namespace mac3d {
namespace {

/// Small deterministic trace: strided loads across `threads` threads.
MemoryTrace small_trace(std::uint32_t threads, std::uint32_t per_thread) {
  MemoryTrace trace(threads);
  for (std::uint32_t i = 0; i < per_thread; ++i) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      trace.instr(static_cast<ThreadId>(t), 2);
      trace.load(static_cast<ThreadId>(t),
                 (static_cast<Address>(i) * threads + t) * 64);
    }
  }
  return trace;
}

// ----------------------------------------------------------- ActivityCensus

TEST(ActivityCensus, CountsActiveAndIdleWithGapCycles) {
  ActivityCensus census;
  census.add_component("even", [](Cycle now) { return now % 2 == 0; });
  census.add_component("never", [](Cycle) { return false; });
  for (Cycle now = 0; now < 4; ++now) census.observe(now);
  census.observe(3);  // idempotent: the cycle is already accounted
  census.observe(9);  // forward jump: 4..8 book as idle for everyone

  EXPECT_EQ(census.observed_cycles(), 10u);
  const auto& rows = census.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].name, "even");
  EXPECT_EQ(rows[0].active_cycles, 2u);  // probed active at 0 and 2 only
  EXPECT_EQ(rows[0].idle_cycles, 8u);
  EXPECT_EQ(rows[1].active_cycles, 0u);
  EXPECT_EQ(rows[1].idle_cycles, 10u);
  EXPECT_DOUBLE_EQ(census.dead_time_fraction(), 18.0 / 20.0);
}

TEST(ActivityCensus, SkipToCreditsRangeProbesExactly) {
  ActivityCensus census;
  // Threshold-form probe, like a bank busy-until: active while now < 7.
  census.add_component(
      "bank", [](Cycle now) { return now < 7; },
      [](Cycle first, Cycle last) -> std::uint64_t {
        if (first >= 7) return 0;
        const Cycle end = last < 6 ? last : 6;
        return end - first + 1;
      });
  // Plain 2-arg component: skipped spans book as idle.
  census.add_component("idle_unit", [](Cycle) { return false; });

  census.observe(0);   // both probed at 0: bank active, idle_unit idle
  census.skip_to(10);  // span 1..9: bank active 1..6 (6), idle 7..9 (3)
  census.observe(10);  // landing cycle probed normally (bank now idle)

  EXPECT_EQ(census.observed_cycles(), 11u);
  const auto& rows = census.rows();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].active_cycles, 7u);  // cycle 0 + span cycles 1..6
  EXPECT_EQ(rows[0].idle_cycles, 4u);    // 7..9 + landing cycle 10
  EXPECT_EQ(rows[1].active_cycles, 0u);
  EXPECT_EQ(rows[1].idle_cycles, 11u);
}

TEST(ActivityCensus, SkipToEdgeCases) {
  ActivityCensus census;
  std::uint64_t range_calls = 0;
  census.add_component(
      "unit", [](Cycle) { return false; },
      [&range_calls](Cycle first, Cycle last) -> std::uint64_t {
        ++range_calls;
        // Over-reporting probes are clamped to the span length.
        return (last - first + 1) * 100;
      });
  census.add_feeder("feeder");

  census.observe(0);
  census.skip_to(1);  // next == first unobserved cycle: a no-op
  EXPECT_EQ(census.observed_cycles(), 1u);
  EXPECT_EQ(range_calls, 0u);

  census.skip_to(5);  // span 1..4
  EXPECT_EQ(census.observed_cycles(), 5u);
  EXPECT_EQ(range_calls, 1u);
  const auto& rows = census.rows();
  // Clamp: the probe claimed 400 active cycles for a 4-cycle span.
  EXPECT_EQ(rows[0].active_cycles, 4u);
  EXPECT_EQ(rows[0].idle_cycles, 1u);
  // The feeder row never runs a range probe: skipped spans are idle
  // (nothing was fed during a span nobody visited).
  EXPECT_EQ(rows[1].active_cycles, 0u);
  EXPECT_EQ(rows[1].idle_cycles, 5u);

  // skip_to on a fresh census starts the clock at cycle 0.
  ActivityCensus fresh;
  fresh.add_component("unit", [](Cycle) { return true; });
  fresh.skip_to(3);  // books 0..2, idle (no range probe)
  EXPECT_EQ(fresh.observed_cycles(), 3u);
  EXPECT_EQ(fresh.rows()[0].idle_cycles, 3u);
}

TEST(ActivityCensus, FeederRowFollowsMarkFeeder) {
  ActivityCensus census;
  census.add_feeder("node0.feeder");
  census.mark_feeder(0);
  census.observe(0);
  census.observe(1);  // not marked: idle
  census.mark_feeder(2);
  census.observe(2);

  const auto& rows = census.rows();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].active_cycles, 2u);
  EXPECT_EQ(rows[0].idle_cycles, 1u);
}

TEST(ActivityCensus, SealKeepsCountsAndExportLandsInRegistry) {
  ActivityCensus census;
  {
    // The probed component dies before the export: seal() first.
    const bool alive = true;
    census.add_component("node0.mac", [&alive](Cycle) { return alive; });
    census.observe(0);
    census.observe(1);
    census.seal();
  }
  ASSERT_EQ(census.rows().size(), 1u);
  EXPECT_EQ(census.rows()[0].active_cycles, 2u);

  MetricsRegistry registry;
  census.export_metrics(registry);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("node0.mac.active_cycles"), std::string::npos) << json;
  EXPECT_NE(json.find("node0.mac.idle_cycles"), std::string::npos) << json;

  // The table and JSON renderings carry the same counts.
  EXPECT_NE(census.to_table().find("node0.mac"), std::string::npos);
  EXPECT_NE(census.to_json().find("\"active_cycles\": 2"), std::string::npos);
}

// -------------------------------------------------------- LatencyDecomposer

TEST(LatencyDecomposer, ResidencyMatchesAnalyticDeltas) {
  LatencyDecomposer decomposer;
  // Three requests: queue_insert -> bank_access after d cycles ->
  // core_complete 5 cycles later. Residency[queue_insert] must hold
  // exactly {10, 20, 40}; residency[bank_access] exactly {5, 5, 5}.
  Tag tag = 0;
  for (const Cycle d : {10u, 20u, 40u}) {
    decomposer.on_stage(Stage::kQueueInsert, 0, tag, 100);
    decomposer.on_stage(Stage::kBankAccess, 0, tag, 100 + d);
    decomposer.on_stage(Stage::kCoreComplete, 0, tag, 100 + d + 5);
    ++tag;
  }

  EXPECT_EQ(decomposer.completed_requests(), 3u);
  EXPECT_EQ(decomposer.open_requests(), 0u);
  const Histogram& queue = decomposer.stage_residency(Stage::kQueueInsert);
  ASSERT_EQ(queue.count(), 3u);
  EXPECT_EQ(queue.quantile(0.0), 10u);  // exact min
  EXPECT_EQ(queue.quantile(1.0), 40u);  // exact max
  EXPECT_GE(queue.quantile(0.5), 10u);
  EXPECT_LE(queue.quantile(0.5), 40u);
  const Histogram& bank = decomposer.stage_residency(Stage::kBankAccess);
  ASSERT_EQ(bank.count(), 3u);
  EXPECT_EQ(bank.quantile(0.0), 5u);
  EXPECT_EQ(bank.quantile(1.0), 5u);
  // The terminal stage accrues no residency.
  EXPECT_EQ(decomposer.stage_residency(Stage::kCoreComplete).count(), 0u);

  // Critical attribution: queue_insert (>= 10 cycles) dominates every
  // request over bank_access (5 cycles).
  EXPECT_EQ(decomposer.critical_count(Stage::kQueueInsert), 3u);
  EXPECT_EQ(decomposer.critical_count(Stage::kBankAccess), 0u);
}

TEST(LatencyDecomposer, CriticalTieGoesToTheEarliestStage) {
  LatencyDecomposer decomposer;
  decomposer.on_stage(Stage::kQueueInsert, 1, 7, 0);
  decomposer.on_stage(Stage::kBankAccess, 1, 7, 8);    // residency 8
  decomposer.on_stage(Stage::kCoreComplete, 1, 7, 16);  // residency 8
  EXPECT_EQ(decomposer.critical_count(Stage::kQueueInsert), 1u);
  EXPECT_EQ(decomposer.critical_count(Stage::kBankAccess), 0u);
}

TEST(LatencyDecomposer, ForwardsEveryEventDownstream) {
  struct CountingSink final : EventSink {
    void on_stage(Stage, ThreadId, Tag, Cycle) override { ++stages; }
    void on_merge(ThreadId, Tag, ThreadId, Tag, Cycle) override { ++merges; }
    void on_hop(Hop, ThreadId, Tag, NodeId, NodeId, Cycle) override {
      ++hops;
    }
    int stages = 0;
    int merges = 0;
    int hops = 0;
  } downstream;
  LatencyDecomposer decomposer(&downstream);
  decomposer.on_stage(Stage::kCoreIssue, 0, 1, 10);
  decomposer.on_merge(0, 1, 0, 2, 11);
  decomposer.on_hop(Hop::kRequestSend, 0, 1, 0, 1, 12);
  EXPECT_EQ(downstream.stages, 1);
  EXPECT_EQ(downstream.merges, 1);
  EXPECT_EQ(downstream.hops, 1);
}

TEST(LatencyDecomposer, EmptyStreamAndZeroRequestEdgeCases) {
  LatencyDecomposer decomposer;
  EXPECT_EQ(decomposer.completed_requests(), 0u);
  EXPECT_EQ(decomposer.open_requests(), 0u);
  EXPECT_NE(decomposer.to_json().find("\"requests\""), std::string::npos);
  EXPECT_FALSE(decomposer.to_table().empty());

  // A request that never completes stays open and books no residency.
  decomposer.on_stage(Stage::kQueueInsert, 3, 9, 50);
  EXPECT_EQ(decomposer.open_requests(), 1u);
  EXPECT_EQ(decomposer.completed_requests(), 0u);
  EXPECT_EQ(decomposer.stage_residency(Stage::kQueueInsert).count(), 0u);

  ActivityCensus census;
  EXPECT_EQ(census.observed_cycles(), 0u);
  EXPECT_DOUBLE_EQ(census.dead_time_fraction(), 0.0);
  EXPECT_FALSE(census.to_table().empty());
}

// ------------------------------------------------------------- HostProfiler

TEST(HostProfiler, PhaseScopesAndWorkerImbalance) {
  HostProfiler profiler;
  { HostProfiler::Scope scope(&profiler, HostPhase::kTick); }
  EXPECT_GE(profiler.phase_seconds(HostPhase::kTick), 0.0);
  { HostProfiler::Scope scope(nullptr, HostPhase::kTick); }  // no-op

  profiler.add_phase_seconds(HostPhase::kCommit, 1.5);
  EXPECT_DOUBLE_EQ(profiler.phase_seconds(HostPhase::kCommit), 1.5);

  profiler.set_worker_count(2);
  profiler.add_worker_busy(0, 3.0);
  profiler.add_worker_busy(1, 1.0);
  profiler.add_worker_busy(7, 100.0);  // out of range: dropped
  EXPECT_DOUBLE_EQ(profiler.worker_imbalance(), 1.5);  // max 3 / mean 2

  const std::string json = profiler.to_json();
  EXPECT_NE(json.find("\"phase_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"imbalance\""), std::string::npos);

  // Zero workers / all-idle pools report 0 rather than dividing by zero.
  HostProfiler empty;
  EXPECT_DOUBLE_EQ(empty.worker_imbalance(), 0.0);
  empty.set_worker_count(3);
  EXPECT_DOUBLE_EQ(empty.worker_imbalance(), 0.0);
}

// -------------------------------------------- engine equivalence & inertness

TEST(ProfilerEquivalence, CensusExportsAreByteIdenticalAcrossEngines) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  const MemoryTrace trace = small_trace(4, 100);

  // 0 = run, 1 = run_parallel, 2 = run_event, 3 = run_event_parallel.
  const auto census_json = [&](int engine) {
    System system(config);
    system.attach_trace(trace);
    ActivityCensus census;
    system.attach_census(&census);
    SystemRunSummary summary;
    switch (engine) {
      case 0: summary = system.run(); break;
      case 1: summary = system.run_parallel(4); break;
      case 2: summary = system.run_event(); break;
      default: summary = system.run_event_parallel(4); break;
    }
    EXPECT_TRUE(summary.completed);
    census.seal();
    return census.to_json();
  };
  const std::string reference = census_json(0);
  EXPECT_EQ(reference, census_json(1));
  EXPECT_EQ(reference, census_json(2));
  EXPECT_EQ(reference, census_json(3));
}

TEST(ProfilerPerturbation, ProfiledRunsMatchUnprofiledRuns) {
  SimConfig config;
  const MemoryTrace trace = small_trace(4, 200);
  const DriveOptions plain;
  const DriverResult baseline = run_mac(trace, config, 4, plain);

  ActivityCensus census;
  HostProfiler profiler;
  LatencyDecomposer decomposer;
  DriveOptions profiled;
  profiled.sink = &decomposer;
  profiled.census = &census;
  profiled.profiler = &profiler;
  const DriverResult result = run_mac(trace, config, 4, profiled);

  StatSet expected;
  StatSet actual;
  baseline.collect(expected, "mac");
  result.collect(actual, "mac");
  EXPECT_EQ(expected.to_json(), actual.to_json());
#if MAC3D_OBS_ENABLED
  EXPECT_GT(census.observed_cycles(), 0u);
  EXPECT_GT(decomposer.completed_requests(), 0u);
#else
  // OFF build: the driver never touches the hooks, so the profiling
  // objects stay untouched (and simulated results above still match).
  EXPECT_EQ(census.observed_cycles(), 0u);
  EXPECT_EQ(decomposer.completed_requests(), 0u);
#endif
}

}  // namespace
}  // namespace mac3d
