// Unit tests: cache model (Fig. 1 substrate) and the MSHR fixed-64 B
// coalescer baseline (Sec. 2.3).
#include <gtest/gtest.h>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "common/rng.hpp"
#include "mem/hmc_device.hpp"

namespace mac3d {
namespace {

// ------------------------------------------------------------------ cache
TEST(Cache, ColdMissThenHit) {
  Cache cache(CacheConfig{"L1", 1024, 64, 2, true});
  EXPECT_FALSE(cache.access(0x100, false));
  EXPECT_TRUE(cache.access(0x100, false));
  EXPECT_TRUE(cache.access(0x13F, false));   // same 64 B line
  EXPECT_FALSE(cache.access(0x140, false));  // next line
  EXPECT_EQ(cache.stats().hits, 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(Cache, LruEvictsOldest) {
  // 2-way, 64 B lines, 2 sets -> 256 B cache; three lines mapping to set 0.
  Cache cache(CacheConfig{"L1", 256, 64, 2, true});
  cache.access(0x000, false);
  cache.access(0x100, false);
  cache.access(0x000, false);  // refresh line 0
  cache.access(0x200, false);  // evicts 0x100 (LRU)
  EXPECT_TRUE(cache.contains(0x000));
  EXPECT_FALSE(cache.contains(0x100));
  EXPECT_TRUE(cache.contains(0x200));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(Cache, DirtyEvictionCountsWriteback) {
  Cache cache(CacheConfig{"L1", 256, 64, 2, true});
  cache.access(0x000, true);   // dirty fill
  cache.access(0x100, false);
  cache.access(0x200, false);  // evicts dirty 0x000
  EXPECT_EQ(cache.stats().writebacks, 1u);
}

TEST(Cache, WriteAroundPolicySkipsFill) {
  Cache cache(CacheConfig{"L1", 256, 64, 2, false});
  cache.access(0x000, true);
  EXPECT_FALSE(cache.contains(0x000));
}

TEST(Cache, SequentialStreamMissesOncePerLine) {
  Cache cache(CacheConfig{"L1", 32 * 1024, 64, 8, true});
  for (Address a = 0; a < 8 * 1024; a += 8) cache.access(a, false);
  // 8 accesses per 64 B line: miss rate 1/8.
  EXPECT_NEAR(cache.stats().miss_rate(), 0.125, 1e-6);
}

TEST(Cache, RandomStreamOverLargeFootprintMostlyMisses) {
  Cache cache(CacheConfig{"L1", 32 * 1024, 64, 8, true});
  Xoshiro256 rng(5);
  for (int i = 0; i < 20000; ++i) {
    cache.access(rng.below(1ull << 30), false);
  }
  EXPECT_GT(cache.stats().miss_rate(), 0.95);
}

TEST(Cache, RejectsBadGeometry) {
  EXPECT_THROW(Cache(CacheConfig{"x", 1000, 64, 3, true}),
               std::invalid_argument);
  EXPECT_THROW(Cache(CacheConfig{"x", 1024, 48, 2, true}),
               std::invalid_argument);
}

TEST(CacheHierarchy, MissesFallThroughLevels) {
  CacheHierarchy hierarchy({CacheConfig{"L1", 256, 64, 2, true},
                            CacheConfig{"L2", 1024, 64, 2, true}});
  EXPECT_EQ(hierarchy.access(0x000, false), 2u);  // memory
  EXPECT_EQ(hierarchy.access(0x000, false), 0u);  // L1 hit
  // Thrash L1 set 0 (2 sets, 2 ways): lines 0x000/0x100/0x200 collide.
  hierarchy.access(0x100, false);
  hierarchy.access(0x200, false);
  EXPECT_EQ(hierarchy.access(0x000, false), 1u);  // evicted to... L2 hit
  EXPECT_GT(hierarchy.overall_miss_rate(), 0.0);
  EXPECT_LT(hierarchy.overall_miss_rate(), 1.0);
}

TEST(CacheHierarchy, ResetClearsAllLevels) {
  CacheHierarchy hierarchy({CacheConfig{"L1", 256, 64, 2, true}});
  hierarchy.access(0x0, false);
  hierarchy.reset();
  EXPECT_EQ(hierarchy.level(0).stats().accesses, 0u);
  EXPECT_EQ(hierarchy.overall_miss_rate(), 0.0);
}

// ------------------------------------------------------------------- mshr
class MshrTest : public ::testing::Test {
 protected:
  SimConfig config_;
  HmcDevice device_{config_};
  MshrCoalescer mshr_{config_, device_, 32, 64};

  void settle(Cycle& now) {
    while (!mshr_.idle()) {
      mshr_.tick(now);
      completions_ += mshr_.drain(now).size();
      const Cycle next = mshr_.next_event(now);
      now = next <= now ? now + 1 : next;
    }
  }

  std::size_t completions_ = 0;
};

TEST_F(MshrTest, MergesSameBlock) {
  Cycle now = 0;
  RawRequest a;
  a.addr = 0x1000;
  a.tid = 0;
  a.tag = 1;
  RawRequest b;
  b.addr = 0x1038;  // same 64 B block
  b.tid = 1;
  b.tag = 1;
  ASSERT_TRUE(mshr_.try_accept(a, now));
  ++now;  // merge port is per-cycle
  ASSERT_TRUE(mshr_.try_accept(b, now));
  settle(now);
  EXPECT_EQ(mshr_.stats().packets_out, 1u);
  EXPECT_EQ(mshr_.stats().merged, 1u);
  EXPECT_EQ(completions_, 2u);
}

TEST_F(MshrTest, AlwaysDispatches64B) {
  Cycle now = 0;
  for (int i = 0; i < 4; ++i) {
    RawRequest request;
    request.addr = 0xA00 + static_cast<Address>(i) * 64;
    request.tid = 0;
    request.tag = static_cast<Tag>(i);
    ASSERT_TRUE(mshr_.try_accept(request, now));
    ++now;
  }
  settle(now);
  EXPECT_EQ(mshr_.stats().packets_out, 4u);
  EXPECT_EQ(device_.stats().data_bytes, 4u * 64);
}

TEST_F(MshrTest, LoadsAndStoresDoNotMerge) {
  Cycle now = 0;
  RawRequest load;
  load.addr = 0x2000;
  load.tag = 1;
  RawRequest store = load;
  store.op = MemOp::kStore;
  store.tag = 2;
  ASSERT_TRUE(mshr_.try_accept(load, now));
  ++now;
  ASSERT_TRUE(mshr_.try_accept(store, now));
  settle(now);
  EXPECT_EQ(mshr_.stats().packets_out, 2u);
}

TEST_F(MshrTest, FenceDrainsBeforeRetiring) {
  Cycle now = 0;
  RawRequest load;
  load.addr = 0x3000;
  load.tag = 1;
  ASSERT_TRUE(mshr_.try_accept(load, now));
  RawRequest fence;
  fence.op = MemOp::kFence;
  fence.tag = 2;
  ++now;
  ASSERT_TRUE(mshr_.try_accept(fence, now));
  EXPECT_FALSE(mshr_.can_accept());  // barrier blocks intake
  settle(now);
  EXPECT_EQ(completions_, 2u);
  EXPECT_TRUE(mshr_.can_accept());
}

TEST_F(MshrTest, AtomicBypassesMerging) {
  Cycle now = 0;
  RawRequest amo;
  amo.op = MemOp::kAtomic;
  amo.addr = 0x4000;
  amo.tag = 1;
  RawRequest amo2 = amo;
  amo2.tag = 2;
  ASSERT_TRUE(mshr_.try_accept(amo, now));
  ++now;
  ASSERT_TRUE(mshr_.try_accept(amo2, now));
  settle(now);
  EXPECT_EQ(mshr_.stats().packets_out, 2u);  // never merged
  EXPECT_EQ(device_.stats().atomics, 2u);
}

TEST_F(MshrTest, CapacityRejectsAllocation) {
  Cycle now = 0;
  std::uint32_t accepted = 0;
  for (int i = 0; i < 64; ++i) {
    RawRequest request;
    request.addr = static_cast<Address>(i) * 4096;  // all distinct blocks
    request.tag = static_cast<Tag>(i);
    if (mshr_.try_accept(request, now)) ++accepted;
    ++now;  // one allocation port per cycle
    if (accepted >= 40) break;
  }
  // The file has 32 entries; some dispatch+complete may free a few, but
  // well under 64 distinct blocks can be outstanding at once.
  EXPECT_LE(mshr_.stats().packets_out + 32, 64u);
  settle(now);
  EXPECT_EQ(completions_, accepted);
}

}  // namespace
}  // namespace mac3d
