// Oracle property suite for the event-driven fast-forward engine
// (docs/PARALLELISM.md §event-driven engine). Every tickable unit
// advertises `next_event` / `next_activity_cycle`; the engine's
// correctness rests on two properties this file fuzzes directly:
//
//  1. No early work: after tick(now), the unit does no observable work at
//     any cycle strictly before the advertised next-activity cycle unless
//     new input arrives first.
//  2. Jump completeness: ticking ONLY at advertised cycles (plus input
//     cycles) produces bit-identical completions and stats to ticking
//     every cycle — skipped cycles were provably dead.
//
// Plus exactness of the device's next_completion oracle and the "drained
// means silent forever" contract (next_event == 0).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "cache/mshr.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "mac/coalescer.hpp"
#include "mem/hmc_device.hpp"
#include "sim/raw_path.hpp"

namespace mac3d {
namespace {

constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/// One scheduled intake: present `request` to the unit at `cycle` (retry
/// every cycle afterwards until accepted, like the request router does).
struct FeedItem {
  Cycle cycle = 0;
  RawRequest request;
};

/// Random feed with bursts and long dead gaps (the spans the event engine
/// must prove skippable). Tags are unique per thread so (tid, tag) stays
/// unique among in-flight requests.
std::vector<FeedItem> make_feed(std::uint64_t seed, std::uint32_t count) {
  Xoshiro256 rng(seed);
  std::vector<FeedItem> feed;
  feed.reserve(count);
  Cycle cycle = 0;
  std::vector<Tag> next_tag(4, 0);
  for (std::uint32_t i = 0; i < count; ++i) {
    // Mostly back-to-back, sometimes a gap, occasionally a long desert.
    switch (rng.below(8)) {
      case 0: cycle += 20 + rng.below(200); break;
      case 1: cycle += 1 + rng.below(8); break;
      default: break;
    }
    FeedItem item;
    item.cycle = cycle;
    RawRequest& request = item.request;
    request.tid = static_cast<ThreadId>(rng.below(4));
    request.tag = next_tag[request.tid]++;
    const Address row = rng.below(64) * 256;
    request.addr = row + rng.below(16) * 16;
    switch (rng.below(16)) {
      case 0: request.op = MemOp::kFence; break;
      case 1: request.op = MemOp::kAtomic; break;
      case 2: request.op = MemOp::kStore; break;
      default: request.op = MemOp::kLoad; break;
    }
    feed.push_back(item);
  }
  return feed;
}

/// Serialize everything observable about one drained completion.
void log_completions(const std::vector<CompletedAccess>& done, Cycle now,
                     std::ostringstream& log) {
  for (const CompletedAccess& c : done) {
    log << now << ':' << c.target.tid << '.' << c.target.tag << '@'
        << c.target.flit << (c.fence ? 'F' : c.write ? 'W' : 'R')
        << c.accepted << '-' << c.completed << '\n';
  }
}

/// Strict cycle-by-cycle run: feeds due requests (with router-style
/// retry), ticks every cycle, and asserts the no-early-work property
/// against the unit's advertised next-activity cycle. Writes the
/// completion log to `*log`; `drained_at` reports the last cycle touched.
template <typename Path>
void run_strict(Path& path, const std::vector<FeedItem>& feed,
                std::string* out, Cycle* drained_at) {
  std::ostringstream log;
  std::size_t next_feed = 0;
  std::vector<RawRequest> retry;
  // Earliest cycle internal work is allowed; kNeverCycle after the unit
  // reported itself drained (next_event == 0).
  Cycle promise = 0;
  Cycle now = 0;
  const Cycle horizon =
      feed.empty() ? 1'000'000 : feed.back().cycle + 1'000'000;
  for (;; ++now) {
    ASSERT_LT(now, horizon) << "unit failed to drain";
    bool fed = false;
    std::size_t kept = 0;
    for (std::size_t i = 0; i < retry.size(); ++i) {
      if (path.try_accept(retry[i], now)) {
        fed = true;
      } else {
        retry[kept++] = retry[i];
      }
    }
    retry.resize(kept);
    while (next_feed < feed.size() && feed[next_feed].cycle <= now) {
      if (path.try_accept(feed[next_feed].request, now)) {
        fed = true;
      } else {
        retry.push_back(feed[next_feed].request);
      }
      ++next_feed;
    }
    path.tick(now);
    const std::vector<CompletedAccess> done = path.drain(now);
    log_completions(done, now, log);
#if MAC3D_OBS_ENABLED
    const bool work = path.did_work_this_cycle(now) || !done.empty();
#else
    const bool work = !done.empty();
#endif
    if (work && !fed) {
      EXPECT_GE(now, promise)
          << "observable work at cycle " << now
          << " before the advertised next-activity cycle " << promise;
    }
    const Cycle next = path.next_event(now);
    if (next == 0) {
      EXPECT_TRUE(path.idle())
          << "next_event == 0 while the unit still holds work";
      if (next_feed == feed.size() && retry.empty()) break;
      promise = kNeverCycle;  // silent until the next feed arrives
    } else {
      EXPECT_GT(next, now) << "the oracle must advance the clock";
      promise = next;
    }
  }
  *drained_at = now;
  *out = log.str();
}

/// Oracle-jumped run: identical feed, but the clock jumps straight to
/// min(advertised next activity, next feed cycle, retry). Completions
/// must be bit-identical to the strict run.
template <typename Path>
std::string run_jumped(Path& path, const std::vector<FeedItem>& feed) {
  std::ostringstream log;
  std::size_t next_feed = 0;
  std::vector<RawRequest> retry;
  Cycle now = 0;
  for (;;) {
    std::size_t kept = 0;
    for (std::size_t i = 0; i < retry.size(); ++i) {
      if (!path.try_accept(retry[i], now)) retry[kept++] = retry[i];
    }
    retry.resize(kept);
    while (next_feed < feed.size() && feed[next_feed].cycle <= now) {
      if (!path.try_accept(feed[next_feed].request, now)) {
        retry.push_back(feed[next_feed].request);
      }
      ++next_feed;
    }
    path.tick(now);
    log_completions(path.drain(now), now, log);
    const Cycle advertised = path.next_event(now);
    Cycle next = kNeverCycle;
    if (advertised != 0) {
      next = advertised > now ? advertised : now + 1;
    }
    if (!retry.empty()) next = now + 1;
    if (next_feed < feed.size()) {
      const Cycle due =
          feed[next_feed].cycle > now ? feed[next_feed].cycle : now + 1;
      if (due < next) next = due;
    }
    if (next == kNeverCycle) break;  // drained, no input left
    now = next;
  }
  return log.str();
}

/// After draining, a unit must stay silent forever: next_event pinned at
/// 0 and ticks at arbitrary future cycles observable no-ops.
template <typename Path>
void expect_silent(Path& path, Cycle from) {
  for (const Cycle ahead : {1u, 2u, 17u, 1000u}) {
    const Cycle now = from + ahead;
    path.tick(now);
    EXPECT_TRUE(path.drain(now).empty());
#if MAC3D_OBS_ENABLED
    EXPECT_FALSE(path.did_work_this_cycle(now));
#endif
    EXPECT_EQ(path.next_event(now), 0u);
    EXPECT_TRUE(path.idle());
  }
}

class OracleFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OracleFuzz, MacCoalescerOracleIsSoundAndComplete) {
  const std::vector<FeedItem> feed = make_feed(GetParam(), 400);
  SimConfig config;

  HmcDevice strict_device(config, 0);
  MacCoalescer strict(config, strict_device);
  Cycle drained_at = 0;
  std::string expected;
  run_strict(strict, feed, &expected, &drained_at);
  if (::testing::Test::HasFatalFailure()) return;
  expect_silent(strict, drained_at);

  HmcDevice jumped_device(config, 0);
  MacCoalescer jumped(config, jumped_device);
  EXPECT_EQ(expected, run_jumped(jumped, feed));
  EXPECT_FALSE(expected.empty());
}

TEST_P(OracleFuzz, RawPathOracleIsSoundAndComplete) {
  const std::vector<FeedItem> feed = make_feed(GetParam() * 31 + 7, 400);
  SimConfig config;

  HmcDevice strict_device(config, 0);
  RawPath strict(config, strict_device);
  Cycle drained_at = 0;
  std::string expected;
  run_strict(strict, feed, &expected, &drained_at);
  if (::testing::Test::HasFatalFailure()) return;
  expect_silent(strict, drained_at);

  HmcDevice jumped_device(config, 0);
  RawPath jumped(config, jumped_device);
  EXPECT_EQ(expected, run_jumped(jumped, feed));
  EXPECT_FALSE(expected.empty());
}

TEST_P(OracleFuzz, MshrCoalescerOracleIsSoundAndComplete) {
  const std::vector<FeedItem> feed = make_feed(GetParam() * 53 + 11, 400);
  SimConfig config;

  HmcDevice strict_device(config, 0);
  MshrCoalescer strict(config, strict_device, 32, 64);
  Cycle drained_at = 0;
  std::string expected;
  run_strict(strict, feed, &expected, &drained_at);
  if (::testing::Test::HasFatalFailure()) return;
  expect_silent(strict, drained_at);

  HmcDevice jumped_device(config, 0);
  MshrCoalescer jumped(config, jumped_device, 32, 64);
  EXPECT_EQ(expected, run_jumped(jumped, feed));
  EXPECT_FALSE(expected.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

// ------------------------------------------------- device oracle exactness

TEST(DeviceOracle, NextCompletionIsExactNotJustConservative) {
  SimConfig config;
  HmcDevice device(config, 0);
  Cycle now = 0;
  std::uint32_t submitted = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    HmcRequest request;
    request.addr = static_cast<Address>(i) * 256;
    request.data_bytes = kFlitBytes;
    request.targets.push_back(
        Target{0, static_cast<Tag>(i), static_cast<std::uint8_t>(0)});
    if (!device.can_accept(request, now)) break;
    device.submit(std::move(request), now);
    ++submitted;
  }
  ASSERT_GT(submitted, 0u);

  std::uint32_t drained = 0;
  while (drained < submitted) {
    const Cycle completion = device.next_completion();
    ASSERT_NE(completion, 0u);
    ASSERT_GT(completion, now);
    // Nothing may surface before the advertised completion cycle...
    EXPECT_TRUE(device.drain(completion - 1).empty());
    // ...and something must surface exactly at it (exact, not early).
    const std::vector<HmcResponse> got = device.drain(completion);
    EXPECT_FALSE(got.empty());
    drained += static_cast<std::uint32_t>(got.size());
    now = completion;
  }
  EXPECT_EQ(device.next_completion(), 0u);
}

// ------------------------------------------ drained units advertise zero

TEST(DrainedOracle, FreshUnitsAdvertiseZeroAndStaySilent) {
  SimConfig config;
  HmcDevice mac_device(config, 0);
  MacCoalescer mac(config, mac_device);
  EXPECT_EQ(mac.next_event(0), 0u);
  expect_silent(mac, 0);

  HmcDevice raw_device(config, 0);
  RawPath raw(config, raw_device);
  EXPECT_EQ(raw.next_event(0), 0u);
  expect_silent(raw, 0);

  HmcDevice mshr_device(config, 0);
  MshrCoalescer mshr(config, mshr_device, 32, 64);
  EXPECT_EQ(mshr.next_event(0), 0u);
  expect_silent(mshr, 0);
}

}  // namespace
}  // namespace mac3d
