// Differential equivalence suite for the deterministic engines
// (docs/PARALLELISM.md): every engine — Engine::kParallel (node-sharded),
// Engine::kEvent (fast-forward) and Engine::kEventParallel — must be
// bit-identical to Engine::kSerial: same StatSets (compared as
// full-precision JSON), same run reports, same invariant-check counters,
// same idle-census exports — for every path, feed mode and worker count.
// System::run_parallel / run_event / run_event_parallel must likewise
// match System::run. A randomized-config fuzz loop widens the net beyond
// the hand-picked grid.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/system.hpp"
#include "check/check.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "obs/profiler.hpp"
#include "obs/registry.hpp"
#include "obs/run_report.hpp"
#include "sim/driver.hpp"
#include "trace/trace.hpp"

namespace mac3d {
namespace {

/// Synthetic trace with tunable row locality (the test_properties.cpp
/// generator): sequential stream with probability `locality`, random row
/// jumps otherwise, with a fence/store/atomic sprinkle so every request
/// kind crosses the engine boundary.
MemoryTrace locality_trace(double locality, std::uint32_t threads,
                           std::uint32_t per_thread, std::uint64_t seed) {
  MemoryTrace trace(threads);
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> position(threads, 0);
  for (std::uint32_t i = 0; i < per_thread; ++i) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      if (rng.uniform() >= locality) {
        position[t] = rng.below(1ull << 22) * 16;
      } else {
        position[t] += 8;
      }
      const Address addr = (i * threads + t) % 4 == 0
                               ? position[t]
                               : (static_cast<Address>(i) * threads + t) * 8;
      trace.instr(static_cast<ThreadId>(t), 2);
      switch (rng.below(24)) {
        case 0: trace.atomic(static_cast<ThreadId>(t), addr & ~0x7ull, 8);
                break;
        case 1: trace.fence(static_cast<ThreadId>(t)); break;
        case 2: trace.store(static_cast<ThreadId>(t), addr & ~0x7ull, 8);
                break;
        default: trace.load(static_cast<ThreadId>(t), addr & ~0x7ull); break;
      }
    }
  }
  return trace;
}

CoalescerPolicy policy_of(const std::string& path) {
  CoalescerPolicy policy = CoalescerPolicy::kMac;
  EXPECT_TRUE(parse_policy(path, policy)) << path;
  return policy;
}

/// Run one path under the given options and render everything comparable
/// about the run into one JSON string: the full StatSet, the check
/// counters and the idle-census export. String equality == bit identity
/// (StatSet::to_json prints doubles at full round-trip precision).
std::string run_fingerprint(const std::string& path, const MemoryTrace& trace,
                            const SimConfig& config, std::uint32_t threads,
                            DriveOptions options) {
  CheckContext checks(CheckContext::FailMode::kCount);
  ActivityCensus census;
  options.checks = &checks;
  options.census = &census;
  const DriverResult result =
      run_policy(policy_of(path), trace, config, threads, options);
  StatSet stats;
  result.collect(stats, path);
  stats.set("checks.run", static_cast<double>(result.checks_run));
  stats.set("checks.violations", static_cast<double>(result.check_violations));
  census.seal();
  return stats.to_json() + "\n" + census.to_json();
}

const char* engine_name(Engine engine) {
  switch (engine) {
    case Engine::kSerial: return "serial";
    case Engine::kParallel: return "parallel";
    case Engine::kEvent: return "event";
    case Engine::kEventParallel: return "eventparallel";
  }
  return "unknown";
}

struct GridCase {
  const char* path;
  FeedMode mode;
  Engine engine;
  std::uint32_t engine_threads;
};

const char* mode_name(FeedMode mode) {
  switch (mode) {
    case FeedMode::kStreaming: return "_streaming_";
    case FeedMode::kClosedLoop: return "_closedloop_";
    case FeedMode::kLaneGroup: return "_lanegroup_";
  }
  return "_unknown_";
}

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  return std::string(c.path) + mode_name(c.mode) + engine_name(c.engine) +
         "_" + std::to_string(c.engine_threads) + "t";
}

// ------------- paths x feed modes x engines x worker counts, full grid
class EngineGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(EngineGrid, EngineMatchesSerialBitForBit) {
  const GridCase& c = GetParam();
  SimConfig config;
  const MemoryTrace trace = locality_trace(0.6, 8, 300, 17);

  DriveOptions serial;
  serial.mode = c.mode;
  serial.engine = Engine::kSerial;
  const std::string expected =
      run_fingerprint(c.path, trace, config, 8, serial);

  DriveOptions candidate = serial;
  candidate.engine = c.engine;
  candidate.engine_threads = c.engine_threads;
  const std::string actual =
      run_fingerprint(c.path, trace, config, 8, candidate);

  EXPECT_EQ(expected, actual);
}

std::vector<GridCase> grid_cases() {
  std::vector<GridCase> cases;
  for (const char* path : {"mac", "raw", "mshr", "warp"}) {
    for (const FeedMode mode : {FeedMode::kStreaming, FeedMode::kClosedLoop}) {
      // The event engine is single-threaded; the staged engines sweep
      // worker counts.
      cases.push_back({path, mode, Engine::kEvent, 1});
      for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
        cases.push_back({path, mode, Engine::kParallel, threads});
        cases.push_back({path, mode, Engine::kEventParallel, threads});
      }
    }
    // The SIMT lockstep feed (a warp scheduler's issue pattern) must be
    // engine-invariant for every policy, not just the warp coalescer.
    cases.push_back({path, FeedMode::kLaneGroup, Engine::kEvent, 1});
    cases.push_back({path, FeedMode::kLaneGroup, Engine::kParallel, 4});
    cases.push_back({path, FeedMode::kLaneGroup, Engine::kEventParallel, 4});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPathsModesEnginesThreads, EngineGrid,
                         ::testing::ValuesIn(grid_cases()), case_name);

// ----------------------------------------------------- run-report parity
TEST(ReportEquivalence, SerialAndParallelReportsRenderIdentically) {
  SimConfig config;
  const MemoryTrace trace = locality_trace(0.5, 8, 250, 29);

  const auto render = [&](Engine engine) {
    DriveOptions options;
    options.engine = engine;
    options.engine_threads = 4;
    RunReport report;
    report.set_config(config);
    for (const char* path : {"raw", "mac", "mshr", "warp"}) {
      const DriverResult result =
          run_policy(policy_of(path), trace, config, 8, options);
      StatSet stats;
      result.collect(stats, path);
      report.set_path_stats(path, stats);
    }
    return report.to_json();
  };

  // The report deliberately carries no engine marker (apps/mac3d_cli.cpp),
  // so reports of the same run under any engine are the same bytes — the
  // CI equivalence jobs diff them as artifacts.
  const std::string reference = render(Engine::kSerial);
  EXPECT_EQ(reference, render(Engine::kParallel));
  EXPECT_EQ(reference, render(Engine::kEvent));
  EXPECT_EQ(reference, render(Engine::kEventParallel));
}

// ---------------------------------- closed-loop System engine equivalence
TEST(SystemEquivalence, RunParallelMatchesRunAcrossThreadCounts) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  ASSERT_GE(config.remote_hop_cycles, 1u);
  const MemoryTrace trace = locality_trace(0.5, 8, 200, 41);

  System reference(config);
  reference.attach_trace(trace);
  const SystemRunSummary expected = reference.run();
  ASSERT_TRUE(expected.completed);

  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    System system(config);
    system.attach_trace(trace);
    const SystemRunSummary actual = system.run_parallel(threads);
    EXPECT_TRUE(actual.completed) << threads << " threads";
    EXPECT_EQ(expected.cycles, actual.cycles) << threads << " threads";
    EXPECT_EQ(expected.requests, actual.requests) << threads << " threads";
    EXPECT_EQ(expected.completions, actual.completions)
        << threads << " threads";
    EXPECT_EQ(expected.stats.to_json(), actual.stats.to_json())
        << threads << " threads";
  }
}

TEST(SystemEquivalence, RunEventMatchesRunAndSkipsCycles) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  const MemoryTrace trace = locality_trace(0.5, 8, 200, 41);

  System reference(config);
  reference.attach_trace(trace);
  const SystemRunSummary expected = reference.run();
  ASSERT_TRUE(expected.completed);
  // The strict engine visits every cycle by definition.
  EXPECT_EQ(expected.visited_cycles, expected.cycles);

  System system(config);
  system.attach_trace(trace);
  const SystemRunSummary actual = system.run_event();
  EXPECT_TRUE(actual.completed);
  EXPECT_EQ(expected.cycles, actual.cycles);
  EXPECT_EQ(expected.requests, actual.requests);
  EXPECT_EQ(expected.completions, actual.completions);
  EXPECT_EQ(expected.stats.to_json(), actual.stats.to_json());
  // The whole point of the engine: it must have jumped over dead spans.
  EXPECT_LT(actual.visited_cycles, actual.cycles);
  EXPECT_GT(actual.visited_cycles, 0u);
}

TEST(SystemEquivalence, RunEventParallelMatchesRunAcrossThreadCounts) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  const MemoryTrace trace = locality_trace(0.5, 8, 200, 41);

  System reference(config);
  reference.attach_trace(trace);
  const SystemRunSummary expected = reference.run();
  ASSERT_TRUE(expected.completed);

  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    System system(config);
    system.attach_trace(trace);
    const SystemRunSummary actual = system.run_event_parallel(threads);
    EXPECT_TRUE(actual.completed) << threads << " threads";
    EXPECT_EQ(expected.cycles, actual.cycles) << threads << " threads";
    EXPECT_EQ(expected.requests, actual.requests) << threads << " threads";
    EXPECT_EQ(expected.completions, actual.completions)
        << threads << " threads";
    EXPECT_EQ(expected.stats.to_json(), actual.stats.to_json())
        << threads << " threads";
    EXPECT_LT(actual.visited_cycles, actual.cycles) << threads << " threads";
  }
}

TEST(SystemEquivalence, CensusAndMetricsMatchAcrossAllFourSystemEngines) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  const MemoryTrace trace = locality_trace(0.5, 8, 150, 59);

  // 0 = run, 1 = run_parallel, 2 = run_event, 3 = run_event_parallel.
  const auto fingerprint = [&](int engine) {
    System system(config);
    MetricsRegistry registry;
    ActivityCensus census;
    system.attach_metrics(&registry);
    system.attach_census(&census);
    system.attach_trace(trace);
    SystemRunSummary summary;
    switch (engine) {
      case 0: summary = system.run(); break;
      case 1: summary = system.run_parallel(4); break;
      case 2: summary = system.run_event(); break;
      default: summary = system.run_event_parallel(4); break;
    }
    EXPECT_TRUE(summary.completed);
    census.seal();
    return census.to_json() + "\n" + registry.to_json();
  };

  const std::string reference = fingerprint(0);
  EXPECT_EQ(reference, fingerprint(1));
  EXPECT_EQ(reference, fingerprint(2));
  EXPECT_EQ(reference, fingerprint(3));
}

TEST(SystemEquivalence, MetricsRegistryExportsAreByteIdentical) {
  SimConfig config;
  config.nodes = 4;
  config.cores = 2;
  const MemoryTrace trace = locality_trace(0.5, 8, 200, 61);

  const auto export_metrics = [&](bool parallel) {
    System system(config);
    MetricsRegistry registry;
    system.attach_metrics(&registry);
    system.attach_trace(trace);
    const SystemRunSummary summary =
        parallel ? system.run_parallel(4) : system.run();
    EXPECT_TRUE(summary.completed);
    return registry.to_json();
  };

  const std::string serial = export_metrics(false);
  const std::string parallel = export_metrics(true);
  EXPECT_EQ(serial, parallel);
  // Non-trivial export: per-node and fabric namespaces are populated.
  EXPECT_NE(serial.find("node3.router.routed"), std::string::npos);
  EXPECT_NE(serial.find("fabric.link01.requests"), std::string::npos);
  EXPECT_NE(serial.find("system.cycles"), std::string::npos);
}

TEST(SystemEquivalence, SingleNodeNeedsNoFabricAndStillMatches) {
  SimConfig config;  // nodes = 1: no fabric, node shard count is 1
  const MemoryTrace trace = locality_trace(0.7, 4, 200, 43);

  System reference(config);
  reference.attach_trace(trace);
  const SystemRunSummary expected = reference.run();

  System system(config);
  system.attach_trace(trace);
  const SystemRunSummary actual = system.run_parallel(4);
  EXPECT_EQ(expected.stats.to_json(), actual.stats.to_json());
}

TEST(SystemEquivalence, ZeroHopFabricIsRejectedByEveryEngine) {
  // A zero-hop fabric is unreproducible under the staged schedule, so all
  // four engines must refuse it identically — the serial engines accepting
  // what the staged ones reject would silently break the equivalence
  // contract (the historical behavior this pins down).
  SimConfig config;
  config.nodes = 2;
  config.remote_hop_cycles = 0;
  const MemoryTrace trace = locality_trace(0.5, 4, 50, 47);
  for (int engine = 0; engine < 4; ++engine) {
    System system(config);
    system.attach_trace(trace);
    switch (engine) {
      case 0:
        EXPECT_THROW(system.run(), std::invalid_argument) << "run";
        break;
      case 1:
        EXPECT_THROW(system.run_parallel(2), std::invalid_argument)
            << "run_parallel";
        break;
      case 2:
        EXPECT_THROW(system.run_event(), std::invalid_argument)
            << "run_event";
        break;
      default:
        EXPECT_THROW(system.run_event_parallel(2), std::invalid_argument)
            << "run_event_parallel";
        break;
    }
  }
  // A single node never crosses the fabric, so zero hops stays legal there.
  SimConfig single = config;
  single.nodes = 1;
  System system(single);
  system.attach_trace(trace);  // attach_trace keeps a reference
  EXPECT_TRUE(system.run().completed);
}

TEST(SystemEquivalence, ChecksMatchUnderBothEngines) {
  SimConfig config;
  config.nodes = 2;
  const MemoryTrace trace = locality_trace(0.6, 8, 150, 53);

  const auto counters = [&](bool parallel) {
    System system(config);
    system.attach_trace(trace);
    CheckContext checks(CheckContext::FailMode::kCount);
    system.attach_checks(&checks);
    const SystemRunSummary summary =
        parallel ? system.run_parallel(4) : system.run();
    EXPECT_TRUE(summary.completed);
    checks.finalize();
    return std::pair<std::uint64_t, std::uint64_t>(checks.checks_run(),
                                                   checks.violations());
  };

  const auto serial = counters(false);
  const auto parallel = counters(true);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_EQ(parallel.second, 0u);
}

// --------------------------------------------------- randomized-config fuzz
// Random geometry / timing / feeder knobs, random trace shape, random
// worker count: serial and parallel must agree bit-for-bit on all three
// paths every time. Seeds are fixed so failures replay deterministically.
class EquivalenceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceFuzz, RandomConfigsStayBitIdentical) {
  Xoshiro256 rng(GetParam());
  SimConfig config;
  const std::uint32_t vault_choices[] = {8, 16, 32, 64};
  const std::uint32_t link_choices[] = {2, 4, 8};
  config.vaults = vault_choices[rng.below(4)];
  config.hmc_links = link_choices[rng.below(3)];
  if (config.hmc_links > config.vaults) config.hmc_links = config.vaults;
  config.arq_entries = 4u << rng.below(5);       // 4 .. 64
  config.builder_min_bytes = 16u << rng.below(3);  // 16 / 32 / 64
  config.open_page = rng.below(2) == 0;
  config.warp_lanes = 2u << rng.below(4);  // 2 .. 16
  config.warp_window_cycles =
      1u + static_cast<std::uint32_t>(rng.below(12));  // 1 .. 12
  config.validate();

  const std::uint32_t threads = 1u + static_cast<std::uint32_t>(rng.below(8));
  const double locality = 0.25 * static_cast<double>(rng.below(5));
  const MemoryTrace trace = locality_trace(
      locality, threads, 120 + static_cast<std::uint32_t>(rng.below(120)),
      GetParam() * 977 + 3);

  DriveOptions serial;
  serial.engine = Engine::kSerial;
  serial.mode =
      rng.below(2) == 0 ? FeedMode::kStreaming : FeedMode::kClosedLoop;
  serial.tag_pool = serial.mode == FeedMode::kStreaming
                        ? static_cast<std::uint32_t>(rng.below(3)) * 8
                        : 0;  // 0 (full space), 8 or 16 outstanding tags
  DriveOptions parallel = serial;
  parallel.engine = Engine::kParallel;
  parallel.engine_threads = 1u + static_cast<std::uint32_t>(rng.below(8));
  DriveOptions event = serial;
  event.engine = Engine::kEvent;
  DriveOptions event_parallel = parallel;
  event_parallel.engine = Engine::kEventParallel;

  for (const char* path : {"mac", "raw", "mshr", "warp"}) {
    const std::string expected =
        run_fingerprint(path, trace, config, threads, serial);
    EXPECT_EQ(expected, run_fingerprint(path, trace, config, threads, parallel))
        << path << " seed " << GetParam();
    EXPECT_EQ(expected, run_fingerprint(path, trace, config, threads, event))
        << path << " seed " << GetParam();
    EXPECT_EQ(expected,
              run_fingerprint(path, trace, config, threads, event_parallel))
        << path << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull,
                                           21ull, 34ull, 55ull, 89ull));

}  // namespace
}  // namespace mac3d
