// Differential equivalence suite for the deterministic parallel engine
// (docs/PARALLELISM.md): Engine::kParallel must be bit-identical to
// Engine::kSerial — same StatSets (compared as full-precision JSON), same
// run reports, same invariant-check counters — for every path, feed mode
// and worker count, and System::run_parallel must match System::run. A
// randomized-config fuzz loop widens the net beyond the hand-picked grid.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "arch/system.hpp"
#include "check/check.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "obs/registry.hpp"
#include "obs/run_report.hpp"
#include "sim/driver.hpp"
#include "trace/trace.hpp"

namespace mac3d {
namespace {

/// Synthetic trace with tunable row locality (the test_properties.cpp
/// generator): sequential stream with probability `locality`, random row
/// jumps otherwise, with a fence/store/atomic sprinkle so every request
/// kind crosses the engine boundary.
MemoryTrace locality_trace(double locality, std::uint32_t threads,
                           std::uint32_t per_thread, std::uint64_t seed) {
  MemoryTrace trace(threads);
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> position(threads, 0);
  for (std::uint32_t i = 0; i < per_thread; ++i) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      if (rng.uniform() >= locality) {
        position[t] = rng.below(1ull << 22) * 16;
      } else {
        position[t] += 8;
      }
      const Address addr = (i * threads + t) % 4 == 0
                               ? position[t]
                               : (static_cast<Address>(i) * threads + t) * 8;
      trace.instr(static_cast<ThreadId>(t), 2);
      switch (rng.below(24)) {
        case 0: trace.atomic(static_cast<ThreadId>(t), addr & ~0x7ull, 8);
                break;
        case 1: trace.fence(static_cast<ThreadId>(t)); break;
        case 2: trace.store(static_cast<ThreadId>(t), addr & ~0x7ull, 8);
                break;
        default: trace.load(static_cast<ThreadId>(t), addr & ~0x7ull); break;
      }
    }
  }
  return trace;
}

/// Run one path under the given options and render everything comparable
/// about the run into one JSON string: the full StatSet plus the check
/// counters. String equality == bit identity (StatSet::to_json prints
/// doubles at full round-trip precision).
std::string run_fingerprint(const std::string& path, const MemoryTrace& trace,
                            const SimConfig& config, std::uint32_t threads,
                            DriveOptions options) {
  CheckContext checks(CheckContext::FailMode::kCount);
  options.checks = &checks;
  DriverResult result;
  if (path == "mac") {
    result = run_mac(trace, config, threads, options);
  } else if (path == "raw") {
    result = run_raw(trace, config, threads, options);
  } else {
    result = run_mshr(trace, config, threads, 32, 64, options);
  }
  StatSet stats;
  result.collect(stats, path);
  stats.set("checks.run", static_cast<double>(result.checks_run));
  stats.set("checks.violations", static_cast<double>(result.check_violations));
  return stats.to_json();
}

struct GridCase {
  const char* path;
  FeedMode mode;
  std::uint32_t engine_threads;
};

std::string case_name(const ::testing::TestParamInfo<GridCase>& info) {
  const GridCase& c = info.param;
  return std::string(c.path) +
         (c.mode == FeedMode::kStreaming ? "_streaming_" : "_closedloop_") +
         std::to_string(c.engine_threads) + "t";
}

// ------------------------- paths x feed modes x worker counts, full grid
class EngineGrid : public ::testing::TestWithParam<GridCase> {};

TEST_P(EngineGrid, ParallelMatchesSerialBitForBit) {
  const GridCase& c = GetParam();
  SimConfig config;
  const MemoryTrace trace = locality_trace(0.6, 8, 300, 17);

  DriveOptions serial;
  serial.mode = c.mode;
  serial.engine = Engine::kSerial;
  const std::string expected =
      run_fingerprint(c.path, trace, config, 8, serial);

  DriveOptions parallel = serial;
  parallel.engine = Engine::kParallel;
  parallel.engine_threads = c.engine_threads;
  const std::string actual =
      run_fingerprint(c.path, trace, config, 8, parallel);

  EXPECT_EQ(expected, actual);
}

std::vector<GridCase> grid_cases() {
  std::vector<GridCase> cases;
  for (const char* path : {"mac", "raw", "mshr"}) {
    for (const FeedMode mode : {FeedMode::kStreaming, FeedMode::kClosedLoop}) {
      for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
        cases.push_back({path, mode, threads});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPathsModesThreads, EngineGrid,
                         ::testing::ValuesIn(grid_cases()), case_name);

// ----------------------------------------------------- run-report parity
TEST(ReportEquivalence, SerialAndParallelReportsRenderIdentically) {
  SimConfig config;
  const MemoryTrace trace = locality_trace(0.5, 8, 250, 29);

  const auto render = [&](Engine engine) {
    DriveOptions options;
    options.engine = engine;
    options.engine_threads = 4;
    RunReport report;
    report.set_config(config);
    for (const char* path : {"raw", "mac", "mshr"}) {
      DriverResult result;
      if (std::string(path) == "mac") {
        result = run_mac(trace, config, 8, options);
      } else if (std::string(path) == "raw") {
        result = run_raw(trace, config, 8, options);
      } else {
        result = run_mshr(trace, config, 8, 32, 64, options);
      }
      StatSet stats;
      result.collect(stats, path);
      report.set_path_stats(path, stats);
    }
    return report.to_json();
  };

  // The report deliberately carries no engine marker (apps/mac3d_cli.cpp),
  // so a serial report and a parallel report of the same run are the same
  // bytes — the CI equivalence job diffs them as artifacts.
  EXPECT_EQ(render(Engine::kSerial), render(Engine::kParallel));
}

// ---------------------------------- closed-loop System engine equivalence
TEST(SystemEquivalence, RunParallelMatchesRunAcrossThreadCounts) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  ASSERT_GE(config.remote_hop_cycles, 1u);
  const MemoryTrace trace = locality_trace(0.5, 8, 200, 41);

  System reference(config);
  reference.attach_trace(trace);
  const SystemRunSummary expected = reference.run();
  ASSERT_TRUE(expected.completed);

  for (const std::uint32_t threads : {1u, 2u, 4u, 8u}) {
    System system(config);
    system.attach_trace(trace);
    const SystemRunSummary actual = system.run_parallel(threads);
    EXPECT_TRUE(actual.completed) << threads << " threads";
    EXPECT_EQ(expected.cycles, actual.cycles) << threads << " threads";
    EXPECT_EQ(expected.requests, actual.requests) << threads << " threads";
    EXPECT_EQ(expected.completions, actual.completions)
        << threads << " threads";
    EXPECT_EQ(expected.stats.to_json(), actual.stats.to_json())
        << threads << " threads";
  }
}

TEST(SystemEquivalence, MetricsRegistryExportsAreByteIdentical) {
  SimConfig config;
  config.nodes = 4;
  config.cores = 2;
  const MemoryTrace trace = locality_trace(0.5, 8, 200, 61);

  const auto export_metrics = [&](bool parallel) {
    System system(config);
    MetricsRegistry registry;
    system.attach_metrics(&registry);
    system.attach_trace(trace);
    const SystemRunSummary summary =
        parallel ? system.run_parallel(4) : system.run();
    EXPECT_TRUE(summary.completed);
    return registry.to_json();
  };

  const std::string serial = export_metrics(false);
  const std::string parallel = export_metrics(true);
  EXPECT_EQ(serial, parallel);
  // Non-trivial export: per-node and fabric namespaces are populated.
  EXPECT_NE(serial.find("node3.router.routed"), std::string::npos);
  EXPECT_NE(serial.find("fabric.link01.requests"), std::string::npos);
  EXPECT_NE(serial.find("system.cycles"), std::string::npos);
}

TEST(SystemEquivalence, SingleNodeNeedsNoFabricAndStillMatches) {
  SimConfig config;  // nodes = 1: no fabric, node shard count is 1
  const MemoryTrace trace = locality_trace(0.7, 4, 200, 43);

  System reference(config);
  reference.attach_trace(trace);
  const SystemRunSummary expected = reference.run();

  System system(config);
  system.attach_trace(trace);
  const SystemRunSummary actual = system.run_parallel(4);
  EXPECT_EQ(expected.stats.to_json(), actual.stats.to_json());
}

TEST(SystemEquivalence, ZeroHopFabricIsRejected) {
  SimConfig config;
  config.nodes = 2;
  config.remote_hop_cycles = 0;
  const MemoryTrace trace = locality_trace(0.5, 4, 50, 47);
  System system(config);
  system.attach_trace(trace);
  EXPECT_THROW(system.run_parallel(2), std::invalid_argument);
}

TEST(SystemEquivalence, ChecksMatchUnderBothEngines) {
  SimConfig config;
  config.nodes = 2;
  const MemoryTrace trace = locality_trace(0.6, 8, 150, 53);

  const auto counters = [&](bool parallel) {
    System system(config);
    system.attach_trace(trace);
    CheckContext checks(CheckContext::FailMode::kCount);
    system.attach_checks(&checks);
    const SystemRunSummary summary =
        parallel ? system.run_parallel(4) : system.run();
    EXPECT_TRUE(summary.completed);
    checks.finalize();
    return std::pair<std::uint64_t, std::uint64_t>(checks.checks_run(),
                                                   checks.violations());
  };

  const auto serial = counters(false);
  const auto parallel = counters(true);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
  EXPECT_EQ(parallel.second, 0u);
}

// --------------------------------------------------- randomized-config fuzz
// Random geometry / timing / feeder knobs, random trace shape, random
// worker count: serial and parallel must agree bit-for-bit on all three
// paths every time. Seeds are fixed so failures replay deterministically.
class EquivalenceFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EquivalenceFuzz, RandomConfigsStayBitIdentical) {
  Xoshiro256 rng(GetParam());
  SimConfig config;
  const std::uint32_t vault_choices[] = {8, 16, 32, 64};
  const std::uint32_t link_choices[] = {2, 4, 8};
  config.vaults = vault_choices[rng.below(4)];
  config.hmc_links = link_choices[rng.below(3)];
  if (config.hmc_links > config.vaults) config.hmc_links = config.vaults;
  config.arq_entries = 4u << rng.below(5);       // 4 .. 64
  config.builder_min_bytes = 16u << rng.below(3);  // 16 / 32 / 64
  config.open_page = rng.below(2) == 0;
  config.validate();

  const std::uint32_t threads = 1u + static_cast<std::uint32_t>(rng.below(8));
  const double locality = 0.25 * static_cast<double>(rng.below(5));
  const MemoryTrace trace = locality_trace(
      locality, threads, 120 + static_cast<std::uint32_t>(rng.below(120)),
      GetParam() * 977 + 3);

  DriveOptions serial;
  serial.mode =
      rng.below(2) == 0 ? FeedMode::kStreaming : FeedMode::kClosedLoop;
  serial.tag_pool = serial.mode == FeedMode::kStreaming
                        ? static_cast<std::uint32_t>(rng.below(3)) * 8
                        : 0;  // 0 (full space), 8 or 16 outstanding tags
  DriveOptions parallel = serial;
  parallel.engine = Engine::kParallel;
  parallel.engine_threads = 1u + static_cast<std::uint32_t>(rng.below(8));

  for (const char* path : {"mac", "raw", "mshr"}) {
    EXPECT_EQ(run_fingerprint(path, trace, config, threads, serial),
              run_fingerprint(path, trace, config, threads, parallel))
        << path << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull, 13ull,
                                           21ull, 34ull, 55ull, 89ull));

}  // namespace
}  // namespace mac3d
