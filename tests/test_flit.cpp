// Unit tests: FLIT map (Sec. 4.1.1) and FLIT table (Sec. 4.2.1), including
// a parameterized sweep over all sixteen 4-bit group patterns.
#include <gtest/gtest.h>

#include "common/bitutil.hpp"
#include "mac/flit_map.hpp"
#include "mac/flit_table.hpp"

namespace mac3d {
namespace {

// --------------------------------------------------------------- FLIT map
TEST(FlitMap, StartsEmpty) {
  FlitMap map(16);
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.count(), 0u);
  EXPECT_EQ(map.size(), 16u);
}

TEST(FlitMap, SetAndTest) {
  FlitMap map(16);
  map.set(5);  // paper Fig. 6 example: bit[5] set
  EXPECT_TRUE(map.test(5));
  EXPECT_FALSE(map.test(4));
  EXPECT_EQ(map.count(), 1u);
  EXPECT_EQ(map.raw(), 1u << 5);
}

TEST(FlitMap, SetIsIdempotent) {
  FlitMap map(16);
  map.set(3);
  map.set(3);
  EXPECT_EQ(map.count(), 1u);
}

TEST(FlitMap, FirstLastSet) {
  FlitMap map(16);
  map.set(6);
  map.set(8);
  map.set(9);
  EXPECT_EQ(map.first_set(), 6u);
  EXPECT_EQ(map.last_set(), 9u);
}

TEST(FlitMap, GroupPatternOrReducesQuads) {
  // Paper Fig. 7/8: FLITs {6, 8, 9} -> groups 0110.
  FlitMap map(16);
  map.set(6);
  map.set(8);
  map.set(9);
  EXPECT_EQ(map.group_pattern(4), 0b0110u);
}

TEST(FlitMap, GroupPatternCorners) {
  FlitMap map(16);
  map.set(0);
  EXPECT_EQ(map.group_pattern(4), 0b0001u);
  map.set(15);
  EXPECT_EQ(map.group_pattern(4), 0b1001u);
  for (std::uint32_t f = 0; f < 16; ++f) map.set(f);
  EXPECT_EQ(map.group_pattern(4), 0b1111u);
}

TEST(FlitMap, SupportsHbmSixtyFourFlits) {
  FlitMap map(64);  // Sec. 4.3: 1 KB HBM page
  map.set(63);
  EXPECT_EQ(map.last_set(), 63u);
  EXPECT_EQ(map.group_pattern(16), 1u << 15);
}

TEST(FlitMap, ClearEmpties) {
  FlitMap map(16);
  map.set(7);
  map.clear();
  EXPECT_TRUE(map.empty());
}

// -------------------------------------------------------------- FLIT table
TEST(FlitTable, SixteenEntriesForPaperGeometry) {
  FlitTable table(256, 64);
  EXPECT_EQ(table.groups(), 4u);
  EXPECT_EQ(table.entries(), 16u);
  EXPECT_EQ(table.storage_bytes(), 12u);  // paper Sec. 4.2.1
}

TEST(FlitTable, PaperExamplePattern0110Gives128B) {
  FlitTable table(256, 64);
  const PacketShape shape = table.lookup(0b0110);
  EXPECT_EQ(shape.size_bytes, 128u);
  EXPECT_EQ(shape.offset_bytes, 64u);
}

TEST(FlitTable, SingleGroupGives64B) {
  FlitTable table(256, 64);
  for (std::uint32_t g = 0; g < 4; ++g) {
    const PacketShape shape = table.lookup(1u << g);
    EXPECT_EQ(shape.size_bytes, 64u);
    EXPECT_EQ(shape.offset_bytes, g * 64);
  }
}

TEST(FlitTable, FullPatternGives256B) {
  FlitTable table(256, 64);
  const PacketShape shape = table.lookup(0b1111);
  EXPECT_EQ(shape.size_bytes, 256u);
  EXPECT_EQ(shape.offset_bytes, 0u);
}

TEST(FlitTable, NonAdjacentGroupsWidenThePacket) {
  FlitTable table(256, 64);
  EXPECT_EQ(table.lookup(0b1001).size_bytes, 256u);
  EXPECT_EQ(table.lookup(0b0101).size_bytes, 256u);
  EXPECT_EQ(table.lookup(0b1010).size_bytes, 256u);
}

TEST(FlitTable, RejectsZeroAndOutOfRange) {
  FlitTable table(256, 64);
  EXPECT_THROW((void)table.lookup(0), std::out_of_range);
  EXPECT_THROW((void)table.lookup(16), std::out_of_range);
}

TEST(FlitTable, RejectsBadGeometry) {
  EXPECT_THROW(FlitTable(256, 24), std::invalid_argument);
  EXPECT_THROW(FlitTable(100, 64), std::invalid_argument);
  EXPECT_THROW(FlitTable(64, 256), std::invalid_argument);
  EXPECT_THROW(FlitTable(4096, 16), std::invalid_argument);  // > 16 groups
}

TEST(FlitTable, HbmGeometrySixteenGroups) {
  FlitTable table(1024, 64);  // Sec. 4.3
  EXPECT_EQ(table.groups(), 16u);
  EXPECT_EQ(table.lookup(0x8001).size_bytes, 1024u);
  EXPECT_EQ(table.lookup(0x0003).size_bytes, 128u);
}

// Property sweep: every nonzero 4-bit pattern must be covered by the
// packet the table selects, the packet must stay inside the row, and its
// size must be the smallest power-of-two group count covering the span.
class FlitTablePattern : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(FlitTablePattern, CoversSpanMinimally) {
  const std::uint32_t pattern = GetParam();
  FlitTable table(256, 64);
  const PacketShape shape = table.lookup(pattern);

  // Covers every active group.
  for (std::uint32_t g = 0; g < 4; ++g) {
    if (!((pattern >> g) & 1u)) continue;
    const std::uint32_t group_begin = g * 64;
    EXPECT_GE(group_begin, shape.offset_bytes);
    EXPECT_LT(group_begin, shape.offset_bytes + shape.size_bytes);
  }
  // Stays inside the row and is a legal builder size.
  EXPECT_LE(shape.offset_bytes + shape.size_bytes, 256u);
  EXPECT_TRUE(shape.size_bytes == 64 || shape.size_bytes == 128 ||
              shape.size_bytes == 256);
  // Minimality: half the size cannot cover the span.
  const std::uint32_t first = lowest_bit(pattern) * 64;
  const std::uint32_t last = highest_bit(pattern) * 64 + 64;
  EXPECT_GE(shape.size_bytes, last - first);
  if (shape.size_bytes > 64) {
    EXPECT_LT(shape.size_bytes / 2, last - first);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPatterns, FlitTablePattern,
                         ::testing::Range(1u, 16u));

}  // namespace
}  // namespace mac3d
