// Unit tests: bank timing, link serialization and the HMC device model —
// including the Table 1 latency calibration and the Fig. 2 bank-conflict
// scenario.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "mem/bank.hpp"
#include "mem/hmc_device.hpp"
#include "mem/link.hpp"

namespace mac3d {
namespace {

// ------------------------------------------------------------------- bank
TEST(Bank, FirstAccessHasNoConflict) {
  Bank bank;
  const auto sched = bank.access(100, 200, 46);
  EXPECT_FALSE(sched.conflict);
  EXPECT_EQ(sched.start, 100u);
  EXPECT_EQ(sched.data_ready, 300u);
  EXPECT_EQ(bank.free_at(), 346u);
}

TEST(Bank, BusyBankConflictsAndSerializes) {
  Bank bank;
  bank.access(0, 200, 46);
  const auto sched = bank.access(10, 200, 46);
  EXPECT_TRUE(sched.conflict);
  EXPECT_EQ(sched.start, 246u);  // waits for precharge of the first
  EXPECT_EQ(bank.conflicts(), 1u);
  EXPECT_EQ(bank.accesses(), 2u);
}

TEST(Bank, IdleGapAvoidsConflict) {
  Bank bank;
  bank.access(0, 200, 46);
  const auto sched = bank.access(1000, 200, 46);
  EXPECT_FALSE(sched.conflict);
  EXPECT_EQ(bank.conflicts(), 0u);
}

TEST(Bank, SixteenSameRowAccessesCauseFifteenConflicts) {
  // Paper Fig. 2: sixteen 16 B requests to one row open/close it 16 times.
  Bank bank;
  for (int i = 0; i < 16; ++i) bank.access(static_cast<Cycle>(i), 200, 46);
  EXPECT_EQ(bank.conflicts(), 15u);
}

// ------------------------------------------------------------------- link
TEST(Link, SerializesFlits) {
  Link link(2);
  EXPECT_EQ(link.send_request(0, 1), 2u);
  EXPECT_EQ(link.send_request(2, 17), 2u + 34u);
  EXPECT_EQ(link.request_flits_sent(), 18u);
}

TEST(Link, BackToBackPacketsQueue) {
  Link link(2);
  link.send_request(0, 10);           // occupies cycles 0..20
  EXPECT_EQ(link.send_request(0, 1), 22u);
  EXPECT_EQ(link.request_backlog(0), 22u);
  EXPECT_EQ(link.request_backlog(30), 0u);
}

TEST(Link, DirectionsAreIndependent) {
  Link link(1);
  link.send_request(0, 100);
  EXPECT_EQ(link.send_response(0, 2), 2u);  // response path not blocked
}

// ----------------------------------------------------------------- device
class HmcDeviceTest : public ::testing::Test {
 protected:
  SimConfig config_;
  HmcDevice device_{config_};
};

TEST_F(HmcDeviceTest, IsolatedReadLatencyMatchesTable1) {
  // Table 1: average HMC access latency 93 ns (= ~307 cycles at 3.3 GHz).
  HmcRequest request;
  request.id = 1;
  request.addr = 0x1000;
  request.data_bytes = 16;
  const Cycle done = device_.submit(std::move(request), 0);
  const double ns = config_.cycles_to_ns(done);
  EXPECT_GE(ns, 85.0);
  EXPECT_LE(ns, 101.0);
}

TEST_F(HmcDeviceTest, LargerPacketsTakeLongerOnTheLink) {
  HmcRequest small;
  small.id = 1;
  small.addr = 0;
  small.data_bytes = 16;
  HmcRequest large;
  large.id = 2;
  large.addr = 8192 * 256;  // different vault/bank, same link quadrant? no:
  large.addr = 0x100;       // row 1 -> vault 1, same link 0
  large.data_bytes = 256;
  HmcDevice fresh1(config_);
  HmcDevice fresh2(config_);
  const Cycle t_small = fresh1.submit(std::move(small), 0);
  const Cycle t_large = fresh2.submit(std::move(large), 0);
  EXPECT_GT(t_large, t_small);
}

TEST_F(HmcDeviceTest, DrainReturnsCompletedInOrder) {
  for (int i = 0; i < 4; ++i) {
    HmcRequest request;
    request.id = static_cast<TransactionId>(i + 1);
    request.addr = static_cast<Address>(i) * 256;  // four different vaults
    request.data_bytes = 16;
    device_.submit(std::move(request), 0);
  }
  EXPECT_TRUE(device_.drain(10).empty());  // nothing ready yet
  auto done = device_.drain(100000);
  ASSERT_EQ(done.size(), 4u);
  for (std::size_t i = 1; i < done.size(); ++i) {
    EXPECT_LE(done[i - 1].completed, done[i].completed);
  }
  EXPECT_TRUE(device_.idle());
}

TEST_F(HmcDeviceTest, SameRowRequestsConflict) {
  for (int i = 0; i < 16; ++i) {
    HmcRequest request;
    request.id = static_cast<TransactionId>(i + 1);
    request.addr = 0xA00 + static_cast<Address>(i) * 16;
    request.data_bytes = 16;
    device_.submit(std::move(request), static_cast<Cycle>(i));
  }
  EXPECT_EQ(device_.stats().bank_conflicts, 15u);
}

TEST_F(HmcDeviceTest, CoalescedRequestAvoidsConflicts) {
  HmcRequest request;
  request.id = 1;
  request.addr = 0xA00;
  request.data_bytes = 256;
  device_.submit(std::move(request), 0);
  EXPECT_EQ(device_.stats().bank_conflicts, 0u);
  EXPECT_EQ(device_.stats().requests, 1u);
}

TEST_F(HmcDeviceTest, ByteAccountingMatchesEq1) {
  HmcRequest request;
  request.id = 1;
  request.addr = 0;
  request.data_bytes = 256;
  device_.submit(std::move(request), 0);
  EXPECT_EQ(device_.stats().data_bytes, 256u);
  EXPECT_EQ(device_.stats().link_bytes, 288u);
  EXPECT_EQ(device_.stats().overhead_bytes, 32u);
  EXPECT_NEAR(device_.stats().measured_bandwidth_efficiency(), 8.0 / 9.0,
              1e-9);
}

TEST_F(HmcDeviceTest, WriteAccountingSymmetric) {
  HmcRequest request;
  request.id = 1;
  request.addr = 0;
  request.data_bytes = 64;
  request.write = true;
  device_.submit(std::move(request), 0);
  EXPECT_EQ(device_.stats().writes, 1u);
  EXPECT_EQ(device_.stats().link_bytes, 96u);  // 64 + 32 control
}

TEST_F(HmcDeviceTest, RejectsMalformedPackets) {
  HmcRequest bad_size;
  bad_size.addr = 0;
  bad_size.data_bytes = 20;  // not FLIT-multiple
  EXPECT_THROW(device_.submit(std::move(bad_size), 0), std::invalid_argument);

  HmcRequest too_big;
  too_big.addr = 0;
  too_big.data_bytes = 512;  // beyond a row
  EXPECT_THROW(device_.submit(std::move(too_big), 0), std::invalid_argument);

  HmcRequest crossing;
  crossing.addr = 0x80;  // 128 B into a row
  crossing.data_bytes = 256;
  EXPECT_THROW(device_.submit(std::move(crossing), 0), std::invalid_argument);

  HmcRequest out_of_range;
  out_of_range.addr = 8ull << 30;
  out_of_range.data_bytes = 16;
  out_of_range.home_node = 0;
  // Node-local address wraps via local_addr; address 8 GB in node 0 space
  // maps to node 1, so local part is 0 -> fine. Use capacity-1 instead:
  out_of_range.addr = (8ull << 30) - 8;
  EXPECT_THROW(device_.submit(std::move(out_of_range), 0),
               std::invalid_argument);
}

TEST_F(HmcDeviceTest, BackPressureEngagesUnderBurst) {
  // Saturate one link's request direction with large writes.
  bool refused = false;
  for (int i = 0; i < 200 && !refused; ++i) {
    HmcRequest request;
    request.id = static_cast<TransactionId>(i + 1);
    request.addr = 0;  // all to vault 0 -> link 0
    request.data_bytes = 256;
    request.write = true;
    if (!device_.can_accept(request, 0)) {
      refused = true;
      break;
    }
    device_.submit(std::move(request), 0);
  }
  EXPECT_TRUE(refused);
}

TEST_F(HmcDeviceTest, AtomicsHoldTheBankLonger) {
  HmcRequest plain;
  plain.id = 1;
  plain.addr = 0;
  plain.data_bytes = 16;
  HmcRequest amo = plain;
  amo.id = 2;
  amo.atomic = true;
  HmcDevice d1(config_);
  HmcDevice d2(config_);
  EXPECT_GT(d2.submit(std::move(amo), 0), d1.submit(std::move(plain), 0));
}

TEST_F(HmcDeviceTest, ResetClearsEverything) {
  HmcRequest request;
  request.id = 1;
  request.addr = 0;
  request.data_bytes = 16;
  device_.submit(std::move(request), 0);
  device_.reset();
  EXPECT_TRUE(device_.idle());
  EXPECT_EQ(device_.stats().requests, 0u);
  EXPECT_EQ(device_.link_flits().first, 0u);
}

TEST(BankRefresh, AccessInsideWindowIsPushedOut) {
  Bank bank;
  bank.configure_refresh(/*interval=*/1000, /*duration=*/100, /*phase=*/0);
  // Arrival at cycle 50 falls inside the [0, 100) refresh window.
  const auto pushed = bank.access(50, 200, 46);
  EXPECT_TRUE(pushed.refresh_stall);
  EXPECT_EQ(pushed.start, 100u);
  EXPECT_EQ(bank.refresh_stalls(), 1u);
  // Arrival mid-period is untouched.
  const auto clean = bank.access(500, 200, 46);
  EXPECT_FALSE(clean.refresh_stall);
  EXPECT_EQ(clean.start, 500u);
}

TEST(BankRefresh, PhaseShiftsTheWindow) {
  Bank bank;
  bank.configure_refresh(1000, 100, 950);
  // (start + 950) % 1000 < 100  =>  windows at start in [50, 150).
  EXPECT_FALSE(bank.access(20, 10, 10).refresh_stall);
  Bank bank2;
  bank2.configure_refresh(1000, 100, 950);
  const auto sched = bank2.access(60, 10, 10);
  EXPECT_TRUE(sched.refresh_stall);
  EXPECT_EQ(sched.start, 150u);
}

TEST(BankRefresh, DeviceCountsRefreshStalls) {
  SimConfig config;
  config.t_refi = 2000;
  config.t_rfc = 500;
  HmcDevice device(config);
  // Hammer one bank across several refresh periods.
  Cycle now = 0;
  for (int i = 0; i < 40; ++i) {
    HmcRequest request;
    request.id = static_cast<TransactionId>(i + 1);
    request.addr = 0;
    request.data_bytes = 16;
    device.submit(std::move(request), now);
    now += 400;
  }
  EXPECT_GT(device.stats().refresh_stalls, 0u);
}

TEST(BankRefresh, DisabledByDefault) {
  SimConfig config;
  EXPECT_EQ(config.t_refi, 0u);
  HmcDevice device(config);
  HmcRequest request;
  request.id = 1;
  request.addr = 0;
  request.data_bytes = 16;
  device.submit(std::move(request), 0);
  EXPECT_EQ(device.stats().refresh_stalls, 0u);
}

TEST(OpenPage, RowHitSkipsActivation) {
  Bank bank;
  const auto miss = bank.access_open_page(0, 7, 90, 90, 46);
  EXPECT_FALSE(miss.row_hit);
  EXPECT_EQ(miss.data_ready, 180u);  // ACT + CAS (no row was open)
  const auto hit = bank.access_open_page(200, 7, 90, 90, 46);
  EXPECT_TRUE(hit.row_hit);
  EXPECT_EQ(hit.data_ready, 290u);  // CAS only
  EXPECT_EQ(bank.row_hits(), 1u);
}

TEST(OpenPage, RowMissPaysPrecharge) {
  Bank bank;
  bank.access_open_page(0, 7, 90, 90, 46);
  const auto sched = bank.access_open_page(500, 9, 90, 90, 46);
  EXPECT_FALSE(sched.row_hit);
  EXPECT_EQ(sched.data_ready, 500u + 46 + 90 + 90);  // PRE + ACT + CAS
}

TEST(OpenPage, DeviceModeCountsRowHits) {
  SimConfig config;
  config.open_page = true;
  HmcDevice device(config);
  for (int i = 0; i < 8; ++i) {
    HmcRequest request;
    request.id = static_cast<TransactionId>(i + 1);
    request.addr = 0xA00 + static_cast<Address>(i) * 16;  // same row
    request.data_bytes = 16;
    device.submit(std::move(request), static_cast<Cycle>(i));
  }
  EXPECT_EQ(device.stats().row_hits, 7u);
}

TEST(OpenPage, ClosedPageNeverReportsRowHits) {
  SimConfig config;  // closed page (the real HMC)
  HmcDevice device(config);
  for (int i = 0; i < 4; ++i) {
    HmcRequest request;
    request.id = static_cast<TransactionId>(i + 1);
    request.addr = 0xA00;
    request.data_bytes = 16;
    device.submit(std::move(request), static_cast<Cycle>(i));
  }
  EXPECT_EQ(device.stats().row_hits, 0u);
}

TEST_F(HmcDeviceTest, LinkFlitTotalsMatchTraffic) {
  HmcRequest request;
  request.id = 1;
  request.addr = 0;
  request.data_bytes = 64;  // read: 1 flit out, 5 flits back
  device_.submit(std::move(request), 0);
  const auto [req, resp] = device_.link_flits();
  EXPECT_EQ(req, 1u);
  EXPECT_EQ(resp, 5u);
}

}  // namespace
}  // namespace mac3d
