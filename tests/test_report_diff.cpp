// Report schema versioning and the regression-diff tool (src/obs/
// report_diff.*, docs/OBSERVABILITY.md §report-diff):
//  * the flattening parser reads schema /1../3 (legacy) and /4 reports;
//  * a /4 report round-trips through the differ with a zero self-diff;
//  * tolerance gating fires on a perturbed metric and stays quiet inside
//    the tolerance band;
//  * --ignore entries silence exact paths, dot-bounded section prefixes
//    and '*' globs (and exempt ignored paths from missing-metric gating);
//  * the `host` section (wall-clock attribution) never gates a diff;
//  * the CLI entry point returns the documented exit codes (0 in
//    tolerance, 1 regression, 2 usage/IO/parse trouble) and fails loudly
//    on mismatched schemas and unknown top-level sections.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "obs/report_diff.hpp"
#include "obs/run_report.hpp"

namespace mac3d {
namespace {

/// A representative /2 report: headline numbers, config, metrics-free.
RunReport sample_report() {
  RunReport report;
  report.set_string("workload", "sg");
  report.set_number("threads", 8);
  report.set_number("cycles", 123456);
  report.set_number("wall_seconds", 1.25);
  SimConfig config;
  report.set_config(config);
  StatSet stats;
  stats.set("mac.packets", 1024);
  stats.set("mac.avg_latency", 87.5);
  report.set_path_stats("mac", stats);
  return report;
}

std::string write_temp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path);
  out << body;
  return path;
}

TEST(ReportParse, ReadsSchemaV4AndFlattensNestedSections) {
  FlatReport flat;
  std::string error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), flat, error)) << error;
  EXPECT_EQ(flat.schema, "mac3d-run-report/4");
  EXPECT_DOUBLE_EQ(flat.numbers.at("cycles"), 123456.0);
  EXPECT_DOUBLE_EQ(flat.numbers.at("paths.mac.stats.mac.packets"), 1024.0);
  EXPECT_DOUBLE_EQ(flat.numbers.at("paths.mac.stats.mac.avg_latency"), 87.5);
  EXPECT_EQ(flat.strings.at("workload"), "sg");
  // Config numbers flatten under "config." and are diffable too.
  EXPECT_GT(flat.numbers.count("config.row_bytes"), 0u);
}

TEST(ReportParse, ReadsLegacySchemaV1Reports) {
  // A hand-built /1 document, as written by pre-/2 releases: same shape,
  // older schema tag, no "metrics" section.
  const std::string v1 =
      "{\n  \"schema\": \"mac3d-run-report/1\",\n"
      "  \"workload\": \"sg\",\n"
      "  \"cycles\": 99,\n"
      "  \"paths\": {\n    \"mac\": {\n      \"stats\": "
      "{\"mac.packets\":7}\n    }\n  }\n}\n";
  FlatReport flat;
  std::string error;
  ASSERT_TRUE(parse_report(v1, flat, error)) << error;
  EXPECT_EQ(flat.schema, "mac3d-run-report/1");
  EXPECT_DOUBLE_EQ(flat.numbers.at("cycles"), 99.0);
  EXPECT_DOUBLE_EQ(flat.numbers.at("paths.mac.stats.mac.packets"), 7.0);
}

TEST(ReportParse, ReadsLegacySchemaV2Reports) {
  // A /2 document as written by pre-/3 releases: no "latency"/"host".
  const std::string v2 =
      "{\n  \"schema\": \"mac3d-run-report/2\",\n"
      "  \"cycles\": 42,\n"
      "  \"metrics\": {\"node0.router.routed\": 5}\n}\n";
  FlatReport flat;
  std::string error;
  ASSERT_TRUE(parse_report(v2, flat, error)) << error;
  EXPECT_EQ(flat.schema, "mac3d-run-report/2");
  EXPECT_DOUBLE_EQ(flat.numbers.at("metrics.node0.router.routed"), 5.0);
}

TEST(ReportParse, RejectsUnknownSchemaAndMalformedJson) {
  FlatReport flat;
  std::string error;
  EXPECT_FALSE(parse_report("{\"schema\": \"mac3d-run-report/9\"}", flat,
                            error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_report("{\"cycles\": ", flat, error));
  EXPECT_FALSE(error.empty());
  error.clear();
  EXPECT_FALSE(parse_report("{\"cycles\": 1}", flat, error));  // no schema
  EXPECT_FALSE(error.empty());
}

TEST(ReportDiff, SelfDiffIsCleanAndIgnoresWallSeconds) {
  FlatReport a;
  FlatReport b;
  std::string error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), a, error)) << error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), b, error)) << error;
  b.numbers["wall_seconds"] = 99.0;  // timing noise must never gate

  const DiffResult result = diff_reports(a, b, DiffOptions{});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.out_of_tolerance, 0u);
  EXPECT_TRUE(result.deltas.empty());
  EXPECT_GT(result.compared, 0u);
}

TEST(ReportDiff, ToleranceGatesAPerturbedMetric) {
  FlatReport a;
  FlatReport b;
  std::string error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), a, error)) << error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), b, error)) << error;
  b.numbers["paths.mac.stats.mac.packets"] = 1024.0 * 1.05;  // +5%

  DiffOptions tight;
  tight.tolerance_pct = 2.0;
  const DiffResult fails = diff_reports(a, b, tight);
  EXPECT_FALSE(fails.ok());
  EXPECT_EQ(fails.out_of_tolerance, 1u);
  ASSERT_EQ(fails.deltas.size(), 1u);
  EXPECT_EQ(fails.deltas[0].path, "paths.mac.stats.mac.packets");
  EXPECT_TRUE(fails.deltas[0].out_of_tolerance);
  // The rendered table flags the offender.
  const std::string table = render_diff(fails, tight);
  EXPECT_NE(table.find("paths.mac.stats.mac.packets"), std::string::npos);
  EXPECT_NE(table.find("!"), std::string::npos);

  DiffOptions loose;
  loose.tolerance_pct = 10.0;
  const DiffResult passes = diff_reports(a, b, loose);
  EXPECT_TRUE(passes.ok());
  EXPECT_EQ(passes.out_of_tolerance, 0u);
  ASSERT_EQ(passes.deltas.size(), 1u);  // reported, but inside the band
  EXPECT_FALSE(passes.deltas[0].out_of_tolerance);
}

TEST(ReportDiff, HostSectionIsExemptByName) {
  // Wall-clock attribution is nondeterministic by nature, so the whole
  // `host` section is excluded from diffing — even wild swings (or the
  // section appearing on one side only) never gate a baseline.
  RunReport with_host = sample_report();
  with_host.set_host(
      "{\"phase_seconds\": {\"tick\": 1.0}, "
      "\"workers\": {\"count\": 2, \"imbalance\": 1.5}}");
  FlatReport a;
  FlatReport b;
  std::string error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), a, error)) << error;
  ASSERT_TRUE(parse_report(with_host.to_json(), b, error)) << error;
  EXPECT_GT(b.numbers.count("host.phase_seconds.tick"), 0u);

  const DiffResult result = diff_reports(a, b, DiffOptions{});
  EXPECT_TRUE(result.ok());
  EXPECT_TRUE(result.deltas.empty());
}

TEST(ReportDiff, IgnoreMatchesExactSectionPrefixAndGlob) {
  FlatReport a;
  FlatReport b;
  std::string error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), a, error)) << error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), b, error)) << error;
  b.numbers["paths.mac.stats.mac.packets"] = 9999.0;
  b.numbers["paths.mac.stats.mac.avg_latency"] = 1.0;

  DiffOptions none;
  none.tolerance_pct = 1.0;
  EXPECT_FALSE(diff_reports(a, b, none).ok());

  // Exact path form silences one metric, the other still gates.
  DiffOptions exact = none;
  exact.ignore = {"paths.mac.stats.mac.packets"};
  const DiffResult partial = diff_reports(a, b, exact);
  EXPECT_FALSE(partial.ok());
  ASSERT_EQ(partial.deltas.size(), 1u);
  EXPECT_EQ(partial.deltas[0].path, "paths.mac.stats.mac.avg_latency");

  // Section-prefix form silences the whole subtree.
  DiffOptions prefix = none;
  prefix.ignore = {"paths.mac"};
  EXPECT_TRUE(diff_reports(a, b, prefix).ok());
  EXPECT_TRUE(diff_reports(a, b, prefix).deltas.empty());

  // A prefix must stop at a dot boundary: "paths.ma" matches nothing.
  DiffOptions truncated = none;
  truncated.ignore = {"paths.ma"};
  EXPECT_FALSE(diff_reports(a, b, truncated).ok());

  // Glob form: '*' spans dots too.
  DiffOptions glob = none;
  glob.ignore = {"paths.*.packets"};
  const DiffResult globbed = diff_reports(a, b, glob);
  EXPECT_FALSE(globbed.ok());
  ASSERT_EQ(globbed.deltas.size(), 1u);
  EXPECT_EQ(globbed.deltas[0].path, "paths.mac.stats.mac.avg_latency");
  DiffOptions glob_all = none;
  glob_all.ignore = {"paths.*"};
  EXPECT_TRUE(diff_reports(a, b, glob_all).ok());
}

TEST(ReportDiff, IgnoredPathsAreExemptFromMissingGating) {
  FlatReport a;
  FlatReport b;
  std::string error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), a, error)) << error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), b, error)) << error;
  b.numbers.erase("paths.mac.stats.mac.packets");

  EXPECT_FALSE(diff_reports(a, b, DiffOptions{}).ok());
  DiffOptions ignored;
  ignored.ignore = {"paths.mac.stats.mac.packets"};
  EXPECT_TRUE(diff_reports(a, b, ignored).ok());
}

TEST(ReportDiff, MissingMetricsGateUnlessAllowed) {
  FlatReport a;
  FlatReport b;
  std::string error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), a, error)) << error;
  ASSERT_TRUE(parse_report(sample_report().to_json(), b, error)) << error;
  b.numbers.erase("cycles");
  b.numbers["brand_new_metric"] = 1.0;

  DiffOptions strict;
  const DiffResult gated = diff_reports(a, b, strict);
  EXPECT_FALSE(gated.ok());

  DiffOptions relaxed;
  relaxed.fail_on_missing = false;  // bench --baseline: baselines age
  const DiffResult allowed = diff_reports(a, b, relaxed);
  EXPECT_TRUE(allowed.ok());
}

TEST(ReportDiffCli, ExitCodesMatchTheContract) {
  const std::string report_json = sample_report().to_json();
  const std::string old_path = write_temp("rd_old.json", report_json);
  const std::string new_path = write_temp("rd_new.json", report_json);
  // Self-diff: clean exit.
  EXPECT_EQ(run_report_diff(old_path, new_path, DiffOptions{}), 0);

  // Perturb a real metric beyond tolerance: regression exit.
  RunReport perturbed = sample_report();
  perturbed.set_number("cycles", 123456 * 2);
  const std::string bad_path =
      write_temp("rd_bad.json", perturbed.to_json());
  DiffOptions tolerant;
  tolerant.tolerance_pct = 5.0;
  EXPECT_EQ(run_report_diff(old_path, bad_path, tolerant), 1);

  // Unreadable / unparsable input: usage exit.
  EXPECT_EQ(run_report_diff(old_path, ::testing::TempDir() + "rd_absent.json",
                            DiffOptions{}),
            2);
  const std::string junk_path = write_temp("rd_junk.json", "not json");
  EXPECT_EQ(run_report_diff(old_path, junk_path, DiffOptions{}), 2);

  // Mismatched schema versions: silently diffing a /2 baseline against a
  // /3 run would hide every new section, so the CLI refuses (exit 2,
  // regenerate the baseline).
  const std::string v2_path = write_temp(
      "rd_v2.json", "{\n  \"schema\": \"mac3d-run-report/2\",\n"
                    "  \"cycles\": 123456\n}\n");
  EXPECT_EQ(run_report_diff(v2_path, new_path, DiffOptions{}), 2);

  // Unknown top-level section: a typo'd or future section name must not
  // be silently flattened and compared as if understood.
  const std::string unknown_path = write_temp(
      "rd_unknown.json", "{\n  \"schema\": \"mac3d-run-report/3\",\n"
                         "  \"mystery\": {\"x\": 1}\n}\n");
  EXPECT_EQ(run_report_diff(old_path, unknown_path, DiffOptions{}), 2);

  for (const std::string& p : {old_path, new_path, bad_path, junk_path,
                               v2_path, unknown_path}) {
    std::remove(p.c_str());
  }
}

}  // namespace
}  // namespace mac3d
