// The model-invariant checking subsystem (src/check/, docs/INVARIANTS.md):
//  * every workload generator replays clean through the fully-checked MAC;
//  * randomized trace fuzzing across all three paths and both feed modes;
//  * the multi-node system (routers included) runs clean;
//  * deliberately injected model bugs (dropped target, inflated overhead,
//    truncated packet) are caught by the matching invariant;
//  * targeted regressions for fence ordering and FLIT-byte conservation;
//  * FailMode::kThrow fails loudly on the first breach.
#include <gtest/gtest.h>

#include <string>

#include "cache/cache.hpp"
#include "cache/mshr.hpp"
#include "check/check.hpp"
#include "check/conservation.hpp"
#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "mac/coalescer.hpp"
#include "mem/hmc_device.hpp"
#include "arch/system.hpp"
#include "sim/driver.hpp"
#include "trace/trace.hpp"
#include "workloads/all.hpp"

namespace mac3d {
namespace {

WorkloadParams small_params(std::uint32_t threads = 4) {
  WorkloadParams params;
  params.threads = threads;
  params.scale = 0.03;
  return params;
}

/// A random main-memory instruction stream: FLIT-aligned loads, stores and
/// atomics over a small row range (so merges happen), sprinkled with
/// compute gaps and per-thread fences.
MemoryTrace random_trace(std::uint64_t seed, std::uint32_t threads,
                         std::uint32_t records_per_thread) {
  MemoryTrace trace(threads);
  Xoshiro256 rng(seed);
  for (std::uint32_t t = 0; t < threads; ++t) {
    const auto tid = static_cast<ThreadId>(t);
    for (std::uint32_t i = 0; i < records_per_thread; ++i) {
      if (rng.below(32) == 0) {
        trace.fence(tid);
        continue;
      }
      if (rng.below(4) == 0) trace.instr(tid, rng.below(6));
      const Address addr = rng.below(256) * 256 + rng.below(16) * 16;
      switch (rng.below(8)) {
        case 0: trace.store(tid, addr); break;
        case 1: trace.atomic(tid, addr); break;
        default: trace.load(tid, addr); break;
      }
    }
    trace.fence(tid);  // every stream ends ordered
  }
  return trace;
}

/// Manual MAC pipeline driven to completion (fault-injection tests).
class CheckedMac : public ::testing::Test {
 protected:
  void attach(CheckContext& context) {
    device_.attach_checks(&context);
    mac_.attach_checks(&context);
  }

  RawRequest make(Address addr, ThreadId tid, Tag tag,
                  MemOp op = MemOp::kLoad) {
    RawRequest request;
    request.addr = addr;
    request.op = op;
    request.tid = tid;
    request.tag = tag;
    return request;
  }

  void settle(Cycle& now) {
    while (!mac_.idle()) {
      mac_.tick(now);
      (void)mac_.drain(now);
      const Cycle next = mac_.next_event(now);
      now = next <= now ? now + 1 : next;
    }
  }

  SimConfig config_;
  HmcDevice device_{config_};
  MacCoalescer mac_{config_, device_};
};

// ------------------------------------------------------- clean replays

TEST(InvariantReplay, EveryWorkloadReplaysCleanThroughTheCheckedMac) {
  SimConfig config;
  CheckContext context;
  DriveOptions options;
  options.checks = &context;
  for (const Workload* workload : workload_registry()) {
    const MemoryTrace trace = workload->trace(small_params());
    const DriverResult result = run_mac(trace, config, 4, options);
    EXPECT_GT(result.checks_run, 0u) << workload->name();
    EXPECT_EQ(result.check_violations, 0u) << workload->name()
                                           << "\n" << context.report();
  }
  EXPECT_EQ(context.violations(), 0u) << context.report();
}

TEST(InvariantReplay, RandomTraceFuzzAllPathsBothFeedModes) {
  SimConfig config;
  CheckContext context;
  for (std::uint64_t seed : {1ull, 7ull, 1234ull}) {
    const MemoryTrace trace = random_trace(seed, 4, 400);
    for (const FeedMode mode : {FeedMode::kStreaming, FeedMode::kClosedLoop}) {
      DriveOptions options;
      options.mode = mode;
      options.checks = &context;
      const DriverResult mac = run_mac(trace, config, 4, options);
      const DriverResult raw = run_raw(trace, config, 4, options);
      const DriverResult mshr = run_mshr(trace, config, 4, 32, 64, options);
      EXPECT_GT(mac.checks_run, 0u);
      EXPECT_EQ(mac.check_violations + raw.check_violations +
                    mshr.check_violations,
                0u)
          << "seed " << seed << "\n" << context.report();
    }
  }
  EXPECT_EQ(context.violations(), 0u) << context.report();
}

TEST(InvariantReplay, MultiNodeSystemWithRoutersRunsClean) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 4;
  const MemoryTrace trace = random_trace(5, 8, 200);
  CheckContext context;
  {
    System system(config);
    system.attach_checks(&context);
    system.attach_trace(trace);
    const SystemRunSummary summary = system.run();
    EXPECT_TRUE(summary.completed);
    context.finalize();  // while nodes are alive
  }
  EXPECT_GT(context.checks_run(), 0u);
  EXPECT_EQ(context.violations(), 0u) << context.report();
}

TEST(InvariantReplay, CleanRunExportsCheckCountsIntoStats) {
  SimConfig config;
  CheckContext context;
  DriveOptions options;
  options.checks = &context;
  const DriverResult result =
      run_mac(random_trace(2, 2, 100), config, 2, options);
  StatSet stats;
  result.collect(stats, "mac");
  EXPECT_GT(stats.get("mac.checks_run"), 0.0);
  EXPECT_EQ(stats.get("mac.check_violations"), 0.0);
  context.collect(stats, "checks");
  EXPECT_EQ(stats.get("checks.violations"), 0.0);
  EXPECT_NE(context.report().find("0 violations"), std::string::npos);
}

// --------------------------------------------------- injected model bugs

TEST_F(CheckedMac, DroppedTargetIsCaughtAsMissingCompletion) {
  CheckContext context;
  attach(context);
  device_.inject_fault(HmcDevice::Fault::kDropTarget);
  Cycle now = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(mac_.try_accept(
        make(0xA00 + i * 16, static_cast<ThreadId>(i), 1), now));
    ++now;
  }
  settle(now);
  context.finalize();
  EXPECT_GT(context.violations(inv::kOneCompletion.id), 0u)
      << context.report();
}

TEST_F(CheckedMac, InflatedOverheadIsCaughtByPacketAccounting) {
  CheckContext context;
  attach(context);
  device_.inject_fault(HmcDevice::Fault::kInflateOverhead);
  Cycle now = 0;
  ASSERT_TRUE(mac_.try_accept(make(0xB00, 0, 1), now));
  settle(now);
  context.finalize();
  EXPECT_GT(context.violations(inv::kPacketOverhead.id), 0u)
      << context.report();
}

TEST_F(CheckedMac, TruncatedPacketViolatesFlitByteConservation) {
  CheckContext context;
  attach(context);
  mac_.inject_truncate_next_packet();
  Cycle now = 0;
  // FLITs 0 and 15 of one row: the packet must span the full 256 B row;
  // the injected truncation halves it and loses FLIT 15's bytes.
  ASSERT_TRUE(mac_.try_accept(make(0xA00, 0, 1), now));
  ASSERT_TRUE(mac_.try_accept(make(0xAF0, 1, 1), now));
  settle(now);
  context.finalize();
  EXPECT_GT(context.violations(inv::kFlitCoverage.id), 0u)
      << context.report();
}

TEST_F(CheckedMac, ThrowModeFailsLoudlyOnTheFirstBreach) {
  CheckContext context(CheckContext::FailMode::kThrow);
  attach(context);
  mac_.inject_truncate_next_packet();
  Cycle now = 0;
  ASSERT_TRUE(mac_.try_accept(make(0xA00, 0, 1), now));
  ASSERT_TRUE(mac_.try_accept(make(0xAF0, 1, 1), now));
  EXPECT_THROW(settle(now), InvariantViolation);
}

TEST_F(CheckedMac, CleanPipelineSatisfiesThrowMode) {
  CheckContext context(CheckContext::FailMode::kThrow);
  attach(context);
  Cycle now = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(mac_.try_accept(
        make(0xC00 + i * 16, static_cast<ThreadId>(i), 1), now));
    ++now;
  }
  EXPECT_NO_THROW(settle(now));
  EXPECT_NO_THROW(context.finalize());
  EXPECT_EQ(context.violations(), 0u);
}

// ------------------------------------------------- fabric credit checks

RawRequest remote_load(Address addr, ThreadId tid, Tag tag) {
  RawRequest request;
  request.addr = addr;
  request.op = MemOp::kLoad;
  request.tid = tid;
  request.tag = tag;
  return request;
}

TEST(FabricCredit, DrainedFabricBalancesItsCredits) {
  SimConfig config;
  Interconnect fabric(config, 2);
  CheckContext context;
  fabric.attach_checks(&context);
  for (std::uint32_t i = 0; i < 8; ++i) {
    fabric.send_request(remote_load(i * 16, 0, static_cast<Tag>(i)),
                        /*dest=*/1, /*now=*/i, /*src=*/0);
  }
  // Deliver everything: constant hop latency, so one late pop drains all.
  const auto delivered =
      fabric.deliver_requests(1, 8 + fabric.hop_cycles());
  EXPECT_EQ(delivered.size(), 8u);
  context.finalize();
  EXPECT_GT(context.checks_run(), 0u);
  EXPECT_EQ(context.violations(inv::kFabricCredit.id), 0u)
      << context.report();
}

TEST(FabricCredit, InjectedDropBreachesCreditConservation) {
  SimConfig config;
  Interconnect fabric(config, 2);
  CheckContext context;
  fabric.attach_checks(&context);
  fabric.send_request(remote_load(0x000, 0, 1), 1, 0, 0);
  fabric.inject_drop_next_message();
  fabric.send_request(remote_load(0x100, 1, 2), 1, 1, 0);  // lost in transit
  fabric.send_request(remote_load(0x200, 2, 3), 1, 2, 0);
  const auto delivered =
      fabric.deliver_requests(1, 2 + fabric.hop_cycles());
  EXPECT_EQ(delivered.size(), 2u);  // the dropped message never arrives
  context.finalize();
  EXPECT_EQ(context.violations(inv::kFabricCredit.id), 1u)
      << context.report();
}

TEST(FabricCredit, InjectedDropIsCaughtInStagedModeToo) {
  // The staged (parallel-engine) commit path consumes the same one-shot
  // fault at the point a message enters a lane, so the breach fires there
  // identically.
  SimConfig config;
  Interconnect fabric(config, 2);
  CheckContext context;
  fabric.attach_checks(&context);
  fabric.begin_staged();
  fabric.send_request(remote_load(0x000, 0, 1), 1, 0, 0);
  fabric.send_completion(CompletedAccess{}, 0, 0, 1);
  fabric.inject_drop_next_message();
  fabric.commit_staged();  // the fault eats the first committed message
  fabric.end_staged();
  (void)fabric.deliver_requests(1, fabric.hop_cycles());
  (void)fabric.deliver_completions(0, fabric.hop_cycles());
  context.finalize();
  EXPECT_EQ(fabric.deliveries(), 1u);
  EXPECT_EQ(context.violations(inv::kFabricCredit.id), 1u)
      << context.report();
}

TEST(FabricCredit, UndeliveredMessagesFailTheDrainAudit) {
  SimConfig config;
  Interconnect fabric(config, 2);
  CheckContext context;
  fabric.attach_checks(&context);
  fabric.send_request(remote_load(0x000, 0, 1), 1, 0, 0);
  context.finalize();  // lane still holds the message: not drained
  EXPECT_EQ(context.violations(inv::kFabricCredit.id), 1u)
      << context.report();
}

TEST(FabricCredit, SystemRunWithInjectedDropIsCaughtEndToEnd) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  const MemoryTrace trace = random_trace(9, 4, 60);
  CheckContext context;
  {
    System system(config);
    system.attach_checks(&context);  // nodes, routers and fabric
    system.attach_trace(trace);
    system.fabric().inject_drop_next_message();
    // The lost remote reference can never complete, so the run times out;
    // a modest cycle cap keeps the test fast.
    const SystemRunSummary summary = system.run(/*max_cycles=*/60'000);
    EXPECT_FALSE(summary.completed);
    context.finalize();
  }
  EXPECT_GT(context.violations(inv::kFabricCredit.id), 0u)
      << context.report();
}

// ------------------------------------------------ cache hierarchy checks

TEST(CacheInvariants, RandomAccessStreamSatisfiesLruStackProperty) {
  CheckContext context;
  CacheHierarchy caches({
      CacheConfig{"L1", 1024, 64, 4, true},
      CacheConfig{"L2", 4096, 64, 4, true},
  });
  caches.attach_checks(&context);
  Xoshiro256 rng(11);
  for (int i = 0; i < 5000; ++i) {
    caches.access(rng.below(256) * 64, rng.below(2) == 0);
  }
  EXPECT_GT(context.checks_run(), 0u);
  EXPECT_EQ(context.violations(), 0u) << context.report();
}

TEST(CacheInvariants, InjectedLruCorruptionFiresTheStackProperty) {
  CheckContext context;
  Cache cache(CacheConfig{"L1", 1024, 64, 4, true});  // 4 sets
  cache.attach_checks(&context);
  // Warm set 0 with two lines so a zeroed recency stamp cannot be the
  // set's strict maximum (set stride = 4 sets x 64 B = 256 B).
  cache.access(0x000, false);
  cache.access(0x100, false);
  EXPECT_EQ(context.violations(), 0u) << context.report();
  cache.inject_lru_corruption(1);
  cache.access(0x200, false);  // fills set 0 with stamp 0: not the MRU
  EXPECT_GT(context.violations(inv::kCacheLruStack.id), 0u)
      << context.report();
}

TEST(CacheInvariants, DuplicateRecencyStampsViolateTheStackProperty) {
  CheckContext context;
  Cache cache(CacheConfig{"L1", 1024, 64, 4, true});
  cache.attach_checks(&context);
  // Two corrupted fills in an otherwise-empty set both record stamp 0:
  // the second access finds a duplicate stamp (and is not the strict MRU).
  cache.inject_lru_corruption(2);
  cache.access(0x000, false);
  cache.access(0x100, false);
  EXPECT_GT(context.violations(inv::kCacheLruStack.id), 0u)
      << context.report();
}

TEST(CacheInvariants, InjectedCapacityOverrunFiresTheOccupancyBound) {
  SimConfig config;
  HmcDevice device(config);
  MshrCoalescer mshr(config, device, /*entries=*/2, /*block_bytes=*/64);
  CheckContext context;
  mshr.attach_checks(&context);
  mshr.inject_capacity_overrun(4);
  Cycle now = 0;
  for (std::uint32_t i = 0; i < 6; ++i) {  // distinct blocks: all allocate
    RawRequest request;
    request.addr = static_cast<Address>(i) * 0x1000;
    request.op = MemOp::kLoad;
    request.tid = static_cast<ThreadId>(i);
    request.tag = 1;
    (void)mshr.try_accept(request, now);
    ++now;  // the allocation port admits one entry per cycle
  }
  EXPECT_GT(context.violations(inv::kMshrOccupancy.id), 0u)
      << context.report();
}

// ------------------------------------------------- targeted regressions

TEST(ConservationRegression, FenceRetiringBeforeOlderRequestIsCaught) {
  CheckContext context;
  ConservationChecker checker(context, "test");
  checker.on_accept(0, 0, MemOp::kLoad, 10);   // older load...
  checker.on_accept(0, 1, MemOp::kFence, 11);  // ...then a fence
  checker.on_complete(0, 1, /*fence=*/true, 20);  // fence retires first: bug
  EXPECT_GT(context.violations(inv::kFenceOrdering.id), 0u)
      << context.report();
  checker.on_complete(0, 0, /*fence=*/false, 25);
  checker.finalize(30);
  EXPECT_EQ(context.violations(inv::kOneCompletion.id), 0u);
}

TEST(ConservationRegression, FenceAfterAllOlderCompletionsIsLegal) {
  CheckContext context;
  ConservationChecker checker(context, "test");
  checker.on_accept(0, 0, MemOp::kLoad, 10);
  checker.on_accept(0, 1, MemOp::kFence, 11);
  checker.on_complete(0, 0, /*fence=*/false, 15);
  checker.on_complete(0, 1, /*fence=*/true, 20);
  checker.finalize(30);
  EXPECT_EQ(context.violations(), 0u) << context.report();
}

TEST(ConservationRegression, OrphanAndDuplicateAndLostRequestsAreCaught) {
  CheckContext context;
  ConservationChecker checker(context, "test");
  checker.on_complete(3, 9, /*fence=*/false, 5);  // never accepted
  EXPECT_EQ(context.violations(inv::kOrphanCompletion.id), 1u);
  checker.on_accept(1, 2, MemOp::kLoad, 6);
  checker.on_accept(1, 2, MemOp::kLoad, 7);  // (tid, tag) reuse in flight
  EXPECT_EQ(context.violations(inv::kDuplicateInFlight.id), 1u);
  checker.finalize(100);  // the accepted load never completed
  EXPECT_GT(context.violations(inv::kOneCompletion.id), 0u)
      << context.report();
}

}  // namespace
}  // namespace mac3d
