// Unit tests: the Aggregated Request Queue / Raw Request Aggregator
// (paper Sec. 4.1) — comparator merging, T and B bits, fences, atomics,
// target capacity, dual-port intake and fill-fast.
#include <gtest/gtest.h>

#include "common/config.hpp"
#include "mac/arq.hpp"
#include "mem/address_map.hpp"

namespace mac3d {
namespace {

RawRequest make(Address addr, MemOp op = MemOp::kLoad, ThreadId tid = 0,
                Tag tag = 0) {
  RawRequest request;
  request.addr = addr;
  request.op = op;
  request.tid = tid;
  request.tag = tag;
  return request;
}

class ArqTest : public ::testing::Test {
 protected:
  SimConfig config_;
  AddressMap map_{config_};
  Arq arq_{config_, map_};
};

TEST_F(ArqTest, FirstRequestAllocates) {
  EXPECT_EQ(arq_.insert(make(0xA60), 0), Arq::InsertResult::kAllocated);
  EXPECT_EQ(arq_.size(), 1u);
  const ArqEntry& entry = arq_.front();
  EXPECT_EQ(entry.row, 0xAu);
  EXPECT_TRUE(entry.bypass);  // B bit set: single request (Sec. 4.1.2)
  EXPECT_TRUE(entry.flits.test(6));
}

TEST_F(ArqTest, SameRowLoadMergesAndClearsBypass) {
  // Paper Fig. 7: loads to FLITs 6, 8, 9 of row 0xA merge into one entry.
  ASSERT_EQ(arq_.insert(make(0xA60, MemOp::kLoad, 0, 1), 0),
            Arq::InsertResult::kAllocated);
  ASSERT_EQ(arq_.insert(make(0xA80, MemOp::kLoad, 1, 1), 1),
            Arq::InsertResult::kMerged);
  ASSERT_EQ(arq_.insert(make(0xA90, MemOp::kLoad, 2, 1), 2),
            Arq::InsertResult::kMerged);
  EXPECT_EQ(arq_.size(), 1u);
  const ArqEntry& entry = arq_.front();
  EXPECT_FALSE(entry.bypass);
  EXPECT_EQ(entry.flits.group_pattern(4), 0b0110u);  // paper's example
  EXPECT_EQ(entry.targets.size(), 3u);
}

TEST_F(ArqTest, StoreToSameRowGetsOwnEntry) {
  // Paper Fig. 7 request 3: a store to row 0xA does not merge with loads
  // (T bit) and carries the B bit.
  ASSERT_EQ(arq_.insert(make(0xA60, MemOp::kLoad), 0),
            Arq::InsertResult::kAllocated);
  ASSERT_EQ(arq_.insert(make(0xA70, MemOp::kStore), 1),
            Arq::InsertResult::kAllocated);
  EXPECT_EQ(arq_.size(), 2u);
  EXPECT_TRUE(arq_.at(1).is_store);
  EXPECT_TRUE(arq_.at(1).bypass);
}

TEST_F(ArqTest, StoresMergeWithStores) {
  ASSERT_EQ(arq_.insert(make(0xB00, MemOp::kStore, 0, 1), 0),
            Arq::InsertResult::kAllocated);
  ASSERT_EQ(arq_.insert(make(0xB40, MemOp::kStore, 1, 1), 1),
            Arq::InsertResult::kMerged);
  EXPECT_EQ(arq_.size(), 1u);
}

TEST_F(ArqTest, DifferentRowsAllocateSeparately) {
  ASSERT_EQ(arq_.insert(make(0xA00), 0), Arq::InsertResult::kAllocated);
  ASSERT_EQ(arq_.insert(make(0xB00), 1), Arq::InsertResult::kAllocated);
  EXPECT_EQ(arq_.size(), 2u);
}

TEST_F(ArqTest, DuplicateFlitFromAnotherThreadStillMerges) {
  ASSERT_EQ(arq_.insert(make(0xA60, MemOp::kLoad, 0, 1), 0),
            Arq::InsertResult::kAllocated);
  ASSERT_EQ(arq_.insert(make(0xA60, MemOp::kLoad, 1, 1), 1),
            Arq::InsertResult::kMerged);
  const ArqEntry& entry = arq_.front();
  EXPECT_EQ(entry.targets.size(), 2u);  // both need responses
  EXPECT_EQ(entry.flits.count(), 1u);   // one FLIT covers both
}

TEST_F(ArqTest, FenceDisablesComparators) {
  ASSERT_EQ(arq_.insert(make(0xA00, MemOp::kLoad, 0, 1), 0),
            Arq::InsertResult::kAllocated);
  ASSERT_EQ(arq_.insert(make(0, MemOp::kFence, 0, 2), 1),
            Arq::InsertResult::kAllocated);
  EXPECT_TRUE(arq_.fence_pending());
  // Same row as the first entry, but the fence forbids merging.
  ASSERT_EQ(arq_.insert(make(0xA10, MemOp::kLoad, 0, 3), 2),
            Arq::InsertResult::kAllocated);
  EXPECT_EQ(arq_.size(), 3u);
}

TEST_F(ArqTest, FencePopReenablesComparators) {
  (void)arq_.insert(make(0, MemOp::kFence), 0);
  (void)arq_.pop();
  EXPECT_FALSE(arq_.fence_pending());
  (void)arq_.insert(make(0xA00, MemOp::kLoad, 0, 1), 1);
  EXPECT_EQ(arq_.insert(make(0xA10, MemOp::kLoad, 0, 2), 2),
            Arq::InsertResult::kMerged);
}

TEST_F(ArqTest, AtomicsNeverMerge) {
  ASSERT_EQ(arq_.insert(make(0xC00, MemOp::kAtomic, 0, 1), 0),
            Arq::InsertResult::kAllocated);
  ASSERT_EQ(arq_.insert(make(0xC00, MemOp::kAtomic, 1, 1), 1),
            Arq::InsertResult::kAllocated);
  ASSERT_EQ(arq_.insert(make(0xC10, MemOp::kLoad, 2, 1), 2),
            Arq::InsertResult::kAllocated);  // loads don't merge into amo
  EXPECT_EQ(arq_.size(), 3u);
  EXPECT_TRUE(arq_.front().is_atomic);
}

TEST_F(ArqTest, TargetCapacityIsTwelve) {
  // Sec. 5.3.3: a 64 B entry holds at most 12 targets of 4.5 B.
  EXPECT_EQ(arq_.max_targets_per_entry(), 12u);
  for (std::uint32_t i = 0; i < 14; ++i) {
    (void)arq_.insert(make(0xA00 + (i % 16) * 16, MemOp::kLoad,
                           static_cast<ThreadId>(i), 1),
                      i);
  }
  // 12 in the first entry, the 13th/14th spill into a second entry.
  ASSERT_EQ(arq_.size(), 2u);
  EXPECT_EQ(arq_.at(0).targets.size(), 12u);
  EXPECT_EQ(arq_.at(1).targets.size(), 2u);
  EXPECT_EQ(arq_.stats().merge_refused_capacity, 2u);
}

TEST_F(ArqTest, RejectsAllocationWhenFull) {
  for (std::uint32_t i = 0; i < 32; ++i) {
    ASSERT_EQ(arq_.insert(make(static_cast<Address>(i) * 256), i),
              Arq::InsertResult::kAllocated);
  }
  EXPECT_TRUE(arq_.full());
  EXPECT_EQ(arq_.insert(make(0x100000), 33), Arq::InsertResult::kRejected);
  // But merging into an existing entry still works when full.
  EXPECT_EQ(arq_.insert(make(0x10, MemOp::kLoad, 1, 1), 34),
            Arq::InsertResult::kMerged);
}

TEST_F(ArqTest, PortGatesRespected) {
  ASSERT_EQ(arq_.insert(make(0xA00), 0), Arq::InsertResult::kAllocated);
  // Merge forbidden -> same-row request needs an allocation.
  EXPECT_EQ(arq_.insert(make(0xA10, MemOp::kLoad, 1, 1), 0,
                        /*allow_merge=*/false, /*allow_alloc=*/true),
            Arq::InsertResult::kAllocated);
  // Allocation forbidden -> new row rejected.
  EXPECT_EQ(arq_.insert(make(0xB00), 0, true, false),
            Arq::InsertResult::kRejected);
}

TEST_F(ArqTest, PopReportsTargetsAndBypass) {
  (void)arq_.insert(make(0xA00, MemOp::kLoad, 0, 1), 0);
  (void)arq_.insert(make(0xA10, MemOp::kLoad, 1, 1), 1);
  (void)arq_.insert(make(0xB00, MemOp::kLoad, 2, 1), 2);
  const ArqEntry merged = arq_.pop();
  EXPECT_EQ(merged.targets.size(), 2u);
  const ArqEntry single = arq_.pop();
  EXPECT_TRUE(single.bypass);
  EXPECT_EQ(arq_.stats().popped, 2u);
  EXPECT_EQ(arq_.stats().popped_bypass, 1u);
  EXPECT_DOUBLE_EQ(arq_.stats().targets_per_entry.mean(), 1.5);
}

TEST(ArqFillFast, ArmsOnRisingEdgeAndSuppressesMerging) {
  SimConfig config;
  config.fill_fast_enabled = true;
  AddressMap map(config);
  Arq arq(config, map);
  // Boot: queue empty -> fill-fast arms for the 32 free entries; the
  // following same-row requests do NOT merge.
  (void)arq.insert(make(0xA00, MemOp::kLoad, 0, 1), 0);
  (void)arq.insert(make(0xA10, MemOp::kLoad, 1, 1), 1);
  EXPECT_EQ(arq.size(), 2u);
  EXPECT_EQ(arq.stats().fill_fast_inserts, 2u);
}

TEST(ArqFillFast, DisabledByDefault) {
  SimConfig config;
  AddressMap map(config);
  Arq arq(config, map);
  (void)arq.insert(make(0xA00, MemOp::kLoad, 0, 1), 0);
  EXPECT_EQ(arq.insert(make(0xA10, MemOp::kLoad, 1, 1), 1),
            Arq::InsertResult::kMerged);
  EXPECT_EQ(arq.stats().fill_fast_inserts, 0u);
}

TEST_F(ArqTest, StatsOccupancyAndCounters) {
  (void)arq_.insert(make(0xA00), 0);
  (void)arq_.insert(make(0xA10, MemOp::kLoad, 1, 1), 1);
  (void)arq_.insert(make(0xB00), 2);
  const ArqStats& stats = arq_.stats();
  EXPECT_EQ(stats.inserted, 3u);
  EXPECT_EQ(stats.merged, 1u);
  EXPECT_EQ(stats.allocated, 2u);
  EXPECT_GT(stats.occupancy.count(), 0u);
}

TEST_F(ArqTest, StorageMatchesFig16) {
  EXPECT_EQ(arq_.storage_bytes(), 32u * 64u);  // 2 KB at 32 entries
  EXPECT_EQ(arq_.comparators(), 32u);
}

}  // namespace
}  // namespace mac3d
