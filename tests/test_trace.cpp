// Unit tests: trace container, FLIT splitting, gap accounting, binary IO,
// interleaving and the analyzer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "common/config.hpp"
#include "trace/address_space.hpp"
#include "trace/analyzer.hpp"
#include "trace/trace.hpp"
#include "trace/trace_io.hpp"

namespace mac3d {
namespace {

// ----------------------------------------------------------- MemoryTrace
TEST(MemoryTrace, RecordsPerThread) {
  MemoryTrace trace(2);
  trace.load(0, 0x100);
  trace.store(1, 0x200);
  trace.store(1, 0x300);
  EXPECT_EQ(trace.thread(0).size(), 1u);
  EXPECT_EQ(trace.thread(1).size(), 2u);
  EXPECT_EQ(trace.size(), 3u);
  EXPECT_EQ(trace.thread(1)[0].op, MemOp::kStore);
}

TEST(MemoryTrace, SplitsFlitStraddlingAccess) {
  MemoryTrace trace(1);
  trace.load(0, 0x10C, 8);  // bytes 0x10C..0x113 straddle FLITs 0x10/0x11
  ASSERT_EQ(trace.thread(0).size(), 2u);
  EXPECT_EQ(trace.thread(0)[0].addr, 0x10Cu);
  EXPECT_EQ(trace.thread(0)[0].size, 4u);
  EXPECT_EQ(trace.thread(0)[1].addr, 0x110u);
  EXPECT_EQ(trace.thread(0)[1].size, 4u);
  EXPECT_EQ(trace.thread(0)[1].gap, 0u);  // same instruction
}

TEST(MemoryTrace, AlignedAccessNotSplit) {
  MemoryTrace trace(1);
  trace.load(0, 0x110, 8);
  trace.load(0, 0x118, 8);
  EXPECT_EQ(trace.thread(0).size(), 2u);
}

TEST(MemoryTrace, GapAccumulatesInstrAndSpm) {
  MemoryTrace trace(1);
  trace.instr(0, 5);
  trace.spm_load(0, 2);  // 2 * kSpmGapCycles
  trace.load(0, 0x100);
  EXPECT_EQ(trace.thread(0)[0].gap, 5u + 2 * kSpmGapCycles);
  trace.load(0, 0x200);
  EXPECT_EQ(trace.thread(0)[1].gap, 0u);  // gap was consumed
}

TEST(MemoryTrace, GapSaturatesAt16Bits) {
  MemoryTrace trace(1);
  trace.instr(0, 1 << 20);
  trace.load(0, 0x100);
  EXPECT_EQ(trace.thread(0)[0].gap, 0xFFFFu);
}

TEST(MemoryTrace, InstructionAndRefCounters) {
  MemoryTrace trace(2);
  trace.instr(0, 10);
  trace.load(0, 0x100);
  trace.spm_store(1, 3);
  trace.store(1, 0x200);
  trace.fence(1);
  EXPECT_EQ(trace.instructions(), 10u + 1 + 3 + 1 + 1);
  EXPECT_EQ(trace.main_memory_refs(), 2u);  // fence is not a data ref
  EXPECT_EQ(trace.spm_refs(), 3u);
  EXPECT_EQ(trace.memory_refs(), 5u);
  EXPECT_NEAR(trace.mem_access_rate(), 2.0 / 5.0, 1e-9);
  EXPECT_GT(trace.requests_per_instruction(), 0.0);
}

TEST(MemoryTrace, ClearResets) {
  MemoryTrace trace(1);
  trace.load(0, 0x100);
  trace.clear();
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.instructions(), 0u);
}

// ----------------------------------------------------------- trace file IO
TEST(TraceIo, RoundTripsExactly) {
  MemoryTrace trace(3);
  trace.instr(0, 4);
  trace.load(0, 0x1234, 8);
  trace.store(1, 0xABCD0, 4);
  trace.atomic(2, 0x8000, 8);
  trace.fence(2);

  const std::string path = "/tmp/mac3d_test_trace.bin";
  save_trace(trace, path);
  const MemoryTrace loaded = load_trace(path);
  ASSERT_EQ(loaded.threads(), 3u);
  for (std::uint32_t t = 0; t < 3; ++t) {
    const auto tid = static_cast<ThreadId>(t);
    ASSERT_EQ(loaded.thread(tid).size(), trace.thread(tid).size());
    for (std::size_t i = 0; i < trace.thread(tid).size(); ++i) {
      EXPECT_EQ(loaded.thread(tid)[i], trace.thread(tid)[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(TraceIo, RejectsMissingFile) {
  EXPECT_THROW(load_trace("/tmp/definitely_not_there.bin"),
               std::runtime_error);
}

TEST(TraceIo, RejectsCorruptMagic) {
  const std::string path = "/tmp/mac3d_bad_trace.bin";
  FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("NOTATRACEFILE###", f);
  std::fclose(f);
  EXPECT_THROW(load_trace(path), std::runtime_error);
  std::remove(path.c_str());
}

// ------------------------------------------------------ InterleavedStream
TEST(InterleavedStream, RoundRobinsThreads) {
  MemoryTrace trace(2);
  trace.load(0, 0x000);
  trace.load(0, 0x010);
  trace.load(1, 0x100);
  InterleavedStream stream(trace, 2, 8);
  EXPECT_EQ(stream.remaining(), 3u);
  EXPECT_EQ(stream.next().tid, 0);
  EXPECT_EQ(stream.next().tid, 1);
  const RawRequest last = stream.next();
  EXPECT_EQ(last.tid, 0);
  EXPECT_EQ(last.addr, 0x010u);
  EXPECT_TRUE(stream.done());
}

TEST(InterleavedStream, AssignsPerThreadTags) {
  MemoryTrace trace(1);
  trace.load(0, 0x000);
  trace.load(0, 0x010);
  InterleavedStream stream(trace, 1, 8);
  EXPECT_EQ(stream.next().tag, 0u);
  EXPECT_EQ(stream.next().tag, 1u);
}

TEST(InterleavedStream, ResetRestarts) {
  MemoryTrace trace(1);
  trace.load(0, 0x000);
  InterleavedStream stream(trace, 1, 8);
  (void)stream.next();
  EXPECT_TRUE(stream.done());
  stream.reset();
  EXPECT_FALSE(stream.done());
  EXPECT_EQ(stream.next().tag, 0u);
}

// ------------------------------------------------------------ AddressSpace
TEST(AddressSpace, BumpAllocatesAligned) {
  AddressSpace space(1 << 20);
  const Address a = space.alloc(100, 64);
  const Address b = space.alloc(10, 64);
  EXPECT_EQ(a % 64, 0u);
  EXPECT_EQ(b % 64, 0u);
  EXPECT_GE(b, a + 100);
  EXPECT_GE(space.used(), 110u);
}

TEST(AddressSpace, ThrowsWhenExhausted) {
  AddressSpace space(1024);
  (void)space.alloc(1024);
  EXPECT_THROW(space.alloc(1), std::runtime_error);
}

TEST(AddressSpace, RespectsBase) {
  AddressSpace space(1 << 20, 8ull << 30);
  EXPECT_GE(space.alloc(8), 8ull << 30);
}

// ----------------------------------------------------------------- analyzer
TEST(Analyzer, CountsOpsAndRows) {
  SimConfig config;
  MemoryTrace trace(2);
  trace.load(0, 0x000);
  trace.load(1, 0x010);   // same row
  trace.store(0, 0x100);  // second row
  trace.atomic(1, 0x208, 8);
  trace.fence(0);
  const TraceProfile profile = analyze(trace, config, 2);
  EXPECT_EQ(profile.records, 5u);
  EXPECT_EQ(profile.loads, 2u);
  EXPECT_EQ(profile.stores, 1u);
  EXPECT_EQ(profile.atomics, 1u);
  EXPECT_EQ(profile.fences, 1u);
  EXPECT_EQ(profile.distinct_rows, 2u);  // atomics are not coalescable
}

TEST(Analyzer, IdealCoalescingHighForSharedRow) {
  SimConfig config;
  MemoryTrace trace(8);
  for (std::uint32_t t = 0; t < 8; ++t) {
    trace.load(static_cast<ThreadId>(t), 0xA00 + t * 16);
  }
  const TraceProfile profile = analyze(trace, config, 8);
  EXPECT_NEAR(profile.ideal_coalescing, 1.0 - 1.0 / 8.0, 1e-9);
  EXPECT_NEAR(profile.mean_flits_per_group, 8.0, 1e-9);
}

TEST(Analyzer, IdealCoalescingZeroForDistinctRows) {
  SimConfig config;
  MemoryTrace trace(1);
  for (int i = 0; i < 16; ++i) {
    trace.load(0, static_cast<Address>(i) * 256);
  }
  const TraceProfile profile = analyze(trace, config, 1);
  EXPECT_DOUBLE_EQ(profile.ideal_coalescing, 0.0);
}

TEST(Analyzer, ReadFraction) {
  SimConfig config;
  MemoryTrace trace(1);
  trace.load(0, 0x0);
  trace.load(0, 0x1000);
  trace.store(0, 0x2000);
  trace.store(0, 0x3000);
  const TraceProfile profile = analyze(trace, config, 1);
  EXPECT_DOUBLE_EQ(profile.read_fraction, 0.5);
}

}  // namespace
}  // namespace mac3d
