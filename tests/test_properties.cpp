// Property-based tests: parameterized sweeps over synthetic traces with
// controlled row locality, thread counts and ARQ sizes, checking the
// monotonicity and bound properties of DESIGN.md §6.
#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <tuple>
#include <unordered_map>
#include <vector>

#include "common/flat_cycle_map.hpp"
#include "common/ring_queue.hpp"
#include "common/rng.hpp"
#include "sim/driver.hpp"
#include "workloads/all.hpp"
#include "trace/trace.hpp"

namespace mac3d {
namespace {

/// Synthetic trace generator with tunable locality: each thread walks a
/// sequential stream with probability `locality` and jumps to a random
/// row otherwise.
MemoryTrace locality_trace(double locality, std::uint32_t threads,
                           std::uint32_t per_thread, std::uint64_t seed) {
  MemoryTrace trace(threads);
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> position(threads, 0);
  for (std::uint32_t i = 0; i < per_thread; ++i) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      if (rng.uniform() >= locality) {
        position[t] = rng.below(1ull << 22) * 16;  // random FLIT
      } else {
        position[t] += 8;  // continue the shared stream
      }
      const Address addr = (i * threads + t) % 4 == 0
                               ? position[t]
                               : (static_cast<Address>(i) * threads + t) * 8;
      trace.instr(static_cast<ThreadId>(t), 2);
      trace.load(static_cast<ThreadId>(t), addr & ~0x7ull);
    }
  }
  return trace;
}

// ------------------------------------------------- locality monotonicity
class LocalitySweep : public ::testing::TestWithParam<double> {};

TEST_P(LocalitySweep, EfficiencyWithinBounds) {
  SimConfig config;
  const MemoryTrace trace = locality_trace(GetParam(), 8, 400, 7);
  const DriverResult mac = run_mac(trace, config, 8);
  EXPECT_GE(mac.coalescing_efficiency(), 0.0);
  // 16 FLITs per row and a 12-target entry bound the reduction.
  EXPECT_LE(mac.coalescing_efficiency(), 1.0 - 1.0 / 12.0 + 1e-9);
  EXPECT_EQ(mac.completions, trace.size());
}

INSTANTIATE_TEST_SUITE_P(Levels, LocalitySweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

TEST(LocalityMonotonicity, MoreLocalityNeverHurtsMuch) {
  SimConfig config;
  double previous = -1.0;
  for (const double locality : {0.0, 0.5, 1.0}) {
    const MemoryTrace trace = locality_trace(locality, 8, 400, 11);
    const DriverResult mac = run_mac(trace, config, 8);
    // Allow small noise but require the overall trend to be upward.
    EXPECT_GT(mac.coalescing_efficiency(), previous - 0.05)
        << "locality " << locality;
    previous = mac.coalescing_efficiency();
  }
  EXPECT_GT(previous, 0.2);  // fully local streams coalesce substantially
}

// ------------------------------------------------------ ARQ size sweep
class ArqSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ArqSizeSweep, CompletesAndStaysBounded) {
  SimConfig config;
  config.arq_entries = GetParam();
  const MemoryTrace trace = locality_trace(0.7, 8, 300, 13);
  const DriverResult mac = run_mac(trace, config, 8);
  EXPECT_EQ(mac.completions, trace.size());
  EXPECT_GE(mac.coalescing_efficiency(), 0.0);
  EXPECT_LE(mac.avg_targets_per_entry,
            static_cast<double>(config.max_targets_per_entry()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArqSizeSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u, 128u));

TEST(ArqSizeTrend, TinyQueueCoalescesLessThanPaperSize) {
  // Fig. 11's trend, checked on a real workload whose bursty arrivals
  // exercise queue depth (synthetic saturating streams pin the dual-port
  // equilibrium regardless of ARQ size).
  SimConfig tiny;
  tiny.arq_entries = 4;
  SimConfig paper;  // 32 entries
  WorkloadParams params;
  params.threads = 8;
  params.scale = 0.1;
  params.config = paper;
  const MemoryTrace trace = gap_cc_workload()->trace(params);
  const DriverResult small = run_mac(trace, tiny, 8);
  const DriverResult large = run_mac(trace, paper, 8);
  EXPECT_GT(large.coalescing_efficiency(),
            small.coalescing_efficiency() + 0.02);
}

// -------------------------------------------------- thread count sweep
class ThreadSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThreadSweep, ConservationHoldsForAnyThreadCount) {
  SimConfig config;
  const std::uint32_t threads = GetParam();
  const MemoryTrace trace = locality_trace(0.6, threads, 300, 23);
  const DriverResult raw = run_raw(trace, config, threads);
  const DriverResult mac = run_mac(trace, config, threads);
  EXPECT_EQ(raw.completions, trace.size());
  EXPECT_EQ(mac.completions, trace.size());
  EXPECT_LE(mac.packets, raw.packets);
  EXPECT_LE(mac.overhead_bytes, raw.overhead_bytes);
}

INSTANTIATE_TEST_SUITE_P(Counts, ThreadSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

// ----------------------------------------- builder granularity sweep
class GranularitySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GranularitySweep, PacketsRespectGranularity) {
  SimConfig config;
  config.builder_min_bytes = GetParam();
  const MemoryTrace trace = locality_trace(0.9, 8, 300, 29);
  const DriverResult mac = run_mac(trace, config, 8);
  for (const auto& [size, count] : mac.packets_by_size) {
    (void)count;
    // Bypass packets are 16 B; built packets are multiples of the
    // granularity and powers of two up to the row size.
    if (size == 16 && GetParam() != 16) continue;
    EXPECT_EQ(size % GetParam(), 0u);
    EXPECT_LE(size, config.row_bytes);
  }
  EXPECT_EQ(mac.completions, trace.size());
}

INSTANTIATE_TEST_SUITE_P(Granularities, GranularitySweep,
                         ::testing::Values(16u, 32u, 64u, 128u, 256u));

// -------------------------------------------------- config matrix sweep
using ConfigTuple = std::tuple<std::uint32_t, std::uint32_t>;  // vaults, links
class GeometrySweep : public ::testing::TestWithParam<ConfigTuple> {};

TEST_P(GeometrySweep, RunsCleanlyOnAnyGeometry) {
  SimConfig config;
  config.vaults = std::get<0>(GetParam());
  config.hmc_links = std::get<1>(GetParam());
  config.validate();
  const MemoryTrace trace = locality_trace(0.5, 4, 200, 31);
  const DriverResult mac = run_mac(trace, config, 4);
  EXPECT_EQ(mac.completions, trace.size());
  EXPECT_GT(mac.makespan, 0u);
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometrySweep,
                         ::testing::Values(ConfigTuple{8, 2},
                                           ConfigTuple{16, 4},
                                           ConfigTuple{32, 4},
                                           ConfigTuple{32, 8},
                                           ConfigTuple{64, 4}));

// -------------------------------------------------------- seed fuzzing
class SeedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedFuzz, RandomTrafficNeverBreaksInvariants) {
  SimConfig config;
  Xoshiro256 rng(GetParam());
  MemoryTrace trace(4);
  const std::uint32_t n = 600;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    const Address addr = rng.below(1ull << 26) & ~0xFull;
    switch (rng.below(20)) {
      case 0: trace.atomic(tid, addr & ~0x7ull, 8); break;
      case 1: trace.fence(tid); break;
      case 2: trace.store(tid, addr, 8); break;
      default: trace.load(tid, addr, 8); break;
    }
  }
  const DriverResult mac = run_mac(trace, config, 4);
  const DriverResult raw = run_raw(trace, config, 4);
  EXPECT_EQ(mac.completions, trace.size());
  EXPECT_EQ(raw.completions, trace.size());
  EXPECT_LE(mac.packets, raw.packets);
  EXPECT_EQ(mac.overhead_bytes, mac.packets * kAccessOverheadBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

// ------------------------------------------------- container property fuzz
// The hot-path containers (common/flat_cycle_map.hpp, ring_queue.hpp)
// replace std::unordered_map / std::deque on the driver's critical loops;
// these differentials pin them to the standard containers' semantics.

/// FlatCycleMap's home slot (the Fibonacci hash), replicated so tests can
/// construct keys whose probe chains straddle the ring boundary.
std::size_t fib_home(std::uint64_t key, std::size_t capacity) {
  return static_cast<std::size_t>((key * 0x9E3779B97F4A7C15ull) >> 32) &
         (capacity - 1);
}

// Backward-shift deletion across the wrap-around: cluster keys whose
// homes sit in the last slots of a 16-slot table so their probe chains
// wrap to slot 0, then delete in many different orders. Every order must
// leave exactly the reference's surviving keys findable — a shift that
// moves an element in front of its home (the classic wrap bug) loses it.
TEST(FlatCycleMapProperty, WrapAroundDeletionMatchesReference) {
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 1; keys.size() < 10; ++k) {
    if (fib_home(k, 16) >= 13) keys.push_back(k);
  }
  Xoshiro256 rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    FlatCycleMap map;
    std::unordered_map<std::uint64_t, Cycle> ref;
    for (std::size_t i = 0; i < keys.size(); ++i) {
      if (rng.below(4) == 0) continue;  // vary the insertion subset
      map.put(keys[i], 100 + i);
      ref[keys[i]] = 100 + i;
    }
    ASSERT_EQ(map.capacity(), 16u);  // all homes really share one table
    std::vector<std::uint64_t> order = keys;
    for (std::size_t i = order.size(); i > 1; --i) {
      std::swap(order[i - 1], order[rng.below(i)]);
    }
    for (const std::uint64_t key : order) {
      const auto it = ref.find(key);
      const Cycle expected = it == ref.end() ? 7777 : it->second;
      EXPECT_EQ(map.take(key, 7777), expected) << "trial " << trial;
      if (it != ref.end()) ref.erase(it);
    }
    EXPECT_TRUE(map.empty()) << "trial " << trial;
  }
}

// Random put/take/clear stream over a small key universe (heavy collision
// and deletion traffic) — size and every take result must match
// std::unordered_map at each step.
TEST(FlatCycleMapProperty, RandomOpsMatchUnorderedMap) {
  Xoshiro256 rng(2024);
  FlatCycleMap map;
  std::unordered_map<std::uint64_t, Cycle> ref;
  for (int op = 0; op < 100000; ++op) {
    const std::uint64_t key = rng.below(97);
    switch (rng.below(5)) {
      case 0:
      case 1:
      case 2: {
        const Cycle value = rng.below(1u << 20);
        map.put(key, value);
        ref[key] = value;
        break;
      }
      case 3: {
        const auto it = ref.find(key);
        const Cycle expected = it == ref.end() ? 424242 : it->second;
        ASSERT_EQ(map.take(key, 424242), expected) << "op " << op;
        if (it != ref.end()) ref.erase(it);
        break;
      }
      default:
        if (rng.below(500) == 0) {
          map.clear();
          ref.clear();
        }
        break;
    }
    ASSERT_EQ(map.size(), ref.size()) << "op " << op;
  }
}

// RingQueue vs std::deque, with pop-heavy phases so the live span's head
// climbs past the midpoint before growth — grow() must relocate a
// wrapped (head > tail) span without reordering it.
TEST(RingQueueProperty, RandomOpsMatchDeque) {
  Xoshiro256 rng(7);
  RingQueue<std::uint64_t> queue;
  std::deque<std::uint64_t> ref;
  std::uint64_t next = 0;
  for (int op = 0; op < 200000; ++op) {
    // Phase-dependent push bias: drain phases advance the head, push
    // phases then force grow() while the contents wrap.
    const bool push_phase = (op / 1000) % 2 == 0;
    if (ref.empty() || rng.below(10) < (push_phase ? 7u : 3u)) {
      queue.push_back(next);
      ref.push_back(next);
      ++next;
    } else {
      ASSERT_EQ(queue.front(), ref.front()) << "op " << op;
      queue.pop_front();
      ref.pop_front();
    }
    ASSERT_EQ(queue.size(), ref.size()) << "op " << op;
    if (op % 4096 == 0 && !ref.empty()) {
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_EQ(queue.at(i), ref[i]) << "op " << op << " index " << i;
      }
    }
  }
}

}  // namespace
}  // namespace mac3d
