// Property-based tests: parameterized sweeps over synthetic traces with
// controlled row locality, thread counts and ARQ sizes, checking the
// monotonicity and bound properties of DESIGN.md §6.
#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "sim/driver.hpp"
#include "workloads/all.hpp"
#include "trace/trace.hpp"

namespace mac3d {
namespace {

/// Synthetic trace generator with tunable locality: each thread walks a
/// sequential stream with probability `locality` and jumps to a random
/// row otherwise.
MemoryTrace locality_trace(double locality, std::uint32_t threads,
                           std::uint32_t per_thread, std::uint64_t seed) {
  MemoryTrace trace(threads);
  Xoshiro256 rng(seed);
  std::vector<std::uint64_t> position(threads, 0);
  for (std::uint32_t i = 0; i < per_thread; ++i) {
    for (std::uint32_t t = 0; t < threads; ++t) {
      if (rng.uniform() >= locality) {
        position[t] = rng.below(1ull << 22) * 16;  // random FLIT
      } else {
        position[t] += 8;  // continue the shared stream
      }
      const Address addr = (i * threads + t) % 4 == 0
                               ? position[t]
                               : (static_cast<Address>(i) * threads + t) * 8;
      trace.instr(static_cast<ThreadId>(t), 2);
      trace.load(static_cast<ThreadId>(t), addr & ~0x7ull);
    }
  }
  return trace;
}

// ------------------------------------------------- locality monotonicity
class LocalitySweep : public ::testing::TestWithParam<double> {};

TEST_P(LocalitySweep, EfficiencyWithinBounds) {
  SimConfig config;
  const MemoryTrace trace = locality_trace(GetParam(), 8, 400, 7);
  const DriverResult mac = run_mac(trace, config, 8);
  EXPECT_GE(mac.coalescing_efficiency(), 0.0);
  // 16 FLITs per row and a 12-target entry bound the reduction.
  EXPECT_LE(mac.coalescing_efficiency(), 1.0 - 1.0 / 12.0 + 1e-9);
  EXPECT_EQ(mac.completions, trace.size());
}

INSTANTIATE_TEST_SUITE_P(Levels, LocalitySweep,
                         ::testing::Values(0.0, 0.25, 0.5, 0.75, 1.0));

TEST(LocalityMonotonicity, MoreLocalityNeverHurtsMuch) {
  SimConfig config;
  double previous = -1.0;
  for (const double locality : {0.0, 0.5, 1.0}) {
    const MemoryTrace trace = locality_trace(locality, 8, 400, 11);
    const DriverResult mac = run_mac(trace, config, 8);
    // Allow small noise but require the overall trend to be upward.
    EXPECT_GT(mac.coalescing_efficiency(), previous - 0.05)
        << "locality " << locality;
    previous = mac.coalescing_efficiency();
  }
  EXPECT_GT(previous, 0.2);  // fully local streams coalesce substantially
}

// ------------------------------------------------------ ARQ size sweep
class ArqSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ArqSizeSweep, CompletesAndStaysBounded) {
  SimConfig config;
  config.arq_entries = GetParam();
  const MemoryTrace trace = locality_trace(0.7, 8, 300, 13);
  const DriverResult mac = run_mac(trace, config, 8);
  EXPECT_EQ(mac.completions, trace.size());
  EXPECT_GE(mac.coalescing_efficiency(), 0.0);
  EXPECT_LE(mac.avg_targets_per_entry,
            static_cast<double>(config.max_targets_per_entry()));
}

INSTANTIATE_TEST_SUITE_P(Sizes, ArqSizeSweep,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u, 128u));

TEST(ArqSizeTrend, TinyQueueCoalescesLessThanPaperSize) {
  // Fig. 11's trend, checked on a real workload whose bursty arrivals
  // exercise queue depth (synthetic saturating streams pin the dual-port
  // equilibrium regardless of ARQ size).
  SimConfig tiny;
  tiny.arq_entries = 4;
  SimConfig paper;  // 32 entries
  WorkloadParams params;
  params.threads = 8;
  params.scale = 0.1;
  params.config = paper;
  const MemoryTrace trace = gap_cc_workload()->trace(params);
  const DriverResult small = run_mac(trace, tiny, 8);
  const DriverResult large = run_mac(trace, paper, 8);
  EXPECT_GT(large.coalescing_efficiency(),
            small.coalescing_efficiency() + 0.02);
}

// -------------------------------------------------- thread count sweep
class ThreadSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(ThreadSweep, ConservationHoldsForAnyThreadCount) {
  SimConfig config;
  const std::uint32_t threads = GetParam();
  const MemoryTrace trace = locality_trace(0.6, threads, 300, 23);
  const DriverResult raw = run_raw(trace, config, threads);
  const DriverResult mac = run_mac(trace, config, threads);
  EXPECT_EQ(raw.completions, trace.size());
  EXPECT_EQ(mac.completions, trace.size());
  EXPECT_LE(mac.packets, raw.packets);
  EXPECT_LE(mac.overhead_bytes, raw.overhead_bytes);
}

INSTANTIATE_TEST_SUITE_P(Counts, ThreadSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u, 16u));

// ----------------------------------------- builder granularity sweep
class GranularitySweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(GranularitySweep, PacketsRespectGranularity) {
  SimConfig config;
  config.builder_min_bytes = GetParam();
  const MemoryTrace trace = locality_trace(0.9, 8, 300, 29);
  const DriverResult mac = run_mac(trace, config, 8);
  for (const auto& [size, count] : mac.packets_by_size) {
    (void)count;
    // Bypass packets are 16 B; built packets are multiples of the
    // granularity and powers of two up to the row size.
    if (size == 16 && GetParam() != 16) continue;
    EXPECT_EQ(size % GetParam(), 0u);
    EXPECT_LE(size, config.row_bytes);
  }
  EXPECT_EQ(mac.completions, trace.size());
}

INSTANTIATE_TEST_SUITE_P(Granularities, GranularitySweep,
                         ::testing::Values(16u, 32u, 64u, 128u, 256u));

// -------------------------------------------------- config matrix sweep
using ConfigTuple = std::tuple<std::uint32_t, std::uint32_t>;  // vaults, links
class GeometrySweep : public ::testing::TestWithParam<ConfigTuple> {};

TEST_P(GeometrySweep, RunsCleanlyOnAnyGeometry) {
  SimConfig config;
  config.vaults = std::get<0>(GetParam());
  config.hmc_links = std::get<1>(GetParam());
  config.validate();
  const MemoryTrace trace = locality_trace(0.5, 4, 200, 31);
  const DriverResult mac = run_mac(trace, config, 4);
  EXPECT_EQ(mac.completions, trace.size());
  EXPECT_GT(mac.makespan, 0u);
}

INSTANTIATE_TEST_SUITE_P(Geometries, GeometrySweep,
                         ::testing::Values(ConfigTuple{8, 2},
                                           ConfigTuple{16, 4},
                                           ConfigTuple{32, 4},
                                           ConfigTuple{32, 8},
                                           ConfigTuple{64, 4}));

// -------------------------------------------------------- seed fuzzing
class SeedFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedFuzz, RandomTrafficNeverBreaksInvariants) {
  SimConfig config;
  Xoshiro256 rng(GetParam());
  MemoryTrace trace(4);
  const std::uint32_t n = 600;
  for (std::uint32_t i = 0; i < n; ++i) {
    const auto tid = static_cast<ThreadId>(rng.below(4));
    const Address addr = rng.below(1ull << 26) & ~0xFull;
    switch (rng.below(20)) {
      case 0: trace.atomic(tid, addr & ~0x7ull, 8); break;
      case 1: trace.fence(tid); break;
      case 2: trace.store(tid, addr, 8); break;
      default: trace.load(tid, addr, 8); break;
    }
  }
  const DriverResult mac = run_mac(trace, config, 4);
  const DriverResult raw = run_raw(trace, config, 4);
  EXPECT_EQ(mac.completions, trace.size());
  EXPECT_EQ(raw.completions, trace.size());
  EXPECT_LE(mac.packets, raw.packets);
  EXPECT_EQ(mac.overhead_bytes, mac.packets * kAccessOverheadBytes);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedFuzz,
                         ::testing::Values(1ull, 2ull, 3ull, 5ull, 8ull,
                                           13ull, 21ull, 34ull));

}  // namespace
}  // namespace mac3d
