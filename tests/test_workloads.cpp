// Unit tests: the twelve evaluation workloads and the graph generator.
// A parameterized suite enforces the invariants every workload must obey;
// per-workload tests check characteristic access patterns.
#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

#include "trace/analyzer.hpp"
#include "workloads/all.hpp"
#include "workloads/graph_gen.hpp"

namespace mac3d {
namespace {

WorkloadParams small_params(std::uint32_t threads = 4) {
  WorkloadParams params;
  params.threads = threads;
  params.scale = 0.05;
  params.seed = 42;
  return params;
}

// ------------------------------------------------------------ registry
TEST(Registry, HasTwelveWorkloads) {
  EXPECT_EQ(workload_registry().size(), 12u);
}

TEST(Registry, NamesAreUniqueAndFindable) {
  std::set<std::string> names;
  for (const Workload* workload : workload_registry()) {
    EXPECT_TRUE(names.insert(workload->name()).second) << workload->name();
    EXPECT_EQ(find_workload(workload->name()), workload);
    EXPECT_FALSE(workload->description().empty());
  }
  EXPECT_EQ(find_workload("nope"), nullptr);
  EXPECT_EQ(workload_names().size(), 12u);
}

// --------------------------------------------------- per-workload invariants
class WorkloadInvariants : public ::testing::TestWithParam<const Workload*> {};

TEST_P(WorkloadInvariants, ProducesNonEmptyTracePerThread) {
  const MemoryTrace trace = GetParam()->trace(small_params());
  EXPECT_GT(trace.size(), 100u);
  for (std::uint32_t t = 0; t < trace.threads(); ++t) {
    EXPECT_FALSE(trace.thread(static_cast<ThreadId>(t)).empty())
        << GetParam()->name() << " thread " << t;
  }
}

TEST_P(WorkloadInvariants, IsDeterministic) {
  const MemoryTrace a = GetParam()->trace(small_params());
  const MemoryTrace b = GetParam()->trace(small_params());
  ASSERT_EQ(a.size(), b.size());
  for (std::uint32_t t = 0; t < a.threads(); ++t) {
    const auto tid = static_cast<ThreadId>(t);
    ASSERT_EQ(a.thread(tid), b.thread(tid)) << GetParam()->name();
  }
}

TEST_P(WorkloadInvariants, SeedChangesRandomWorkloads) {
  WorkloadParams params = small_params();
  const MemoryTrace a = GetParam()->trace(params);
  params.seed = 43;
  const MemoryTrace b = GetParam()->trace(params);
  // Traces must still be structurally sane (size may legitimately match).
  EXPECT_EQ(a.threads(), b.threads());
}

TEST_P(WorkloadInvariants, AddressesStayInsideTheCube) {
  const WorkloadParams params = small_params();
  const MemoryTrace trace = GetParam()->trace(params);
  for (std::uint32_t t = 0; t < trace.threads(); ++t) {
    for (const MemRecord& record : trace.thread(static_cast<ThreadId>(t))) {
      if (record.op == MemOp::kFence) continue;
      ASSERT_LT(record.addr + record.size, params.config.hmc_capacity)
          << GetParam()->name();
    }
  }
}

TEST_P(WorkloadInvariants, RecordsAreFlitGranular) {
  const MemoryTrace trace = GetParam()->trace(small_params());
  for (std::uint32_t t = 0; t < trace.threads(); ++t) {
    for (const MemRecord& record : trace.thread(static_cast<ThreadId>(t))) {
      if (record.op == MemOp::kFence) continue;
      ASSERT_GT(record.size, 0u);
      ASSERT_EQ(record.addr / kFlitBytes,
                (record.addr + record.size - 1) / kFlitBytes)
          << GetParam()->name();
    }
  }
}

TEST_P(WorkloadInvariants, ScaleGrowsTheTrace) {
  // Graph workloads grow in threshold steps (R-MAT scale / sweep counts),
  // so compare across a 40x scale range.
  WorkloadParams params = small_params();
  const std::uint64_t small = GetParam()->trace(params).size();
  params.scale = 2.0;
  const std::uint64_t large = GetParam()->trace(params).size();
  EXPECT_GT(large, small) << GetParam()->name();
}

TEST_P(WorkloadInvariants, HonoursThreadCount) {
  for (std::uint32_t threads : {2u, 8u}) {
    const MemoryTrace trace = GetParam()->trace(small_params(threads));
    EXPECT_EQ(trace.threads(), threads) << GetParam()->name();
  }
}

TEST_P(WorkloadInvariants, CountsInstructionsBeyondMemoryOps) {
  const MemoryTrace trace = GetParam()->trace(small_params());
  EXPECT_GT(trace.instructions(), trace.size()) << GetParam()->name();
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadInvariants,
    ::testing::ValuesIn(workload_registry()),
    [](const ::testing::TestParamInfo<const Workload*>& param_info) {
      return param_info.param->name();
    });

// ------------------------------------------------- characteristic patterns
TEST(WorkloadCharacter, SgMixesStreamsAndRandom) {
  const MemoryTrace trace = sg_workload()->trace(small_params(8));
  const TraceProfile profile = analyze(trace, small_params().config, 8);
  // The copy/strided kernels coalesce; the random B accesses do not.
  EXPECT_GT(profile.ideal_coalescing, 0.3);
  EXPECT_LT(profile.ideal_coalescing, 0.95);
}

TEST(WorkloadCharacter, MgIsHighlyCoalescable) {
  const MemoryTrace trace = mg_workload()->trace(small_params(8));
  const TraceProfile profile = analyze(trace, small_params().config, 8);
  EXPECT_GT(profile.ideal_coalescing, 0.7);
}

TEST(WorkloadCharacter, NqueensIsComputeBound) {
  const MemoryTrace trace = nqueens_workload()->trace(small_params(8));
  // Fig. 9: NQueens has the lowest memory intensity of the suite.
  EXPECT_LT(trace.mem_access_rate(), 0.5);
  EXPECT_LT(trace.requests_per_instruction(), 0.5);
}

TEST(WorkloadCharacter, GrappoloAndCcEmitAtomics) {
  for (const Workload* workload : {grappolo_workload(), gap_cc_workload()}) {
    const MemoryTrace trace = workload->trace(small_params(4));
    std::uint64_t atomics = 0;
    for (std::uint32_t t = 0; t < trace.threads(); ++t) {
      for (const MemRecord& record : trace.thread(static_cast<ThreadId>(t))) {
        atomics += record.op == MemOp::kAtomic ? 1 : 0;
      }
    }
    EXPECT_GT(atomics, 0u) << workload->name();
  }
}

TEST(WorkloadCharacter, EveryWorkloadEmitsFences) {
  for (const Workload* workload : workload_registry()) {
    const MemoryTrace trace = workload->trace(small_params(4));
    std::uint64_t fences = 0;
    for (std::uint32_t t = 0; t < trace.threads(); ++t) {
      for (const MemRecord& record : trace.thread(static_cast<ThreadId>(t))) {
        fences += record.op == MemOp::kFence ? 1 : 0;
      }
    }
    EXPECT_GT(fences, 0u) << workload->name();
  }
}

TEST(WorkloadCharacter, SortStreamsSequentially) {
  const MemoryTrace trace = sort_workload()->trace(small_params(8));
  const TraceProfile profile = analyze(trace, small_params().config, 8);
  EXPECT_GT(profile.ideal_coalescing, 0.5);
}

// ----------------------------------------------------------- graph_gen
TEST(GraphGen, RmatShapeAndDeterminism) {
  const CsrGraph a = make_rmat_graph(10, 8, 1);
  const CsrGraph b = make_rmat_graph(10, 8, 1);
  EXPECT_EQ(a.num_vertices, 1024u);
  EXPECT_EQ(a.offsets.size(), 1025u);
  EXPECT_EQ(a.targets, b.targets);
  EXPECT_GT(a.num_edges(), a.num_vertices);  // avg degree > 1 after dedup
  EXPECT_EQ(a.offsets.back(), a.num_edges());
}

TEST(GraphGen, RmatIsSkewed) {
  const CsrGraph graph = make_rmat_graph(12, 8, 7);
  // R-MAT concentrates edges on low-id hubs: the max degree should be far
  // above the average.
  std::uint64_t max_degree = 0;
  for (std::uint64_t v = 0; v < graph.num_vertices; ++v) {
    max_degree = std::max(max_degree, graph.degree(v));
  }
  const double avg =
      static_cast<double>(graph.num_edges()) /
      static_cast<double>(graph.num_vertices);
  EXPECT_GT(static_cast<double>(max_degree), 8.0 * avg);
}

TEST(GraphGen, UniformGraphIsNotSkewed) {
  const CsrGraph graph = make_uniform_graph(4096, 8, 3);
  std::uint64_t max_degree = 0;
  for (std::uint64_t v = 0; v < graph.num_vertices; ++v) {
    max_degree = std::max(max_degree, graph.degree(v));
  }
  const double avg =
      static_cast<double>(graph.num_edges()) /
      static_cast<double>(graph.num_vertices);
  EXPECT_LT(static_cast<double>(max_degree), 6.0 * avg);
}

TEST(GraphGen, GraphsAreSymmetric) {
  const CsrGraph graph = make_rmat_graph(8, 4, 5);
  std::set<std::pair<std::uint32_t, std::uint32_t>> edges;
  for (std::uint64_t u = 0; u < graph.num_vertices; ++u) {
    for (std::uint64_t i = graph.offsets[u]; i < graph.offsets[u + 1]; ++i) {
      edges.insert({static_cast<std::uint32_t>(u), graph.targets[i]});
    }
  }
  for (const auto& [u, v] : edges) {
    EXPECT_TRUE(edges.count({v, u})) << u << "->" << v;
  }
}

TEST(GraphGen, EdgeListHalvesSymmetricEdges) {
  const CsrGraph graph = make_uniform_graph(512, 4, 9);
  const auto edges = edge_list_of(graph);
  EXPECT_EQ(edges.size() * 2, graph.num_edges());
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
}

TEST(GraphGen, NoSelfLoops) {
  const CsrGraph graph = make_rmat_graph(9, 6, 11);
  for (std::uint64_t u = 0; u < graph.num_vertices; ++u) {
    for (std::uint64_t i = graph.offsets[u]; i < graph.offsets[u + 1]; ++i) {
      EXPECT_NE(graph.targets[i], u);
    }
  }
}

TEST(GraphGen, RejectsBadParameters) {
  EXPECT_THROW(make_rmat_graph(0, 8, 1), std::invalid_argument);
  EXPECT_THROW(make_rmat_graph(31, 8, 1), std::invalid_argument);
  EXPECT_THROW(make_uniform_graph(1, 8, 1), std::invalid_argument);
}

}  // namespace
}  // namespace mac3d
