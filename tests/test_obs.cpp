// Request-lifecycle telemetry (src/obs/, docs/OBSERVABILITY.md):
//  * every path x feed mode runs with a zero-error lifecycle audit and the
//    kept records carry monotonic, complete stamp sequences;
//  * attaching a sink does not perturb the simulation (identical results);
//  * the cycle sampler emits exactly ceil(makespan / period) rows per run
//    with a stable column set and well-formed CSV;
//  * the Chrome trace-event stream parses, every (pid, tid) track has
//    balanced B/E nesting and flow s/f events pair up;
//  * RunReport renders the stable schema with config and per-path stats.
#include <gtest/gtest.h>

#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "arch/system.hpp"
#include "common/rng.hpp"
#include "obs/lifecycle.hpp"
#include "obs/obs.hpp"
#include "obs/registry.hpp"
#include "obs/run_report.hpp"
#include "obs/sampler.hpp"
#include "sim/driver.hpp"
#include "trace/trace.hpp"

namespace mac3d {
namespace {

/// Mixed random stream (loads/stores/atomics, compute gaps, fences) over a
/// small row range so every lifecycle shape appears, merges included.
MemoryTrace random_trace(std::uint64_t seed, std::uint32_t threads,
                         std::uint32_t records_per_thread) {
  MemoryTrace trace(threads);
  Xoshiro256 rng(seed);
  for (std::uint32_t t = 0; t < threads; ++t) {
    const auto tid = static_cast<ThreadId>(t);
    for (std::uint32_t i = 0; i < records_per_thread; ++i) {
      if (rng.below(32) == 0) {
        trace.fence(tid);
        continue;
      }
      if (rng.below(4) == 0) trace.instr(tid, rng.below(6));
      const Address addr = rng.below(256) * 256 + rng.below(16) * 16;
      switch (rng.below(8)) {
        case 0: trace.store(tid, addr); break;
        case 1: trace.atomic(tid, addr); break;
        default: trace.load(tid, addr); break;
      }
    }
    trace.fence(tid);
  }
  return trace;
}

DriverResult run_path(const std::string& path, const MemoryTrace& trace,
                      const SimConfig& config, const DriveOptions& options) {
  if (path == "mac") return run_mac(trace, config, 4, options);
  if (path == "raw") return run_raw(trace, config, 4, options);
  return run_mshr(trace, config, 4, 32, 64, options);
}

#if MAC3D_OBS_ENABLED

TEST(Lifecycle, EveryPathAndFeedModeAuditsCleanWithCompleteRecords) {
  const MemoryTrace trace = random_trace(21, 4, 300);
  SimConfig config;
  for (const std::string path : {"mac", "raw", "mshr"}) {
    for (const FeedMode mode : {FeedMode::kStreaming, FeedMode::kClosedLoop}) {
      LifecycleTracer tracer;
      tracer.keep_records(true);
      const std::string window =
          path + (mode == FeedMode::kStreaming ? "-str" : "-cl");
      tracer.begin_path(window);
      DriveOptions options;
      options.mode = mode;
      options.sink = &tracer;
      const DriverResult result = run_path(path, trace, config, options);
      tracer.finish();

      EXPECT_EQ(tracer.monotonicity_errors(), 0u) << window;
      EXPECT_EQ(tracer.completeness_errors(), 0u) << window;
      EXPECT_EQ(tracer.abandoned_records(), 0u) << window;
      EXPECT_EQ(tracer.open_records(), 0u) << window;

      const LifecycleTracer::PathTelemetry* telemetry = tracer.path(window);
      ASSERT_NE(telemetry, nullptr) << window;
      EXPECT_EQ(telemetry->completed, result.completions) << window;
      EXPECT_EQ(telemetry->records.size(), result.completions) << window;
      EXPECT_EQ(telemetry->request_latency.count(), result.completions)
          << window;

      // Re-audit the kept records independently of the tracer's counters.
      for (const LifecycleTracer::Record& record : telemetry->records) {
        ASSERT_GE(record.stamps.size(), 4u) << window;
        EXPECT_EQ(record.stamps.front().stage, Stage::kCoreIssue) << window;
        EXPECT_EQ(record.stamps.back().stage, Stage::kCoreComplete) << window;
        bool saw_insert = false;
        bool saw_match = false;
        for (std::size_t i = 0; i < record.stamps.size(); ++i) {
          const LifecycleTracer::Stamp& stamp = record.stamps[i];
          saw_insert |= stamp.stage == Stage::kQueueInsert;
          saw_match |= stamp.stage == Stage::kResponseMatch;
          if (i == 0) continue;
          EXPECT_GE(stamp.cycle, record.stamps[i - 1].cycle) << window;
          EXPECT_GT(static_cast<int>(stamp.stage),
                    static_cast<int>(record.stamps[i - 1].stage))
              << window << " stage order";
        }
        EXPECT_TRUE(saw_insert) << window;
        EXPECT_TRUE(saw_match) << window;
      }
    }
  }
}

TEST(Lifecycle, MacWindowRecordsMergesAndDeviceStages) {
  const MemoryTrace trace = random_trace(5, 4, 400);
  SimConfig config;
  LifecycleTracer tracer;
  tracer.begin_path("mac");
  DriveOptions options;
  options.sink = &tracer;
  const DriverResult result = run_mac(trace, config, 4, options);
  tracer.finish();
  const LifecycleTracer::PathTelemetry* telemetry = tracer.path("mac");
  ASSERT_NE(telemetry, nullptr);
  // The ARQ merges on this row-local trace, and the device stamps both
  // serialization and bank access for every target it receives.
  EXPECT_GT(telemetry->merges, 0u);
  EXPECT_GT(result.raw_requests - result.packets, 0u);
  const auto idx = [](Stage s) { return static_cast<std::size_t>(s); };
  EXPECT_GT(telemetry->stage_latency[idx(Stage::kBuilderPick)].count(), 0u);
  EXPECT_GT(telemetry->stage_latency[idx(Stage::kFlitAlloc)].count(), 0u);
  EXPECT_GT(telemetry->stage_latency[idx(Stage::kLinkSerialize)].count(), 0u);
  EXPECT_GT(telemetry->stage_latency[idx(Stage::kBankAccess)].count(), 0u);
}

TEST(Lifecycle, AttachingASinkDoesNotPerturbTheSimulation) {
  const MemoryTrace trace = random_trace(9, 4, 300);
  SimConfig config;
  for (const std::string path : {"mac", "raw", "mshr"}) {
    const DriverResult bare = run_path(path, trace, config, {});
    LifecycleTracer tracer;
    tracer.begin_path(path);
    DriveOptions options;
    options.sink = &tracer;
    const DriverResult traced = run_path(path, trace, config, options);
    tracer.finish();
    EXPECT_EQ(bare.makespan, traced.makespan) << path;
    EXPECT_EQ(bare.packets, traced.packets) << path;
    EXPECT_EQ(bare.completions, traced.completions) << path;
    EXPECT_EQ(bare.data_bytes, traced.data_bytes) << path;
    EXPECT_EQ(bare.link_bytes, traced.link_bytes) << path;
    EXPECT_DOUBLE_EQ(bare.avg_latency_cycles, traced.avg_latency_cycles)
        << path;
  }
}

/// Serializes every stamp into a line log so two runs' telemetry streams
/// can be compared byte-for-byte (engine-equivalence tests below).
class RecordingSink final : public EventSink {
 public:
  void on_stage(Stage stage, ThreadId tid, Tag tag, Cycle cycle) override {
    log_ << "s " << static_cast<int>(stage) << ' ' << tid << ' ' << tag << ' '
         << cycle << '\n';
  }
  void on_merge(ThreadId tid, Tag tag, ThreadId leader_tid, Tag leader_tag,
                Cycle cycle) override {
    log_ << "m " << tid << ' ' << tag << ' ' << leader_tid << ' '
         << leader_tag << ' ' << cycle << '\n';
  }
  void on_hop(Hop hop, ThreadId tid, Tag tag, NodeId src, NodeId dest,
              Cycle cycle) override {
    log_ << "h " << static_cast<int>(hop) << ' ' << tid << ' ' << tag << ' '
         << static_cast<unsigned>(src) << ' ' << static_cast<unsigned>(dest)
         << ' ' << cycle << '\n';
  }
  [[nodiscard]] std::string str() const { return log_.str(); }

 private:
  std::ostringstream log_;
};

TEST(Lifecycle, ParallelEngineAuditsCleanAtFourThreads) {
  const MemoryTrace trace = random_trace(21, 4, 300);
  SimConfig config;
  for (const std::string path : {"mac", "raw", "mshr"}) {
    for (const FeedMode mode : {FeedMode::kStreaming, FeedMode::kClosedLoop}) {
      LifecycleTracer tracer;
      tracer.keep_records(true);
      const std::string window =
          path + (mode == FeedMode::kStreaming ? "-str-par" : "-cl-par");
      tracer.begin_path(window);
      DriveOptions options;
      options.mode = mode;
      options.engine = Engine::kParallel;
      options.engine_threads = 4;
      options.sink = &tracer;
      const DriverResult result = run_path(path, trace, config, options);
      tracer.finish();

      EXPECT_EQ(tracer.monotonicity_errors(), 0u) << window;
      EXPECT_EQ(tracer.completeness_errors(), 0u) << window;
      EXPECT_EQ(tracer.abandoned_records(), 0u) << window;
      EXPECT_EQ(tracer.open_records(), 0u) << window;

      const LifecycleTracer::PathTelemetry* telemetry = tracer.path(window);
      ASSERT_NE(telemetry, nullptr) << window;
      EXPECT_EQ(telemetry->completed, result.completions) << window;
      EXPECT_EQ(telemetry->records.size(), result.completions) << window;
    }
  }
}

TEST(Lifecycle, ParallelEngineStampStreamMatchesSerialByteForByte) {
  const MemoryTrace trace = random_trace(33, 4, 250);
  SimConfig config;
  for (const std::string path : {"mac", "raw", "mshr"}) {
    RecordingSink serial_log;
    DriveOptions serial;
    serial.sink = &serial_log;
    (void)run_path(path, trace, config, serial);

    RecordingSink parallel_log;
    DriveOptions parallel;
    parallel.engine = Engine::kParallel;
    parallel.engine_threads = 4;
    parallel.sink = &parallel_log;
    (void)run_path(path, trace, config, parallel);

    EXPECT_EQ(serial_log.str(), parallel_log.str()) << path;
    EXPECT_FALSE(serial_log.str().empty()) << path;
  }
}

TEST(Lifecycle, SystemRunParallelStampStreamMatchesSerial) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  const MemoryTrace trace = random_trace(27, 4, 150);

  RecordingSink serial_log;
  {
    System system(config);
    system.attach_sink(&serial_log);
    system.attach_trace(trace);
    EXPECT_TRUE(system.run().completed);
  }

  RecordingSink parallel_log;
  {
    System system(config);
    system.attach_sink(&parallel_log);
    system.attach_trace(trace);
    EXPECT_TRUE(system.run_parallel(4).completed);
  }

  EXPECT_EQ(serial_log.str(), parallel_log.str());
  EXPECT_FALSE(serial_log.str().empty());
  // Multi-node runs route remote traffic over the fabric, so the identical
  // streams must include hop events (request/response send+recv legs).
  EXPECT_NE(serial_log.str().find("\nh "), std::string::npos);
}

TEST(Registry, CountersGaugesAndHistogramsExportSortedJson) {
  MetricsRegistry registry;
  registry.counter("node1.router.routed").add(3);
  registry.counter("node0.router.routed").add();
  registry.gauge("system.cycles").set(42.0);
  registry.histogram("node0.latency").add(7);
  EXPECT_EQ(registry.size(), 4u);
  // find-or-register: same name returns the same metric.
  registry.counter("node0.router.routed").add(4);
  EXPECT_EQ(registry.size(), 4u);
  EXPECT_EQ(registry.counter("node0.router.routed").get(), 5u);

  const std::string json = registry.to_json();
  // Dotted names sort lexicographically: node0.* before node1.* before
  // system.*, regardless of registration order.
  const std::size_t n0 = json.find("node0.latency");
  const std::size_t n0r = json.find("node0.router.routed");
  const std::size_t n1 = json.find("node1.router.routed");
  const std::size_t sys = json.find("system.cycles");
  ASSERT_NE(n0, std::string::npos);
  ASSERT_NE(sys, std::string::npos);
  EXPECT_LT(n0, n0r);
  EXPECT_LT(n0r, n1);
  EXPECT_LT(n1, sys);
  EXPECT_NE(json.find("\"node1.router.routed\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"system.cycles\": 42"), std::string::npos);
}

TEST(Registry, MergeFoldsShardsCommutatively) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.counter("x").add(10);
  b.counter("x").add(5);
  b.counter("y").add(1);
  a.histogram("h").add(3);
  b.histogram("h").add(9);

  MetricsRegistry merged;
  merged.merge(a);
  merged.merge(b);
  EXPECT_EQ(merged.counter("x").get(), 15u);
  EXPECT_EQ(merged.counter("y").get(), 1u);

  MetricsRegistry reversed;
  reversed.merge(b);
  reversed.merge(a);
  EXPECT_EQ(merged.to_json(), reversed.to_json());
}

TEST(Registry, SystemRunPopulatesPerNodeAndFabricNamespaces) {
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  const MemoryTrace trace = random_trace(17, 4, 150);
  MetricsRegistry registry;
  System system(config);
  system.attach_metrics(&registry);
  system.attach_trace(trace);
  ASSERT_TRUE(system.run().completed);

  EXPECT_GT(registry.counter("node0.router.routed").get(), 0u);
  EXPECT_GT(registry.counter("node1.router.routed").get(), 0u);
  EXPECT_GT(registry.counter("node0.completions").get(), 0u);
  // random_trace touches a small range homed on node 0, so node 1's
  // threads send requests over link 1->0 and completions return 0->1.
  EXPECT_GT(registry.counter("fabric.link10.requests").get(), 0u);
  EXPECT_GT(registry.counter("fabric.link01.completions").get(), 0u);
  EXPECT_GT(registry.gauge("system.cycles").get(), 0.0);

  RunReport report;
  report.set_metrics(registry);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"metrics\": {"), std::string::npos);
  EXPECT_NE(json.find("\"node0.router.routed\":"), std::string::npos);
  EXPECT_NE(json.find("\"fabric.link10.requests\":"), std::string::npos);
}

TEST(Sampler, ParallelEngineRowsAndCsvMatchSerial) {
  const MemoryTrace trace = random_trace(3, 4, 300);
  SimConfig config;
  CycleSampler serial_sampler(64);
  CycleSampler parallel_sampler(64);
  for (const std::string path : {"mac", "raw", "mshr"}) {
    DriveOptions serial;
    serial.sampler = &serial_sampler;
    const DriverResult expected = run_path(path, trace, config, serial);

    DriveOptions parallel;
    parallel.engine = Engine::kParallel;
    parallel.engine_threads = 4;
    parallel.sampler = &parallel_sampler;
    const DriverResult actual = run_path(path, trace, config, parallel);

    EXPECT_EQ(expected.makespan, actual.makespan) << path;
    const std::size_t rows = (expected.makespan + 63) / 64;  // ceil
    EXPECT_EQ(serial_sampler.rows_for(path), rows) << path;
    EXPECT_EQ(parallel_sampler.rows_for(path), rows) << path;
  }
  EXPECT_EQ(serial_sampler.to_csv(), parallel_sampler.to_csv());
}

TEST(Sampler, EmitsCeilMakespanOverPeriodRowsPerRun) {
  const MemoryTrace trace = random_trace(3, 4, 300);
  SimConfig config;
  CycleSampler sampler(64);
  std::map<std::string, Cycle> makespans;
  for (const std::string path : {"mac", "raw", "mshr"}) {
    DriveOptions options;
    options.sampler = &sampler;
    makespans[path] = run_path(path, trace, config, options).makespan;
  }
  std::size_t total = 0;
  for (const auto& [path, makespan] : makespans) {
    const std::size_t expect = (makespan + 63) / 64;  // ceil
    EXPECT_EQ(sampler.rows_for(path), expect) << path;
    total += expect;
  }
  EXPECT_EQ(sampler.row_count(), total);

  // CSV: header + one line per row, every line with the same field count.
  const std::string csv = sampler.to_csv();
  std::istringstream lines(csv);
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("path,cycle,", 0), 0u) << line;
  const auto fields = [](const std::string& s) {
    return static_cast<std::size_t>(std::count(s.begin(), s.end(), ',')) + 1;
  };
  const std::size_t width = fields(line);
  EXPECT_EQ(width, sampler.columns().size() + 2);
  std::size_t data_lines = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(fields(line), width) << line;
    ++data_lines;
  }
  EXPECT_EQ(data_lines, total);
}

/// Minimal line-oriented scan of the tracer's Chrome JSON (one event per
/// line): extracts ph / pid / tid and checks track nesting and flow pairing.
struct TraceScan {
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t> depth;
  std::uint64_t begins = 0, ends = 0, flows_out = 0, flows_in = 0;
  std::uint64_t events = 0;
  bool well_formed = true;

  static bool field(const std::string& line, const char* key,
                    std::uint64_t& out) {
    const std::string needle = std::string("\"") + key + "\":";
    const std::size_t at = line.find(needle);
    if (at == std::string::npos) return false;
    out = std::strtoull(line.c_str() + at + needle.size(), nullptr, 10);
    return true;
  }

  void feed(const std::string& line) {
    const std::size_t at = line.find("\"ph\":\"");
    if (at == std::string::npos) return;
    ++events;
    const char ph = line[at + 6];
    std::uint64_t pid = 0, tid = 0;
    if (!field(line, "pid", pid)) well_formed = false;
    field(line, "tid", tid);
    switch (ph) {
      case 'B': ++begins; ++depth[{pid, tid}]; break;
      case 'E': ++ends; --depth[{pid, tid}]; break;
      case 's': ++flows_out; break;
      case 'f': ++flows_in; break;
      case 'M': case 'i': case 'X': break;
      default: well_formed = false; break;
    }
  }
};

TEST(Tracer, ChromeTraceStreamBalancesEveryTrackAndPairsFlows) {
  const std::string file = ::testing::TempDir() + "mac3d_obs_trace.json";
  const MemoryTrace trace = random_trace(13, 4, 300);
  SimConfig config;
  LifecycleTracer tracer;
  ASSERT_TRUE(tracer.open_trace(file));
  for (const std::string path : {"raw", "mac"}) {
    tracer.begin_path(path);
    DriveOptions options;
    options.sink = &tracer;
    (void)run_path(path, trace, config, options);
  }
  tracer.finish();
  EXPECT_GT(tracer.trace_events_written(), 0u);

  std::ifstream in(file);
  ASSERT_TRUE(in.is_open());
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line.rfind("{\"displayTimeUnit\"", 0), 0u);
  TraceScan scan;
  std::string last;
  while (std::getline(in, line)) {
    scan.feed(line);
    if (!line.empty()) last = line;
  }
  EXPECT_EQ(last, "]}");
  EXPECT_TRUE(scan.well_formed);
  EXPECT_EQ(scan.begins, scan.ends);
  EXPECT_GT(scan.begins, 0u);
  for (const auto& [track, depth] : scan.depth) {
    EXPECT_EQ(depth, 0) << "pid " << track.first << " tid " << track.second;
  }
  EXPECT_EQ(scan.flows_out, scan.flows_in);  // every merge s has its f
  std::remove(file.c_str());
}

TEST(Tracer, WindowCloseSeparatesInFlightFromAbandoned) {
  LifecycleTracer tracer;
  tracer.begin_path("a");
  // Healthy-but-open: starts at an entry stage with monotone stamps, so it
  // was simply still in flight when the window closed.
  tracer.on_stage(Stage::kCoreIssue, 0, 1, 0);
  tracer.on_stage(Stage::kQueueInsert, 0, 1, 1);
  // Abandoned: no entry stamp — the record is malformed, not in flight.
  tracer.on_stage(Stage::kQueueInsert, 0, 2, 3);
  tracer.begin_path("b");  // neither request ever completed
  tracer.finish();
  EXPECT_EQ(tracer.in_flight_at_end(), 1u);
  EXPECT_EQ(tracer.abandoned_records(), 1u);
  EXPECT_EQ(tracer.completed_records(), 0u);
}

TEST(Tracer, HopEventsEmitPairedFlowArrowsOnNodeFabricTracks) {
  const std::string file = ::testing::TempDir() + "mac3d_obs_hops.json";
  SimConfig config;
  config.nodes = 2;
  config.cores = 2;
  const MemoryTrace trace = random_trace(41, 4, 200);
  LifecycleTracer tracer;
  ASSERT_TRUE(tracer.open_trace(file));
  tracer.begin_path("system");
  System system(config);
  system.attach_sink(&tracer);
  system.attach_trace(trace);
  ASSERT_TRUE(system.run().completed);
  tracer.finish();
  EXPECT_GT(tracer.hop_events(), 0u);
  // Every send leg produced exactly one recv leg.
  EXPECT_EQ(tracer.hop_events() % 2, 0u);

  std::ifstream in(file);
  ASSERT_TRUE(in.is_open());
  TraceScan scan;
  std::string line;
  bool saw_fabric_track = false;
  while (std::getline(in, line)) {
    scan.feed(line);
    if (line.find("node0.fabric") != std::string::npos ||
        line.find("node1.fabric") != std::string::npos) {
      saw_fabric_track = true;
    }
  }
  EXPECT_TRUE(scan.well_formed);
  EXPECT_EQ(scan.begins, scan.ends);
  EXPECT_EQ(scan.flows_out, scan.flows_in);
  EXPECT_GE(scan.flows_out, tracer.hop_events() / 2);
  EXPECT_TRUE(saw_fabric_track);
  std::remove(file.c_str());
}

TEST(Tracer, AuditFlagsBackwardCycleAndStageOrder)
{
  LifecycleTracer tracer;
  tracer.begin_path("bad");
  tracer.on_stage(Stage::kCoreIssue, 0, 1, 10);
  tracer.on_stage(Stage::kQueueInsert, 0, 1, 5);  // cycle ran backwards
  tracer.on_stage(Stage::kResponseMatch, 0, 1, 12);
  tracer.on_stage(Stage::kCoreComplete, 0, 1, 13);
  tracer.on_stage(Stage::kQueueInsert, 0, 2, 0);  // skips the entry stamp...
  tracer.on_stage(Stage::kCoreComplete, 0, 2, 1);  // ...and response_match
  tracer.finish();
  EXPECT_GT(tracer.monotonicity_errors(), 0u);
  EXPECT_GT(tracer.completeness_errors(), 0u);
}

#else  // MAC3D_OBS_ENABLED

TEST(Lifecycle, DisabledBuildCompilesStampsToNothing) {
  // The macros must expand to no-ops without evaluating the sink.
  LifecycleTracer* sink = nullptr;
  MAC3D_OBS_STAMP(sink, Stage::kCoreIssue, 0, 0, 0);
  MAC3D_OBS_MERGE(sink, 0, 0, 0, 0, 0);
  MAC3D_OBS_HOP(sink, Hop::kRequestSend, 0, 0, 0, 1, 0);
  MetricCounter* counter = nullptr;
  MAC3D_OBS_COUNT(counter);
  MAC3D_OBS_COUNT_N(counter, 7);
  SUCCEED();
}

#endif  // MAC3D_OBS_ENABLED

TEST(RunReportJson, RendersSchemaConfigAndPerPathSections) {
  RunReport report;
  report.set_string("workload", "sg");
  report.set_number("threads", 4);
  report.set_bool("checks", true);
  SimConfig config;
  report.set_config(config);
  StatSet stats;
  stats.set("mac.packets", 128);
  report.set_path_stats("mac", stats);
  Histogram latency;
  for (std::uint64_t v : {3, 5, 9, 17, 900}) latency.add(v);
  report.set_path_request_latency("mac", latency);
  report.add_path_stage("mac", "bank_access", latency);

  const std::string json = report.to_json();
  EXPECT_EQ(json.rfind("{\n  \"schema\": \"mac3d-run-report/4\"", 0), 0u)
      << json;
  EXPECT_NE(json.find("\"workload\": \"sg\""), std::string::npos);
  EXPECT_NE(json.find("\"threads\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"checks\": true"), std::string::npos);
  EXPECT_NE(json.find("\"config\": {"), std::string::npos);
  EXPECT_NE(json.find("\"row_bytes\":256"), std::string::npos);
  EXPECT_NE(json.find("\"paths\": {"), std::string::npos);
  EXPECT_NE(json.find("\"mac\": {"), std::string::npos);
  EXPECT_NE(json.find("\"mac.packets\":128"), std::string::npos);
  EXPECT_NE(json.find("\"request_latency\": {\"count\":5"), std::string::npos);
  EXPECT_NE(json.find("\"bank_access\": {\"count\":5"), std::string::npos);
  // Quantiles: min/max exact, p50 resolves within [min, max].
  EXPECT_NE(json.find("\"min\":3"), std::string::npos);
  EXPECT_NE(json.find("\"max\":900"), std::string::npos);
  // Balanced braces/brackets => structurally sound JSON.
  std::int64_t braces = 0, brackets = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (c == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    braces += (c == '{') - (c == '}');
    brackets += (c == '[') - (c == ']');
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(RunReportJson, WriteProducesTheSameBytesAsToJson) {
  const std::string file = ::testing::TempDir() + "mac3d_obs_report.json";
  RunReport report;
  report.set_string("workload", "unit");
  ASSERT_TRUE(report.write(file));
  std::ifstream in(file);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), report.to_json());
  std::remove(file.c_str());
}

TEST(StageNames, CoverAllTenStagesInPipelineOrder) {
  ASSERT_EQ(kStageCount, 10u);
  const char* expected[] = {"core_issue",     "router_enqueue",
                            "queue_insert",   "merge",
                            "builder_pick",   "flit_alloc",
                            "link_serialize", "bank_access",
                            "response_match", "core_complete"};
  for (std::size_t i = 0; i < kStageCount; ++i) {
    EXPECT_EQ(to_string(static_cast<Stage>(i)), expected[i]);
  }
}

}  // namespace
}  // namespace mac3d
