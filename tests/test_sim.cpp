// Unit tests: report rendering and the experiment harness.
#include <gtest/gtest.h>

#include <cstdlib>

#include "sim/experiment.hpp"
#include "sim/metrics.hpp"
#include "sim/report.hpp"

namespace mac3d {
namespace {

// ------------------------------------------------------------------ Table
TEST(Table, RendersAlignedAscii) {
  Table table({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  const std::string text = table.to_string();
  EXPECT_NE(text.find("| alpha |"), std::string::npos);
  EXPECT_NE(text.find("22222"), std::string::npos);
  EXPECT_NE(text.find("+-"), std::string::npos);
}

TEST(Table, RejectsRaggedRows) {
  Table table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, CsvOutput) {
  Table table({"x", "y"});
  table.add_row({"1", "2"});
  EXPECT_EQ(table.to_csv(), "x,y\n1,2\n");
}

TEST(Table, Formatters) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::pct(0.5), "50.00%");
  EXPECT_EQ(Table::pct(0.12345, 1), "12.3%");
  EXPECT_EQ(Table::count(0), "0");
  EXPECT_EQ(Table::count(1234567), "1,234,567");
  EXPECT_EQ(Table::bytes(512), "512 B");
  EXPECT_EQ(Table::bytes(2048), "2.00 KB");
  EXPECT_EQ(Table::bytes(3ull << 30), "3.00 GB");
}

// ------------------------------------------------------------- experiment
TEST(Experiment, SuiteRunsSelectedWorkloads) {
  SuiteOptions options;
  options.scale = 0.05;
  options.threads = 2;
  options.only = {"sg", "sort"};
  const auto runs = run_suite(options);
  ASSERT_EQ(runs.size(), 2u);
  // Registry order is preserved (sg before sort).
  EXPECT_EQ(runs[0].name, "sg");
  EXPECT_EQ(runs[1].name, "sort");
  for (const WorkloadRun& run : runs) {
    EXPECT_GT(run.trace.records, 0u);
    EXPECT_GT(run.trace.instructions, run.trace.records);
    EXPECT_GT(run.raw.packets, 0u);
    EXPECT_GT(run.mac.packets, 0u);
    EXPECT_LE(run.mac.packets, run.raw.packets);
    EXPECT_GT(run.trace.requests_per_instruction, 0.0);
    EXPECT_GT(run.trace.mem_access_rate, 0.0);
    EXPECT_LE(run.trace.mem_access_rate, 1.0);
  }
}

TEST(Experiment, MshrPathOptIn) {
  SuiteOptions options;
  options.scale = 0.05;
  options.threads = 2;
  options.only = {"sg"};
  options.run_mshr = true;
  const auto runs = run_suite(options);
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].mshr.path, "mshr");
  EXPECT_GT(runs[0].mshr.packets, 0u);
}

TEST(Experiment, EnvScaleParsesAndDefaults) {
  ::unsetenv("MAC3D_SCALE");
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
  ::setenv("MAC3D_SCALE", "0.25", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 0.25);
  ::setenv("MAC3D_SCALE", "garbage", 1);
  EXPECT_DOUBLE_EQ(env_scale(), 1.0);
  ::unsetenv("MAC3D_SCALE");
}

TEST(Experiment, EnvThreadsParsesAndDefaults) {
  ::unsetenv("MAC3D_THREADS");
  EXPECT_EQ(env_threads(8), 8u);
  ::setenv("MAC3D_THREADS", "4", 1);
  EXPECT_EQ(env_threads(8), 4u);
  ::setenv("MAC3D_THREADS", "-1", 1);
  EXPECT_EQ(env_threads(8), 8u);
  ::unsetenv("MAC3D_THREADS");
}

TEST(Experiment, DefaultOptionsAreValid) {
  ::unsetenv("MAC3D_CONFIG");
  const SuiteOptions options = default_suite_options();
  EXPECT_NO_THROW(options.config.validate());
  EXPECT_GT(options.threads, 0u);
  EXPECT_GT(options.scale, 0.0);
}

TEST(Experiment, ConfigEnvOverrideApplies) {
  ::setenv("MAC3D_CONFIG", "arq_entries=64", 1);
  const SuiteOptions options = default_suite_options();
  EXPECT_EQ(options.config.arq_entries, 64u);
  ::unsetenv("MAC3D_CONFIG");
}

TEST(Experiment, ResultCollectExportsAllMetrics) {
  SuiteOptions options;
  options.scale = 0.05;
  options.threads = 2;
  options.only = {"mg"};
  const auto runs = run_suite(options);
  StatSet stats;
  runs[0].mac.collect(stats, "mac");
  EXPECT_TRUE(stats.contains("mac.packets"));
  EXPECT_TRUE(stats.contains("mac.coalescing_efficiency"));
  EXPECT_TRUE(stats.contains("mac.bandwidth_efficiency"));
  EXPECT_TRUE(stats.contains("mac.makespan_cycles"));
  EXPECT_GT(stats.get("mac.packets"), 0.0);
}

}  // namespace
}  // namespace mac3d
